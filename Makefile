# Convenience targets; `make check` is the tier-1+ gate (see ROADMAP.md).

.PHONY: check test bench-artifact benchdiff

check:
	./scripts/check.sh

test:
	go test ./...

# Regenerate the machine-readable benchmark artifact (BENCH_<date>.json).
bench-artifact:
	go run ./cmd/gpobench -json

# Diff two benchmark artifacts and flag >10% wall-clock regressions:
#   make benchdiff BASE=BENCH_old.json NEW=BENCH_new.json
benchdiff:
	@test -n "$(BASE)" -a -n "$(NEW)" || \
		{ echo "usage: make benchdiff BASE=<old.json> NEW=<new.json>"; exit 2; }
	go run ./cmd/benchdiff $(BASE) $(NEW)
