# Convenience targets; `make check` is the tier-1+ gate (see ROADMAP.md).

.PHONY: check test bench-artifact

check:
	./scripts/check.sh

test:
	go test ./...

# Regenerate the machine-readable benchmark artifact (BENCH_<date>.json).
bench-artifact:
	go run ./cmd/gpobench -json
