# Convenience targets; `make check` is the tier-1+ gate (see ROADMAP.md).

.PHONY: check test serve watch cluster-smoke jobs-smoke trace-smoke bench-micro bench-artifact benchdiff

check:
	./scripts/check.sh

test:
	go test ./...

# Run the verification daemon (see `go run ./cmd/gpod -h` for the
# capacity knobs: -workers, -queue, -max-states, -timeout, -cache-bytes).
# The ledger backs GET /v1/runs history; watch with `make watch`.
serve:
	go run ./cmd/gpod -addr :8722 -ledger runs.jsonl

# Live fleet view of the daemon started by `make serve`: in-flight runs,
# completed runs with verdicts, outlier flags against ledger history.
# Repeat -addr to watch a whole cluster (per-peer shard/steal table).
watch:
	go run ./cmd/gpostat -follow -addr http://localhost:8722 -ledger runs.jsonl

# Boot a 3-peer loopback cluster and check the distributed explorer is
# bit-identical to sequential BFS plus the shared result tier end to end
# (same check runs inside `make check`).
cluster-smoke:
	go run ./cmd/gpod -cluster-smoke

# Durable-jobs self-check: submit an async job, kill the daemon after
# its first checkpoint, restart over the same directory, auto-resume,
# and compare the resumed verdict against a fresh uninterrupted run
# (same check runs inside `make check`; see DESIGN.md D11).
jobs-smoke:
	go run ./cmd/gpod -jobs-smoke

# Distributed-tracing self-check: a traced 3-peer loopback cluster run,
# fleet bundle fetched from GET /v1/runs/{id}/trace, merged timeline
# reconstructing exactly the fleet-wide state count, attribution table
# rendered (same check runs inside `make check`).
trace-smoke:
	go run ./cmd/gpod -trace-smoke

# Microbenchmarks of the GPO hot path: ZDD primitive ops and full
# Analyze runs, with allocation counts (b.ReportAllocs).
bench-micro:
	go test -run '^$$' -bench . -benchtime 100x ./internal/zdd/ ./internal/core/

# Regenerate the machine-readable benchmark artifact (BENCH_<date>.json).
bench-artifact:
	go run ./cmd/gpobench -json

# Diff two benchmark artifacts and flag >10% wall-clock regressions:
#   make benchdiff BASE=BENCH_old.json NEW=BENCH_new.json
benchdiff:
	@test -n "$(BASE)" -a -n "$(NEW)" || \
		{ echo "usage: make benchdiff BASE=<old.json> NEW=<new.json>"; exit 2; }
	go run ./cmd/benchdiff $(BASE) $(NEW)
