#!/bin/sh
# Tier-1+ gate: vet, build, and race-enabled tests for the whole module.
# Keep in sync with `make check` and the gate recorded in ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files; any output fails.
test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race ./...
# Benchmark smoke: one iteration of every benchmark, so a refactor that
# breaks a bench harness (or reintroduces per-op allocation panics) is
# caught here and not at artifact-regeneration time.
go test -run '^$' -bench . -benchtime 1x ./...
# Fuzz smoke: 5 seconds of FuzzParse against the hardened pnio parser.
go test -fuzz=FuzzParse -fuzztime=5s -run '^$' ./internal/pnio
# Service smoke: boot gpod on a random port, push one verification over
# the wire with the client package, drain, shut down.
go run ./cmd/gpod -smoke
