#!/bin/sh
# Tier-1+ gate: vet, build, and race-enabled tests for the whole module.
# Keep in sync with `make check` and the gate recorded in ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files; any output fails.
test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race ./...
# Benchmark smoke: one iteration of every benchmark, so a refactor that
# breaks a bench harness (or reintroduces per-op allocation panics) is
# caught here and not at artifact-regeneration time.
go test -run '^$' -bench . -benchtime 1x ./...
# Disabled-tracer allocation gate: the flight-recorder instrumentation
# on the analysis hot path must stay free when no tracer is attached.
# The benchmark measures exactly the per-state emit mix on a nil track;
# anything but "0 allocs/op" fails the gate.
go test -run '^$' -bench BenchmarkDisabledTraceHotPath -benchtime=1x ./internal/core |
	tee /dev/stderr | grep -q 'BenchmarkDisabledTraceHotPath.* 0 allocs/op'
# Trace round-trip smoke: record a run, summarize the Chrome JSON and
# the JSONL dump with gpotrace, and check both formats parse back.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
go run ./cmd/gpoverify -model nsdp -size 5 -trace "$TRACE_TMP/t.json" >/dev/null
go run ./cmd/gpoverify -model nsdp -size 5 -trace "$TRACE_TMP/t.jsonl" >/dev/null
go run ./cmd/gpotrace "$TRACE_TMP/t.json" | grep -q 'states:'
go run ./cmd/gpotrace "$TRACE_TMP/t.jsonl" | grep -q 'states:'
# Fuzz smoke: 5 seconds of FuzzParse against the hardened pnio parser.
go test -fuzz=FuzzParse -fuzztime=5s -run '^$' ./internal/pnio
# Service smoke: boot gpod on a random port, push one verification over
# the wire with the client package, drain, shut down.
go run ./cmd/gpod -smoke
