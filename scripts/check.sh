#!/bin/sh
# Tier-1+ gate: vet, build, and race-enabled tests for the whole module.
# Keep in sync with `make check` and the gate recorded in ROADMAP.md.
set -eux
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files; any output fails.
test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race ./...
# Benchmark smoke: one iteration of every benchmark, so a refactor that
# breaks a bench harness (or reintroduces per-op allocation panics) is
# caught here and not at artifact-regeneration time.
go test -run '^$' -bench . -benchtime 1x ./...
# Disabled-tracer allocation gate: the flight-recorder instrumentation
# on the analysis hot path must stay free when no tracer is attached.
# The benchmarks measure exactly the per-state emit mix on a nil track
# (core), the cluster wire-edge call sites (cluster), and the
# job-lifecycle call sites (server); anything but "0 allocs/op" fails.
for pkg in ./internal/core ./internal/cluster ./internal/server; do
	go test -run '^$' -bench BenchmarkDisabledTraceHotPath -benchtime=1x "$pkg" |
		tee /dev/stderr | grep -q 'BenchmarkDisabledTraceHotPath.* 0 allocs/op'
done
# Trace round-trip smoke: record a run, summarize the Chrome JSON and
# the JSONL dump with gpotrace, and check both formats parse back.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
go run ./cmd/gpoverify -model nsdp -size 5 -trace "$TRACE_TMP/t.json" >/dev/null
go run ./cmd/gpoverify -model nsdp -size 5 -trace "$TRACE_TMP/t.jsonl" >/dev/null
go run ./cmd/gpotrace "$TRACE_TMP/t.json" | grep -q 'states:'
go run ./cmd/gpotrace "$TRACE_TMP/t.jsonl" | grep -q 'states:'
# Zero-subscriber streaming gate: a progress update with no SSE
# subscriber must stay allocation-free, or every unwatched daemon run
# pays for the introspection surface.
go test -run '^$' -bench BenchmarkProgressPublishNoSubscribers -benchtime=1x ./internal/obs |
	tee /dev/stderr | grep -q 'BenchmarkProgressPublishNoSubscribers.* 0 allocs/op'
# Fuzz smoke: 5 seconds of FuzzParse against the hardened pnio parser,
# 5 seconds of FuzzFrameRoundTrip against the cluster frame codec
# (the bytes every peer accepts from the network), and 5 seconds of
# FuzzCkptRead against the ckpt/v1 checkpoint reader (the bytes a
# restarted daemon trusts enough to resume from).
go test -fuzz=FuzzParse -fuzztime=5s -run '^$' ./internal/pnio
go test -fuzz=FuzzFrameRoundTrip -fuzztime=5s -run '^$' ./internal/cluster
go test -fuzz=FuzzCkptRead -fuzztime=5s -run '^$' ./internal/ckpt
# Ledger round-trip smoke: two gpoverify runs journal under the same
# content-addressed run ID, gpostat -history reconstructs one group of
# two runs from the journal, and repeated reads are deterministic.
go run ./cmd/gpoverify -model nsdp -size 4 -engine gpo -ledger "$TRACE_TMP/runs.jsonl" >/dev/null
go run ./cmd/gpoverify -model nsdp -size 4 -engine gpo -ledger "$TRACE_TMP/runs.jsonl" >/dev/null
test "$(grep -c '"schema":"ledger/v1"' "$TRACE_TMP/runs.jsonl")" = 2
test "$(grep -o '"run_id":"[^"]*"' "$TRACE_TMP/runs.jsonl" | sort -u | wc -l)" = 1
go run ./cmd/gpostat -history -ledger "$TRACE_TMP/runs.jsonl" >"$TRACE_TMP/hist1.txt"
go run ./cmd/gpostat -history -ledger "$TRACE_TMP/runs.jsonl" >"$TRACE_TMP/hist2.txt"
cmp "$TRACE_TMP/hist1.txt" "$TRACE_TMP/hist2.txt"
grep -q 'NSDP(4) *gpo *deadlock *2' "$TRACE_TMP/hist1.txt"
# Reduction smoke: the structural reduction pre-pass must actually
# shrink two Table 1 instances and reach the same verdict as the
# unreduced run (the full engine matrix is TestReduceEquivalentOnTable1;
# this pins the CLI flag end to end). The verdict token is field 2 of
# the engine row.
for spec in 'nsdp 6' 'rw 9'; do
	set -- $spec
	go run ./cmd/gpoverify -model "$1" -size "$2" >"$TRACE_TMP/base.txt"
	go run ./cmd/gpoverify -model "$1" -size "$2" -reduce >"$TRACE_TMP/red.txt"
	grep -q 'reduced: -[1-9][0-9]* places' "$TRACE_TMP/red.txt"
	base_verdict=$(awk '$1 == "gpo" { print $2 }' "$TRACE_TMP/base.txt")
	red_verdict=$(awk '$1 == "gpo" { print $2 }' "$TRACE_TMP/red.txt")
	test -n "$base_verdict" && test "$base_verdict" = "$red_verdict"
done
# Service smoke: boot gpod on a random port, push one verification over
# the wire with the client package, drain, shut down. With -ledger the
# smoke also walks the /v1/runs surface (history listing, by-id lookup,
# SSE stream terminating in a verdict matching the response).
go run ./cmd/gpod -smoke -ledger "$TRACE_TMP/gpod-runs.jsonl"
go run ./cmd/gpostat -history -ledger "$TRACE_TMP/gpod-runs.jsonl" | grep -q 'NSDP(4)'
# Cluster smoke: three full gpod servers on loopback ports as one
# cluster — distributed nsdp(8)/rw(12) runs checked bit-identical
# against in-process sequential BFS, then the repeated request answered
# from the shared result tier with zero re-exploration anywhere.
go run ./cmd/gpod -cluster-smoke -cluster-smoke-out "$TRACE_TMP/cluster.json"
grep -q '"recomputed_states": 0' "$TRACE_TMP/cluster.json"
# Trace-merge smoke: a 3-peer loopback cluster run with tracing on —
# the merged timeline must reconstruct exactly the fleet-wide
# reach.states count and render the per-level attribution table (both
# asserted inside -trace-smoke), and the raw bundle it writes must
# merge again through the gpotrace CLI.
go run ./cmd/gpod -trace-smoke -trace-smoke-out "$TRACE_TMP/bundle.json"
go run ./cmd/gpotrace -merge -o "$TRACE_TMP/merged.json" "$TRACE_TMP/bundle.json" \
	>"$TRACE_TMP/attrib.txt"
grep -q 'slowest' "$TRACE_TMP/attrib.txt"
grep -q 'gpotrace-merged/v1' "$TRACE_TMP/merged.json"
# Durable-jobs smoke: submit an async job, kill the daemon after its
# first checkpoint, restart over the same directory, auto-resume, and
# require the resumed verdict to be identical to a fresh uninterrupted
# run (DESIGN.md D11).
go run ./cmd/gpod -jobs-smoke
# Replay smoke: suspend a run at a checkpoint, then re-execute the
# prefix deterministically — bit-identical snapshot, same event stream,
# and event counts matching the suspended run's own flight recorder.
go run ./cmd/gpoverify -model nsdp -size 6 -engine exhaustive \
	-ckpt "$TRACE_TMP/nsdp6.ckpt" -ckpt-states 500 \
	-trace "$TRACE_TMP/suspend.trace.jsonl" | grep -q 'suspended'
go run ./cmd/gpoverify -replay "$TRACE_TMP/nsdp6.ckpt" \
	-trace-ref "$TRACE_TMP/suspend.trace.jsonl" | grep -q 'replay: OK'
