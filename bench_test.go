// Benchmarks regenerating the paper's evaluation: one benchmark family per
// Table 1 block (NSDP, ASAT, OVER, RW — each engine × size), one per
// figure sweep (Figures 1 and 2), and ablation benches for the design
// choices called out in DESIGN.md. Each benchmark reports the key
// size statistic (states, or peak BDD nodes) alongside wall time, so
// `go test -bench=.` prints the same rows the paper's Table 1 reports.
//
// cmd/gpobench prints the same data as a formatted table.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
	"repro/internal/zdd"
)

// benchFull enumerates the complete state space (the States column).
func benchFull(b *testing.B, net *petri.Net) {
	b.Helper()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := reach.Explore(net, reach.Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// benchPO runs stubborn-set reduction with the best-seed strategy and no
// proviso — the configuration whose reduction factors track the paper's
// SPIN+PO column most closely (see EXPERIMENTS.md; the proviso variant is
// measured by BenchmarkAblationProviso).
func benchPO(b *testing.B, net *petri.Net) {
	b.Helper()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := stubborn.Explore(net, stubborn.Options{Seed: stubborn.SeedBest})
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// benchBDD runs symbolic reachability (the SMV column; metric = peak BDD).
func benchBDD(b *testing.B, net *petri.Net) {
	b.Helper()
	var peak int
	for i := 0; i < b.N; i++ {
		res, err := symbolic.Analyze(net, symbolic.Options{})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.PeakNodes
	}
	b.ReportMetric(float64(peak), "peakBDD")
}

// benchGPO runs the generalized partial-order analysis (the GPO column).
func benchGPO(b *testing.B, net *petri.Net) {
	b.Helper()
	var states int
	for i := 0; i < b.N; i++ {
		e, err := core.NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := e.Analyze(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// table1Block emits the four engine sub-benchmarks for one model instance.
func table1Block(b *testing.B, net *petri.Net, size int, full, bdd bool) {
	b.Helper()
	if full {
		b.Run(fmt.Sprintf("full/n=%d", size), func(b *testing.B) { benchFull(b, net) })
	}
	b.Run(fmt.Sprintf("po/n=%d", size), func(b *testing.B) { benchPO(b, net) })
	if bdd {
		b.Run(fmt.Sprintf("bdd/n=%d", size), func(b *testing.B) { benchBDD(b, net) })
	}
	b.Run(fmt.Sprintf("gpo/n=%d", size), func(b *testing.B) { benchGPO(b, net) })
}

// BenchmarkTable1NSDP regenerates the NSDP rows of Table 1.
// Paper: full 18/322/5778/103682/1.86e6, SPIN+PO 12/110/1422/19270/239308,
// SMV peak 1068/10018/52320/687263/>24h, GPO 3/3/3/3/3.
func BenchmarkTable1NSDP(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		net := models.NSDP(n)
		// The full sweep at n=10 (1.86M states) and symbolic beyond n=6
		// are too slow to repeat under -benchtime; gpobench runs them once.
		table1Block(b, net, n, n <= 8, n <= 6)
	}
}

// BenchmarkTable1ASAT regenerates the ASAT rows of Table 1.
// Paper: full 88/7822/1.58e6, SPIN+PO 33/192/3598, SMV 1587/117667/>24h,
// GPO 8/14/23.
func BenchmarkTable1ASAT(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		net := models.ArbiterTree(n)
		table1Block(b, net, n, n <= 4, n <= 4)
	}
}

// BenchmarkTable1OVER regenerates the OVER rows of Table 1.
// Paper: full 65/519/4175/33460, SPIN+PO 28/107/467/2059,
// SMV 3511/10203/11759/24860, GPO 6/7/8/9.
func BenchmarkTable1OVER(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		net := models.Overtake(n)
		table1Block(b, net, n, true, n <= 4)
	}
}

// BenchmarkTable1RW regenerates the RW rows of Table 1.
// Paper: full = SPIN+PO = 72/523/4110/29642 (no reduction),
// SMV 3689/9886/10037/10267, GPO 2/2/2/2.
func BenchmarkTable1RW(b *testing.B) {
	for _, n := range []int{6, 9, 12, 15} {
		net := models.ReadersWriters(n)
		table1Block(b, net, n, n <= 12, n <= 9)
	}
}

// benchUnfold builds the McMillan prefix and runs its deadlock check (our
// extension engine; metric = prefix events).
func benchUnfold(b *testing.B, net *petri.Net) {
	b.Helper()
	var events int
	for i := 0; i < b.N; i++ {
		px, err := unfold.Build(net, unfold.Options{})
		if err != nil {
			b.Fatal(err)
		}
		px.FindDeadlock()
		events = len(px.Events)
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkFig1 regenerates the Figure 1 sweep: n independent transitions;
// full = 2^n states, partial order = n+1, unfolding prefix = n events,
// GPO = 2 states.
func BenchmarkFig1(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		net := models.Fig1(n)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) { benchFull(b, net) })
		b.Run(fmt.Sprintf("po/n=%d", n), func(b *testing.B) { benchPO(b, net) })
		b.Run(fmt.Sprintf("unfold/n=%d", n), func(b *testing.B) { benchUnfold(b, net) })
		b.Run(fmt.Sprintf("gpo/n=%d", n), func(b *testing.B) { benchGPO(b, net) })
	}
}

// BenchmarkFig2 regenerates the Figure 2 sweep: n concurrently marked
// conflict pairs; full = 3^n, partial order = 2^(n+1)−1, unfolding = 2n
// events, GPO = 2 states.
func BenchmarkFig2(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		net := models.Fig2(n)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) { benchFull(b, net) })
		b.Run(fmt.Sprintf("po/n=%d", n), func(b *testing.B) { benchPO(b, net) })
		b.Run(fmt.Sprintf("unfold/n=%d", n), func(b *testing.B) { benchUnfold(b, net) })
		b.Run(fmt.Sprintf("gpo/n=%d", n), func(b *testing.B) { benchGPO(b, net) })
	}
}

// BenchmarkGPOScalingNSDP exercises Section 4's scaling claim: GPO time
// grows roughly linearly in the philosopher count (the state count is a
// constant 3) even as |r₀| grows exponentially.
func BenchmarkGPOScalingNSDP(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		net := models.NSDP(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchGPO(b, net) })
	}
}

// BenchmarkAblationFamilyAlgebra compares the two family representations
// of the GPO engine on the same net (DESIGN.md D1): ZDD vs explicit.
func BenchmarkAblationFamilyAlgebra(b *testing.B) {
	net := models.NSDP(6)
	b.Run("zdd", func(b *testing.B) { benchGPO(b, net) })
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := core.NewEngine[*family.Family](net, family.NewAlgebra(net.NumTrans()))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := e.Analyze(core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStubbornSeed compares the stubborn-set seed strategies.
func BenchmarkAblationStubbornSeed(b *testing.B) {
	net := models.NSDP(6)
	for name, seed := range map[string]stubborn.SeedStrategy{
		"first": stubborn.SeedFirst,
		"best":  stubborn.SeedBest,
	} {
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := stubborn.Explore(net, stubborn.Options{Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAblationProviso measures the cost of the cycle proviso in the
// partial-order engine (it is what removes all reduction on RW).
func BenchmarkAblationProviso(b *testing.B) {
	net := models.ReadersWriters(9)
	for name, prov := range map[string]bool{"with": true, "without": false} {
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := stubborn.Explore(net, stubborn.Options{Proviso: prov})
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAblationBDDOrder compares the interleaved and sequential
// variable orders of the symbolic engine (DESIGN.md ablations).
func BenchmarkAblationBDDOrder(b *testing.B) {
	net := models.Fig1(6)
	for name, ord := range map[string]symbolic.Order{
		"interleaved": symbolic.OrderInterleaved,
		"sequential":  symbolic.OrderSequential,
	} {
		b.Run(name, func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Analyze(net, symbolic.Options{Order: ord})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.PeakNodes
			}
			b.ReportMetric(float64(peak), "peakBDD")
		})
	}
}
