// Quickstart: build a tiny producer/consumer net with a race, find its
// deadlock with the generalized partial-order engine, and print the
// witness marking plus its structural explanation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two clients compete for a server that can serve only one request and
	// must be released; client B forgets to release on its fast path.
	b := repro.NewNet("quickstart")
	idleA := b.Place("idleA")
	idleB := b.Place("idleB")
	srv := b.Place("server")
	busyA := b.Place("busyA")
	busyB := b.Place("busyB")
	doneB := b.Place("doneB")

	b.TransArcs("acquireA", []repro.Place{idleA, srv}, []repro.Place{busyA})
	b.TransArcs("releaseA", []repro.Place{busyA}, []repro.Place{idleA, srv})
	b.TransArcs("acquireB", []repro.Place{idleB, srv}, []repro.Place{busyB})
	b.TransArcs("fastB", []repro.Place{busyB}, []repro.Place{doneB}) // keeps the server!
	b.TransArcs("slowB", []repro.Place{busyB}, []repro.Place{idleB, srv})
	b.Mark(idleA, idleB, srv)

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The generalized engine explores both of B's conflicting paths
	// simultaneously.
	rep, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.GPO})
	if err != nil {
		log.Fatal(err)
	}
	full, err := repro.CountStates(net)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("net %s: %d reachable markings, GPO explored %d states\n",
		net.Name(), full, rep.States)
	if !rep.Deadlock {
		fmt.Println("no deadlock")
		return
	}
	fmt.Printf("deadlock found: %s\n", rep.Witness.String(net))
	var names []string
	for _, p := range repro.DeadlockSiphon(net, rep.Witness) {
		names = append(names, net.PlaceName(p))
	}
	fmt.Printf("empty siphon (places that can never be refilled): %v\n", names)

	// Fixing the bug: make fastB release the server too, and re-check.
	b2 := repro.NewNet("quickstart-fixed")
	idleA2 := b2.Place("idleA")
	idleB2 := b2.Place("idleB")
	srv2 := b2.Place("server")
	busyA2 := b2.Place("busyA")
	busyB2 := b2.Place("busyB")
	b2.TransArcs("acquireA", []repro.Place{idleA2, srv2}, []repro.Place{busyA2})
	b2.TransArcs("releaseA", []repro.Place{busyA2}, []repro.Place{idleA2, srv2})
	b2.TransArcs("acquireB", []repro.Place{idleB2, srv2}, []repro.Place{busyB2})
	b2.TransArcs("fastB", []repro.Place{busyB2}, []repro.Place{idleB2, srv2})
	b2.TransArcs("slowB", []repro.Place{busyB2}, []repro.Place{idleB2, srv2})
	b2.Mark(idleA2, idleB2, srv2)
	fixed, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := repro.CheckDeadlock(fixed, repro.Options{Engine: repro.GPO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the fix: deadlock=%v (%d GPO states)\n", rep2.Deadlock, rep2.States)
}
