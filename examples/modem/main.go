// Modem: an embedded-system verification scenario in the spirit of the
// paper's real-life application (a QAM modem, Section 5 / reference [16]).
//
// The design is written as communicating processes, compiled to a safe
// Petri net with repro.CompileSpec, and verified: the datapath pipeline
// must be deadlock-free and the controller/datapath reconfiguration
// handshake must never wedge. A buggy controller variant (the classic
// crossed handshake) is then checked to show the engines catching it.
package main

import (
	"fmt"
	"log"

	"repro"
)

// The modem: a framer feeds symbols to a mapper that, per frame, picks a
// constellation (QAM-16 or QAM-64 — a data-dependent choice), the
// modulator pushes samples to the line driver, and a controller can
// reconfigure the mapper between frames via a request/grant handshake.
const goodModem = `
proc framer = *( frame ; !sym )

proc mapper = *(
    ( ?sym ; ( map16 + map64 ) ; !iq
    + ?cfgreq ; retune ; !cfgack )
)

proc modulator = *( ?iq ; shape ; !smp )

proc driver = *( ?smp ; emit )

proc controller = *( monitor ; !cfgreq ; ?cfgack )

system framer mapper modulator driver controller
`

// The buggy variant: the controller demands the acknowledgement BEFORE
// issuing the request (a swapped handshake), while the mapper still
// answers request-then-ack. Both sides wait forever — but only on the
// reconfiguration path, which a simulation can easily miss.
const buggyModem = `
proc framer = *( frame ; !sym )

proc mapper = *(
    ( ?sym ; ( map16 + map64 ) ; !iq
    + ?cfgreq ; retune ; !cfgack )
)

proc modulator = *( ?iq ; shape ; !smp )

proc driver = *( ?smp ; emit )

proc controller = *( monitor ; ?cfgack ; !cfgreq )

system framer mapper modulator driver controller
`

func main() {
	check("good modem", goodModem)
	fmt.Println()
	check("buggy modem (swapped handshake)", buggyModem)
	fmt.Println()
	liveness()
	fmt.Println()
	drained()
}

// liveness shows the starvation directly: in the buggy design the
// controller and the mapper's reconfiguration path are dead even though
// the datapath keeps streaming, so deadlock detection alone cannot see
// the bug — transition liveness can.
func liveness() {
	fmt.Println("=== liveness comparison ===")
	for _, tc := range []struct{ label, src string }{
		{"good", goodModem},
		{"buggy", buggyModem},
	} {
		net, err := repro.CompileSpec(tc.src)
		if err != nil {
			log.Fatal(err)
		}
		live, err := repro.Liveness(net)
		if err != nil {
			log.Fatal(err)
		}
		var dead []string
		for t := repro.Trans(0); int(t) < net.NumTrans(); t++ {
			if !live[t] {
				dead = append(dead, net.TransName(t))
			}
		}
		fmt.Printf("  %-6s non-live transitions: %v\n", tc.label, dead)
	}
}

// drained makes the starvation a total deadlock by bounding the workload:
// with a framer that sends two frames and halts, the buggy handshake
// wedges the entire system once the pipeline drains — and every engine
// reports it.
func drained() {
	fmt.Println("=== bounded workload: the wedge becomes a total deadlock ===")
	finite := `
proc framer = frame ; !sym ; frame ; !sym ; halt

proc mapper = *(
    ( ?sym ; ( map16 + map64 ) ; !iq
    + ?cfgreq ; retune ; !cfgack )
)

proc modulator = *( ?iq ; shape ; !smp )

proc driver = *( ?smp ; emit )

proc controller = *( monitor ; ?cfgack ; !cfgreq )

system framer mapper modulator driver controller
`
	net, err := repro.CompileSpec(finite)
	if err != nil {
		log.Fatal(err)
	}
	for _, eng := range []repro.Engine{repro.Exhaustive, repro.GPO} {
		rep, err := repro.CheckDeadlock(net, repro.Options{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s deadlock=%v (%d states)\n", eng, rep.Deadlock, rep.States)
		if rep.Deadlock {
			fmt.Printf("    witness: %s\n", rep.Witness.String(net))
		}
	}
}

func check(label, src string) {
	net, err := repro.CompileSpec(src)
	if err != nil {
		log.Fatal(err)
	}
	full, err := repro.CountStates(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("compiled: %d places, %d transitions, %d reachable markings\n",
		net.NumPlaces(), net.NumTrans(), full)

	for _, eng := range []repro.Engine{repro.Exhaustive, repro.PartialOrder, repro.GPO} {
		rep, err := repro.CheckDeadlock(net, repro.Options{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s deadlock=%-5v states=%-6d %v\n",
			eng, rep.Deadlock, rep.States, rep.Elapsed.Round(10e3))
		if rep.Deadlock && eng == repro.GPO {
			fmt.Printf("    witness: %s\n", rep.Witness.String(net))
		}
	}

	// Safety: the mapper must never be retuning while the modulator is
	// shaping a symbol of the old constellation... here we simply check
	// that a mapped symbol and a retune can't be in flight at once is NOT
	// guaranteed by this design (the pipeline is decoupled), which the
	// checker duly reports as reachable.
	retune, ok1 := findPlaceAfter(net, "mapper.retune")
	shaping, ok2 := findPlaceAfter(net, "modulator.shape")
	if ok1 && ok2 {
		rep, err := repro.CheckSafety(net, []repro.Place{retune, shaping},
			repro.Options{Engine: repro.Exhaustive})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  retune-while-shaping reachable: %v\n", rep.Deadlock)
	}
}

// findPlaceAfter returns the output place of the named transition, which
// is the control location "just after" that action.
func findPlaceAfter(net *repro.Net, trans string) (repro.Place, bool) {
	t, ok := net.TransByName(trans)
	if !ok {
		return 0, false
	}
	post := net.Post(t)
	if len(post) == 0 {
		return 0, false
	}
	return post[0], true
}
