// Timing: interval timing analysis on an unfolding prefix — the direction
// the paper's conclusion sketches (timed Petri nets, references [7]/[13]).
//
// A two-stage pipelined datapath is specified as processes, compiled to a
// net, unfolded, and annotated with [min,max] delays; the analysis bounds
// the completion time, identifies the critical path, and bounds the
// separation between a stimulus and its response.
package main

import (
	"fmt"
	"log"

	"repro/internal/proc"
	"repro/internal/timed"
	"repro/internal/unfold"
)

const pipeline = `
# A sample is fetched, processed by two parallel filters, merged, and
# written back while a checksum is computed concurrently.
proc dsp = fetch ;
           ( fir || iir ) ;
           merge ;
           ( writeback || checksum ) ;
           commit

system dsp
`

func main() {
	net := proc.MustCompile(pipeline)
	px, err := unfold.Build(net, unfold.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d places, %d transitions; prefix: %d events\n",
		net.NumPlaces(), net.NumTrans(), len(px.Events))

	d := make(timed.Delays, net.NumTrans())
	set := func(name string, lo, hi int64) {
		t, ok := net.TransByName("dsp." + name)
		if !ok {
			log.Fatalf("no transition %s", name)
		}
		d[t] = timed.Delay{Lo: lo, Hi: hi}
	}
	set("fetch", 2, 3)
	set("fir", 8, 12)
	set("iir", 5, 15)
	set("merge", 1, 1)
	set("writeback", 4, 6)
	set("checksum", 2, 9)
	set("commit", 1, 1)
	set("fork", 0, 0)
	set("join", 0, 0)
	set("fork#2", 0, 0)
	set("join#2", 0, 0)

	res, err := timed.Analyze(px, d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nevent windows:")
	for i, e := range px.Events {
		b := res.Events[i]
		fmt.Printf("  %-16s [%3d, %3d]\n", net.TransName(e.T), b.Earliest, b.Latest)
	}

	span, _ := res.Span()
	fmt.Printf("\npipeline completes within [%d, %d] time units\n",
		span.Earliest, span.Latest)

	commit, _ := net.TransByName("dsp.commit")
	var commitEvent *unfold.Event
	for _, e := range px.Events {
		if e.T == commit {
			commitEvent = e
		}
	}
	fmt.Print("critical path: ")
	for i, e := range res.CriticalPath(commitEvent) {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(net.TransName(e.T))
	}
	fmt.Println()

	fetch, _ := net.TransByName("dsp.fetch")
	var fetchEvent *unfold.Event
	for _, e := range px.Events {
		if e.T == fetch {
			fetchEvent = e
		}
	}
	lo, hi := res.Separation(fetchEvent, commitEvent)
	fmt.Printf("fetch-to-commit latency within [%d, %d]\n", lo, hi)
}
