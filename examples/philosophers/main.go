// Philosophers: the paper's headline benchmark. Runs the non-serialized
// dining philosophers deadlock check with all four engines and shows the
// scaling behavior of Table 1: the full and partial-order state counts
// explode with the table size while the generalized analysis stays at 3
// states, finding the circular-wait deadlock every time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	fmt.Println("Non-serialized dining philosophers (NSDP) — deadlock detection")
	fmt.Println()
	fmt.Printf("%4s %16s %16s %16s %12s\n", "n", "full", "partial-order", "symbolic", "GPO")
	for _, n := range []int{2, 4, 6, 8} {
		net := repro.NSDP(n)
		row := fmt.Sprintf("%4d", n)
		for _, eng := range []repro.Engine{
			repro.Exhaustive, repro.PartialOrder, repro.Symbolic, repro.GPO,
		} {
			if eng == repro.Symbolic && n > 6 {
				row += fmt.Sprintf("%16s", "-")
				continue
			}
			rep, err := repro.CheckDeadlock(net, repro.Options{Engine: eng})
			if err != nil {
				log.Fatal(err)
			}
			if !rep.Deadlock {
				log.Fatalf("engine %v missed the NSDP(%d) deadlock", eng, n)
			}
			w := 12
			if eng != repro.GPO {
				w = 16
			}
			row += fmt.Sprintf("%*s", w, fmt.Sprintf("%d states", rep.States))
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("GPO at sizes no explicit engine can reach:")
	for _, n := range []int{10, 20, 40} {
		start := time.Now()
		res, err := repro.AnalyzeGPO(repro.NSDP(n), false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  NSDP(%2d): %d states, deadlock=%v, |valid sets| peak=%.3g, %v\n",
			n, res.States, res.Deadlock, res.PeakValid, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println()
	net := repro.NSDP(5)
	rep, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.GPO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSDP(5) witness: %s\n", rep.Witness.String(net))
	fmt.Println("(every philosopher holds one fork and waits for the other)")
}
