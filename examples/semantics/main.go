// Semantics: a step-by-step replay of the paper's Figures 3 and 7, showing
// the Generalized Petri Net machinery itself — colored tokens as families
// of transition sets, the single and multiple firing rules, the valid-set
// conditioning ("extended conflicts"), and the mapping back to classical
// markings.
//
// This example deliberately reaches below the public façade into the
// engine packages to display the intermediate states the paper draws.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
)

func main() {
	fig7()
	fmt.Println()
	fig3()
}

func engine(n *petri.Net) *core.Engine[*family.Family] {
	e, err := core.NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func show(e *core.Engine[*family.Family], n *petri.Net, s *core.State[*family.Family], label string) {
	name := func(i int) string { return n.TransName(petri.Trans(i)) }
	fmt.Printf("%s\n", label)
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if !s.M[p].IsEmpty() {
			fmt.Printf("  m(%s) = %s\n", n.PlaceName(p), s.M[p].StringNamed(name))
		}
	}
	fmt.Printf("  r = %s\n", s.R.StringNamed(name))
	var maps []string
	for _, m := range e.Mapping(s, 0) {
		maps = append(maps, m.String(n))
	}
	fmt.Printf("  mapping = %v\n", maps)
}

func fig7() {
	fmt.Println("=== Figure 7: multiple firing and extended conflicts ===")
	net := models.Fig7()
	e := engine(net)
	A, _ := net.TransByName("A")
	B, _ := net.TransByName("B")
	C, _ := net.TransByName("C")
	D, _ := net.TransByName("D")

	s0 := e.InitialState()
	show(e, net, s0, "s0 (initial; conflicts A-B on p0, C-D on p3):")

	mA, mB := e.MEnabled(s0, A), e.MEnabled(s0, B)
	s1 := e.MultiFire(s0, []petri.Trans{A, B}, map[petri.Trans]*family.Family{A: mA, B: mB})
	show(e, net, s1, "\ns1 = fire {A,B} simultaneously:")

	mC, mD := e.MEnabled(s1, C), e.MEnabled(s1, D)
	s2 := e.MultiFire(s1, []petri.Trans{C, D}, map[petri.Trans]*family.Family{C: mC, D: mD})
	show(e, net, s2, "\ns2 = fire {C,D} simultaneously:")
	fmt.Println("\nNote r2: {A,D} and {B,C} were pruned — the extended conflict")
	fmt.Println("the paper describes: if A precedes C and C conflicts with D,")
	fmt.Println("then A conflicts with D.")
}

func fig3() {
	fmt.Println("=== Figure 3: conflicting colors block transition D ===")
	net := models.Fig3()
	e := engine(net)
	A, _ := net.TransByName("A")
	B, _ := net.TransByName("B")
	C, _ := net.TransByName("C")
	D, _ := net.TransByName("D")

	s0 := e.InitialState()
	show(e, net, s0, "s0 (initial):")

	mA, mB := e.MEnabled(s0, A), e.MEnabled(s0, B)
	s1 := e.MultiFire(s0, []petri.Trans{A, B}, map[petri.Trans]*family.Family{A: mA, B: mB})
	show(e, net, s1, "\ns1 = fire {A,B} simultaneously (tokens are 'painted'):")

	fmt.Printf("\n  s_enabled(D, s1) empty? %v  — p3 and p4 carry conflicting colors\n",
		e.SEnabled(s1, D).IsEmpty())
	enC := e.SEnabled(s1, C)
	fmt.Printf("  s_enabled(C, s1) = %s — C fires on A's branch\n",
		enC.StringNamed(func(i int) string { return net.TransName(petri.Trans(i)) }))

	s2 := e.SingleFire(s1, C, enC)
	show(e, net, s2, "\ns2 = single-fire C (no extra coloring needed):")

	fmt.Printf("\n  D still blocked? %v\n", e.SEnabled(s2, D).IsEmpty())
	dead := e.DeadSets(s2)
	fmt.Printf("  dead histories at s2: %s (both branches terminate)\n",
		dead.StringNamed(func(i int) string { return net.TransName(petri.Trans(i)) }))
}
