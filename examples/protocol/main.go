// Protocol: safety verification of the overtake protocol and the
// readers/writers system — the paper's OVER and RW benchmarks — using the
// safety-to-deadlock reduction of Section 4.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	overtake()
	fmt.Println()
	readersWriters()
}

func overtake() {
	fmt.Println("=== OVER(3): lane mutual exclusion ===")
	net := repro.Overtake(3)
	fmt.Printf("net %s: %d places, %d transitions\n",
		net.Name(), net.NumPlaces(), net.NumTrans())

	// Vehicle 0 overtaking rightward uses lane segment 1; vehicle 1
	// overtaking leftward uses lane segment 1 too. Both passing at once
	// would be a collision — the lane token must prevent it.
	passR0, ok1 := net.PlaceByName("passR0")
	passL1, ok2 := net.PlaceByName("passL1")
	if !ok1 || !ok2 {
		log.Fatal("unexpected net layout")
	}
	for _, eng := range []repro.Engine{repro.Exhaustive, repro.GPO} {
		rep, err := repro.CheckSafety(net, []repro.Place{passR0, passL1},
			repro.Options{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  collision reachable (%v engine): %v (%d states)\n",
			eng, rep.Deadlock, rep.States)
	}

	// Two vehicles CAN be passing at the same time in different segments.
	passL0, _ := net.PlaceByName("passL0")
	rep, err := repro.CheckSafety(net, []repro.Place{passL0, passL1},
		repro.Options{Engine: repro.Exhaustive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  concurrent passing in different segments: %v (expected true)\n",
		rep.Deadlock)

	dl, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.GPO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deadlock free: %v (GPO: %d states)\n", !dl.Deadlock, dl.States)
}

func readersWriters() {
	fmt.Println("=== RW(6): reader/writer exclusion ===")
	net := repro.ReadersWriters(6)
	reading0, _ := net.PlaceByName("reading0")
	writing, _ := net.PlaceByName("writing")

	// A reader and the writer must never be active simultaneously.
	for _, eng := range []repro.Engine{repro.Exhaustive, repro.Symbolic, repro.GPO} {
		rep, err := repro.CheckSafety(net, []repro.Place{reading0, writing},
			repro.Options{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reader+writer conflict reachable (%v): %v\n", eng, rep.Deadlock)
	}

	// Two readers may read together.
	reading1, _ := net.PlaceByName("reading1")
	rep, err := repro.CheckSafety(net, []repro.Place{reading0, reading1},
		repro.Options{Engine: repro.Exhaustive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  two readers together: %v (expected true)\n", rep.Deadlock)

	// Structural safeness certificate: every place covered by an invariant.
	uncovered, err := repro.ProveSafe(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1-boundedness proven structurally: %v\n", len(uncovered) == 0)

	// The paper's observation: classical PO reduction does nothing here,
	// the generalized analysis closes the whole system in 2 states.
	po, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.PartialOrder, Proviso: true})
	if err != nil {
		log.Fatal(err)
	}
	full, err := repro.CountStates(net)
	if err != nil {
		log.Fatal(err)
	}
	gpo, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.GPO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  state counts: full=%d, partial-order=%d (no reduction), GPO=%d\n",
		full, po.States, gpo.States)
}
