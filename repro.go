package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/proc"
	"repro/internal/reach"
	"repro/internal/structural"
	"repro/internal/verify"
	"repro/internal/zdd"
)

// Core net types, aliased from the internal implementation so users of the
// public API can build and inspect nets directly.
type (
	// Net is an immutable safe Petri net ⟨P, T, F, m₀⟩.
	Net = petri.Net
	// Builder accumulates places, transitions, arcs and the initial
	// marking, and produces an immutable Net.
	Builder = petri.Builder
	// Place identifies a place by dense index.
	Place = petri.Place
	// Trans identifies a transition by dense index.
	Trans = petri.Trans
	// Marking is a token configuration (a place bitset).
	Marking = petri.Marking
)

// NewNet returns a builder for a net with the given name.
func NewNet(name string) *Builder { return petri.NewBuilder(name) }

// ParseNet reads a net in the .pn textual format.
func ParseNet(r io.Reader) (*Net, error) { return pnio.Parse(r) }

// WriteNet writes a net in the .pn textual format.
func WriteNet(w io.Writer, n *Net) error { return pnio.Write(w, n) }

// NetDOT renders the net structure as a Graphviz digraph.
func NetDOT(w io.Writer, n *Net) error { return pnio.NetDOT(w, n) }

// CompileSpec compiles a process-algebra specification (the front-end of
// the paper's reference [16]) into a safe Petri net. Processes are
// composed in parallel; !c / ?c pairs become rendezvous transitions.
//
//	net, err := repro.CompileSpec(`
//	    proc producer = *( make ; !data )
//	    proc consumer = *( ?data ; use )
//	    system producer consumer
//	`)
func CompileSpec(src string) (*Net, error) {
	spec, err := proc.Parse(src)
	if err != nil {
		return nil, err
	}
	return proc.Compile(spec)
}

// Verification façade.
type (
	// Engine selects the analysis technique.
	Engine = verify.Engine
	// Options configures a check.
	Options = verify.Options
	// Report is the engine-comparable outcome of a check.
	Report = verify.Report
)

// The four analysis engines of the paper's comparison, plus the explicit
// GPO variant.
const (
	Exhaustive   = verify.Exhaustive
	PartialOrder = verify.PartialOrder
	Symbolic     = verify.Symbolic
	GPO          = verify.GPO
	GPOExplicit  = verify.GPOExplicit
	Unfolding    = verify.Unfolding
)

// CheckDeadlock analyses the net for reachable deadlocks.
func CheckDeadlock(n *Net, opts Options) (*Report, error) {
	return verify.CheckDeadlock(n, opts)
}

// CheckSafety checks whether a marking with all the given places
// simultaneously marked is reachable.
func CheckSafety(n *Net, bad []Place, opts Options) (*Report, error) {
	return verify.CheckSafety(n, bad, opts)
}

// CountStates returns the size of the full reachable state space.
func CountStates(n *Net) (int, error) { return reach.CountStates(n) }

// Liveness computes, over the full reachability graph, whether each
// transition is live (from every reachable marking it can eventually fire
// again). Dead components — a process starved by a protocol bug without a
// total deadlock — show up as non-live transitions.
func Liveness(n *Net) ([]bool, error) {
	res, err := reach.Explore(n, reach.Options{StoreGraph: true})
	if err != nil {
		return nil, err
	}
	return res.Graph.Live(), nil
}

// GPOAnalysis gives direct access to the generalized partial-order engine
// (ZDD-backed) for callers that want the raw statistics: GPN states
// explored, multiple/single firing counts and the peak valid-set count.
type GPOAnalysis = core.Result

// AnalyzeGPO runs the generalized partial-order analysis and returns its
// raw result. stopAtDeadlock halts at the first deadlock possibility.
func AnalyzeGPO(n *Net, stopAtDeadlock bool) (*GPOAnalysis, error) {
	e, err := core.NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
	if err != nil {
		return nil, err
	}
	res, _, err := e.Analyze(core.Options{StopAtDeadlock: stopAtDeadlock})
	return res, err
}

// AnalyzeGPOExplicit is AnalyzeGPO with the explicit (uncompressed) family
// representation; identical results, practical only for small nets.
func AnalyzeGPOExplicit(n *Net, stopAtDeadlock bool) (*GPOAnalysis, error) {
	e, err := core.NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	if err != nil {
		return nil, err
	}
	res, _, err := e.Analyze(core.Options{StopAtDeadlock: stopAtDeadlock})
	return res, err
}

// Structural analysis.

// PInvariants computes a generating set of nonnegative place invariants.
func PInvariants(n *Net, maxRows int) ([][]int, error) {
	return structural.PInvariants(n, maxRows)
}

// ProveSafe attempts a structural safeness proof; it returns the places
// not covered by a one-token invariant (empty means provably safe).
func ProveSafe(n *Net) ([]Place, error) {
	invs, err := structural.PInvariants(n, 0)
	if err != nil {
		return nil, err
	}
	return structural.ProveSafe(n, invs), nil
}

// DeadlockSiphon explains a dead marking structurally: the maximal empty
// siphon of the witness.
func DeadlockSiphon(n *Net, dead Marking) []Place {
	return structural.DeadlockSiphon(n, dead)
}

// Benchmark model generators (the nets of the paper's Table 1 and
// figures).

// NSDP builds the non-serialized dining philosophers net (Table 1).
func NSDP(n int) *Net { return models.NSDP(n) }

// ReadersWriters builds the RW(n) net (Table 1).
func ReadersWriters(n int) *Net { return models.ReadersWriters(n) }

// ArbiterTree builds the ASAT(n) asynchronous arbiter tree (Table 1).
func ArbiterTree(n int) *Net { return models.ArbiterTree(n) }

// Overtake builds the OVER(n) protocol net (Table 1).
func Overtake(n int) *Net { return models.Overtake(n) }

// IndependentTransitions builds the paper's Figure 1 net generalized to n
// concurrent transitions.
func IndependentTransitions(n int) *Net { return models.Fig1(n) }

// ConflictPairs builds the paper's Figure 2 net: n concurrently marked
// conflict places.
func ConflictPairs(n int) *Net { return models.Fig2(n) }
