// Package repro is a Go reproduction of "Efficient Verification using
// Generalized Partial Order Analysis" (Vercauteren, Verkest, de Jong, Lin —
// DATE 1998): a formal verification library for concurrent systems modeled
// as safe Petri nets.
//
// # What it does
//
// The library checks deadlock freedom and safety properties of safe
// (1-bounded) Petri nets with four interchangeable engines:
//
//   - Exhaustive — conventional explicit reachability analysis
//     (the paper's Section 2.2 baseline);
//   - PartialOrder — stubborn-set partial-order reduction
//     (Section 2.3; the role SPIN+PO plays in the paper's Table 1);
//   - Symbolic — OBDD-based symbolic reachability
//     (Section 2.4; the SMV role);
//   - GPO — the paper's contribution: generalized partial-order analysis
//     over Generalized Petri Nets, which explores concurrently enabled
//     *conflicting* paths simultaneously by tracking families of
//     transition sets ("colored tokens") per place. On nets with many
//     concurrently marked conflict places it visits exponentially fewer
//     states than either classical technique: the dining philosophers
//     deadlock is found in 3 states regardless of the number of
//     philosophers.
//
// # Quick start
//
//	b := repro.NewNet("choice")
//	p := b.Place("p")
//	a := b.Place("a")
//	q := b.Place("q")
//	b.TransArcs("left", []repro.Place{p}, []repro.Place{a})
//	b.TransArcs("right", []repro.Place{p}, []repro.Place{q})
//	b.Mark(p)
//	net, err := b.Build()
//	...
//	rep, err := repro.CheckDeadlock(net, repro.Options{Engine: repro.GPO})
//	if rep.Deadlock { fmt.Println("deadlock:", rep.Witness.String(net)) }
//
// The cmd/gpoverify tool exposes the same checks on .pn files, and
// cmd/gpobench regenerates every table and figure of the paper; see
// EXPERIMENTS.md for the measured-vs-published numbers.
//
// # Observability
//
// Every engine accepts an optional metric registry and progress
// reporter through its Options (internal/obs; surfaced on
// repro.Options as Metrics and Progress). A nil registry is free:
// engines thread it unconditionally and the instruments no-op. A
// non-nil registry collects package-prefixed counters, gauges,
// histograms and phase spans — states expanded, stubborn-set sizes,
// BDD/ZDD cache hit rates, peak |r| — without changing what the engine
// explores. OBSERVABILITY.md documents every metric name, the CLI
// flags (-metrics, -progress, -cpuprofile, -memprofile, -pprof) and
// the machine-readable BENCH_<date>.json artifact that `gpobench
// -json` emits.
package repro
