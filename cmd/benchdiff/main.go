// Command benchdiff compares two gpobench JSON artifacts
// (BENCH_<date>.json, schema gpobench/v1) per (instance, engine) pair and
// flags wall-clock regressions beyond a threshold as well as state-count
// mismatches, so perf runs are diffed mechanically instead of by
// eyeballing tables.
//
// Usage:
//
//	benchdiff BENCH_old.json BENCH_new.json
//	benchdiff -threshold 0.05 -json old.json new.json
//	benchdiff -strict old.json new.json      # coverage loss also fails
//
// Exit status: 0 when clean, 1 when regressions or state-count
// mismatches were flagged (with -strict, also when entries are only in
// the base artifact or incomparable — i.e. coverage silently shrank),
// 2 on usage or read errors. CI gates on the exit code; see
// EXPERIMENTS.md for the contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		threshold = flag.Float64("threshold", obs.DefaultRegressionThreshold,
			"relative wall-clock slowdown to flag (0.10 = >10% slower)")
		jsonOut = flag.Bool("json", false, "emit the diff as JSON instead of a table")
		strict  = flag.Bool("strict", false, "also fail (exit 1) on entries only in the base artifact or incomparable (skipped/errored on one side)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] [-json] <base.json> <new.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := readReport(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := readReport(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	diff := obs.DiffBenchReports(base, cur, *threshold)
	if *jsonOut {
		if err := writeJSON(os.Stdout, diff); err != nil {
			fatal(err)
		}
	} else if err := diff.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if !diff.Clean() {
		os.Exit(1)
	}
	if *strict && (len(diff.OnlyInBase) > 0 || len(diff.Incomparable) > 0) {
		fmt.Fprintf(os.Stderr, "benchdiff: strict: %d only-in-base, %d incomparable\n",
			len(diff.OnlyInBase), len(diff.Incomparable))
		os.Exit(1)
	}
}

func readReport(path string) (*obs.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := obs.ParseBenchReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeJSON(w *os.File, diff *obs.BenchDiffReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diff)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
