// Command gpobench regenerates the evaluation artifacts of the paper:
// Table 1 (NSDP/ASAT/OVER/RW across all four engines) and the scaling
// behavior behind Figures 1 and 2. Paper-published values are printed
// beside the measured ones where the paper reports them.
//
// Usage:
//
//	gpobench -table1                 # all four families, paper sizes
//	gpobench -table1 -family nsdp    # one family
//	gpobench -figure 1 -max 12       # interleaving blow-up sweep
//	gpobench -figure 2 -max 12       # conflict-pair blow-up sweep
//	gpobench -all                    # everything
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

// row is one Table 1 line: a model instance plus the paper's published
// numbers (0 = not reported / not applicable).
type row struct {
	family    string
	size      int
	paperFull float64 // paper "States"
	paperPO   int     // paper SPIN+PO states
	paperBDD  int     // paper SMV peak BDD size (0 = >24h in the paper)
	paperGPO  int     // paper GPO states
	skipFull  bool    // too big to enumerate here
	skipBDD   bool    // symbolic blow-up guard
}

var table1 = []row{
	{family: "nsdp", size: 2, paperFull: 18, paperPO: 12, paperBDD: 1068, paperGPO: 3},
	{family: "nsdp", size: 4, paperFull: 322, paperPO: 110, paperBDD: 10018, paperGPO: 3},
	{family: "nsdp", size: 6, paperFull: 5778, paperPO: 1422, paperBDD: 52320, paperGPO: 3},
	{family: "nsdp", size: 8, paperFull: 103682, paperPO: 19270, paperBDD: 687263, paperGPO: 3},
	{family: "nsdp", size: 10, paperFull: 1.86e6, paperPO: 239308, paperBDD: 0, paperGPO: 3},
	{family: "asat", size: 2, paperFull: 88, paperPO: 33, paperBDD: 1587, paperGPO: 8},
	{family: "asat", size: 4, paperFull: 7822, paperPO: 192, paperBDD: 117667, paperGPO: 14},
	{family: "asat", size: 8, paperFull: 1.58e6, paperPO: 3598, paperBDD: 0, paperGPO: 23, skipBDD: true},
	{family: "over", size: 2, paperFull: 65, paperPO: 28, paperBDD: 3511, paperGPO: 6},
	{family: "over", size: 3, paperFull: 519, paperPO: 107, paperBDD: 10203, paperGPO: 7},
	{family: "over", size: 4, paperFull: 4175, paperPO: 467, paperBDD: 11759, paperGPO: 8},
	{family: "over", size: 5, paperFull: 33460, paperPO: 2059, paperBDD: 24860, paperGPO: 9},
	{family: "rw", size: 6, paperFull: 72, paperPO: 72, paperBDD: 3689, paperGPO: 2},
	{family: "rw", size: 9, paperFull: 523, paperPO: 523, paperBDD: 9886, paperGPO: 2},
	{family: "rw", size: 12, paperFull: 4110, paperPO: 4110, paperBDD: 10037, paperGPO: 2},
	{family: "rw", size: 15, paperFull: 29642, paperPO: 29642, paperBDD: 10267, paperGPO: 2},
}

func main() {
	var (
		doTable1 = flag.Bool("table1", false, "regenerate Table 1")
		family   = flag.String("family", "all", "restrict Table 1 to one family (nsdp, asat, over, rw)")
		figure   = flag.Int("figure", 0, "regenerate the Figure 1 or Figure 2 sweep")
		maxN     = flag.Int("max", 10, "largest size in figure sweeps")
		doAll    = flag.Bool("all", false, "regenerate everything")
		maxNodes = flag.Int("max-nodes", 3_000_000, "BDD node cap for the symbolic engine")
	)
	flag.Parse()

	if *doAll {
		*doTable1 = true
	}
	ran := false
	if *doTable1 {
		runTable1(*family, *maxNodes)
		ran = true
	}
	if *figure == 1 || *doAll {
		if *figure == 1 || *doAll {
			runFigure1(*maxN)
			ran = true
		}
	}
	if *figure == 2 || *doAll {
		runFigure2(*maxN)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(family string, maxNodes int) {
	fmt.Println("Table 1 — Results of Generalized Partial Order Analysis")
	fmt.Println("(paper-published values in parentheses on the second line of each row;")
	fmt.Println(" PO = stubborn sets, best seed; PO+prov adds the cycle proviso, which is")
	fmt.Println(" what removes all reduction on RW as the paper observed for SPIN+PO;")
	fmt.Println(" '-' = not run, '>' = aborted at cap)")
	fmt.Println()
	fmt.Printf("%-10s | %18s | %10s %10s %9s | %16s %9s | %10s %9s\n",
		"Problem", "States", "PO", "PO+prov", "time", "Symbolic peak", "time", "GPO", "time")
	fmt.Println(strings.Repeat("-", 118))

	for _, r := range table1 {
		if family != "all" && family != r.family {
			continue
		}
		net, err := models.ByName(r.family, r.size)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		name := fmt.Sprintf("%s(%d)", strings.ToUpper(r.family), r.size)

		fullS := measureFull(net, r)
		poS, _ := measurePO(net, false)
		provS, poT := measurePO(net, true)
		bddS, bddT := measureBDD(net, r, maxNodes)
		gpoS, gpoT := measureGPO(net)

		fmt.Printf("%-10s | %10s %7s | %10s %10s %9s | %16s %9s | %10s %9s\n",
			name,
			fullS, paren(r.paperFull),
			poS, provS, poT,
			bddS, bddT,
			gpoS, gpoT)
		fmt.Printf("%-10s | %18s | %10s %10s %9s | %16s %9s | %10s %9s\n",
			"", "", paren(float64(r.paperPO)), "", "", parenBDD(r.paperBDD), "", paren(float64(r.paperGPO)), "")
	}
	fmt.Println()
}

func measureFull(net *petri.Net, r row) string {
	if r.skipFull {
		return "-"
	}
	res, err := reach.Explore(net, reach.Options{MaxStates: 20_000_000})
	if err != nil {
		if errors.Is(err, reach.ErrStateLimit) {
			return ">2e7"
		}
		return "err"
	}
	return fmt.Sprint(res.States)
}

func measurePO(net *petri.Net, proviso bool) (string, string) {
	start := time.Now()
	res, err := stubborn.Explore(net, stubborn.Options{
		MaxStates: 20_000_000,
		Seed:      stubborn.SeedBest,
		Proviso:   proviso,
	})
	if err != nil {
		return "err", "-"
	}
	return fmt.Sprint(res.States), fmtDur(time.Since(start))
}

func measureBDD(net *petri.Net, r row, maxNodes int) (string, string) {
	if r.skipBDD {
		return "-", "-"
	}
	start := time.Now()
	res, err := symbolic.Analyze(net, symbolic.Options{MaxNodes: maxNodes})
	if err != nil {
		if errors.Is(err, symbolic.ErrNodeLimit) {
			return fmt.Sprintf(">%d", maxNodes), fmtDur(time.Since(start))
		}
		return "err", "-"
	}
	return fmt.Sprint(res.PeakNodes), fmtDur(time.Since(start))
}

func measureGPO(net *petri.Net) (string, string) {
	start := time.Now()
	rep, err := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
	if err != nil {
		return "err", "-"
	}
	return fmt.Sprint(rep.States), fmtDur(time.Since(start))
}

func runFigure1(maxN int) {
	fmt.Println("Figure 1 — interleaving blow-up: n independent transitions")
	fmt.Printf("%4s %12s %12s %12s\n", "n", "full(2^n)", "PO(n+1)", "GPO")
	for n := 1; n <= maxN; n++ {
		net := models.Fig1(n)
		full, _ := reach.CountStates(net)
		po, _ := stubborn.Explore(net, stubborn.Options{})
		gpo, _ := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
		fmt.Printf("%4d %12d %12d %12d\n", n, full, po.States, gpo.States)
	}
	fmt.Println()
}

func runFigure2(maxN int) {
	fmt.Println("Figure 2 — conflict-place blow-up: n concurrently marked conflict pairs")
	fmt.Printf("%4s %12s %16s %12s\n", "n", "full(3^n)", "PO(2^(n+1)-1)", "GPO")
	for n := 1; n <= maxN; n++ {
		net := models.Fig2(n)
		full, _ := reach.CountStates(net)
		po, _ := stubborn.Explore(net, stubborn.Options{})
		gpo, _ := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
		fmt.Printf("%4d %12d %16d %12d\n", n, full, po.States, gpo.States)
	}
	fmt.Println()
}

func paren(v float64) string {
	if v == 0 {
		return ""
	}
	if v == float64(int64(v)) && v < 1e6 {
		return fmt.Sprintf("(%d)", int64(v))
	}
	return fmt.Sprintf("(%.3g)", v)
}

func parenBDD(v int) string {
	if v == 0 {
		return "(>24h)"
	}
	return fmt.Sprintf("(%d)", v)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
