// Command gpobench regenerates the evaluation artifacts of the paper:
// Table 1 (NSDP/ASAT/OVER/RW across all four engines) and the scaling
// behavior behind Figures 1 and 2. Paper-published values are printed
// beside the measured ones where the paper reports them.
//
// Usage:
//
//	gpobench -table1                 # all four families, paper sizes
//	gpobench -table1 -family nsdp    # one family
//	gpobench -figure 1 -max 12       # interleaving blow-up sweep
//	gpobench -figure 2 -max 12       # conflict-pair blow-up sweep
//	gpobench -all                    # everything
//	gpobench -json -family rw        # machine-readable BENCH_<date>.json
//
// The exhaustive engine runs with -workers parallel BFS workers (default
// GOMAXPROCS, 0 = sequential); the worker count is recorded in the JSON
// artifact so runs stay comparable.
//
// Observability flags (see OBSERVABILITY.md): -json [-out file] writes
// the structured benchmark artifact, -ledger journals every measured
// engine run to a ledger/v1 JSONL file under its content-addressed run
// ID (browse with gpostat -history), -metrics dumps the program's metric
// registry, -trace records a flight-recorder trace of the engine runs
// (most useful with a single -only instance; summarize with gpotrace),
// -cpuprofile/-memprofile write pprof profiles, -pprof serves
// net/http/pprof, and -progress reports long runs on stderr.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/reach"
	"repro/internal/stubborn"
	"repro/internal/verify"
)

func main() {
	var (
		doTable1   = flag.Bool("table1", false, "regenerate Table 1")
		family     = flag.String("family", "all", "restrict Table 1 to one family (nsdp, asat, over, rw)")
		only       = flag.String("only", "", "restrict Table 1 to instances whose name (e.g. 'nsdp(8)') matches this regexp")
		figure     = flag.Int("figure", 0, "regenerate the Figure 1 or Figure 2 sweep")
		maxN       = flag.Int("max", 0, "largest size: figure sweeps default to 10; caps Table 1 rows when set")
		doAll      = flag.Bool("all", false, "regenerate everything")
		maxNodes   = flag.Int("max-nodes", 3_000_000, "BDD node cap for the symbolic engine")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the exhaustive engine (0 = sequential)")
		jsonOut    = flag.Bool("json", false, "run Table 1 and write the machine-readable artifact")
		outFile    = flag.String("out", "", "artifact path for -json ('-' = stdout; default BENCH_<date>.json)")
		metricsOut = flag.String("metrics", "", "write the program's metric registry as JSON to this file ('-' = stderr)")
		ledgerOut  = flag.String("ledger", "", "append one ledger/v1 JSONL entry per measured engine run to this file (browse with gpostat -history)")
		traceOut   = flag.String("trace", "", "record a flight-recorder trace to this file (.jsonl/.ndjson = JSON lines, else Chrome/Perfetto trace JSON)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		progress   = flag.Bool("progress", false, "report long engine runs periodically on stderr")
		reduceNet  = flag.Bool("reduce", false, "apply the structural reduction pre-pass before every engine (recorded in the artifact; states are not comparable to unreduced runs)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gpobench: pprof server:", err)
			}
		}()
	}

	reg := obs.New()
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Options{})
	}
	cfg := bench.Config{
		Family:   *family,
		Only:     *only,
		MaxSize:  *maxN,
		MaxNodes: *maxNodes,
		Workers:  *workers,
		Reduce:   *reduceNet,
		Progress: *progress,
		Trace:    tracer,
	}
	if *ledgerOut != "" {
		l, err := ledger.Open(*ledgerOut, 0)
		if err != nil {
			fatal(err)
		}
		defer l.Close()
		cfg.Ledger = l
	}
	figMax := *maxN
	if figMax <= 0 {
		figMax = 10
	}

	if *doAll {
		*doTable1 = true
	}
	ran := false
	if *jsonOut {
		if err := runJSON(cfg, *outFile); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *doTable1 {
		sp := reg.StartSpan("gpobench.table1")
		runTable1(cfg)
		sp.End()
		ran = true
	}
	if *figure == 1 || *doAll {
		sp := reg.StartSpan("gpobench.figure1")
		runFigure1(figMax)
		sp.End()
		ran = true
	}
	if *figure == 2 || *doAll {
		sp := reg.StartSpan("gpobench.figure2")
		runFigure2(figMax)
		sp.End()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := trace.WriteFile(*traceOut, tracer.Dump()); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runJSON runs the selected Table 1 rows and writes the structured
// artifact (see obs.BenchReport for the schema).
func runJSON(cfg bench.Config, out string) error {
	rep, err := bench.Run(cfg)
	if err != nil {
		return err
	}
	if out == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	if out == "" {
		out = obs.BenchFileName(time.Now())
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "gpobench: wrote", out)
	return nil
}

func writeMetrics(reg *obs.Registry, out string) error {
	if out == "-" {
		return reg.Flush(obs.JSONSink{W: os.Stderr, Indent: true})
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Flush(obs.JSONSink{W: f, Indent: true}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runTable1(cfg bench.Config) {
	fmt.Println("Table 1 — Results of Generalized Partial Order Analysis")
	fmt.Println("(paper-published values in parentheses on the second line of each row;")
	fmt.Println(" PO = stubborn sets, best seed; PO+prov adds the cycle proviso, which is")
	fmt.Println(" what removes all reduction on RW as the paper observed for SPIN+PO;")
	fmt.Println(" '-' = not run, '>' = aborted at cap)")
	fmt.Println()
	fmt.Printf("%-10s | %18s | %10s %10s %9s | %16s %9s | %10s %9s\n",
		"Problem", "States", "PO", "PO+prov", "time", "Symbolic peak", "time", "GPO", "time")
	fmt.Println(strings.Repeat("-", 118))

	rows, err := cfg.Rows()
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		net, err := models.ByName(r.Family, r.Size)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		name := fmt.Sprintf("%s(%d)", strings.ToUpper(r.Family), r.Size)

		es := bench.RunRow(net, r, cfg)
		byEngine := make(map[string]obs.BenchEntry, len(es))
		for _, e := range es {
			byEngine[e.Engine] = e
		}
		full := byEngine[bench.EngineExhaustive]
		po := byEngine[bench.EnginePO]
		prov := byEngine[bench.EnginePOProviso]
		sym := byEngine[bench.EngineSymbolic]
		gpo := byEngine[bench.EngineGPO]

		fmt.Printf("%-10s | %10s %7s | %10s %10s %9s | %16s %9s | %10s %9s\n",
			name,
			states(full), paren(r.PaperFull),
			states(po), states(prov), wall(prov),
			peak(sym), wall(sym),
			states(gpo), wall(gpo))
		fmt.Printf("%-10s | %18s | %10s %10s %9s | %16s %9s | %10s %9s\n",
			"", "", paren(float64(r.PaperPO)), "", "", parenBDD(r.PaperBDD), "", paren(float64(r.PaperGPO)), "")
	}
	fmt.Println()
}

// states renders an entry's state count for the text table.
func states(e obs.BenchEntry) string {
	switch {
	case e.Skipped:
		return "-"
	case e.Error != "":
		return "err"
	case e.Capped:
		return fmt.Sprintf(">%d", e.States)
	}
	return fmt.Sprint(e.States)
}

// peak renders the symbolic engine's peak node count.
func peak(e obs.BenchEntry) string {
	switch {
	case e.Skipped:
		return "-"
	case e.Error != "":
		return "err"
	case e.Capped:
		return fmt.Sprintf(">%d", e.PeakNodes)
	}
	return fmt.Sprint(e.PeakNodes)
}

func wall(e obs.BenchEntry) string {
	if e.Skipped || e.Error != "" {
		return "-"
	}
	return fmtDur(time.Duration(e.WallNS))
}

func runFigure1(maxN int) {
	fmt.Println("Figure 1 — interleaving blow-up: n independent transitions")
	fmt.Printf("%4s %12s %12s %12s\n", "n", "full(2^n)", "PO(n+1)", "GPO")
	for n := 1; n <= maxN; n++ {
		net := models.Fig1(n)
		full, _ := reach.CountStates(net)
		po, _ := stubborn.Explore(net, stubborn.Options{})
		gpo, _ := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
		fmt.Printf("%4d %12d %12d %12d\n", n, full, po.States, gpo.States)
	}
	fmt.Println()
}

func runFigure2(maxN int) {
	fmt.Println("Figure 2 — conflict-place blow-up: n concurrently marked conflict pairs")
	fmt.Printf("%4s %12s %16s %12s\n", "n", "full(3^n)", "PO(2^(n+1)-1)", "GPO")
	for n := 1; n <= maxN; n++ {
		net := models.Fig2(n)
		full, _ := reach.CountStates(net)
		po, _ := stubborn.Explore(net, stubborn.Options{})
		gpo, _ := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
		fmt.Printf("%4d %12d %16d %12d\n", n, full, po.States, gpo.States)
	}
	fmt.Println()
}

func paren(v float64) string {
	if v == 0 {
		return ""
	}
	if v == float64(int64(v)) && v < 1e6 {
		return fmt.Sprintf("(%d)", int64(v))
	}
	return fmt.Sprintf("(%.3g)", v)
}

func parenBDD(v int) string {
	if v == 0 {
		return "(>24h)"
	}
	return fmt.Sprintf("(%d)", v)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpobench:", err)
	os.Exit(1)
}
