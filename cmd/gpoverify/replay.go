package main

// Deterministic checkpoint replay (-replay): re-execute the prefix a
// ckpt/v1 file describes — same net, same check, same result-determining
// options, stopping at the same engine boundary — and prove the run is
// reproducible three ways:
//
//  1. the re-executed prefix's snapshot must re-encode bit-identically
//     to the stored checkpoint (same container bytes, same digest);
//  2. two independent re-executions under fresh flight recorders must
//     emit the same event stream (modulo timestamps), so the trace is a
//     faithful record and not an artifact of scheduling;
//  3. with -trace-ref, the replay's event counts must match a reference
//     trace recorded when the original run suspended at this checkpoint
//     (gpoverify -trace, or the dump gpod writes on abort).
//
// Replay runs sequentially (Workers 0); snapshots are canonical at
// level boundaries regardless of worker count, so a checkpoint from a
// parallel run replays bit-identically on one worker.

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/verify"
)

// runReplay drives one -replay invocation. traceOut, when non-empty,
// receives the first re-execution's trace for gpotrace/Perfetto.
func runReplay(path, traceRef, traceOut string) error {
	f, err := ckpt.Read(path)
	if err != nil {
		return err
	}
	fmt.Printf("replay %s: run %s\n", path, f.Key.RunID())
	fmt.Printf("  net %s (%d places, %d transitions), check %s, engine %s\n",
		f.Net.Name(), f.Net.NumPlaces(), f.Net.NumTrans(), f.Check, f.Engine)
	fmt.Printf("  checkpoint: boundary %d, %d states\n", f.Boundary(), f.States())

	snap1, dump1, err := replayPrefix(f)
	if err != nil {
		return err
	}
	_, dump2, err := replayPrefix(f)
	if err != nil {
		return err
	}
	fmt.Printf("  prefix re-executed: %d states at boundary %d\n", snap1.States(), snap1.Boundary())

	// 1. Snapshot bit-identity: the reproduced snapshot, re-encoded in
	// the same container, must match the stored one byte for byte.
	want, err := ckpt.Encode(f)
	if err != nil {
		return err
	}
	g := *f
	g.Snap = snap1
	got, err := ckpt.Encode(&g)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("replay: prefix snapshot differs from checkpoint (%d vs %d container bytes, sha256 %x vs %x)",
			len(got), len(want), sha256.Sum256(got), sha256.Sum256(want))
	}
	sum := sha256.Sum256(want)
	fmt.Printf("  snapshot: bit-identical to checkpoint (%d container bytes, sha256 %x)\n",
		len(want), sum[:8])

	// 2. Event-stream determinism across independent re-executions.
	n, err := sameEventStream(dump1, dump2)
	if err != nil {
		return fmt.Errorf("replay: re-executions diverge: %w", err)
	}
	fmt.Printf("  event stream: deterministic across 2 re-executions (%d events)\n", n)

	// 3. Event counts against the reference flight-recorder trace.
	if traceRef != "" {
		ref, err := trace.ReadFile(traceRef)
		if err != nil {
			return err
		}
		rs, ds := trace.Summarize(ref, 0), trace.Summarize(dump1, 0)
		if rs.Events != ds.Events || rs.States != ds.States || rs.Fires != ds.Fires || rs.MultiFires != ds.MultiFires {
			return fmt.Errorf("replay: trace-ref %s disagrees: ref events=%d states=%d fires=%d multifires=%d, replay events=%d states=%d fires=%d multifires=%d",
				traceRef, rs.Events, rs.States, rs.Fires, rs.MultiFires,
				ds.Events, ds.States, ds.Fires, ds.MultiFires)
		}
		fmt.Printf("  trace-ref: event counts match (%d events, %d states, %d fires)\n",
			ds.Events, ds.States, ds.Fires)
	}
	if traceOut != "" {
		if err := trace.WriteFile(traceOut, dump1); err != nil {
			return err
		}
	}
	fmt.Println("replay: OK")
	return nil
}

// replayPrefix re-executes the checkpointed prefix once under a fresh
// flight recorder, stopping at the stored boundary, and returns the
// snapshot taken there plus the trace.
func replayPrefix(f *ckpt.File) (*verify.EngineSnapshot, *trace.Dump, error) {
	tracer := trace.New(trace.Options{})
	tracer.SetMeta("net", f.Net.Name())
	names := make([]string, f.Net.NumTrans())
	for t := range names {
		names[t] = f.Net.TransName(petri.Trans(t))
	}
	tracer.SetTransNames(names)

	target := f.Boundary()
	var snap *verify.EngineSnapshot
	opts := f.Options()
	opts.Trace = tracer
	opts.Ckpt = &verify.Checkpointer{
		Poll: func(states int, boundary int64) verify.CkptAction {
			if boundary >= target {
				return verify.CkptStop
			}
			return verify.CkptNone
		},
		Save: func(sn *verify.EngineSnapshot) error {
			snap = sn
			return nil
		},
	}
	var rep *verify.Report
	var err error
	if f.Check == "safety" {
		rep, err = verify.CheckSafety(f.Net, f.Bad, opts)
	} else {
		rep, err = verify.CheckDeadlock(f.Net, opts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("replay: prefix re-execution: %w", err)
	}
	if snap == nil || !rep.Checkpointed {
		return nil, nil, fmt.Errorf("replay: run finished (%d states) before reaching boundary %d — checkpoint is not a prefix of this build's exploration", rep.States, target)
	}
	return snap, tracer.Dump(), nil
}

// sameEventStream compares two dumps modulo timestamps: same string
// tables, same tracks, and per track the same (kind, arg0, arg1)
// sequence. Returns the total event count on success.
func sameEventStream(a, b *trace.Dump) (int, error) {
	if len(a.Strings) != len(b.Strings) {
		return 0, fmt.Errorf("string tables differ (%d vs %d entries)", len(a.Strings), len(b.Strings))
	}
	for i := range a.Strings {
		if a.Strings[i] != b.Strings[i] {
			return 0, fmt.Errorf("string table entry %d differs: %q vs %q", i, a.Strings[i], b.Strings[i])
		}
	}
	if len(a.Tracks) != len(b.Tracks) {
		return 0, fmt.Errorf("track counts differ (%d vs %d)", len(a.Tracks), len(b.Tracks))
	}
	total := 0
	for i := range a.Tracks {
		ta, tb := a.Tracks[i], b.Tracks[i]
		if ta.Name != tb.Name {
			return 0, fmt.Errorf("track %d name differs: %q vs %q", i, ta.Name, tb.Name)
		}
		if ta.Dropped != tb.Dropped {
			return 0, fmt.Errorf("track %q drop counts differ (%d vs %d)", ta.Name, ta.Dropped, tb.Dropped)
		}
		if len(ta.Events) != len(tb.Events) {
			return 0, fmt.Errorf("track %q event counts differ (%d vs %d)", ta.Name, len(ta.Events), len(tb.Events))
		}
		for j := range ta.Events {
			ea, eb := ta.Events[j], tb.Events[j]
			if ea.Kind != eb.Kind || ea.Arg0 != eb.Arg0 || ea.Arg1 != eb.Arg1 {
				return 0, fmt.Errorf("track %q event %d differs: %s(%d,%d) vs %s(%d,%d)",
					ta.Name, j, ea.Kind, ea.Arg0, ea.Arg1, eb.Kind, eb.Arg0, eb.Arg1)
			}
		}
		total += len(ta.Events)
	}
	return total, nil
}
