package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/models"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/verify"
)

// suspendRun executes a deadlock check that checkpoints and stops at
// the first boundary where stopAt holds, returning the ckpt file path
// and the flight-recorder trace of the suspended run.
func suspendRun(t *testing.T, net *petri.Net, eng verify.Engine, stopAt func(states int, boundary int64) bool) (string, *trace.Dump) {
	t.Helper()
	tracer := trace.New(trace.Options{})
	tracer.SetMeta("net", net.Name())
	names := make([]string, net.NumTrans())
	for tr := range names {
		names[tr] = net.TransName(petri.Trans(tr))
	}
	tracer.SetTransNames(names)

	var snap *verify.EngineSnapshot
	opts := verify.Options{
		Engine: eng,
		Trace:  tracer,
		Ckpt: &verify.Checkpointer{
			Poll: func(states int, boundary int64) verify.CkptAction {
				if stopAt(states, boundary) {
					return verify.CkptStop
				}
				return verify.CkptNone
			},
			Save: func(sn *verify.EngineSnapshot) error { snap = sn; return nil },
		},
	}
	rep, err := verify.CheckDeadlock(net, opts)
	if err != nil {
		t.Fatalf("suspend run: %v", err)
	}
	if !rep.Checkpointed || snap == nil {
		t.Fatalf("run did not suspend: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "replay-test.ckpt")
	f := &ckpt.File{
		Key:    verify.RunKey(net, "deadlock", nil, opts),
		Check:  "deadlock",
		Net:    net,
		Engine: eng,
		Snap:   snap,
	}
	if err := ckpt.Write(path, f); err != nil {
		t.Fatalf("write ckpt: %v", err)
	}
	return path, tracer.Dump()
}

// TestReplayBitIdentical pins the -replay contract for both snapshot
// families: re-executing the checkpointed prefix reproduces the stored
// container bit for bit and the suspended run's own flight-recorder
// trace matches the replay's event counts (-trace-ref).
func TestReplayBitIdentical(t *testing.T) {
	cases := []struct {
		eng    verify.Engine
		stopAt func(states int, boundary int64) bool
	}{
		// Exhaustive boundaries are BFS levels; stop once enough markings
		// are interned. GPO boundaries are DFS steps, and the whole
		// NSDP(6) run takes only a handful of generalized steps, so stop
		// on an early step coordinate.
		{verify.Exhaustive, func(states int, _ int64) bool { return states >= 500 }},
		{verify.GPO, func(_ int, boundary int64) bool { return boundary >= 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.eng.String(), func(t *testing.T) {
			net, err := models.ByName("nsdp", 6)
			if err != nil {
				t.Fatal(err)
			}
			path, refDump := suspendRun(t, net, tc.eng, tc.stopAt)

			ref := filepath.Join(t.TempDir(), "ref.trace.jsonl")
			if err := trace.WriteFile(ref, refDump); err != nil {
				t.Fatal(err)
			}
			out := filepath.Join(t.TempDir(), "replay.trace.jsonl")
			if err := runReplay(path, ref, out); err != nil {
				t.Fatalf("runReplay: %v", err)
			}
			// The written replay trace must itself summarize to the same
			// counts as the reference — the gpotrace integration.
			d, err := trace.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			rs, ds := trace.Summarize(refDump, 0), trace.Summarize(d, 0)
			if rs.Events != ds.Events || rs.States != ds.States || rs.Fires != ds.Fires {
				t.Fatalf("replay trace counts drift: ref events=%d states=%d fires=%d, replay events=%d states=%d fires=%d",
					rs.Events, rs.States, rs.Fires, ds.Events, ds.States, ds.Fires)
			}
		})
	}
}

// TestReplayRejectsWrongRef: a reference trace from a different run
// must fail the event-count comparison, not pass silently.
func TestReplayRejectsWrongRef(t *testing.T) {
	net, err := models.ByName("nsdp", 6)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := suspendRun(t, net, verify.Exhaustive, func(states int, _ int64) bool { return states >= 500 })

	// Reference trace from a different prefix (smaller boundary).
	_, otherDump := suspendRun(t, net, verify.Exhaustive, func(states int, _ int64) bool { return states >= 100 })
	ref := filepath.Join(t.TempDir(), "wrong.trace.jsonl")
	if err := trace.WriteFile(ref, otherDump); err != nil {
		t.Fatal(err)
	}
	err = runReplay(path, ref, "")
	if err == nil || !strings.Contains(err.Error(), "trace-ref") {
		t.Fatalf("want trace-ref mismatch error, got %v", err)
	}
}

// TestReplayRejectsCorrupt: a damaged checkpoint refuses to replay with
// the container's typed error, never a silent pass.
func TestReplayRejectsCorrupt(t *testing.T) {
	net, err := models.ByName("nsdp", 4)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := suspendRun(t, net, verify.Exhaustive, func(states int, _ int64) bool { return states >= 50 })
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runReplay(path, "", ""); err == nil {
		t.Fatal("corrupt checkpoint replayed without error")
	}
}
