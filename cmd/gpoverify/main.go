// Command gpoverify checks a safe Petri net for deadlocks or a safety
// property with a selectable analysis engine.
//
// Usage:
//
//	gpoverify -model nsdp -size 5                     # built-in model, GPO engine
//	gpoverify -net system.pn -engine partial-order    # .pn file, stubborn sets
//	gpoverify -model nsdp -size 4 -engine exhaustive -compare
//	gpoverify -net system.pn -safety "critA,critB"    # mutual exclusion check
//	gpoverify -model rw -size 9 -reduce               # structural reduction pre-pass
//	gpoverify -replay job.ckpt                        # deterministic checkpoint replay
//
// Engines: exhaustive, partial-order, symbolic, gpo (default), gpo-explicit,
// unfolding. With -compare, all engines run and their statistics are
// tabulated.
//
// With -replay, the checkpointed prefix in a ckpt/v1 file (written by
// gpod's durable jobs, DESIGN.md D11) is re-executed from scratch and
// must reproduce the stored snapshot bit for bit and the same flight-
// recorder event stream across independent re-executions; -trace-ref
// additionally compares event counts against a trace recorded when the
// original run suspended, and -trace writes the replay's own trace for
// gpotrace.
//
// Observability flags (see OBSERVABILITY.md): -metrics dumps the engine's
// metric registry as JSON, -ledger journals every engine run to a
// ledger/v1 JSONL file under its content-addressed run ID (browse with
// gpostat -history), -trace records a flight-recorder trace
// (.json opens in Perfetto / chrome://tracing, .jsonl is line-oriented;
// summarize either with gpotrace), -progress reports long runs on
// stderr, -cpuprofile/-memprofile write pprof profiles, -pprof serves
// net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/ckpt"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/proc"
	"repro/internal/structural"
	"repro/internal/verify"
)

func main() {
	var (
		netFile   = flag.String("net", "", "read the net from this .pn file")
		specFile  = flag.String("spec", "", "compile the net from this process-algebra spec file")
		model     = flag.String("model", "", "use a built-in model family: "+strings.Join(models.Families(), ", "))
		size      = flag.Int("size", 3, "parameter of the built-in model")
		only      = flag.String("only", "", "run over every Table 1 instance whose name (e.g. 'nsdp(8)') matches this regexp, instead of one -model/-size")
		engine    = flag.String("engine", "gpo", "engine: exhaustive, partial-order, symbolic, gpo, gpo-explicit, unfolding")
		safety    = flag.String("safety", "", "comma-separated places; check if all can be marked at once")
		stop      = flag.Bool("stop", false, "stop at the first deadlock/violation")
		maxStates = flag.Int("max-states", 0, "abort explicit searches beyond this many states")
		maxNodes  = flag.Int("max-nodes", 0, "abort symbolic searches beyond this many BDD nodes")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for the exhaustive engine (0 = sequential)")
		proviso   = flag.Bool("proviso", false, "apply the cycle proviso in the partial-order engine")
		reduceNet = flag.Bool("reduce", false, "apply the structural reduction pre-pass before the engine (witnesses are mapped back to the original net)")
		compare   = flag.Bool("compare", false, "run all engines and tabulate")
		explain   = flag.Bool("explain", true, "explain deadlock witnesses structurally (empty siphon)")

		replayCkpt = flag.String("replay", "", "re-execute the checkpointed prefix in this ckpt/v1 file deterministically and verify snapshot + event-stream equality")
		traceRef   = flag.String("trace-ref", "", "with -replay: reference flight-recorder trace to compare event counts against")
		ckptOut    = flag.String("ckpt", "", "suspend the run at a checkpoint: stop at the first engine boundary with at least -ckpt-states interned states and write a ckpt/v1 file here (re-execute with -replay)")
		ckptStates = flag.Int("ckpt-states", 1000, "with -ckpt: minimum interned states before suspending")

		metricsOut = flag.String("metrics", "", "write the engine's metric registry as JSON to this file ('-' = stderr)")
		ledgerOut  = flag.String("ledger", "", "append one ledger/v1 JSONL entry per engine run to this file (browse with gpostat -history)")
		traceOut   = flag.String("trace", "", "record a flight-recorder trace to this file (.jsonl/.ndjson = JSON lines, else Chrome/Perfetto trace JSON)")
		progress   = flag.Bool("progress", false, "report long engine runs periodically on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *replayCkpt != "" {
		if err := runReplay(*replayCkpt, *traceRef, *traceOut); err != nil {
			fatal(err)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gpoverify: pprof server:", err)
			}
		}()
	}

	var nets []*petri.Net
	if *only != "" {
		if *netFile != "" || *specFile != "" || *model != "" {
			fatal(fmt.Errorf("-only selects built-in Table 1 instances; drop -net/-spec/-model"))
		}
		rows, err := bench.Config{Only: *only}.Rows()
		if err != nil {
			fatal(err)
		}
		if len(rows) == 0 {
			fatal(fmt.Errorf("no Table 1 instance matches -only %q", *only))
		}
		for _, r := range rows {
			n, err := models.ByName(r.Family, r.Size)
			if err != nil {
				fatal(err)
			}
			nets = append(nets, n)
		}
	} else {
		net, err := loadNet(*netFile, *specFile, *model, *size)
		if err != nil {
			fatal(err)
		}
		nets = append(nets, net)
	}

	if *ckptOut != "" && *compare {
		fatal(fmt.Errorf("-ckpt suspends a single run; drop -compare"))
	}

	engines := []verify.Engine{}
	if *compare {
		engines = []verify.Engine{verify.Exhaustive, verify.PartialOrder,
			verify.Symbolic, verify.Unfolding, verify.GPO}
	} else {
		e, err := verify.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		engines = append(engines, e)
	}

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Options{})
	}
	var ldg *ledger.Log
	if *ledgerOut != "" {
		var err error
		if ldg, err = ledger.Open(*ledgerOut, 0); err != nil {
			fatal(err)
		}
		defer ldg.Close()
	}

	for _, net := range nets {
		fmt.Printf("net %s: %d places, %d transitions, %d conflict clusters\n",
			net.Name(), net.NumPlaces(), net.NumTrans(), len(net.Clusters()))

		if tracer != nil {
			// With -only, later instances overwrite the shared name
			// tables; tracing is most useful on a single instance.
			tracer.SetMeta("net", net.Name())
			names := make([]string, net.NumTrans())
			for t := range names {
				names[t] = net.TransName(petri.Trans(t))
			}
			tracer.SetTransNames(names)
		}

		var bad []petri.Place
		if *safety != "" {
			for _, name := range strings.Split(*safety, ",") {
				p, ok := net.PlaceByName(strings.TrimSpace(name))
				if !ok {
					fatal(fmt.Errorf("no place named %q", name))
				}
				bad = append(bad, p)
			}
		}

		fmt.Printf("%-14s %-10s %10s %12s %12s %10s\n",
			"engine", "verdict", "states", "peak-bdd", "peak-sets", "time")
		runEngines(net, engines, bad, reg, runOpts{
			stop: *stop, maxStates: *maxStates, maxNodes: *maxNodes,
			workers: *workers, proviso: *proviso, reduce: *reduceNet,
			progress: *progress, explain: *explain, tracer: tracer,
			ledger: ldg, ckptOut: *ckptOut, ckptStates: *ckptStates,
		})
	}

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := trace.WriteFile(*traceOut, tracer.Dump()); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runOpts carries the flag-derived knobs of one engine table.
type runOpts struct {
	stop      bool
	maxStates int
	maxNodes  int
	workers   int
	proviso   bool
	reduce    bool
	progress  bool
	explain   bool
	tracer    *trace.Tracer
	ledger    *ledger.Log
	// ckptOut, when set, suspends the run at the first boundary with at
	// least ckptStates interned states and writes a ckpt/v1 file there.
	ckptOut    string
	ckptStates int
}

// runEngines verifies one net with each selected engine and prints the
// result table rows.
func runEngines(net *petri.Net, engines []verify.Engine, bad []petri.Place, reg *obs.Registry, ro runOpts) {
	for _, eng := range engines {
		opts := verify.Options{
			Engine:      eng,
			StopAtFirst: ro.stop,
			MaxStates:   ro.maxStates,
			MaxNodes:    ro.maxNodes,
			Workers:     ro.workers,
			Proviso:     ro.proviso,
			Reduce:      ro.reduce,
			Metrics:     reg,
			Trace:       ro.tracer,
		}
		if ro.progress {
			opts.Progress = &obs.Progress{
				Label:    eng.String(),
				Every:    250_000,
				Interval: 2 * time.Second,
			}
		}
		var ckptSnap *verify.EngineSnapshot
		if ro.ckptOut != "" {
			opts.Ckpt = &verify.Checkpointer{
				Poll: func(states int, boundary int64) verify.CkptAction {
					if states >= ro.ckptStates {
						return verify.CkptStop
					}
					return verify.CkptNone
				},
				Save: func(sn *verify.EngineSnapshot) error {
					ckptSnap = sn
					return nil
				},
			}
		}
		var rep *verify.Report
		var err error
		startNS := time.Now().UnixNano()
		if len(bad) > 0 {
			rep, err = verify.CheckSafety(net, bad, opts)
		} else {
			rep, err = verify.CheckDeadlock(net, opts)
		}
		journal(ro.ledger, net, bad, opts, rep, err, startNS, time.Now().UnixNano())
		if err != nil {
			fmt.Printf("%-14s error: %v\n", eng, err)
			continue
		}
		if rep.Checkpointed {
			if ckptSnap == nil {
				fmt.Printf("%-14s error: checkpoint suspension without a snapshot\n", eng)
				continue
			}
			check := "deadlock"
			if len(bad) > 0 {
				check = "safety"
			}
			f := &ckpt.File{
				Key:         verify.RunKey(net, check, bad, opts),
				Check:       check,
				Bad:         bad,
				Net:         net,
				Engine:      opts.Engine,
				StopAtFirst: opts.StopAtFirst,
				Proviso:     opts.Proviso,
				Reduce:      opts.Reduce,
				MaxStates:   opts.MaxStates,
				MaxNodes:    opts.MaxNodes,
				Snap:        ckptSnap,
			}
			if err := ckpt.Write(ro.ckptOut, f); err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %-10s %10d %12s %12s %10v\n",
				eng, "suspended", rep.States, dash(rep.PeakBDD), dashF(rep.PeakSets), rep.Elapsed.Round(10e3))
			fmt.Printf("  checkpoint: %s (boundary %d, %d states; re-execute with -replay)\n",
				ro.ckptOut, ckptSnap.Boundary(), ckptSnap.States())
			continue
		}
		verdict := "ok"
		if rep.Deadlock {
			if len(bad) > 0 {
				verdict = "REACHABLE"
			} else {
				verdict = "DEADLOCK"
			}
		}
		fmt.Printf("%-14s %-10s %10d %12s %12s %10v\n",
			eng, verdict, rep.States, dash(rep.PeakBDD), dashF(rep.PeakSets), rep.Elapsed.Round(10e3))
		if ro.reduce {
			fmt.Printf("  reduced: -%d places, -%d transitions\n", rep.PlacesRemoved, rep.TransRemoved)
		}
		if rep.Witness != nil {
			fmt.Printf("  witness: %s\n", rep.Witness.String(net))
			if ro.explain && len(bad) == 0 {
				siphon := structural.DeadlockSiphon(net, rep.Witness)
				var names []string
				for _, p := range siphon {
					names = append(names, net.PlaceName(p))
				}
				fmt.Printf("  empty siphon: {%s}\n", strings.Join(names, ","))
			}
		}
		if opts.Progress != nil {
			opts.Progress.Done()
		}
	}
}

// journal appends one ledger entry for a finished engine run, under the
// same content-addressed run ID the daemon would give the identical
// request — so CLI and daemon history of one configuration line up.
func journal(l *ledger.Log, net *petri.Net, bad []petri.Place, opts verify.Options, rep *verify.Report, runErr error, startNS, endNS int64) {
	if l == nil {
		return
	}
	check := "deadlock"
	if len(bad) > 0 {
		check = "safety"
	}
	e := ledger.Entry{
		RunID:       verify.RunID(net, check, bad, opts),
		Source:      "gpoverify",
		Net:         net.Name(),
		Engine:      opts.Engine.String(),
		Check:       check,
		StopAtFirst: opts.StopAtFirst,
		Proviso:     opts.Proviso,
		Reduce:      opts.Reduce,
		MaxStates:   opts.MaxStates,
		MaxNodes:    opts.MaxNodes,
		Workers:     opts.Workers,
		StartUnixNS: startNS,
		EndUnixNS:   endNS,
		WallNS:      endNS - startNS,
	}
	switch {
	case runErr != nil:
		e.Status = "error"
		e.AbortReason = runErr.Error()
	case rep.Checkpointed:
		e.Status = "checkpointed"
		e.States = int64(rep.States)
		e.PeakBDD = int64(rep.PeakBDD)
		e.PeakSets = int64(rep.PeakSets)
	case rep.Aborted:
		e.Status = "aborted"
		e.States = int64(rep.States)
		e.PeakBDD = int64(rep.PeakBDD)
		e.PeakSets = int64(rep.PeakSets)
	default:
		e.Status = "ok"
		e.Deadlock = rep.Deadlock
		e.States = int64(rep.States)
		e.PeakBDD = int64(rep.PeakBDD)
		e.PeakSets = int64(rep.PeakSets)
		e.Complete = rep.Complete
	}
	if err := l.Append(e); err != nil {
		fmt.Fprintln(os.Stderr, "gpoverify: ledger:", err)
	}
}

func writeMetrics(reg *obs.Registry, out string) error {
	if out == "-" {
		return reg.Flush(obs.JSONSink{W: os.Stderr, Indent: true})
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Flush(obs.JSONSink{W: f, Indent: true}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadNet(file, spec, model string, size int) (*petri.Net, error) {
	sources := 0
	for _, s := range []string{file, spec, model} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("use exactly one of -net, -spec, -model")
	}
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pnio.Parse(f)
	case spec != "":
		src, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		parsed, err := proc.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return proc.Compile(parsed)
	case model != "":
		return models.ByName(model, size)
	default:
		return nil, fmt.Errorf("need -net <file.pn>, -spec <file.proc> or -model <family>")
	}
}

func dash(v int) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprint(v)
}

func dashF(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.6g", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpoverify:", err)
	os.Exit(1)
}
