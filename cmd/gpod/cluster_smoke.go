package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/verify"
)

// clusterSmokeReport is the -cluster-smoke JSON artifact: for each
// model instance, the distributed run's statistics next to the
// in-process sequential baseline it was checked bit-identical against,
// plus the shared-result-tier assertions.
type clusterSmokeReport struct {
	Schema string                   `json:"schema"` // "gpod-cluster-smoke/v1"
	Peers  int                      `json:"peers"`
	Runs   []clusterSmokeRun        `json:"runs"`
	Shared clusterSmokeSharedResult `json:"shared_tier"`
}

type clusterSmokeRun struct {
	Model            string `json:"model"`
	Size             int    `json:"size"`
	States           int    `json:"states"`
	Deadlock         bool   `json:"deadlock"`
	Complete         bool   `json:"complete"`
	Identical        bool   `json:"identical"` // cluster result == sequential result
	ClusterWallNS    int64  `json:"cluster_wall_ns"`
	SequentialWallNS int64  `json:"sequential_wall_ns"`
	Levels           int64  `json:"levels"`
	Steals           int64  `json:"steals"`
	FrontierBytesOut int64  `json:"frontier_bytes_out"`
	FrontierBytesIn  int64  `json:"frontier_bytes_in"`
}

type clusterSmokeSharedResult struct {
	// RepeatCached is whether the repeated request on a different peer
	// came back from the shared tier.
	RepeatCached bool `json:"repeat_cached"`
	// RecomputedStates is the fleet-wide reach.states delta while
	// answering the repeat — 0 is the whole point of the tier.
	RecomputedStates int64 `json:"recomputed_states"`
	RemoteCacheHits  int64 `json:"remote_cache_hits"`
}

// runClusterSmoke boots three complete gpod servers on loopback ports
// as one cluster and checks the two distributed-mode contracts end to
// end over real HTTP: distributed exploration is bit-identical to
// sequential (nsdp(8) exhaustively, rw(12) exhaustively), and a result
// computed once is served to every peer from the shared tier without
// anyone exploring again.
func runClusterSmoke(cfg server.Config, outPath string) error {
	const nPeers = 3
	listeners := make([]net.Listener, nPeers)
	peers := make([]string, nPeers)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	regs := make([]*obs.Registry, nPeers)
	svcs := make([]*server.Server, nPeers)
	srvs := make([]*http.Server, nPeers)
	clients := make([]*client.Client, nPeers)
	for i := range peers {
		regs[i] = obs.New()
		nd, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers, Metrics: regs[i]})
		if err != nil {
			return err
		}
		c := cfg
		c.Metrics = regs[i]
		c.Cluster = nd
		c.Ledger = nil // the smoke owns no journal; cfg's belongs to serve()
		svcs[i] = server.New(c)
		srvs[i] = &http.Server{Handler: svcs[i].Handler()}
		go srvs[i].Serve(listeners[i]) //nolint:errcheck
		clients[i] = client.New(peers[i], nil)
	}
	defer func() {
		for i := range srvs {
			srvs[i].Close()
			svcs[i].Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	report := clusterSmokeReport{Schema: "gpod-cluster-smoke/v1", Peers: nPeers}

	fleetStates := func() int64 {
		var sum int64
		for _, reg := range regs {
			sum += reg.Snapshot().Counters["reach.states"]
		}
		return sum
	}

	instances := []struct {
		model string
		size  int
	}{{"nsdp", 8}, {"rw", 12}}
	for i, inst := range instances {
		// Sequential baseline, fully in-process.
		n, err := models.ByName(inst.model, inst.size)
		if err != nil {
			return err
		}
		seqStart := time.Now()
		rep, err := verify.CheckDeadlock(n, verify.Options{Engine: verify.Exhaustive})
		if err != nil {
			return fmt.Errorf("sequential %s(%d): %w", inst.model, inst.size, err)
		}
		seqWall := time.Since(seqStart)

		// The same check over the wire on peer i, distributed.
		cluStart := time.Now()
		resp, err := clients[i%nPeers].Verify(ctx, &server.Request{
			Model: inst.model, Size: inst.size,
			Engine: "exhaustive", Cluster: true,
			TimeoutMS: (2 * time.Minute).Milliseconds(),
		})
		if err != nil {
			return fmt.Errorf("cluster %s(%d): %w", inst.model, inst.size, err)
		}
		cluWall := time.Since(cluStart)
		if resp.Cached {
			return fmt.Errorf("cluster %s(%d): unexpectedly served from cache", inst.model, inst.size)
		}
		if resp.Peers != nPeers {
			return fmt.Errorf("cluster %s(%d): peers = %d, want %d", inst.model, inst.size, resp.Peers, nPeers)
		}

		identical := resp.Status == server.StatusOK &&
			resp.Complete == rep.Complete &&
			resp.Deadlock == rep.Deadlock &&
			resp.States == rep.States &&
			sameWitness(resp.Witness, rep, n)
		if !identical {
			return fmt.Errorf("cluster %s(%d) diverged from sequential: got states=%d deadlock=%v complete=%v witness=%v, want states=%d deadlock=%v complete=%v",
				inst.model, inst.size, resp.States, resp.Deadlock, resp.Complete, resp.Witness,
				rep.States, rep.Deadlock, rep.Complete)
		}

		snap := regs[i%nPeers].Snapshot()
		report.Runs = append(report.Runs, clusterSmokeRun{
			Model: inst.model, Size: inst.size,
			States: resp.States, Deadlock: resp.Deadlock, Complete: resp.Complete,
			Identical:        true,
			ClusterWallNS:    cluWall.Nanoseconds(),
			SequentialWallNS: seqWall.Nanoseconds(),
			Levels:           snap.Counters["cluster.levels"],
			Steals:           snap.Counters["cluster.steals"],
			FrontierBytesOut: snap.Counters["cluster.frontier_bytes_out"],
			FrontierBytesIn:  snap.Counters["cluster.frontier_bytes_in"],
		})
		fmt.Printf("gpod: cluster %s(%d): %d states, identical to sequential (cluster %v, sequential %v)\n",
			inst.model, inst.size, resp.States, cluWall.Round(time.Millisecond), seqWall.Round(time.Millisecond))
	}

	// The shared tier: repeat the first instance's request on a peer
	// that neither coordinated it nor asked before. It must come back
	// Cached with zero new exploration anywhere in the fleet.
	before := fleetStates()
	repeat, err := clients[2].Verify(ctx, &server.Request{
		Model: instances[0].model, Size: instances[0].size,
		Engine: "exhaustive", Cluster: true,
		TimeoutMS: (2 * time.Minute).Milliseconds(),
	})
	if err != nil {
		return fmt.Errorf("shared tier repeat: %w", err)
	}
	report.Shared.RepeatCached = repeat.Cached
	report.Shared.RecomputedStates = fleetStates() - before
	for _, reg := range regs {
		report.Shared.RemoteCacheHits += reg.Snapshot().Counters["cluster.remote_cache_hits"]
	}
	if !repeat.Cached {
		return fmt.Errorf("shared tier: repeated request was recomputed, not served from the tier")
	}
	if report.Shared.RecomputedStates != 0 {
		return fmt.Errorf("shared tier: fleet explored %d states answering a cached request", report.Shared.RecomputedStates)
	}
	if report.Shared.RemoteCacheHits < 1 {
		return fmt.Errorf("shared tier: cluster.remote_cache_hits = %d, want >= 1", report.Shared.RemoteCacheHits)
	}
	if repeat.States != report.Runs[0].States || repeat.Deadlock != report.Runs[0].Deadlock {
		return fmt.Errorf("shared tier: served copy diverged (states=%d deadlock=%v)", repeat.States, repeat.Deadlock)
	}
	fmt.Printf("gpod: shared tier: repeat served cached, 0 states recomputed, %d remote hit(s)\n",
		report.Shared.RemoteCacheHits)

	if outPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if outPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(outPath, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// sameWitness compares the wire witness (place names) against the
// sequential report's witness marking.
func sameWitness(wire []string, rep *verify.Report, n *petri.Net) bool {
	if rep.Witness == nil {
		return len(wire) == 0
	}
	places := rep.Witness.Places()
	if len(wire) != len(places) {
		return false
	}
	for i, p := range places {
		if wire[i] != n.PlaceName(p) {
			return false
		}
	}
	return true
}
