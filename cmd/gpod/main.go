// Command gpod runs the verification service: an HTTP daemon that
// accepts Petri nets (pnio text or built-in model families) plus an
// engine/property selection and answers with Table-1-style statistics.
//
// Usage:
//
//	gpod -addr :8722                     # serve until SIGINT/SIGTERM
//	gpod -addr :8722 -workers 4 -queue 16
//	gpod -smoke                          # start, self-check, exit
//	gpod -addr :8722 -peers URL,URL,URL -self URL   # cluster member
//	gpod -cluster-smoke                  # 3-peer loopback self-check, exit
//	gpod -addr :8722 -jobs /var/lib/gpod/jobs       # durable async jobs
//	gpod -jobs-smoke                     # crash/resume self-check, exit
//
// Endpoints: POST /v1/verify, GET /healthz, GET /metrics (JSON dump of
// the metric registry, or Prometheus text with ?format=prom; see
// OBSERVABILITY.md for the server.* names), GET /v1/runs (live and
// recently completed runs), GET /v1/runs/{id}, GET /v1/runs/{id}/events
// (SSE progress stream; watch with gpostat), and GET /v1/cluster
// (membership, shard ranges and cluster.* counters; {"enabled": false}
// without -peers).
//
// With -peers/-self the node joins a cluster (DESIGN.md D10): it owns a
// static range of the visited store's 256 state-hash shards, serves the
// /cluster/v1/* protocol to its peers, coordinates "cluster": true
// requests as distributed level-synchronous BFS (bit-identical to a
// single-machine run), and consults the fleet's consistent-hash shared
// result tier on every local cache miss.
//
// Every /v1/verify response carries an X-Request-ID header (echoing the
// client's, if it sent a well-formed one). With -access-log each request
// becomes one JSON line under that ID; with -ledger every executed
// verification appends one ledger/v1 entry under its content-addressed
// run ID (browse with gpostat -history); with -trace-dump each run that
// a deadline or disconnect aborts leaves <dir>/<id>.trace.jsonl holding
// the flight recorder's last events (summarize with gpotrace).
//
// With -jobs DIR the daemon runs durable verification jobs (DESIGN.md
// D11): POST /v1/jobs answers immediately with a content-addressed job
// ID, the run auto-checkpoints on the -ckpt-interval/-ckpt-states
// cadence and at its deadline, and GET/DELETE /v1/jobs/{id} and POST
// /v1/jobs/{id}/resume observe, cancel and continue it. The journal
// and the ckpt/v1 checkpoint files live in DIR; a restarted daemon
// re-admits interrupted jobs at startup and replays nothing it cannot
// prove intact (gpoverify -replay re-executes any checkpoint
// deterministically).
//
// On SIGINT/SIGTERM the daemon drains: health flips to "draining", new
// verification requests answer 503, in-flight synchronous requests
// finish (bounded by their own deadlines), running durable jobs
// checkpoint and suspend, queued ones stay journaled for the next
// start, then the process exits.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	var (
		addr       = flag.String("addr", ":8722", "listen address")
		workers    = flag.Int("workers", 0, "concurrent verifications (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth (0 = 2*workers)")
		maxStates  = flag.Int("max-states", 0, "clamp every request's explicit state bound (0 = no cap)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request wall-clock budget")
		maxTimeout = flag.Duration("max-timeout", 60*time.Second, "largest per-request budget a client may ask for")
		cacheBytes = flag.Int64("cache-bytes", 16<<20, "result cache budget in bytes (negative disables)")
		accessLog  = flag.String("access-log", "", "append JSON-lines access logs to this file ('-' = stderr)")
		ledgerPath = flag.String("ledger", "", "append one ledger/v1 JSONL entry per executed verification to this file (backs GET /v1/runs history)")
		traceDump  = flag.String("trace-dump", "", "write aborted requests' flight-recorder tails to <dir>/<request-id>.trace.jsonl")
		traceCap   = flag.Int("trace-events", 0, "per-track ring capacity of per-request traces (0 = default)")
		traceRuns  = flag.Int("trace-runs", 0, "retain the last N runs' flight-recorder dumps in memory and serve them on GET /v1/runs/{id}/trace (0 disables)")
		smoke      = flag.Bool("smoke", false, "start on a random port, run one self-check request, shut down")
		jobsDir    = flag.String("jobs", "", "enable durable jobs (POST /v1/jobs): journal and checkpoints live in this directory")
		ckptEvery  = flag.Duration("ckpt-interval", 0, "auto-checkpoint running jobs this often (0 = 30s default, negative disables)")
		ckptStates = flag.Int("ckpt-states", 0, "also auto-checkpoint every N newly explored states (0 disables)")
		jobsSmk    = flag.Bool("jobs-smoke", false, "run the durable-jobs self-check: submit, kill the daemon mid-run, restart, resume, compare against a fresh run, exit")
		reduceNet  = flag.Bool("reduce", false, "force the structural reduction pre-pass on every request")
		peersList  = flag.String("peers", "", "comma-separated base URLs of every cluster member (enables cluster mode)")
		selfURL    = flag.String("self", "", "this node's own base URL, one of -peers")
		clusterSmk = flag.Bool("cluster-smoke", false, "boot a 3-peer loopback cluster, check bit-identical distributed results and the shared result tier, exit")
		clusterOut = flag.String("cluster-smoke-out", "", "write the cluster smoke's JSON artifact to this file ('-' = stdout)")
		traceSmk   = flag.Bool("trace-smoke", false, "boot a 3-peer loopback cluster with tracing on, fetch and merge the fleet trace bundle, check it reconstructs the run, exit")
		traceOut   = flag.String("trace-smoke-out", "", "write the trace smoke's bundle artifact to this file ('-' = stdout)")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxStates:       *maxStates,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		CacheBytes:      *cacheBytes,
		Reduce:          *reduceNet,
		TraceEvents:     *traceCap,
		TraceRuns:       *traceRuns,
		CkptInterval:    *ckptEvery,
		CkptEveryStates: *ckptStates,
	}
	if *jobsSmk {
		if err := runJobsSmoke(cfg); err != nil {
			fatal(err)
		}
		fmt.Println("gpod: jobs smoke ok")
		return
	}
	if *jobsDir != "" {
		st, err := jobs.Open(*jobsDir)
		if err != nil {
			fatal(fmt.Errorf("jobs: %w", err))
		}
		defer st.Close()
		cfg.Jobs = st
	}
	if *accessLog != "" {
		if *accessLog == "-" {
			cfg.AccessLog = os.Stderr
		} else {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			cfg.AccessLog = f
		}
	}
	if *ledgerPath != "" {
		l, err := ledger.Open(*ledgerPath, 0)
		if err != nil {
			fatal(err)
		}
		defer l.Close()
		cfg.Ledger = l
	}
	if *traceDump != "" {
		if err := os.MkdirAll(*traceDump, 0o755); err != nil {
			fatal(err)
		}
		cfg.TraceSink = dirTraceSink(*traceDump)
		// Let aborted runs' ledger entries point at their dump.
		dir := *traceDump
		cfg.TracePath = func(id string) string {
			return filepath.Join(dir, id+".trace.jsonl")
		}
	}

	if *clusterSmk {
		if err := runClusterSmoke(cfg, *clusterOut); err != nil {
			fatal(err)
		}
		fmt.Println("gpod: cluster smoke ok")
		return
	}
	if *traceSmk {
		if err := runTraceSmoke(cfg, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Println("gpod: trace smoke ok")
		return
	}
	if *peersList != "" || *selfURL != "" {
		peers := strings.Split(*peersList, ",")
		for i := range peers {
			peers[i] = strings.TrimSpace(peers[i])
		}
		// The node and the server must share a registry so /metrics and
		// GET /v1/cluster report one coherent picture.
		cfg.Metrics = obs.New()
		nd, err := cluster.New(cluster.Config{Self: *selfURL, Peers: peers, Metrics: cfg.Metrics})
		if err != nil {
			fatal(fmt.Errorf("cluster: %w", err))
		}
		cfg.Cluster = nd
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fatal(err)
		}
		fmt.Println("gpod: smoke ok")
		return
	}
	if err := serve(cfg, *addr); err != nil {
		fatal(err)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully.
func serve(cfg server.Config, addr string) error {
	svc := server.New(cfg)
	if cfg.Jobs != nil {
		if n := svc.ResumeJobs(); n > 0 {
			fmt.Printf("gpod: resumed %d interrupted job(s) from the journal\n", n)
		}
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("gpod: listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case sig := <-sigc:
		fmt.Printf("gpod: %v, draining\n", sig)
	}

	// Shutdown order (see internal/server): refuse new work, let
	// in-flight handlers finish, then stop the workers.
	svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.MaxTimeout+5*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(ctx)
	svc.Close()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("gpod: drained, bye")
	return nil
}

// runSmoke boots the full daemon on a random loopback port, pushes one
// verification through the wire with the client package, and tears the
// whole thing down — the CI end-to-end liveness check.
func runSmoke(cfg server.Config) error {
	svc := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+ln.Addr().String(), nil)

	if status, err := c.Healthz(ctx); err != nil || status != "ok" {
		return fmt.Errorf("healthz: status=%q err=%v", status, err)
	}
	resp, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "gpo"})
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	// NSDP(4) deadlocks (every philosopher holding their left fork).
	if resp.Status != server.StatusOK || !resp.Complete || !resp.Deadlock || len(resp.Witness) == 0 {
		return fmt.Errorf("verify: unexpected result %+v", resp)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if snap.Counters["server.done"] != 1 {
		return fmt.Errorf("metrics: server.done = %d, want 1", snap.Counters["server.done"])
	}
	// The completed run must be charged to the result cache, and the
	// charge is worth seeing in CI output: accounting drift here once hid
	// a Witness-aliasing bug.
	if cfg.CacheBytes >= 0 && snap.Gauges["server.cache_bytes"] <= 0 {
		return fmt.Errorf("metrics: server.cache_bytes = %d after a completed run, want > 0", snap.Gauges["server.cache_bytes"])
	}
	fmt.Printf("gpod: server.cache_bytes=%d server.cache_entries=%d\n",
		snap.Gauges["server.cache_bytes"], snap.Gauges["server.cache_entries"])
	if cfg.Ledger != nil {
		if err := smokeRuns(ctx, "http://"+ln.Addr().String(), resp); err != nil {
			return err
		}
	}

	svc.Drain()
	if status, err := c.Healthz(ctx); err != nil || status != "draining" {
		return fmt.Errorf("healthz after drain: status=%q err=%v", status, err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	svc.Close()
	return nil
}

// smokeRuns checks the run-introspection surface against the smoke
// run's known result: the ledger-backed GET /v1/runs history lists the
// run, GET /v1/runs/{id} reconstructs it, and the SSE event stream
// terminates with a "done" event whose state count matches the
// response that came back over /v1/verify.
func smokeRuns(ctx context.Context, base string, resp *server.Response) error {
	get := func(path string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return nil, err
		}
		return http.DefaultClient.Do(req)
	}

	hr, err := get("/v1/runs")
	if err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	var list struct {
		Completed []ledger.Entry `json:"completed"`
	}
	err = json.NewDecoder(hr.Body).Decode(&list)
	hr.Body.Close()
	if err != nil || hr.StatusCode != http.StatusOK {
		return fmt.Errorf("runs: code=%d err=%v", hr.StatusCode, err)
	}
	var e *ledger.Entry
	for i := range list.Completed {
		if list.Completed[i].Net == resp.Net {
			e = &list.Completed[i]
			break
		}
	}
	if e == nil {
		return fmt.Errorf("runs: %s missing from completed history", resp.Net)
	}
	if e.Verdict() != "deadlock" || e.States != int64(resp.States) {
		return fmt.Errorf("runs: ledger entry verdict=%s states=%d, want deadlock/%d",
			e.Verdict(), e.States, resp.States)
	}

	hr, err = get("/v1/runs/" + e.RunID)
	if err != nil {
		return fmt.Errorf("run %s: %w", e.RunID, err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("run %s: code=%d", e.RunID, hr.StatusCode)
	}

	hr, err = get("/v1/runs/" + e.RunID + "/events")
	if err != nil {
		return fmt.Errorf("run events: %w", err)
	}
	defer hr.Body.Close()
	var event string
	var done struct {
		States   int64 `json:"states"`
		Deadlock bool  `json:"deadlock"`
	}
	sawDone := false
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "done":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &done); err != nil {
				return fmt.Errorf("run events: bad done payload: %w", err)
			}
			sawDone = true
		}
	}
	if !sawDone {
		return fmt.Errorf("run events: stream ended without a done event")
	}
	if done.States != int64(resp.States) || !done.Deadlock {
		return fmt.Errorf("run events: done states=%d deadlock=%v, want %d/true",
			done.States, done.Deadlock, resp.States)
	}
	return nil
}

// dirTraceSink writes each aborted request's trace dump into dir as
// <request-id>.trace.jsonl. IDs are validated by the server (printable,
// no separators), so joining them onto dir is safe.
func dirTraceSink(dir string) func(id string, d *trace.Dump) {
	return func(id string, d *trace.Dump) {
		path := filepath.Join(dir, id+".trace.jsonl")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpod: trace dump:", err)
			return
		}
		if err := trace.WriteJSONL(f, d); err != nil {
			fmt.Fprintln(os.Stderr, "gpod: trace dump:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gpod: trace dump:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpod:", err)
	os.Exit(1)
}
