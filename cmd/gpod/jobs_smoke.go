package main

// The durable-jobs smoke (-jobs-smoke): the whole crash-safe arc of
// DESIGN.md D11 against real daemons over the wire. A first daemon
// accepts a job whose execution slice is far too small to finish, runs
// it to the first checkpoint, and is then torn down abruptly — no
// drain, exactly what a crash leaves behind: a jobs/v1 journal and a
// ckpt/v1 file. A second daemon opens the same directory, re-admits
// the interrupted job at startup (ResumeJobs), and is stepped through
// resume slices until the verdict lands. The smoke passes only if that
// verdict — states, deadlock, completeness — is identical to a fresh
// uninterrupted in-process run of the same check, and the job really
// did go through a mid-run checkpoint (Resumes > 0, a ckpt file on
// disk) rather than finishing in one slice.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/jobs"
	"repro/internal/models"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/verify"
)

// jobsSmokeReq is the workload: NSDP(8), 103682 states in ~200ms of
// exhaustive exploration here — big enough that a 60ms slice reliably
// suspends mid-run, small enough that the whole smoke stays ~1s.
func jobsSmokeReq() *server.Request {
	return &server.Request{
		Model: "nsdp", Size: 8, Engine: "exhaustive",
		Check: "deadlock", TimeoutMS: 60,
	}
}

// runJobsSmoke drives the submit → crash → restart → resume → verdict
// arc. cfg carries the daemon knobs from the command line; the jobs
// directory is its own temp dir, removed on success.
func runJobsSmoke(cfg server.Config) error {
	dir, err := os.MkdirTemp("", "gpod-jobs-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Baseline: the same check, fresh and uninterrupted.
	req := jobsSmokeReq()
	net0, err := models.ByName(req.Model, req.Size)
	if err != nil {
		return err
	}
	fresh, err := verify.CheckDeadlock(net0, verify.Options{Engine: verify.Exhaustive})
	if err != nil {
		return fmt.Errorf("fresh baseline run: %w", err)
	}

	// Daemon A: accept the job, reach the first checkpoint, die abruptly.
	ckptPath, err := jobsSmokeSuspend(ctx, cfg, dir, req)
	if err != nil {
		return fmt.Errorf("daemon A (suspend): %w", err)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		return fmt.Errorf("checkpoint file after daemon A died: %w", err)
	}
	fmt.Printf("gpod: jobs smoke: daemon A checkpointed to %s and was killed\n", ckptPath)

	// Daemon B: same directory, pick the job back up, run it home.
	rec, err := jobsSmokeResume(ctx, cfg, dir)
	if err != nil {
		return fmt.Errorf("daemon B (resume): %w", err)
	}

	var res server.Response
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return fmt.Errorf("resumed job result: %w", err)
	}
	if rec.Resumes == 0 {
		return fmt.Errorf("job finished without ever resuming — slice too generous to test the crash arc")
	}
	if res.Status != server.StatusOK || !res.Complete ||
		res.States != fresh.States || res.Deadlock != fresh.Deadlock {
		return fmt.Errorf("resumed verdict diverges from fresh run: got status=%s complete=%v states=%d deadlock=%v, fresh states=%d deadlock=%v",
			res.Status, res.Complete, res.States, res.Deadlock, fresh.States, fresh.Deadlock)
	}
	fmt.Printf("gpod: jobs smoke: resumed %d times to the fresh verdict (states=%d deadlock=%v)\n",
		rec.Resumes, res.States, res.Deadlock)
	return nil
}

// jobsSmokeBoot starts one daemon over the jobs directory and returns
// its client plus a teardown. abrupt teardown (kill) closes the
// listener and the store without draining — the crash.
func jobsSmokeBoot(cfg server.Config, dir string) (*client.Client, *server.Server, func(), error) {
	st, err := jobs.Open(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg.Jobs = st
	if cfg.CkptInterval == 0 {
		cfg.CkptInterval = 20 * time.Millisecond
	}
	svc := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return nil, nil, nil, err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	kill := func() {
		httpSrv.Close()
		svc.Close()
		st.Close()
	}
	return client.New("http://"+ln.Addr().String(), nil), svc, kill, nil
}

// jobsSmokeSuspend submits the job to a fresh daemon, waits for its
// first checkpoint suspension, and kills the daemon without drain.
func jobsSmokeSuspend(ctx context.Context, cfg server.Config, dir string, req *server.Request) (string, error) {
	c, _, kill, err := jobsSmokeBoot(cfg, dir)
	if err != nil {
		return "", err
	}
	defer kill()

	jb, err := c.SubmitJob(ctx, req)
	if err != nil {
		return "", fmt.Errorf("submit: %w", err)
	}
	rec, err := jobsSmokeWait(ctx, c, jb.ID, jobs.Checkpointed)
	if err != nil {
		return "", err
	}
	if rec.CkptPath == "" || rec.States == 0 {
		return "", fmt.Errorf("checkpointed job has no snapshot: %+v", rec)
	}
	return rec.CkptPath, nil
}

// jobsSmokeResume boots a second daemon over the same directory,
// requires startup auto-resume to re-admit the interrupted job, and
// steps it through resume slices until it is done.
func jobsSmokeResume(ctx context.Context, cfg server.Config, dir string) (*jobs.Record, error) {
	c, svc, kill, err := jobsSmokeBoot(cfg, dir)
	if err != nil {
		return nil, err
	}
	defer kill()

	if n := svc.ResumeJobs(); n != 1 {
		return nil, fmt.Errorf("startup auto-resume re-admitted %d jobs, want 1", n)
	}
	list, err := c.Jobs(ctx)
	if err != nil || len(list) != 1 {
		return nil, fmt.Errorf("job list after restart: n=%d err=%v", len(list), err)
	}
	id := list[0].ID
	for {
		rec, err := jobsSmokeWait(ctx, c, id, jobs.Done, jobs.Checkpointed)
		if err != nil {
			return nil, err
		}
		if rec.State == jobs.Done {
			return rec, nil
		}
		if _, err := c.ResumeJob(ctx, id); err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
	}
}

// jobsSmokeWait polls the job until it settles in one of the wanted
// states; any other terminal state is a smoke failure.
func jobsSmokeWait(ctx context.Context, c *client.Client, id string, want ...jobs.State) (*jobs.Record, error) {
	for {
		jb, err := c.Job(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("poll job %s: %w", id, err)
		}
		for _, w := range want {
			if jb.State == w {
				return &jb.Record, nil
			}
		}
		if jb.State.Terminal() {
			return nil, fmt.Errorf("job %s settled in %s (error %q), want one of %v", id, jb.State, jb.Error, want)
		}
		select {
		case <-ctx.Done():
			return nil, errors.New("jobs smoke timed out waiting for " + id)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
