package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/server/client"
)

// runTraceSmoke boots a 3-peer loopback cluster with trace retention
// on, runs one distributed verification, fetches the fleet trace bundle
// from GET /v1/runs/{id}/trace, and checks the distributed-tracing
// contract end to end: the bundle carries the coordinator plus every
// peer's node-side slice, the merged timeline reconstructs exactly the
// fleet's reach.states state count, no coordinator-involving wire edge
// runs backwards after clock alignment, and the per-level attribution
// table renders. The raw bundle is written to outPath so the CI gate
// can feed it straight to `gpotrace -merge`.
func runTraceSmoke(cfg server.Config, outPath string) error {
	const nPeers = 3
	listeners := make([]net.Listener, nPeers)
	peers := make([]string, nPeers)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	regs := make([]*obs.Registry, nPeers)
	svcs := make([]*server.Server, nPeers)
	srvs := make([]*http.Server, nPeers)
	for i := range peers {
		regs[i] = obs.New()
		nd, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers, Metrics: regs[i]})
		if err != nil {
			return err
		}
		c := cfg
		c.Metrics = regs[i]
		c.Cluster = nd
		c.Ledger = nil
		if c.TraceRuns <= 0 {
			c.TraceRuns = 4
		}
		svcs[i] = server.New(c)
		srvs[i] = &http.Server{Handler: svcs[i].Handler()}
		go srvs[i].Serve(listeners[i]) //nolint:errcheck
	}
	defer func() {
		for i := range srvs {
			srvs[i].Close()
			svcs[i].Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fleetStates := func() int64 {
		var sum int64
		for _, reg := range regs {
			sum += reg.Snapshot().Counters["reach.states"]
		}
		return sum
	}
	before := fleetStates()

	resp, err := client.New(peers[0], nil).Verify(ctx, &server.Request{
		Model: "nsdp", Size: 6,
		Engine: "exhaustive", Cluster: true,
		TimeoutMS: time.Minute.Milliseconds(),
	})
	if err != nil {
		return fmt.Errorf("traced cluster run: %w", err)
	}
	if resp.Status != server.StatusOK || !resp.Complete {
		return fmt.Errorf("traced cluster run: status=%s complete=%v", resp.Status, resp.Complete)
	}
	if resp.RunID == "" {
		return fmt.Errorf("traced cluster run: response carries no run_id")
	}
	explored := fleetStates() - before

	// Fetch the fleet bundle from the coordinator.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peers[0]+"/v1/runs/"+resp.RunID+"/trace", nil)
	if err != nil {
		return err
	}
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("GET trace: %w", err)
	}
	raw, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil || hr.StatusCode != http.StatusOK {
		return fmt.Errorf("GET trace: code=%d err=%v", hr.StatusCode, err)
	}

	b, err := trace.ReadBundle(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("trace bundle: %w", err)
	}
	// Coordinator recorder + each peer's node-side slice (the
	// coordinating process worked its own shard too, so its node dump is
	// a separate entry on the same clock).
	if len(b.Peers) != nPeers+1 {
		return fmt.Errorf("trace bundle: %d entries, want %d (coordinator + %d peers)", len(b.Peers), nPeers+1, nPeers)
	}
	m, err := trace.Merge(b)
	if err != nil {
		return fmt.Errorf("trace merge: %w", err)
	}
	if m.States != int64(resp.States) {
		return fmt.Errorf("merged timeline reconstructs %d states, response says %d", m.States, resp.States)
	}
	if explored != int64(resp.States) {
		return fmt.Errorf("fleet reach.states delta = %d, response says %d", explored, resp.States)
	}
	coord := 0
	for i := range m.Peers {
		if m.Peers[i].Coordinator {
			coord = i
		}
	}
	negative := 0
	for _, e := range m.Edges {
		if (e.From == coord || e.To == coord) && e.EndNS < e.StartNS {
			negative++
		}
	}
	if negative > 0 {
		return fmt.Errorf("%d coordinator-involving wire edges run backwards after alignment", negative)
	}
	if len(m.Levels) == 0 {
		return fmt.Errorf("merged timeline has no level attribution")
	}
	var table strings.Builder
	m.WriteText(&table)
	if !strings.Contains(table.String(), "slowest") {
		return fmt.Errorf("attribution table did not render:\n%s", table.String())
	}
	fmt.Printf("gpod: traced cluster nsdp(6): %d states reconstructed from %d dumps, %d wire edges, %d levels attributed\n",
		m.States, len(b.Peers), len(m.Edges), len(m.Levels))
	fmt.Print(table.String())

	if outPath != "" {
		if outPath == "-" {
			_, err = os.Stdout.Write(raw)
		} else {
			err = os.WriteFile(outPath, raw, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
