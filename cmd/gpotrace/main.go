// Command gpotrace summarizes a flight-recorder trace written by
// gpoverify/gpobench -trace or dumped by gpod -trace-dump: total states
// and firings reconstructed from the events alone, the hottest
// transitions, per-phase wall clock, the state-discovery rate over
// time, and the abort reason if the run was cancelled.
//
// Usage:
//
//	gpotrace trace.json                # Chrome/Perfetto trace
//	gpotrace -top 20 dump.trace.jsonl  # JSONL dump, longer table
//	gpotrace -json trace.json          # machine-readable summary
//	gpotrace -merge bundle.json        # fleet bundle: aligned timeline
//	gpotrace -merge -o merged.json b.json  # + one Perfetto file, one
//	                                       # track group per peer
//
// Both single-dump formats are auto-detected. -merge consumes the
// bundle GET /v1/runs/{id}/trace serves for a traced cluster run:
// peer clocks are aligned against the coordinator (RPC-midpoint offset
// estimates, causally clamped against the matched frame send/recv
// edges), and the output is the peer roster with applied offsets and
// per-peer throughput followed by the per-level attribution table
// (compute / serialize / wire / steal / stall shares of each level's
// wall clock, with the slowest peer named). The same files open
// visually in Perfetto (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/trace"
)

func main() {
	var (
		top     = flag.Int("top", 10, "rows in the top-transitions table")
		asJSON  = flag.Bool("json", false, "print the summary as JSON instead of text")
		summary = flag.Bool("summary", true, "print the summary (disable to just validate the file)")
		merge   = flag.Bool("merge", false, "input is a fleet trace bundle (GET /v1/runs/{id}/trace): align peer clocks and print the attribution table")
		outPath = flag.String("o", "", "with -merge: also write the aligned timeline as one Chrome/Perfetto JSON file")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpotrace [flags] <trace-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *merge {
		b, err := trace.ReadBundleFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		m, err := trace.Merge(b)
		if err != nil {
			fatal(err)
		}
		m.WriteText(os.Stdout)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteChromeMerged(f, b, m); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("merged timeline: %s (%d peers, %d wire edges)\n", *outPath, len(m.Peers), len(m.Edges))
		}
		return
	}

	d, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	s := trace.Summarize(d, *top)
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
	case *summary:
		s.WriteText(os.Stdout)
	default:
		fmt.Printf("gpotrace: %s: valid (%d tracks, %d events)\n", flag.Arg(0), s.Tracks, s.Events)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpotrace:", err)
	os.Exit(1)
}
