// Command gpotrace summarizes a flight-recorder trace written by
// gpoverify/gpobench -trace or dumped by gpod -trace-dump: total states
// and firings reconstructed from the events alone, the hottest
// transitions, per-phase wall clock, the state-discovery rate over
// time, and the abort reason if the run was cancelled.
//
// Usage:
//
//	gpotrace trace.json                # Chrome/Perfetto trace
//	gpotrace -top 20 dump.trace.jsonl  # JSONL dump, longer table
//	gpotrace -json trace.json          # machine-readable summary
//
// Both formats are auto-detected. The same files open visually in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/trace"
)

func main() {
	var (
		top     = flag.Int("top", 10, "rows in the top-transitions table")
		asJSON  = flag.Bool("json", false, "print the summary as JSON instead of text")
		summary = flag.Bool("summary", true, "print the summary (disable to just validate the file)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpotrace [flags] <trace-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	d, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	s := trace.Summarize(d, *top)
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
	case *summary:
		s.WriteText(os.Stdout)
	default:
		fmt.Printf("gpotrace: %s: valid (%d tracks, %d events)\n", flag.Arg(0), s.Tracks, s.Events)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpotrace:", err)
	os.Exit(1)
}
