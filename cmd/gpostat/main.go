// Command gpostat is the fleet introspection CLI: it renders run-ledger
// history (per-configuration wall-clock distributions, per-engine
// throughput, outlier runs) and watches a running gpod daemon live over
// its /v1/runs surface.
//
// Usage:
//
//	gpostat -history -ledger runs.jsonl               # per-config history
//	gpostat -history -ledger runs.jsonl -family nsdp  # filter by net name
//	gpostat -follow -addr http://localhost:8722       # live fleet view
//	gpostat -follow -once -addr http://localhost:8722 # one snapshot, exit
//	gpostat -run r0b3f… -addr http://localhost:8722   # stream one run (SSE)
//	gpostat -follow -addr http://host1:8722 -addr http://host2:8722
//
// -addr repeats: with several, -follow watches the whole fleet — each
// tick starts with one row per peer from its GET /v1/cluster document
// (shard range, active distributed jobs, steal/level/remote-hit
// counters) and the run lines are prefixed with the peer that reported
// them. Peers without cluster mode just show their runs.
//
// With both -follow and -ledger, completed runs are flagged as outliers
// when their wall clock exceeds twice the ledger history's median for
// the same (net, engine, check) configuration. In -history mode the
// same rule is applied within the journal itself (see
// internal/obs/ledger.Summarize).
//
// Exit status: 0 on success, 1 on I/O or daemon errors, 2 on usage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"repro/internal/obs/ledger"
)

func main() {
	var (
		ledgerPath = flag.String("ledger", "", "run-ledger JSONL file (ledger/v1), as written by gpod/gpoverify/gpobench -ledger")
		history    = flag.Bool("history", false, "summarize per-configuration history from -ledger")
		family     = flag.String("family", "", "restrict -history/-follow to nets matching this regexp (case-insensitive)")
		follow     = flag.Bool("follow", false, "poll the daemons' /v1/runs and report running and newly completed runs")
		once       = flag.Bool("once", false, "with -follow: print one snapshot and exit")
		runID      = flag.String("run", "", "stream one run's SSE progress events until its verdict")
		interval   = flag.Duration("interval", time.Second, "poll interval for -follow")
		addrs      []string
	)
	flag.Func("addr", "base URL of a running gpod daemon (repeat for a fleet; default http://localhost:8722)", func(v string) error {
		addrs = append(addrs, strings.TrimRight(v, "/"))
		return nil
	})
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gpostat -history -ledger FILE [-family PAT] | -follow [-once] -addr URL | -run ID -addr URL")
		flag.PrintDefaults()
	}
	flag.Parse()
	if len(addrs) == 0 {
		addrs = []string{"http://localhost:8722"}
	}

	var pat *regexp.Regexp
	if *family != "" {
		var err error
		if pat, err = regexp.Compile("(?i)" + *family); err != nil {
			fatal(fmt.Errorf("bad -family pattern: %w", err))
		}
	}

	switch {
	case *runID != "":
		if err := streamRun(addrs[0], *runID); err != nil {
			fatal(err)
		}
	case *follow:
		if err := followRuns(addrs, *ledgerPath, pat, *interval, *once); err != nil {
			fatal(err)
		}
	case *history || *ledgerPath != "":
		if *ledgerPath == "" {
			fatal(fmt.Errorf("-history needs -ledger FILE"))
		}
		if err := printHistory(*ledgerPath, pat); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printHistory reconstructs per-configuration history from the journal:
// one line per (net, engine, check) with run counts, the wall-clock
// median/p90 over completed runs, aggregate throughput, and the
// agreed-on state count (or "DISAGREE" when completed runs diverge —
// a determinism red flag). Outlier runs follow their group's line.
func printHistory(path string, pat *regexp.Regexp) error {
	entries, err := ledger.Read(path)
	if err != nil {
		return err
	}
	if pat != nil {
		kept := entries[:0]
		for _, e := range entries {
			if pat.MatchString(e.Net) {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if len(entries) == 0 {
		fmt.Println("gpostat: no matching ledger entries")
		return nil
	}
	// Configurations with at least one retained flight-recorder dump
	// (single-node TracePath or cluster TracePeers) get a trace marker,
	// so history answers "can I pull a timeline for this?" at a glance.
	traced := make(map[string]bool)
	for _, e := range entries {
		if e.TracePath != "" || len(e.TracePeers) > 0 {
			traced[groupKey(e.Net, e.Engine, e.Check)] = true
		}
	}
	fmt.Printf("%-12s %-22s %-9s %5s %5s %12s %10s %10s %12s\n",
		"net", "engine", "check", "runs", "abort", "states", "median", "p90", "states/s")
	for _, g := range ledger.Summarize(entries) {
		// "DISAGREE" is reserved for an actual determinism divergence; a
		// group whose runs all aborted has no agreed state count to show.
		states := fmt.Sprint(g.States)
		switch {
		case g.StatesDisagree:
			states = "DISAGREE"
		case g.Completed == 0:
			states = "-"
		}
		mark := ""
		if traced[groupKey(g.Net, g.Engine, g.Check)] {
			mark = " trace=yes"
		}
		fmt.Printf("%-12s %-22s %-9s %5d %5d %12s %10s %10s %12.0f%s\n",
			g.Net, g.Engine, g.Check, g.Runs, g.Aborted, states,
			fmtDur(g.MedianWallNS), fmtDur(g.P90WallNS), g.StatesPerSec, mark)
		for _, o := range g.Outliers {
			fmt.Printf("  outlier %s: wall %s (> 2x median %s) at %s\n",
				o.RunID, fmtDur(o.WallNS), fmtDur(g.MedianWallNS),
				time.Unix(0, o.StartUnixNS).UTC().Format(time.RFC3339))
		}
	}
	return nil
}

// runStatusWire mirrors the daemon's /v1/runs "running" element (see
// internal/server.runStatus).
type runStatusWire struct {
	RunID       string  `json:"run_id"`
	RequestID   string  `json:"request_id"`
	State       string  `json:"state"`
	Net         string  `json:"net"`
	Engine      string  `json:"engine"`
	Check       string  `json:"check"`
	States      int64   `json:"states"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	Rate        float64 `json:"rate"`
	Frontier    int64   `json:"frontier_peak"`
	ZddNodes    int64   `json:"zdd_nodes"`
	Subscribers int     `json:"subscribers"`
}

type runsWire struct {
	Running   []runStatusWire `json:"running"`
	Completed []ledger.Entry  `json:"completed"`
}

// clusterStatusWire mirrors the daemon's GET /v1/cluster document (see
// internal/server.clusterStatusBody and internal/cluster.Status).
type clusterStatusWire struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self"`
	Peers   []struct {
		Addr    string `json:"addr"`
		ShardLo int    `json:"shard_lo"`
		ShardHi int    `json:"shard_hi"`
		Self    bool   `json:"self"`
	} `json:"peers"`
	Jobs    int              `json:"jobs"`
	Metrics map[string]int64 `json:"metrics"`
}

// printFleet renders the per-peer cluster table: each polled address's
// own shard range and its cluster counters. Peers that are down or not
// in cluster mode get a one-word row instead of killing the view.
func printFleet(addrs []string, now string) {
	printed := false
	for _, addr := range addrs {
		var st clusterStatusWire
		err := getJSON(addr+"/v1/cluster", &st)
		switch {
		case err != nil:
			fmt.Printf("%s PEER %-28s unreachable: %v\n", now, peerLabel(addr), err)
			continue
		case !st.Enabled:
			continue
		}
		if !printed {
			fmt.Printf("%s PEER %-28s %9s %4s %7s %7s %8s %11s\n",
				now, "addr", "shards", "jobs", "levels", "steals", "remote", "expand_in")
			printed = true
		}
		lo, hi := -1, -1
		for _, p := range st.Peers {
			if p.Self {
				lo, hi = p.ShardLo, p.ShardHi
			}
		}
		fmt.Printf("%s PEER %-28s %4d-%-4d %4d %7d %7d %8d %11d\n",
			now, peerLabel(addr), lo, hi-1, st.Jobs,
			st.Metrics["cluster.levels"], st.Metrics["cluster.steals"],
			st.Metrics["cluster.remote_cache_hits"], st.Metrics["cluster.expand_batches_in"])
	}
}

func peerLabel(addr string) string {
	return strings.TrimPrefix(strings.TrimPrefix(addr, "https://"), "http://")
}

// peerHealth is one watched daemon's reconnection state: consecutive
// failures and the earliest next attempt under the capped backoff.
type peerHealth struct {
	fails   int
	nextTry time.Time
}

// retryIn is the capped exponential backoff after the n-th consecutive
// failure (n >= 1): interval, 2x, 4x, ... capped at maxFollowBackoff.
const maxFollowBackoff = 30 * time.Second

func retryIn(interval time.Duration, fails int) time.Duration {
	shift := fails - 1
	if shift > 6 {
		shift = 6
	}
	d := interval << uint(shift)
	if d > maxFollowBackoff || d <= 0 {
		d = maxFollowBackoff
	}
	return d
}

// followRuns polls each peer's GET /v1/runs: every tick prints the
// fleet's cluster table (when any peer is clustered) and the in-flight
// runs, plus each completed run exactly once as it appears — runs are
// deduplicated fleet-wide by (run, end), so a shared-ledger fleet does
// not repeat itself. When a ledger file is given, completed walls are
// checked against the journal's per-configuration medians and flagged
// when they exceed twice it.
//
// A peer that stops answering does not end the watch (a daemon restart
// mid-drain is exactly when watching matters): the peer gets a DOWN row
// and is retried under a capped exponential backoff, rejoining the view
// on its first successful answer. Only -once reports connection errors
// as errors — a single snapshot of an unreachable daemon has nothing to
// reconnect to.
func followRuns(addrs []string, ledgerPath string, pat *regexp.Regexp, interval time.Duration, once bool) error {
	medians := historyMedians(ledgerPath)
	seen := make(map[string]bool)
	multi := len(addrs) > 1
	health := make(map[string]*peerHealth, len(addrs))
	for _, addr := range addrs {
		health[addr] = &peerHealth{}
	}
	for {
		now := time.Now().UTC().Format("15:04:05")
		// Peers in backoff are skipped wholesale this tick, cluster table
		// included, so a dead peer costs one DOWN row, not two timeouts.
		active := addrs[:0:0]
		for _, addr := range addrs {
			if h := health[addr]; time.Now().After(h.nextTry) {
				active = append(active, addr)
			}
		}
		printFleet(active, now)
		for _, addr := range active {
			var runs runsWire
			if err := getJSON(addr+"/v1/runs", &runs); err != nil {
				if once {
					if !multi {
						return err
					}
					fmt.Printf("%s DOWN %-28s unreachable: %v\n", now, peerLabel(addr), err)
					continue
				}
				h := health[addr]
				h.fails++
				wait := retryIn(interval, h.fails)
				h.nextTry = time.Now().Add(wait)
				fmt.Printf("%s DOWN %-28s unreachable, retry in %s: %v\n", now, peerLabel(addr), wait, err)
				continue
			}
			health[addr].fails = 0
			health[addr].nextTry = time.Time{}
			from := ""
			if multi {
				from = " @" + peerLabel(addr)
			}
			for _, r := range runs.Running {
				if pat != nil && !pat.MatchString(r.Net) {
					continue
				}
				fmt.Printf("%s RUN  %s %s/%s/%s %s states=%d rate=%.0f/s elapsed=%s subs=%d%s\n",
					now, r.RunID, r.Net, r.Engine, r.Check, r.State,
					r.States, r.Rate, fmtDur(r.ElapsedNS), r.Subscribers, from)
			}
			for i := len(runs.Completed) - 1; i >= 0; i-- { // oldest first
				e := runs.Completed[i]
				k := fmt.Sprintf("%s/%d", e.RunID, e.EndUnixNS)
				if seen[k] || (pat != nil && !pat.MatchString(e.Net)) {
					continue
				}
				seen[k] = true
				flag := ""
				if m := medians[groupKey(e.Net, e.Engine, e.Check)]; m > 0 && e.WallNS > 2*m {
					flag = fmt.Sprintf("  OUTLIER (%.1fx ledger median %s)", float64(e.WallNS)/float64(m), fmtDur(m))
				}
				peersNote := ""
				if e.Peers > 0 {
					peersNote = fmt.Sprintf(" peers=%d", e.Peers)
				}
				fmt.Printf("%s DONE %s %s/%s/%s %s states=%d wall=%s%s%s%s\n",
					now, e.RunID, e.Net, e.Engine, e.Check, e.Verdict(),
					e.States, fmtDur(e.WallNS), peersNote, flag, from)
			}
		}
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func groupKey(net, engine, check string) string {
	return net + "\x00" + engine + "\x00" + check
}

// historyMedians loads per-configuration median walls from the journal
// ("" or an unreadable journal yields no baselines, not an error — the
// live view is useful without history).
func historyMedians(path string) map[string]int64 {
	if path == "" {
		return nil
	}
	entries, err := ledger.Read(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpostat: ledger:", err)
		return nil
	}
	m := make(map[string]int64)
	for _, g := range ledger.Summarize(entries) {
		m[groupKey(g.Net, g.Engine, g.Check)] = g.MedianWallNS
	}
	return m
}

// streamRun attaches to one run's SSE event stream and renders each
// progress snapshot, ending with the verdict line of the terminal
// "done" event (which the daemon sends even for already-completed runs,
// reconstructed from the ledger).
func streamRun(addr, id string) error {
	resp, err := http.Get(addr + "/v1/runs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/runs/%s/events: %s", id, resp.Status)
	}
	sawDone := false
	err = readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "progress":
			var p struct {
				States    int64   `json:"states"`
				ElapsedNS int64   `json:"elapsed_ns"`
				Rate      float64 `json:"rate"`
				Frontier  int64   `json:"frontier_peak"`
				ZddNodes  int64   `json:"zdd_nodes"`
			}
			if err := json.Unmarshal(data, &p); err != nil {
				return err
			}
			fmt.Printf("%s states=%d rate=%.0f/s elapsed=%s frontier=%d zdd=%d\n",
				id, p.States, p.Rate, fmtDur(p.ElapsedNS), p.Frontier, p.ZddNodes)
		case "done":
			var d struct {
				Status   string `json:"status"`
				Error    string `json:"error"`
				Deadlock bool   `json:"deadlock"`
				States   int64  `json:"states"`
				Complete bool   `json:"complete"`
				WallNS   int64  `json:"wall_ns"`
			}
			if err := json.Unmarshal(data, &d); err != nil {
				return err
			}
			sawDone = true
			fmt.Printf("%s done status=%s deadlock=%v states=%d complete=%v wall=%s",
				id, d.Status, d.Deadlock, d.States, d.Complete, fmtDur(d.WallNS))
			if d.Error != "" {
				fmt.Printf(" error=%q", d.Error)
			}
			fmt.Println()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !sawDone {
		return fmt.Errorf("run %s: stream ended without a done event", id)
	}
	return nil
}

// readSSE feeds each complete server-sent event to fn. It understands
// exactly the subset the daemon emits: "event:" followed by one "data:"
// line, events separated by blank lines.
func readSSE(r interface{ Read([]byte) (int, error) }, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := fn(event, []byte(strings.TrimPrefix(line, "data: "))); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpostat:", err)
	os.Exit(1)
}
