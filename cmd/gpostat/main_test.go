package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/ledger"
)

// TestRetryInCapped pins the -follow reconnect backoff: exponential in
// the poll interval, capped at maxFollowBackoff, and never zero or
// negative even for absurd failure counts (shift overflow).
func TestRetryInCapped(t *testing.T) {
	iv := time.Second
	cases := []struct {
		fails int
		want  time.Duration
	}{
		{1, time.Second},
		{2, 2 * time.Second},
		{3, 4 * time.Second},
		{5, 16 * time.Second},
		{6, 30 * time.Second}, // 32s capped
		{10, 30 * time.Second},
		{1000, 30 * time.Second},
	}
	for _, tc := range cases {
		if got := retryIn(iv, tc.fails); got != tc.want {
			t.Errorf("retryIn(1s, %d) = %v, want %v", tc.fails, got, tc.want)
		}
	}
	if got := retryIn(time.Hour, 3); got != maxFollowBackoff {
		t.Errorf("retryIn(1h, 3) = %v, want cap %v", got, maxFollowBackoff)
	}
}

// TestFollowOnceSemantics: -once against a live daemon succeeds even
// when an earlier poll of the same process had failed (transient errors
// must not be sticky), and -once against an unreachable single address
// is an error — there is no later tick to reconnect on.
func TestFollowOnceSemantics(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster" {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false})
			return
		}
		calls.Add(1)
		json.NewEncoder(w).Encode(runsWire{})
	}))
	defer ts.Close()

	if err := followRuns([]string{ts.URL}, "", nil, time.Millisecond, true); err != nil {
		t.Fatalf("follow -once against live daemon: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("follow -once never polled /v1/runs")
	}

	ts.Close()
	if err := followRuns([]string{ts.URL}, "", nil, time.Millisecond, true); err == nil {
		t.Fatal("follow -once against dead daemon should error")
	}
}

// TestHistoryTraceMarker: configurations with at least one traced run
// (cluster TracePeers or a single-node TracePath) carry the trace=yes
// marker in -history output; untraced configurations stay unmarked.
func TestHistoryTraceMarker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	lg, err := ledger.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := ledger.Entry{
		Schema: ledger.Schema, Source: "gpod", Check: "deadlock",
		Status: "ok", Complete: true, States: 322,
		StartUnixNS: 1, EndUnixNS: 2, WallNS: 1e6,
	}
	traced := base
	traced.RunID, traced.Net, traced.Engine = "r1", "NSDP(4)", "exhaustive"
	traced.TracePeers = []string{"http://p0/v1/runs/r1/trace", "http://p1/v1/runs/r1/trace"}
	plain := base
	plain.RunID, plain.Net, plain.Engine = "r2", "RW(6)", "gpo"
	for _, e := range []ledger.Entry{traced, plain} {
		if err := lg.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	histErr := printHistory(path, nil)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if histErr != nil {
		t.Fatalf("printHistory: %v", histErr)
	}
	var nsdpLine, rwLine string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "NSDP(4)") {
			nsdpLine = line
		}
		if strings.HasPrefix(line, "RW(6)") {
			rwLine = line
		}
	}
	if !strings.HasSuffix(nsdpLine, "trace=yes") {
		t.Errorf("traced group line lacks trace=yes marker: %q", nsdpLine)
	}
	if rwLine == "" || strings.Contains(rwLine, "trace=yes") {
		t.Errorf("untraced group line wrong: %q", rwLine)
	}
}
