package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryInCapped pins the -follow reconnect backoff: exponential in
// the poll interval, capped at maxFollowBackoff, and never zero or
// negative even for absurd failure counts (shift overflow).
func TestRetryInCapped(t *testing.T) {
	iv := time.Second
	cases := []struct {
		fails int
		want  time.Duration
	}{
		{1, time.Second},
		{2, 2 * time.Second},
		{3, 4 * time.Second},
		{5, 16 * time.Second},
		{6, 30 * time.Second}, // 32s capped
		{10, 30 * time.Second},
		{1000, 30 * time.Second},
	}
	for _, tc := range cases {
		if got := retryIn(iv, tc.fails); got != tc.want {
			t.Errorf("retryIn(1s, %d) = %v, want %v", tc.fails, got, tc.want)
		}
	}
	if got := retryIn(time.Hour, 3); got != maxFollowBackoff {
		t.Errorf("retryIn(1h, 3) = %v, want cap %v", got, maxFollowBackoff)
	}
}

// TestFollowOnceSemantics: -once against a live daemon succeeds even
// when an earlier poll of the same process had failed (transient errors
// must not be sticky), and -once against an unreachable single address
// is an error — there is no later tick to reconnect on.
func TestFollowOnceSemantics(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster" {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false})
			return
		}
		calls.Add(1)
		json.NewEncoder(w).Encode(runsWire{})
	}))
	defer ts.Close()

	if err := followRuns([]string{ts.URL}, "", nil, time.Millisecond, true); err != nil {
		t.Fatalf("follow -once against live daemon: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("follow -once never polled /v1/runs")
	}

	ts.Close()
	if err := followRuns([]string{ts.URL}, "", nil, time.Millisecond, true); err == nil {
		t.Fatal("follow -once against dead daemon should error")
	}
}
