// Command pndot exports a Petri net — or its reachability graph — as a
// Graphviz DOT digraph on standard output.
//
// Usage:
//
//	pndot -model fig7                 # net structure
//	pndot -net system.pn -rg          # full reachability graph
//	pndot -model nsdp -size 2 -rg | dot -Tsvg > rg.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/reach"
)

func main() {
	var (
		netFile   = flag.String("net", "", "read the net from this .pn file")
		model     = flag.String("model", "", "use a built-in model family: "+strings.Join(models.Families(), ", "))
		size      = flag.Int("size", 3, "parameter of the built-in model")
		rg        = flag.Bool("rg", false, "export the reachability graph instead of the net")
		maxStates = flag.Int("max-states", 10000, "reachability graph size guard")
	)
	flag.Parse()

	var net *petri.Net
	var err error
	switch {
	case *netFile != "" && *model != "":
		err = fmt.Errorf("use -net or -model, not both")
	case *netFile != "":
		var f *os.File
		if f, err = os.Open(*netFile); err == nil {
			net, err = pnio.Parse(f)
			f.Close()
		}
	case *model != "":
		net, err = models.ByName(*model, *size)
	default:
		err = fmt.Errorf("need -net <file.pn> or -model <family>")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pndot:", err)
		os.Exit(1)
	}

	if !*rg {
		if err := pnio.NetDOT(os.Stdout, net); err != nil {
			fmt.Fprintln(os.Stderr, "pndot:", err)
			os.Exit(1)
		}
		return
	}

	res, err := reach.Explore(net, reach.Options{StoreGraph: true, MaxStates: *maxStates})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pndot:", err)
		os.Exit(1)
	}
	err = pnio.GraphDOT(os.Stdout, net, res.Graph.States, func(from int) []pnio.Edge {
		var out []pnio.Edge
		for _, e := range res.Graph.Edges[from] {
			out = append(out, pnio.Edge{T: e.T, To: e.To})
		}
		return out
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pndot:", err)
		os.Exit(1)
	}
}
