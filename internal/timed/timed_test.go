package timed

import (
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/proc"
	"repro/internal/unfold"
)

func build(t *testing.T, src string) (*petri.Net, *unfold.Prefix) {
	t.Helper()
	net := proc.MustCompile(src)
	px, err := unfold.Build(net, unfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net, px
}

func delaysByName(t *testing.T, n *petri.Net, def Delay, byName map[string]Delay) Delays {
	t.Helper()
	d := make(Delays, n.NumTrans())
	for i := range d {
		d[i] = def
	}
	for name, iv := range byName {
		tr, ok := n.TransByName(name)
		if !ok {
			t.Fatalf("no transition %q", name)
		}
		d[tr] = iv
	}
	return d
}

func TestSequentialChain(t *testing.T) {
	net, px := build(t, `
		proc p = a ; b ; c
		system p
	`)
	d := delaysByName(t, net, Delay{1, 2}, map[string]Delay{
		"p.b": {10, 20},
	})
	res, err := Analyze(px, d)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := net.TransByName("p.c")
	b, ok := res.FirstOccurrence(c)
	if !ok {
		t.Fatal("c never occurs")
	}
	// a: [1,2], b: [11,22], c: [12,24].
	if b.Earliest != 12 || b.Latest != 24 {
		t.Errorf("c window [%d,%d], want [12,24]", b.Earliest, b.Latest)
	}
	span, ok := res.Span()
	if !ok || span.Earliest != 12 || span.Latest != 24 {
		t.Errorf("span %+v, want [12,24]", span)
	}
}

func TestParallelMax(t *testing.T) {
	net, px := build(t, `
		proc p = ( slow || fast ) ; done
		system p
	`)
	d := delaysByName(t, net, Delay{0, 0}, map[string]Delay{
		"p.slow": {100, 150},
		"p.fast": {1, 2},
		"p.done": {5, 5},
	})
	res, err := Analyze(px, d)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := net.TransByName("p.done")
	b, ok := res.FirstOccurrence(done)
	if !ok {
		t.Fatal("done never occurs")
	}
	// The join waits for the slow branch: [105, 155].
	if b.Earliest != 105 || b.Latest != 155 {
		t.Errorf("done window [%d,%d], want [105,155]", b.Earliest, b.Latest)
	}

	// Critical path runs through the slow branch.
	var doneEvent *unfold.Event
	for _, e := range px.Events {
		if e.T == done {
			doneEvent = e
		}
	}
	path := res.CriticalPath(doneEvent)
	names := make([]string, len(path))
	for i, e := range path {
		names[i] = net.TransName(e.T)
	}
	foundSlow := false
	for _, nm := range names {
		if nm == "p.slow" {
			foundSlow = true
		}
		if nm == "p.fast" {
			t.Errorf("critical path %v goes through the fast branch", names)
		}
	}
	if !foundSlow {
		t.Errorf("critical path %v misses the slow branch", names)
	}
}

func TestChoiceBranchesIndependent(t *testing.T) {
	net, px := build(t, `
		proc p = ( quick + slow )
		system p
	`)
	d := delaysByName(t, net, Delay{0, 0}, map[string]Delay{
		"p.quick": {1, 1},
		"p.slow":  {50, 60},
	})
	res, err := Analyze(px, d)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := net.TransByName("p.quick")
	s, _ := net.TransByName("p.slow")
	bq, _ := res.FirstOccurrence(q)
	bs, _ := res.FirstOccurrence(s)
	if bq.Earliest != 1 || bq.Latest != 1 {
		t.Errorf("quick [%d,%d], want [1,1]", bq.Earliest, bq.Latest)
	}
	if bs.Earliest != 50 || bs.Latest != 60 {
		t.Errorf("slow [%d,%d], want [50,60]", bs.Earliest, bs.Latest)
	}
}

func TestRendezvousWaitsForBoth(t *testing.T) {
	net, px := build(t, `
		proc fastSide = prep ; !go
		proc slowSide = think ; ?go
		system fastSide slowSide
	`)
	d := delaysByName(t, net, Delay{1, 1}, map[string]Delay{
		"fastSide.prep":  {1, 2},
		"slowSide.think": {30, 40},
	})
	res, err := Analyze(px, d)
	if err != nil {
		t.Fatal(err)
	}
	rv, ok := net.TransByName("go:fastSide>slowSide")
	if !ok {
		t.Fatal("missing rendezvous")
	}
	b, ok := res.FirstOccurrence(rv)
	if !ok {
		t.Fatal("rendezvous never occurs")
	}
	// Waits for the slow thinker: [31, 41].
	if b.Earliest != 31 || b.Latest != 41 {
		t.Errorf("rendezvous [%d,%d], want [31,41]", b.Earliest, b.Latest)
	}

	lo, hi := func() (int64, int64) {
		var prepE, rvE *unfold.Event
		prep, _ := net.TransByName("fastSide.prep")
		for _, e := range px.Events {
			if e.T == prep {
				prepE = e
			}
			if e.T == rv {
				rvE = e
			}
		}
		return res.Separation(prepE, rvE)
	}()
	// prep at [1,2], rendezvous at [31,41]: separation within [29,40].
	if lo != 29 || hi != 40 {
		t.Errorf("separation [%d,%d], want [29,40]", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	net := models.Fig3()
	bad := Uniform(net, 5, 2) // Hi < Lo
	px, err := unfold.Build(net, unfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(px, bad); err == nil {
		t.Error("invalid delays accepted")
	}
	short := make(Delays, 1)
	if _, err := Analyze(px, short); err == nil {
		t.Error("wrong-length delays accepted")
	}
}

func TestUniformOnFig1(t *testing.T) {
	net := models.Fig1(5)
	px, err := unfold.Build(net, unfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(px, Uniform(net, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	// All five events are concurrent: identical windows [3,7].
	for i := range px.Events {
		if res.Events[i].Earliest != 3 || res.Events[i].Latest != 7 {
			t.Errorf("event %d window %+v, want [3,7]", i, res.Events[i])
		}
	}
	span, _ := res.Span()
	if span.Earliest != 3 || span.Latest != 7 {
		t.Errorf("span %+v", span)
	}
}
