// Package timed adds interval timing analysis on top of net unfoldings —
// the direction the paper's conclusion points to ("efficient timing
// verification of concurrent systems, modeled as Timed Petri nets", its
// references [7] and [13]).
//
// Transitions carry earliest/latest firing delays [Lo, Hi] measured from
// the moment they become enabled. On the acyclic prefix built by
// internal/unfold, occurrence-time bounds propagate along causality only:
// an event can fire no earlier than Lo after the latest of its producers'
// earliest times, and no later than Hi after their latest times. The
// result is, per event, a conservative [Earliest, Latest] occurrence
// window, plus critical-path extraction. For cyclic nets the bounds cover
// the prefix (the behavior up to cutoffs), i.e. the first "round" of the
// system — the classical use for asynchronous-circuit response-time
// estimation.
package timed

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/unfold"
)

// Delay is an interval firing delay.
type Delay struct {
	Lo, Hi int64
}

// Delays assigns an interval to every transition of a net.
type Delays []Delay

// Uniform returns delays assigning the same interval to every transition.
func Uniform(n *petri.Net, lo, hi int64) Delays {
	d := make(Delays, n.NumTrans())
	for i := range d {
		d[i] = Delay{Lo: lo, Hi: hi}
	}
	return d
}

// Validate checks 0 ≤ Lo ≤ Hi for every transition.
func (d Delays) Validate(n *petri.Net) error {
	if len(d) != n.NumTrans() {
		return fmt.Errorf("timed: %d delays for %d transitions", len(d), n.NumTrans())
	}
	for t, iv := range d {
		if iv.Lo < 0 || iv.Hi < iv.Lo {
			return fmt.Errorf("timed: transition %s has invalid delay [%d,%d]",
				n.TransName(petri.Trans(t)), iv.Lo, iv.Hi)
		}
	}
	return nil
}

// Bounds is the occurrence window of one event.
type Bounds struct {
	Earliest, Latest int64
}

// Result holds the timing analysis of a prefix.
type Result struct {
	Prefix *unfold.Prefix
	Events []Bounds // indexed like Prefix.Events
}

// Analyze propagates the delay intervals through the prefix.
func Analyze(px *unfold.Prefix, d Delays) (*Result, error) {
	if err := d.Validate(px.Net); err != nil {
		return nil, err
	}
	res := &Result{Prefix: px, Events: make([]Bounds, len(px.Events))}
	// Events are already topologically ordered: every producer of a
	// condition was inserted before its consumers.
	for i, e := range px.Events {
		var lo, hi int64
		for _, c := range e.Pre {
			if c.Producer == nil {
				continue // available at time 0
			}
			p := res.Events[c.Producer.ID]
			if p.Earliest > lo {
				lo = p.Earliest
			}
			if p.Latest > hi {
				hi = p.Latest
			}
		}
		iv := d[e.T]
		res.Events[i] = Bounds{Earliest: lo + iv.Lo, Latest: hi + iv.Hi}
	}
	return res, nil
}

// Of returns the occurrence window of an event.
func (r *Result) Of(e *unfold.Event) Bounds { return r.Events[e.ID] }

// Span returns the window within which the whole (non-cutoff part of the)
// prefix completes: the maximum earliest and latest bounds over all
// non-cutoff events. ok is false when the prefix has no events.
func (r *Result) Span() (Bounds, bool) {
	var out Bounds
	found := false
	for i, e := range r.Prefix.Events {
		if e.Cutoff {
			continue
		}
		b := r.Events[i]
		if !found || b.Earliest > out.Earliest {
			out.Earliest = b.Earliest
		}
		if !found || b.Latest > out.Latest {
			out.Latest = b.Latest
		}
		found = true
	}
	return out, found
}

// FirstOccurrence returns the occurrence window of the earliest event of
// the given transition in the prefix (ok=false if the transition never
// occurs).
func (r *Result) FirstOccurrence(t petri.Trans) (Bounds, bool) {
	found := false
	var out Bounds
	for i, e := range r.Prefix.Events {
		if e.T != t {
			continue
		}
		b := r.Events[i]
		if !found || b.Earliest < out.Earliest {
			out = b
			found = true
		}
	}
	return out, found
}

// CriticalPath returns the chain of events realizing the latest bound of
// the given event: at every step the causal predecessor with the largest
// Latest value. The path is returned root-first, ending at e.
func (r *Result) CriticalPath(e *unfold.Event) []*unfold.Event {
	var path []*unfold.Event
	for e != nil {
		path = append(path, e)
		var next *unfold.Event
		var best int64 = -1
		for _, c := range e.Pre {
			if c.Producer == nil {
				continue
			}
			if b := r.Events[c.Producer.ID]; b.Latest > best {
				best = b.Latest
				next = c.Producer
			}
		}
		e = next
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Separation returns a conservative bound on the time separation
// occurrence(b) − occurrence(a) for two events: the interval
// [bE − aL, bL − aE]. (Exact minimal/maximal separations require the
// partial-enumeration machinery of the paper's reference [7]; this
// interval always contains them.)
func (r *Result) Separation(a, b *unfold.Event) (lo, hi int64) {
	ba, bb := r.Events[a.ID], r.Events[b.ID]
	return bb.Earliest - ba.Latest, bb.Latest - ba.Earliest
}
