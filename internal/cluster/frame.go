// Package cluster implements distributed sharded exploration: a
// coordinator/worker mode where one exhaustive reachability run is
// partitioned across gpod peers at the visited-store shard boundary,
// plus a consistent-hash shared result-cache tier so any peer answers a
// repeat query once one of them has computed it.
//
// The 256 visited-store shards of internal/reach are split into static
// per-peer ranges by state-key hash (reach.ShardOf). The coordinator
// drives classical BFS levels; peers expand their slice of each level,
// exchange frontier batches (binary state keys plus provenance order
// keys, length-prefixed frames over persistent HTTP/1.1), and the
// coordinator performs the same (parent, transition)-ordered level
// merge as the in-process parallel explorer — so a multi-peer run
// produces bit-identical Results (states, MaxStates stop point,
// ErrUnsafe witness) to the sequential BFS. See DESIGN.md D10.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types of the cluster wire protocol. One frame = 4-byte
// big-endian length, 1 type byte, payload. The length covers the type
// byte and the payload, so a zero-payload frame has length 1.
const (
	frameExpand   = byte(0x01) // coordinator → peer: level slice to expand
	frameExpandRe = byte(0x02) // peer → coordinator: flags, orders, violation
	frameIntern   = byte(0x03) // peer → peer: routed successor batch
	frameCollect  = byte(0x04) // peer → coordinator: pending discoveries
	frameCommit   = byte(0x05) // coordinator → peer: id assignments
	frameAck      = byte(0x06) // empty acknowledgement
)

// MaxFrame bounds a single frame's length field: a frontier batch of a
// plausible level already chunks well below this, so anything larger is
// a corrupt or hostile stream, rejected before allocation.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned for a frame whose declared length
// exceeds the reader's limit.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// ErrTornFrame is returned when the stream ends inside a frame header
// or body — the wire-level analogue of the ledger's torn tail.
var ErrTornFrame = errors.New("cluster: torn frame")

// WriteFrame emits one length-prefixed frame. The codec is exported for
// reuse by the checkpoint container (internal/ckpt), whose segments are
// the same length-prefixed frames as the cluster wire protocol.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting declared lengths above max. A
// clean EOF at a frame boundary returns io.EOF; an EOF inside a frame
// returns ErrTornFrame.
func ReadFrame(r io.Reader, max int) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrTornFrame)
	}
	if int64(n) > int64(max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	return body[0], body[1:], nil
}

// AppendBytes appends a uvarint-length-prefixed byte string, the same
// self-delimiting style as verify's canonical net encoding.
func AppendBytes(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// NextUvarint reads one uvarint from *b, advancing it.
func NextUvarint(b *[]byte) (uint64, error) {
	v, n := binary.Uvarint(*b)
	if n <= 0 {
		return 0, fmt.Errorf("cluster: bad uvarint in frame payload")
	}
	*b = (*b)[n:]
	return v, nil
}

// NextBytes reads one length-prefixed byte string from *b.
func NextBytes(b *[]byte) (string, error) {
	n, err := NextUvarint(b)
	if err != nil {
		return "", err
	}
	if uint64(len(*b)) < n {
		return "", fmt.Errorf("cluster: truncated byte string in frame payload")
	}
	s := string((*b)[:n])
	*b = (*b)[n:]
	return s, nil
}
