package cluster

// Coordinator side of a distributed exploration. The node driving
// Explore owns the authoritative state table (id -> marking) and the
// level loop; peers own the visited store, partitioned at the same
// 256-shard boundary the in-process parallel explorer uses. Each level:
//
//  1. assign: group the level's positions by their parent state's
//     shard, give each bucket to the shard's owner, then rebalance by
//     stealing whole buckets from the most-loaded peer for any peer
//     below the watermark — assignment moves work, never ownership, and
//     order keys carry the global level position, so stealing cannot
//     perturb the merge order;
//  2. expand: peers fire every enabled transition of their slice,
//     route fresh successors to owning peers as intern batches, and
//     reply with verdict flags, examined order keys, and the minimal
//     unsafe firing;
//  3. collect: owners return their pending discoveries;
//  4. merge: reach.SortDiscoveries + reach.PlanLevel — the exact hooks
//     of the in-process explorer — fix the level's stop point, then ids
//     are assigned in first-encounter order and committed back.
//
// The Result is therefore bit-identical to reach.Explore on the same
// net and options.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/reach"
)

// Explore runs one exhaustive reachability analysis across the
// cluster. bad lists the safety-predicate places (nil for deadlock-only
// runs); it must agree with o.Bad, which the coordinator still uses for
// the capped path's fresh-state checks. Options the cluster cannot
// distribute (StoreGraph, early stops) fall back to the in-process
// engine, which is bit-identical anyway.
func (nd *Node) Explore(n *petri.Net, bad []petri.Place, o reach.Options) (*reach.Result, error) {
	if o.StoreGraph || o.StopAtDeadlock || o.StopAtBad || len(nd.peers) == 1 {
		return reach.Explore(n, o)
	}
	defer o.Metrics.StartSpan("cluster.explore").End()

	var netText strings.Builder
	if err := pnio.Write(&netText, n); err != nil {
		return nil, fmt.Errorf("cluster: cannot serialize net: %w", err)
	}
	badNames := make([]string, len(bad))
	for i, p := range bad {
		badNames[i] = n.PlaceName(p)
	}

	nd.mu.Lock()
	nd.seq++
	jobID := fmt.Sprintf("j-%d-%d-%d", nd.self, time.Now().UnixNano(), nd.seq)
	nd.mu.Unlock()

	// Trace context: the content-addressed run ID (stamped into the
	// tracer's meta by the server) rides on startReq so every peer's
	// recorder shares the run's identity; the coordinator additionally
	// stamps its wall-clock base so merged timelines can align dumps.
	runID := ""
	if o.Trace != nil {
		runID = o.Trace.Meta()["run_id"]
		if runID == "" {
			runID = jobID
		}
		o.Trace.SetMeta("role", "coordinator")
		o.Trace.SetMeta("coordinator", nd.Self())
		o.Trace.SetMeta("base_unix_ns", strconv.FormatInt(o.Trace.Base().UnixNano(), 10))
	}

	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := nd.broadcast(func(peer int) error {
		return nd.postJSON(ctx, peer, "/cluster/v1/start", startReq{Job: jobID, Net: netText.String(), Bad: badNames, TraceRun: runID})
	}); err != nil {
		return nil, fmt.Errorf("cluster: start broadcast: %w", err)
	}
	defer nd.broadcast(func(peer int) error {
		return nd.postJSON(context.Background(), peer, "/cluster/v1/finish", finishReq{Job: jobID})
	})

	res := &reach.Result{Complete: true}
	var (
		qPeak    int
		levels   int64
		steals   int64
		bytesOut int64
		bytesIn  int64
	)
	if o.Metrics != nil {
		defer func() {
			reg := o.Metrics
			reg.Counter("reach.states").Add(int64(res.States))
			reg.Counter("reach.arcs").Add(int64(res.Arcs))
			reg.Counter("reach.deadlocks").Add(int64(len(res.Deadlocks)))
			reg.Counter("reach.bad_states").Add(int64(len(res.BadStates)))
			reg.Gauge("reach.queue_peak").SetMax(int64(qPeak))
			reg.Counter("cluster.levels").Add(levels)
			reg.Counter("cluster.steals").Add(steals)
			reg.Counter("cluster.frontier_bytes_out").Add(bytesOut)
			reg.Counter("cluster.frontier_bytes_in").Add(bytesIn)
			reg.Gauge("cluster.peers").Set(int64(len(nd.peers)))
		}()
	}
	tk := o.Trace.NewTrack("cluster")
	phExplore := o.Trace.Intern("explore")
	phAssign := o.Trace.Intern("assign")
	phSerialize := o.Trace.Intern("serialize")
	phWait := o.Trace.Intern("expand_wait")
	phMerge := o.Trace.Intern("merge")
	tk.Begin(phExplore)
	// One wire lane per peer: each broadcast goroutine records its own
	// serialize spans and frame edges, so the single-writer contract of
	// Track holds (phases within a level are sequential per peer).
	wire := make([]*trace.Track, len(nd.peers))
	if o.Trace != nil {
		for i := range wire {
			wire[i] = o.Trace.NewTrack("wire:" + nd.peers[i])
		}
	}

	var states []petri.Marking
	var stateShard []uint32
	m0 := n.InitialMarking()
	_, h0 := m0.KeyHash()
	states = append(states, m0)
	stateShard = append(stateShard, reach.ShardOf(h0))
	o.Progress.Tick(1)
	tk.State(0, 0)

	level := []int{0}

	abort := func() (*reach.Result, error) {
		res.States = len(states)
		res.Complete = false
		tk.Abort(o.Trace.Intern(ctx.Err().Error()))
		return res, fmt.Errorf("reach: aborted: %w", ctx.Err())
	}

	for len(level) > 0 {
		if ctx.Err() != nil {
			return abort()
		}
		lvl := levels
		levels++
		if len(level) > qPeak {
			qPeak = len(level)
		}
		tk.Level(lvl, int64(len(level)))

		// Assign: bucket positions by parent shard, owner first, then
		// steal whole buckets for starving peers.
		tk.Emit(trace.KindPhaseBegin, phAssign, lvl)
		assign, nSteals := nd.assignLevel(level, stateShard, tk, lvl)
		tk.Emit(trace.KindPhaseEnd, phAssign, lvl)
		steals += nSteals

		// Expand all peers in parallel.
		type peerBatch struct {
			entries []expandEntry
			reply   *expandReply
		}
		batches := make([]*peerBatch, len(nd.peers))
		for peer, positions := range assign {
			if len(positions) == 0 {
				continue
			}
			entries := make([]expandEntry, len(positions))
			for i, pos := range positions {
				entries[i] = expandEntry{pos: uint32(pos), key: states[level[pos]].Key()}
			}
			batches[peer] = &peerBatch{entries: entries}
		}
		tk.Emit(trace.KindPhaseBegin, phWait, lvl)
		err := nd.broadcast(func(peer int) error {
			pb := batches[peer]
			if pb == nil {
				return nil
			}
			wt := wire[peer]
			wt.Emit(trace.KindPhaseBegin, phSerialize, lvl)
			buf, err := encodeBuf(func(w io.Writer) error { return encodeExpand(w, pb.entries) })
			wt.Emit(trace.KindPhaseEnd, phSerialize, lvl)
			if err != nil {
				return err
			}
			nd.addBytes(&bytesOut, int64(buf.Len()))
			pid := trace.PairID(lvl, trace.RPCExpand, nd.self, peer)
			wt.FrameSend(pid, int64(buf.Len()))
			resp, cancel, err := nd.post(ctx, peer, "/cluster/v1/expand", jobID, pid, buf, "application/octet-stream")
			if err != nil {
				return err
			}
			defer cancel()
			defer resp.Body.Close()
			cr := &countingReader{r: resp.Body}
			re, err := decodeExpandReply(cr, nd.maxFrame)
			if err != nil {
				return err
			}
			nd.addBytes(&bytesIn, cr.n)
			wt.FrameRecv(pid, cr.n)
			if len(re.flags) != len(pb.entries) {
				return fmt.Errorf("expand reply flag count %d != batch size %d", len(re.flags), len(pb.entries))
			}
			pb.reply = re
			return nil
		})
		tk.Emit(trace.KindPhaseEnd, phWait, lvl)
		if err != nil {
			if ctx.Err() != nil {
				return abort()
			}
			return nil, fmt.Errorf("cluster: expand: %w", err)
		}

		// Merge verdict flags back into global position order, and take
		// the scan-order-minimal violation across peers.
		deadFlags := make([]bool, len(level))
		badFlags := make([]bool, len(level))
		vioOrder := ^uint64(0)
		hasVio := false
		for _, pb := range batches {
			if pb == nil || pb.reply == nil {
				continue
			}
			for i, e := range pb.entries {
				if pb.reply.flags[i]&flagDead != 0 {
					deadFlags[e.pos] = true
				}
				if pb.reply.flags[i]&flagBad != 0 {
					badFlags[e.pos] = true
				}
			}
			if pb.reply.hasVio && (!hasVio || pb.reply.vioOrder < vioOrder) {
				hasVio = true
				vioOrder = pb.reply.vioOrder
			}
		}
		for pos, id := range level {
			if badFlags[pos] {
				res.BadFound = true
				res.BadStates = append(res.BadStates, states[id])
			}
			if deadFlags[pos] {
				res.Deadlock = true
				res.Deadlocks = append(res.Deadlocks, states[id])
			}
		}

		// Collect pending discoveries from every owner.
		collected := make([][]internEntry, len(nd.peers))
		err = nd.broadcast(func(peer int) error {
			pid := trace.PairID(lvl, trace.RPCCollect, nd.self, peer)
			wire[peer].FrameSend(pid, 0)
			resp, cancel, err := nd.post(ctx, peer, "/cluster/v1/collect", jobID, pid, bytes.NewBuffer(nil), "application/octet-stream")
			if err != nil {
				return err
			}
			defer cancel()
			defer resp.Body.Close()
			cr := &countingReader{r: resp.Body}
			list, err := decodeKeyOrders(cr, frameCollect, nd.maxFrame)
			if err != nil {
				return err
			}
			nd.addBytes(&bytesIn, cr.n)
			wire[peer].FrameRecv(pid, cr.n)
			collected[peer] = list
			return nil
		})
		if err != nil {
			if ctx.Err() != nil {
				return abort()
			}
			return nil, fmt.Errorf("cluster: collect: %w", err)
		}
		tk.Emit(trace.KindPhaseBegin, phMerge, lvl)
		var discovered []*reach.Discovery
		for _, list := range collected {
			for _, e := range list {
				m, ok := n.MarkingFromKey(e.key)
				if !ok {
					return nil, fmt.Errorf("cluster: collect: bad state key from peer")
				}
				discovered = append(discovered, &reach.Discovery{
					Key:   e.key,
					Hash:  petri.HashKey(e.key),
					M:     m,
					Order: e.order,
					ID:    -1,
				})
			}
		}
		reach.SortDiscoveries(discovered)

		trigger, capped, unsafeFirst := reach.PlanLevel(discovered, len(states), o.MaxStates, vioOrder, hasVio)
		if unsafeFirst {
			pos := reach.OrderPos(vioOrder)
			t := reach.OrderTrans(vioOrder)
			return nil, fmt.Errorf("%w: firing %s from %s double-marks a place",
				reach.ErrUnsafe, n.TransName(t), states[level[pos]].String(n))
		}

		// Assign ids in first-encounter order and commit them back.
		nextLevel := make([]int, 0, len(discovered))
		commitByOwner := make([][]commitEntry, len(nd.peers))
		for _, d := range discovered {
			if d.Order >= trigger {
				break
			}
			d.ID = len(states)
			states = append(states, d.M)
			sh := reach.ShardOf(d.Hash)
			stateShard = append(stateShard, sh)
			owner := nd.owners[sh]
			commitByOwner[owner] = append(commitByOwner[owner], commitEntry{key: d.Key, id: d.ID})
			o.Progress.Tick(1)
			tk.State(int64(d.ID), 0)
			nextLevel = append(nextLevel, d.ID)
		}
		tk.Emit(trace.KindPhaseEnd, phMerge, lvl)
		// Every peer gets a commit — an empty one still clears the
		// level's pending set.
		err = nd.broadcast(func(peer int) error {
			wt := wire[peer]
			wt.Emit(trace.KindPhaseBegin, phSerialize, lvl)
			buf, err := encodeBuf(func(w io.Writer) error { return encodeCommit(w, commitByOwner[peer]) })
			wt.Emit(trace.KindPhaseEnd, phSerialize, lvl)
			if err != nil {
				return err
			}
			nd.addBytes(&bytesOut, int64(buf.Len()))
			pid := trace.PairID(lvl, trace.RPCCommit, nd.self, peer)
			wt.FrameSend(pid, int64(buf.Len()))
			resp, cancel, err := nd.post(ctx, peer, "/cluster/v1/commit", jobID, pid, buf, "application/octet-stream")
			if err != nil {
				return err
			}
			defer cancel()
			defer resp.Body.Close()
			cr := &countingReader{r: resp.Body}
			typ, _, err := ReadFrame(cr, nd.maxFrame)
			if err != nil {
				return err
			}
			if typ != frameAck {
				return errUnexpectedFrame(typ, frameAck)
			}
			wt.FrameRecv(pid, cr.n)
			return nil
		})
		if err != nil {
			if ctx.Err() != nil {
				return abort()
			}
			return nil, fmt.Errorf("cluster: commit: %w", err)
		}

		// Count arcs from the examined orders; on the capped path only
		// firings the sequential scan reached before the trigger.
		for _, pb := range batches {
			if pb == nil || pb.reply == nil {
				continue
			}
			if !capped {
				res.Arcs += len(pb.reply.orders)
				continue
			}
			for _, ord := range pb.reply.orders {
				if ord < trigger {
					res.Arcs++
				}
			}
		}

		if capped {
			for _, id := range nextLevel {
				m := states[id]
				if o.Bad != nil && o.Bad(m) {
					res.BadFound = true
					res.BadStates = append(res.BadStates, m)
				}
				if n.IsDeadlock(m) {
					res.Deadlock = true
					res.Deadlocks = append(res.Deadlocks, m)
				}
			}
			res.States = len(states)
			res.Complete = false
			return res, reach.ErrStateLimit
		}

		level = nextLevel
	}

	res.States = len(states)
	tk.End(phExplore)
	return res, nil
}

// assignLevel buckets the level's positions by parent shard, assigns
// each bucket to the shard's owner, then steals whole buckets from the
// most-loaded peer for any peer under the watermark
// max(1, len(level)/(4*peers)). Returns positions per peer and the
// steal count. Each steal is stamped on tk (nil for untraced runs)
// with the positions moved.
func (nd *Node) assignLevel(level []int, stateShard []uint32, tk *trace.Track, lvl int64) ([][]int, int64) {
	nPeers := len(nd.peers)
	buckets := make([][]int, reach.NumShards)
	for pos, id := range level {
		sh := stateShard[id]
		buckets[sh] = append(buckets[sh], pos)
	}
	bucketOwner := make([]int, reach.NumShards)
	loads := make([]int, nPeers)
	for sh := range buckets {
		bucketOwner[sh] = nd.owners[sh]
		loads[nd.owners[sh]] += len(buckets[sh])
	}

	watermark := len(level) / (4 * nPeers)
	if watermark < 1 {
		watermark = 1
	}
	var steals int64
	for iter := 0; iter < reach.NumShards; iter++ {
		starving, donor := -1, -1
		for p := 0; p < nPeers; p++ {
			if loads[p] < watermark && (starving < 0 || loads[p] < loads[starving]) {
				starving = p
			}
			if donor < 0 || loads[p] > loads[donor] {
				donor = p
			}
		}
		if starving < 0 || donor == starving {
			break
		}
		// Move the donor's largest bucket, but only if the donor stays
		// at least as loaded as the recipient becomes — otherwise a
		// single bucket would ping-pong between starving peers.
		best, bestSz := -1, 0
		for sh := range buckets {
			if bucketOwner[sh] == donor && len(buckets[sh]) > bestSz {
				best, bestSz = sh, len(buckets[sh])
			}
		}
		if best < 0 || loads[donor]-bestSz < loads[starving]+bestSz {
			break
		}
		bucketOwner[best] = starving
		loads[donor] -= bestSz
		loads[starving] += bestSz
		steals++
		tk.Steal(lvl, int64(bestSz))
	}

	assign := make([][]int, nPeers)
	for sh, positions := range buckets {
		if len(positions) > 0 {
			assign[bucketOwner[sh]] = append(assign[bucketOwner[sh]], positions...)
		}
	}
	return assign, steals
}

// broadcast runs fn for every peer concurrently, returning the first
// error.
func (nd *Node) broadcast(fn func(peer int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(nd.peers))
	for peer := range nd.peers {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			errs[peer] = fn(peer)
		}(peer)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// addBytes serializes byte-counter updates from broadcast goroutines.
func (nd *Node) addBytes(dst *int64, n int64) {
	nd.mu.Lock()
	*dst += n
	nd.mu.Unlock()
}
