package cluster

// Binary payload encodings of the cluster protocol. All multi-byte
// integers are uvarints; state keys are length-prefixed raw bytes (a
// key IS the marking's binary encoding, so frontier batches carry full
// states, not references). Requests and replies may span several
// frames; readers loop until EOF, so a large level streams through
// fixed-size chunks instead of one giant allocation.

import (
	"bytes"
	"encoding/binary"
	"io"
)

// chunkEntries bounds how many entries one frame carries. Levels larger
// than this simply emit several frames in one HTTP body.
const chunkEntries = 8192

// expandEntry is one level position a peer must expand: the global
// position in the current BFS level (the high half of every order key
// it produces) and the state key to reconstruct the marking from.
type expandEntry struct {
	pos uint32
	key string
}

// posFlags carries a parent position's verdict bits back to the
// coordinator.
const (
	flagDead = 1 << 0
	flagBad  = 1 << 1
)

// expandReply is a peer's account of one expand batch: verdict flags in
// request-entry order, the order keys of every safe firing examined
// (the arcs), and the minimal unsafe-firing order, if any.
type expandReply struct {
	flags    []byte
	orders   []uint64
	vioOrder uint64
	hasVio   bool
}

// internEntry routes one discovered successor to its owning peer.
type internEntry struct {
	key   string
	order uint64
}

// commitEntry assigns the definitive state id to a pending discovery.
type commitEntry struct {
	key string
	id  int
}

// encodeExpand writes the expand batch as chunked frames.
func encodeExpand(w io.Writer, entries []expandEntry) error {
	for lo := 0; lo < len(entries); lo += chunkEntries {
		hi := min(lo+chunkEntries, len(entries))
		b := binary.AppendUvarint(nil, uint64(hi-lo))
		for _, e := range entries[lo:hi] {
			b = binary.AppendUvarint(b, uint64(e.pos))
			b = AppendBytes(b, e.key)
		}
		if err := WriteFrame(w, frameExpand, b); err != nil {
			return err
		}
	}
	if len(entries) == 0 {
		return WriteFrame(w, frameExpand, binary.AppendUvarint(nil, 0))
	}
	return nil
}

// decodeExpand reads chunked expand frames until EOF.
func decodeExpand(r io.Reader, max int) ([]expandEntry, error) {
	var out []expandEntry
	for {
		typ, payload, err := ReadFrame(r, max)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if typ != frameExpand {
			return nil, errUnexpectedFrame(typ, frameExpand)
		}
		n, err := NextUvarint(&payload)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			pos, err := NextUvarint(&payload)
			if err != nil {
				return nil, err
			}
			key, err := NextBytes(&payload)
			if err != nil {
				return nil, err
			}
			out = append(out, expandEntry{pos: uint32(pos), key: key})
		}
	}
}

// encodeExpandReply writes the reply as one frame (flags and orders
// are small relative to the batch itself).
func encodeExpandReply(w io.Writer, re *expandReply) error {
	b := binary.AppendUvarint(nil, uint64(len(re.flags)))
	b = append(b, re.flags...)
	b = binary.AppendUvarint(b, uint64(len(re.orders)))
	for _, o := range re.orders {
		b = binary.AppendUvarint(b, o)
	}
	if re.hasVio {
		b = append(b, 1)
		b = binary.AppendUvarint(b, re.vioOrder)
	} else {
		b = append(b, 0)
	}
	return WriteFrame(w, frameExpandRe, b)
}

func decodeExpandReply(r io.Reader, max int) (*expandReply, error) {
	typ, payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	if typ != frameExpandRe {
		return nil, errUnexpectedFrame(typ, frameExpandRe)
	}
	re := &expandReply{}
	n, err := NextUvarint(&payload)
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) < n {
		return nil, io.ErrUnexpectedEOF
	}
	re.flags = append([]byte(nil), payload[:n]...)
	payload = payload[n:]
	no, err := NextUvarint(&payload)
	if err != nil {
		return nil, err
	}
	re.orders = make([]uint64, 0, no)
	for i := uint64(0); i < no; i++ {
		o, err := NextUvarint(&payload)
		if err != nil {
			return nil, err
		}
		re.orders = append(re.orders, o)
	}
	if len(payload) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	if payload[0] == 1 {
		payload = payload[1:]
		re.vioOrder, err = NextUvarint(&payload)
		if err != nil {
			return nil, err
		}
		re.hasVio = true
	}
	return re, nil
}

// encodeKeyOrders writes (key, order) pairs as chunked frames of the
// given type — the shape shared by intern batches and collect replies.
func encodeKeyOrders(w io.Writer, typ byte, entries []internEntry) error {
	for lo := 0; lo < len(entries); lo += chunkEntries {
		hi := min(lo+chunkEntries, len(entries))
		b := binary.AppendUvarint(nil, uint64(hi-lo))
		for _, e := range entries[lo:hi] {
			b = AppendBytes(b, e.key)
			b = binary.AppendUvarint(b, e.order)
		}
		if err := WriteFrame(w, typ, b); err != nil {
			return err
		}
	}
	if len(entries) == 0 {
		return WriteFrame(w, typ, binary.AppendUvarint(nil, 0))
	}
	return nil
}

func decodeKeyOrders(r io.Reader, typ byte, max int) ([]internEntry, error) {
	var out []internEntry
	for {
		ft, payload, err := ReadFrame(r, max)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if ft != typ {
			return nil, errUnexpectedFrame(ft, typ)
		}
		n, err := NextUvarint(&payload)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			key, err := NextBytes(&payload)
			if err != nil {
				return nil, err
			}
			o, err := NextUvarint(&payload)
			if err != nil {
				return nil, err
			}
			out = append(out, internEntry{key: key, order: o})
		}
	}
}

// encodeCommit writes (key, id) assignments as chunked frames.
func encodeCommit(w io.Writer, entries []commitEntry) error {
	for lo := 0; lo < len(entries); lo += chunkEntries {
		hi := min(lo+chunkEntries, len(entries))
		b := binary.AppendUvarint(nil, uint64(hi-lo))
		for _, e := range entries[lo:hi] {
			b = AppendBytes(b, e.key)
			b = binary.AppendUvarint(b, uint64(e.id))
		}
		if err := WriteFrame(w, frameCommit, b); err != nil {
			return err
		}
	}
	if len(entries) == 0 {
		return WriteFrame(w, frameCommit, binary.AppendUvarint(nil, 0))
	}
	return nil
}

func decodeCommit(r io.Reader, max int) ([]commitEntry, error) {
	var out []commitEntry
	for {
		typ, payload, err := ReadFrame(r, max)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if typ != frameCommit {
			return nil, errUnexpectedFrame(typ, frameCommit)
		}
		n, err := NextUvarint(&payload)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			key, err := NextBytes(&payload)
			if err != nil {
				return nil, err
			}
			id, err := NextUvarint(&payload)
			if err != nil {
				return nil, err
			}
			out = append(out, commitEntry{key: key, id: int(id)})
		}
	}
}

// encodeBuf renders an encoder into a byte buffer (HTTP request
// bodies), returning the frame bytes and their length for metrics.
func encodeBuf(enc func(io.Writer) error) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	if err := enc(&buf); err != nil {
		return nil, err
	}
	return &buf, nil
}

func errUnexpectedFrame(got, want byte) error {
	return &frameTypeError{got: got, want: want}
}

type frameTypeError struct{ got, want byte }

func (e *frameTypeError) Error() string {
	return "cluster: unexpected frame type " + itoa(int(e.got)) + " (want " + itoa(int(e.want)) + ")"
}

// itoa avoids pulling strconv into the hot wire path for an error case.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
