package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs/trace"
)

// Distributed-tracing support: every peer that runs a traced job keeps
// its node-side flight-recorder dump in a small in-memory store keyed
// by the run ID the coordinator propagated in startReq.TraceRun, and
// POST /cluster/v1/trace hands the dump back together with the peer's
// wall clock so the collector can estimate the clock offset from the
// RPC midpoint. The coordinator's own recorder (the "cluster" and
// "wire:*" tracks) lives in the server layer; CollectTraces gathers
// the per-peer slices it is merged with.

// traceStoreCap bounds how many finished runs each node retains.
const traceStoreCap = 8

// ackFrameBytes is the wire size of an empty ack frame (4-byte length
// prefix plus the type byte), stamped on ack-direction wire edges.
const ackFrameBytes = 5

// traceStore retains the node-side dumps of the last few traced runs,
// oldest evicted first.
type traceStore struct {
	mu    sync.Mutex
	order []string
	byRun map[string]*trace.Dump
}

func newTraceStore() *traceStore {
	return &traceStore{byRun: make(map[string]*trace.Dump)}
}

func (s *traceStore) put(run string, d *trace.Dump) {
	if run == "" || d == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byRun[run]; !ok {
		s.order = append(s.order, run)
		for len(s.order) > traceStoreCap {
			delete(s.byRun, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.byRun[run] = d
}

func (s *traceStore) get(run string) *trace.Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byRun[run]
}

func (s *traceStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byRun)
}

// traceReq is the JSON body of /cluster/v1/trace.
type traceReq struct {
	Run string `json:"run"`
}

// traceResp carries one peer's dump plus its wall clock at reply time,
// the raw material of the collector's offset estimate.
type traceResp struct {
	Found     bool        `json:"found"`
	NowUnixNS int64       `json:"now_unix_ns"`
	Dump      *trace.Dump `json:"dump,omitempty"`
}

// handleTrace serves this node's retained dump for one run.
func (nd *Node) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req traceReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: bad trace body: %v", err)
		return
	}
	d := nd.traces.get(req.Run)
	resp := traceResp{Found: d != nil, NowUnixNS: time.Now().UnixNano(), Dump: d}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// CollectTraces fetches every peer's retained dump for run, estimating
// each peer's clock offset as (peer wall clock − RPC midpoint) and
// bounding it with the observed round trip. Collection is best-effort:
// unreachable peers and peers without a dump are simply absent from
// the result.
func (nd *Node) CollectTraces(ctx context.Context, run string) []trace.BundlePeer {
	body, err := json.Marshal(traceReq{Run: run})
	if err != nil {
		return nil
	}
	out := make([]*trace.BundlePeer, len(nd.peers))
	_ = nd.broadcast(func(peer int) error {
		t0 := time.Now()
		resp, cancel, err := nd.post(ctx, peer, "/cluster/v1/trace", "", 0, bytes.NewBuffer(body), "application/json")
		if err != nil {
			return nil // best-effort: skip unreachable peers
		}
		defer cancel()
		defer resp.Body.Close()
		var tr traceResp
		if err := json.NewDecoder(io.LimitReader(resp.Body, int64(nd.maxFrame))).Decode(&tr); err != nil {
			return nil
		}
		t1 := time.Now()
		nd.reg.Counter("cluster.trace_collects").Inc()
		if !tr.Found || tr.Dump == nil {
			return nil
		}
		mid := t0.UnixNano() + t1.Sub(t0).Nanoseconds()/2
		out[peer] = &trace.BundlePeer{
			Addr:     nd.peers[peer],
			OffsetNS: tr.NowUnixNS - mid,
			RTTNS:    t1.Sub(t0).Nanoseconds(),
			Dump:     tr.Dump,
		}
		return nil
	})
	var peers []trace.BundlePeer
	for _, p := range out {
		if p != nil {
			peers = append(peers, *p)
		}
	}
	return peers
}

// LocalTrace returns this node's retained dump for run (nil if none) —
// how a worker peer's own /v1/runs/{id}/trace endpoint serves its slice
// without a cluster round trip.
func (nd *Node) LocalTrace(run string) *trace.Dump {
	return nd.traces.get(run)
}

// Peers returns the cluster membership as base URLs (a copy).
func (nd *Node) Peers() []string {
	return append([]string(nil), nd.peers...)
}

// countingWriter tallies bytes written, for frame_send byte counts on
// streamed replies.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
