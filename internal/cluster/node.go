package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/reach"
)

// Config describes one cluster member. Peers lists every member —
// including this node — as base URLs; Self must match one of them
// exactly. The topology is uniform: a coordinator is also a shard
// owner and talks to itself over the same HTTP loopback as to anyone
// else, so there is no special-cased local path to drift from the
// remote one.
type Config struct {
	Self       string   // this node's base URL, e.g. http://127.0.0.1:7700
	Peers      []string // all member base URLs, order defines shard ranges
	Metrics    *obs.Registry
	CacheBytes int64         // shared result tier budget, 0 = default
	Client     *http.Client  // nil = persistent keep-alive client
	Timeout    time.Duration // per-RPC timeout, 0 = default
	MaxFrame   int           // wire frame limit, 0 = MaxFrame
}

const (
	defaultCacheBytes = 16 << 20
	defaultRPCTimeout = 60 * time.Second
)

// Node is one cluster member: shard owner for exploration jobs,
// key-range owner for the shared result tier, and coordinator for any
// run it is asked to Explore.
type Node struct {
	self     int
	peers    []string
	ranges   [][2]int             // per-peer [lo, hi) shard range
	owners   [reach.NumShards]int // shard -> peer index
	client   *http.Client
	timeout  time.Duration
	maxFrame int
	reg      *obs.Registry

	mu   sync.Mutex
	jobs map[string]*peerJob
	seq  int64

	cache  *sharedCache
	traces *traceStore
}

// peerJob is this node's slice of one in-flight exploration: the
// parsed net, the bad places, and the owned portion of the visited
// store (established ids plus the current level's pending
// discoveries).
type peerJob struct {
	mu   sync.Mutex
	net  *petri.Net
	bad  []petri.Place
	ids  map[string]int
	pend map[string]uint64

	// Tracing, enabled when the coordinator propagated a run ID in
	// startReq.TraceRun. tk is the expand/collect/commit lane — those
	// handlers are serialized by the coordinator's level protocol —
	// while inbound intern batches arrive concurrently from sibling
	// peers and land on tkIntern under internMu. All fields stay zero
	// for untraced jobs; every emit is a nil-track no-op then.
	run         string
	tr          *trace.Tracer
	tk          *trace.Track
	phExpand    int64
	phSerialize int64
	internMu    sync.Mutex
	tkIntern    *trace.Track
}

// internRecv/internSend record inbound-intern wire halves under the
// mutex, since sibling peers post interns concurrently.
func (j *peerJob) internRecv(pid, bytes int64) {
	if j.tkIntern == nil {
		return
	}
	j.internMu.Lock()
	j.tkIntern.FrameRecv(pid, bytes)
	j.internMu.Unlock()
}

func (j *peerJob) internSend(pid, bytes int64) {
	if j.tkIntern == nil {
		return
	}
	j.internMu.Lock()
	j.tkIntern.FrameSend(pid, bytes)
	j.internMu.Unlock()
}

// startReq is the JSON body of /cluster/v1/start. The net travels in
// its canonical pnio text form, so the peer reconstructs place and
// transition indices in the exact order the coordinator holds them.
type startReq struct {
	Job string   `json:"job"`
	Net string   `json:"net"`
	Bad []string `json:"bad,omitempty"`
	// TraceRun is the content-addressed run ID when the coordinator is
	// recording; peers that see it record their own slice of the run
	// under the same identity. Empty = tracing off.
	TraceRun string `json:"trace_run,omitempty"`
}

type finishReq struct {
	Job string `json:"job"`
}

// New validates the membership and builds a node. All cluster.* node
// counters are created up front so a freshly started node exports the
// full documented metric set before any traffic.
func New(cfg Config) (*Node, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers configured")
	}
	self := -1
	seen := make(map[string]bool, len(cfg.Peers))
	for i, p := range cfg.Peers {
		p = strings.TrimRight(p, "/")
		if p == "" {
			return nil, errors.New("cluster: empty peer URL")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", p)
		}
		seen[p] = true
		cfg.Peers[i] = p
		if p == strings.TrimRight(cfg.Self, "/") {
			self = i
		}
	}
	if self < 0 {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", cfg.Self)
	}
	nd := &Node{
		self:     self,
		peers:    cfg.Peers,
		client:   cfg.Client,
		timeout:  cfg.Timeout,
		maxFrame: cfg.MaxFrame,
		reg:      cfg.Metrics,
		jobs:     make(map[string]*peerJob),
	}
	if nd.client == nil {
		tr := &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 90 * time.Second}
		nd.client = &http.Client{Transport: tr}
	}
	if nd.timeout <= 0 {
		nd.timeout = defaultRPCTimeout
	}
	if nd.maxFrame <= 0 {
		nd.maxFrame = MaxFrame
	}
	if nd.reg == nil {
		nd.reg = obs.New()
	}
	cb := cfg.CacheBytes
	if cb <= 0 {
		cb = defaultCacheBytes
	}
	nd.cache = newSharedCache(nd.peers, cb)
	nd.traces = newTraceStore()

	// Static shard ownership: contiguous ranges, remainder spread over
	// the leading peers.
	n := len(nd.peers)
	nd.ranges = make([][2]int, n)
	for i := 0; i < n; i++ {
		lo := i * reach.NumShards / n
		hi := (i + 1) * reach.NumShards / n
		nd.ranges[i] = [2]int{lo, hi}
		for s := lo; s < hi; s++ {
			nd.owners[s] = i
		}
	}

	// Node-persistent counters, created eagerly for the docs drift test.
	nd.reg.Gauge("cluster.peers").Set(int64(n))
	for _, name := range []string{
		"cluster.expand_batches_in",
		"cluster.expand_bytes_in",
		"cluster.intern_batches_in",
		"cluster.intern_bytes_in",
		"cluster.remote_cache_hits",
		"cluster.cache_store_hits",
		"cluster.cache_store_misses",
		"cluster.cache_store_puts",
		"cluster.cache_store_evictions",
		"cluster.singleflight_waits",
		"cluster.trace_collects",
	} {
		nd.reg.Counter(name)
	}
	nd.reg.Gauge("cluster.cache_store_bytes").Set(0)
	nd.reg.Gauge("cluster.jobs").Set(0)
	nd.reg.Gauge("cluster.trace_dumps").Set(0)
	return nd, nil
}

// NumPeers returns the cluster size.
func (nd *Node) NumPeers() int { return len(nd.peers) }

// Self returns this node's base URL.
func (nd *Node) Self() string { return nd.peers[nd.self] }

// ownerOf maps a state-key hash to the owning peer index.
func (nd *Node) ownerOf(hash uint64) int {
	return nd.owners[reach.ShardOf(hash)]
}

// Register mounts the cluster protocol endpoints on mux.
func (nd *Node) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/v1/start", nd.handleStart)
	mux.HandleFunc("POST /cluster/v1/expand", nd.handleExpand)
	mux.HandleFunc("POST /cluster/v1/intern", nd.handleIntern)
	mux.HandleFunc("POST /cluster/v1/collect", nd.handleCollect)
	mux.HandleFunc("POST /cluster/v1/commit", nd.handleCommit)
	mux.HandleFunc("POST /cluster/v1/finish", nd.handleFinish)
	mux.HandleFunc("POST /cluster/v1/trace", nd.handleTrace)
	mux.HandleFunc("POST /cluster/v1/cache/acquire", nd.handleCacheAcquire)
	mux.HandleFunc("POST /cluster/v1/cache/put", nd.handleCachePut)
	mux.HandleFunc("POST /cluster/v1/cache/release", nd.handleCacheRelease)
}

func (nd *Node) job(id string) (*peerJob, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	j, ok := nd.jobs[id]
	return j, ok
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (nd *Node) handleStart(w http.ResponseWriter, r *http.Request) {
	var req startReq
	if err := json.NewDecoder(io.LimitReader(r.Body, int64(nd.maxFrame))).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: bad start body: %v", err)
		return
	}
	if req.Job == "" {
		httpError(w, http.StatusBadRequest, "cluster: start without job id")
		return
	}
	n, err := pnio.Parse(strings.NewReader(req.Net))
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster: start net: %v", err)
		return
	}
	var bad []petri.Place
	for _, name := range req.Bad {
		p, ok := n.PlaceByName(name)
		if !ok {
			httpError(w, http.StatusBadRequest, "cluster: start: unknown bad place %q", name)
			return
		}
		bad = append(bad, p)
	}
	j := &peerJob{
		net:  n,
		bad:  bad,
		ids:  make(map[string]int),
		pend: make(map[string]uint64),
	}
	if req.TraceRun != "" {
		j.run = req.TraceRun
		j.tr = trace.New(trace.Options{})
		j.tr.SetMeta("run_id", req.TraceRun)
		j.tr.SetMeta("peer", nd.peers[nd.self])
		j.tr.SetMeta("role", "peer")
		j.tr.SetMeta("base_unix_ns", strconv.FormatInt(j.tr.Base().UnixNano(), 10))
		j.tk = j.tr.NewTrack("peer")
		j.tkIntern = j.tr.NewTrack("peer-intern")
		j.phExpand = j.tr.Intern("expand")
		j.phSerialize = j.tr.Intern("serialize")
	}
	// Seed the root: every peer derives the same initial key; only the
	// owner stores it (the coordinator assigned it id 0 by construction).
	k0, h0 := n.InitialMarking().KeyHash()
	if nd.ownerOf(h0) == nd.self {
		j.ids[k0] = 0
	}
	nd.mu.Lock()
	nd.jobs[req.Job] = j
	nd.reg.Gauge("cluster.jobs").Set(int64(len(nd.jobs)))
	nd.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (nd *Node) handleFinish(w http.ResponseWriter, r *http.Request) {
	var req finishReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: bad finish body: %v", err)
		return
	}
	nd.mu.Lock()
	j := nd.jobs[req.Job]
	delete(nd.jobs, req.Job)
	nd.reg.Gauge("cluster.jobs").Set(int64(len(nd.jobs)))
	nd.mu.Unlock()
	// A traced job's node-side dump outlives the job so the collector
	// can fetch it after the verdict.
	if j != nil && j.tr != nil {
		nd.traces.put(j.run, j.tr.Dump())
		nd.reg.Gauge("cluster.trace_dumps").Set(int64(nd.traces.len()))
	}
	w.WriteHeader(http.StatusOK)
}

// handleExpand fires every enabled transition of each assigned parent,
// routes fresh successors to their owning peers as intern batches, and
// reports verdict flags, examined orders, and the minimal unsafe
// firing back to the coordinator.
func (nd *Node) handleExpand(w http.ResponseWriter, r *http.Request) {
	jobID := r.Header.Get("X-Cluster-Job")
	j, ok := nd.job(jobID)
	if !ok {
		httpError(w, http.StatusNotFound, "cluster: unknown job %q", jobID)
		return
	}
	cr := &countingReader{r: r.Body}
	entries, err := decodeExpand(cr, nd.maxFrame)
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster: expand body: %v", err)
		return
	}
	nd.reg.Counter("cluster.expand_batches_in").Inc()
	nd.reg.Counter("cluster.expand_bytes_in").Add(cr.n)
	pid := seqHeader(r)
	lvl := trace.PairLevel(pid)
	j.tk.FrameRecv(pid, cr.n)
	j.tk.Emit(trace.KindPhaseBegin, j.phExpand, lvl)

	n := j.net
	nt := n.NumTrans()
	re := &expandReply{flags: make([]byte, len(entries))}
	outbound := make(map[int][]internEntry)
	for i, e := range entries {
		m, ok := n.MarkingFromKey(e.key)
		if !ok {
			httpError(w, http.StatusBadRequest, "cluster: expand: bad state key at pos %d", e.pos)
			return
		}
		enabled := 0
		for t := petri.Trans(0); int(t) < nt; t++ {
			if !n.Enabled(m, t) {
				continue
			}
			enabled++
			next, safe := n.Fire(m, t)
			order := reach.OrderKey(int(e.pos), t)
			if !safe {
				if !re.hasVio || order < re.vioOrder {
					re.hasVio = true
					re.vioOrder = order
				}
				continue
			}
			re.orders = append(re.orders, order)
			key, hash := next.KeyHash()
			owner := nd.ownerOf(hash)
			if owner == nd.self {
				j.internLocal(key, order)
			} else {
				outbound[owner] = append(outbound[owner], internEntry{key: key, order: order})
			}
		}
		if enabled == 0 {
			re.flags[i] |= flagDead
		}
		// Same predicate as verify.CheckSafety: ALL bad places marked
		// simultaneously.
		if len(j.bad) > 0 {
			allMarked := true
			for _, p := range j.bad {
				if !m.Has(p) {
					allMarked = false
					break
				}
			}
			if allMarked {
				re.flags[i] |= flagBad
			}
		}
	}

	j.tk.Emit(trace.KindPhaseEnd, j.phExpand, lvl)
	j.tk.Expanded(int64(len(entries)), lvl)

	// Route fresh successors to their owners before acking, so by the
	// time the coordinator sees this reply every discovery from this
	// batch is pending somewhere.
	for owner, batch := range outbound {
		if err := nd.postIntern(r.Context(), j, jobID, owner, lvl, batch); err != nil {
			httpError(w, http.StatusBadGateway, "cluster: intern to %s: %v", nd.peers[owner], err)
			return
		}
	}
	cw := &countingWriter{w: w}
	if err := encodeExpandReply(cw, re); err != nil {
		return // client gone; nothing to salvage
	}
	j.tk.FrameSend(pid, cw.n)
}

// seqHeader reads the wire-edge pair id the coordinator stamped on the
// RPC (0 when absent or malformed — every emit keyed by it no-ops on
// untraced jobs anyway).
func seqHeader(r *http.Request) int64 {
	v, _ := strconv.ParseInt(r.Header.Get("X-Cluster-Seq"), 10, 64)
	return v
}

// internLocal merges one discovered successor into the owned pending
// set, min-combining order keys like the in-process shards do.
func (j *peerJob) internLocal(key string, order uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.ids[key]; ok {
		return
	}
	if o, ok := j.pend[key]; !ok || order < o {
		j.pend[key] = order
	}
}

func (nd *Node) handleIntern(w http.ResponseWriter, r *http.Request) {
	jobID := r.Header.Get("X-Cluster-Job")
	j, ok := nd.job(jobID)
	if !ok {
		httpError(w, http.StatusNotFound, "cluster: unknown job %q", jobID)
		return
	}
	cr := &countingReader{r: r.Body}
	entries, err := decodeKeyOrders(cr, frameIntern, nd.maxFrame)
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster: intern body: %v", err)
		return
	}
	nd.reg.Counter("cluster.intern_batches_in").Inc()
	nd.reg.Counter("cluster.intern_bytes_in").Add(cr.n)
	pid := seqHeader(r)
	j.internRecv(pid, cr.n)
	for _, e := range entries {
		j.internLocal(e.key, e.order)
	}
	_ = WriteFrame(w, frameAck, nil)
	j.internSend(pid, ackFrameBytes)
}

// handleCollect returns the owned pending discoveries of the current
// level, sorted by order key so the coordinator's global merge is a
// cheap k-way concatenation plus one sort.
func (nd *Node) handleCollect(w http.ResponseWriter, r *http.Request) {
	jobID := r.Header.Get("X-Cluster-Job")
	j, ok := nd.job(jobID)
	if !ok {
		httpError(w, http.StatusNotFound, "cluster: unknown job %q", jobID)
		return
	}
	pid := seqHeader(r)
	j.tk.FrameRecv(pid, 0)
	j.mu.Lock()
	out := make([]internEntry, 0, len(j.pend))
	for key, order := range j.pend {
		out = append(out, internEntry{key: key, order: order})
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].order < out[b].order })
	cw := &countingWriter{w: w}
	_ = encodeKeyOrders(cw, frameCollect, out)
	j.tk.FrameSend(pid, cw.n)
}

// handleCommit installs the coordinator's id assignments and clears the
// level's pending set — un-assigned discoveries were cut by MaxStates
// and must be rediscoverable never (the run ends at the cap).
func (nd *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	jobID := r.Header.Get("X-Cluster-Job")
	j, ok := nd.job(jobID)
	if !ok {
		httpError(w, http.StatusNotFound, "cluster: unknown job %q", jobID)
		return
	}
	cr := &countingReader{r: r.Body}
	entries, err := decodeCommit(cr, nd.maxFrame)
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster: commit body: %v", err)
		return
	}
	pid := seqHeader(r)
	j.tk.FrameRecv(pid, cr.n)
	j.mu.Lock()
	for _, e := range entries {
		j.ids[e.key] = e.id
	}
	clear(j.pend)
	j.mu.Unlock()
	_ = WriteFrame(w, frameAck, nil)
	j.tk.FrameSend(pid, ackFrameBytes)
}

// countingReader tallies bytes for the frontier byte metrics.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// post runs one cluster RPC against a peer with the node's timeout.
// seq is the wire-edge pair id stamped as X-Cluster-Seq (0 = untraced,
// no header). The body reader is handed to the caller, which must
// close it.
func (nd *Node) post(ctx context.Context, peer int, path, jobID string, seq int64, body *bytes.Buffer, contentType string) (*http.Response, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(ctx, nd.timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nd.peers[peer]+path, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if jobID != "" {
		req.Header.Set("X-Cluster-Job", jobID)
	}
	if seq != 0 {
		req.Header.Set("X-Cluster-Seq", strconv.FormatInt(seq, 10))
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := nd.client.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("%s%s: %s: %s", nd.peers[peer], path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return resp, cancel, nil
}

// postJSON runs one JSON-bodied RPC, discarding the response body.
func (nd *Node) postJSON(ctx context.Context, peer int, path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, cancel, err := nd.post(ctx, peer, path, "", 0, bytes.NewBuffer(b), "application/json")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// postIntern routes a successor batch to its owning peer, stamping the
// intern wire edge on the sending job's trace.
func (nd *Node) postIntern(ctx context.Context, j *peerJob, jobID string, owner int, lvl int64, batch []internEntry) error {
	pid := trace.PairID(lvl, trace.RPCIntern, nd.self, owner)
	j.tk.Emit(trace.KindPhaseBegin, j.phSerialize, lvl)
	buf, err := encodeBuf(func(w io.Writer) error { return encodeKeyOrders(w, frameIntern, batch) })
	j.tk.Emit(trace.KindPhaseEnd, j.phSerialize, lvl)
	if err != nil {
		return err
	}
	j.tk.FrameSend(pid, int64(buf.Len()))
	resp, cancel, err := nd.post(ctx, owner, "/cluster/v1/intern", jobID, pid, buf, "application/octet-stream")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	typ, _, err := ReadFrame(cr, nd.maxFrame)
	if err != nil {
		return err
	}
	if typ != frameAck {
		return errUnexpectedFrame(typ, frameAck)
	}
	j.tk.FrameRecv(pid, cr.n)
	return nil
}

// PeerStatus is one member's row in the cluster status document.
type PeerStatus struct {
	Addr    string `json:"addr"`
	ShardLo int    `json:"shard_lo"`
	ShardHi int    `json:"shard_hi"` // exclusive
	Self    bool   `json:"self,omitempty"`
}

// Status is the GET /v1/cluster document: static membership plus this
// node's live cluster counters.
type Status struct {
	Self    string           `json:"self"`
	Peers   []PeerStatus     `json:"peers"`
	Jobs    int              `json:"jobs"`
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Status reports the node's membership, shard ranges, and cluster.*
// counter values.
func (nd *Node) Status() *Status {
	st := &Status{Self: nd.peers[nd.self]}
	for i, p := range nd.peers {
		st.Peers = append(st.Peers, PeerStatus{
			Addr:    p,
			ShardLo: nd.ranges[i][0],
			ShardHi: nd.ranges[i][1],
			Self:    i == nd.self,
		})
	}
	nd.mu.Lock()
	st.Jobs = len(nd.jobs)
	nd.mu.Unlock()
	snap := nd.reg.Snapshot()
	st.Metrics = make(map[string]int64)
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cluster.") {
			st.Metrics[name] = v
		}
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "cluster.") {
			st.Metrics[name] = v
		}
	}
	return st
}
