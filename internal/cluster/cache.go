package cluster

// Shared result-cache tier. Each verify.RunKey is owned by exactly one
// member, picked on a consistent-hash ring (64 virtual nodes per
// member, FNV-1a), so every node routes a given key to the same owner
// without coordination. The owner keeps the serialized Response bytes
// in a byte-budgeted LRU and runs single-flight suppression: the first
// acquire for a missing key gets "compute" plus an inflight lease,
// concurrent acquires for the same key block until the put (then get
// the bytes) or the release (then compute themselves).

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

const ringVnodes = 64

type ringEntry struct {
	hash uint64
	peer int
}

// sharedCache is the owner-side store plus the routing ring. The ring
// is immutable after construction (static membership); the store and
// inflight map are guarded by mu.
type sharedCache struct {
	ring []ringEntry

	mu       sync.Mutex
	budget   int64
	bytes    int64
	order    *list.List // front = most recent; values are *cacheEnt
	entries  map[string]*list.Element
	inflight map[string]*flight
	evicts   int64
}

type cacheEnt struct {
	key  string
	data []byte
}

// flight is one in-progress computation of a key. done is closed by
// put (ok=true, data set) or release (ok=false).
type flight struct {
	done chan struct{}
	data []byte
	ok   bool
}

// ringHash is FNV-1a with a 64-bit avalanche finalizer. Raw FNV of
// strings that differ only in trailing bytes (a peer's vnode labels, or
// sequential run keys) lands in tight arithmetic clusters — the
// finalizer spreads them over the whole ring.
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func newSharedCache(peers []string, budget int64) *sharedCache {
	c := &sharedCache{
		budget:   budget,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
	var vb [4]byte
	for i, p := range peers {
		for v := 0; v < ringVnodes; v++ {
			vb[0] = byte(v)
			vb[1] = byte(v >> 8)
			c.ring = append(c.ring, ringEntry{hash: ringHash(p + "#" + string(vb[:2])), peer: i})
		}
	}
	sort.Slice(c.ring, func(a, b int) bool {
		if c.ring[a].hash != c.ring[b].hash {
			return c.ring[a].hash < c.ring[b].hash
		}
		return c.ring[a].peer < c.ring[b].peer
	})
	return c
}

// owner returns the peer index owning a run key: the first ring entry
// clockwise from the key's hash.
func (c *sharedCache) owner(runKey string) int {
	h := ringHash(runKey)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].peer
}

// get returns the cached bytes and recency-bumps the entry.
func (c *sharedCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEnt).data, true
}

// put stores the bytes and evicts LRU entries over budget. An entry
// larger than the whole budget is not admitted.
func (c *sharedCache) put(key string, data []byte) {
	sz := int64(len(key) + len(data))
	if sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEnt)
		c.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEnt{key: key, data: data})
		c.bytes += sz
	}
	for c.bytes > c.budget {
		el := c.order.Back()
		ent := el.Value.(*cacheEnt)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.key) + len(ent.data))
		c.evicts++
	}
}

// Owner-side acquire: returns (data, true) on a store hit; otherwise
// registers an inflight lease and returns (nil, false) — the caller
// computes. Concurrent acquires block on the existing flight up to
// wait, then either return the put bytes or loop to claim the lease
// themselves.
func (c *sharedCache) acquire(ctx context.Context, key string, wait time.Duration, waits *int64) ([]byte, bool) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			data := el.Value.(*cacheEnt).data
			c.mu.Unlock()
			return data, true
		}
		fl := c.inflight[key]
		if fl == nil {
			c.inflight[key] = &flight{done: make(chan struct{})}
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		*waits++
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, false
		}
		t := time.NewTimer(remain)
		select {
		case <-fl.done:
			t.Stop()
			if fl.ok {
				return fl.data, true
			}
			// Lease released without a result; loop to claim it.
		case <-t.C:
			return nil, false
		case <-ctx.Done():
			t.Stop()
			return nil, false
		}
	}
}

// resolve completes a flight: with data on put, without on release.
func (c *sharedCache) resolve(key string, data []byte, ok bool) {
	c.mu.Lock()
	fl := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	if ok {
		c.put(key, data)
	}
	if fl != nil {
		fl.data = data
		fl.ok = ok
		close(fl.done)
	}
}

func (c *sharedCache) stats() (bytes, evicts int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.evicts, len(c.entries)
}

// --- HTTP endpoints (owner side) ---

type cacheAcquireReq struct {
	Run    string `json:"run"`
	WaitMS int    `json:"wait_ms"`
}

type cacheAcquireResp struct {
	Status   string          `json:"status"` // "hit" | "compute"
	Response json.RawMessage `json:"response,omitempty"`
}

type cachePutReq struct {
	Run      string          `json:"run"`
	Response json.RawMessage `json:"response,omitempty"`
}

func (nd *Node) handleCacheAcquire(w http.ResponseWriter, r *http.Request) {
	var req cacheAcquireReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Run == "" {
		httpError(w, http.StatusBadRequest, "cluster: bad cache acquire body")
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	var waits int64
	data, hit := nd.cache.acquire(r.Context(), req.Run, wait, &waits)
	nd.reg.Counter("cluster.singleflight_waits").Add(waits)
	resp := cacheAcquireResp{Status: "compute"}
	if hit {
		nd.reg.Counter("cluster.cache_store_hits").Inc()
		resp.Status = "hit"
		resp.Response = data
	} else {
		nd.reg.Counter("cluster.cache_store_misses").Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (nd *Node) handleCachePut(w http.ResponseWriter, r *http.Request) {
	var req cachePutReq
	if err := json.NewDecoder(io.LimitReader(r.Body, int64(nd.maxFrame))).Decode(&req); err != nil || req.Run == "" || len(req.Response) == 0 {
		httpError(w, http.StatusBadRequest, "cluster: bad cache put body")
		return
	}
	nd.cache.resolve(req.Run, req.Response, true)
	nd.reg.Counter("cluster.cache_store_puts").Inc()
	nd.publishCacheStats()
	w.WriteHeader(http.StatusOK)
}

func (nd *Node) handleCacheRelease(w http.ResponseWriter, r *http.Request) {
	var req cachePutReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Run == "" {
		httpError(w, http.StatusBadRequest, "cluster: bad cache release body")
		return
	}
	nd.cache.resolve(req.Run, nil, false)
	w.WriteHeader(http.StatusOK)
}

func (nd *Node) publishCacheStats() {
	b, ev, _ := nd.cache.stats()
	nd.reg.Gauge("cluster.cache_store_bytes").Set(b)
	// Counter semantics: export the delta since the last publish.
	c := nd.reg.Counter("cluster.cache_store_evictions")
	if d := ev - c.Value(); d > 0 {
		c.Add(d)
	}
}

// --- client side ---

// AcquireResult looks a run key up in the shared tier, routed to its
// ring owner (possibly this node, still via HTTP — uniform topology).
// On a hit it returns the serialized Response bytes. On "compute" the
// caller holds the owner's single-flight lease and MUST later call
// PutResult or ReleaseResult. A transport error degrades to
// (nil, false, err): the caller computes locally without a lease.
func (nd *Node) AcquireResult(ctx context.Context, runKey string, wait time.Duration) ([]byte, bool, error) {
	owner := nd.cache.owner(runKey)
	body, _ := json.Marshal(cacheAcquireReq{Run: runKey, WaitMS: int(wait / time.Millisecond)})
	resp, cancel, err := nd.post(ctx, owner, "/cluster/v1/cache/acquire", "", 0, bytes.NewBuffer(body), "application/json")
	if err != nil {
		return nil, false, err
	}
	defer cancel()
	defer resp.Body.Close()
	var ar cacheAcquireResp
	if err := json.NewDecoder(io.LimitReader(resp.Body, int64(nd.maxFrame))).Decode(&ar); err != nil {
		return nil, false, err
	}
	if ar.Status == "hit" {
		nd.reg.Counter("cluster.remote_cache_hits").Inc()
		return ar.Response, true, nil
	}
	return nil, false, nil
}

// PutResult publishes a computed result to the owning node,
// best-effort: a failure only loses a cache fill.
func (nd *Node) PutResult(runKey string, response []byte) error {
	owner := nd.cache.owner(runKey)
	body, err := json.Marshal(cachePutReq{Run: runKey, Response: response})
	if err != nil {
		return err
	}
	return nd.postBody(owner, "/cluster/v1/cache/put", body)
}

// ReleaseResult drops a compute lease without publishing a result, so
// blocked acquirers wake and compute themselves.
func (nd *Node) ReleaseResult(runKey string) error {
	owner := nd.cache.owner(runKey)
	body, _ := json.Marshal(cachePutReq{Run: runKey})
	return nd.postBody(owner, "/cluster/v1/cache/release", body)
}

func (nd *Node) postBody(owner int, path string, body []byte) error {
	resp, cancel, err := nd.post(context.Background(), owner, path, "", 0, bytes.NewBuffer(body), "application/json")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}
