package cluster

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/models"
	"repro/internal/obs/trace"
	"repro/internal/reach"
)

// TestClusterTracingPassive is the distributed-tracing acceptance pair:
// a traced 3-peer run is bit-identical to the untraced one and to the
// sequential BFS, the coordinator's recorder reconstructs the exact
// state count from KindState events alone, and the per-peer node-side
// slices collect into a bundle whose merge agrees with the Result.
func TestClusterTracingPassive(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	n := models.NSDP(6)

	seq, err := reach.Explore(n, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := nodes[0].Explore(n, nil, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const runID = "trace-passive-test"
	tr := trace.New(trace.Options{})
	tr.SetMeta("run_id", runID)
	traced, err := nodes[0].Explore(n, nil, reach.Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "traced-vs-seq", seq, traced)
	sameResult(t, "traced-vs-untraced", plain, traced)

	// The coordinator recorder alone reconstructs the fleet state count.
	d := tr.Dump()
	states := 0
	for _, tk := range d.Tracks {
		for _, ev := range tk.Events {
			if ev.Kind == trace.KindState {
				states++
			}
		}
	}
	if states != traced.States {
		t.Fatalf("coordinator dump holds %d state events, Result says %d", states, traced.States)
	}

	// Every peer retained its node-side slice under the propagated run
	// ID and hands it back with a clock-offset estimate.
	collected := nodes[0].CollectTraces(context.Background(), runID)
	if len(collected) != len(nodes) {
		t.Fatalf("collected %d peer dumps, want %d", len(collected), len(nodes))
	}
	for _, p := range collected {
		if p.Dump == nil || len(p.Dump.Tracks) == 0 {
			t.Fatalf("peer %s returned an empty dump", p.Addr)
		}
		if p.RTTNS <= 0 {
			t.Fatalf("peer %s has no RTT bound on its offset estimate", p.Addr)
		}
	}

	// Bundle → merge agrees with the Result and keeps causality.
	b := &trace.Bundle{
		RunID: runID,
		Peers: append([]trace.BundlePeer{
			{Addr: nodes[0].Self(), Coordinator: true, Dump: d},
		}, collected...),
	}
	var buf bytes.Buffer
	if err := trace.WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	if b, err = trace.ReadBundle(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := trace.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.States != int64(traced.States) {
		t.Fatalf("merged timeline reconstructs %d states, Result says %d", m.States, traced.States)
	}
	if len(m.Levels) == 0 {
		t.Fatal("merged timeline has no level attribution")
	}
	for _, e := range m.Edges {
		if (e.From == 0 || e.To == 0) && e.EndNS < e.StartNS {
			t.Fatalf("coordinator wire edge %d→%d (rpc %d level %d) runs backwards: %dns",
				e.From, e.To, e.RPC, e.Level, e.EndNS-e.StartNS)
		}
	}

	// Untraced runs leave nothing behind in the store.
	if got := nodes[1].LocalTrace("no-such-run"); got != nil {
		t.Fatalf("LocalTrace(no-such-run) = %+v, want nil", got)
	}
}

// benchJob is an untraced peerJob (tk and tkIntern stay nil), held at
// package level so the benchmark body measures only the emit calls.
var benchJob peerJob

// BenchmarkDisabledTraceHotPath pins the disabled-tracing cost of the
// cluster wire-edge call sites: every emit on a nil track and every
// intern wire half on an untraced peerJob must stay allocation-free
// (the zero-alloc gate in scripts/check.sh greps for 0 allocs/op).
func BenchmarkDisabledTraceHotPath(b *testing.B) {
	j := &benchJob
	var tk *trace.Track
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pid := trace.PairID(int64(i&0xff), trace.RPCExpand, 0, 1)
		tk.FrameSend(pid, 100)
		tk.FrameRecv(pid, 50)
		tk.Steal(int64(i&0xff), 4)
		tk.Level(int64(i&0xff), 17)
		tk.Expanded(12, int64(i&0xff))
		j.internRecv(pid, 64)
		j.internSend(pid, ackFrameBytes)
	}
}
