package cluster

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/reach"
)

// startCluster brings up nPeers in-process gpod peers on loopback
// listeners: real HTTP, real wire frames, distinct Node instances —
// only the network distance is fake.
func startCluster(t testing.TB, nPeers int) ([]*Node, []*obs.Registry) {
	t.Helper()
	lns := make([]net.Listener, nPeers)
	addrs := make([]string, nPeers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*Node, nPeers)
	regs := make([]*obs.Registry, nPeers)
	for i := range nodes {
		regs[i] = obs.New()
		nd, err := New(Config{
			Self:    addrs[i],
			Peers:   append([]string(nil), addrs...),
			Metrics: regs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		nd.Register(mux)
		srv := &http.Server{Handler: mux}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Close() })
		nodes[i] = nd
	}
	return nodes, regs
}

func sameResult(t *testing.T, name string, seq, clu *reach.Result) {
	t.Helper()
	if seq.States != clu.States {
		t.Errorf("%s: states %d != %d", name, clu.States, seq.States)
	}
	if seq.Arcs != clu.Arcs {
		t.Errorf("%s: arcs %d != %d", name, clu.Arcs, seq.Arcs)
	}
	if seq.Deadlock != clu.Deadlock || seq.BadFound != clu.BadFound || seq.Complete != clu.Complete {
		t.Errorf("%s: flags (dead=%v bad=%v complete=%v) != (dead=%v bad=%v complete=%v)",
			name, clu.Deadlock, clu.BadFound, clu.Complete, seq.Deadlock, seq.BadFound, seq.Complete)
	}
	sameMarkings(t, name+"/deadlocks", seq.Deadlocks, clu.Deadlocks)
	sameMarkings(t, name+"/bad", seq.BadStates, clu.BadStates)
}

func sameMarkings(t *testing.T, name string, want, got []petri.Marking) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d markings != %d", name, len(got), len(want))
		return
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Errorf("%s: marking %d differs", name, i)
			return
		}
	}
}

// TestClusterBitIdentical is the determinism contract of the tentpole:
// a 3-peer distributed exploration over real loopback HTTP produces
// Results bit-identical to the sequential BFS — full runs, the
// MaxStates stop point, safety predicates, and the ErrUnsafe witness.
func TestClusterBitIdentical(t *testing.T) {
	nodes, _ := startCluster(t, 3)

	nsdp8 := models.NSDP(8)
	rw12 := models.ReadersWriters(12)

	t.Run("nsdp8-full", func(t *testing.T) {
		seq, err := reach.Explore(nsdp8, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clu, err := nodes[0].Explore(nsdp8, nil, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seq.States != 103682 {
			t.Fatalf("nsdp(8) baseline drifted: %d states", seq.States)
		}
		sameResult(t, "nsdp8", seq, clu)
	})

	t.Run("rw12-full", func(t *testing.T) {
		seq, err := reach.Explore(rw12, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clu, err := nodes[0].Explore(rw12, nil, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "rw12", seq, clu)
	})

	t.Run("rw12-safety", func(t *testing.T) {
		// Same bad-place set on both engines; the cluster peers check
		// the places, the sequential engine the equivalent predicate.
		bad := []petri.Place{0, 1}
		pred := func(m petri.Marking) bool { return m.Has(bad[0]) && m.Has(bad[1]) }
		seq, err := reach.Explore(rw12, reach.Options{Bad: pred})
		if err != nil {
			t.Fatal(err)
		}
		clu, err := nodes[1].Explore(rw12, bad, reach.Options{Bad: pred})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "rw12-safety", seq, clu)
	})

	t.Run("nsdp7-capped", func(t *testing.T) {
		n := models.NSDP(7)
		for _, cap := range []int{1, 500, 5000} {
			seq, seqErr := reach.Explore(n, reach.Options{MaxStates: cap})
			if !errors.Is(seqErr, reach.ErrStateLimit) {
				t.Fatalf("cap %d: sequential got %v", cap, seqErr)
			}
			clu, cluErr := nodes[2].Explore(n, nil, reach.Options{MaxStates: cap})
			if !errors.Is(cluErr, reach.ErrStateLimit) {
				t.Fatalf("cap %d: cluster got %v", cap, cluErr)
			}
			if clu.States != cap {
				t.Errorf("cap %d: cluster stopped at %d states", cap, clu.States)
			}
			sameResult(t, "nsdp7-capped", seq, clu)
		}
	})

	t.Run("unsafe-witness", func(t *testing.T) {
		b := petri.NewBuilder("unsafe")
		p := b.Place("p")
		q := b.Place("q")
		r := b.Place("r")
		b.TransArcs("t1", []petri.Place{p}, []petri.Place{r})
		b.TransArcs("t2", []petri.Place{q}, []petri.Place{r})
		b.Mark(p, q)
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, seqErr := reach.Explore(n, reach.Options{})
		if !errors.Is(seqErr, reach.ErrUnsafe) {
			t.Fatalf("sequential: got %v, want ErrUnsafe", seqErr)
		}
		_, cluErr := nodes[0].Explore(n, nil, reach.Options{})
		if !errors.Is(cluErr, reach.ErrUnsafe) {
			t.Fatalf("cluster: got %v, want ErrUnsafe", cluErr)
		}
		if seqErr.Error() != cluErr.Error() {
			t.Errorf("error message differs:\n  seq: %s\n  clu: %s", seqErr, cluErr)
		}
	})
}

// TestClusterMetrics checks the coordinator exports the per-run
// cluster.* metrics and the same reach.* counters as the in-process
// engines, so reach.states deltas work for cluster runs too.
func TestClusterMetrics(t *testing.T) {
	nodes, regs := startCluster(t, 3)
	n := models.NSDP(5)
	reg := obs.New()
	clu, err := nodes[0].Explore(n, nil, reach.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["reach.states"]; got != int64(clu.States) {
		t.Errorf("reach.states = %d, want %d", got, clu.States)
	}
	if got := snap.Counters["reach.arcs"]; got != int64(clu.Arcs) {
		t.Errorf("reach.arcs = %d, want %d", got, clu.Arcs)
	}
	if snap.Counters["cluster.levels"] == 0 {
		t.Error("cluster.levels not recorded")
	}
	if snap.Counters["cluster.frontier_bytes_out"] == 0 || snap.Counters["cluster.frontier_bytes_in"] == 0 {
		t.Error("frontier byte counters not recorded")
	}
	if snap.Gauges["cluster.peers"] != 3 {
		t.Errorf("cluster.peers = %d, want 3", snap.Gauges["cluster.peers"])
	}
	// Peer-side node counters saw the traffic.
	var batches int64
	for _, r := range regs {
		batches += r.Snapshot().Counters["cluster.expand_batches_in"]
	}
	if batches == 0 {
		t.Error("no expand batches recorded on any peer")
	}
}

// TestAssignLevelStealing pins the work-stealing rebalance: a level
// whose parents all hash into one peer's shard range is spread to the
// starving peers, every position exactly once, and the steal count is
// reported.
func TestAssignLevelStealing(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	nd := nodes[0]

	// All parents in peer 0's range (shards 0..85), several buckets so
	// donors can give without dropping below the recipients.
	const nStates = 240
	level := make([]int, nStates)
	stateShard := make([]uint32, nStates)
	for i := range level {
		level[i] = i
		stateShard[i] = uint32(i % 40) // 40 distinct shards, all owned by peer 0
	}
	assign, steals := nd.assignLevel(level, stateShard, nil, 0)
	if steals == 0 {
		t.Fatal("expected steals for a fully skewed level")
	}
	seen := make(map[int]bool)
	for peer, positions := range assign {
		for _, pos := range positions {
			if seen[pos] {
				t.Fatalf("position %d assigned twice", pos)
			}
			seen[pos] = true
		}
		if peer != 0 && len(positions) == 0 {
			t.Errorf("peer %d still starving after rebalance", peer)
		}
	}
	if len(seen) != nStates {
		t.Fatalf("assignment covers %d of %d positions", len(seen), nStates)
	}

	// A balanced level needs no stealing.
	for i := range level {
		stateShard[i] = uint32(i % reach.NumShards)
	}
	_, steals = nd.assignLevel(level, stateShard, nil, 0)
	if steals != 0 {
		t.Errorf("balanced level stole %d buckets", steals)
	}
}

// TestSharedCacheTier exercises the consistent-hash result tier over
// real HTTP: a put on one node is a hit from every node, single-flight
// blocks a concurrent acquirer until the put lands, and a release lets
// waiters claim the compute lease themselves.
func TestSharedCacheTier(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	ctx := context.Background()
	key := "run-abc123"
	payload := []byte(`{"deadlock":true,"states":42}`)

	// First acquire: miss, lease held.
	data, hit, err := nodes[0].AcquireResult(ctx, key, 0)
	if err != nil || hit {
		t.Fatalf("first acquire: hit=%v err=%v data=%q", hit, err, data)
	}

	// A concurrent acquirer from another node blocks, then gets the put.
	type res struct {
		data []byte
		hit  bool
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		d, h, e := nodes[1].AcquireResult(ctx, key, 5*time.Second)
		ch <- res{d, h, e}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter park on the flight
	if err := nodes[0].PutResult(key, payload); err != nil {
		t.Fatalf("put: %v", err)
	}
	r := <-ch
	if r.err != nil || !r.hit || string(r.data) != string(payload) {
		t.Fatalf("waiter: hit=%v err=%v data=%q", r.hit, r.err, r.data)
	}

	// Every node now sees the hit, wherever the owner lives.
	for i, nd := range nodes {
		d, h, err := nd.AcquireResult(ctx, key, 0)
		if err != nil || !h || string(d) != string(payload) {
			t.Fatalf("node %d: hit=%v err=%v data=%q", i, h, err, d)
		}
	}

	// Release without a result wakes waiters into computing themselves.
	key2 := "run-def456"
	if _, hit, _ := nodes[0].AcquireResult(ctx, key2, 0); hit {
		t.Fatal("acquire of unknown key hit")
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		nodes[0].ReleaseResult(key2)
	}()
	d, h, err := nodes[2].AcquireResult(ctx, key2, 5*time.Second)
	if err != nil || h || d != nil {
		t.Fatalf("post-release acquire: hit=%v err=%v", h, err)
	}
}

// TestRingDistribution pins that the consistent-hash ring is identical
// on every node and spreads keys across all members.
func TestRingDistribution(t *testing.T) {
	nodes, _ := startCluster(t, 3)
	counts := make([]int, 3)
	for i := 0; i < 1000; i++ {
		key := "run-" + itoa(i)
		owner := nodes[0].cache.owner(key)
		for _, nd := range nodes[1:] {
			if got := nd.cache.owner(key); got != owner {
				t.Fatalf("ring disagrees for %q: %d vs %d", key, got, owner)
			}
		}
		counts[owner]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Errorf("peer %d owns no keys of 1000", p)
		}
	}
}

// TestSharedCacheEviction pins the byte-budget LRU of the owner store.
func TestSharedCacheEviction(t *testing.T) {
	c := newSharedCache([]string{"a"}, 100)
	big := make([]byte, 40)
	c.put("k1", big)
	c.put("k2", big)
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 evicted below budget")
	}
	c.put("k3", big) // 3*(2+40) > 100: least-recent (k2) goes
	if _, ok := c.get("k2"); ok {
		t.Fatal("LRU entry survived over budget")
	}
	if _, ok := c.get("k1"); !ok {
		t.Fatal("recently used entry evicted")
	}
	bytes, evicts, entries := c.stats()
	if evicts != 1 || entries != 2 || bytes > 100 {
		t.Fatalf("stats bytes=%d evicts=%d entries=%d", bytes, evicts, entries)
	}
	// An entry above the whole budget is not admitted.
	c.put("huge", make([]byte, 200))
	if _, ok := c.get("huge"); ok {
		t.Fatal("over-budget entry admitted")
	}
}

// TestClusterSingleNodeFallback pins that a 1-member cluster routes
// straight to the in-process engine.
func TestClusterSingleNodeFallback(t *testing.T) {
	nd, err := New(Config{Self: "http://127.0.0.1:1", Peers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	n := models.NSDP(4)
	seq, err := reach.Explore(n, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clu, err := nd.Explore(n, nil, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "single-node", seq, clu)
}
