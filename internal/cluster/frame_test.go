package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
)

// tableOneKeys returns real state keys from Table 1 nets: the initial
// markings and a few successors, giving the fuzzer realistic seeds
// (little-endian bitset words of varying widths).
func tableOneKeys(t testing.TB) []string {
	t.Helper()
	var keys []string
	for _, spec := range []struct {
		family string
		size   int
	}{
		{"nsdp", 4}, {"rw", 6}, {"over", 3}, {"asat", 2},
	} {
		n, err := models.ByName(spec.family, spec.size)
		if err != nil {
			t.Fatalf("models.ByName(%s,%d): %v", spec.family, spec.size, err)
		}
		m := n.InitialMarking()
		keys = append(keys, m.Key())
		for tr := petri.Trans(0); int(tr) < n.NumTrans(); tr++ {
			if n.Enabled(m, tr) {
				if next, safe := n.Fire(m, tr); safe {
					keys = append(keys, next.Key())
				}
			}
		}
	}
	return keys
}

// FuzzFrameRoundTrip feeds arbitrary byte strings through the
// (key, order) wire codec used by intern batches and collect replies:
// whatever encodes must decode to the same entries, and decoding the
// encoded stream must consume it fully.
func FuzzFrameRoundTrip(f *testing.F) {
	for i, key := range tableOneKeys(f) {
		f.Add(key, uint64(i)<<32|uint64(i))
	}
	f.Add("", uint64(0))
	f.Add(string(make([]byte, 300)), ^uint64(0))
	f.Fuzz(func(t *testing.T, key string, order uint64) {
		in := []internEntry{{key: key, order: order}, {key: key + "x", order: order / 2}}
		var buf bytes.Buffer
		if err := encodeKeyOrders(&buf, frameIntern, in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := decodeKeyOrders(&buf, frameIntern, MaxFrame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip %d entries -> %d", len(in), len(out))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("entry %d: %+v -> %+v", i, in[i], out[i])
			}
		}
	})
}

// TestFrameChunking pins that a batch larger than one chunk round-trips
// through multiple frames in one stream.
func TestFrameChunking(t *testing.T) {
	keys := tableOneKeys(t)
	in := make([]internEntry, 3*chunkEntries+17)
	for i := range in {
		in[i] = internEntry{key: keys[i%len(keys)], order: uint64(i)}
	}
	var buf bytes.Buffer
	if err := encodeKeyOrders(&buf, frameIntern, in); err != nil {
		t.Fatal(err)
	}
	out, err := decodeKeyOrders(&buf, frameIntern, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("chunked round trip lost entries: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

// TestTornFrameRejected pins the wire-level analogue of the ledger's
// torn-tail handling: a stream cut inside a frame fails with
// ErrTornFrame at every cut point, and a clean boundary returns io.EOF.
func TestTornFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	in := []internEntry{{key: tableOneKeys(t)[0], order: 42}}
	if err := encodeKeyOrders(&buf, frameIntern, in); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, err := decodeKeyOrders(bytes.NewReader(whole[:cut]), frameIntern, MaxFrame)
		if cut < 5 {
			// Cut inside the header or the frame body: torn.
			if !errors.Is(err, ErrTornFrame) {
				t.Fatalf("cut at %d: want ErrTornFrame, got %v", cut, err)
			}
		} else if err == nil {
			t.Fatalf("cut at %d: truncated frame decoded successfully", cut)
		}
	}
	// The full stream ends with a clean io.EOF inside the decoder loop.
	if _, err := decodeKeyOrders(bytes.NewReader(whole), frameIntern, MaxFrame); err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	// A raw readFrame on an empty stream is a clean boundary.
	if _, _, err := ReadFrame(bytes.NewReader(nil), MaxFrame); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

// TestOversizedFrameRejected pins that a hostile length field is
// rejected before any allocation happens.
func TestOversizedFrameRejected(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, frameIntern}
	_, _, err := ReadFrame(bytes.NewReader(raw), MaxFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// At exactly the limit the frame is only torn (no body follows), not
	// oversized.
	at := []byte{0x00, 0x00, 0x00, 0x10, frameIntern}
	if _, _, err := ReadFrame(bytes.NewReader(at), 16); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("at-limit header: want ErrTornFrame, got %v", err)
	}
	// A zero-length frame cannot even carry its type byte.
	zero := []byte{0x00, 0x00, 0x00, 0x00}
	if _, _, err := ReadFrame(bytes.NewReader(zero), 16); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("zero-length: want ErrTornFrame, got %v", err)
	}
}
