package family

import (
	"encoding/binary"

	"repro/internal/obs"
	"repro/internal/tset"
)

// algStats counts the set operations performed through one algebra
// instance and the largest family produced. Plain int64: the engine is
// single-goroutine, and the explicit representation is measured precisely
// because it is the slow reference path.
type algStats struct {
	unions, intersects, diffs, onsets int64
	peakSets                          int64
}

func (st *algStats) sized(f *Family) *Family {
	if st != nil && int64(f.Size()) > st.peakSets {
		st.peakSets = int64(f.Size())
	}
	return f
}

// Alg adapts the explicit Family representation to the algebra interface
// consumed by the analysis engine (internal/core.Algebra). The zero value
// is unusable; construct with NewAlgebra.
type Alg struct {
	n  int
	st *algStats
}

// NewAlgebra returns the explicit family algebra over an n-transition
// universe.
func NewAlgebra(n int) Alg { return Alg{n: n, st: &algStats{}} }

// Universe returns the transition universe size.
func (a Alg) Universe() int { return a.n }

// Empty returns the family with no member sets.
func (a Alg) Empty() *Family { return Empty(a.n) }

// FromSets returns the canonical family holding exactly the given sets.
func (a Alg) FromSets(sets []tset.TSet) *Family { return Of(a.n, sets...) }

// Union returns x ∪ y.
func (a Alg) Union(x, y *Family) *Family {
	if a.st != nil {
		a.st.unions++
	}
	return a.st.sized(x.Union(y))
}

// Intersect returns x ∩ y.
func (a Alg) Intersect(x, y *Family) *Family {
	if a.st != nil {
		a.st.intersects++
	}
	return a.st.sized(x.Intersect(y))
}

// Diff returns x \ y.
func (a Alg) Diff(x, y *Family) *Family {
	if a.st != nil {
		a.st.diffs++
	}
	return a.st.sized(x.Diff(y))
}

// OnSet returns {v ∈ x | t ∈ v}.
func (a Alg) OnSet(x *Family, t int) *Family {
	if a.st != nil {
		a.st.onsets++
	}
	return a.st.sized(x.OnSet(t))
}

// IsEmpty reports whether x has no member sets.
func (a Alg) IsEmpty(x *Family) bool { return x.IsEmpty() }

// Equal reports whether x and y hold the same sets.
func (a Alg) Equal(x, y *Family) bool { return x.Equal(y) }

// Contains reports whether s is a member set of x.
func (a Alg) Contains(x *Family, s tset.TSet) bool { return x.Contains(s) }

// Count returns the number of member sets.
func (a Alg) Count(x *Family) float64 { return float64(x.Size()) }

// AppendKey appends a self-delimiting binary key of x to dst: the
// canonical Key string, length-prefixed with a uvarint so concatenated
// keys of variable length stay unambiguous.
func (a Alg) AppendKey(dst []byte, x *Family) []byte {
	k := x.Key()
	dst = binary.AppendUvarint(dst, uint64(len(k)))
	return append(dst, k...)
}

// Enumerate returns up to limit member sets (all if limit <= 0).
func (a Alg) Enumerate(x *Family, limit int) []tset.TSet {
	sets := x.Sets()
	if limit > 0 && len(sets) > limit {
		sets = sets[:limit]
	}
	out := make([]tset.TSet, len(sets))
	for i, s := range sets {
		out[i] = s.Clone()
	}
	return out
}

// MaximalConflictFree returns the family of maximal independent sets of
// the conflict graph: the initial valid sets r₀.
func (a Alg) MaximalConflictFree(conflict func(i, j int) bool) *Family {
	return MaximalConflictFree(a.n, conflict)
}

// ReportStats exports the algebra's operation counts under the "family."
// prefix (the core engine's StatsReporter hook). Gauges, not counters, so
// a repeated call overwrites rather than double-counts.
func (a Alg) ReportStats(r *obs.Registry) {
	if a.st == nil {
		return
	}
	r.Gauge("family.union_ops").Set(a.st.unions)
	r.Gauge("family.intersect_ops").Set(a.st.intersects)
	r.Gauge("family.diff_ops").Set(a.st.diffs)
	r.Gauge("family.onset_ops").Set(a.st.onsets)
	r.Gauge("family.peak_sets").Set(a.st.peakSets)
}
