package family

import "repro/internal/tset"

// Alg adapts the explicit Family representation to the algebra interface
// consumed by the analysis engine (internal/core.Algebra). The zero value
// is unusable; construct with NewAlgebra.
type Alg struct {
	n int
}

// NewAlgebra returns the explicit family algebra over an n-transition
// universe.
func NewAlgebra(n int) Alg { return Alg{n: n} }

// Universe returns the transition universe size.
func (a Alg) Universe() int { return a.n }

// Empty returns the family with no member sets.
func (a Alg) Empty() *Family { return Empty(a.n) }

// FromSets returns the canonical family holding exactly the given sets.
func (a Alg) FromSets(sets []tset.TSet) *Family { return Of(a.n, sets...) }

// Union returns x ∪ y.
func (a Alg) Union(x, y *Family) *Family { return x.Union(y) }

// Intersect returns x ∩ y.
func (a Alg) Intersect(x, y *Family) *Family { return x.Intersect(y) }

// Diff returns x \ y.
func (a Alg) Diff(x, y *Family) *Family { return x.Diff(y) }

// OnSet returns {v ∈ x | t ∈ v}.
func (a Alg) OnSet(x *Family, t int) *Family { return x.OnSet(t) }

// IsEmpty reports whether x has no member sets.
func (a Alg) IsEmpty(x *Family) bool { return x.IsEmpty() }

// Equal reports whether x and y hold the same sets.
func (a Alg) Equal(x, y *Family) bool { return x.Equal(y) }

// Contains reports whether s is a member set of x.
func (a Alg) Contains(x *Family, s tset.TSet) bool { return x.Contains(s) }

// Count returns the number of member sets.
func (a Alg) Count(x *Family) float64 { return float64(x.Size()) }

// Key returns a map key unique per family value.
func (a Alg) Key(x *Family) string { return x.Key() }

// Enumerate returns up to limit member sets (all if limit <= 0).
func (a Alg) Enumerate(x *Family, limit int) []tset.TSet {
	sets := x.Sets()
	if limit > 0 && len(sets) > limit {
		sets = sets[:limit]
	}
	out := make([]tset.TSet, len(sets))
	for i, s := range sets {
		out[i] = s.Clone()
	}
	return out
}

// MaximalConflictFree returns the family of maximal independent sets of
// the conflict graph: the initial valid sets r₀.
func (a Alg) MaximalConflictFree(conflict func(i, j int) bool) *Family {
	return MaximalConflictFree(a.n, conflict)
}
