package family

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tset"
)

func sets(n int, members ...[]int) []tset.TSet {
	out := make([]tset.TSet, len(members))
	for i, ms := range members {
		out[i] = tset.Of(n, ms...)
	}
	return out
}

func TestCanonicalForm(t *testing.T) {
	n := 6
	f1 := Of(n, sets(n, []int{1, 2}, []int{0}, []int{1, 2})...)
	f2 := Of(n, sets(n, []int{0}, []int{1, 2})...)
	if !f1.Equal(f2) {
		t.Error("duplicates not collapsed")
	}
	if f1.Size() != 2 {
		t.Errorf("size=%d want 2", f1.Size())
	}
	if f1.Key() != f2.Key() {
		t.Error("equal families must share keys")
	}
}

func TestEmptyVsUnit(t *testing.T) {
	n := 4
	empty := Empty(n)
	unit := Of(n, tset.New(n)) // {∅}
	if empty.Equal(unit) {
		t.Error("∅ and {∅} must differ")
	}
	if empty.Size() != 0 || unit.Size() != 1 {
		t.Error("sizes wrong")
	}
	if !unit.Contains(tset.New(n)) {
		t.Error("{∅} must contain ∅")
	}
}

func TestOps(t *testing.T) {
	n := 6
	a := Of(n, sets(n, []int{0}, []int{1}, []int{0, 1})...)
	b := Of(n, sets(n, []int{1}, []int{2})...)
	if got := a.Union(b); got.Size() != 4 {
		t.Errorf("union size=%d", got.Size())
	}
	if got := a.Intersect(b); got.Size() != 1 || !got.Contains(tset.Of(n, 1)) {
		t.Errorf("intersect=%v", got)
	}
	if got := a.Diff(b); got.Size() != 2 || got.Contains(tset.Of(n, 1)) {
		t.Errorf("diff=%v", got)
	}
	if got := a.OnSet(1); got.Size() != 2 {
		t.Errorf("onset=%v", got)
	}
	if v, ok := a.Pick(); !ok || !a.Contains(v) {
		t.Error("pick must return a member")
	}
	if _, ok := Empty(n).Pick(); ok {
		t.Error("pick on empty family")
	}
}

func randFamily(rng *rand.Rand, n int) *Family {
	count := rng.Intn(10)
	ss := make([]tset.TSet, count)
	for i := range ss {
		s := tset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				s.Add(v)
			}
		}
		ss[i] = s
	}
	return Of(n, ss...)
}

// TestQuickLaws property-checks the family lattice laws.
func TestQuickLaws(t *testing.T) {
	const n = 8
	gen := func(seed int64) *Family {
		return randFamily(rand.New(rand.NewSource(seed)), n)
	}
	laws := map[string]func(x, y, z int64) bool{
		"absorb": func(x, y, _ int64) bool {
			a, b := gen(x), gen(y)
			return a.Union(a.Intersect(b)).Equal(a)
		},
		"distribute": func(x, y, z int64) bool {
			a, b, c := gen(x), gen(y), gen(z)
			return a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c)))
		},
		"diff-union-partition": func(x, y, _ int64) bool {
			a, b := gen(x), gen(y)
			return a.Diff(b).Union(a.Intersect(b)).Equal(a)
		},
		"onset-subset": func(x, _, _ int64) bool {
			a := gen(x)
			on := a.OnSet(3)
			for _, s := range on.Sets() {
				if !s.Has(3) {
					return false
				}
			}
			return on.Union(a).Equal(a)
		},
	}
	for name, law := range laws {
		if err := quick.Check(law, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestMaximalConflictFree checks r₀ construction on known graphs.
func TestMaximalConflictFree(t *testing.T) {
	// Two disjoint edges (the Figure 7 conflict structure): 4 MIS.
	conflict := func(i, j int) bool { return i/2 == j/2 && i != j }
	f := MaximalConflictFree(4, conflict)
	if f.Size() != 4 {
		t.Fatalf("2 conflict pairs: %d MIS, want 4", f.Size())
	}
	// Triangle: 3 MIS (each single vertex).
	tri := MaximalConflictFree(3, func(i, j int) bool { return i != j })
	if tri.Size() != 3 {
		t.Fatalf("triangle: %d MIS, want 3", tri.Size())
	}
	for _, s := range tri.Sets() {
		if s.Len() != 1 {
			t.Errorf("triangle MIS %v not a singleton", s)
		}
	}
	// Empty graph: one MIS, the full set.
	none := MaximalConflictFree(5, func(i, j int) bool { return false })
	if none.Size() != 1 || !none.Contains(tset.Full(5)) {
		t.Errorf("empty graph MIS wrong: %v", none)
	}
	// Path a-b-c: MIS {a,c}, {b}.
	path := MaximalConflictFree(3, func(i, j int) bool {
		d := i - j
		return d == 1 || d == -1
	})
	if path.Size() != 2 || !path.Contains(tset.Of(3, 0, 2)) || !path.Contains(tset.Of(3, 1)) {
		t.Errorf("path MIS wrong: %v", path)
	}
}

// TestMISProperties property-checks that every returned set is independent
// and maximal on random graphs.
func TestMISProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		conflict := func(i, j int) bool { return adj[i][j] }
		f := MaximalConflictFree(n, conflict)
		if f.Size() == 0 {
			t.Fatalf("trial %d: no MIS at all", trial)
		}
		for _, s := range f.Sets() {
			ms := s.Members()
			for a := 0; a < len(ms); a++ {
				for b := a + 1; b < len(ms); b++ {
					if adj[ms[a]][ms[b]] {
						t.Fatalf("trial %d: %v not independent", trial, s)
					}
				}
			}
			// Maximality: every vertex outside has a neighbour inside.
			for v := 0; v < n; v++ {
				if s.Has(v) {
					continue
				}
				dominated := false
				for _, u := range ms {
					if adj[v][u] {
						dominated = true
						break
					}
				}
				if !dominated {
					t.Fatalf("trial %d: %v not maximal (can add %d)", trial, s, v)
				}
			}
		}
	}
}

func TestStringNamed(t *testing.T) {
	n := 3
	f := Of(n, sets(n, []int{0, 2}, []int{1})...)
	got := f.StringNamed(func(i int) string { return string(rune('A' + i)) })
	if got != "{{A,C},{B}}" {
		t.Errorf("StringNamed=%q", got)
	}
}
