// Package family implements the explicit representation of families of
// transition sets — values in 2^(2^T) — which are the marking values and
// valid-set components of Generalized Petri Net states (Definition 3.1 of
// the paper).
//
// A Family is kept in canonical form: member sets sorted and deduplicated,
// so that Equal is a linear scan and Key is a unique map key. This explicit
// representation is the reference semantics; internal/zdd provides an
// equivalent compressed representation for nets whose valid-set families
// are exponentially large.
package family

import (
	"sort"
	"strings"

	"repro/internal/tset"
)

// Family is an immutable, canonical set of transition sets over a fixed
// transition universe.
type Family struct {
	sets []tset.TSet // sorted by TSet.Compare, unique
	n    int         // universe size
}

// Empty returns the empty family ∅ (no member sets) over an n-transition
// universe. Note that ∅ differs from {∅}, the family holding one empty set.
func Empty(n int) *Family { return &Family{n: n} }

// Of returns the canonical family containing exactly the given sets.
// All sets must share the same universe.
func Of(n int, sets ...tset.TSet) *Family {
	f := &Family{n: n, sets: make([]tset.TSet, 0, len(sets))}
	for _, s := range sets {
		if s.Universe() != n {
			panic("family: set universe mismatch")
		}
		f.sets = append(f.sets, s.Clone())
	}
	f.normalize()
	return f
}

func (f *Family) normalize() {
	sort.Slice(f.sets, func(i, j int) bool { return f.sets[i].Compare(f.sets[j]) < 0 })
	out := f.sets[:0]
	for i, s := range f.sets {
		if i == 0 || s.Compare(f.sets[i-1]) != 0 {
			out = append(out, s)
		}
	}
	f.sets = out
}

// Universe returns the transition universe size.
func (f *Family) Universe() int { return f.n }

// Size returns the number of member sets.
func (f *Family) Size() int { return len(f.sets) }

// IsEmpty reports whether the family has no member sets.
func (f *Family) IsEmpty() bool { return len(f.sets) == 0 }

// Sets returns the member sets in canonical order. Read-only.
func (f *Family) Sets() []tset.TSet { return f.sets }

// Contains reports whether s is a member set of f.
func (f *Family) Contains(s tset.TSet) bool {
	i := sort.Search(len(f.sets), func(i int) bool { return f.sets[i].Compare(s) >= 0 })
	return i < len(f.sets) && f.sets[i].Compare(s) == 0
}

// Equal reports whether f and g contain exactly the same sets.
func (f *Family) Equal(g *Family) bool {
	if f.n != g.n || len(f.sets) != len(g.sets) {
		return false
	}
	for i := range f.sets {
		if f.sets[i].Compare(g.sets[i]) != 0 {
			return false
		}
	}
	return true
}

// Union returns f ∪ g.
func (f *Family) Union(g *Family) *Family {
	f.sameUniverse(g)
	out := &Family{n: f.n, sets: make([]tset.TSet, 0, len(f.sets)+len(g.sets))}
	i, j := 0, 0
	for i < len(f.sets) && j < len(g.sets) {
		switch c := f.sets[i].Compare(g.sets[j]); {
		case c < 0:
			out.sets = append(out.sets, f.sets[i])
			i++
		case c > 0:
			out.sets = append(out.sets, g.sets[j])
			j++
		default:
			out.sets = append(out.sets, f.sets[i])
			i++
			j++
		}
	}
	out.sets = append(out.sets, f.sets[i:]...)
	out.sets = append(out.sets, g.sets[j:]...)
	return out
}

// Intersect returns f ∩ g.
func (f *Family) Intersect(g *Family) *Family {
	f.sameUniverse(g)
	out := &Family{n: f.n}
	i, j := 0, 0
	for i < len(f.sets) && j < len(g.sets) {
		switch c := f.sets[i].Compare(g.sets[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out.sets = append(out.sets, f.sets[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns f \ g.
func (f *Family) Diff(g *Family) *Family {
	f.sameUniverse(g)
	out := &Family{n: f.n}
	i, j := 0, 0
	for i < len(f.sets) {
		if j >= len(g.sets) {
			out.sets = append(out.sets, f.sets[i:]...)
			break
		}
		switch c := f.sets[i].Compare(g.sets[j]); {
		case c < 0:
			out.sets = append(out.sets, f.sets[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// OnSet returns {v ∈ f | t ∈ v}: the member sets containing transition t.
// This is the core filter of the multiple enabling rule (Definition 3.5).
func (f *Family) OnSet(t int) *Family {
	out := &Family{n: f.n}
	for _, s := range f.sets {
		if s.Has(t) {
			out.sets = append(out.sets, s)
		}
	}
	return out
}

// Pick returns an arbitrary member set (the canonically smallest), or
// false if the family is empty.
func (f *Family) Pick() (tset.TSet, bool) {
	if len(f.sets) == 0 {
		return tset.TSet{}, false
	}
	return f.sets[0], true
}

func (f *Family) sameUniverse(g *Family) {
	if f.n != g.n {
		panic("family: universe mismatch")
	}
}

// Key returns a string key unique per family, suitable for hashing GPN
// states.
func (f *Family) Key() string {
	var b strings.Builder
	for _, s := range f.sets {
		b.WriteString(s.Key())
		b.WriteByte(0xFF)
	}
	return b.String()
}

// String renders the family as {{..},{..}} using transition indices.
func (f *Family) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range f.sets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	b.WriteByte('}')
	return b.String()
}

// StringNamed renders the family using the supplied transition name func.
func (f *Family) StringNamed(name func(int) string) string {
	parts := make([]string, len(f.sets))
	for i, s := range f.sets {
		parts[i] = s.StringNamed(name)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// MaximalConflictFree returns the family of all maximal independent sets of
// the conflict graph over an n-transition universe: the initial valid sets
// r₀ of the generalized analysis (Section 3.3; the paper's worked examples
// use the maximal conflict-free sets, e.g. Figure 7). The graph is given by
// its adjacency predicate. The enumeration is Bron–Kerbosch with pivoting;
// it is exponential in the worst case, which is precisely why the ZDD
// algebra exists — this explicit version is the small-net reference.
func MaximalConflictFree(n int, conflict func(i, j int) bool) *Family {
	adj := make([]tset.TSet, n)
	for i := 0; i < n; i++ {
		adj[i] = tset.New(n)
		for j := 0; j < n; j++ {
			if i != j && conflict(i, j) {
				adj[i].Add(j)
			}
		}
	}
	var out []tset.TSet
	// Maximal independent sets of G are maximal cliques of the complement;
	// we run Bron–Kerbosch directly on "non-adjacency".
	nonAdj := make([]tset.TSet, n)
	for i := 0; i < n; i++ {
		nonAdj[i] = tset.Full(n).Diff(adj[i])
		nonAdj[i].Remove(i)
	}
	var bk func(r, p, x tset.TSet)
	bk = func(r, p, x tset.TSet) {
		if p.IsEmpty() && x.IsEmpty() {
			out = append(out, r.Clone())
			return
		}
		// Pivot: vertex in p ∪ x maximizing |p ∩ nonAdj(u)|.
		pivot, best := -1, -1
		choose := func(u int) {
			c := p.Intersect(nonAdj[u]).Len()
			if c > best {
				best, pivot = c, u
			}
		}
		p.ForEach(choose)
		x.ForEach(choose)
		cand := p.Diff(nonAdj[pivot])
		cand.ForEach(func(v int) {
			r2 := r.Clone()
			r2.Add(v)
			bk(r2, p.Intersect(nonAdj[v]), x.Intersect(nonAdj[v]))
			p.Remove(v)
			x.Add(v)
		})
	}
	bk(tset.New(n), tset.Full(n), tset.New(n))
	return Of(n, out...)
}
