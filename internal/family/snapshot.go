package family

// Checkpoint support for the explicit representation: the reference
// counterpart of the ZDD family snapshot (internal/zdd/snapshot.go).
// Families are serialized as their member sets, deduplicated by
// canonical key so a family shared by many states is encoded once.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tset"
)

// ErrBadSnapshot is wrapped by every decode failure.
var ErrBadSnapshot = errors.New("family: bad family snapshot")

// EncodeFamilies serializes the given families into a self-contained
// blob: universe size, a deduplicated family table (each family as its
// member sets, each set as sorted element indices), and one table
// reference per root.
func (a Alg) EncodeFamilies(roots []*Family) []byte {
	table := make([]*Family, 0, len(roots))
	refOf := make(map[string]uint64, len(roots))
	refs := make([]uint64, len(roots))
	for i, f := range roots {
		k := f.Key()
		ref, ok := refOf[k]
		if !ok {
			ref = uint64(len(table))
			refOf[k] = ref
			table = append(table, f)
		}
		refs[i] = ref
	}
	b := binary.AppendUvarint(nil, uint64(a.n))
	b = binary.AppendUvarint(b, uint64(len(table)))
	for _, f := range table {
		b = binary.AppendUvarint(b, uint64(len(f.sets)))
		for _, s := range f.sets {
			els := s.Members()
			b = binary.AppendUvarint(b, uint64(len(els)))
			for _, e := range els {
				b = binary.AppendUvarint(b, uint64(e))
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(len(roots)))
	for _, r := range refs {
		b = binary.AppendUvarint(b, r)
	}
	return b
}

// DecodeFamilies rebuilds the families of an EncodeFamilies blob and
// returns the roots in encoding order. Malformed input — universe
// mismatch, out-of-range elements or references, truncation — is
// rejected with an error wrapping ErrBadSnapshot.
func (a Alg) DecodeFamilies(blob []byte) ([]*Family, error) {
	next := func() (uint64, error) {
		v, n := binary.Uvarint(blob)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		blob = blob[n:]
		return v, nil
	}
	u, err := next()
	if err != nil {
		return nil, err
	}
	if int(u) != a.n {
		return nil, fmt.Errorf("%w: universe %d, algebra has %d", ErrBadSnapshot, u, a.n)
	}
	nf, err := next()
	if err != nil {
		return nil, err
	}
	if nf > uint64(len(blob)) {
		return nil, fmt.Errorf("%w: family count %d exceeds payload", ErrBadSnapshot, nf)
	}
	table := make([]*Family, nf)
	for i := range table {
		ns, err := next()
		if err != nil {
			return nil, err
		}
		if ns > uint64(len(blob))+1 {
			return nil, fmt.Errorf("%w: set count %d exceeds payload", ErrBadSnapshot, ns)
		}
		sets := make([]tset.TSet, ns)
		for j := range sets {
			ne, err := next()
			if err != nil {
				return nil, err
			}
			if ne > uint64(a.n) {
				return nil, fmt.Errorf("%w: set size %d exceeds universe", ErrBadSnapshot, ne)
			}
			s := tset.New(a.n)
			for k := uint64(0); k < ne; k++ {
				e, err := next()
				if err != nil {
					return nil, err
				}
				if e >= uint64(a.n) {
					return nil, fmt.Errorf("%w: element %d out of range", ErrBadSnapshot, e)
				}
				s.Add(int(e))
			}
			sets[j] = s
		}
		table[i] = Of(a.n, sets...)
	}
	nr, err := next()
	if err != nil {
		return nil, err
	}
	if nr > uint64(len(blob))+1 {
		return nil, fmt.Errorf("%w: root count %d exceeds payload", ErrBadSnapshot, nr)
	}
	roots := make([]*Family, nr)
	for i := range roots {
		ref, err := next()
		if err != nil {
			return nil, err
		}
		if ref >= nf {
			return nil, fmt.Errorf("%w: root %d out of range", ErrBadSnapshot, i)
		}
		roots[i] = table[ref]
	}
	return roots, nil
}
