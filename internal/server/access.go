package server

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// requestIDHeader is the header a client may use to name its request;
// the server echoes it (or a generated ID) on every /v1/verify response
// so one identifier joins the HTTP exchange, the access log line and
// any abort trace dump.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-chosen IDs; longer (or
// unprintable) values are replaced with a generated ID rather than
// rejected, because the ID is diagnostic, not semantic.
const maxRequestIDLen = 64

// validRequestID accepts printable ASCII without spaces, quotes or
// backslashes — safe to embed in JSON logs and file names.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' || c == '/' {
			return false
		}
	}
	return true
}

// requestID returns the client's ID when acceptable, else a fresh
// server-generated one ("r<start-base36>-<seq>", unique per process).
func (s *Server) requestID(client string) string {
	if validRequestID(client) {
		return client
	}
	return "r" + s.idBase + "-" + strconv.FormatUint(s.idSeq.Add(1), 10)
}

// accessEntry is one structured access-log line: who asked for what,
// what it cost, and how it ended. Engine statistics are zero for
// requests rejected before an engine ran.
type accessEntry struct {
	TS        string `json:"ts"` // RFC3339Nano, UTC
	RequestID string `json:"request_id"`
	Code      int    `json:"code"` // HTTP status
	Engine    string `json:"engine,omitempty"`
	Net       string `json:"net,omitempty"`
	Check     string `json:"check,omitempty"`
	States    int    `json:"states,omitempty"`
	WallNS    int64  `json:"wall_ns"`
	// Outcome is "ok", "aborted", "cached", "shed", "bad_request",
	// "error", "draining" or "method".
	Outcome  string `json:"outcome"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// RunID is the content address of the requested work (set as soon as
	// the request resolves, so cache hits and executed runs share it).
	// It joins this line with the run's ledger entry and trace dump.
	RunID string `json:"run_id,omitempty"`
	// QueueWaitNS is how long the job sat admitted-but-not-started
	// (0 for requests that never reached the queue).
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
}

// accessLogger serializes JSON-lines access entries onto one writer.
// Handlers run concurrently, so every write takes the mutex; a nil
// logger (logging disabled) makes log a no-op.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(e *accessEntry) {
	if l == nil {
		return
	}
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}
