package server

import (
	"testing"

	"repro/internal/obs/trace"
)

// BenchmarkDisabledTraceHotPath pins the untraced cost of the job
// lifecycle call sites: a nil emitter and a nil track must stay
// allocation-free (the zero-alloc gate in scripts/check.sh greps for
// 0 allocs/op).
func BenchmarkDisabledTraceHotPath(b *testing.B) {
	var jt *jobTraceEmitter
	var tk *trace.Track
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jt.emit("ckpt_save", int64(i))
		jt.emit("slice_begin", int64(i))
		tk.Job(0, int64(i))
	}
}
