// Package server is the long-running verification service: an HTTP
// front end over the verify façade with admission control (a bounded
// worker pool and queue, request shedding), per-request deadlines wired
// to the engines' cooperative cancellation, and a content-addressed LRU
// cache of completed results.
//
// The intended shutdown order is Drain (new work answers 503), then
// http.Server.Shutdown (in-flight handlers finish), then Close (workers
// drain the queue and exit). Close implies Drain, so a bare Close is
// safe too — it just sheds less politely.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/verify"
)

// Config sets the service's capacity limits. Zero values mean defaults.
type Config struct {
	// Workers is the number of concurrent verifications (default
	// GOMAXPROCS). Each admitted request occupies one worker for its
	// whole run, so this bounds CPU and memory, not just goroutines.
	Workers int
	// QueueDepth is how many admitted-but-not-started requests may wait
	// (default 2*Workers). Beyond that the service sheds with 429.
	QueueDepth int
	// MaxStates caps every request's explicit state bound: requests
	// asking for more (or for "unlimited", 0) are clamped down to it.
	// 0 leaves request bounds alone.
	MaxStates int
	// Reduce force-enables the structural reduction pre-pass for every
	// request (composed as req.Reduce || cfg.Reduce, so requests can
	// still opt in individually when this is off). Reduction keys the
	// result cache, so forced and unforced runs never share entries.
	Reduce bool
	// DefaultTimeout is the wall-clock budget of requests that do not
	// ask for one (default 10s); MaxTimeout is the ceiling any request
	// can ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheBytes is the result cache budget (default 16 MiB; negative
	// disables caching).
	CacheBytes int64
	// Metrics receives the server.* and engine metrics (default: a
	// fresh registry, available via Metrics()).
	Metrics *obs.Registry
	// AccessLog, if non-nil, receives one JSON line per /v1/verify
	// request: request ID, HTTP code, engine, net, check, states
	// explored, wall time and outcome. Writes are serialized
	// internally, so any io.Writer works. Nil disables access logging.
	AccessLog io.Writer
	// TraceSink, if non-nil, enables per-request flight recording:
	// every admitted verification runs under its own tracer (ring
	// capacity TraceEvents) and, when the request deadline or a client
	// disconnect aborts the run, the sink receives the request ID and
	// the recorded event tail. Completed runs are not dumped. Called
	// from worker goroutines; must be safe for concurrent use.
	TraceSink func(id string, d *trace.Dump)
	// TraceEvents is the per-track ring capacity of per-request tracers
	// (0 = trace.DefaultCap). Only read when TraceSink is set.
	TraceEvents int
	// TracePath, if set, maps a request ID to the path TraceSink will
	// write its dump to, so the run's ledger entry can point at it. Only
	// consulted for aborted runs with a TraceSink configured.
	TracePath func(id string) string
	// TraceRuns, when positive, retains the flight-recorder dump of the
	// last N runs in memory (keyed by run ID) and serves them — fanned
	// out to cluster peers for distributed runs — on
	// GET /v1/runs/{id}/trace. Tracing is enabled for every run when
	// either TraceRuns or TraceSink is set; results stay bit-identical
	// (the recorder is passive) and disabled tracing stays free.
	TraceRuns int
	// Ledger, if non-nil, receives one entry per executed verification
	// (cache hits are not runs and are not journaled). The ledger also
	// backs the completed half of GET /v1/runs. Nil disables journaling;
	// the live-run endpoints still work.
	Ledger *ledger.Log
	// ProgressEvery and ProgressInterval set the throttle of the per-run
	// progress stream feeding GET /v1/runs/{id}/events: an update every
	// ProgressEvery units of engine work, or whenever ProgressInterval
	// has elapsed, whichever fires first (defaults 4096 and 200ms).
	// Streaming is passive — with no subscriber an update is one atomic
	// load, and results are bit-identical either way.
	ProgressEvery    int64
	ProgressInterval time.Duration
	// Jobs, if non-nil, enables durable asynchronous jobs (DESIGN.md
	// D11): POST /v1/jobs admits a verification that outlives the HTTP
	// request, checkpoints at engine boundaries, survives crashes via the
	// store's journal, and resumes bit-identically. The store directory
	// also holds the per-job ckpt/v1 checkpoint files.
	Jobs *jobs.Store
	// CkptInterval is the auto-checkpoint wall-clock cadence of running
	// jobs (default 30s; negative disables time-based auto-checkpoints).
	CkptInterval time.Duration
	// CkptEveryStates additionally auto-checkpoints a job every N newly
	// interned states (0 disables state-based auto-checkpoints).
	CkptEveryStates int
	// Cluster, if non-nil, makes this server a cluster member: the
	// cluster protocol endpoints (/cluster/v1/*) are mounted on the
	// handler, GET /v1/cluster reports membership and shard ranges,
	// requests with "cluster": true execute on the distributed sharded
	// explorer, and every request's result-cache lookup consults the
	// consistent-hash shared tier after missing locally.
	Cluster *cluster.Node
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 16 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.New()
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 4096
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 200 * time.Millisecond
	}
	if c.CkptInterval == 0 {
		c.CkptInterval = 30 * time.Second
	}
	return c
}

// Server is the verification service. Create with New, mount Handler on
// an http.Server, and Close when done.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	cache  *resultCache
	mux    *http.ServeMux
	traces *runTraceStore // retained dumps for /v1/runs/{id}/trace (nil = off)

	queue    chan *job
	wg       sync.WaitGroup
	draining atomic.Bool
	qmu      sync.RWMutex // guards closed vs. sends on queue
	closed   bool

	alog   *accessLogger
	idBase string // per-process prefix of generated request IDs
	idSeq  atomic.Uint64

	runsMu sync.Mutex          // guards runs
	runs   map[string]*liveRun // queued + running verifications by run ID

	jobsMu  sync.Mutex           // guards jobRuns
	jobRuns map[string]*asyncRun // queued + running async jobs by job ID

	requests, shed, aborts, failures, completed *obs.Counter
	ledgerErrors                                *obs.Counter
	queueDepth, inflight                        *obs.Gauge
	reqWall, queueWait                          *obs.Histogram

	// Jobs-mode metrics, registered only when cfg.Jobs is set (nil and
	// untouched otherwise — every use is behind a jobs-only code path).
	jobsSubmitted, jobsResumed, jobsDone, jobsFailed *obs.Counter
	jobsCanceled, jobsCheckpointed                   *obs.Counter
	ckptSaves, ckptSaveErrors, ckptBytes             *obs.Counter
	jobsTraceEvents                                  *obs.Counter
	ckptLoads, ckptLoadErrors                        *obs.Counter
	jobsActive                                       *obs.Gauge

	// traceRuns gauges the retained-dump count; registered only when
	// cfg.TraceRuns is set.
	traceRuns *obs.Gauge
}

// New starts a Server's worker pool and returns it ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		reg:          cfg.Metrics,
		queue:        make(chan *job, cfg.QueueDepth),
		alog:         newAccessLogger(cfg.AccessLog),
		idBase:       strconv.FormatInt(time.Now().UnixNano(), 36),
		runs:         make(map[string]*liveRun),
		requests:     cfg.Metrics.Counter("server.requests"),
		shed:         cfg.Metrics.Counter("server.shed"),
		aborts:       cfg.Metrics.Counter("server.aborted"),
		failures:     cfg.Metrics.Counter("server.errors"),
		completed:    cfg.Metrics.Counter("server.done"),
		ledgerErrors: cfg.Metrics.Counter("server.ledger_errors"),
		queueDepth:   cfg.Metrics.Gauge("server.queue_depth"),
		inflight:     cfg.Metrics.Gauge("server.inflight"),
		reqWall:      cfg.Metrics.Histogram("server.request_wall_ns"),
		queueWait:    cfg.Metrics.Histogram("server.queue_wait_ns"),
	}
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes, cfg.Metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Cluster != nil {
		cfg.Cluster.Register(s.mux)
	}
	if cfg.TraceRuns > 0 {
		s.traces = newRunTraceStore(cfg.TraceRuns)
		s.traceRuns = cfg.Metrics.Gauge("server.trace_runs")
	}
	if cfg.Jobs != nil {
		s.jobRuns = make(map[string]*asyncRun)
		s.jobsSubmitted = cfg.Metrics.Counter("jobs.submitted")
		s.jobsResumed = cfg.Metrics.Counter("jobs.resumed")
		s.jobsDone = cfg.Metrics.Counter("jobs.done")
		s.jobsFailed = cfg.Metrics.Counter("jobs.failed")
		s.jobsCanceled = cfg.Metrics.Counter("jobs.canceled")
		s.jobsCheckpointed = cfg.Metrics.Counter("jobs.checkpointed")
		s.jobsActive = cfg.Metrics.Gauge("jobs.active")
		s.jobsTraceEvents = cfg.Metrics.Counter("jobs.trace_events")
		s.ckptSaves = cfg.Metrics.Counter("ckpt.saves")
		s.ckptSaveErrors = cfg.Metrics.Counter("ckpt.save_errors")
		s.ckptBytes = cfg.Metrics.Counter("ckpt.bytes")
		s.ckptLoads = cfg.Metrics.Counter("ckpt.loads")
		s.ckptLoadErrors = cfg.Metrics.Counter("ckpt.load_errors")
		s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
		s.mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleJobResume)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry the service (and its engines) report to.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Drain makes the service refuse new verification requests with 503
// while letting queued and running ones finish. Health checks report
// "draining" so load balancers rotate the instance out.
func (s *Server) Drain() { s.draining.Store(true) }

// Close drains, waits for the queue to empty and all workers to exit.
// Call after http.Server.Shutdown so no handler is mid-enqueue.
func (s *Server) Close() {
	s.Drain()
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	s.wg.Wait()
}

// enqueue tries to admit a job without blocking. False means the queue
// is full or the service is closing — the caller sheds the request.
func (s *Server) enqueue(j *job) bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- j:
		s.queueDepth.Add(1)
		return true
	default:
		return false
	}
}

// worker runs admitted verifications until the queue closes. The
// request deadline and the client's disconnect both flow into the
// engine through one derived context.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueDepth.Add(-1)
		j.queueWaitNS = nowUnixNS() - j.enqNS
		s.queueWait.Observe(j.queueWaitNS)
		s.inflight.Add(1)
		if j.jr != nil {
			s.runAsyncJob(j)
		} else {
			s.runJob(j)
		}
		s.inflight.Add(-1)
		s.completed.Inc()
	}
}

func (s *Server) runJob(j *job) {
	lr := j.lr
	startNS := nowUnixNS()
	lr.startNS.Store(startNS)
	ctx, cancel := context.WithTimeout(j.ctx, j.req.timeout)
	defer cancel()
	opts := j.req.opts
	opts.Ctx = ctx
	// The engine reports into the run's own registry so the ledger entry
	// and /v1/runs/{id} carry this run's numbers; the epilogue folds them
	// into the process registry that /metrics serves.
	opts.Metrics = lr.reg
	// Progress feeds the run's SSE publisher. Engines tick this once per
	// unit of work already; the throttle bounds the event rate and the
	// publisher's no-subscriber fast path keeps an unwatched run free.
	prog := &obs.Progress{
		Label:    lr.runID,
		Every:    s.cfg.ProgressEvery,
		Interval: s.cfg.ProgressInterval,
		Report:   lr.pub.Publish,
	}
	opts.Progress = prog
	tr := s.newRunTracer(j, lr, &opts)

	// Cluster-flagged runs swap reach.Explore for the distributed
	// sharded explorer; results are bit-identical, so nothing downstream
	// (cache key, ledger verdict) changes with the execution mode.
	if j.req.cluster && s.cfg.Cluster != nil {
		opts.Explorer = s.cfg.Cluster.Explore
	}

	var (
		rep *verify.Report
		err error
	)
	if j.req.check == CheckSafety {
		rep, err = verify.CheckSafety(j.req.net, j.req.bad, opts)
	} else {
		rep, err = verify.CheckDeadlock(j.req.net, opts)
	}
	endNS := nowUnixNS()

	var resp *Response
	tracePath := ""
	if err != nil {
		s.failures.Inc()
	} else {
		resp = responseOf(j.req, rep)
		if resp.Status == StatusAborted {
			s.aborts.Inc()
			// A deadline or disconnect killed the run mid-flight: dump
			// the flight recorder so the abort is diagnosable after the
			// fact, and point the ledger entry at the dump.
			if tr != nil && s.cfg.TraceSink != nil {
				s.cfg.TraceSink(j.id, tr.Dump())
				if s.cfg.TracePath != nil {
					tracePath = s.cfg.TracePath(j.id)
				}
			}
		} else if resp.Complete {
			// Only complete, uncancelled results are cacheable: partial
			// statistics depend on where the deadline happened to land.
			s.cache.put(j.req.key, resp)
		}
	}
	// Settle the shared tier's single-flight lease: publish a complete
	// result so blocked peers wake with it, or release so they compute
	// themselves. Peers is stamped after the puts — the cached bytes are
	// identical however the run was computed.
	if j.req.lease {
		runID := j.req.key.RunID()
		if err == nil && resp != nil && resp.Status == StatusOK && resp.Complete {
			if b, merr := json.Marshal(resp); merr == nil {
				if perr := s.cfg.Cluster.PutResult(runID, b); perr != nil {
					s.cfg.Cluster.ReleaseResult(runID)
				}
			} else {
				s.cfg.Cluster.ReleaseResult(runID)
			}
		} else {
			s.cfg.Cluster.ReleaseResult(runID)
		}
	}
	if j.req.cluster && resp != nil {
		j.peers = s.cfg.Cluster.NumPeers()
		resp.Peers = j.peers
	}
	tracePeers := s.retainTrace(j, lr, tr)

	// Introspection epilogue, strictly ordered: final response stored
	// (so the SSE terminal event has a verdict), final progress update
	// published, stream closed, journal appended, per-run metrics folded
	// into the process registry, live registration dropped — all before
	// the handler wakes, so a client that saw the response also sees the
	// run's history.
	lr.finish(resp, err)
	prog.Done()
	lr.pub.Close()
	if lerr := s.cfg.Ledger.Append(ledgerEntryOf(j, lr, resp, err, startNS, endNS, tracePath, tracePeers)); lerr != nil {
		s.ledgerErrors.Inc()
	}
	s.reg.Merge(lr.reg)
	s.deregisterRun(lr)
	if err != nil {
		j.done <- jobResult{err: err}
		return
	}
	j.done <- jobResult{resp: resp}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	start := time.Now()
	id := s.requestID(r.Header.Get(requestIDHeader))
	w.Header().Set(requestIDHeader, id)
	entry := &accessEntry{RequestID: id}
	defer func() {
		entry.WallNS = time.Since(start).Nanoseconds()
		s.reqWall.Observe(entry.WallNS)
		s.alog.log(entry)
	}()
	fail := func(code int, outcome, msg string) {
		entry.Code, entry.Outcome = code, outcome
		writeJSON(w, code, errorBody{Error: msg})
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, "draining", "draining")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	pr, err := s.parseRequest(&req)
	if err != nil {
		var bre *badRequestError
		if errors.As(err, &bre) {
			fail(http.StatusBadRequest, "bad_request", bre.msg)
		} else {
			fail(http.StatusInternalServerError, "error", err.Error())
		}
		return
	}
	entry.Engine = pr.opts.Engine.String()
	entry.Net = pr.net.Name()
	entry.Check = pr.check
	// The run ID is the content address of the work itself, so the cache
	// hit and the run that populated it share the ID — the access log
	// joins them without any extra bookkeeping.
	entry.RunID = pr.key.RunID()
	if resp, ok := s.cache.get(pr.key); ok {
		entry.Code, entry.Outcome = http.StatusOK, "cached"
		entry.CacheHit = true
		entry.States = resp.States
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Local miss: consult the cluster's shared result tier. A hit is a
	// result some peer already computed; "compute" hands this request
	// the owner's single-flight lease (settled by the worker). Transport
	// errors degrade to an ordinary local computation without a lease.
	if s.cfg.Cluster != nil {
		if data, hit, err := s.cfg.Cluster.AcquireResult(r.Context(), pr.key.RunID(), pr.timeout); err == nil {
			if hit {
				var resp Response
				if jerr := json.Unmarshal(data, &resp); jerr == nil {
					s.cache.put(pr.key, &resp)
					resp.Cached = true
					entry.Code, entry.Outcome = http.StatusOK, "cached"
					entry.CacheHit = true
					entry.States = resp.States
					writeJSON(w, http.StatusOK, &resp)
					return
				}
			} else {
				pr.lease = true
			}
		}
	}
	j := &job{ctx: r.Context(), id: id, req: pr, done: make(chan jobResult, 1), enqNS: nowUnixNS()}
	j.lr = &liveRun{
		runID:  pr.key.RunID(),
		reqID:  id,
		net:    pr.net.Name(),
		engine: pr.opts.Engine.String(),
		check:  pr.check,
		enqNS:  j.enqNS,
		pub:    obs.NewPublisher(),
		reg:    obs.New(),
	}
	s.registerRun(j.lr)
	if !s.enqueue(j) {
		s.deregisterRun(j.lr)
		j.lr.pub.Close()
		if pr.lease {
			s.cfg.Cluster.ReleaseResult(pr.key.RunID())
		}
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, "shed", "over capacity, retry later")
		return
	}
	// The worker always answers, even for a disconnected client (the
	// engine aborts via the context and the response write just fails),
	// so a plain receive cannot leak.
	res := <-j.done
	entry.QueueWaitNS = j.queueWaitNS
	if res.err != nil {
		fail(http.StatusUnprocessableEntity, "error", res.err.Error())
		return
	}
	entry.Code, entry.Outcome = http.StatusOK, res.resp.Status
	entry.States = res.resp.States
	writeJSON(w, http.StatusOK, res.resp)
}

// clusterStatusBody is the GET /v1/cluster document.
type clusterStatusBody struct {
	Enabled bool `json:"enabled"`
	*cluster.Status
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	body := clusterStatusBody{}
	if s.cfg.Cluster != nil {
		body.Enabled = true
		body.Status = s.cfg.Cluster.Status()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
