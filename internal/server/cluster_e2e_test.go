package server_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// clusterFleet is a set of full gpod servers, each a cluster member.
type clusterFleet struct {
	urls    []string
	svcs    []*server.Server
	regs    []*obs.Registry
	clients []*client.Client
}

// startFleet boots n complete gpod servers on loopback listeners, each
// with its own cluster.Node over the shared membership list. Listeners
// come first: the membership URLs must exist before any Node does.
func startFleet(t *testing.T, n int) *clusterFleet {
	t.Helper()
	listeners := make([]net.Listener, n)
	f := &clusterFleet{
		urls:    make([]string, n),
		svcs:    make([]*server.Server, n),
		regs:    make([]*obs.Registry, n),
		clients: make([]*client.Client, n),
	}
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		f.urls[i] = "http://" + l.Addr().String()
	}
	for i := range listeners {
		f.regs[i] = obs.New()
		nd, err := cluster.New(cluster.Config{Self: f.urls[i], Peers: f.urls, Metrics: f.regs[i]})
		if err != nil {
			t.Fatal(err)
		}
		f.svcs[i] = server.New(server.Config{Workers: 2, Metrics: f.regs[i], Cluster: nd})
		hs := &http.Server{Handler: f.svcs[i].Handler()}
		go hs.Serve(listeners[i]) //nolint:errcheck
		t.Cleanup(func() { hs.Close() })
		f.clients[i] = client.New(f.urls[i], http.DefaultClient)
	}
	t.Cleanup(func() {
		for _, svc := range f.svcs {
			svc.Close()
		}
	})
	return f
}

// reachStates reads a fleet member's process-total reach.states counter.
func (f *clusterFleet) reachStates(i int) int64 {
	return f.regs[i].Snapshot().Counters["reach.states"]
}

// TestE2ESharedTierNoRecompute pins the cluster's shared result cache:
// a verification computed on peer A answers the identical request on
// peer B from the shared tier — Cached, same verdict, and without B (or
// anyone) exploring a single state again.
func TestE2ESharedTierNoRecompute(t *testing.T) {
	f := startFleet(t, 3)
	ctx := context.Background()
	req := &server.Request{Model: "nsdp", Size: 6, Engine: "exhaustive", Cluster: true}

	first, err := f.clients[0].Verify(ctx, req)
	if err != nil {
		t.Fatalf("verify on peer 0: %v", err)
	}
	if first.Cached {
		t.Fatal("first request reported Cached")
	}
	if !first.Complete || first.States != 5778 {
		t.Fatalf("nsdp(6) = %d states (complete=%v), want 5778", first.States, first.Complete)
	}
	if first.Peers != 3 {
		t.Fatalf("first.Peers = %d, want 3", first.Peers)
	}

	before := make([]int64, 3)
	for i := range before {
		before[i] = f.reachStates(i)
	}

	second, err := f.clients[1].Verify(ctx, req)
	if err != nil {
		t.Fatalf("verify on peer 1: %v", err)
	}
	if !second.Cached {
		t.Fatal("identical request on another peer was not served from the shared tier")
	}
	for i := range before {
		if after := f.reachStates(i); after != before[i] {
			t.Errorf("peer %d explored %d states answering a shared-tier hit", i, after-before[i])
		}
	}

	// The served copy must be the computed result byte-for-byte, modulo
	// the serving-time decorations (Cached; Peers is original-run-only).
	a, b := *first, *second
	a.Cached, b.Cached = false, false
	a.Peers, b.Peers = 0, 0
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("shared-tier copy differs from the computed result:\n  computed: %s\n  served:   %s", aj, bj)
	}
	if second.Peers != 0 {
		t.Errorf("cached copy carries Peers=%d; the stamp is original-run-only", second.Peers)
	}

	// The hit is visible in the tier's instrumentation on the peer that
	// asked (remote hit) — wherever the key's owner is.
	var remoteHits int64
	for _, reg := range f.regs {
		remoteHits += reg.Snapshot().Counters["cluster.remote_cache_hits"]
	}
	if remoteHits < 1 {
		t.Errorf("cluster.remote_cache_hits = %d across the fleet, want >= 1", remoteHits)
	}
}

// TestE2EClusterRejectsBadRequests pins the admission rules: cluster
// execution needs a clustered server and the exhaustive engine.
func TestE2EClusterRejectsBadRequests(t *testing.T) {
	f := startFleet(t, 2)
	ctx := context.Background()
	if _, err := f.clients[0].Verify(ctx, &server.Request{Model: "rw", Size: 4, Engine: "gpo", Cluster: true}); err == nil {
		t.Error("cluster + gpo engine was accepted; want 400")
	}

	plain := server.New(server.Config{Workers: 1})
	defer plain.Close()
	// No listener needed — parseRequest rejects before any work happens,
	// so exercise it through the handler via a recorded request.
	hs := startHTTP(t, plain)
	if _, err := client.New(hs, http.DefaultClient).Verify(ctx, &server.Request{Model: "rw", Size: 4, Engine: "exhaustive", Cluster: true}); err == nil {
		t.Error("cluster request on a peerless server was accepted; want 400")
	}
}

// startHTTP serves a Server's handler on a loopback listener and
// returns its base URL.
func startHTTP(t *testing.T, svc *server.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(l) //nolint:errcheck
	t.Cleanup(func() { hs.Close() })
	return "http://" + l.Addr().String()
}
