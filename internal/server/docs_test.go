package server_test

import (
	"context"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// metricToken matches a documented metric name after brace expansion:
// at least one dot-separated snake_case segment pair.
var metricToken = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// codeSpan pulls the backtick-quoted tokens out of the markdown.
var codeSpan = regexp.MustCompile("`([^`]+)`")

// expandBraces expands `zdd.unique_{hits,misses}`-style shorthands into
// their members; tokens without braces pass through unchanged.
func expandBraces(tok string) []string {
	i := strings.Index(tok, "{")
	if i < 0 {
		return []string{tok}
	}
	j := strings.Index(tok[i:], "}")
	if j < 0 {
		return []string{tok}
	}
	j += i
	var out []string
	for _, alt := range strings.Split(tok[i+1:j], ",") {
		out = append(out, expandBraces(tok[:i]+alt+tok[j+1:])...)
	}
	return out
}

// documentedMetricNames collects every metric-shaped backtick token in
// the markdown, brace shorthands expanded.
func documentedMetricNames(doc string) map[string]bool {
	names := make(map[string]bool)
	for _, m := range codeSpan.FindAllStringSubmatch(doc, -1) {
		for _, tok := range expandBraces(m[1]) {
			if metricToken.MatchString(tok) {
				names[tok] = true
			}
		}
	}
	return names
}

// TestRuntimeMetricsDocumented is the drift check: every server.*,
// reach.*, zdd.*, reduce.* and cluster.* metric the running service
// actually registers must appear in OBSERVABILITY.md's tables, so the
// doc cannot silently rot as instrumentation grows. The workload covers
// the sequential and parallel explicit engines, the ZDD-backed GPO
// engine, the result cache (hit + miss), a reduced run on a net every
// reduction rule fires on, and a 3-peer cluster run (which also sweeps
// the shared result tier), which together register every metric in
// those namespaces.
func TestRuntimeMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	documented := documentedMetricNames(string(doc))
	if len(documented) < 20 {
		t.Fatalf("only %d documented metric names parsed — extraction broken?", len(documented))
	}

	// Peers need routable URLs before their Nodes exist, so bind the
	// listeners first and build the membership list from their ports.
	const nPeers = 3
	listeners := make([]net.Listener, nPeers)
	peers := make([]string, nPeers)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}

	reg := obs.New()
	node0, err := cluster.New(cluster.Config{Self: peers[0], Peers: peers, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := server.New(server.Config{Workers: 1, Metrics: reg, Cluster: node0, Jobs: st})
	httpSrvs := make([]*http.Server, nPeers)
	httpSrvs[0] = &http.Server{Handler: svc.Handler()}
	for i := 1; i < nPeers; i++ {
		nd, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers, Metrics: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		nd.Register(mux)
		httpSrvs[i] = &http.Server{Handler: mux}
	}
	for i, hs := range httpSrvs {
		go hs.Serve(listeners[i]) //nolint:errcheck
	}
	defer func() {
		for _, hs := range httpSrvs {
			hs.Close()
		}
		svc.Close()
	}()

	c := client.New(peers[0], http.DefaultClient)
	ctx := context.Background()
	for _, req := range []*server.Request{
		{Model: "nsdp", Size: 4, Engine: "exhaustive"},             // reach.* (sequential)
		{Model: "nsdp", Size: 4, Engine: "exhaustive", Workers: 2}, // reach.* (parallel shards)
		{Model: "nsdp", Size: 4, Engine: "exhaustive"},             // server.cache_hits
		{Model: "nsdp", Size: 4, Engine: "gpo"},                    // zdd.* via core.StatsReporter
		{Model: "rw", Size: 6, Engine: "gpo", Reduce: true},        // reduce.* (rw reduces hard)
		// cluster.* — a fresh key, so the shared-tier miss routes it to
		// the distributed explorer rather than the result cache.
		{Model: "rw", Size: 8, Engine: "exhaustive", Cluster: true},
	} {
		if _, err := c.Verify(ctx, req); err != nil {
			t.Fatalf("verify %+v: %v", req, err)
		}
	}

	// jobs.* and ckpt.* — one durable job through submit → done.
	jb, err := c.SubmitJob(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "gpo", Check: "deadlock", StopAtFirst: true})
	if err != nil {
		t.Fatalf("submit job: %v", err)
	}
	waitJob(t, c, jb.ID, jobs.Done)

	snap := reg.Snapshot()
	var runtimeNames []string
	for name := range snap.Counters {
		runtimeNames = append(runtimeNames, name)
	}
	for name := range snap.Gauges {
		runtimeNames = append(runtimeNames, name)
	}
	for name := range snap.Histograms {
		runtimeNames = append(runtimeNames, name)
	}
	checked := 0
	for _, name := range runtimeNames {
		switch {
		case strings.HasPrefix(name, "server."),
			strings.HasPrefix(name, "reach."),
			strings.HasPrefix(name, "zdd."),
			strings.HasPrefix(name, "reduce."),
			strings.HasPrefix(name, "cluster."),
			strings.HasPrefix(name, "jobs."),
			strings.HasPrefix(name, "ckpt."):
			checked++
			if !documented[name] {
				t.Errorf("runtime metric %q is not documented in OBSERVABILITY.md", name)
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d server./reach./zdd./reduce. metrics registered — workload too thin for a drift check", checked)
	}
}
