package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startService boots a Server on a random loopback port and returns a
// client for it plus the registry, tearing everything down (and
// checking for leaked goroutines) when the test ends.
func startService(t *testing.T, cfg server.Config) (*client.Client, *obs.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	before := runtime.NumGoroutine()
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Drain()
		ts.Close() // waits for in-flight handlers, closes idle conns
		svc.Close()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("goroutine leak: %d before, %d after shutdown", before, after)
		}
	})
	return client.New(ts.URL, ts.Client()), cfg.Metrics
}

// TestE2ECacheServesRepeatedRequest is the acceptance pairing from the
// issue: an identical repeated small request is served from the cache —
// the hit counter increments and no second exploration runs (pinned by
// the engine's own reach.states counter staying put).
func TestE2ECacheServesRepeatedRequest(t *testing.T) {
	c, reg := startService(t, server.Config{Workers: 2})
	ctx := context.Background()
	req := &server.Request{Model: "nsdp", Size: 4, Engine: "exhaustive"}

	first, err := c.Verify(ctx, req)
	if err != nil {
		t.Fatalf("first request: %v", err)
	}
	if first.Status != server.StatusOK || !first.Complete || first.Cached {
		t.Fatalf("first request: %+v", first)
	}
	if first.States != 322 { // |RG(NSDP(4))|, pinned by the Table 1 suite
		t.Fatalf("first request explored %d states, want 322", first.States)
	}
	snap := reg.Snapshot()
	if snap.Counters["reach.states"] != 322 {
		t.Fatalf("reach.states = %d after one run, want 322", snap.Counters["reach.states"])
	}
	if snap.Counters["server.cache_hits"] != 0 || snap.Counters["server.cache_misses"] != 1 {
		t.Fatalf("cache counters after miss: %+v", snap.Counters)
	}

	second, err := c.Verify(ctx, req)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	if !second.Cached {
		t.Fatalf("second identical request not served from cache: %+v", second)
	}
	if second.States != first.States || second.Deadlock != first.Deadlock {
		t.Fatalf("cached response differs: %+v vs %+v", second, first)
	}
	snap = reg.Snapshot()
	if snap.Counters["reach.states"] != 322 {
		t.Fatalf("reach.states = %d after cached request, want 322 (no second exploration)",
			snap.Counters["reach.states"])
	}
	if snap.Counters["server.cache_hits"] != 1 {
		t.Fatalf("server.cache_hits = %d, want 1", snap.Counters["server.cache_hits"])
	}

	// A different engine is a different content address, not a hit.
	third, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "gpo"})
	if err != nil {
		t.Fatalf("third request: %v", err)
	}
	if third.Cached {
		t.Fatal("different engine served from cache")
	}
}

// TestE2EDeadlineAbortsNSDP10 is the other acceptance half: a
// deadline-limited nsdp(10) request aborts mid-exploration and answers
// with partial statistics, and the aborted result is never cached.
func TestE2EDeadlineAbortsNSDP10(t *testing.T) {
	const full = 1860498 // |RG(NSDP(10))|
	c, reg := startService(t, server.Config{Workers: 2})
	ctx := context.Background()
	req := &server.Request{Model: "nsdp", Size: 10, Engine: "exhaustive", TimeoutMS: 50}

	resp, err := c.Verify(ctx, req)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if resp.Status != server.StatusAborted {
		t.Skipf("nsdp(10) completed within 50ms on this machine: %+v", resp)
	}
	if resp.Complete || resp.Cached {
		t.Fatalf("aborted response: %+v", resp)
	}
	if resp.States <= 0 || resp.States >= full {
		t.Fatalf("aborted with %d states, want partial progress in (0, %d)", resp.States, full)
	}
	if got := reg.Snapshot().Counters["server.aborted"]; got != 1 {
		t.Fatalf("server.aborted = %d, want 1", got)
	}

	again, err := c.Verify(ctx, req)
	if err != nil {
		t.Fatalf("second verify: %v", err)
	}
	if again.Cached {
		t.Fatal("aborted result was served from the cache")
	}
}

// TestE2ESheddingUnderLoad fills the one-worker one-slot service with
// slow jobs and checks the next request is shed with 429 immediately.
func TestE2ESheddingUnderLoad(t *testing.T) {
	c, reg := startService(t, server.Config{Workers: 1, QueueDepth: 1})
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	slow := &server.Request{Model: "nsdp", Size: 10, Engine: "exhaustive", TimeoutMS: 30_000}

	// Occupy the worker and the queue slot. The requests run until we
	// cancel them (client disconnect aborts the engine).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Verify(slowCtx, slow)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := reg.Snapshot()
		if snap.Gauges["server.inflight"] == 1 && snap.Gauges["server.queue_depth"] == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if snap.Gauges["server.inflight"] != 1 || snap.Gauges["server.queue_depth"] != 1 {
		cancelSlow()
		wg.Wait()
		t.Fatalf("service never saturated: %+v", snap.Gauges)
	}

	_, err := c.Verify(context.Background(),
		&server.Request{Model: "nsdp", Size: 2, Engine: "gpo"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		cancelSlow()
		wg.Wait()
		t.Fatalf("request against a full service: err=%v, want 429", err)
	}
	if got := reg.Snapshot().Counters["server.shed"]; got != 1 {
		t.Errorf("server.shed = %d, want 1", got)
	}

	cancelSlow() // disconnect the slow clients; the engine aborts promptly
	wg.Wait()
}

// TestE2EDrainRefusesNewWork covers the shutdown surface: after Drain,
// health reports draining and verification requests answer 503.
func TestE2EDrainRefusesNewWork(t *testing.T) {
	cfg := server.Config{Workers: 1, Metrics: obs.New()}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	if status, err := c.Healthz(ctx); err != nil || status != "ok" {
		t.Fatalf("healthz: %q, %v", status, err)
	}
	if _, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 2}); err != nil {
		t.Fatalf("verify before drain: %v", err)
	}

	svc.Drain()
	if status, err := c.Healthz(ctx); err != nil || status != "draining" {
		t.Fatalf("healthz after drain: %q, %v", status, err)
	}
	_, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 2})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify after drain: err=%v, want 503", err)
	}
}

// TestE2EBadRequests pins the 400 surface: resolution and validation
// failures are the client's fault and say why.
func TestE2EBadRequests(t *testing.T) {
	c, _ := startService(t, server.Config{Workers: 1})
	ctx := context.Background()
	cases := []struct {
		name string
		req  *server.Request
	}{
		{"no-net-no-model", &server.Request{}},
		{"both-net-and-model", &server.Request{Net: "net n\nplace p *\n", Model: "nsdp", Size: 2}},
		{"bad-engine", &server.Request{Model: "nsdp", Size: 2, Engine: "quantum"}},
		{"bad-model", &server.Request{Model: "nope", Size: 2}},
		{"bad-pn-text", &server.Request{Net: "place before net\n"}},
		{"negative-workers", &server.Request{Model: "nsdp", Size: 2, Workers: -1}},
		{"bad-check", &server.Request{Model: "nsdp", Size: 2, Check: "liveness"}},
		{"safety-without-bad", &server.Request{Model: "nsdp", Size: 2, Check: server.CheckSafety}},
		{"unknown-bad-place", &server.Request{Model: "nsdp", Size: 2, Check: server.CheckSafety, Bad: []string{"zap"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Verify(ctx, tc.req)
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
				t.Fatalf("err = %v, want 400", err)
			}
			if ae.Message == "" {
				t.Fatal("400 without a reason")
			}
		})
	}
}

// TestE2EInlineNetAndSafety runs a pnio-text net end to end, both
// checks, exercising witness naming over the wire.
func TestE2EInlineNetAndSafety(t *testing.T) {
	c, _ := startService(t, server.Config{Workers: 1})
	ctx := context.Background()
	const pn = `net toy
place a *
place b
place c
trans ab : a -> b
trans ac : a -> c
`
	dead, err := c.Verify(ctx, &server.Request{Net: pn, Engine: "gpo"})
	if err != nil {
		t.Fatalf("deadlock check: %v", err)
	}
	if !dead.Deadlock || len(dead.Witness) == 0 {
		t.Fatalf("toy net must deadlock with a witness: %+v", dead)
	}
	safe, err := c.Verify(ctx, &server.Request{
		Net: pn, Engine: "exhaustive", Check: server.CheckSafety, Bad: []string{"b", "c"},
	})
	if err != nil {
		t.Fatalf("safety check: %v", err)
	}
	if safe.Deadlock {
		t.Fatalf("b and c are alternatives, never both marked: %+v", safe)
	}
	if safe.Net != "toy" || safe.Check != server.CheckSafety {
		t.Fatalf("response metadata: %+v", safe)
	}
}

// TestE2EMaxStatesClamp checks the server-side admission cap: a request
// asking for an unlimited search on a capped server is clamped to the
// server's bound and overruns it, answering 422 with the engine's
// limit error rather than burning through 5778 states.
func TestE2EMaxStatesClamp(t *testing.T) {
	c, reg := startService(t, server.Config{Workers: 1, MaxStates: 100})
	_, err := c.Verify(context.Background(),
		&server.Request{Model: "nsdp", Size: 6, Engine: "exhaustive"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("verify on a capped server: err=%v, want 422", err)
	}
	if !strings.Contains(ae.Message, "state limit") {
		t.Fatalf("422 message %q does not mention the state limit", ae.Message)
	}
	if got := reg.Snapshot().Counters["reach.states"]; got > 101 {
		t.Fatalf("explored %d states despite the 100-state cap", got)
	}
}
