package server

import (
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/verify"
)

func mustNet(t *testing.T, fam string, size int) *petri.Net {
	t.Helper()
	n, err := models.ByName(fam, size)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRequestKeyDiscriminates pins what the content address depends on:
// the net, the check, the bad set, and the result-determining options —
// and what it deliberately ignores: Workers (bit-identical results).
func TestRequestKeyDiscriminates(t *testing.T) {
	n4 := mustNet(t, "nsdp", 4)
	n6 := mustNet(t, "nsdp", 6)
	base := requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.GPO})

	distinct := map[string]cacheKey{
		"other-net":    requestKey(n6, CheckDeadlock, nil, verify.Options{Engine: verify.GPO}),
		"other-check":  requestKey(n4, CheckSafety, []petri.Place{0, 1}, verify.Options{Engine: verify.GPO}),
		"other-engine": requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.Exhaustive}),
		"stop-first":   requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.GPO, StopAtFirst: true}),
		"max-states":   requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.GPO, MaxStates: 10}),
		"proviso":      requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.GPO, Proviso: true}),
	}
	seen := map[cacheKey]string{base: "base"}
	for name, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}

	same := requestKey(n4, CheckDeadlock, nil, verify.Options{Engine: verify.GPO, Workers: 8})
	if same != base {
		t.Error("Workers changed the cache key; parallel results are bit-identical and must share it")
	}
	rebuilt := requestKey(mustNet(t, "nsdp", 4), CheckDeadlock, nil, verify.Options{Engine: verify.GPO})
	if rebuilt != base {
		t.Error("the same net built twice hashed differently")
	}
}

// TestCacheLRUEviction fills a small cache past its byte budget and
// checks cold entries fall out, recency is respected, and the obs
// counters track it all.
func TestCacheLRUEviction(t *testing.T) {
	reg := obs.New()
	// Budget for roughly 3 minimal entries (each ~300 bytes).
	c := newResultCache(1000, reg)
	key := func(i int) cacheKey {
		var k cacheKey
		k[0] = byte(i)
		return k
	}
	resp := func(i int) *Response {
		return &Response{Status: StatusOK, Net: fmt.Sprintf("n%d", i), Complete: true}
	}
	for i := 0; i < 3; i++ {
		c.put(key(i), resp(i))
	}
	if entries, _ := c.stats(); entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
	// Touch 0 so 1 is now the coldest, then overflow.
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	c.put(key(3), resp(3))
	if _, ok := c.get(key(1)); ok {
		t.Error("coldest entry 1 survived an over-budget insert")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.get(key(i)); !ok {
			t.Errorf("entry %d evicted, want kept", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache_evictions"] != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counters["server.cache_evictions"])
	}
	if _, bytes := c.stats(); bytes > 1000 {
		t.Errorf("cache holds %d bytes over its 1000-byte budget", bytes)
	}

	got, ok := c.get(key(2))
	if !ok || !got.Cached || got.Net != "n2" {
		t.Fatalf("get(2) = %+v, %v", got, ok)
	}
	if raw, _ := c.get(key(2)); raw == got {
		t.Error("get returned the same *Response twice; must copy")
	}
}

// TestCacheWitnessIsolation pins the deep-copy contract on both cache
// boundaries: a caller mutating the Response it put (or the copy it
// got) must never reach the stored entry. Without the copies, a
// mutated witness would silently change served results AND desync the
// byte accounting from entrySize's admission-time charge.
func TestCacheWitnessIsolation(t *testing.T) {
	c := newResultCache(1<<20, obs.New())
	orig := &Response{
		Status:   StatusOK,
		Net:      "w",
		Deadlock: true,
		Witness:  []string{"p0", "p1"},
		Complete: true,
	}
	c.put(cacheKey{7}, orig)
	_, bytesAtPut := c.stats()

	// Mutate the caller's Response after put — the lease-settle path in
	// runJob does exactly this kind of post-put decoration.
	orig.Witness[0] = "CLOBBERED-BY-CALLER-WITH-A-MUCH-LONGER-STRING"
	got, ok := c.get(cacheKey{7})
	if !ok {
		t.Fatal("entry missing")
	}
	if got.Witness[0] != "p0" || got.Witness[1] != "p1" {
		t.Fatalf("put did not deep-copy: cached witness = %v", got.Witness)
	}

	// Mutate the served copy — the next get must still be pristine.
	got.Witness[1] = "CLOBBERED-BY-READER"
	again, _ := c.get(cacheKey{7})
	if again.Witness[0] != "p0" || again.Witness[1] != "p1" {
		t.Fatalf("get did not deep-copy: second read = %v", again.Witness)
	}
	if _, bytesNow := c.stats(); bytesNow != bytesAtPut {
		t.Fatalf("byte accounting drifted: %d at put, %d now", bytesAtPut, bytesNow)
	}
}

// TestCacheOversizedEntryNotStored pins the "larger than the whole
// budget" guard.
func TestCacheOversizedEntryNotStored(t *testing.T) {
	c := newResultCache(100, obs.New())
	big := &Response{Status: StatusOK, Net: string(make([]byte, 200)), Complete: true}
	c.put(cacheKey{1}, big)
	if entries, _ := c.stats(); entries != 0 {
		t.Fatalf("oversized entry was cached (%d entries)", entries)
	}
}
