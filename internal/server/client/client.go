// Package client is a small Go client for the gpod verification
// service. It speaks the wire types of internal/server and surfaces
// non-2xx answers as typed *APIError values so callers can tell
// shedding (429) from draining (503) from bad requests (400).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// Client talks to one gpod instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8722"). A nil httpClient uses http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// APIError is a non-2xx answer from the service.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gpod: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Verify submits one verification request and waits for its result.
// Deadlines and cancellation on ctx propagate into the service, which
// aborts the exploration.
func (c *Client) Verify(ctx context.Context, req *server.Request) (*server.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp server.Response
	if err := c.do(ctx, http.MethodPost, "/v1/verify", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz returns the service's health status string: "ok", or
// "draining" (which the service reports with a 503 so load balancers
// rotate it out — not an error from this method).
func (c *Client) Healthz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil {
		return "", err
	}
	if out.Status == "" {
		return "", &APIError{StatusCode: resp.StatusCode, Message: "no status in healthz response"}
	}
	return out.Status, nil
}

// Metrics fetches the service's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		msg := resp.Status
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Job is one durable verification job (POST /v1/jobs): its journal
// record plus, while queued or running, the live-run status document.
type Job struct {
	jobs.Record
	Run json.RawMessage `json:"run,omitempty"`
}

// SubmitJob admits a durable asynchronous job. Submission is
// idempotent: the job ID is the content address of the work, so
// resubmitting returns the existing record (at whatever state it
// reached) instead of running twice.
func (c *Client) SubmitJob(ctx context.Context, req *server.Request) (*Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches one job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Jobs lists every job, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob stops a job at its next engine boundary, keeping any
// checkpoint so the job stays resumable.
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// ResumeJob re-admits a checkpointed, canceled or queued job.
func (c *Client) ResumeJob(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/resume", nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}
