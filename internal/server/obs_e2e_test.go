package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/server/client"
)

// syncBuffer is an access-log writer the test can read while handlers
// are still logging: the server serializes its writes, but reads from
// the test goroutine race them without this lock.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// dumpCollector is a TraceSink capturing abort dumps by request ID.
type dumpCollector struct {
	mu    sync.Mutex
	dumps map[string]*trace.Dump
}

func newDumpCollector() *dumpCollector {
	return &dumpCollector{dumps: make(map[string]*trace.Dump)}
}

func (c *dumpCollector) sink(id string, d *trace.Dump) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dumps[id] = d
}

func (c *dumpCollector) get(id string) *trace.Dump {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dumps[id]
}

// accessLine is the subset of the access-log schema the tests decode.
type accessLine struct {
	TS        string `json:"ts"`
	RequestID string `json:"request_id"`
	Code      int    `json:"code"`
	Engine    string `json:"engine"`
	Net       string `json:"net"`
	Check     string `json:"check"`
	States    int    `json:"states"`
	WallNS    int64  `json:"wall_ns"`
	Outcome   string `json:"outcome"`
	CacheHit  bool   `json:"cache_hit"`
}

// waitForLogLine polls the access log until a line for the given
// request ID appears: the handler writes its entry after the response
// body, so the client can be ahead of the log by a scheduling beat.
func waitForLogLine(t *testing.T, buf *syncBuffer, id string) accessLine {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		sc := bufio.NewScanner(strings.NewReader(buf.String()))
		for sc.Scan() {
			var line accessLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("unparseable access log line %q: %v", sc.Text(), err)
			}
			if line.RequestID == id {
				return line
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no access log line for request %q in %q", id, buf.String())
	return accessLine{}
}

// TestE2EAbortDumpJoinsAccessLog is the abort-path acceptance test: a
// deadline-limited nsdp(10) request aborts mid-exploration, the flight
// recorder's tail reaches the trace sink keyed by the same request ID
// that the response header echoes and the access log records, the tail
// is non-empty and parseable, and its last event is the abort marker.
func TestE2EAbortDumpJoinsAccessLog(t *testing.T) {
	logBuf := &syncBuffer{}
	dumps := newDumpCollector()
	cfg := server.Config{
		Workers:   1,
		Metrics:   obs.New(),
		AccessLog: logBuf,
		TraceSink: dumps.sink,
	}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	const id = "abort-join-1"
	body := `{"model":"nsdp","size":10,"engine":"exhaustive","timeout_ms":50}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	respBody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("verify: %d %s", hr.StatusCode, respBody)
	}
	if got := hr.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("X-Request-ID echoed as %q, want %q", got, id)
	}
	var resp server.Response
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatalf("response body: %v", err)
	}
	if resp.Status != server.StatusAborted {
		t.Skipf("nsdp(10) completed within 50ms on this machine: %+v", resp)
	}

	// The worker calls the sink before answering, so the dump is
	// already there once the client has the response.
	d := dumps.get(id)
	if d == nil {
		t.Fatalf("no trace dump for aborted request %q", id)
	}
	if got := d.Meta["request_id"]; got != id {
		t.Fatalf("dump meta request_id = %q, want %q", got, id)
	}
	if d.Meta["engine"] != "exhaustive" || d.Meta["check"] != server.CheckDeadlock {
		t.Fatalf("dump meta: %+v", d.Meta)
	}
	events, aborts := 0, 0
	for _, tk := range d.Tracks {
		events += len(tk.Events)
		for i, ev := range tk.Events {
			if ev.Kind == trace.KindAbort {
				aborts++
				if i != len(tk.Events)-1 {
					t.Errorf("track %q: abort event at %d of %d, want terminal",
						tk.Name, i, len(tk.Events))
				}
			}
		}
	}
	if events == 0 {
		t.Fatal("abort dump has no events")
	}
	if aborts != 1 {
		t.Fatalf("abort dump has %d abort events, want 1", aborts)
	}

	// The dump round-trips through the JSONL wire format (what gpod
	// -trace-dump writes and gpotrace reads).
	var wire bytes.Buffer
	if err := trace.WriteJSONL(&wire, d); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	back, err := trace.ReadDump(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	sum := trace.Summarize(back, 5)
	if !sum.Aborted || sum.AbortReason == "" {
		t.Fatalf("summary of the dump: aborted=%v reason=%q", sum.Aborted, sum.AbortReason)
	}
	if sum.States <= 0 {
		t.Fatalf("summary reconstructed %d states from an aborted run, want > 0", sum.States)
	}

	// The access log line joins on the same ID and reports the abort.
	line := waitForLogLine(t, logBuf, id)
	if line.Outcome != server.StatusAborted || line.Code != http.StatusOK {
		t.Fatalf("access log: %+v", line)
	}
	if line.Engine != "exhaustive" || line.Check != server.CheckDeadlock || line.Net != "NSDP(10)" {
		t.Fatalf("access log identity fields: %+v", line)
	}
	if line.States <= 0 || line.WallNS <= 0 || line.TS == "" {
		t.Fatalf("access log measurements: %+v", line)
	}
	if line.CacheHit {
		t.Fatalf("aborted first request marked as cache hit: %+v", line)
	}
}

// TestE2EAccessLogOutcomes pins the access log across the handler's
// exits: ok, cached, and bad_request, with server-generated IDs when
// the client names none (or an unusable one).
func TestE2EAccessLogOutcomes(t *testing.T) {
	logBuf := &syncBuffer{}
	cfg := server.Config{Workers: 1, Metrics: obs.New(), AccessLog: logBuf}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	post := func(id, body string) (string, *http.Response) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		hr, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
		return hr.Header.Get("X-Request-ID"), hr
	}

	okBody := `{"model":"nsdp","size":4,"engine":"gpo"}`
	id1, hr := post("ok-1", okBody)
	if id1 != "ok-1" || hr.StatusCode != http.StatusOK {
		t.Fatalf("ok request: id=%q code=%d", id1, hr.StatusCode)
	}
	line := waitForLogLine(t, logBuf, "ok-1")
	if line.Outcome != "ok" || line.States != 3 || line.CacheHit {
		t.Fatalf("ok line: %+v", line)
	}

	// Identical request again: served from the cache, logged as such.
	id2, _ := post("ok-2", okBody)
	if id2 != "ok-2" {
		t.Fatalf("cached request echoed id %q", id2)
	}
	line = waitForLogLine(t, logBuf, "ok-2")
	if line.Outcome != "cached" || !line.CacheHit || line.States != 3 {
		t.Fatalf("cached line: %+v", line)
	}

	// A client ID with a path separator is unusable as a dump file
	// name: the server substitutes a generated one.
	id3, hr := post("../evil", okBody)
	if id3 == "" || id3 == "../evil" || hr.StatusCode != http.StatusOK {
		t.Fatalf("hostile ID handling: echoed %q, code %d", id3, hr.StatusCode)
	}
	line = waitForLogLine(t, logBuf, id3)
	if line.Outcome != "cached" {
		t.Fatalf("generated-ID line: %+v", line)
	}

	id4, hr := post("", `{"model":"nope"}`)
	if id4 == "" || hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request: id=%q code=%d", id4, hr.StatusCode)
	}
	line = waitForLogLine(t, logBuf, id4)
	if line.Outcome != "bad_request" || line.Code != http.StatusBadRequest || line.Engine != "" {
		t.Fatalf("bad_request line: %+v", line)
	}

	// The plain client still works against a logging server.
	if _, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "gpo"}); err != nil {
		t.Fatalf("client verify: %v", err)
	}
}

// TestE2EMetricsPromFormat pins the /metrics?format=prom endpoint: the
// Prometheus text exposition with the content type scrapers expect,
// carrying the same server.* counters as the JSON snapshot.
func TestE2EMetricsPromFormat(t *testing.T) {
	svc := server.New(server.Config{Workers: 1, Metrics: obs.New()})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()
	if _, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "exhaustive"}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}
	if snap.Counters["server.done"] != 1 {
		t.Fatalf("JSON snapshot: %+v", snap.Counters)
	}

	hr, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("prom metrics: %v", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("prom metrics: %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type %q", ct)
	}
	body, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE server_done counter",
		"server_done 1",
		"server_requests 1",
		"reach_states 322",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	for _, ln := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		if fields := strings.Fields(ln); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", ln)
		}
	}
}
