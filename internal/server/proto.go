package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/pnio"
	"repro/internal/verify"
)

// Request is the body of POST /v1/verify. The system under verification
// is given either inline as pnio text (Net) or as a built-in benchmark
// family (Model, Size) — exactly one of the two.
type Request struct {
	// Net is the net in the pnio .pn text format.
	Net string `json:"net,omitempty"`
	// Model and Size name a built-in Table 1 family (models.ByName).
	Model string `json:"model,omitempty"`
	Size  int    `json:"size,omitempty"`
	// Engine is a verify engine name ("exhaustive", "partial-order",
	// "symbolic", "gpo", "gpo-explicit", "unfolding"); default "gpo".
	Engine string `json:"engine,omitempty"`
	// Check is "deadlock" (default) or "safety". Safety checks name the
	// places of the bad combination in Bad.
	Check string   `json:"check,omitempty"`
	Bad   []string `json:"bad,omitempty"`
	// StopAtFirst halts at the first deadlock/violation.
	StopAtFirst bool `json:"stop_at_first,omitempty"`
	// MaxStates/MaxNodes bound the search; the server clamps MaxStates to
	// its own Config.MaxStates cap.
	MaxStates int `json:"max_states,omitempty"`
	MaxNodes  int `json:"max_nodes,omitempty"`
	// Workers selects the exhaustive engine's parallel explorer. Results
	// are bit-identical to sequential, so this does not key the cache.
	Workers int `json:"workers,omitempty"`
	// Cluster routes the run to the distributed sharded explorer
	// (requires the server to be started with peers, and the exhaustive
	// engine). Like Workers it changes how the answer is computed, never
	// what it is — cluster results are bit-identical to sequential — so
	// it does not key the result cache either.
	Cluster bool `json:"cluster,omitempty"`
	// Proviso applies the cycle proviso in the partial-order engine.
	Proviso bool `json:"proviso,omitempty"`
	// Reduce applies the structural reduction pre-pass before the engine
	// (verify.Options.Reduce). Result-stat-determining, so it keys the
	// result cache; the server's -reduce flag forces it on for every
	// request.
	Reduce bool `json:"reduce,omitempty"`
	// TimeoutMS is the per-request wall-clock budget; 0 uses the server
	// default, and the server clamps it to its configured ceiling.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Response is the Table-1-style result of a verification request.
type Response struct {
	// RunID is the content address of the work (verify.RunKey): the
	// handle GET /v1/runs/{id}, the ledger and GET /v1/runs/{id}/trace
	// all share. Identical for cached copies — it addresses the work,
	// not the execution.
	RunID string `json:"run_id,omitempty"`
	// Status is "ok" for a completed analysis and "aborted" when the
	// request deadline or a client disconnect stopped the exploration;
	// aborted statistics are partial and the verdict fields are not
	// meaningful. A search that overruns its MaxStates/MaxNodes budget
	// is neither: it answers 422 with the engine's limit error.
	Status string `json:"status"`
	// Cached marks a response served from the result cache.
	Cached   bool     `json:"cached"`
	Net      string   `json:"net"`
	Engine   string   `json:"engine"`
	Check    string   `json:"check"`
	Deadlock bool     `json:"deadlock"`
	Witness  []string `json:"witness,omitempty"`
	States   int      `json:"states"`
	PeakBDD  int      `json:"peak_bdd,omitempty"`
	PeakSets float64  `json:"peak_sets,omitempty"`
	// ElapsedNS is the engine wall clock of the run that produced the
	// result (the original run, for cached responses).
	ElapsedNS int64 `json:"elapsed_ns"`
	Complete  bool  `json:"complete"`
	// Peers is the cluster size when this run executed on the
	// distributed explorer (0 = in-process). Set on the original run's
	// response only, never on cached copies — the result bytes a run
	// contributes to the cache are identical however it was computed.
	Peers int `json:"peers,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

const (
	// StatusOK, StatusAborted and StatusCheckpointed are the
	// Response.Status values. Checkpointed marks a job suspended cleanly
	// at an engine boundary with a resumable checkpoint on disk — its
	// statistics are partial like an abort's, but the run can continue.
	StatusOK           = "ok"
	StatusAborted      = "aborted"
	StatusCheckpointed = "checkpointed"

	// CheckDeadlock and CheckSafety are the Request.Check values.
	CheckDeadlock = "deadlock"
	CheckSafety   = "safety"
)

// maxRequestBytes bounds the request body the service will read: the
// pnio parser is hardened, but an http server should not buffer
// arbitrarily large untrusted bodies in the first place.
const maxRequestBytes = 8 << 20

// job is one admitted verification: the resolved request, the HTTP
// request's context (so client disconnects cancel the engine), and the
// channel its worker answers on.
type job struct {
	ctx  context.Context
	id   string // request ID (echoed header, access log, trace meta)
	req  *parsedRequest
	done chan jobResult
	// lr is the job's live-run registration: per-run metrics, progress
	// publisher, and the /v1/runs surface entry.
	lr *liveRun
	// enqNS is when the handler admitted the job; the worker stamps
	// queueWaitNS at dequeue (before the handler reads it back — the
	// done channel orders the accesses).
	enqNS       int64
	queueWaitNS int64
	// peers is the cluster size for cluster-executed jobs (0 otherwise),
	// journaled in the run's ledger entry.
	peers int
	// jr marks an asynchronous durable job (POST /v1/jobs): the worker
	// routes it through runAsyncJob, which answers no done channel and
	// settles the jobs store instead. Nil for synchronous /v1/verify.
	jr *asyncRun
}

// transNames lists a net's transition names in index order, the table a
// per-request tracer needs to render fire events readably.
func transNames(n *petri.Net) []string {
	names := make([]string, n.NumTrans())
	for t := range names {
		names[t] = n.TransName(petri.Trans(t))
	}
	return names
}

type jobResult struct {
	resp *Response
	err  error // engine/analysis error (not cancellation)
}

// parsedRequest is a Request after resolution and validation.
type parsedRequest struct {
	net     *petri.Net
	check   string
	bad     []petri.Place
	opts    verify.Options // Ctx and Metrics filled in by the worker
	key     cacheKey
	timeout time.Duration
	// cluster routes the run to the distributed explorer; lease marks
	// that the handler holds the shared tier's single-flight lease for
	// this key and the worker must put or release it.
	cluster bool
	lease   bool
}

// badRequestError marks request-resolution failures so the handler can
// answer 400 instead of 500.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// parseRequest resolves a wire Request against the server's limits:
// builds the net, resolves engine/check/places, clamps bounds, and
// computes the content-addressed cache key.
func (s *Server) parseRequest(req *Request) (*parsedRequest, error) {
	var (
		net *petri.Net
		err error
	)
	switch {
	case req.Net != "" && req.Model != "":
		return nil, badRequestf("give either net or model, not both")
	case req.Net != "":
		net, err = pnio.Parse(strings.NewReader(req.Net))
		if err != nil {
			return nil, badRequestf("bad net: %v", err)
		}
	case req.Model != "":
		net, err = models.ByName(req.Model, req.Size)
		if err != nil {
			return nil, badRequestf("bad model: %v", err)
		}
	default:
		return nil, badRequestf("missing net or model")
	}

	engineName := req.Engine
	if engineName == "" {
		engineName = "gpo"
	}
	engine, err := verify.ParseEngine(engineName)
	if err != nil {
		return nil, badRequestf("bad engine: %v", err)
	}

	check := req.Check
	if check == "" {
		check = CheckDeadlock
	}
	var bad []petri.Place
	switch check {
	case CheckDeadlock:
		if len(req.Bad) > 0 {
			return nil, badRequestf("bad places given for a deadlock check")
		}
	case CheckSafety:
		if len(req.Bad) == 0 {
			return nil, badRequestf("safety check needs bad places")
		}
		for _, name := range req.Bad {
			p, ok := net.PlaceByName(name)
			if !ok {
				return nil, badRequestf("unknown place %q", name)
			}
			bad = append(bad, p)
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	default:
		return nil, badRequestf("bad check %q (want %q or %q)", check, CheckDeadlock, CheckSafety)
	}

	maxStates := req.MaxStates
	if s.cfg.MaxStates > 0 && (maxStates <= 0 || maxStates > s.cfg.MaxStates) {
		maxStates = s.cfg.MaxStates
	}
	opts := verify.Options{
		Engine:      engine,
		StopAtFirst: req.StopAtFirst,
		MaxStates:   maxStates,
		MaxNodes:    req.MaxNodes,
		Workers:     req.Workers,
		Proviso:     req.Proviso,
		Reduce:      req.Reduce || s.cfg.Reduce,
	}
	if err := opts.Validate(); err != nil {
		return nil, badRequestf("%v", err)
	}
	if req.Cluster {
		if s.cfg.Cluster == nil {
			return nil, badRequestf("cluster requested but this server has no peers configured")
		}
		if engine != verify.Exhaustive {
			return nil, badRequestf("cluster execution requires the exhaustive engine, not %q", engine)
		}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	return &parsedRequest{
		net:     net,
		check:   check,
		bad:     bad,
		opts:    opts,
		key:     requestKey(net, check, bad, opts),
		timeout: timeout,
		cluster: req.Cluster,
	}, nil
}

// responseOf converts a verify Report into the wire Response.
func responseOf(pr *parsedRequest, rep *verify.Report) *Response {
	resp := &Response{
		RunID:     pr.key.RunID(),
		Status:    StatusOK,
		Net:       rep.Net,
		Engine:    rep.Engine.String(),
		Check:     pr.check,
		Deadlock:  rep.Deadlock,
		States:    rep.States,
		PeakBDD:   rep.PeakBDD,
		PeakSets:  rep.PeakSets,
		ElapsedNS: int64(rep.Elapsed),
		Complete:  rep.Complete,
	}
	if rep.Aborted {
		resp.Status = StatusAborted
	}
	if rep.Checkpointed {
		resp.Status = StatusCheckpointed
	}
	if rep.Witness != nil {
		for _, p := range rep.Witness.Places() {
			resp.Witness = append(resp.Witness, pr.net.PlaceName(p))
		}
	}
	return resp
}
