package server

// Distributed-tracing surface: the server retains the flight-recorder
// dumps of the last Config.TraceRuns runs in memory and serves them on
// GET /v1/runs/{id}/trace as a gpotrace bundle. For cluster runs the
// coordinator's handler fans out to every peer (cluster.CollectTraces)
// so one GET returns the whole fleet's view of the run, each peer entry
// carrying the RPC-midpoint clock-offset estimate the merge aligns with.

import (
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/verify"
)

// runTraceStore retains the dumps of the most recent traced runs,
// oldest evicted first. Same shape as the cluster node's store, but
// capacity comes from Config.TraceRuns.
type runTraceStore struct {
	mu    sync.Mutex
	cap   int
	order []string
	byRun map[string]*trace.Dump
}

func newRunTraceStore(cap int) *runTraceStore {
	return &runTraceStore{cap: cap, byRun: make(map[string]*trace.Dump)}
}

func (s *runTraceStore) put(run string, d *trace.Dump) {
	if run == "" || d == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byRun[run]; !ok {
		s.order = append(s.order, run)
		for len(s.order) > s.cap {
			delete(s.byRun, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.byRun[run] = d
}

func (s *runTraceStore) get(run string) *trace.Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byRun[run]
}

func (s *runTraceStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byRun)
}

// newRunTracer creates the per-run flight recorder when tracing is on
// (a TraceSink to dump aborts into, or TraceRuns retention) and hooks
// it into the engine options. Returns nil — and leaves opts.Trace nil,
// the zero-cost disabled path — otherwise.
func (s *Server) newRunTracer(j *job, lr *liveRun, opts *verify.Options) *trace.Tracer {
	if s.cfg.TraceSink == nil && s.traces == nil {
		return nil
	}
	tr := trace.New(trace.Options{Cap: s.cfg.TraceEvents})
	tr.SetMeta("request_id", j.id)
	tr.SetMeta("run_id", lr.runID)
	tr.SetMeta("engine", opts.Engine.String())
	tr.SetMeta("net", j.req.net.Name())
	tr.SetMeta("check", j.req.check)
	tr.SetTransNames(transNames(j.req.net))
	opts.Trace = tr
	return tr
}

// retainTrace stores a finished run's dump for /v1/runs/{id}/trace and
// returns the per-peer trace endpoints to journal for cluster runs.
func (s *Server) retainTrace(j *job, lr *liveRun, tr *trace.Tracer) []string {
	if tr == nil || s.traces == nil {
		return nil
	}
	s.traces.put(lr.runID, tr.Dump())
	s.traceRuns.Set(int64(s.traces.len()))
	if !j.req.cluster || s.cfg.Cluster == nil {
		return nil
	}
	peers := s.cfg.Cluster.Peers()
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		out = append(out, p+"/v1/runs/"+lr.runID+"/trace")
	}
	return out
}

// handleRunTrace answers GET /v1/runs/{id}/trace with the run's trace
// bundle. On the coordinator (the server that executed the run) the
// bundle opens with its own dump and, for cluster runs, appends every
// peer's node-side dump; on a worker peer the bundle holds just that
// peer's slice — which is what the coordinator's fan-out fetches.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var d *trace.Dump
	if s.traces != nil {
		d = s.traces.get(id)
	}
	if d != nil {
		b := &trace.Bundle{RunID: id}
		addr := "local"
		if s.cfg.Cluster != nil {
			addr = s.cfg.Cluster.Self()
		}
		b.Peers = append(b.Peers, trace.BundlePeer{Addr: addr, Coordinator: true, Dump: d})
		if s.cfg.Cluster != nil {
			b.Peers = append(b.Peers, s.cfg.Cluster.CollectTraces(r.Context(), id)...)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteBundle(w, b)
		return
	}
	// Not a run this server executed: maybe it worked the run as a
	// cluster peer — that slice is what ledger TracePeers paths resolve.
	if s.cfg.Cluster != nil {
		if pd := s.cfg.Cluster.LocalTrace(id); pd != nil {
			b := &trace.Bundle{
				RunID: id,
				Peers: []trace.BundlePeer{{Addr: s.cfg.Cluster.Self(), Dump: pd}},
			}
			w.Header().Set("Content-Type", "application/json")
			_ = trace.WriteBundle(w, b)
			return
		}
	}
	if s.traces == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "trace retention disabled (start the server with trace runs > 0)"})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "no trace retained for run " + id})
}

// jobTraceEmitter wraps a tracer's "job" track for lifecycle events
// (slice begin/end, resume, checkpoint saves) with step names interned
// lazily; nil-safe like the recorder itself.
type jobTraceEmitter struct {
	tr  *trace.Tracer
	tk  *trace.Track
	ctr *obs.Counter
}

func (s *Server) newJobTraceEmitter(tr *trace.Tracer) *jobTraceEmitter {
	if tr == nil {
		return nil
	}
	return &jobTraceEmitter{tr: tr, tk: tr.NewTrack("job"), ctr: s.jobsTraceEvents}
}

// emit records one lifecycle step (Arg0 = interned step name, Arg1 =
// detail, typically a state count).
func (e *jobTraceEmitter) emit(step string, detail int64) {
	if e == nil {
		return
	}
	e.tk.Job(e.tr.Intern(step), detail)
	e.ctr.Inc()
}
