package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/ledger"
)

// liveRun is one admitted verification's introspection state: the
// content-addressed run ID, a per-run metrics registry (so /v1/runs/{id}
// reports this run's numbers, not process totals), and the Publisher
// fanning throttled progress updates out to SSE subscribers. The engine
// never sees any of this directly — it only ticks the obs.Progress it
// is handed, exactly as it would uninstrumented.
type liveRun struct {
	runID  string
	reqID  string
	net    string
	engine string
	check  string

	startNS atomic.Int64 // 0 while queued; set when a worker picks it up
	enqNS   int64

	pub *obs.Publisher
	reg *obs.Registry

	mu   sync.Mutex
	resp *Response // final response, set before the publisher closes
	err  string
}

func (lr *liveRun) finish(resp *Response, err error) {
	lr.mu.Lock()
	lr.resp = resp
	if err != nil {
		lr.err = err.Error()
	}
	lr.mu.Unlock()
}

func (lr *liveRun) final() (*Response, string) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.resp, lr.err
}

// runStatus is the wire shape of one in-flight run on /v1/runs.
type runStatus struct {
	RunID     string `json:"run_id"`
	RequestID string `json:"request_id"`
	State     string `json:"state"` // "queued" or "running"
	Net       string `json:"net"`
	Engine    string `json:"engine"`
	Check     string `json:"check"`
	// StartUnixNS is when a worker started the engine (0 while queued).
	StartUnixNS int64 `json:"start_unix_ns,omitempty"`
	// Progress from the last throttled update (zero until the first one).
	States    int64   `json:"states"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Rate      float64 `json:"rate"`
	// Peaks from the run's own registry.
	Frontier    int64 `json:"frontier_peak,omitempty"`
	ZddNodes    int64 `json:"zdd_nodes,omitempty"`
	Subscribers int   `json:"subscribers"`
}

func (lr *liveRun) status() runStatus {
	st := runStatus{
		RunID:       lr.runID,
		RequestID:   lr.reqID,
		State:       "queued",
		Net:         lr.net,
		Engine:      lr.engine,
		Check:       lr.check,
		StartUnixNS: lr.startNS.Load(),
		Frontier:    lr.reg.Gauge("reach.queue_peak").Value(),
		ZddNodes:    lr.reg.Gauge("zdd.nodes").Value(),
		Subscribers: lr.pub.Subscribers(),
	}
	if st.StartUnixNS != 0 {
		st.State = "running"
	}
	if u, ok := lr.pub.Last(); ok {
		st.States = u.Count
		st.ElapsedNS = int64(u.Elapsed)
		st.Rate = u.Rate
	}
	return st
}

// registerRun publishes lr on the live-run surface. Content addressing
// means two concurrent identical requests share a run ID; the registry
// keeps the latest, and deregisterRun only removes the entry it owns.
func (s *Server) registerRun(lr *liveRun) {
	s.runsMu.Lock()
	s.runs[lr.runID] = lr
	s.runsMu.Unlock()
}

func (s *Server) deregisterRun(lr *liveRun) {
	s.runsMu.Lock()
	if s.runs[lr.runID] == lr {
		delete(s.runs, lr.runID)
	}
	s.runsMu.Unlock()
}

func (s *Server) liveRunByID(id string) *liveRun {
	s.runsMu.Lock()
	defer s.runsMu.Unlock()
	return s.runs[id]
}

// handleRuns answers GET /v1/runs: every queued or running verification
// plus the recently completed tail of the ledger (newest first).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.runsMu.Lock()
	running := make([]runStatus, 0, len(s.runs))
	for _, lr := range s.runs {
		running = append(running, lr.status())
	}
	s.runsMu.Unlock()
	completed := s.cfg.Ledger.Recent()
	for i, j := 0, len(completed)-1; i < j; i, j = i+1, j-1 {
		completed[i], completed[j] = completed[j], completed[i]
	}
	writeJSON(w, http.StatusOK, struct {
		Running   []runStatus    `json:"running"`
		Completed []ledger.Entry `json:"completed"`
	}{running, completed})
}

// handleRun answers GET /v1/runs/{id}: a live status with the run's own
// metrics snapshot, or the ledger entry of a completed run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if lr := s.liveRunByID(id); lr != nil {
		writeJSON(w, http.StatusOK, struct {
			runStatus
			Metrics *obs.Snapshot `json:"metrics"`
		}{lr.status(), lr.reg.Snapshot()})
		return
	}
	if e, ok := s.ledgerEntry(id); ok {
		writeJSON(w, http.StatusOK, e)
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown run " + id})
}

// ledgerEntry finds the newest ledger entry for id, first in the
// in-memory tail, then (for history beyond the tail) in the journal
// itself.
func (s *Server) ledgerEntry(id string) (ledger.Entry, bool) {
	recent := s.cfg.Ledger.Recent()
	for i := len(recent) - 1; i >= 0; i-- {
		if recent[i].RunID == id {
			return recent[i], true
		}
	}
	if path := s.cfg.Ledger.Path(); path != "" {
		all, err := ledger.Read(path)
		if err == nil {
			for i := len(all) - 1; i >= 0; i-- {
				if all[i].RunID == id {
					return all[i], true
				}
			}
		}
	}
	return ledger.Entry{}, false
}

// progressEvent is the SSE "progress" payload: one throttled snapshot
// of a running exploration.
type progressEvent struct {
	RunID     string  `json:"run_id"`
	States    int64   `json:"states"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Rate      float64 `json:"rate"`
	Frontier  int64   `json:"frontier_peak,omitempty"`
	ZddNodes  int64   `json:"zdd_nodes,omitempty"`
	Final     bool    `json:"final,omitempty"`
}

// doneEvent is the SSE "done" payload: the run's verdict, emitted once
// as the stream's last event. States here is the final result count —
// for a completed explicit-state run it equals the reach.states metric
// exactly (pinned by TestE2ERunEventsStates).
type doneEvent struct {
	RunID    string `json:"run_id"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	Deadlock bool   `json:"deadlock"`
	States   int64  `json:"states"`
	Complete bool   `json:"complete"`
	WallNS   int64  `json:"wall_ns"`
}

func writeSSE(w http.ResponseWriter, flusher http.Flusher, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	flusher.Flush()
}

// handleRunEvents answers GET /v1/runs/{id}/events with an SSE stream:
// "progress" events at the server's throttle cadence, terminated by one
// "done" event carrying the verdict. For an already-completed run the
// stream is just the "done" event reconstructed from the ledger. The
// subscriber rides a bounded drop-oldest buffer, so a slow client loses
// intermediate snapshots, never the verdict, and never slows the engine.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	lr := s.liveRunByID(id)
	if lr == nil {
		e, found := s.ledgerEntry(id)
		if !found {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown run " + id})
			return
		}
		sseHeaders(w)
		writeSSE(w, flusher, "done", doneEvent{
			RunID:    e.RunID,
			Status:   e.Status,
			Error:    e.AbortReason,
			Deadlock: e.Deadlock,
			States:   e.States,
			Complete: e.Complete,
			WallNS:   e.WallNS,
		})
		return
	}

	ch, cancel := lr.pub.Subscribe(16)
	defer cancel()
	sseHeaders(w)
	for {
		select {
		case u, open := <-ch:
			if !open {
				// Publisher closed: the run is over and its final
				// response was stored before the close.
				resp, errMsg := lr.final()
				done := doneEvent{RunID: lr.runID, Status: "error", Error: errMsg}
				if resp != nil {
					done.Status = resp.Status
					done.Deadlock = resp.Deadlock
					done.States = int64(resp.States)
					done.Complete = resp.Complete
					done.WallNS = resp.ElapsedNS
				}
				writeSSE(w, flusher, "done", done)
				return
			}
			writeSSE(w, flusher, "progress", progressEvent{
				RunID:     lr.runID,
				States:    u.Count,
				ElapsedNS: int64(u.Elapsed),
				Rate:      u.Rate,
				Frontier:  lr.reg.Gauge("reach.queue_peak").Value(),
				ZddNodes:  lr.reg.Gauge("zdd.nodes").Value(),
				Final:     u.Final,
			})
		case <-r.Context().Done():
			return
		}
	}
}

func sseHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
}

// ledgerEntryOf assembles the journal record for a finished job from
// the per-run registry and the outcome. Counters and gauges land in the
// Metrics map under their documented names.
func ledgerEntryOf(j *job, lr *liveRun, resp *Response, runErr error, startNS, endNS int64, tracePath string, tracePeers []string) ledger.Entry {
	e := ledger.Entry{
		RunID:       lr.runID,
		RequestID:   j.id,
		Source:      "gpod",
		Net:         lr.net,
		Engine:      lr.engine,
		Check:       lr.check,
		StopAtFirst: j.req.opts.StopAtFirst,
		Proviso:     j.req.opts.Proviso,
		Reduce:      j.req.opts.Reduce,
		MaxStates:   j.req.opts.MaxStates,
		MaxNodes:    j.req.opts.MaxNodes,
		Workers:     j.req.opts.Workers,
		Peers:       j.peers,
		StartUnixNS: startNS,
		EndUnixNS:   endNS,
		WallNS:      endNS - startNS,
		TracePath:   tracePath,
		TracePeers:  tracePeers,
	}
	switch {
	case runErr != nil:
		e.Status = "error"
		e.AbortReason = runErr.Error()
	case resp.Status == StatusAborted:
		e.Status = "aborted"
		e.AbortReason = abortReason(j)
		e.States = int64(resp.States)
		e.PeakBDD = int64(resp.PeakBDD)
		e.PeakSets = int64(resp.PeakSets)
	case resp.Status == StatusCheckpointed:
		// A job suspended at a boundary: partial statistics like an
		// abort, but resumable — no abort reason, no verdict.
		e.Status = "checkpointed"
		e.States = int64(resp.States)
		e.PeakBDD = int64(resp.PeakBDD)
		e.PeakSets = int64(resp.PeakSets)
	default:
		e.Status = "ok"
		e.Deadlock = resp.Deadlock
		e.States = int64(resp.States)
		e.PeakBDD = int64(resp.PeakBDD)
		e.PeakSets = int64(resp.PeakSets)
		e.Complete = resp.Complete
	}
	snap := lr.reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges) > 0 {
		e.Metrics = make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
		for k, v := range snap.Counters {
			e.Metrics[k] = v
		}
		for k, v := range snap.Gauges {
			e.Metrics[k] = v
		}
	}
	return e
}

// abortReason distinguishes the two ways a run dies mid-flight.
func abortReason(j *job) string {
	if err := j.ctx.Err(); err != nil {
		return "disconnect" // client context canceled or timed out
	}
	return "deadline" // the server-side per-request budget expired
}

// nowUnixNS is time.Now().UnixNano(), indirected for tests.
var nowUnixNS = func() int64 { return time.Now().UnixNano() }
