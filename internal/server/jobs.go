package server

// The asynchronous jobs surface (DESIGN.md D11): durable verification
// jobs that outlive the submitting HTTP request, auto-checkpoint at
// engine boundaries, suspend cleanly on deadline / cancel / drain, and
// resume bit-identically — after a graceful restart or a crash.
//
// A job's ID is its content-addressed run ID (verify.RunKey), so
// submission is idempotent, the checkpoint file can never be resumed
// under the wrong work, and the job joins the result cache, the ledger
// and /v1/runs on one identity. The durable state (jobs/v1 journal +
// ckpt/v1 files) lives in internal/jobs and internal/ckpt; this file
// owns the HTTP handlers and the worker-side execution loop.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/verify"
)

// asyncRun is the in-memory half of one queued-or-running async job:
// the cancel flag DELETE sets (observed at the next engine boundary)
// and the snapshot a resume re-enters from. The durable half is the
// job's record in the store.
type asyncRun struct {
	id     string // job ID = run ID
	cancel atomic.Bool
	resume *verify.EngineSnapshot // nil = fresh start
}

// errOverCapacity marks an admission failure (queue full / closing) so
// handlers can shed with 429 + Retry-After.
var errOverCapacity = errors.New("over capacity, retry later")

// jobBody is the wire shape of one job: its durable record plus, while
// it is queued or running, the live-run status from /v1/runs.
type jobBody struct {
	jobs.Record
	Run *runStatus `json:"run,omitempty"`
}

func (s *Server) jobView(rec jobs.Record) jobBody {
	b := jobBody{Record: rec}
	if lr := s.liveRunByID(rec.ID); lr != nil {
		st := lr.status()
		b.Run = &st
	}
	return b
}

// handleJobSubmit answers POST /v1/jobs: admit a durable verification
// job. The body is the same Request as /v1/verify; the response is the
// job record (202 on fresh admission, 200 when the content-addressed ID
// already exists — resubmission is a lookup, not a second run).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	pr, err := s.parseRequest(&req)
	if err != nil {
		var bre *badRequestError
		if errors.As(err, &bre) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: bre.msg})
		} else {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	if pr.cluster {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "jobs cannot use cluster execution; submit to /v1/verify instead"})
		return
	}
	if err := pr.opts.Checkpointable(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	id := pr.key.RunID()
	if rec, ok := s.cfg.Jobs.Get(id); ok {
		writeJSON(w, http.StatusOK, s.jobView(rec))
		return
	}
	rec := jobs.Record{
		ID:      id,
		Request: json.RawMessage(body),
		Net:     pr.net.Name(),
		Engine:  pr.opts.Engine.String(),
		Check:   pr.check,
	}
	if err := s.cfg.Jobs.Create(rec); err != nil {
		// Raced resubmission: someone created the same ID between our
		// lookup and Create. Content addressing makes that the same job.
		if cur, ok := s.cfg.Jobs.Get(id); ok {
			writeJSON(w, http.StatusOK, s.jobView(cur))
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	s.jobsSubmitted.Inc()
	if err := s.startAsync(id, pr, nil); err != nil {
		// The record stays queued and durable: a restart (or an explicit
		// resume) picks it up once there is capacity.
		s.cfg.Jobs.Update(id, func(r *jobs.Record) { r.Error = "admission: " + err.Error() })
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	}
	cur, _ := s.cfg.Jobs.Get(id)
	writeJSON(w, http.StatusAccepted, s.jobView(cur))
}

// handleJobsList answers GET /v1/jobs with every job, oldest first.
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	recs := s.cfg.Jobs.List()
	out := make([]jobBody, 0, len(recs))
	for _, rec := range recs {
		out = append(out, s.jobView(rec))
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobBody `json:"jobs"`
	}{out})
}

// handleJobGet answers GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(rec))
}

// handleJobCancel answers DELETE /v1/jobs/{id}: stop the job at its
// next engine boundary, keeping any checkpoint (a canceled job stays
// resumable). Queued jobs cancel immediately; settled jobs are a no-op.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	switch rec.State {
	case jobs.Queued:
		// Flag any in-flight admission too: if a worker picked the job up
		// between our read and the update, it stops at the next boundary.
		s.jobsMu.Lock()
		if ar := s.jobRuns[id]; ar != nil {
			ar.cancel.Store(true)
		}
		s.jobsMu.Unlock()
		rec, _ = s.cfg.Jobs.Update(id, func(r *jobs.Record) { r.State = jobs.Canceled })
		s.jobsCanceled.Inc()
		writeJSON(w, http.StatusOK, s.jobView(rec))
	case jobs.Running:
		s.jobsMu.Lock()
		ar := s.jobRuns[id]
		s.jobsMu.Unlock()
		if ar == nil {
			// Journal says running but no worker owns it (stale state from
			// an earlier crash this process never repaired): settle it.
			rec, _ = s.cfg.Jobs.Update(id, func(r *jobs.Record) { r.State = jobs.Canceled })
			s.jobsCanceled.Inc()
			writeJSON(w, http.StatusOK, s.jobView(rec))
			return
		}
		ar.cancel.Store(true)
		// 202: the worker checkpoints at the next boundary and settles the
		// record to canceled; poll GET /v1/jobs/{id} for the transition.
		writeJSON(w, http.StatusAccepted, s.jobView(rec))
	default: // Done, Failed, Canceled, Checkpointed: already settled
		writeJSON(w, http.StatusOK, s.jobView(rec))
	}
}

// handleJobResume answers POST /v1/jobs/{id}/resume: re-admit a
// checkpointed, canceled or queued job. When a checkpoint exists the
// run re-enters the engine at its boundary; otherwise it starts over.
func (s *Server) handleJobResume(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	id := r.PathValue("id")
	rec, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	if !rec.State.Resumable() {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s is %s, not resumable", id, rec.State)})
		return
	}
	upd, err := s.resumeRecord(rec)
	switch {
	case errors.Is(err, errOverCapacity):
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, s.jobView(upd))
	}
}

// ResumeJobs re-admits every resumable (queued or checkpointed) job in
// the store. gpod calls it once at startup, so a restarted server picks
// its durable work back up without client action; canceled jobs stay
// canceled until an explicit resume. Returns the number re-admitted;
// jobs that fail to resume keep their state with the reason recorded.
func (s *Server) ResumeJobs() int {
	if s.cfg.Jobs == nil {
		return 0
	}
	n := 0
	for _, rec := range s.cfg.Jobs.Resumable() {
		if _, err := s.resumeRecord(rec); err != nil {
			s.cfg.Jobs.Update(rec.ID, func(r *jobs.Record) { r.Error = "auto-resume: " + err.Error() })
		} else {
			n++
		}
	}
	return n
}

// resumeRecord re-resolves a stored job, loads its checkpoint (if any,
// with full integrity + key validation — a damaged checkpoint is a
// typed refusal, never a silent fresh start), and re-admits it.
func (s *Server) resumeRecord(rec jobs.Record) (jobs.Record, error) {
	s.jobsMu.Lock()
	_, active := s.jobRuns[rec.ID]
	s.jobsMu.Unlock()
	if active {
		return rec, fmt.Errorf("job %s is already queued or running", rec.ID)
	}
	pr, snap, err := s.prepareResume(rec)
	if err != nil {
		return rec, err
	}
	prev := rec.State
	upd, err := s.cfg.Jobs.Update(rec.ID, func(r *jobs.Record) {
		r.State = jobs.Queued
		r.Error = ""
		if snap != nil {
			r.Resumes++
		}
	})
	if err != nil {
		return rec, err
	}
	if err := s.startAsync(rec.ID, pr, snap); err != nil {
		upd, _ = s.cfg.Jobs.Update(rec.ID, func(r *jobs.Record) {
			r.State = prev
			if snap != nil {
				r.Resumes--
			}
			r.Error = "resume admission: " + err.Error()
		})
		return upd, err
	}
	s.jobsResumed.Inc()
	return upd, nil
}

// prepareResume rebuilds the parsedRequest from the job's stored wire
// request and reads its checkpoint. The stored request must still hash
// to the job's ID: if the server's result-determining configuration
// changed across a restart (-reduce, -max-states), the work would no
// longer be what the checkpoint describes, and resuming under a stale
// identity is exactly the silent corruption ckpt/v1 exists to prevent.
func (s *Server) prepareResume(rec jobs.Record) (*parsedRequest, *verify.EngineSnapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(rec.Request))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("stored request does not decode: %w", err)
	}
	pr, err := s.parseRequest(&req)
	if err != nil {
		return nil, nil, fmt.Errorf("stored request does not resolve: %w", err)
	}
	if got := pr.key.RunID(); got != rec.ID {
		return nil, nil, fmt.Errorf("stored request now hashes to %s, not %s (server configuration changed); refusing to resume under a stale identity", got, rec.ID)
	}
	var snap *verify.EngineSnapshot
	if rec.CkptPath != "" {
		f, err := ckpt.ReadFor(rec.CkptPath, pr.key)
		if err != nil {
			s.ckptLoadErrors.Inc()
			return nil, nil, fmt.Errorf("checkpoint unusable: %w", err)
		}
		s.ckptLoads.Inc()
		snap = f.Snap
	}
	return pr, snap, nil
}

// startAsync registers and enqueues one async execution of job id.
func (s *Server) startAsync(id string, pr *parsedRequest, resume *verify.EngineSnapshot) error {
	ar := &asyncRun{id: id, resume: resume}
	j := &job{
		ctx:   context.Background(), // jobs outlive the submitting request
		id:    s.requestID(""),
		req:   pr,
		enqNS: nowUnixNS(),
		jr:    ar,
	}
	j.lr = &liveRun{
		runID:  id,
		reqID:  j.id,
		net:    pr.net.Name(),
		engine: pr.opts.Engine.String(),
		check:  pr.check,
		enqNS:  j.enqNS,
		pub:    obs.NewPublisher(),
		reg:    obs.New(),
	}
	s.jobsMu.Lock()
	s.jobRuns[id] = ar
	s.jobsMu.Unlock()
	s.registerRun(j.lr)
	if !s.enqueue(j) {
		s.deregisterRun(j.lr)
		j.lr.pub.Close()
		s.jobsMu.Lock()
		if s.jobRuns[id] == ar {
			delete(s.jobRuns, id)
		}
		s.jobsMu.Unlock()
		return errOverCapacity
	}
	return nil
}

// runAsyncJob executes one async job on a worker: the engine runs under
// a Checkpointer that auto-saves on the configured cadence and suspends
// on cancel, drain, or the job's soft deadline; the outcome settles the
// durable record. Unlike runJob there is no done channel — nobody is
// waiting — and the "deadline" is not an abort but a clean suspension.
func (s *Server) runAsyncJob(j *job) {
	ar, lr, id := j.jr, j.lr, j.jr.id
	defer func() {
		s.jobsMu.Lock()
		if s.jobRuns[id] == ar {
			delete(s.jobRuns, id)
		}
		s.jobsMu.Unlock()
	}()
	release := func() {
		s.deregisterRun(lr)
		lr.pub.Close()
	}
	rec, ok := s.cfg.Jobs.Get(id)
	if !ok || rec.State != jobs.Queued || ar.cancel.Load() {
		// Canceled (or otherwise settled) while waiting in the queue.
		release()
		return
	}
	if s.draining.Load() {
		// Graceful drain: leave the job queued and durable instead of
		// burning it — the restarted server's ResumeJobs re-admits it.
		release()
		return
	}
	if _, err := s.cfg.Jobs.Update(id, func(r *jobs.Record) { r.State = jobs.Running }); err != nil {
		release()
		return
	}
	s.jobsActive.Add(1)
	defer s.jobsActive.Add(-1)

	startNS := nowUnixNS()
	lr.startNS.Store(startNS)
	// The request timeout is the job's per-execution slice: at its end
	// the job suspends with a checkpoint (resumable) rather than aborts.
	// The context deadline sits beyond it as a hard backstop for an
	// engine stuck inside one boundary-free stretch.
	slice := j.req.timeout
	grace := slice / 2
	if grace < 2*time.Second {
		grace = 2 * time.Second
	}
	if grace > 30*time.Second {
		grace = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), slice+grace)
	defer cancel()
	opts := j.req.opts
	opts.Ctx = ctx
	opts.Metrics = lr.reg
	prog := &obs.Progress{
		Label:    lr.runID,
		Every:    s.cfg.ProgressEvery,
		Interval: s.cfg.ProgressInterval,
		Report:   lr.pub.Publish,
	}
	opts.Progress = prog
	tr := s.newRunTracer(j, lr, &opts)
	opts.Resume = ar.resume

	// Job lifecycle events on their own track: each execution slice
	// opens with slice_begin (Arg1 = states already explored), notes
	// whether it re-entered from a checkpoint, stamps every checkpoint
	// save, and closes with its outcome — so a merged timeline shows
	// where a durable run's wall time went across suspensions.
	jt := s.newJobTraceEmitter(tr)
	jt.emit("slice_begin", int64(ar.resume.States()))
	if ar.resume != nil {
		jt.emit("resume", int64(ar.resume.States()))
	}

	deadline := time.Now().Add(slice)
	lastSave := time.Now()
	lastStates := ar.resume.States() // 0 for a fresh start
	stopReason := ""
	opts.Ckpt = &verify.Checkpointer{
		Poll: func(states int, boundary int64) verify.CkptAction {
			switch {
			case ar.cancel.Load():
				stopReason = "cancel"
				return verify.CkptStop
			case s.draining.Load():
				stopReason = "drain"
				return verify.CkptStop
			case time.Now().After(deadline):
				stopReason = "deadline"
				return verify.CkptStop
			}
			if s.cfg.CkptEveryStates > 0 && states-lastStates >= s.cfg.CkptEveryStates {
				return verify.CkptSave
			}
			if s.cfg.CkptInterval > 0 && time.Since(lastSave) >= s.cfg.CkptInterval {
				return verify.CkptSave
			}
			return verify.CkptNone
		},
		Save: func(snap *verify.EngineSnapshot) error {
			path := s.cfg.Jobs.CkptPath(id)
			f := &ckpt.File{
				Key:         j.req.key,
				Check:       j.req.check,
				Bad:         j.req.bad,
				Net:         j.req.net,
				Engine:      opts.Engine,
				StopAtFirst: opts.StopAtFirst,
				Proviso:     opts.Proviso,
				Reduce:      opts.Reduce,
				MaxStates:   opts.MaxStates,
				MaxNodes:    opts.MaxNodes,
				Snap:        snap,
			}
			if err := ckpt.Write(path, f); err != nil {
				s.ckptSaveErrors.Inc()
				return err
			}
			s.ckptSaves.Inc()
			if st, err := os.Stat(path); err == nil {
				s.ckptBytes.Add(st.Size())
			}
			lastSave = time.Now()
			lastStates = snap.States()
			jt.emit("ckpt_save", int64(snap.States()))
			s.cfg.Jobs.Update(id, func(r *jobs.Record) {
				r.States = snap.States()
				r.Boundary = snap.Boundary()
				r.CkptPath = path
			})
			return nil
		},
	}

	var (
		rep *verify.Report
		err error
	)
	if j.req.check == CheckSafety {
		rep, err = verify.CheckSafety(j.req.net, j.req.bad, opts)
	} else {
		rep, err = verify.CheckDeadlock(j.req.net, opts)
	}
	endNS := nowUnixNS()

	var resp *Response
	tracePath := ""
	switch {
	case err != nil:
		s.failures.Inc()
		s.jobsFailed.Inc()
		jt.emit("slice_end:error", 0)
		s.cfg.Jobs.Update(id, func(r *jobs.Record) {
			r.State = jobs.Failed
			r.Error = err.Error()
		})
	default:
		resp = responseOf(j.req, rep)
		switch resp.Status {
		case StatusCheckpointed:
			// Suspended cleanly; Save already stamped the checkpoint
			// coordinates on the record.
			final := jobs.Checkpointed
			if stopReason == "cancel" {
				final = jobs.Canceled
				s.jobsCanceled.Inc()
			} else {
				s.jobsCheckpointed.Inc()
			}
			jt.emit("slice_end:"+stopReason, int64(resp.States))
			s.cfg.Jobs.Update(id, func(r *jobs.Record) { r.State = final })
		case StatusAborted:
			// The hard backstop killed the run between boundaries: no
			// checkpoint was cut at stop time. If an auto-checkpoint
			// exists the job resumes from it; otherwise it re-queues.
			s.aborts.Inc()
			jt.emit("slice_end:abort", int64(resp.States))
			if tr != nil && s.cfg.TraceSink != nil {
				s.cfg.TraceSink(j.id, tr.Dump())
				if s.cfg.TracePath != nil {
					tracePath = s.cfg.TracePath(j.id)
				}
			}
			s.jobsCheckpointed.Inc()
			s.cfg.Jobs.Update(id, func(r *jobs.Record) {
				if r.CkptPath != "" {
					r.State = jobs.Checkpointed
				} else {
					r.State = jobs.Queued
				}
				r.Error = "aborted between checkpoint boundaries"
			})
		default:
			s.jobsDone.Inc()
			jt.emit("done", int64(resp.States))
			if resp.Complete {
				s.cache.put(j.req.key, resp)
			}
			b, merr := json.Marshal(resp)
			if merr != nil {
				b = nil
			}
			s.cfg.Jobs.Update(id, func(r *jobs.Record) {
				r.State = jobs.Done
				r.Result = b
				r.States = resp.States
				r.Error = ""
			})
		}
	}

	// Same introspection epilogue as runJob: verdict stored, stream
	// closed, ledger appended, metrics folded, registration dropped.
	tracePeers := s.retainTrace(j, lr, tr)
	lr.finish(resp, err)
	prog.Done()
	lr.pub.Close()
	if lerr := s.cfg.Ledger.Append(ledgerEntryOf(j, lr, resp, err, startNS, endNS, tracePath, tracePeers)); lerr != nil {
		s.ledgerErrors.Inc()
	}
	s.reg.Merge(lr.reg)
	s.deregisterRun(lr)
}
