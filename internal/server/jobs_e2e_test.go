package server_test

// End-to-end tests of the durable jobs surface (DESIGN.md D11): the
// full submit → checkpoint → suspend → resume arc over real HTTP, a
// restart picking up where the dead server left off, cancel keeping the
// checkpoint, and drain leaving queued jobs durable instead of burning
// them. The soundness anchor throughout: a resumed job's final numbers
// equal a fresh uninterrupted run's exactly.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// jobsService boots a jobs-enabled server over dir and returns the
// client plus the server handle (for Drain) and its store.
func jobsService(t *testing.T, dir string, cfg server.Config) (*client.Client, *server.Server, *jobs.Store) {
	t.Helper()
	st, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = st
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		st.Close()
	})
	return client.New(ts.URL, ts.Client()), svc, st
}

// waitJob polls until the job reaches one of the wanted states.
func waitJob(t *testing.T, c *client.Client, id string, want ...jobs.State) *client.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		for _, w := range want {
			if j.State == w {
				return j
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want one of %v", id, j.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestE2EJobsLifecycle: a small job runs to completion, its result
// lands in the record AND the result cache, and resubmission is an
// idempotent lookup.
func TestE2EJobsLifecycle(t *testing.T) {
	c, _, _ := jobsService(t, t.TempDir(), server.Config{Workers: 2})
	ctx := context.Background()
	req := &server.Request{Model: "nsdp", Size: 6, Engine: "exhaustive"}

	j, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if j.ID == "" || j.Net != "NSDP(6)" || j.Check != "deadlock" {
		t.Fatalf("submitted record: %+v", j.Record)
	}
	done := waitJob(t, c, j.ID, jobs.Done)
	var res server.Response
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Status != server.StatusOK || !res.Complete || res.States != 5778 || !res.Deadlock {
		t.Fatalf("job result: %+v", res)
	}

	// The job populated the shared result cache: a synchronous request
	// for the same work is a cache hit, not a second run.
	sync, err := c.Verify(ctx, req)
	if err != nil {
		t.Fatalf("verify after job: %v", err)
	}
	if !sync.Cached || sync.States != res.States {
		t.Fatalf("sync after job should be the cached job result: %+v", sync)
	}

	// Idempotent resubmission: same content address, same (finished) job.
	again, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.ID != j.ID || again.State != jobs.Done {
		t.Fatalf("resubmit: %+v", again.Record)
	}

	list, err := c.Jobs(ctx)
	if err != nil || len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("jobs list: %v %+v", err, list)
	}
}

// TestE2EJobSuspendResume: a job whose time slice is far too small for
// the work suspends at a boundary with a checkpoint; resuming finishes
// it and the final numbers are exactly a fresh full run's.
func TestE2EJobSuspendResume(t *testing.T) {
	c, _, _ := jobsService(t, t.TempDir(), server.Config{Workers: 2})
	ctx := context.Background()
	// NSDP(8) explores 103682 states in ~hundreds of ms; a 1ms slice
	// guarantees suspension at an early boundary.
	req := &server.Request{Model: "nsdp", Size: 8, Engine: "exhaustive", TimeoutMS: 1}

	j, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	sus := waitJob(t, c, j.ID, jobs.Checkpointed)
	if sus.CkptPath == "" || sus.States <= 0 || sus.Boundary <= 0 {
		t.Fatalf("suspended without checkpoint coordinates: %+v", sus.Record)
	}
	if _, err := os.Stat(sus.CkptPath); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if sus.States >= 103682 {
		t.Fatalf("suspended job claims full exploration: %+v", sus.Record)
	}

	// Resume with a workable slice: override nothing — the stored
	// request still says 1ms, so the job makes boundary-to-boundary
	// progress across multiple resumes until it completes. Exercise two
	// of those, then confirm monotone progress and eventual completion.
	states := sus.States
	var fin *client.Job
	for i := 0; i < 200; i++ {
		if _, err := c.ResumeJob(ctx, j.ID); err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
		fin = waitJob(t, c, j.ID, jobs.Checkpointed, jobs.Done)
		if fin.States < states {
			t.Fatalf("resume %d went backwards: %d -> %d states", i, states, fin.States)
		}
		states = fin.States
		if fin.State == jobs.Done {
			break
		}
	}
	if fin.State != jobs.Done {
		t.Fatalf("job never completed: %+v", fin.Record)
	}
	if fin.Resumes == 0 {
		t.Fatalf("Resumes not counted: %+v", fin.Record)
	}
	var res server.Response
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	// The acceptance bar: identical to an uninterrupted run.
	if res.States != 103682 || !res.Deadlock || !res.Complete || res.Status != server.StatusOK {
		t.Fatalf("resumed result differs from a fresh run: %+v", res)
	}
}

// TestE2EJobRestartResume is the crash-safe arc: the job suspends on
// server A, A shuts down, server B opens the same directory and
// ResumeJobs picks the job back up to completion.
func TestE2EJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	stA, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svcA := server.New(server.Config{Workers: 2, Jobs: stA})
	tsA := httptest.NewServer(svcA.Handler())
	cA := client.New(tsA.URL, tsA.Client())
	ctx := context.Background()

	req := &server.Request{Model: "nsdp", Size: 8, Engine: "exhaustive", TimeoutMS: 1}
	j, err := cA.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	sus := waitJob(t, cA, j.ID, jobs.Checkpointed)
	tsA.Close()
	svcA.Close()
	stA.Close()

	// Server B: same directory, generous slices. ResumeJobs re-admits
	// the suspended job without any client involvement.
	stB, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := server.New(server.Config{Workers: 2, Jobs: stB})
	tsB := httptest.NewServer(svcB.Handler())
	cB := client.New(tsB.URL, tsB.Client())
	t.Cleanup(func() {
		tsB.Close()
		svcB.Close()
		stB.Close()
	})
	// The stored request's 1ms slice would just re-suspend; a restart
	// keeps the stored request verbatim, so step it with resumes like a
	// client would. First, the automatic re-admission:
	if n := svcB.ResumeJobs(); n != 1 {
		t.Fatalf("ResumeJobs = %d, want 1", n)
	}
	fin := waitJob(t, cB, j.ID, jobs.Checkpointed, jobs.Done)
	if fin.States < sus.States {
		t.Fatalf("restart went backwards: %d -> %d states", sus.States, fin.States)
	}
	for i := 0; fin.State != jobs.Done && i < 200; i++ {
		if _, err := cB.ResumeJob(ctx, j.ID); err != nil {
			t.Fatalf("resume: %v", err)
		}
		fin = waitJob(t, cB, j.ID, jobs.Checkpointed, jobs.Done)
	}
	var res server.Response
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.States != 103682 || !res.Deadlock || !res.Complete {
		t.Fatalf("post-restart result differs from a fresh run: %+v", res)
	}
}

// TestE2EJobCancelKeepsCheckpoint: DELETE suspends the job at its next
// boundary, the checkpoint survives, and a resume still completes with
// fresh-run numbers.
func TestE2EJobCancel(t *testing.T) {
	c, _, _ := jobsService(t, t.TempDir(), server.Config{Workers: 2, CkptEveryStates: 1})
	ctx := context.Background()
	req := &server.Request{Model: "nsdp", Size: 8, Engine: "exhaustive"}

	j, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.CancelJob(ctx, j.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	got := waitJob(t, c, j.ID, jobs.Canceled, jobs.Done)
	if got.State == jobs.Done {
		t.Skip("job finished before the cancel landed (loaded machine); nothing to assert")
	}
	// Canceled is resumable; with CkptEveryStates=1 a checkpoint exists
	// unless the cancel landed before the very first boundary.
	if _, err := c.ResumeJob(ctx, j.ID); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	fin := waitJob(t, c, j.ID, jobs.Done)
	var res server.Response
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.States != 103682 || !res.Deadlock || !res.Complete {
		t.Fatalf("post-cancel result differs from a fresh run: %+v", res)
	}
}

// TestE2EJobDrain pins satellite 1: draining suspends the running job
// with a checkpoint and leaves queued jobs queued — both durable, both
// resumable by the next process.
func TestE2EJobDrain(t *testing.T) {
	dir := t.TempDir()
	c, svc, _ := jobsService(t, dir, server.Config{Workers: 1})
	ctx := context.Background()

	runReq := &server.Request{Model: "nsdp", Size: 8, Engine: "exhaustive"}
	queuedReq := &server.Request{Model: "nsdp", Size: 6, Engine: "exhaustive"}
	running, err := c.SubmitJob(ctx, runReq)
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	queued, err := c.SubmitJob(ctx, queuedReq)
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	waitJob(t, c, running.ID, jobs.Running, jobs.Done)
	svc.Drain()
	got := waitJob(t, c, running.ID, jobs.Checkpointed, jobs.Done)
	if got.State == jobs.Checkpointed && got.CkptPath == "" {
		t.Fatalf("drain-suspended job has no checkpoint: %+v", got.Record)
	}
	// New submissions and resumes shed with 503 while draining.
	if _, err := c.SubmitJob(ctx, &server.Request{Model: "nsdp", Size: 4}); err == nil {
		t.Fatal("submit during drain succeeded")
	}
	svc.Close() // workers drain the queue; the queued job must survive it

	// The queued job was not burned: the store still says queued (or
	// checkpointed, had a worker started it before the drain flag rose).
	st2, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, ok := st2.Get(queued.ID)
	if !ok || (rec.State != jobs.Queued && rec.State != jobs.Checkpointed && rec.State != jobs.Done) {
		t.Fatalf("queued job after drain+close: %+v", rec)
	}
	if rec.State == jobs.Queued && rec.Resumes != 0 {
		t.Fatalf("queued job should be untouched: %+v", rec)
	}
	res := st2.Resumable()
	if len(res) == 0 {
		t.Fatalf("nothing resumable after drain; store: %+v", st2.List())
	}
}

// TestE2EJobValidation: jobs reject cluster execution and engines
// without deterministic checkpoint boundaries, as client errors.
func TestE2EJobValidation(t *testing.T) {
	c, _, _ := jobsService(t, t.TempDir(), server.Config{Workers: 1})
	ctx := context.Background()
	for _, req := range []*server.Request{
		{Model: "nsdp", Size: 4, Engine: "symbolic"},
		{Model: "nsdp", Size: 4, Engine: "partial-order"},
		{Model: "nsdp", Size: 4, Engine: "exhaustive", Cluster: true},
	} {
		_, err := c.SubmitJob(ctx, req)
		apiErr, ok := err.(*client.APIError)
		if !ok || apiErr.StatusCode != 400 {
			t.Errorf("submit %+v: err = %v, want 400", req, err)
		}
	}
	if _, err := c.Job(ctx, "rdeadbeef"); err == nil {
		t.Error("GET of unknown job succeeded")
	}
	if _, err := c.ResumeJob(ctx, "rdeadbeef"); err == nil {
		t.Error("resume of unknown job succeeded")
	}
}
