package server_test

// End-to-end tests of the distributed-tracing surface on a single-node
// server: GET /v1/runs/{id}/trace serves a one-peer bundle for a
// retained run, the merged view reconstructs the exact state count,
// durable jobs stamp lifecycle events onto the run's "job" track, and
// retention-off servers answer 404 rather than empty bundles.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/server/client"
)

// traceService boots a server and returns its base URL alongside the
// client — trace fetches go over raw HTTP, not the typed client.
func traceService(t *testing.T, cfg server.Config) (*client.Client, string, *obs.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Drain()
		ts.Close()
		svc.Close()
	})
	return client.New(ts.URL, ts.Client()), ts.URL, cfg.Metrics
}

// fetchBundle GETs /v1/runs/{id}/trace and parses the bundle.
func fetchBundle(t *testing.T, base, id string) *trace.Bundle {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET trace: %d: %s", resp.StatusCode, body)
	}
	b, err := trace.ReadBundle(resp.Body)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	return b
}

func TestE2ERunTraceEndpoint(t *testing.T) {
	c, base, reg := traceService(t, server.Config{Workers: 2, TraceRuns: 2})
	ctx := context.Background()

	resp, err := c.Verify(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "exhaustive"})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if resp.Status != server.StatusOK || resp.States != 322 {
		t.Fatalf("verify: %+v", resp)
	}
	if resp.RunID == "" {
		t.Fatal("response carries no run_id to fetch the trace by")
	}

	b := fetchBundle(t, base, resp.RunID)
	if b.RunID != resp.RunID || len(b.Peers) != 1 {
		t.Fatalf("bundle: run=%q peers=%d, want run=%q peers=1", b.RunID, len(b.Peers), resp.RunID)
	}
	p := b.Peers[0]
	if !p.Coordinator || p.Addr != "local" {
		t.Fatalf("bundle peer: %+v, want local coordinator", p)
	}
	if p.Dump.Meta["run_id"] != resp.RunID || p.Dump.Meta["engine"] == "" {
		t.Fatalf("dump meta: %+v", p.Dump.Meta)
	}
	m, err := trace.Merge(b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.States != int64(resp.States) {
		t.Fatalf("merged timeline reconstructs %d states, response says %d", m.States, resp.States)
	}
	if g := reg.Snapshot().Gauges["server.trace_runs"]; g != 1 {
		t.Fatalf("server.trace_runs = %d, want 1", g)
	}

	// Unknown run is a 404, not an empty bundle.
	hr, err := http.Get(base + "/v1/runs/no-such-run/trace")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", hr.StatusCode)
	}
}

func TestE2ERunTraceDisabled(t *testing.T) {
	c, base, _ := traceService(t, server.Config{Workers: 2})
	resp, err := c.Verify(context.Background(), &server.Request{Model: "nsdp", Size: 4, Engine: "exhaustive"})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	hr, err := http.Get(base + "/v1/runs/" + resp.RunID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("retention disabled: %d, want 404", hr.StatusCode)
	}
}

// TestE2EJobTraceLifecycle: a durable job's retained trace carries the
// lifecycle events on its "job" track (slice_begin → done), and the
// jobs.trace_events counter accounts for them.
func TestE2EJobTraceLifecycle(t *testing.T) {
	st, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c, base, reg := traceService(t, server.Config{Workers: 2, TraceRuns: 2, Jobs: st})
	ctx := context.Background()

	j, err := c.SubmitJob(ctx, &server.Request{Model: "nsdp", Size: 4, Engine: "exhaustive"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := waitJob(t, c, j.ID, jobs.Done)
	var res server.Response
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.RunID == "" {
		t.Fatal("job result carries no run_id")
	}

	b := fetchBundle(t, base, res.RunID)
	var steps []string
	for _, tk := range b.Peers[0].Dump.Tracks {
		if tk.Name != "job" {
			continue
		}
		for _, ev := range tk.Events {
			if ev.Kind == trace.KindJob {
				if ev.Arg0 >= 0 && ev.Arg0 < int64(len(b.Peers[0].Dump.Strings)) {
					steps = append(steps, b.Peers[0].Dump.Strings[ev.Arg0])
				}
			}
		}
	}
	if len(steps) < 2 || steps[0] != "slice_begin" || steps[len(steps)-1] != "done" {
		t.Fatalf("job lifecycle steps = %v, want slice_begin ... done", steps)
	}
	if n := reg.Snapshot().Counters["jobs.trace_events"]; n < int64(len(steps)) {
		t.Fatalf("jobs.trace_events = %d, want ≥ %d", n, len(steps))
	}
}
