package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/verify"
)

// cacheKey is the content address of a verification result: the SHA-256
// of the canonical binary encoding of the net plus every
// result-determining option.
type cacheKey [sha256.Size]byte

// appendString appends a length-prefixed string, the same self-delimiting
// style as the family algebras' AppendKey, so no two distinct nets can
// collide by concatenation.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendNetKey appends the canonical encoding of the net: name, places
// (names in index order), initial marking, and per-transition name and
// sorted pre/post place sets. Two requests hash equal iff they describe
// the same net the same way; structural isomorphs with different names
// or orderings are (deliberately) distinct — the witness in the response
// speaks in place names, so names are part of the content.
func appendNetKey(b []byte, n *petri.Net) []byte {
	b = appendString(b, n.Name())
	b = binary.AppendUvarint(b, uint64(n.NumPlaces()))
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		b = appendString(b, n.PlaceName(p))
	}
	init := n.InitialPlaces()
	b = binary.AppendUvarint(b, uint64(len(init)))
	for _, p := range init {
		b = binary.AppendUvarint(b, uint64(p))
	}
	b = binary.AppendUvarint(b, uint64(n.NumTrans()))
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		b = appendString(b, n.TransName(t))
		pre, post := n.Pre(t), n.Post(t)
		b = binary.AppendUvarint(b, uint64(len(pre)))
		for _, p := range pre {
			b = binary.AppendUvarint(b, uint64(p))
		}
		b = binary.AppendUvarint(b, uint64(len(post)))
		for _, p := range post {
			b = binary.AppendUvarint(b, uint64(p))
		}
	}
	return b
}

// requestKey hashes the net and the options that determine the result.
// Workers is excluded: the parallel exhaustive explorer is bit-identical
// to the sequential one (DESIGN.md D6), so both serve one cache line.
// Timeouts are excluded because aborted results are never cached.
func requestKey(n *petri.Net, check string, bad []petri.Place, o verify.Options) cacheKey {
	b := make([]byte, 0, 1024)
	b = appendNetKey(b, n)
	b = appendString(b, check)
	b = binary.AppendUvarint(b, uint64(len(bad)))
	for _, p := range bad {
		b = binary.AppendUvarint(b, uint64(p))
	}
	b = binary.AppendUvarint(b, uint64(o.Engine))
	flags := uint64(0)
	if o.StopAtFirst {
		flags |= 1
	}
	if o.Proviso {
		flags |= 2
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(o.MaxStates))
	b = binary.AppendUvarint(b, uint64(o.MaxNodes))
	return sha256.Sum256(b)
}

// cacheEntry is one cached result with its budget charge.
type cacheEntry struct {
	key  cacheKey
	resp Response
	size int64
}

// entrySize estimates an entry's memory footprint against the byte
// budget: struct overhead plus the variable-length strings.
func entrySize(r *Response) int64 {
	size := int64(len(cacheKey{})) + 256 // key + struct + list/map overhead
	size += int64(len(r.Net) + len(r.Engine) + len(r.Check) + len(r.Status))
	for _, w := range r.Witness {
		size += int64(len(w)) + 16
	}
	return size
}

// resultCache is the content-addressed LRU result cache: complete,
// uncancelled verification results keyed by requestKey, evicted least-
// recently-used when the byte budget is exceeded.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[cacheKey]*list.Element

	hits, misses, evictions *obs.Counter
	bytes, entries          *obs.Gauge
}

func newResultCache(budget int64, reg *obs.Registry) *resultCache {
	return &resultCache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[cacheKey]*list.Element),
		hits:      reg.Counter("server.cache_hits"),
		misses:    reg.Counter("server.cache_misses"),
		evictions: reg.Counter("server.cache_evictions"),
		bytes:     reg.Gauge("server.cache_bytes"),
		entries:   reg.Gauge("server.cache_entries"),
	}
}

// get returns a copy of the cached response for key, marking it as the
// most recently used. The copy has Cached set.
func (c *resultCache) get(key cacheKey) (*Response, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	resp := el.Value.(*cacheEntry).resp // copy; Witness backing array is never mutated
	resp.Cached = true
	return &resp, true
}

// put inserts a response, evicting from the cold end until the budget
// holds. Responses larger than the whole budget are not cached.
func (c *resultCache) put(key cacheKey, resp *Response) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: key, resp: *resp, size: entrySize(resp)}
	e.resp.Cached = false
	if e.size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical request raced through two workers; keep the first
		// result (they are equal) and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	c.used += e.size
	for c.used > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		ce := cold.Value.(*cacheEntry)
		c.ll.Remove(cold)
		delete(c.items, ce.key)
		c.used -= ce.size
		c.evictions.Inc()
	}
	c.bytes.Set(c.used)
	c.entries.Set(int64(c.ll.Len()))
}

// stats returns the current entry count and byte usage (tests).
func (c *resultCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.used
}
