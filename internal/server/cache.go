package server

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/verify"
)

// cacheKey is the content address of a verification result. The hashing
// itself lives in verify.RunKey: the same SHA-256 of the canonical
// net+options encoding also names the run in the ledger (as
// Key.RunID()) and on the /v1/runs surface, so the cache line, the
// ledger entry, the access-log line and the live run all join on one
// identity.
type cacheKey = verify.Key

// requestKey hashes the net and the options that determine the result.
// Workers is excluded: the parallel exhaustive explorer is bit-identical
// to the sequential one (DESIGN.md D6), so both serve one cache line.
// Timeouts are excluded because aborted results are never cached.
func requestKey(n *petri.Net, check string, bad []petri.Place, o verify.Options) cacheKey {
	return verify.RunKey(n, check, bad, o)
}

// cacheEntry is one cached result with its budget charge.
type cacheEntry struct {
	key  cacheKey
	resp Response
	size int64
}

// entrySize estimates an entry's memory footprint against the byte
// budget: struct overhead plus the variable-length strings.
func entrySize(r *Response) int64 {
	size := int64(len(cacheKey{})) + 256 // key + struct + list/map overhead
	size += int64(len(r.Net) + len(r.Engine) + len(r.Check) + len(r.Status))
	for _, w := range r.Witness {
		size += int64(len(w)) + 16
	}
	return size
}

// resultCache is the content-addressed LRU result cache: complete,
// uncancelled verification results keyed by requestKey, evicted least-
// recently-used when the byte budget is exceeded.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[cacheKey]*list.Element

	hits, misses, evictions *obs.Counter
	bytes, entries          *obs.Gauge
}

func newResultCache(budget int64, reg *obs.Registry) *resultCache {
	return &resultCache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[cacheKey]*list.Element),
		hits:      reg.Counter("server.cache_hits"),
		misses:    reg.Counter("server.cache_misses"),
		evictions: reg.Counter("server.cache_evictions"),
		bytes:     reg.Gauge("server.cache_bytes"),
		entries:   reg.Gauge("server.cache_entries"),
	}
}

// get returns a copy of the cached response for key, marking it as the
// most recently used. The copy has Cached set.
func (c *resultCache) get(key cacheKey) (*Response, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	resp := el.Value.(*cacheEntry).resp
	resp.Witness = cloneWitness(resp.Witness)
	resp.Cached = true
	return &resp, true
}

// cloneWitness deep-copies a witness slice. Both put and get copy: a
// caller mutating its Response after the fact (or a handler decorating
// a served copy) must never reach the cached entry, whose entrySize
// charge was computed from the bytes stored at admission.
func cloneWitness(w []string) []string {
	if w == nil {
		return nil
	}
	out := make([]string, len(w))
	copy(out, w)
	return out
}

// put inserts a response, evicting from the cold end until the budget
// holds. Responses larger than the whole budget are not cached.
func (c *resultCache) put(key cacheKey, resp *Response) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: key, resp: *resp, size: entrySize(resp)}
	e.resp.Witness = cloneWitness(resp.Witness)
	e.resp.Cached = false
	if e.size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical request raced through two workers; keep the first
		// result (they are equal) and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	c.used += e.size
	for c.used > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		ce := cold.Value.(*cacheEntry)
		c.ll.Remove(cold)
		delete(c.items, ce.key)
		c.used -= ce.size
		c.evictions.Inc()
	}
	c.bytes.Set(c.used)
	c.entries.Set(int64(c.ll.Len()))
}

// stats returns the current entry count and byte usage (tests).
func (c *resultCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.used
}
