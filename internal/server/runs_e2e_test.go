package server_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/server"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE parses an event stream until EOF or max events.
func readSSE(t *testing.T, r io.Reader, max int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if len(out) >= max {
					return out
				}
				cur = sseEvent{}
			}
		}
	}
	return out
}

type doneEventWire struct {
	RunID    string `json:"run_id"`
	Status   string `json:"status"`
	Deadlock bool   `json:"deadlock"`
	States   int64  `json:"states"`
	Complete bool   `json:"complete"`
	WallNS   int64  `json:"wall_ns"`
}

type progressEventWire struct {
	RunID     string `json:"run_id"`
	States    int64  `json:"states"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Final     bool   `json:"final"`
}

// runLine extends accessLine with the run-join fields.
type runLine struct {
	accessLine
	RunID       string `json:"run_id"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
}

func decodeRunLine(t *testing.T, buf *syncBuffer, id string) runLine {
	t.Helper()
	waitForLogLine(t, buf, id) // poll until the line exists
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line runLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable access log line %q: %v", sc.Text(), err)
		}
		if line.RequestID == id {
			return line
		}
	}
	t.Fatalf("no access log line for %q", id)
	return runLine{}
}

// TestE2EAbortedRunReconstructable is the ISSUE 6 acceptance pin: a
// deadline-aborted daemon run must be fully reconstructable after the
// fact — its ledger entry, access-log line, and trace dump all join on
// one content-addressed run ID, and the run surface serves it.
func TestE2EAbortedRunReconstructable(t *testing.T) {
	dir := t.TempDir()
	ldgPath := filepath.Join(dir, "runs.jsonl")
	ldg, err := ledger.Open(ldgPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ldg.Close()
	logBuf := &syncBuffer{}
	tracePath := func(id string) string { return filepath.Join(dir, id+".trace.jsonl") }
	cfg := server.Config{
		Workers:   1,
		Metrics:   obs.New(),
		AccessLog: logBuf,
		Ledger:    ldg,
		TraceSink: func(id string, d *trace.Dump) {
			f, err := os.Create(tracePath(id))
			if err != nil {
				t.Errorf("trace sink: %v", err)
				return
			}
			defer f.Close()
			if err := trace.WriteJSONL(f, d); err != nil {
				t.Errorf("trace sink write: %v", err)
			}
		},
		TracePath: tracePath,
	}
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	const id = "recon-1"
	body := `{"model":"nsdp","size":10,"engine":"exhaustive","timeout_ms":50}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	hr, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	var resp server.Response
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatalf("response: %v (%s)", err, respBody)
	}
	if resp.Status != server.StatusAborted {
		t.Skipf("nsdp(10) completed within 50ms on this machine: %+v", resp)
	}

	// 1. The access log line carries the run ID.
	line := decodeRunLine(t, logBuf, id)
	if line.RunID == "" || !strings.HasPrefix(line.RunID, "r") {
		t.Fatalf("access log run_id = %q", line.RunID)
	}
	if line.Outcome != server.StatusAborted {
		t.Fatalf("access log outcome = %q", line.Outcome)
	}

	// 2. The ledger entry joins on the same run ID and request ID, and
	// points at the trace dump.
	entries, err := ledger.Read(ldgPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.RunID != line.RunID {
		t.Fatalf("ledger run_id %q != access log run_id %q", e.RunID, line.RunID)
	}
	if e.RequestID != id || e.Source != "gpod" {
		t.Fatalf("ledger identity: %+v", e)
	}
	if e.Status != "aborted" || e.AbortReason != "deadline" || e.Complete {
		t.Fatalf("ledger outcome: %+v", e)
	}
	if e.States <= 0 || e.WallNS <= 0 || e.EndUnixNS <= e.StartUnixNS {
		t.Fatalf("ledger measurements: %+v", e)
	}
	if e.Metrics["reach.states"] != e.States {
		t.Fatalf("ledger metrics snapshot reach.states=%d, entry states=%d",
			e.Metrics["reach.states"], e.States)
	}
	if e.Verdict() != "aborted" {
		t.Fatalf("verdict = %q", e.Verdict())
	}

	// 3. The trace dump exists at the ledgered path and carries the same
	// run ID in its meta.
	if e.TracePath == "" {
		t.Fatal("ledger entry has no trace path")
	}
	f, err := os.Open(e.TracePath)
	if err != nil {
		t.Fatalf("ledgered trace path: %v", err)
	}
	d, err := trace.ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	if d.Meta["run_id"] != e.RunID || d.Meta["request_id"] != id {
		t.Fatalf("trace meta does not join: %+v", d.Meta)
	}

	// 4. The run surface serves the completed run: in the /v1/runs list,
	// by ID, and as a terminal SSE event.
	var list struct {
		Running   []json.RawMessage `json:"running"`
		Completed []ledger.Entry    `json:"completed"`
	}
	get := func(path string, v any) int {
		t.Helper()
		hr, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		b, _ := io.ReadAll(hr.Body)
		if v != nil && hr.StatusCode == http.StatusOK {
			if err := json.Unmarshal(b, v); err != nil {
				t.Fatalf("GET %s: %v (%s)", path, err, b)
			}
		}
		return hr.StatusCode
	}
	if code := get("/v1/runs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/runs: %d", code)
	}
	if len(list.Running) != 0 || len(list.Completed) != 1 || list.Completed[0].RunID != e.RunID {
		t.Fatalf("/v1/runs = running:%d completed:%+v", len(list.Running), list.Completed)
	}
	var byID ledger.Entry
	if code := get("/v1/runs/"+e.RunID, &byID); code != http.StatusOK {
		t.Fatalf("GET /v1/runs/{id}: %d", code)
	}
	if byID.RunID != e.RunID || byID.Status != "aborted" {
		t.Fatalf("/v1/runs/{id} = %+v", byID)
	}
	if code := get("/v1/runs/rdoesnotexist", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown run: %d, want 404", code)
	}

	hr, err = ts.Client().Get(ts.URL + "/v1/runs/" + e.RunID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	evs := readSSE(t, hr.Body, 4)
	if len(evs) != 1 || evs[0].event != "done" {
		t.Fatalf("SSE on completed run = %+v, want one done event", evs)
	}
	var done doneEventWire
	if err := json.Unmarshal(evs[0].data, &done); err != nil {
		t.Fatal(err)
	}
	if done.RunID != e.RunID || done.Status != "aborted" || done.States != e.States {
		t.Fatalf("done event %+v does not match ledger %+v", done, e)
	}
}

// TestE2ERunEventsStates pins the acceptance criterion that the SSE
// terminal event of a completed run reports exactly the run's final
// reach.states metric — streaming is an observer of the same numbers,
// never a second bookkeeping.
func TestE2ERunEventsStates(t *testing.T) {
	ldgPath := filepath.Join(t.TempDir(), "runs.jsonl")
	ldg, err := ledger.Open(ldgPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ldg.Close()
	reg := obs.New()
	svc := server.New(server.Config{Workers: 1, Metrics: reg, Ledger: ldg, ProgressEvery: 1})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	body := `{"model":"nsdp","size":4,"engine":"exhaustive"}`
	hr, err := ts.Client().Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if resp.Status != server.StatusOK || resp.States != 322 {
		t.Fatalf("verify: %+v", resp)
	}

	entries, err := ledger.Read(ldgPath)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ledger: %v, %d entries", err, len(entries))
	}
	e := entries[0]
	runStates := reg.Counter("reach.states").Value()
	if runStates != 322 {
		t.Fatalf("process reach.states = %d, want 322", runStates)
	}
	if e.States != runStates || e.Metrics["reach.states"] != runStates {
		t.Fatalf("ledger states %d / metrics %d != reach.states %d",
			e.States, e.Metrics["reach.states"], runStates)
	}
	if e.Status != "ok" || !e.Complete || e.Verdict() != "deadlock" {
		t.Fatalf("ledger outcome: %+v", e)
	}

	hr, err = ts.Client().Get(ts.URL + "/v1/runs/" + e.RunID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	evs := readSSE(t, hr.Body, 4)
	if len(evs) != 1 || evs[0].event != "done" {
		t.Fatalf("SSE = %+v", evs)
	}
	var done doneEventWire
	if err := json.Unmarshal(evs[0].data, &done); err != nil {
		t.Fatal(err)
	}
	if done.States != runStates {
		t.Fatalf("SSE done event states = %d, reach.states = %d", done.States, runStates)
	}
	if done.Status != "ok" || !done.Complete || !done.Deadlock {
		t.Fatalf("done event: %+v", done)
	}

	// A cache hit is not a run: repeating the request adds no ledger
	// entry but its access-joinable run ID is the same content address.
	hr, err = ts.Client().Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	entries, _ = ledger.Read(ldgPath)
	if len(entries) != 1 {
		t.Fatalf("cache hit appended a ledger entry: %d entries", len(entries))
	}
}

// TestE2ERunEventsLiveStream drives the live half of the run surface:
// while a long exploration occupies the only worker, the run appears in
// GET /v1/runs as running, two SSE subscribers stream its progress
// concurrently, a quick second request records a positive queue wait,
// and everyone sees the same terminal verdict.
func TestE2ERunEventsLiveStream(t *testing.T) {
	ldgPath := filepath.Join(t.TempDir(), "runs.jsonl")
	ldg, err := ledger.Open(ldgPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ldg.Close()
	logBuf := &syncBuffer{}
	svc := server.New(server.Config{
		Workers:          1,
		Metrics:          obs.New(),
		Ledger:           ldg,
		AccessLog:        logBuf,
		ProgressEvery:    1024,
		ProgressInterval: time.Millisecond,
	})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	// Kick off a run long enough to observe live: nsdp(10) either takes
	// a while or aborts at 5s — both produce progress and a verdict.
	type result struct {
		resp server.Response
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		body := `{"model":"nsdp","size":10,"engine":"exhaustive","timeout_ms":5000}`
		hr, err := ts.Client().Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer hr.Body.Close()
		var r result
		r.err = json.NewDecoder(hr.Body).Decode(&r.resp)
		resCh <- r
	}()

	// Wait for the run to surface on /v1/runs.
	var runID string
	deadline := time.Now().Add(10 * time.Second)
	for runID == "" && time.Now().Before(deadline) {
		var list struct {
			Running []struct {
				RunID string `json:"run_id"`
				State string `json:"state"`
				Net   string `json:"net"`
			} `json:"running"`
		}
		hr, err := ts.Client().Get(ts.URL + "/v1/runs")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(hr.Body).Decode(&list)
		hr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range list.Running {
			if r.Net == "NSDP(10)" {
				runID = r.RunID
			}
		}
		time.Sleep(time.Millisecond)
	}
	if runID == "" {
		t.Skip("run finished before it could be observed live")
	}

	// While the worker is busy, a second request must wait in the queue
	// and record that wait in its access log line.
	quickCh := make(chan error, 1)
	go func() {
		body := `{"model":"nsdp","size":4,"engine":"gpo"}`
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
		req.Header.Set("X-Request-ID", "queued-1")
		hr, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, hr.Body)
			hr.Body.Close()
		}
		quickCh <- err
	}()

	// Two concurrent subscribers on the same live run.
	stream := func() ([]sseEvent, error) {
		hr, err := ts.Client().Get(ts.URL + "/v1/runs/" + runID + "/events")
		if err != nil {
			return nil, err
		}
		defer hr.Body.Close()
		return readSSE(t, hr.Body, 1_000_000), nil
	}
	type streamed struct {
		evs []sseEvent
		err error
	}
	subCh := make(chan streamed, 2)
	for i := 0; i < 2; i++ {
		go func() {
			evs, err := stream()
			subCh <- streamed{evs, err}
		}()
	}

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	for i := 0; i < 2; i++ {
		st := <-subCh
		if st.err != nil {
			t.Fatal(st.err)
		}
		if len(st.evs) == 0 {
			t.Fatal("subscriber saw no events")
		}
		last := st.evs[len(st.evs)-1]
		if last.event != "done" {
			t.Fatalf("stream did not end with done: last=%+v", last)
		}
		var done doneEventWire
		if err := json.Unmarshal(last.data, &done); err != nil {
			t.Fatal(err)
		}
		if done.RunID != runID || done.States != int64(res.resp.States) {
			t.Fatalf("done event %+v vs response %+v", done, res.resp)
		}
		var progress int
		for _, ev := range st.evs[:len(st.evs)-1] {
			if ev.event != "progress" {
				t.Fatalf("unexpected event %q mid-stream", ev.event)
			}
			var p progressEventWire
			if err := json.Unmarshal(ev.data, &p); err != nil {
				t.Fatal(err)
			}
			if p.RunID != runID {
				t.Fatalf("progress event for %q on stream of %q", p.RunID, runID)
			}
			progress++
		}
		if progress == 0 {
			t.Error("live subscriber saw no progress events before the verdict")
		}
	}

	// The queued request's line joins and shows it waited.
	if err := <-quickCh; err != nil {
		t.Fatal(err)
	}
	line := decodeRunLine(t, logBuf, "queued-1")
	if line.RunID == "" {
		t.Fatalf("queued request line has no run_id: %+v", line)
	}
	if line.QueueWaitNS <= 0 {
		t.Errorf("queued request queue_wait_ns = %d, want > 0", line.QueueWaitNS)
	}
}
