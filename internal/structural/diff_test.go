package structural

import (
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/reach"
)

// subsetPlaces decodes a bitmask over the net's places (≤ 10 places, so
// every subset is enumerable).
func subsetPlaces(mask int, nPlaces int) []petri.Place {
	var s []petri.Place
	for p := 0; p < nPlaces; p++ {
		if mask&(1<<p) != 0 {
			s = append(s, petri.Place(p))
		}
	}
	return s
}

// bruteIsSiphon checks •S ⊆ S• straight from the definition: every
// transition producing into S must also consume from S.
func bruteIsSiphon(n *petri.Net, s []petri.Place) bool {
	in := make(map[petri.Place]bool, len(s))
	for _, p := range s {
		in[p] = true
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		produces := false
		for _, p := range n.Post(t) {
			if in[p] {
				produces = true
				break
			}
		}
		if !produces {
			continue
		}
		consumes := false
		for _, p := range n.Pre(t) {
			if in[p] {
				consumes = true
				break
			}
		}
		if !consumes {
			return false
		}
	}
	return true
}

// bruteIsTrap checks S• ⊆ •S from the definition.
func bruteIsTrap(n *petri.Net, s []petri.Place) bool {
	in := make(map[petri.Place]bool, len(s))
	for _, p := range s {
		in[p] = true
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		consumes := false
		for _, p := range n.Pre(t) {
			if in[p] {
				consumes = true
				break
			}
		}
		if !consumes {
			continue
		}
		produces := false
		for _, p := range n.Post(t) {
			if in[p] {
				produces = true
				break
			}
		}
		if !produces {
			return false
		}
	}
	return true
}

// TestSiphonTrapBruteForce cross-validates IsSiphon/IsTrap against the
// definitional check on every nonempty place subset of seeded random
// nets (9 places ⇒ 511 subsets each).
func TestSiphonTrapBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		if net.NumPlaces() > 10 {
			t.Fatalf("seed %d: %d places, want ≤ 10 for enumeration", seed, net.NumPlaces())
		}
		for mask := 1; mask < 1<<net.NumPlaces(); mask++ {
			s := subsetPlaces(mask, net.NumPlaces())
			if got, want := IsSiphon(net, s), bruteIsSiphon(net, s); got != want {
				t.Fatalf("seed %d: IsSiphon(%v) = %v, brute force says %v", seed, s, got, want)
			}
			if got, want := IsTrap(net, s), bruteIsTrap(net, s); got != want {
				t.Fatalf("seed %d: IsTrap(%v) = %v, brute force says %v", seed, s, got, want)
			}
		}
	}
}

// TestMaxSiphonWithinBruteForce checks the greatest-fixpoint computation
// against the union of all siphons contained in the candidate set (the
// maximal siphon within a set is exactly that union, since siphons are
// closed under union).
func TestMaxSiphonWithinBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		nP := net.NumPlaces()
		for _, candMask := range []int{1<<nP - 1, 0x155, 0x0ff, 0x1c7} {
			cand := subsetPlaces(candMask, nP)
			union := 0
			for sub := candMask; sub > 0; sub = (sub - 1) & candMask {
				if bruteIsSiphon(net, subsetPlaces(sub, nP)) {
					union |= sub
				}
			}
			gotMask := 0
			for _, p := range MaxSiphonWithin(net, cand) {
				gotMask |= 1 << p
			}
			if gotMask != union {
				t.Fatalf("seed %d cand %#x: MaxSiphonWithin = %#x, union of siphons = %#x",
					seed, candMask, gotMask, union)
			}
		}
	}
}

// TestProveSafeDifferential validates the structural safeness
// certificate against exhaustive exploration: every place ProveSafe
// claims covered must be 1-bounded in every reachable marking (randnet
// nets are safe by construction, so reach.Explore doubles as the ground
// truth — it fails with ErrUnsafe otherwise), and the invariants backing
// the claim must hold with weight 1 on every reachable marking.
func TestProveSafeDifferential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		invs, err := PInvariants(net, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		uncovered := ProveSafe(net, invs)
		res, err := reach.Explore(net, reach.Options{StoreGraph: true})
		if err != nil {
			t.Fatalf("seed %d: exploration refutes safety that ProveSafe implied: %v", seed, err)
		}
		m0 := net.InitialMarking()
		for _, y := range invs {
			if Weight(y, m0) != 1 {
				continue
			}
			for _, m := range res.Graph.States {
				if w := Weight(y, m); w != 1 {
					t.Fatalf("seed %d: unit invariant %v has weight %d in reachable %s",
						seed, y, w, m.String(net))
				}
			}
		}
		// Uncovered places are legitimate on random nets (the Farkas
		// generating set need not contain a unit invariant per place —
		// sync transitions can fold the machine cycles into wider
		// vectors), but a coverage claim must rest on genuine unit
		// invariants: recompute coverage from the validated invariants
		// and require it to match what ProveSafe reported.
		covered := make([]bool, net.NumPlaces())
		for _, y := range invs {
			if Weight(y, m0) != 1 {
				continue
			}
			for p, w := range y {
				if w >= 1 {
					covered[p] = true
				}
			}
		}
		for p, ok := range covered {
			claimed := true
			for _, u := range uncovered {
				if int(u) == p {
					claimed = false
				}
			}
			if ok != claimed {
				t.Errorf("seed %d: place %d coverage mismatch: invariants say %v, ProveSafe says %v",
					seed, p, ok, claimed)
			}
		}
	}
}

// TestProveSafeCoversClassicalModels pins the positive case: on the
// paper's models the Farkas generating set does contain the unit
// invariants (process cycles, mutual-exclusion tokens), so the
// structural proof covers every place.
func TestProveSafeCoversClassicalModels(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(4), models.Fig1(4), models.Fig2(3),
		models.ReadersWriters(3), models.Overtake(2),
	}
	for _, net := range nets {
		invs, err := PInvariants(net, 0)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if uncovered := ProveSafe(net, invs); len(uncovered) != 0 {
			t.Errorf("%s: structural safety proof left %v uncovered", net.Name(), uncovered)
		}
	}
}
