// Package structural implements structural (state-space-free) analysis of
// Petri nets: the incidence matrix, nonnegative P-invariants via the
// Farkas algorithm, a safeness certificate built from invariants, and
// siphon/trap computations.
//
// The paper assumes its input nets are safe (Section 2.1). Reachability
// analysis can only refute safeness when it stumbles on a violation;
// P-invariants prove it up front: a place p with an invariant y such that
// y(p) ≥ 1 and y·m₀ = 1 can never hold two tokens. Siphons connect
// structure to deadlocks: the unmarked places of any dead marking form a
// siphon, which makes a useful diagnostic for the engines' witnesses.
package structural

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/petri"
)

// Incidence returns the incidence matrix C with C[p][t] =
// |t•∩{p}| − |•t∩{p}| ∈ {−1,0,1} for ordinary nets (self-loops yield 0).
func Incidence(n *petri.Net) [][]int {
	c := make([][]int, n.NumPlaces())
	for p := range c {
		c[p] = make([]int, n.NumTrans())
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		for _, p := range n.Pre(t) {
			c[p][t]--
		}
		for _, p := range n.Post(t) {
			c[p][t]++
		}
	}
	return c
}

// PInvariants computes a generating set of nonnegative P-invariants —
// vectors y ≥ 0, y ≠ 0 with yᵀC = 0 — using the Farkas algorithm.
// maxRows caps the intermediate row count (the algorithm is worst-case
// exponential); 0 means 4096. It returns an error if the cap is exceeded.
func PInvariants(n *petri.Net, maxRows int) ([][]int, error) {
	if maxRows == 0 {
		maxRows = 4096
	}
	nP, nT := n.NumPlaces(), n.NumTrans()
	c := Incidence(n)

	// Rows are [y | yᵀC-so-far]: start with the identity on places.
	type row struct {
		y []int // length nP
		d []int // length nT, the residual yᵀC
	}
	rows := make([]row, nP)
	for p := 0; p < nP; p++ {
		y := make([]int, nP)
		y[p] = 1
		d := make([]int, nT)
		copy(d, c[p])
		rows[p] = row{y, d}
	}

	for t := 0; t < nT; t++ {
		var zero, pos, neg []row
		for _, r := range rows {
			switch {
			case r.d[t] == 0:
				zero = append(zero, r)
			case r.d[t] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := -rn.d[t], rp.d[t] // both positive
				g := gcd(a, b)
				a, b = a/g, b/g
				y := make([]int, nP)
				d := make([]int, nT)
				for i := range y {
					y[i] = a*rp.y[i] + b*rn.y[i]
				}
				for i := range d {
					d[i] = a*rp.d[i] + b*rn.d[i]
				}
				// Scale y and d by their joint gcd so the invariant
				// yᵀC = d is preserved.
				g = 0
				for _, v := range y {
					g = gcd(g, v)
				}
				for _, v := range d {
					g = gcd(g, v)
				}
				if g > 1 {
					for i := range y {
						y[i] /= g
					}
					for i := range d {
						d[i] /= g
					}
				}
				next = append(next, row{y, d})
				if len(next) > maxRows {
					return nil, fmt.Errorf("structural: Farkas row cap %d exceeded at transition %d", maxRows, t)
				}
			}
		}
		// Dedupe identical rows to keep the frontier small. The key is
		// the self-delimiting binary encoding of [y | d] — zigzag varints
		// (d residuals go negative), the same AppendKey idiom as the
		// family algebras — rather than fmt.Sprint, which allocated a
		// formatted string per row on this hot path.
		seen := make(map[string]bool, len(next))
		rows = next[:0]
		var kbuf []byte
		for _, r := range next {
			kbuf = kbuf[:0]
			for _, v := range r.y {
				kbuf = binary.AppendVarint(kbuf, int64(v))
			}
			for _, v := range r.d {
				kbuf = binary.AppendVarint(kbuf, int64(v))
			}
			k := string(kbuf)
			if !seen[k] {
				seen[k] = true
				rows = append(rows, r)
			}
		}
	}

	out := make([][]int, 0, len(rows))
	for _, r := range rows {
		if !isZero(r.y) {
			out = append(out, r.y)
		}
	}
	return out, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func isZero(v []int) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// InvariantHolds checks yᵀC = 0.
func InvariantHolds(n *petri.Net, y []int) bool {
	c := Incidence(n)
	for t := 0; t < n.NumTrans(); t++ {
		sum := 0
		for p := 0; p < n.NumPlaces(); p++ {
			sum += y[p] * c[p][t]
		}
		if sum != 0 {
			return false
		}
	}
	return true
}

// Weight returns yᵀm for a marking m.
func Weight(y []int, m petri.Marking) int {
	sum := 0
	for p, w := range y {
		if m.Has(petri.Place(p)) {
			sum += w
		}
	}
	return sum
}

// ProveSafe attempts a structural safeness proof: every place must be
// covered by a P-invariant y with y(p) ≥ 1 and yᵀm₀ = 1 (the invariant's
// token weight is conserved at 1, so p can never hold 2 tokens). It
// returns the uncovered places (empty means the net is provably safe).
func ProveSafe(n *petri.Net, invariants [][]int) []petri.Place {
	m0 := n.InitialMarking()
	covered := make([]bool, n.NumPlaces())
	for _, y := range invariants {
		if Weight(y, m0) != 1 {
			continue
		}
		for p, w := range y {
			if w >= 1 {
				covered[p] = true
			}
		}
	}
	var out []petri.Place
	for p, ok := range covered {
		if !ok {
			out = append(out, petri.Place(p))
		}
	}
	return out
}

// MaxSiphonWithin returns the largest siphon contained in the given place
// set: a set S with •S ⊆ S• (every transition putting tokens into S also
// takes a token from S). Once a siphon is empty it stays empty forever.
// The empty set is (trivially) returned when no nonempty siphon exists.
func MaxSiphonWithin(n *petri.Net, candidate []petri.Place) []petri.Place {
	in := make(map[petri.Place]bool, len(candidate))
	for _, p := range candidate {
		in[p] = true
	}
	for changed := true; changed; {
		changed = false
		for p := range in {
			// p must go if some producer of p does not consume from S.
			for _, t := range n.PreT(p) {
				consumes := false
				for _, q := range n.Pre(t) {
					if in[q] {
						consumes = true
						break
					}
				}
				if !consumes {
					delete(in, p)
					changed = true
					break
				}
			}
		}
	}
	out := make([]petri.Place, 0, len(in))
	for p := range in {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxTrapWithin returns the largest trap contained in the set: S• ⊆ •S
// (every transition taking from S also puts back). A marked trap can never
// be emptied.
func MaxTrapWithin(n *petri.Net, candidate []petri.Place) []petri.Place {
	in := make(map[petri.Place]bool, len(candidate))
	for _, p := range candidate {
		in[p] = true
	}
	for changed := true; changed; {
		changed = false
		for p := range in {
			for _, t := range n.PostT(p) {
				produces := false
				for _, q := range n.Post(t) {
					if in[q] {
						produces = true
						break
					}
				}
				if !produces {
					delete(in, p)
					changed = true
					break
				}
			}
		}
	}
	out := make([]petri.Place, 0, len(in))
	for p := range in {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSiphon checks •S ⊆ S• for a nonempty set.
func IsSiphon(n *petri.Net, s []petri.Place) bool {
	if len(s) == 0 {
		return false
	}
	return len(MaxSiphonWithin(n, s)) == len(s)
}

// IsTrap checks S• ⊆ •S for a nonempty set.
func IsTrap(n *petri.Net, s []petri.Place) bool {
	if len(s) == 0 {
		return false
	}
	return len(MaxTrapWithin(n, s)) == len(s)
}

// DeadlockSiphon explains a dead marking structurally: the unmarked places
// of any deadlock form a siphon (every transition has an unmarked input
// place, and that input's producers all need tokens from unmarked places
// too). It returns the maximal empty siphon of the witness.
func DeadlockSiphon(n *petri.Net, dead petri.Marking) []petri.Place {
	var unmarked []petri.Place
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if !dead.Has(p) {
			unmarked = append(unmarked, p)
		}
	}
	return MaxSiphonWithin(n, unmarked)
}
