package structural

import (
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/reach"
)

// TestInvariantsHold checks every Farkas-generated vector really is a
// P-invariant, on all benchmark models.
func TestInvariantsHold(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(4),
		models.Fig1(4), models.Fig2(3), models.Fig3(), models.Fig7(),
		models.ReadersWriters(3), models.ArbiterTree(4), models.Overtake(2),
	}
	for _, net := range nets {
		invs, err := PInvariants(net, 0)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if len(invs) == 0 {
			t.Errorf("%s: no invariants found", net.Name())
		}
		for _, y := range invs {
			if !InvariantHolds(net, y) {
				t.Errorf("%s: vector %v is not an invariant", net.Name(), y)
			}
			neg := false
			for _, v := range y {
				if v < 0 {
					neg = true
				}
			}
			if neg {
				t.Errorf("%s: invariant %v has negative entries", net.Name(), y)
			}
		}
	}
}

// TestInvariantWeightConserved checks yᵀm is constant over the whole
// reachable state space.
func TestInvariantWeightConserved(t *testing.T) {
	net := models.NSDP(3)
	invs, err := PInvariants(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reach.Explore(net, reach.Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	m0 := net.InitialMarking()
	for _, y := range invs {
		w0 := Weight(y, m0)
		for _, m := range res.Graph.States {
			if Weight(y, m) != w0 {
				t.Fatalf("invariant %v weight changed: %d -> %d at %s",
					y, w0, Weight(y, m), m.String(net))
			}
		}
	}
}

// TestProveSafe proves safeness structurally for the benchmark nets (they
// are all covered by one-token P-invariants).
func TestProveSafe(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(4), models.Fig1(3), models.Fig2(3),
		models.Fig3(), models.ReadersWriters(3), models.Overtake(2),
	}
	for _, net := range nets {
		invs, err := PInvariants(net, 0)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if uncovered := ProveSafe(net, invs); len(uncovered) != 0 {
			names := make([]string, len(uncovered))
			for i, p := range uncovered {
				names[i] = net.PlaceName(p)
			}
			t.Errorf("%s: safeness not proven for %v", net.Name(), names)
		}
	}
}

// TestDeadlockSiphon checks the structural explanation of NSDP deadlocks:
// the unmarked places of a dead marking contain a nonempty siphon, and
// that siphon contains the fork places.
func TestDeadlockSiphon(t *testing.T) {
	net := models.NSDP(3)
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocks) == 0 {
		t.Fatal("NSDP(3) must deadlock")
	}
	for _, dead := range res.Deadlocks {
		s := DeadlockSiphon(net, dead)
		if len(s) == 0 {
			t.Fatalf("deadlock %s has no empty siphon", dead.String(net))
		}
		if !IsSiphon(net, s) {
			t.Fatalf("returned set is not a siphon")
		}
		has := make(map[petri.Place]bool)
		for _, p := range s {
			has[p] = true
		}
		for i := 0; i < 3; i++ {
			f, _ := net.PlaceByName("fork" + string(rune('0'+i)))
			if !has[f] {
				t.Errorf("deadlock siphon misses fork%d", i)
			}
		}
	}
}

// TestSiphonTrapDuality checks IsSiphon/IsTrap on hand-picked sets of the
// Fig2 net: each conflict place alone is a siphon (tokens only leave);
// each pair {a_i, b_i} of output places is a trap (tokens never leave).
func TestSiphonTrapDuality(t *testing.T) {
	net := models.Fig2(2)
	c0, _ := net.PlaceByName("c0")
	a0, _ := net.PlaceByName("a0")
	b0, _ := net.PlaceByName("b0")
	if !IsSiphon(net, []petri.Place{c0}) {
		t.Error("{c0} must be a siphon")
	}
	if IsTrap(net, []petri.Place{c0}) {
		t.Error("{c0} must not be a trap")
	}
	if !IsTrap(net, []petri.Place{a0, b0}) {
		t.Error("{a0,b0} must be a trap")
	}
	if IsSiphon(net, []petri.Place{a0}) {
		t.Error("{a0} must not be a siphon (A0 produces into it from outside)")
	}
}

// TestEmptySiphonStaysEmpty property-checks the defining property of
// siphons on random nets: once empty in some reachable marking, a siphon
// is empty in every marking reachable from there.
func TestEmptySiphonStaysEmpty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		res, err := reach.Explore(net, reach.Options{StoreGraph: true})
		if err != nil {
			t.Fatal(err)
		}
		all := make([]petri.Place, net.NumPlaces())
		for p := range all {
			all[p] = petri.Place(p)
		}
		s := MaxSiphonWithin(net, all)
		if len(s) == 0 {
			continue
		}
		marked := func(m petri.Marking) bool {
			for _, p := range s {
				if m.Has(p) {
					return true
				}
			}
			return false
		}
		// BFS over the stored graph: once unmarked, stays unmarked.
		g := res.Graph
		for i, m := range g.States {
			if marked(m) {
				continue
			}
			for _, e := range g.Edges[i] {
				if marked(g.States[e.To]) {
					t.Fatalf("seed %d: siphon re-marked by %s", seed, net.TransName(e.T))
				}
			}
		}
	}
}

// TestPInvariantsPinnedCounts pins the generating-set sizes on the
// benchmark models: the binary dedupe key must keep exactly the rows the
// previous fmt.Sprint key kept (both are injective on fixed-length
// [y | d] rows, so the counts below — captured before the key change —
// must never move), every vector must be a genuine nonnegative
// invariant, and no two returned invariants may be equal.
func TestPInvariantsPinnedCounts(t *testing.T) {
	cases := []struct {
		family string
		size   int
		want   int
	}{
		{"nsdp", 2, 4}, {"nsdp", 3, 6}, {"nsdp", 4, 8}, {"nsdp", 6, 12},
		{"fig1", 2, 2}, {"fig1", 3, 3}, {"fig1", 4, 4}, {"fig1", 6, 6},
		{"fig2", 2, 2}, {"fig2", 3, 3}, {"fig2", 4, 4}, {"fig2", 6, 6},
		{"rw", 2, 5}, {"rw", 3, 7}, {"rw", 4, 9}, {"rw", 6, 13},
		{"over", 2, 4}, {"over", 3, 6}, {"over", 4, 8}, {"over", 6, 12},
		{"asat", 2, 8}, {"asat", 4, 45},
	}
	for _, c := range cases {
		net, err := models.ByName(c.family, c.size)
		if err != nil {
			t.Fatal(err)
		}
		invs, err := PInvariants(net, 0)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if len(invs) != c.want {
			t.Errorf("%s: %d invariants, want %d", net.Name(), len(invs), c.want)
		}
		seen := make(map[string]bool, len(invs))
		for _, y := range invs {
			if !InvariantHolds(net, y) {
				t.Errorf("%s: %v is not an invariant", net.Name(), y)
			}
			k := fmt.Sprint(y)
			if seen[k] {
				t.Errorf("%s: duplicate invariant %v survived dedupe", net.Name(), y)
			}
			seen[k] = true
		}
	}
}

// BenchmarkPInvariants measures the Farkas computation — dominated by
// the per-row dedupe key on wide nets — with allocation counts; the
// binary key replaced a fmt.Sprint that allocated a formatted string
// per surviving row.
func BenchmarkPInvariants(b *testing.B) {
	net := models.NSDP(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PInvariants(net, 0); err != nil {
			b.Fatal(err)
		}
	}
}
