package reduce_test

import (
	"testing"

	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/structural/reduce"
	"repro/internal/verify"
)

var allEngines = []verify.Engine{
	verify.Exhaustive, verify.PartialOrder, verify.Symbolic,
	verify.GPO, verify.GPOExplicit, verify.Unfolding,
}

// TestReduceDeterministic pins that the pipeline is a pure function of
// the net: two runs produce structurally identical reduced nets and
// identical rule counts (reduced runs share content-addressed run IDs,
// so this is load-bearing for the cache and the ledger).
func TestReduceDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		a, err := reduce.Run(net, reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := reduce.Run(net, reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ka := verify.AppendNetKey(nil, a.Net())
		kb := verify.AppendNetKey(nil, b.Net())
		if string(ka) != string(kb) {
			t.Fatalf("seed %d: two reductions of the same net differ", seed)
		}
		ra, rb := a.Rules(), b.Rules()
		if len(ra) != len(rb) {
			t.Fatalf("seed %d: rule counts differ: %v vs %v", seed, ra, rb)
		}
		for k, v := range ra {
			if rb[k] != v {
				t.Fatalf("seed %d: rule counts differ: %v vs %v", seed, ra, rb)
			}
		}
	}
}

// TestReduceExpandInitialMarking checks the certificate's arithmetic on
// the one reachable marking we always know: expanding the reduced
// initial marking must reproduce the original initial marking exactly.
func TestReduceExpandInitialMarking(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		cert, err := reduce.Run(net, reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := cert.ExpandMarking(cert.Net().InitialMarking())
		if !got.Equal(net.InitialMarking()) {
			t.Fatalf("seed %d: expand(reduced m0) = %s, want %s",
				seed, got.String(net), net.InitialMarking().String(net))
		}
		if cert.ExpandMarking(nil) != nil {
			t.Fatalf("seed %d: ExpandMarking(nil) != nil", seed)
		}
	}
}

// soundMaxStates caps each engine run in the random-net differentials.
// The GPO family analysis legitimately explodes on some random nets
// (unreduced ones included — the same reason internal/core's own
// differential test caps at 3000), so capped runs that did not complete
// are skipped rather than compared; exhaustive exploration of these tiny
// nets is the ground truth every completed run must agree with.
const soundMaxStates = 4000

// TestReduceDeadlockSoundRandom is the reduction soundness differential:
// on seeded random nets, every engine run that completes — with and
// without the reduction pre-pass — must agree with the exhaustive ground
// truth, and the mapped witness must be a genuine dead marking of the
// original net.
func TestReduceDeadlockSoundRandom(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 6
	}
	compared, skipped := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		ground, err := verify.CheckDeadlock(net, verify.Options{Engine: verify.Exhaustive})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, eng := range allEngines {
			opts := verify.Options{Engine: eng, MaxStates: soundMaxStates, MaxNodes: 1 << 21}
			base, errb := verify.CheckDeadlock(net, opts)
			opts.Reduce = true
			red, errr := verify.CheckDeadlock(net, opts)
			runs := []struct {
				label string
				rep   *verify.Report
				err   error
			}{{"base", base, errb}, {"reduced", red, errr}}
			for _, r := range runs {
				if r.err != nil || !r.rep.Complete {
					skipped++
					continue
				}
				compared++
				if r.rep.Deadlock != ground.Deadlock {
					t.Errorf("seed %d %s %s: verdict %v, exhaustive says %v",
						seed, eng, r.label, r.rep.Deadlock, ground.Deadlock)
				}
				if r.rep.Witness != nil && !net.IsDeadlock(r.rep.Witness) {
					t.Errorf("seed %d %s %s: witness %s is not dead in the original net",
						seed, eng, r.label, r.rep.Witness.String(net))
				}
			}
		}
	}
	if compared == 0 {
		t.Fatal("every run hit the state cap; the differential compared nothing")
	}
	t.Logf("compared %d runs, skipped %d capped runs", compared, skipped)
}

// TestReduceSafetySoundRandom checks the safety path: random bad pairs,
// verdict equality for every engine, and mapped witnesses that really
// exhibit the property — a reachable bad marking for the direct engines,
// a trap-marked deadlock of the monitored original net for the engines
// that reduce safety to deadlock.
func TestReduceSafetySoundRandom(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		// Two bad pairs per net: one likely reachable (initial places of
		// two machines), one arbitrary.
		init := net.InitialPlaces()
		pairs := [][]petri.Place{
			{init[0], init[1]},
			{petri.Place(1), petri.Place(int(seed) % net.NumPlaces())},
		}
		for _, bad := range pairs {
			if bad[0] == bad[1] {
				continue
			}
			ground, err := verify.CheckSafety(net, bad, verify.Options{Engine: verify.Exhaustive})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, eng := range allEngines {
				opts := verify.Options{Engine: eng, MaxStates: soundMaxStates, MaxNodes: 1 << 21, Reduce: true}
				red, err := verify.CheckSafety(net, bad, opts)
				if err != nil || !red.Complete {
					continue // capped: the family analysis can blow up here too
				}
				if ground.Deadlock != red.Deadlock {
					t.Errorf("seed %d %s bad=%v: exhaustive verdict %v, reduced+mapped %v",
						seed, eng, bad, ground.Deadlock, red.Deadlock)
				}
				if red.Witness == nil {
					continue
				}
				switch eng {
				case verify.Exhaustive, verify.Symbolic:
					for _, p := range bad {
						if !red.Witness.Has(p) {
							t.Errorf("seed %d %s: mapped witness misses bad place %s",
								seed, eng, net.PlaceName(p))
						}
					}
				default:
					mon, trap, err := petri.WithSafetyMonitor(net, bad)
					if err != nil {
						t.Fatal(err)
					}
					if !red.Witness.Has(trap) {
						t.Errorf("seed %d %s: mapped monitored witness has no trap token", seed, eng)
					}
					if !mon.IsDeadlock(red.Witness) {
						t.Errorf("seed %d %s: mapped monitored witness %s is not dead in mon(original)",
							seed, eng, red.Witness.String(mon))
					}
				}
			}
		}
	}
}

// TestReduceProtectKeepsPlaces checks the Protect contract: protected
// places always survive into the reduced net and MapPlaces resolves
// them.
func TestReduceProtectKeepsPlaces(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		net := randnet.Generate(randnet.Default(seed))
		protect := []petri.Place{0, petri.Place(net.NumPlaces() - 1)}
		cert, err := reduce.Run(net, reduce.Options{Protect: protect})
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := cert.MapPlaces(protect)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, rp := range mapped {
			if got := cert.Net().PlaceName(rp); got != net.PlaceName(protect[i]) {
				t.Errorf("seed %d: protected %s mapped to %s", seed, net.PlaceName(protect[i]), got)
			}
		}
	}
}
