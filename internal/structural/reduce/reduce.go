// Package reduce implements a sound, ordinary-net-preserving structural
// reduction pipeline applied before state-space exploration, in the
// spirit of Berthelot's agglomerations and the polyhedral reductions of
// Amat et al. (PAPERS.md): the net is shrunk by rules that provably
// preserve the reachable-marking projection on kept places and the exact
// set of dead markings, so any engine's verdict — and its witness, once
// mapped back — is identical to what the unreduced run would produce.
//
// Three rule families run to a fixpoint:
//
//   - Dead-transition pruning. The maximal siphon S inside the initially
//     unmarked places can never acquire a token (•S ⊆ S•), so every
//     transition consuming from S is dead and is removed, and the places
//     of S (constant 0) with it.
//   - Redundant-place removal. A place whose incidence row is zero and
//     which starts marked is constant 1 (every consumer self-loops on
//     it); a sink place (p• = ∅) covered by a P-invariant is implied by
//     the kept places. Both are removed and reconstructed arithmetically.
//   - Post-agglomeration. A series chain u → p → t with p• = {t},
//     •t = {p}, p ∉ t• and p initially unmarked is collapsed: every
//     producer u fires u;t atomically (its postset becomes (u•\{p}) ∪ t•)
//     and p, t disappear. Because t is the sole consumer of p and p its
//     only input, firing t eagerly commutes with every other transition,
//     so Reach(reduced) is exactly the p-empty slice of Reach(original)
//     and the dead markings (all of which have p empty — t would be
//     enabled otherwise) coincide.
//
// Reduce returns a Certificate that carries the reduced net and the
// mapping back: PlaceIndex translates original places into the reduced
// net, ExpandMarking reconstructs a full original marking (witnesses,
// dead markings) from a reduced one by replaying the removals in reverse.
//
// Like the engines, the pipeline assumes its input net is safe; protected
// places (a safety check's bad places) are never removed, so property
// places survive into the reduced net.
package reduce

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/structural"
)

// Rule names, as counted by Certificate.Rules and the reduce.rule_*
// metrics.
const (
	RuleDeadTransition    = "dead_transition"
	RuleEmptySiphonPlace  = "empty_siphon_place"
	RuleConstantPlace     = "constant_place"
	RuleImplicitPlace     = "implicit_place"
	RulePostAgglomeration = "post_agglomeration"
)

var ruleNames = []string{
	RuleDeadTransition,
	RuleEmptySiphonPlace,
	RuleConstantPlace,
	RuleImplicitPlace,
	RulePostAgglomeration,
}

// Options configures a reduction.
type Options struct {
	// Protect lists places that must survive into the reduced net (a
	// safety check's bad places). Protected places are exempt from every
	// place-removal rule; transitions around them may still be pruned
	// when provably dead.
	Protect []petri.Place
	// MaxInvariantRows caps the Farkas computation behind the
	// implicit-place rule (0 = the structural package default). When the
	// cap is exceeded the rule is skipped, never failed.
	MaxInvariantRows int
	// MaxRounds bounds the fixpoint iteration (0 = 64, far beyond any
	// real net: every round removes at least one node).
	MaxRounds int
	// Metrics, if non-nil, receives the reduce.* counters and the
	// reduce.prepass span (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
}

// reconKind says how a removed place's marking is reconstructed.
type reconKind uint8

const (
	reconConst     reconKind = iota // marking is the constant value
	reconInvariant                  // marking implied by an invariant
)

// recon is one removed place's reconstruction record, in original-net
// indices. Records are replayed newest-first: a record may reference
// places removed after it (alive when it was recorded), which by then
// have already been reconstructed.
type recon struct {
	place petri.Place
	kind  reconKind
	value int // reconConst: the constant marking (0 or 1)
	// reconInvariant: m(place) = (target − Σ coeff(q)·m(q)) / selfW.
	coeff  []placeWeight
	target int
	selfW  int
}

type placeWeight struct {
	place  petri.Place
	weight int
}

// Certificate is the outcome of a reduction: the reduced net plus
// everything needed to map verdicts, witnesses and dead markings back to
// the original net.
type Certificate struct {
	orig         *petri.Net
	reduced      *petri.Net
	toRed        []petri.Place // original place -> reduced place, -1 if removed
	recons       []recon       // chronological removal order
	rules        map[string]int
	rounds       int
	transRemoved int
}

// Net returns the reduced net (the original net when nothing applied).
func (c *Certificate) Net() *petri.Net { return c.reduced }

// Original returns the net the reduction started from.
func (c *Certificate) Original() *petri.Net { return c.orig }

// Changed reports whether any rule applied.
func (c *Certificate) Changed() bool { return c.reduced != c.orig }

// Rounds returns the number of fixpoint rounds run.
func (c *Certificate) Rounds() int { return c.rounds }

// PlacesRemoved returns how many places the reduction removed.
func (c *Certificate) PlacesRemoved() int { return len(c.recons) }

// TransRemoved returns how many transitions the reduction removed.
func (c *Certificate) TransRemoved() int { return c.transRemoved }

// Rules returns the per-rule application counts (keys are the Rule*
// constants; rules that never fired are absent).
func (c *Certificate) Rules() map[string]int {
	out := make(map[string]int, len(c.rules))
	for k, v := range c.rules {
		out[k] = v
	}
	return out
}

// PlaceIndex maps an original place into the reduced net. ok is false
// when the place was removed.
func (c *Certificate) PlaceIndex(p petri.Place) (petri.Place, bool) {
	rp := c.toRed[p]
	return rp, rp >= 0
}

// MapPlaces maps a slice of original places into the reduced net; it
// fails if any of them was removed (protect them via Options.Protect).
func (c *Certificate) MapPlaces(ps []petri.Place) ([]petri.Place, error) {
	out := make([]petri.Place, len(ps))
	for i, p := range ps {
		rp, ok := c.PlaceIndex(p)
		if !ok {
			return nil, fmt.Errorf("reduce: place %s was removed by the reduction", c.orig.PlaceName(p))
		}
		out[i] = rp
	}
	return out, nil
}

// ExpandMarking maps a marking of the reduced net back to the original
// net: kept places copy their bit, removed places are reconstructed by
// replaying the removal records newest-first. nil maps to nil.
func (c *Certificate) ExpandMarking(m petri.Marking) petri.Marking {
	if m == nil {
		return nil
	}
	out := c.orig.EmptyMarking()
	for op, rp := range c.toRed {
		if rp >= 0 && m.Has(rp) {
			out.Set(petri.Place(op))
		}
	}
	for i := len(c.recons) - 1; i >= 0; i-- {
		r := c.recons[i]
		v := r.value
		if r.kind == reconInvariant {
			v = r.target
			for _, cw := range r.coeff {
				if out.Has(cw.place) {
					v -= cw.weight
				}
			}
			v /= r.selfW
		}
		if v != 0 {
			out.Set(r.place)
		}
	}
	return out
}

// reducer is the mutable fixpoint state: the current net plus the index
// maps back to the original.
type reducer struct {
	cur     *petri.Net
	toOrig  []petri.Place // current place -> original place
	opts    Options
	protect map[petri.Place]bool // original indices
	cert    *Certificate
}

// Run applies the reduction rules to a fixpoint and returns the
// certificate. The pipeline is deterministic: identical inputs yield
// identical reduced nets, which is what lets reduced runs share content-
// addressed run identities.
func Run(n *petri.Net, o Options) (*Certificate, error) {
	sp := o.Metrics.StartSpan("reduce.prepass")
	defer sp.End()

	maxRounds := o.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	r := &reducer{
		cur:     n,
		toOrig:  identityPlaces(n.NumPlaces()),
		opts:    o,
		protect: make(map[petri.Place]bool, len(o.Protect)),
		cert: &Certificate{
			orig:    n,
			reduced: n,
			toRed:   identityPlaces(n.NumPlaces()),
			rules:   make(map[string]int),
		},
	}
	for _, p := range o.Protect {
		r.protect[p] = true
	}

	for round := 1; round <= maxRounds; round++ {
		changed := false
		ok, err := r.pruneDead()
		if err != nil {
			return nil, err
		}
		changed = changed || ok
		for {
			ok, err := r.dropConstantPlace()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			changed = true
		}
		for {
			ok, err := r.dropImplicitPlace()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			changed = true
		}
		for {
			ok, err := r.agglomerate()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			changed = true
		}
		r.cert.rounds = round
		if !changed {
			break
		}
	}

	r.cert.reduced = r.cur
	r.cert.toRed = make([]petri.Place, n.NumPlaces())
	for i := range r.cert.toRed {
		r.cert.toRed[i] = -1
	}
	for cp, op := range r.toOrig {
		r.cert.toRed[op] = petri.Place(cp)
	}
	r.emitMetrics()
	return r.cert, nil
}

func identityPlaces(n int) []petri.Place {
	out := make([]petri.Place, n)
	for i := range out {
		out[i] = petri.Place(i)
	}
	return out
}

func (r *reducer) emitMetrics() {
	reg := r.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("reduce.rounds").Add(int64(r.cert.rounds))
	reg.Counter("reduce.places_removed").Add(int64(r.cert.PlacesRemoved()))
	reg.Counter("reduce.trans_removed").Add(int64(r.cert.transRemoved))
	total := int64(0)
	for _, name := range ruleNames {
		n := int64(r.cert.rules[name])
		reg.Counter("reduce.rule_" + name).Add(n)
		total += n
	}
	reg.Counter("reduce.applications").Add(total)
}

// apply performs one surgery on the current net, composing the identity
// maps and recording the removed places' reconstructions.
func (r *reducer) apply(s petri.Surgery, recs []recon) error {
	next, placeOf, transOf, err := s.Apply(r.cur)
	if err != nil {
		return err
	}
	toOrig := make([]petri.Place, len(placeOf))
	for i, old := range placeOf {
		toOrig[i] = r.toOrig[old]
	}
	r.cert.transRemoved += r.cur.NumTrans() - len(transOf)
	r.cur = next
	r.toOrig = toOrig
	r.cert.recons = append(r.cert.recons, recs...)
	return nil
}

// origOf translates a current-net place to its original index.
func (r *reducer) origOf(p petri.Place) petri.Place { return r.toOrig[p] }

func (r *reducer) isProtected(p petri.Place) bool { return r.protect[r.origOf(p)] }

// pruneDead removes every transition whose preset intersects the maximal
// provably-unmarkable siphon (the largest siphon among the initially
// unmarked places: •S ⊆ S• and S starts empty, so S stays empty and its
// consumers can never fire), along with the siphon's unprotected places
// (constant 0 — their producers, putting tokens into S, are themselves
// in S• and thus dead too, so no kept transition touches them).
func (r *reducer) pruneDead() (bool, error) {
	n := r.cur
	init := n.InitialMarking()
	var unmarked []petri.Place
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if !init.Has(p) {
			unmarked = append(unmarked, p)
		}
	}
	siphon := structural.MaxSiphonWithin(n, unmarked)
	if len(siphon) == 0 {
		return false, nil
	}
	inSiphon := make(map[petri.Place]bool, len(siphon))
	for _, p := range siphon {
		inSiphon[p] = true
	}
	var dead []petri.Trans
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		for _, p := range n.Pre(t) {
			if inSiphon[p] {
				dead = append(dead, t)
				break
			}
		}
	}
	var drop []petri.Place
	var recs []recon
	for _, p := range siphon {
		if r.isProtected(p) {
			continue
		}
		drop = append(drop, p)
		recs = append(recs, recon{place: r.origOf(p), kind: reconConst, value: 0})
	}
	if len(dead) == 0 && len(drop) == 0 {
		return false, nil
	}
	r.cert.rules[RuleDeadTransition] += len(dead)
	r.cert.rules[RuleEmptySiphonPlace] += len(drop)
	return true, r.apply(petri.Surgery{DropPlaces: drop, DropTrans: dead}, recs)
}

// dropConstantPlace removes one place whose incidence row is zero (every
// consumer also produces it and vice versa — all arcs are self-loops)
// and which starts marked: its marking is the constant 1, so enabledness
// never hinges on it as long as each consumer keeps another input place
// to condition on. One place per call, so the ≥2-inputs guard is checked
// against the net the removal actually operates on.
func (r *reducer) dropConstantPlace() (bool, error) {
	n := r.cur
	init := n.InitialMarking()
scan:
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if !init.Has(p) || r.isProtected(p) {
			continue
		}
		// Row zero: consumers and producers coincide as self-loops.
		for _, t := range n.PostT(p) {
			if !containsPlace(n.Post(t), p) {
				continue scan
			}
			if len(n.Pre(t)) < 2 {
				continue scan // would strip t's last input
			}
		}
		for _, t := range n.PreT(p) {
			if !containsPlace(n.Pre(t), p) {
				continue scan
			}
		}
		r.cert.rules[RuleConstantPlace]++
		err := r.apply(
			petri.Surgery{DropPlaces: []petri.Place{p}},
			[]recon{{place: r.origOf(p), kind: reconConst, value: 1}},
		)
		return err == nil, err
	}
	return false, nil
}

// dropImplicitPlace removes one sink place (p• = ∅, so no transition's
// enabledness depends on it) whose marking is implied by a P-invariant
// over the remaining places: y with y(p) ≥ 1 gives
// m(p) = (y·m₀ − Σ_{q≠p} y(q)·m(q)) / y(p) in every reachable marking.
// Invariants are only computed when a sink candidate exists; a Farkas
// row-cap overflow skips the rule rather than failing the reduction.
func (r *reducer) dropImplicitPlace() (bool, error) {
	n := r.cur
	var sinks []petri.Place
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if len(n.PostT(p)) == 0 && !r.isProtected(p) {
			sinks = append(sinks, p)
		}
	}
	if len(sinks) == 0 {
		return false, nil
	}
	invariants, err := structural.PInvariants(n, r.opts.MaxInvariantRows)
	if err != nil {
		return false, nil // cap exceeded: skip the rule, soundly
	}
	m0 := n.InitialMarking()
	for _, p := range sinks {
		for _, y := range invariants {
			if y[p] < 1 {
				continue
			}
			rec := recon{
				place:  r.origOf(p),
				kind:   reconInvariant,
				target: structural.Weight(y, m0),
				selfW:  y[p],
			}
			for q, w := range y {
				if petri.Place(q) != p && w != 0 {
					rec.coeff = append(rec.coeff, placeWeight{place: r.origOf(petri.Place(q)), weight: w})
				}
			}
			r.cert.rules[RuleImplicitPlace]++
			err := r.apply(petri.Surgery{DropPlaces: []petri.Place{p}}, []recon{rec})
			return err == nil, err
		}
	}
	return false, nil
}

// agglomerate collapses one series chain: a place p with m₀(p) = 0, a
// single consumer t with •t = {p} and p ∉ t•, and at least one producer.
// Each producer u fires u;t atomically (post (u•\{p}) ∪ t•); p and t are
// removed. t is structurally conflict-free (no other transition reads
// p), firing it only adds tokens elsewhere, so eager firing commutes
// with every interleaving: the reduced reachability set is exactly the
// p-empty slice of the original, and since every original dead marking
// has p empty (t would be enabled otherwise), the dead markings — and
// the deadlock verdict and witness — are preserved exactly.
func (r *reducer) agglomerate() (bool, error) {
	n := r.cur
	init := n.InitialMarking()
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if init.Has(p) || r.isProtected(p) {
			continue
		}
		cons := n.PostT(p)
		if len(cons) != 1 {
			continue
		}
		t := cons[0]
		if len(n.Pre(t)) != 1 || containsPlace(n.Post(t), p) {
			continue
		}
		prods := n.PreT(p)
		if len(prods) == 0 {
			continue // unmarkable; pruneDead's siphon handles it
		}
		replace := make(map[petri.Trans][]petri.Place, len(prods))
		for _, u := range prods {
			var post []petri.Place
			for _, q := range n.Post(u) {
				if q != p {
					post = append(post, q)
				}
			}
			post = append(post, n.Post(t)...)
			replace[u] = post
		}
		r.cert.rules[RulePostAgglomeration]++
		err := r.apply(
			petri.Surgery{
				DropPlaces:  []petri.Place{p},
				DropTrans:   []petri.Trans{t},
				ReplacePost: replace,
			},
			[]recon{{place: r.origOf(p), kind: reconConst, value: 0}},
		)
		return err == nil, err
	}
	return false, nil
}

func containsPlace(ps []petri.Place, p petri.Place) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
