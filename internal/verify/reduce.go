package verify

import (
	"time"

	"repro/internal/petri"
	"repro/internal/structural/reduce"
)

// checkDeadlockReduced runs the structural reduction pre-pass and the
// selected engine on the reduced net, then maps the witness back to the
// input net via the certificate. The reduction rules preserve the set of
// dead markings exactly (see internal/structural/reduce), so the verdict
// needs no translation and the expanded witness is a genuine dead marking
// of the input net.
func checkDeadlockReduced(n *petri.Net, opts Options) (*Report, error) {
	start := time.Now()
	cert, err := reduce.Run(n, reduce.Options{Metrics: opts.Metrics})
	if err != nil {
		return nil, err
	}
	inner := opts
	inner.Reduce = false
	rep, err := CheckDeadlock(cert.Net(), inner)
	if err != nil {
		return nil, err
	}
	rep.Net = n.Name()
	rep.PlacesRemoved = cert.PlacesRemoved()
	rep.TransRemoved = cert.TransRemoved()
	if !rep.Aborted && !rep.Checkpointed {
		rep.Witness = cert.ExpandMarking(rep.Witness)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// checkSafetyReduced reduces with the bad places protected (so the
// property survives into the reduced net), maps them into the reduced
// net, runs the check there and expands the witness. For the engines
// that monitor (partial-order, unfolding, GPO) the witness lives on the
// monitored reduced net; it is translated to the equivalent post-monitor
// marking of the monitored input net: the pre-monitor reachable marking
// is recovered (the consumed bad tokens are re-added so the expansion
// operates on a genuine reachable marking of the reduced net), expanded,
// and the monitor's effect (bad and __run consumed, __trap produced)
// replayed on the input net's monitored shape.
func checkSafetyReduced(n *petri.Net, bad []petri.Place, opts Options) (*Report, error) {
	start := time.Now()
	cert, err := reduce.Run(n, reduce.Options{Protect: bad, Metrics: opts.Metrics})
	if err != nil {
		return nil, err
	}
	rbad, err := cert.MapPlaces(bad)
	if err != nil {
		return nil, err
	}
	inner := opts
	inner.Reduce = false
	rep, err := CheckSafety(cert.Net(), rbad, inner)
	if err != nil {
		return nil, err
	}
	rep.Net = n.Name()
	rep.PlacesRemoved = cert.PlacesRemoved()
	rep.TransRemoved = cert.TransRemoved()
	if rep.Witness != nil && !rep.Aborted && !rep.Checkpointed {
		switch opts.Engine {
		case Exhaustive, Symbolic:
			// The witness is a reachable reduced marking with the bad
			// combination marked; expansion is direct.
			rep.Witness = cert.ExpandMarking(rep.Witness)
		default:
			rep.Witness = expandMonitoredWitness(n, bad, rbad, cert, rep.Witness)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// expandMonitoredWitness maps a post-monitor deadlock of the monitored
// reduced net onto the monitored input net (places of n, then __run,
// __trap — the petri.WithSafetyMonitor layout).
func expandMonitoredWitness(n *petri.Net, bad, rbad []petri.Place, cert *reduce.Certificate, w petri.Marking) petri.Marking {
	red := cert.Net()
	// Pre-monitor reachable reduced marking: strip the monitor places,
	// restore the consumed bad tokens.
	s := red.EmptyMarking()
	for _, p := range w.Places() {
		if int(p) < red.NumPlaces() {
			s.Set(p)
		}
	}
	for _, p := range rbad {
		s.Set(p)
	}
	ex := cert.ExpandMarking(s)
	// Replay the monitor firing on the input net's monitored shape.
	out := make(petri.Marking, (n.NumPlaces()+2+63)/64)
	for _, p := range ex.Places() {
		out.Set(p)
	}
	for _, p := range bad {
		out.Clear(p)
	}
	out.Set(petri.Place(n.NumPlaces() + 1)) // __trap; __run stays consumed
	return out
}
