package verify

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/petri"
)

// Key is the content address of one verification: the SHA-256 of the
// canonical binary encoding of the net plus every result-determining
// option. It names three things at once: the gpod result-cache line,
// the run ID recorded in the run ledger (ledger/v1), and the live run
// exposed on GET /v1/runs — one identity from admission to history.
type Key [sha256.Size]byte

// RunID renders the key as the short run identifier used everywhere a
// human or a log line meets the content address: "r" plus the first 12
// bytes in hex. 96 bits keeps accidental collisions out of reach for
// any plausible ledger size while staying grep-friendly.
func (k Key) RunID() string {
	return "r" + hex.EncodeToString(k[:12])
}

// appendString appends a length-prefixed string, the same
// self-delimiting style as the family algebras' AppendKey, so no two
// distinct nets can collide by concatenation.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendNetKey appends the canonical encoding of the net: name, places
// (names in index order), initial marking, and per-transition name and
// sorted pre/post place sets. Two nets encode equal iff they describe
// the same net the same way; structural isomorphs with different names
// or orderings are (deliberately) distinct — witnesses speak in place
// names, so names are part of the content.
func AppendNetKey(b []byte, n *petri.Net) []byte {
	b = appendString(b, n.Name())
	b = binary.AppendUvarint(b, uint64(n.NumPlaces()))
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		b = appendString(b, n.PlaceName(p))
	}
	init := n.InitialPlaces()
	b = binary.AppendUvarint(b, uint64(len(init)))
	for _, p := range init {
		b = binary.AppendUvarint(b, uint64(p))
	}
	b = binary.AppendUvarint(b, uint64(n.NumTrans()))
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		b = appendString(b, n.TransName(t))
		pre, post := n.Pre(t), n.Post(t)
		b = binary.AppendUvarint(b, uint64(len(pre)))
		for _, p := range pre {
			b = binary.AppendUvarint(b, uint64(p))
		}
		b = binary.AppendUvarint(b, uint64(len(post)))
		for _, p := range post {
			b = binary.AppendUvarint(b, uint64(p))
		}
	}
	return b
}

// RunKeyFormat versions the RunKey encoding itself. It is folded into
// every hash, so a deliberate change to how keys are computed (new
// result-determining option, reordered encoding) is made by bumping
// this constant: every RunID changes at once and stale cache lines,
// ledger entries and checkpoints can never collide with keys of the
// new scheme. TestRunKeyGolden pins the current values and explains
// the bump procedure in its failure message.
const RunKeyFormat = 2

// RunKey hashes the net, the check, and the options that determine the
// result. Workers is excluded: the parallel exhaustive explorer is
// bit-identical to the sequential one (DESIGN.md D6), so both share one
// content address. Timeouts and contexts are excluded because aborted
// results are never cached and a run's identity should not depend on
// where a deadline happened to land. Ckpt and Resume are excluded
// because a resumed run computes exactly what the uninterrupted run
// would have — the checkpoint is keyed by the same RunKey it resumes.
// bad must be sorted by the caller (the server sorts during request
// resolution).
func RunKey(n *petri.Net, check string, bad []petri.Place, o Options) Key {
	b := make([]byte, 0, 1024)
	b = binary.AppendUvarint(b, RunKeyFormat)
	b = AppendNetKey(b, n)
	b = appendString(b, check)
	b = binary.AppendUvarint(b, uint64(len(bad)))
	for _, p := range bad {
		b = binary.AppendUvarint(b, uint64(p))
	}
	b = binary.AppendUvarint(b, uint64(o.Engine))
	flags := uint64(0)
	if o.StopAtFirst {
		flags |= 1
	}
	if o.Proviso {
		flags |= 2
	}
	if o.Reduce {
		flags |= 4
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(o.MaxStates))
	b = binary.AppendUvarint(b, uint64(o.MaxNodes))
	return sha256.Sum256(b)
}

// RunID is the one-call convenience over RunKey for callers that only
// need the identifier (the CLIs' ledger entries).
func RunID(n *petri.Net, check string, bad []petri.Place, o Options) string {
	return RunKey(n, check, bad, o).RunID()
}
