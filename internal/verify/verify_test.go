package verify

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/reach"
	"repro/internal/unfold"
)

var allEngines = []Engine{Exhaustive, PartialOrder, Symbolic, GPO, GPOExplicit, Unfolding}

// TestEnginesAgreeOnModels runs every engine on every benchmark model and
// checks they all return the same deadlock verdict.
func TestEnginesAgreeOnModels(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3),
		models.Fig1(4), models.Fig2(3), models.Fig3(), models.Fig5(), models.Fig7(),
		models.ReadersWriters(3), models.ArbiterTree(4), models.Overtake(2),
	}
	for _, net := range nets {
		want, err := CheckDeadlock(net, Options{Engine: Exhaustive})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		for _, eng := range allEngines[1:] {
			got, err := CheckDeadlock(net, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s/%v: %v", net.Name(), eng, err)
			}
			if got.Deadlock != want.Deadlock {
				t.Errorf("%s: %v says deadlock=%v, exhaustive says %v",
					net.Name(), eng, got.Deadlock, want.Deadlock)
			}
		}
	}
}

// TestEnginesAgreeOnRandomNets is the main soundness gauntlet: on hundreds
// of random safe nets, every engine must agree with exhaustive search on
// the deadlock verdict, and every reported witness must be a real
// reachable deadlock.
//
// The generalized engines carry a state cap: on unstructured conflict
// cycles the history decoration of GPN states can exceed the classical
// state count by orders of magnitude (see DESIGN.md), in which case the
// run is counted as a blow-up rather than compared. Soundness is asserted
// for every run that completes; blow-ups must stay a small minority.
func TestEnginesAgreeOnRandomNets(t *testing.T) {
	deadlockCount, blowups, compared := 0, 0, 0
	const trials = 150
	for seed := int64(0); seed < trials; seed++ {
		cfg := randnet.Default(seed)
		cfg.Machines = 2 + int(seed%3)
		cfg.PlacesPer = 2 + int(seed%4)
		cfg.SyncTrans = 1 + int(seed%5)
		cfg.LocalTrans = int(seed % 3)
		net := randnet.Generate(cfg)

		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			continue // extremely unlikely: generator guarantees safety
		}
		if full.Deadlock {
			deadlockCount++
		}
		realDead := make(map[string]bool)
		for _, m := range full.Deadlocks {
			realDead[m.Key()] = true
		}
		engines := []Engine{PartialOrder, Symbolic, GPO, Unfolding}
		if seed%5 == 0 {
			// The explicit-family GPO recomputes everything the ZDD engine
			// does at a far higher constant; sample it rather than run it
			// on every seed.
			engines = append(engines, GPOExplicit)
		}
		for _, eng := range engines {
			got, err := CheckDeadlock(net, Options{Engine: eng, MaxStates: 8000})
			if err != nil {
				if errors.Is(err, core.ErrStateLimit) || errors.Is(err, unfold.ErrEventLimit) {
					blowups++
					continue
				}
				t.Fatalf("%s/%v: %v", net.Name(), eng, err)
			}
			compared++
			if got.Deadlock != full.Deadlock {
				t.Errorf("%s: %v says deadlock=%v, exhaustive says %v (full states=%d)",
					net.Name(), eng, got.Deadlock, full.Deadlock, full.States)
				continue
			}
			if got.Deadlock && got.Witness != nil && !realDead[got.Witness.Key()] {
				t.Errorf("%s: %v returned witness %s which is not a reachable deadlock",
					net.Name(), eng, got.Witness.String(net))
			}
		}
	}
	if deadlockCount < 10 {
		t.Errorf("only %d/%d random nets deadlock; generator too tame for a meaningful gauntlet",
			deadlockCount, trials)
	}
	if blowups*5 > compared {
		t.Errorf("GPN state blow-ups on %d runs vs %d compared; expected a small minority",
			blowups, compared)
	}
	t.Logf("%d/%d random nets have deadlocks; %d compared runs, %d GPN blow-ups",
		deadlockCount, trials, compared, blowups)
}

// TestSafetyAgreement checks CheckSafety across engines: the NSDP "two
// neighbours eating at once" property (unreachable) and the "philosopher 0
// holds left fork while neighbour holds right" property (reachable).
func TestSafetyAgreement(t *testing.T) {
	net := models.NSDP(3)
	eat0, _ := net.PlaceByName("eat0")
	eat1, _ := net.PlaceByName("eat1")
	hasL0, _ := net.PlaceByName("hasL0")
	hasL1, _ := net.PlaceByName("hasL1")

	cases := []struct {
		name string
		bad  []petri.Place
		want bool
	}{
		{"neighbours-eat", []petri.Place{eat0, eat1}, false},
		{"both-hold-left", []petri.Place{hasL0, hasL1}, true},
	}
	for _, tc := range cases {
		for _, eng := range allEngines {
			rep, err := CheckSafety(net, tc.bad, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, eng, err)
			}
			if rep.Deadlock != tc.want {
				t.Errorf("%s: engine %v says reachable=%v, want %v",
					tc.name, eng, rep.Deadlock, tc.want)
			}
		}
	}
}

// TestSafetyOnRandomNets cross-validates CheckSafety on random nets and
// random bad pairs against the exhaustive predicate check.
func TestSafetyOnRandomNets(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := randnet.Default(seed)
		net := randnet.Generate(cfg)
		// Bad pair: place 1 of machine 0 and place 1 of machine 1.
		p1, ok1 := net.PlaceByName("m0s1")
		p2, ok2 := net.PlaceByName("m1s1")
		if !ok1 || !ok2 {
			t.Fatal("generator layout changed")
		}
		bad := []petri.Place{p1, p2}
		want, err := CheckSafety(net, bad, Options{Engine: Exhaustive})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range allEngines[1:] {
			got, err := CheckSafety(net, bad, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s/%v: %v", net.Name(), eng, err)
			}
			if got.Deadlock != want.Deadlock {
				t.Errorf("seed %d: engine %v says reachable=%v, exhaustive says %v",
					seed, eng, got.Deadlock, want.Deadlock)
			}
		}
	}
}

// TestParseEngine round-trips the engine names.
func TestParseEngine(t *testing.T) {
	for _, e := range allEngines {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round trip %v: got %v, %v", e, got, err)
		}
	}
	if _, err := ParseEngine("nope"); err == nil {
		t.Error("expected error for unknown engine")
	}
}

// TestReportFields spot-checks the statistics each engine reports.
func TestReportFields(t *testing.T) {
	net := models.NSDP(2)
	sym, err := CheckDeadlock(net, Options{Engine: Symbolic})
	if err != nil {
		t.Fatal(err)
	}
	if sym.PeakBDD == 0 {
		t.Error("symbolic report missing peak BDD size")
	}
	gpo, err := CheckDeadlock(net, Options{Engine: GPO})
	if err != nil {
		t.Fatal(err)
	}
	if gpo.PeakSets == 0 {
		t.Error("GPO report missing peak valid-set count")
	}
	if gpo.States != 3 {
		t.Errorf("GPO states=%d, want 3", gpo.States)
	}
	for _, e := range allEngines {
		rep, err := CheckDeadlock(net, Options{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Net != net.Name() || rep.Engine != e {
			t.Errorf("report identity wrong: %+v", rep)
		}
	}
	_ = fmt.Sprintf("%v", gpo)
}
