// Package verify is the unified façade over the four analysis engines the
// paper compares: exhaustive explicit reachability, stubborn-set
// partial-order reduction, OBDD-based symbolic reachability, and the
// paper's generalized partial-order analysis (with either the explicit or
// the ZDD family representation). It runs deadlock and safety checks and
// returns engine-comparable statistics — the columns of the paper's
// Table 1.
package verify

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
	"repro/internal/zdd"
)

// Engine selects the analysis technique.
type Engine int

const (
	// Exhaustive enumerates the complete reachability graph (Section 2.2;
	// the "States" column).
	Exhaustive Engine = iota
	// PartialOrder uses stubborn-set reduction (Section 2.3; SPIN+PO).
	PartialOrder
	// Symbolic uses OBDD-based reachability (Section 2.4; SMV).
	Symbolic
	// GPO is the paper's generalized partial-order analysis with the ZDD
	// family representation (Section 3).
	GPO
	// GPOExplicit is GPO with the explicit family representation; it
	// computes identical results and is practical only for small nets.
	GPOExplicit
	// Unfolding builds a McMillan complete finite prefix and checks
	// deadlock on it (our extension: the other classical partial-order
	// technique of the paper's era, cf. its reference [13]).
	Unfolding
)

// String returns the engine's short display name.
func (e Engine) String() string {
	switch e {
	case Exhaustive:
		return "exhaustive"
	case PartialOrder:
		return "partial-order"
	case Symbolic:
		return "symbolic"
	case GPO:
		return "gpo"
	case GPOExplicit:
		return "gpo-explicit"
	case Unfolding:
		return "unfolding"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a name (as printed by String) back to an Engine.
func ParseEngine(s string) (Engine, error) {
	for _, e := range []Engine{Exhaustive, PartialOrder, Symbolic, GPO, GPOExplicit, Unfolding} {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("verify: unknown engine %q", s)
}

// Options configures a check.
type Options struct {
	Engine Engine
	// Ctx, if non-nil, is threaded to the selected engine, which polls it
	// cooperatively: once it is cancelled (deadline exceeded, client
	// disconnect) the exploration stops within a bounded number of steps
	// and the check returns a partial Report with Aborted set instead of
	// an error. A nil Ctx never stops anything and costs one predictable
	// branch per unit of work.
	Ctx context.Context
	// StopAtFirst halts at the first deadlock (or bad state) found.
	StopAtFirst bool
	// MaxStates bounds explicit searches; MaxNodes bounds symbolic ones.
	MaxStates int
	MaxNodes  int
	// Workers, when > 0, runs the exhaustive engine's BFS with that many
	// parallel workers (see reach.Options.Workers); results are identical
	// to the sequential search. Other engines ignore it.
	Workers int
	// Proviso applies the cycle proviso in the partial-order engine.
	Proviso bool
	// Reduce applies the structural reduction pre-pass
	// (internal/structural/reduce) before the selected engine: the net is
	// shrunk by sound, verdict-preserving rules and the engine explores
	// the reduced net; verdict and witness are mapped back to the input
	// net via the reduction certificate. Result-determining (the explored
	// state counts change), so it participates in RunKey.
	Reduce bool
	// Metrics, if non-nil, is handed to the selected engine, which fills
	// it with its package-prefixed counters, gauges, histograms and spans
	// (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked by the selected engine once per
	// unit of work (state, event or iteration).
	Progress *obs.Progress
	// Trace, if non-nil, is handed to the selected engine, which records
	// flight-recorder events on it (states, firings, phase brackets,
	// aborts; see OBSERVABILITY.md "Trace events"). Nil costs nothing.
	Trace *trace.Tracer
	// Explorer, if non-nil, replaces reach.Explore for the Exhaustive
	// engine (other engines ignore it). bad lists the safety-check
	// places, nil for deadlock checks; o carries the same options a
	// reach.Explore call would get, including the equivalent Bad
	// predicate. An Explorer must return Results bit-identical to
	// reach.Explore — like Workers, it changes how the answer is
	// computed, never what it is — so it does not participate in RunKey.
	// The cluster explorer (internal/cluster) is the intended value.
	Explorer func(n *petri.Net, bad []petri.Place, o reach.Options) (*reach.Result, error)
	// Ckpt, if non-nil, enables checkpointing on the checkpoint-capable
	// engines (Exhaustive, GPO, GPOExplicit): the Checkpointer is polled
	// at every engine boundary and may save a snapshot or suspend the
	// run (the check then returns a partial Report with Checkpointed
	// set). Other engines reject it with ErrCkptUnsupported. Like
	// Metrics and Trace, checkpointing only observes and suspends — it
	// never changes what an uninterrupted run computes, so it does not
	// participate in RunKey.
	Ckpt *Checkpointer
	// Resume, if non-nil, restores the check from an engine snapshot
	// instead of starting fresh; the snapshot's engine must match
	// Options.Engine (for safety checks on monitoring engines it is a
	// snapshot of the deterministic monitored net). The resumed run's
	// Report is bit-identical to the uninterrupted run's.
	Resume *EngineSnapshot
}

// Report is the engine-comparable outcome of a check.
type Report struct {
	Net      string
	Engine   Engine
	Deadlock bool          // or "bad state reachable" for safety checks
	Witness  petri.Marking // one witness marking, nil if none or not tracked
	States   int           // states explored (GPN states for GPO engines)
	PeakBDD  int           // symbolic engine only: peak BDD nodes
	PeakSets float64       // GPO engines only: largest |r|
	Elapsed  time.Duration
	Complete bool
	// Aborted marks a check stopped by Options.Ctx: the statistics are a
	// partial account of the exploration up to the cancellation point and
	// the verdict fields (Deadlock, Witness) are not meaningful.
	Aborted bool
	// Checkpointed marks a check suspended cleanly by Options.Ckpt
	// (CkptStop): a snapshot was saved at the stop boundary and the
	// statistics are a partial account up to it. Like Aborted, the
	// verdict fields are not final.
	Checkpointed bool
	// PlacesRemoved and TransRemoved record what the Options.Reduce
	// pre-pass removed (both zero when reduction is off or nothing
	// applied).
	PlacesRemoved int
	TransRemoved  int
}

// OptionError reports an Options field whose value can never be valid,
// as opposed to runtime failures such as state limits.
type OptionError struct {
	Field  string
	Value  any
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("verify: invalid option %s=%v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the options for values no engine can honor: a negative
// state/node/worker bound or an unknown engine. Zero bounds mean
// "unlimited"/"default" and are valid. CheckDeadlock and CheckSafety
// validate implicitly and return the *OptionError unwrapped, so services
// can distinguish caller mistakes (reject the request) from analysis
// failures (report them).
func (o Options) Validate() error {
	if o.Engine < Exhaustive || o.Engine > Unfolding {
		return &OptionError{Field: "Engine", Value: int(o.Engine), Reason: "unknown engine"}
	}
	if o.MaxStates < 0 {
		return &OptionError{Field: "MaxStates", Value: o.MaxStates, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if o.MaxNodes < 0 {
		return &OptionError{Field: "MaxNodes", Value: o.MaxNodes, Reason: "must be >= 0 (0 = unlimited)"}
	}
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Value: o.Workers, Reason: "must be >= 0 (0 = sequential)"}
	}
	return nil
}

// aborted reports whether an engine error is a cooperative cancellation
// (Options.Ctx fired) rather than an analysis failure.
func aborted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CheckDeadlock analyses the net for reachable deadlocks.
func CheckDeadlock(n *petri.Net, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validateCkpt(); err != nil {
		return nil, err
	}
	if opts.Reduce {
		return checkDeadlockReduced(n, opts)
	}
	start := time.Now()
	rep := &Report{Net: n.Name(), Engine: opts.Engine}
	switch opts.Engine {
	case Exhaustive:
		ro := reach.Options{
			Ctx:            opts.Ctx,
			MaxStates:      opts.MaxStates,
			Workers:        opts.Workers,
			StopAtDeadlock: opts.StopAtFirst,
			Metrics:        opts.Metrics,
			Progress:       opts.Progress,
			Trace:          opts.Trace,
			Ckpt:           opts.Ckpt.reachHook(),
			Resume:         opts.resumeReach(),
		}
		explore := reach.Explore
		if opts.Explorer != nil {
			explore = func(n *petri.Net, o reach.Options) (*reach.Result, error) {
				return opts.Explorer(n, nil, o)
			}
		}
		res, err := explore(n, ro)
		if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
			return nil, err
		}
		rep.Checkpointed = ckptStopped(err)
		rep.Aborted = err != nil && !rep.Checkpointed
		rep.Deadlock = res.Deadlock
		rep.States = res.States
		rep.Complete = res.Complete
		if len(res.Deadlocks) > 0 {
			rep.Witness = res.Deadlocks[0]
		}
	case PartialOrder:
		res, err := stubborn.Explore(n, stubborn.Options{
			Ctx:            opts.Ctx,
			MaxStates:      opts.MaxStates,
			StopAtDeadlock: opts.StopAtFirst,
			Proviso:        opts.Proviso,
			Metrics:        opts.Metrics,
			Progress:       opts.Progress,
			Trace:          opts.Trace,
		})
		if err != nil && !(aborted(err) && res != nil) {
			return nil, err
		}
		rep.Aborted = err != nil
		rep.Deadlock = res.Deadlock
		rep.States = res.States
		rep.Complete = res.Complete
		if len(res.Deadlocks) > 0 {
			rep.Witness = res.Deadlocks[0]
		}
	case Symbolic:
		res, err := symbolic.Analyze(n, symbolic.Options{
			Ctx:      opts.Ctx,
			MaxNodes: opts.MaxNodes,
			Metrics:  opts.Metrics,
			Progress: opts.Progress,
			Trace:    opts.Trace,
		})
		if err != nil && !(aborted(err) && res != nil) {
			return nil, err
		}
		rep.Aborted = err != nil
		rep.Deadlock = res.Deadlock
		rep.States = int(res.States)
		rep.PeakBDD = res.PeakNodes
		rep.Witness = res.Witness
		rep.Complete = res.Complete
	case GPO:
		e, err := core.NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
		if err != nil {
			return nil, err
		}
		res, _, err := e.Analyze(core.Options{
			Ctx:            opts.Ctx,
			MaxStates:      opts.MaxStates,
			StopAtDeadlock: opts.StopAtFirst,
			Metrics:        opts.Metrics,
			Progress:       opts.Progress,
			Trace:          opts.Trace,
			Ckpt:           opts.Ckpt.coreHook(),
			Resume:         opts.resumeCore(),
		})
		if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
			return nil, err
		}
		rep.Checkpointed = ckptStopped(err)
		rep.Aborted = err != nil && !rep.Checkpointed
		fillGPO(rep, res)
	case GPOExplicit:
		e, err := core.NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
		if err != nil {
			return nil, err
		}
		res, _, err := e.Analyze(core.Options{
			Ctx:            opts.Ctx,
			MaxStates:      opts.MaxStates,
			StopAtDeadlock: opts.StopAtFirst,
			Metrics:        opts.Metrics,
			Progress:       opts.Progress,
			Trace:          opts.Trace,
			Ckpt:           opts.Ckpt.coreHook(),
			Resume:         opts.resumeCore(),
		})
		if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
			return nil, err
		}
		rep.Checkpointed = ckptStopped(err)
		rep.Aborted = err != nil && !rep.Checkpointed
		fillGPO(rep, res)
	case Unfolding:
		px, err := unfold.Build(n, unfold.Options{
			Ctx:       opts.Ctx,
			MaxEvents: opts.MaxStates,
			Metrics:   opts.Metrics,
			Progress:  opts.Progress,
			Trace:     opts.Trace,
		})
		if err != nil && !(aborted(err) && px != nil) {
			return nil, err
		}
		rep.States = len(px.Events)
		if err != nil {
			// Deadlock checking on a truncated prefix would report phantom
			// deadlocks (events whose successors were never inserted), so an
			// aborted build carries only the size statistics.
			rep.Aborted = true
		} else {
			rep.Complete = true
			if w, dead := px.FindDeadlock(); dead {
				rep.Deadlock = true
				rep.Witness = w
			}
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func fillGPO(rep *Report, res *core.Result) {
	rep.Deadlock = res.Deadlock
	rep.States = res.States
	rep.PeakSets = res.PeakValid
	rep.Complete = res.Complete
	if len(res.Witnesses) > 0 {
		rep.Witness = res.Witnesses[0]
	}
}

// CheckSafety checks whether a marking with all places of bad
// simultaneously marked is reachable. For the explicit and symbolic
// engines the predicate is checked directly; for the partial-order and
// generalized engines the check is reduced to deadlock detection on a
// monitored net (Section 4 of the paper: "the verification of a safety
// property can always be reduced to a check for deadlock").
func CheckSafety(n *petri.Net, bad []petri.Place, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validateCkpt(); err != nil {
		return nil, err
	}
	if opts.Reduce {
		return checkSafetyReduced(n, bad, opts)
	}
	start := time.Now()
	rep := &Report{Net: n.Name(), Engine: opts.Engine}
	predicate := func(m petri.Marking) bool {
		for _, p := range bad {
			if !m.Has(p) {
				return false
			}
		}
		return true
	}
	switch opts.Engine {
	case Exhaustive:
		ro := reach.Options{
			Ctx:       opts.Ctx,
			MaxStates: opts.MaxStates,
			Workers:   opts.Workers,
			Bad:       predicate,
			StopAtBad: opts.StopAtFirst,
			Metrics:   opts.Metrics,
			Progress:  opts.Progress,
			Trace:     opts.Trace,
			Ckpt:      opts.Ckpt.reachHook(),
			Resume:    opts.resumeReach(),
		}
		explore := reach.Explore
		if opts.Explorer != nil {
			explore = func(n *petri.Net, o reach.Options) (*reach.Result, error) {
				return opts.Explorer(n, bad, o)
			}
		}
		res, err := explore(n, ro)
		if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
			return nil, err
		}
		rep.Checkpointed = ckptStopped(err)
		rep.Aborted = err != nil && !rep.Checkpointed
		rep.Deadlock = res.BadFound
		rep.States = res.States
		rep.Complete = res.Complete
		if len(res.BadStates) > 0 {
			rep.Witness = res.BadStates[0]
		}
	case Symbolic:
		res, err := symbolic.Analyze(n, symbolic.Options{
			Ctx:      opts.Ctx,
			MaxNodes: opts.MaxNodes,
			Bad:      bad,
			Metrics:  opts.Metrics,
			Progress: opts.Progress,
			Trace:    opts.Trace,
		})
		if err != nil && !(aborted(err) && res != nil) {
			return nil, err
		}
		rep.Aborted = err != nil
		rep.Deadlock = res.BadFound
		rep.Witness = res.BadWitness
		rep.States = int(res.States)
		rep.PeakBDD = res.PeakNodes
		rep.Complete = res.Complete
	case PartialOrder:
		// Reduction to deadlock on the monitored net: the bad combination
		// is reachable iff the monitor can fire, after which the run token
		// is gone and the whole net deadlocks with the trap marked.
		mon, trap, err := petri.WithSafetyMonitor(n, bad)
		if err != nil {
			return nil, err
		}
		res, err := stubborn.Explore(mon, stubborn.Options{
			Ctx:       opts.Ctx,
			MaxStates: opts.MaxStates,
			Proviso:   opts.Proviso,
			Metrics:   opts.Metrics,
			Progress:  opts.Progress,
			Trace:     opts.Trace,
		})
		if err != nil && !(aborted(err) && res != nil) {
			return nil, err
		}
		rep.Aborted = err != nil
		rep.States = res.States
		rep.Complete = res.Complete
		for _, m := range res.Deadlocks {
			if m.Has(trap) {
				rep.Deadlock = true
				rep.Witness = m
				break
			}
		}
	case Unfolding:
		mon, trap, err := petri.WithSafetyMonitor(n, bad)
		if err != nil {
			return nil, err
		}
		px, err := unfold.Build(mon, unfold.Options{
			Ctx:       opts.Ctx,
			MaxEvents: opts.MaxStates,
			Metrics:   opts.Metrics,
			Progress:  opts.Progress,
			Trace:     opts.Trace,
		})
		if err != nil && !(aborted(err) && px != nil) {
			return nil, err
		}
		rep.States = len(px.Events)
		if err != nil {
			rep.Aborted = true
		} else {
			rep.Complete = true
			if w, dead := px.FindDeadlockWhere(func(m petri.Marking) bool {
				return m.Has(trap)
			}); dead {
				rep.Deadlock = true
				rep.Witness = w
			}
		}
	case GPO, GPOExplicit:
		mon, trap, err := petri.WithSafetyMonitor(n, bad)
		if err != nil {
			return nil, err
		}
		copts := core.Options{
			Ctx:            opts.Ctx,
			MaxStates:      opts.MaxStates,
			StopAtDeadlock: opts.StopAtFirst,
			ExpandDead:     true, // original deadlocks must not cut exploration
			TrapFilter:     true,
			TrapPlace:      trap,
			Metrics:        opts.Metrics,
			Progress:       opts.Progress,
			Trace:          opts.Trace,
			Ckpt:           opts.Ckpt.coreHook(),
			Resume:         opts.resumeCore(),
		}
		var res *core.Result
		if opts.Engine == GPO {
			e, err := core.NewEngine[zdd.Node](mon, zdd.NewAlgebra(mon.NumTrans()))
			if err != nil {
				return nil, err
			}
			res, _, err = e.Analyze(copts)
			if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
				return nil, err
			}
			rep.Checkpointed = ckptStopped(err)
			rep.Aborted = err != nil && !rep.Checkpointed
		} else {
			e, err := core.NewEngine[*family.Family](mon, family.NewAlgebra(mon.NumTrans()))
			if err != nil {
				return nil, err
			}
			res, _, err = e.Analyze(copts)
			if err != nil && !((aborted(err) || ckptStopped(err)) && res != nil) {
				return nil, err
			}
			rep.Checkpointed = ckptStopped(err)
			rep.Aborted = err != nil && !rep.Checkpointed
		}
		fillGPO(rep, res)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
