package verify

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/models"
	"repro/internal/obs/trace"
)

// TestTraceRoundTripReconstructsStates is the façade-level acceptance
// check behind gpoverify -trace: a traced run exports as Chrome trace
// JSON that (a) validates as a Chrome trace file and (b) round-trips
// through ReadDump so the summarizer reconstructs the explored state
// count from the events alone — for the explicit engines exactly, with
// no access to the Report.
func TestTraceRoundTripReconstructsStates(t *testing.T) {
	cases := []struct {
		engine  Engine
		workers int
	}{
		{Exhaustive, 0},
		{Exhaustive, 4}, // parallel explorer: per-worker tracks
		{PartialOrder, 0},
		{GPO, 0},
		{Unfolding, 0},
	}
	net, err := models.ByName("nsdp", 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		name := tc.engine.String()
		if tc.workers > 0 {
			name += "-parallel"
		}
		t.Run(name, func(t *testing.T) {
			tr := trace.New(trace.Options{})
			rep, err := CheckDeadlock(net, Options{
				Engine:  tc.engine,
				Workers: tc.workers,
				Trace:   tr,
			})
			if err != nil {
				t.Fatal(err)
			}

			var chrome bytes.Buffer
			if err := trace.WriteChrome(&chrome, tr.Dump()); err != nil {
				t.Fatalf("WriteChrome: %v", err)
			}
			// Shape check: what chrome://tracing and Perfetto require.
			var file struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(chrome.Bytes(), &file); err != nil {
				t.Fatalf("trace file is not valid JSON: %v", err)
			}
			if len(file.TraceEvents) == 0 {
				t.Fatal("trace file has no events")
			}
			for _, ev := range file.TraceEvents {
				if _, ok := ev["ph"].(string); !ok {
					t.Fatalf("trace event without a phase: %v", ev)
				}
			}

			back, err := trace.ReadDump(bytes.NewReader(chrome.Bytes()))
			if err != nil {
				t.Fatalf("ReadDump: %v", err)
			}
			sum := trace.Summarize(back, 5)
			if sum.States != rep.States {
				t.Fatalf("trace reconstructs %d states, engine explored %d",
					sum.States, rep.States)
			}
			if sum.Aborted {
				t.Fatalf("completed run summarized as aborted: %+v", sum)
			}
			if tc.workers > 0 && sum.Tracks < 2 {
				t.Fatalf("parallel run recorded %d tracks, want merge + worker tracks", sum.Tracks)
			}
		})
	}
}

// TestSymbolicTraceIterations pins the symbolic engine's trace surface:
// one iter event per image step and the relation/fixpoint phase
// brackets, since it has no per-state events to count.
func TestSymbolicTraceIterations(t *testing.T) {
	net, err := models.ByName("nsdp", 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{})
	rep, err := CheckDeadlock(net, Options{Engine: Symbolic, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(tr.Dump(), 5)
	phases := make(map[string]bool)
	for _, ph := range sum.Phases {
		phases[ph.Name] = true
	}
	if !phases["relations"] || !phases["fixpoint"] {
		t.Fatalf("symbolic phases missing: %+v", sum.Phases)
	}
	_ = rep
}
