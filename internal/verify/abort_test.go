package verify

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/petri"
)

// noLeak runs fn and then asserts the goroutine count settles back to
// the pre-call level: an aborted engine must not leave workers behind.
func noLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestAbortAllEngines runs every engine with an already-cancelled
// context: each must return a partial aborted Report (not an error, not
// a hang) within a bounded number of steps, with no goroutines leaked.
func TestAbortAllEngines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := models.NSDP(6) // 5778 states: big enough that completing would be a real run
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			noLeak(t, func() {
				rep, err := CheckDeadlock(net, Options{Engine: eng, Ctx: ctx})
				if err != nil {
					t.Fatalf("CheckDeadlock: %v", err)
				}
				if !rep.Aborted {
					t.Fatal("report not marked Aborted")
				}
				if rep.Complete {
					t.Fatal("aborted report marked Complete")
				}
			})
		})
	}
}

// TestAbortParallelReach covers the worker-pool abort path: a cancelled
// parallel exhaustive search must stop all workers and leak nothing.
func TestAbortParallelReach(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := models.NSDP(6)
	noLeak(t, func() {
		rep, err := CheckDeadlock(net, Options{Engine: Exhaustive, Workers: 4, Ctx: ctx})
		if err != nil {
			t.Fatalf("CheckDeadlock: %v", err)
		}
		if !rep.Aborted {
			t.Fatal("report not marked Aborted")
		}
	})
}

// TestDeadlineAbortsMidExploration is the timing half: a short deadline
// against nsdp(8) must stop the exhaustive search after some but not all
// states, i.e. genuinely mid-exploration, promptly.
func TestDeadlineAbortsMidExploration(t *testing.T) {
	const full = 103682 // |RG(NSDP(8))|, pinned by the Table 1 suite
	for _, workers := range []int{0, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		start := time.Now()
		rep, err := CheckDeadlock(models.NSDP(8), Options{Engine: Exhaustive, Workers: workers, Ctx: ctx})
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Aborted {
			// The container may be fast enough to finish 103682 states in
			// 30ms only on absurdly fast hardware; treat completion as a
			// skip rather than a failure to keep the test robust.
			t.Skipf("workers=%d: run completed before the deadline (%v, %d states)",
				workers, elapsed, rep.States)
		}
		if rep.States <= 0 || rep.States >= full {
			t.Errorf("workers=%d: aborted with %d states, want partial progress in (0, %d)",
				workers, rep.States, full)
		}
		if elapsed > 5*time.Second {
			t.Errorf("workers=%d: abort took %v, not a prompt stop", workers, elapsed)
		}
	}
}

// TestAbortSafetyPaths covers the CheckSafety abort plumbing (monitored
// nets, trap filtering) for each engine family.
func TestAbortSafetyPaths(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := models.NSDP(6)
	eat0, _ := net.PlaceByName("eat0")
	eat1, _ := net.PlaceByName("eat1")
	bad := []petri.Place{eat0, eat1}
	for _, eng := range allEngines {
		rep, err := CheckSafety(net, bad, Options{Engine: eng, Ctx: ctx})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !rep.Aborted || rep.Complete {
			t.Errorf("%v: Aborted=%v Complete=%v, want aborted partial report",
				eng, rep.Aborted, rep.Complete)
		}
	}
}

// TestLiveContextDoesNotPerturb pins that merely threading a context
// (never cancelled) through an engine changes nothing about its result.
func TestLiveContextDoesNotPerturb(t *testing.T) {
	net := models.NSDP(4)
	for _, eng := range allEngines {
		plain, err := CheckDeadlock(net, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		withCtx, err := CheckDeadlock(net, Options{Engine: eng, Ctx: context.Background()})
		if err != nil {
			t.Fatalf("%v (ctx): %v", eng, err)
		}
		if plain.States != withCtx.States || plain.Deadlock != withCtx.Deadlock ||
			plain.Complete != withCtx.Complete || withCtx.Aborted {
			t.Errorf("%v: ctx-threaded run diverged: plain=%+v ctx=%+v", eng, plain, withCtx)
		}
	}
}
