package verify

import (
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
)

// TestRunKeyGolden pins the RunKey encoding to golden values across the
// option surface. The RunID is a durable identity: it keys the gpod
// result cache, the run ledger, the cluster result tier and the ckpt/v1
// checkpoint header, so an ACCIDENTAL change to the encoding (a
// reordered field, a new option folded in without a version bump)
// silently disconnects every stored artifact from its run. This test
// makes such a change loud.
//
// To change the encoding DELIBERATELY: bump RunKeyFormat in key.go,
// re-generate the golden values below (the failure output prints the
// new ones), and note the bump in CHANGES.md — old cache lines, ledger
// entries and checkpoints then refuse to match under the new scheme
// instead of colliding with it, which is the intended migration.
func TestRunKeyGolden(t *testing.T) {
	fig7 := models.Fig7()
	nsdp := models.NSDP(3)
	eat0, _ := nsdp.PlaceByName("eat0")
	eat1, _ := nsdp.PlaceByName("eat1")
	bad := []petri.Place{eat0, eat1}

	cases := []struct {
		label string
		net   *petri.Net
		check string
		bad   []petri.Place
		opts  Options
		want  string
	}{
		{"fig7/deadlock/exhaustive", fig7, "deadlock", nil, Options{Engine: Exhaustive}, "r7b36865fc837d191b8a54790"},
		{"fig7/deadlock/gpo", fig7, "deadlock", nil, Options{Engine: GPO}, "r47f7b9ace18b3ae5acc0be3a"},
		{"fig7/deadlock/gpo-explicit", fig7, "deadlock", nil, Options{Engine: GPOExplicit}, "r79fc4c2a3cd1681a49e39be2"},
		{"fig7/deadlock/partial-order", fig7, "deadlock", nil, Options{Engine: PartialOrder}, "r123fdb66576330fe50aa12a3"},
		{"fig7/deadlock/symbolic", fig7, "deadlock", nil, Options{Engine: Symbolic}, "r559787d2ef472d2401597977"},
		{"fig7/deadlock/unfolding", fig7, "deadlock", nil, Options{Engine: Unfolding}, "rd6fcada242137323477b7ef2"},
		{"fig7/deadlock/stop-at-first", fig7, "deadlock", nil, Options{Engine: Exhaustive, StopAtFirst: true}, "re8a4af3b53dcec2cef658412"},
		{"fig7/deadlock/proviso", fig7, "deadlock", nil, Options{Engine: PartialOrder, Proviso: true}, "rf5faeae9967533500902c313"},
		{"fig7/deadlock/reduce", fig7, "deadlock", nil, Options{Engine: Exhaustive, Reduce: true}, "r547d485285ee8f05e5eeb751"},
		{"fig7/deadlock/max-states", fig7, "deadlock", nil, Options{Engine: Exhaustive, MaxStates: 1000}, "ra0e7ce4e6dcda80d88302037"},
		{"fig7/deadlock/max-nodes", fig7, "deadlock", nil, Options{Engine: Symbolic, MaxNodes: 4096}, "r09466dbd20d501e58b6d30f9"},
		{"nsdp3/safety/gpo", nsdp, "safety", bad, Options{Engine: GPO}, "r6a83f0f2b905f6aff7190b90"},
		{"nsdp3/safety/exhaustive", nsdp, "safety", bad, Options{Engine: Exhaustive}, "ra1ad4a099d539ca0ef07b785"},
	}
	for _, tc := range cases {
		if got := RunID(tc.net, tc.check, tc.bad, tc.opts); got != tc.want {
			t.Errorf("%s: RunID = %q, want %q\n"+
				"The RunKey encoding changed. If this is deliberate, bump RunKeyFormat in key.go,\n"+
				"replace the golden values in this test with the new RunIDs (printed above), and\n"+
				"record the format bump in CHANGES.md. If it is not deliberate, the change would\n"+
				"orphan every cached result, ledger entry and checkpoint — undo it.",
				tc.label, got, tc.want)
		}
	}

	// Workers is a runtime knob, not an identity: the parallel explorer
	// is bit-identical to the sequential one (DESIGN.md D6), so both
	// share one cache line and one checkpoint key.
	seq := RunID(fig7, "deadlock", nil, Options{Engine: Exhaustive})
	par := RunID(fig7, "deadlock", nil, Options{Engine: Exhaustive, Workers: 8})
	if seq != par {
		t.Errorf("Workers changed the RunID (%s != %s); it must stay excluded", seq, par)
	}
	// Ckpt and Resume are excluded too: a resumed run computes exactly
	// what the uninterrupted run would have.
	ck := RunID(fig7, "deadlock", nil, Options{Engine: Exhaustive,
		Ckpt: &Checkpointer{}, Resume: &EngineSnapshot{}})
	if seq != ck {
		t.Errorf("Ckpt/Resume changed the RunID (%s != %s); they must stay excluded", seq, ck)
	}
}
