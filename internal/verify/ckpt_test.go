package verify

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
)

// reportEqual compares every Report field a resumed run must reproduce
// bit for bit (Elapsed is wall clock and excluded).
func reportEqual(a, b *Report) bool {
	return a.Net == b.Net && a.Engine == b.Engine && a.Deadlock == b.Deadlock &&
		reflect.DeepEqual(a.Witness, b.Witness) && a.States == b.States &&
		a.PeakBDD == b.PeakBDD && a.PeakSets == b.PeakSets &&
		a.Complete == b.Complete && a.Aborted == b.Aborted &&
		a.Checkpointed == b.Checkpointed &&
		a.PlacesRemoved == b.PlacesRemoved && a.TransRemoved == b.TransRemoved
}

// runCheck dispatches to CheckSafety when bad is non-nil.
func runCheck(n *petri.Net, bad []petri.Place, opts Options) (*Report, error) {
	if bad != nil {
		return CheckSafety(n, bad, opts)
	}
	return CheckDeadlock(n, opts)
}

// killAndResume stops a check at boundary `at`, then resumes it from
// the saved snapshot and returns the final Report. ok=false reports
// that the run finished before reaching that boundary.
func killAndResume(t *testing.T, n *petri.Net, bad []petri.Place, opts Options, at int64) (*Report, bool) {
	t.Helper()
	var snap *EngineSnapshot
	o := opts
	o.Ckpt = &Checkpointer{
		Poll: func(states int, boundary int64) CkptAction {
			if boundary == at {
				return CkptStop
			}
			return CkptNone
		},
		Save: func(sn *EngineSnapshot) error { snap = sn; return nil },
	}
	rep, err := runCheck(n, bad, o)
	if err != nil {
		t.Fatalf("%s/%s: kill at boundary %d: %v", n.Name(), opts.Engine, at, err)
	}
	if !rep.Checkpointed {
		return rep, false // finished before the kill point
	}
	if snap == nil {
		t.Fatalf("%s/%s: Checkpointed report without a saved snapshot", n.Name(), opts.Engine)
	}
	if snap.Boundary() != at {
		t.Fatalf("%s/%s: snapshot boundary %d, stopped at %d", n.Name(), opts.Engine, snap.Boundary(), at)
	}
	o2 := opts
	o2.Resume = snap
	rep2, err := runCheck(n, bad, o2)
	if err != nil {
		t.Fatalf("%s/%s: resume from boundary %d: %v", n.Name(), opts.Engine, at, err)
	}
	return rep2, true
}

// TestResumeBitIdentical is the PR's soundness pin: for Table 1
// instances across the checkpoint-capable engines — exhaustive
// (sequential AND parallel) and both GPO representations, deadlock and
// safety checks — kill the run at EVERY checkpoint boundary, resume
// from the saved snapshot, and require the final Report to be
// bit-identical to the uninterrupted run's.
func TestResumeBitIdentical(t *testing.T) {
	nsdp := models.NSDP(4)
	eat0, _ := nsdp.PlaceByName("eat0")
	eat1, _ := nsdp.PlaceByName("eat1")
	rw := models.ReadersWriters(3)
	reading0, _ := rw.PlaceByName("reading0")
	writing, _ := rw.PlaceByName("writing")

	cases := []struct {
		label string
		net   *petri.Net
		bad   []petri.Place
		opts  Options
	}{
		{"exhaustive/deadlock/seq", nsdp, nil, Options{Engine: Exhaustive}},
		{"exhaustive/deadlock/par", nsdp, nil, Options{Engine: Exhaustive, Workers: 3}},
		{"exhaustive/safety/seq", rw, []petri.Place{reading0, writing}, Options{Engine: Exhaustive}},
		{"exhaustive/safety/par", rw, []petri.Place{reading0, writing}, Options{Engine: Exhaustive, Workers: 3}},
		{"exhaustive/deadlock/reduced", models.Overtake(2), nil, Options{Engine: Exhaustive, Reduce: true}},
		{"gpo/deadlock", models.NSDP(6), nil, Options{Engine: GPO}},
		{"gpo/safety", nsdp, []petri.Place{eat0, eat1}, Options{Engine: GPO}},
		{"gpo-explicit/deadlock", models.Fig7(), nil, Options{Engine: GPOExplicit}},
		{"gpo/deadlock/fig1", models.Fig1(4), nil, Options{Engine: GPO}},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			want, err := runCheck(tc.net, tc.bad, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			boundaries := 0
			for at := int64(0); ; at++ {
				got, killed := killAndResume(t, tc.net, tc.bad, tc.opts, at)
				if !killed {
					break
				}
				boundaries++
				if !reportEqual(want, got) {
					t.Errorf("kill at boundary %d: resumed %+v != uninterrupted %+v", at, got, want)
				}
			}
			if boundaries == 0 {
				t.Error("run finished before the first boundary; nothing was exercised")
			}
		})
	}
}

// TestCkptUnsupportedEngines pins the typed pre-flight rejection for
// engines and configurations without deterministic boundaries.
func TestCkptUnsupportedEngines(t *testing.T) {
	n := models.Fig7()
	ck := &Checkpointer{}
	for _, eng := range []Engine{PartialOrder, Symbolic, Unfolding} {
		if _, err := CheckDeadlock(n, Options{Engine: eng, Ckpt: ck}); !errors.Is(err, ErrCkptUnsupported) {
			t.Errorf("%s+Ckpt: err = %v, want ErrCkptUnsupported", eng, err)
		}
		if _, err := CheckDeadlock(n, Options{Engine: eng, Resume: &EngineSnapshot{}}); !errors.Is(err, ErrCkptUnsupported) {
			t.Errorf("%s+Resume: err = %v, want ErrCkptUnsupported", eng, err)
		}
	}
	// A cluster Explorer computes the same answer but cannot snapshot.
	if _, err := CheckDeadlock(n, Options{Engine: Exhaustive, Ckpt: ck,
		Explorer: func(n *petri.Net, bad []petri.Place, o reach.Options) (*reach.Result, error) { return nil, nil },
	}); !errors.Is(err, ErrCkptUnsupported) {
		t.Errorf("Explorer+Ckpt: err = %v, want ErrCkptUnsupported", err)
	}
	// A resume snapshot must match the engine that will consume it.
	if _, err := CheckDeadlock(n, Options{Engine: GPO, Resume: &EngineSnapshot{}}); !errors.Is(err, ErrCkptUnsupported) {
		t.Errorf("GPO+empty snapshot: err = %v, want ErrCkptUnsupported", err)
	}
}
