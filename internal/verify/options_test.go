package verify

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
)

// TestOptionsValidate is the table test for the façade's option
// validation: nonsense values must come back as a typed *OptionError
// naming the offending field, and valid values must pass.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name      string
		opts      Options
		wantField string // "" = valid
	}{
		{"zero-value", Options{}, ""},
		{"all-defaults-gpo", Options{Engine: GPO}, ""},
		{"zero-bounds-valid", Options{Engine: Exhaustive, MaxStates: 0, MaxNodes: 0, Workers: 0}, ""},
		{"positive-bounds-valid", Options{Engine: Symbolic, MaxStates: 10, MaxNodes: 10, Workers: 4}, ""},
		{"engine-negative", Options{Engine: Engine(-1)}, "Engine"},
		{"engine-past-end", Options{Engine: Unfolding + 1}, "Engine"},
		{"engine-way-out", Options{Engine: Engine(99)}, "Engine"},
		{"max-states-negative", Options{Engine: GPO, MaxStates: -1}, "MaxStates"},
		{"max-nodes-negative", Options{Engine: Symbolic, MaxNodes: -7}, "MaxNodes"},
		{"workers-negative", Options{Engine: Exhaustive, Workers: -2}, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v (%T), want *OptionError", err, err)
			}
			if oe.Field != tc.wantField {
				t.Fatalf("OptionError.Field = %q, want %q", oe.Field, tc.wantField)
			}
			if oe.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestChecksRejectInvalidOptions verifies both façade entry points route
// through Validate instead of panicking or silently misbehaving.
func TestChecksRejectInvalidOptions(t *testing.T) {
	net := models.NSDP(2)
	bad := []petri.Place{net.InitialPlaces()[0]}
	invalid := []Options{
		{Engine: Engine(42)},
		{Engine: GPO, MaxStates: -1},
		{Engine: Exhaustive, Workers: -1},
		{Engine: Symbolic, MaxNodes: -1},
	}
	for _, opts := range invalid {
		var oe *OptionError
		if _, err := CheckDeadlock(net, opts); !errors.As(err, &oe) {
			t.Errorf("CheckDeadlock(%+v) = %v, want *OptionError", opts, err)
		}
		if _, err := CheckSafety(net, bad, opts); !errors.As(err, &oe) {
			t.Errorf("CheckSafety(%+v) = %v, want *OptionError", opts, err)
		}
	}
}
