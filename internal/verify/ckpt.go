package verify

// Engine-agnostic checkpoint/resume plumbing: one Checkpointer bridges
// the per-engine hooks (reach.CkptHook at BFS level boundaries,
// core.CkptHook at DFS step boundaries) and one EngineSnapshot union
// carries whichever snapshot the selected engine produced. The durable
// on-disk format lives in internal/ckpt; this layer only decides which
// engine speaks and translates verdicts.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/reach"
)

// ErrCkptUnsupported is returned when Options.Ckpt or Options.Resume is
// set for an engine (or engine configuration) that cannot checkpoint:
// only Exhaustive, GPO and GPOExplicit have deterministic boundary
// snapshots; PartialOrder, Symbolic and Unfolding do not, and neither
// does a custom cluster Explorer.
var ErrCkptUnsupported = errors.New("verify: engine does not support checkpoint/resume")

// CkptAction is a Checkpointer's verdict at an engine boundary.
type CkptAction int

const (
	// CkptNone continues without checkpointing.
	CkptNone CkptAction = iota
	// CkptSave saves a snapshot and continues.
	CkptSave
	// CkptStop saves a snapshot and suspends the run: the check returns
	// a partial Report with Checkpointed set (and no error), the way
	// cooperative aborts return Aborted.
	CkptStop
)

// Checkpointer enables checkpointing for checkpoint-capable engines.
// Poll is consulted at every engine boundary — a BFS level boundary for
// Exhaustive, a DFS step for the GPO engines — with the states-explored
// count and the boundary coordinate; Save receives the snapshot when
// Poll answers CkptSave or CkptStop. A Save error fails the check.
type Checkpointer struct {
	Poll func(states int, boundary int64) CkptAction
	Save func(*EngineSnapshot) error
}

// EngineSnapshot is the union of the engines' snapshot types; exactly
// one field is non-nil, matching the engine that produced it. Boundary
// returns the engine-appropriate resume coordinate.
type EngineSnapshot struct {
	Reach *reach.Snapshot
	Core  *core.Snapshot
}

// Boundary returns the snapshot's deterministic boundary coordinate:
// the BFS level for exhaustive snapshots, the DFS step for GPO ones.
func (s *EngineSnapshot) Boundary() int64 {
	switch {
	case s == nil:
		return -1
	case s.Reach != nil:
		return int64(s.Reach.Levels)
	case s.Core != nil:
		return s.Core.Steps
	}
	return -1
}

// States returns the number of interned states in the snapshot.
func (s *EngineSnapshot) States() int {
	switch {
	case s == nil:
		return 0
	case s.Reach != nil:
		return len(s.Reach.States)
	case s.Core != nil:
		return s.Core.NumStates
	}
	return 0
}

// save is the nil-safe Save invocation.
func (c *Checkpointer) save(sn *EngineSnapshot) error {
	if c == nil || c.Save == nil {
		return nil
	}
	return c.Save(sn)
}

// reachHook adapts the Checkpointer to the exhaustive engine.
func (c *Checkpointer) reachHook() *reach.CkptHook {
	if c == nil {
		return nil
	}
	return &reach.CkptHook{
		Poll: func(states, levels int) reach.CkptAction {
			if c.Poll == nil {
				return reach.CkptNone
			}
			switch c.Poll(states, int64(levels)) {
			case CkptSave:
				return reach.CkptSave
			case CkptStop:
				return reach.CkptStop
			}
			return reach.CkptNone
		},
		Save: func(sn *reach.Snapshot) error {
			return c.save(&EngineSnapshot{Reach: sn})
		},
	}
}

// coreHook adapts the Checkpointer to the GPO engines.
func (c *Checkpointer) coreHook() *core.CkptHook {
	if c == nil {
		return nil
	}
	return &core.CkptHook{
		Poll: func(states int, steps int64) core.CkptAction {
			if c.Poll == nil {
				return core.CkptNone
			}
			switch c.Poll(states, steps) {
			case CkptSave:
				return core.CkptSave
			case CkptStop:
				return core.CkptStop
			}
			return core.CkptNone
		},
		Save: func(sn *core.Snapshot) error {
			return c.save(&EngineSnapshot{Core: sn})
		},
	}
}

// validateCkpt gates checkpoint/resume to the configurations whose
// boundaries are deterministic, keeping the unsupported combinations a
// typed, pre-flight error instead of a mid-run surprise.
func (o Options) validateCkpt() error {
	if o.Ckpt == nil && o.Resume == nil {
		return nil
	}
	switch o.Engine {
	case Exhaustive, GPO, GPOExplicit:
	default:
		return fmt.Errorf("%w: %s", ErrCkptUnsupported, o.Engine)
	}
	if o.Explorer != nil {
		return fmt.Errorf("%w: custom Explorer", ErrCkptUnsupported)
	}
	if o.Resume != nil {
		wantReach := o.Engine == Exhaustive
		if wantReach && o.Resume.Reach == nil || !wantReach && o.Resume.Core == nil {
			return fmt.Errorf("%w: resume snapshot does not match engine %s", ErrCkptUnsupported, o.Engine)
		}
	}
	return nil
}

// Checkpointable reports (pre-flight) whether this option set could run
// under a Checkpointer: the jobs layer uses it to reject unsupported
// submissions with a client error instead of a mid-run surprise.
func (o Options) Checkpointable() error {
	probe := o
	probe.Ckpt = &Checkpointer{}
	probe.Resume = nil
	return probe.validateCkpt()
}

// resumeReach returns the exhaustive-engine snapshot to resume from,
// nil when starting fresh.
func (o Options) resumeReach() *reach.Snapshot {
	if o.Resume == nil {
		return nil
	}
	return o.Resume.Reach
}

// resumeCore returns the GPO-engine snapshot to resume from, nil when
// starting fresh.
func (o Options) resumeCore() *core.Snapshot {
	if o.Resume == nil {
		return nil
	}
	return o.Resume.Core
}

// ckptStopped reports whether an engine error is a clean checkpoint
// suspension rather than a failure.
func ckptStopped(err error) bool {
	return errors.Is(err, reach.ErrCheckpointStop) || errors.Is(err, core.ErrCheckpointStop)
}
