package pnio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
)

func TestRoundTrip(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(3), models.Fig2(2), models.Fig7(),
		models.ReadersWriters(2), models.ArbiterTree(2), models.Overtake(2),
	}
	for _, n := range nets {
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		n2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", n.Name(), err)
		}
		if n2.Name() != n.Name() || n2.NumPlaces() != n.NumPlaces() || n2.NumTrans() != n.NumTrans() {
			t.Fatalf("%s: structure lost in round trip", n.Name())
		}
		if !n2.InitialMarking().Equal(n.InitialMarking()) {
			t.Errorf("%s: initial marking lost", n.Name())
		}
		// Behavior must be identical: same reachable state count.
		c1, err1 := reach.CountStates(n)
		c2, err2 := reach.CountStates(n2)
		if err1 != nil || err2 != nil || c1 != c2 {
			t.Errorf("%s: state counts differ after round trip: %d vs %d", n.Name(), c1, c2)
		}
	}
}

func TestParseExample(t *testing.T) {
	src := `
# a tiny choice net
net choice
place p *
place a
place b
trans  left  : p -> a
trans  right : p -> b
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "choice" || n.NumPlaces() != 3 || n.NumTrans() != 2 {
		t.Fatal("parsed structure wrong")
	}
	l, _ := n.TransByName("left")
	r, _ := n.TransByName("right")
	if !n.Conflict(l, r) {
		t.Error("left and right must conflict")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no-net":          "place p *",
		"dup-net":         "net a\nnet b",
		"bad-place":       "net a\nplace",
		"bad-star":        "net a\nplace p x",
		"unknown-place":   "net a\ntrans t : q -> p",
		"missing-colon":   "net a\nplace p *\ntrans t p -> p",
		"missing-arrow":   "net a\nplace p *\ntrans t : p p",
		"unknown-keyword": "net a\nfoo bar",
		"empty-name":      "net a\nplace p *\ntrans : p -> p",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestNetDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := NetDOT(&buf, models.Fig7()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "doublecircle", "shape=box", "p0 ->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestGraphDOT(t *testing.T) {
	net := models.Fig3()
	res, err := reach.Explore(net, reach.Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = GraphDOT(&buf, net, res.Graph.States, func(from int) []Edge {
		var out []Edge
		for _, e := range res.Graph.Edges[from] {
			out = append(out, Edge{T: e.T, To: e.To})
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s0 -> s1") {
		t.Error("graph DOT missing edges")
	}
}
