package pnio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
)

// FuzzParse throws arbitrary text at the hardened parser. Whatever
// parses must survive a Write/Parse round trip structurally unchanged;
// everything else must fail with an error, never a panic or a hang.
func FuzzParse(f *testing.F) {
	// Seed with every built-in model family rendered to .pn text, so
	// the fuzzer starts from realistic well-formed nets.
	for _, fam := range models.Families() {
		n, err := models.ByName(fam, 4) // every family accepts 4 (asat needs a power of two)
		if err != nil {
			f.Fatalf("models.ByName(%s, 4): %v", fam, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			f.Fatalf("Write(%s): %v", fam, err)
		}
		f.Add(buf.String())
	}
	// And with the interesting malformed shapes the parser hardens
	// against: duplicates, metacharacter names, truncated trans lines.
	f.Add("net n\nplace p *\ntrans t : p -> p\n")
	f.Add("net n\nplace p\nplace p\n")
	f.Add("net n\nplace p\ntrans t : p p -> p\n")
	f.Add("net n\nplace p\ntrans t : p\n")
	f.Add("net n\nplace * *\n")
	f.Add("net n\nplace a:b\n")
	f.Add("net n\n# comment\nplace p\ntrans t :-> p\n")
	f.Add("trans t : p -> p\n")

	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics/hangs are the bug
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("Write of a parsed net failed: %v\ninput: %q", err, src)
		}
		n2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written net failed: %v\nwritten: %q", err, buf.String())
		}
		assertSameNet(t, n, n2)
	})
}

// assertSameNet checks the two nets are structurally identical: same
// names in the same order, same arcs, same initial marking.
func assertSameNet(t *testing.T, a, b *petri.Net) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Fatalf("name %q != %q", a.Name(), b.Name())
	}
	if a.NumPlaces() != b.NumPlaces() || a.NumTrans() != b.NumTrans() {
		t.Fatalf("size %d/%d != %d/%d", a.NumPlaces(), a.NumTrans(), b.NumPlaces(), b.NumTrans())
	}
	for p := petri.Place(0); int(p) < a.NumPlaces(); p++ {
		if a.PlaceName(p) != b.PlaceName(p) {
			t.Fatalf("place %d: %q != %q", p, a.PlaceName(p), b.PlaceName(p))
		}
	}
	for tr := petri.Trans(0); int(tr) < a.NumTrans(); tr++ {
		if a.TransName(tr) != b.TransName(tr) {
			t.Fatalf("trans %d: %q != %q", tr, a.TransName(tr), b.TransName(tr))
		}
		if !samePlaces(a.Pre(tr), b.Pre(tr)) || !samePlaces(a.Post(tr), b.Post(tr)) {
			t.Fatalf("trans %q: arcs differ", a.TransName(tr))
		}
	}
	if !samePlaces(a.InitialPlaces(), b.InitialPlaces()) {
		t.Fatalf("initial marking differs: %v != %v", a.InitialPlaces(), b.InitialPlaces())
	}
}

func samePlaces(a, b []petri.Place) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
