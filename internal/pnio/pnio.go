// Package pnio reads and writes Petri nets in a small line-oriented
// textual format, and exports nets and reachability graphs to Graphviz
// DOT, so the command-line tools can exchange models.
//
// The .pn format:
//
//	net <name>
//	place <name> [*]        # '*' marks the place initially
//	trans <name> : <in>...  -> <out>...
//	# comment
//
// Place lines must precede the transition lines that use them. Names may
// contain any non-whitespace characters except the format's own
// metacharacters: a name may not be "*", may not start with "#", and may
// not contain ":" or "->" (those would be ambiguous on a trans line and
// break the Parse/Write round trip).
//
// Parse is hardened for untrusted input: it enforces caps on name
// length, place/transition counts and arcs per transition, and reports
// duplicate names and duplicate arcs with the offending line number.
package pnio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/petri"
)

// Limits on untrusted input. They are far above anything the Table 1
// models need but stop adversarial inputs from ballooning the builder
// (every arc list is materialized, and conflict-cluster construction is
// quadratic in cluster size).
const (
	maxNameLen  = 256
	maxPlaces   = 1 << 20
	maxTrans    = 1 << 20
	maxArcsLine = 1 << 12 // arcs on one trans line, both sides together
)

// checkName rejects names that could not survive a Write/Parse round
// trip: the format's own metacharacters, and absurd lengths.
func checkName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("empty name")
	case len(name) > maxNameLen:
		return fmt.Errorf("name longer than %d bytes", maxNameLen)
	case strings.ContainsAny(name, " \t\n\r\v\f"):
		return fmt.Errorf("name %q contains whitespace", name)
	case name == "*":
		return fmt.Errorf("name %q is the initial-marking marker", name)
	case strings.HasPrefix(name, "#"):
		return fmt.Errorf("name %q would parse as a comment", name)
	case strings.Contains(name, ":") || strings.Contains(name, "->"):
		return fmt.Errorf("name %q contains ':' or '->'", name)
	}
	return nil
}

// Parse reads a net in .pn format.
func Parse(r io.Reader) (*petri.Net, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b *petri.Builder
	places := make(map[string]petri.Place)
	transSeen := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "net":
			if b != nil {
				return nil, fmt.Errorf("pnio: line %d: duplicate net header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pnio: line %d: want 'net <name>'", lineNo)
			}
			if len(fields[1]) > maxNameLen {
				return nil, fmt.Errorf("pnio: line %d: name longer than %d bytes", lineNo, maxNameLen)
			}
			b = petri.NewBuilder(fields[1])
		case "place":
			if b == nil {
				return nil, fmt.Errorf("pnio: line %d: 'place' before 'net'", lineNo)
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("pnio: line %d: want 'place <name> [*]'", lineNo)
			}
			if err := checkName(fields[1]); err != nil {
				return nil, fmt.Errorf("pnio: line %d: %v", lineNo, err)
			}
			if _, dup := places[fields[1]]; dup {
				return nil, fmt.Errorf("pnio: line %d: duplicate place %q", lineNo, fields[1])
			}
			if len(places) >= maxPlaces {
				return nil, fmt.Errorf("pnio: line %d: more than %d places", lineNo, maxPlaces)
			}
			p := b.Place(fields[1])
			places[fields[1]] = p
			if len(fields) == 3 {
				if fields[2] != "*" {
					return nil, fmt.Errorf("pnio: line %d: unexpected %q", lineNo, fields[2])
				}
				b.Mark(p)
			}
		case "trans":
			if b == nil {
				return nil, fmt.Errorf("pnio: line %d: 'trans' before 'net'", lineNo)
			}
			// trans name : in... -> out...
			rest := strings.TrimSpace(strings.TrimPrefix(line, "trans"))
			colon := strings.Index(rest, ":")
			if colon < 0 {
				return nil, fmt.Errorf("pnio: line %d: missing ':'", lineNo)
			}
			name := strings.TrimSpace(rest[:colon])
			if name == "" {
				return nil, fmt.Errorf("pnio: line %d: empty transition name", lineNo)
			}
			if err := checkName(name); err != nil {
				return nil, fmt.Errorf("pnio: line %d: %v", lineNo, err)
			}
			if transSeen[name] {
				return nil, fmt.Errorf("pnio: line %d: duplicate transition %q", lineNo, name)
			}
			if len(transSeen) >= maxTrans {
				return nil, fmt.Errorf("pnio: line %d: more than %d transitions", lineNo, maxTrans)
			}
			transSeen[name] = true
			arrow := strings.Index(rest[colon:], "->")
			if arrow < 0 {
				return nil, fmt.Errorf("pnio: line %d: missing '->'", lineNo)
			}
			inPart := strings.Fields(rest[colon+1 : colon+arrow])
			outPart := strings.Fields(rest[colon+arrow+2:])
			if len(inPart)+len(outPart) > maxArcsLine {
				return nil, fmt.Errorf("pnio: line %d: more than %d arcs on one transition", lineNo, maxArcsLine)
			}
			resolve := func(part []string, side string) ([]petri.Place, error) {
				seen := make(map[string]bool, len(part))
				ps := make([]petri.Place, 0, len(part))
				for _, nm := range part {
					p, ok := places[nm]
					if !ok {
						return nil, fmt.Errorf("pnio: line %d: unknown place %q", lineNo, nm)
					}
					if seen[nm] {
						return nil, fmt.Errorf("pnio: line %d: duplicate %s arc %q", lineNo, side, nm)
					}
					seen[nm] = true
					ps = append(ps, p)
				}
				return ps, nil
			}
			ins, err := resolve(inPart, "input")
			if err != nil {
				return nil, err
			}
			outs, err := resolve(outPart, "output")
			if err != nil {
				return nil, err
			}
			b.TransArcs(name, ins, outs)
		default:
			return nil, fmt.Errorf("pnio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pnio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("pnio: empty input")
	}
	return b.Build()
}

// Write renders the net in .pn format. Parse(Write(n)) reproduces n;
// Write refuses nets whose names contain the format's metacharacters,
// since their output could not be parsed back.
func Write(w io.Writer, n *petri.Net) error {
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if err := checkName(n.PlaceName(p)); err != nil {
			return fmt.Errorf("pnio: place %d: %v", p, err)
		}
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		if err := checkName(n.TransName(t)); err != nil {
			return fmt.Errorf("pnio: transition %d: %v", t, err)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "net %s\n", n.Name())
	marked := make(map[petri.Place]bool)
	for _, p := range n.InitialPlaces() {
		marked[p] = true
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if marked[p] {
			fmt.Fprintf(bw, "place %s *\n", n.PlaceName(p))
		} else {
			fmt.Fprintf(bw, "place %s\n", n.PlaceName(p))
		}
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		fmt.Fprintf(bw, "trans %s :", n.TransName(t))
		for _, p := range n.Pre(t) {
			fmt.Fprintf(bw, " %s", n.PlaceName(p))
		}
		fmt.Fprint(bw, " ->")
		for _, p := range n.Post(t) {
			fmt.Fprintf(bw, " %s", n.PlaceName(p))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// NetDOT renders the net structure as a Graphviz digraph: circles for
// places (doubled when initially marked), boxes for transitions.
func NetDOT(w io.Writer, n *petri.Net) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", n.Name())
	marked := make(map[petri.Place]bool)
	for _, p := range n.InitialPlaces() {
		marked[p] = true
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		shape := "circle"
		if marked[p] {
			shape = "doublecircle"
		}
		fmt.Fprintf(bw, "  p%d [label=%q shape=%s];\n", p, n.PlaceName(p), shape)
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		fmt.Fprintf(bw, "  t%d [label=%q shape=box];\n", t, n.TransName(t))
		for _, p := range n.Pre(t) {
			fmt.Fprintf(bw, "  p%d -> t%d;\n", p, t)
		}
		for _, p := range n.Post(t) {
			fmt.Fprintf(bw, "  t%d -> p%d;\n", t, p)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// GraphDOT renders an explicit reachability graph as a Graphviz digraph.
// Vertex labels list the marked places; edge labels the fired transition.
func GraphDOT(w io.Writer, n *petri.Net, states []petri.Marking, edges func(from int) []Edge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", n.Name()+" RG")
	for i, m := range states {
		label := markingLabel(n, m)
		fmt.Fprintf(bw, "  s%d [label=%q];\n", i, label)
	}
	for i := range states {
		for _, e := range edges(i) {
			fmt.Fprintf(bw, "  s%d -> s%d [label=%q];\n", i, e.To, n.TransName(e.T))
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// Edge mirrors reach.Edge without importing it (pnio stays dependency-light).
type Edge struct {
	T  petri.Trans
	To int
}

func markingLabel(n *petri.Net, m petri.Marking) string {
	var names []string
	for _, p := range m.Places() {
		names = append(names, n.PlaceName(p))
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
