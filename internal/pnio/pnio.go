// Package pnio reads and writes Petri nets in a small line-oriented
// textual format, and exports nets and reachability graphs to Graphviz
// DOT, so the command-line tools can exchange models.
//
// The .pn format:
//
//	net <name>
//	place <name> [*]        # '*' marks the place initially
//	trans <name> : <in>...  -> <out>...
//	# comment
//
// Place lines must precede the transition lines that use them. Names may
// contain any non-whitespace characters.
package pnio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/petri"
)

// Parse reads a net in .pn format.
func Parse(r io.Reader) (*petri.Net, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b *petri.Builder
	places := make(map[string]petri.Place)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "net":
			if b != nil {
				return nil, fmt.Errorf("pnio: line %d: duplicate net header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pnio: line %d: want 'net <name>'", lineNo)
			}
			b = petri.NewBuilder(fields[1])
		case "place":
			if b == nil {
				return nil, fmt.Errorf("pnio: line %d: 'place' before 'net'", lineNo)
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("pnio: line %d: want 'place <name> [*]'", lineNo)
			}
			p := b.Place(fields[1])
			places[fields[1]] = p
			if len(fields) == 3 {
				if fields[2] != "*" {
					return nil, fmt.Errorf("pnio: line %d: unexpected %q", lineNo, fields[2])
				}
				b.Mark(p)
			}
		case "trans":
			if b == nil {
				return nil, fmt.Errorf("pnio: line %d: 'trans' before 'net'", lineNo)
			}
			// trans name : in... -> out...
			rest := strings.TrimSpace(strings.TrimPrefix(line, "trans"))
			colon := strings.Index(rest, ":")
			if colon < 0 {
				return nil, fmt.Errorf("pnio: line %d: missing ':'", lineNo)
			}
			name := strings.TrimSpace(rest[:colon])
			if name == "" {
				return nil, fmt.Errorf("pnio: line %d: empty transition name", lineNo)
			}
			arrow := strings.Index(rest[colon:], "->")
			if arrow < 0 {
				return nil, fmt.Errorf("pnio: line %d: missing '->'", lineNo)
			}
			inPart := strings.Fields(rest[colon+1 : colon+arrow])
			outPart := strings.Fields(rest[colon+arrow+2:])
			var ins, outs []petri.Place
			for _, nm := range inPart {
				p, ok := places[nm]
				if !ok {
					return nil, fmt.Errorf("pnio: line %d: unknown place %q", lineNo, nm)
				}
				ins = append(ins, p)
			}
			for _, nm := range outPart {
				p, ok := places[nm]
				if !ok {
					return nil, fmt.Errorf("pnio: line %d: unknown place %q", lineNo, nm)
				}
				outs = append(outs, p)
			}
			b.TransArcs(name, ins, outs)
		default:
			return nil, fmt.Errorf("pnio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pnio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("pnio: empty input")
	}
	return b.Build()
}

// Write renders the net in .pn format. Parse(Write(n)) reproduces n.
func Write(w io.Writer, n *petri.Net) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "net %s\n", n.Name())
	marked := make(map[petri.Place]bool)
	for _, p := range n.InitialPlaces() {
		marked[p] = true
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if marked[p] {
			fmt.Fprintf(bw, "place %s *\n", n.PlaceName(p))
		} else {
			fmt.Fprintf(bw, "place %s\n", n.PlaceName(p))
		}
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		fmt.Fprintf(bw, "trans %s :", n.TransName(t))
		for _, p := range n.Pre(t) {
			fmt.Fprintf(bw, " %s", n.PlaceName(p))
		}
		fmt.Fprint(bw, " ->")
		for _, p := range n.Post(t) {
			fmt.Fprintf(bw, " %s", n.PlaceName(p))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// NetDOT renders the net structure as a Graphviz digraph: circles for
// places (doubled when initially marked), boxes for transitions.
func NetDOT(w io.Writer, n *petri.Net) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", n.Name())
	marked := make(map[petri.Place]bool)
	for _, p := range n.InitialPlaces() {
		marked[p] = true
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		shape := "circle"
		if marked[p] {
			shape = "doublecircle"
		}
		fmt.Fprintf(bw, "  p%d [label=%q shape=%s];\n", p, n.PlaceName(p), shape)
	}
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		fmt.Fprintf(bw, "  t%d [label=%q shape=box];\n", t, n.TransName(t))
		for _, p := range n.Pre(t) {
			fmt.Fprintf(bw, "  p%d -> t%d;\n", p, t)
		}
		for _, p := range n.Post(t) {
			fmt.Fprintf(bw, "  t%d -> p%d;\n", t, p)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// GraphDOT renders an explicit reachability graph as a Graphviz digraph.
// Vertex labels list the marked places; edge labels the fired transition.
func GraphDOT(w io.Writer, n *petri.Net, states []petri.Marking, edges func(from int) []Edge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", n.Name()+" RG")
	for i, m := range states {
		label := markingLabel(n, m)
		fmt.Fprintf(bw, "  s%d [label=%q];\n", i, label)
	}
	for i := range states {
		for _, e := range edges(i) {
			fmt.Fprintf(bw, "  s%d -> s%d [label=%q];\n", i, e.To, n.TransName(e.T))
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// Edge mirrors reach.Edge without importing it (pnio stays dependency-light).
type Edge struct {
	T  petri.Trans
	To int
}

func markingLabel(n *petri.Net, m petri.Marking) string {
	var names []string
	for _, p := range m.Places() {
		names = append(names, n.PlaceName(p))
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
