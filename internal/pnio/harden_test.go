package pnio

import (
	"strconv"
	"strings"
	"testing"
)

// TestParseRejectsMalformed is the table test for the parser hardening:
// each malformed input must be rejected with a line-numbered error
// mentioning the offense, instead of being silently accepted or
// deferred to an unnumbered builder error.
func TestParseRejectsMalformed(t *testing.T) {
	hugeTrans := "net n\nplace p *\ntrans t : " +
		strings.Repeat("p ", maxArcsLine) + "-> p\n"
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"duplicate-place", "net n\nplace p\nplace p\n", "line 3: duplicate place"},
		{"duplicate-trans", "net n\nplace p *\ntrans t : p -> p\ntrans t : p -> p\n", "line 4: duplicate transition"},
		{"duplicate-in-arc", "net n\nplace p *\ntrans t : p p -> p\n", "line 3: duplicate input arc"},
		{"duplicate-out-arc", "net n\nplace p *\nplace q\ntrans t : p -> q q\n", "line 4: duplicate output arc"},
		{"too-many-arcs", hugeTrans, "line 3: more than"},
		{"star-place-name", "net n\nplace *\n", "initial-marking marker"},
		{"colon-in-place", "net n\nplace a:b\n", "contains ':' or '->'"},
		{"arrow-in-place", "net n\nplace a->b\n", "contains ':' or '->'"},
		{"hash-place", "net n\nplace p #q\n", `unexpected "#q"`},
		{"long-name", "net n\nplace " + strings.Repeat("x", maxNameLen+1) + "\n", "longer than"},
		{"missing-arrow", "net n\nplace p\ntrans t : p\n", "missing '->'"},
		{"missing-colon", "net n\nplace p\ntrans t p -> p\n", "missing ':'"},
		{"trans-before-net", "trans t : p -> p\n", "'trans' before 'net'"},
		{"empty-input", "", "empty input"},
		{"comments-only", "# a\n\n# b\n", "empty input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted malformed input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseAcceptsMaxArcs pins the cap boundary: exactly maxArcsLine
// arcs on one line is still legal.
func TestParseAcceptsMaxArcs(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("net n\n")
	for i := 0; i < maxArcsLine; i++ {
		sb.WriteString("place p")
		sb.WriteString(itoa(i))
		if i == 0 {
			sb.WriteString(" *")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("trans t :")
	for i := 0; i < maxArcsLine/2; i++ {
		sb.WriteString(" p" + itoa(i))
	}
	sb.WriteString(" ->")
	for i := maxArcsLine / 2; i < maxArcsLine; i++ {
		sb.WriteString(" p" + itoa(i))
	}
	sb.WriteString("\n")
	if _, err := Parse(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("Parse rejected a net at the arc cap: %v", err)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
