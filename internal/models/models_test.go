package models

import (
	"fmt"
	"testing"

	"repro/internal/petri"
	"repro/internal/reach"
)

// TestNSDPStateCounts verifies the reconstruction against the paper's
// Table 1 "States" column: the full reachable state space of NSDP(n) must
// be exactly 18, 322, 5778, 103682 for n = 2, 4, 6, 8 (Lucas numbers L_6n).
func TestNSDPStateCounts(t *testing.T) {
	want := map[int]int{2: 18, 4: 322, 6: 5778, 8: 103682}
	for n, exp := range want {
		got, err := reach.CountStates(NSDP(n))
		if err != nil {
			t.Fatalf("NSDP(%d): %v", n, err)
		}
		if got != exp {
			t.Errorf("NSDP(%d): got %d states, paper reports %d", n, got, exp)
		}
	}
}

func TestNSDPDeadlocks(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		res, err := reach.Explore(NSDP(n), reach.Options{})
		if err != nil {
			t.Fatalf("NSDP(%d): %v", n, err)
		}
		// Exactly two deadlocks: all philosophers holding their left fork,
		// or all holding their right fork.
		if !res.Deadlock {
			t.Fatalf("NSDP(%d): expected deadlock", n)
		}
		if len(res.Deadlocks) != 2 {
			t.Errorf("NSDP(%d): got %d deadlock markings, want 2", n, len(res.Deadlocks))
		}
		net := NSDP(n)
		for _, m := range res.Deadlocks {
			for i := 0; i < n; i++ {
				hl, _ := net.PlaceByName(fmt.Sprintf("hasL%d", i))
				hr, _ := net.PlaceByName(fmt.Sprintf("hasR%d", i))
				if !m.Has(hl) && !m.Has(hr) {
					t.Errorf("NSDP(%d): deadlock %s has philosopher %d not holding a fork",
						n, m.String(net), i)
				}
			}
		}
	}
}

func TestFig1Counts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		got, err := reach.CountStates(Fig1(n))
		if err != nil {
			t.Fatalf("Fig1(%d): %v", n, err)
		}
		if want := 1 << n; got != want {
			t.Errorf("Fig1(%d): got %d states, want 2^n = %d", n, got, want)
		}
	}
}

func TestFig2Counts(t *testing.T) {
	pow3 := 1
	for n := 1; n <= 7; n++ {
		pow3 *= 3
		got, err := reach.CountStates(Fig2(n))
		if err != nil {
			t.Fatalf("Fig2(%d): %v", n, err)
		}
		if got != pow3 {
			t.Errorf("Fig2(%d): got %d states, want 3^n = %d", n, got, pow3)
		}
	}
}

func TestFig3Structure(t *testing.T) {
	net := Fig3()
	res, err := reach.Explore(net, reach.Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reachable: {p1}, then A -> {p2,p3} -> C -> {p5}, or B -> {p4}.
	if res.States != 4 {
		t.Errorf("Fig3: got %d states, want 4", res.States)
	}
	// D never fires in any interleaving.
	d, _ := net.TransByName("D")
	if res.Graph.QuasiLive()[d] {
		t.Error("Fig3: transition D should never be able to fire")
	}
	if !res.Deadlock {
		t.Error("Fig3: terminal markings should be reported as deadlocks")
	}
}

func TestFig7Explicit(t *testing.T) {
	net := Fig7()
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// {p0,p3} -A-> {p1,p3} -C-> {p5}; -B-> {p2,p3} -D-> {p5}: 4 markings.
	if res.States != 4 {
		t.Errorf("Fig7: got %d states, want 4", res.States)
	}
}

func TestRWDeadlockFree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6} {
		res, err := reach.Explore(ReadersWriters(n), reach.Options{})
		if err != nil {
			t.Fatalf("RW(%d): %v", n, err)
		}
		if res.Deadlock {
			t.Errorf("RW(%d): unexpected deadlock %s", n, res.Deadlocks[0].String(ReadersWriters(n)))
		}
		// 2^n reader combinations with writer idle, plus the writing state.
		if want := 1<<n + 1; res.States != want {
			t.Errorf("RW(%d): got %d states, want %d", n, res.States, want)
		}
	}
}

func TestArbiterTreeDeadlockFree(t *testing.T) {
	for _, n := range []int{2, 4} {
		net := ArbiterTree(n)
		res, err := reach.Explore(net, reach.Options{StoreGraph: true})
		if err != nil {
			t.Fatalf("ASAT(%d): %v", n, err)
		}
		if res.Deadlock {
			t.Errorf("ASAT(%d): unexpected deadlock", n)
		}
		// Every transition should be live: the arbiter never starves a user.
		live := res.Graph.Live()
		for tr, ok := range live {
			if !ok {
				t.Errorf("ASAT(%d): transition %s is not live", n, net.TransName(petri.Trans(tr)))
			}
		}
		t.Logf("ASAT(%d): %d states", n, res.States)
	}
}

func TestOvertakeDeadlockFree(t *testing.T) {
	for _, n := range []int{2, 3} {
		res, err := reach.Explore(Overtake(n), reach.Options{})
		if err != nil {
			t.Fatalf("OVER(%d): %v", n, err)
		}
		if res.Deadlock {
			t.Errorf("OVER(%d): unexpected deadlock", n)
		}
		t.Logf("OVER(%d): %d states", n, res.States)
	}
}

// TestModelsAreSafe checks that every generated net is 1-bounded: Explore
// returns ErrUnsafe if any firing would double-mark a place.
func TestModelsAreSafe(t *testing.T) {
	nets := []*petri.Net{
		NSDP(3), Fig1(4), Fig2(3), Fig3(), Fig5(), Fig7(),
		ReadersWriters(4), ArbiterTree(4), Overtake(3),
	}
	for _, net := range nets {
		if _, err := reach.Explore(net, reach.Options{}); err != nil {
			t.Errorf("%s: %v", net.Name(), err)
		}
	}
}
