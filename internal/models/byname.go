package models

import (
	"fmt"
	"strings"

	"repro/internal/petri"
)

// ByName builds a benchmark model from its family name and size, e.g.
// ("nsdp", 4). Fixed-size figure nets ignore the size. Family names are
// case-insensitive.
func ByName(name string, size int) (*petri.Net, error) {
	switch strings.ToLower(name) {
	case "nsdp":
		if size < 2 {
			return nil, fmt.Errorf("models: nsdp needs size >= 2")
		}
		return NSDP(size), nil
	case "asat":
		if size < 2 || size&(size-1) != 0 {
			return nil, fmt.Errorf("models: asat needs a power-of-two size >= 2")
		}
		return ArbiterTree(size), nil
	case "over":
		if size < 2 {
			return nil, fmt.Errorf("models: over needs size >= 2")
		}
		return Overtake(size), nil
	case "rw":
		if size < 1 {
			return nil, fmt.Errorf("models: rw needs size >= 1")
		}
		return ReadersWriters(size), nil
	case "fig1":
		if size < 1 {
			return nil, fmt.Errorf("models: fig1 needs size >= 1")
		}
		return Fig1(size), nil
	case "fig2":
		if size < 1 {
			return nil, fmt.Errorf("models: fig2 needs size >= 1")
		}
		return Fig2(size), nil
	case "fig3":
		return Fig3(), nil
	case "fig5":
		return Fig5(), nil
	case "fig7":
		return Fig7(), nil
	}
	return nil, fmt.Errorf("models: unknown family %q (want nsdp, asat, over, rw, fig1, fig2, fig3, fig5 or fig7)", name)
}

// Families lists the model family names ByName accepts.
func Families() []string {
	return []string{"nsdp", "asat", "over", "rw", "fig1", "fig2", "fig3", "fig5", "fig7"}
}
