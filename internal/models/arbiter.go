package models

import "fmt"

import "repro/internal/petri"

// ArbiterTree builds the ASAT(n) asynchronous arbiter tree for n users,
// n a power of two. A balanced binary tree of two-input arbiter cells
// serializes the users' requests to a single shared resource:
//
//   - a user raises a request (pend) and, once the grant token reaches its
//     leaf, holds the resource, then releases it;
//   - an arbiter cell forwards one pending child request upward at a time
//     (the left/right choice is the cell's conflict), routes the grant
//     token down to the remembered side, and propagates releases back up;
//   - at the root, the environment owns the single resource token.
//
// All users request concurrently, so the full state space grows
// exponentially with n while the conflicts stay local to the cells.
func ArbiterTree(n int) *petri.Net {
	if n < 2 || n&(n-1) != 0 {
		panic("models: ArbiterTree needs a power-of-two user count >= 2")
	}
	b := petri.NewBuilder(fmt.Sprintf("ASAT(%d)", n))

	// Nodes are indexed heap-style: node 1 is the root cell, node k has
	// children 2k and 2k+1; nodes n..2n-1 are the user leaves.
	type port struct {
		pend petri.Place // node has a request pending toward its parent
		tok  petri.Place // grant token delivered to the node
		ret  petri.Place // node's release travelling toward its parent
	}
	ports := make([]port, 2*n)
	for k := 1; k < 2*n; k++ {
		ports[k] = port{
			pend: b.Place(fmt.Sprintf("pend%d", k)),
			tok:  b.Place(fmt.Sprintf("tok%d", k)),
			ret:  b.Place(fmt.Sprintf("ret%d", k)),
		}
	}

	// Leaves: users n..2n-1.
	for k := n; k < 2*n; k++ {
		idle := b.Place(fmt.Sprintf("idle%d", k))
		busy := b.Place(fmt.Sprintf("busy%d", k))
		b.Mark(idle)
		b.TransArcs(fmt.Sprintf("request%d", k),
			[]petri.Place{idle}, []petri.Place{ports[k].pend})
		b.TransArcs(fmt.Sprintf("acquire%d", k),
			[]petri.Place{ports[k].tok}, []petri.Place{busy})
		b.TransArcs(fmt.Sprintf("release%d", k),
			[]petri.Place{busy}, []petri.Place{idle, ports[k].ret})
	}

	// Internal cells: nodes 1..n-1.
	for k := 1; k < n; k++ {
		quiet := b.Place(fmt.Sprintf("quiet%d", k))
		dirA := b.Place(fmt.Sprintf("dirA%d", k))
		dirB := b.Place(fmt.Sprintf("dirB%d", k))
		b.Mark(quiet)
		a, c := ports[2*k], ports[2*k+1]
		self := ports[k]
		b.TransArcs(fmt.Sprintf("fwdA%d", k),
			[]petri.Place{a.pend, quiet}, []petri.Place{self.pend, dirA})
		b.TransArcs(fmt.Sprintf("fwdB%d", k),
			[]petri.Place{c.pend, quiet}, []petri.Place{self.pend, dirB})
		b.TransArcs(fmt.Sprintf("downA%d", k),
			[]petri.Place{self.tok, dirA}, []petri.Place{a.tok})
		b.TransArcs(fmt.Sprintf("downB%d", k),
			[]petri.Place{self.tok, dirB}, []petri.Place{c.tok})
		b.TransArcs(fmt.Sprintf("retA%d", k),
			[]petri.Place{a.ret}, []petri.Place{self.ret, quiet})
		b.TransArcs(fmt.Sprintf("retB%d", k),
			[]petri.Place{c.ret}, []petri.Place{self.ret, quiet})
	}

	// Environment at the root: the single shared resource.
	lock := b.Place("lock")
	b.Mark(lock)
	b.TransArcs("envGrant",
		[]petri.Place{ports[1].pend, lock}, []petri.Place{ports[1].tok})
	b.TransArcs("envReturn",
		[]petri.Place{ports[1].ret}, []petri.Place{lock})

	return b.MustBuild()
}
