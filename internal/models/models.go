// Package models builds the parameterized Petri nets the paper evaluates
// (Table 1: NSDP, ASAT, OVER, RW) and the small illustrative nets of its
// figures (Figures 1, 2, 3, 5 and 7).
//
// The paper names the benchmark families but does not give their net
// definitions, so these are reconstructions (see DESIGN.md, D5). The NSDP
// reconstruction is exact: its full reachable-state counts reproduce the
// paper's States column (18, 322, 5778, 103682, 1 860 498 for n = 2…10).
// ASAT, OVER and RW are built to the families' published descriptions and
// match the paper's growth shape rather than its absolute counts.
package models

import (
	"fmt"

	"repro/internal/petri"
)

// NSDP builds the non-serialized dining philosophers net for n ≥ 2
// philosophers. Each philosopher cycles
//
//	think → hungry → (take left or right fork first) → eat → release both
//
// with the two fork acquisitions in either order ("non-serialized"). The
// net deadlocks when every philosopher holds the same-side fork.
func NSDP(n int) *petri.Net {
	if n < 2 {
		panic("models: NSDP needs at least 2 philosophers")
	}
	b := petri.NewBuilder(fmt.Sprintf("NSDP(%d)", n))
	think := make([]petri.Place, n)
	hungry := make([]petri.Place, n)
	hasL := make([]petri.Place, n)
	hasR := make([]petri.Place, n)
	eat := make([]petri.Place, n)
	fork := make([]petri.Place, n)
	for i := 0; i < n; i++ {
		think[i] = b.Place(fmt.Sprintf("think%d", i))
		hungry[i] = b.Place(fmt.Sprintf("hungry%d", i))
		hasL[i] = b.Place(fmt.Sprintf("hasL%d", i))
		hasR[i] = b.Place(fmt.Sprintf("hasR%d", i))
		eat[i] = b.Place(fmt.Sprintf("eat%d", i))
		fork[i] = b.Place(fmt.Sprintf("fork%d", i))
	}
	for i := 0; i < n; i++ {
		left := fork[i]
		right := fork[(i+1)%n]
		b.TransArcs(fmt.Sprintf("getHungry%d", i), []petri.Place{think[i]}, []petri.Place{hungry[i]})
		b.TransArcs(fmt.Sprintf("takeLfirst%d", i), []petri.Place{hungry[i], left}, []petri.Place{hasL[i]})
		b.TransArcs(fmt.Sprintf("takeRsecond%d", i), []petri.Place{hasL[i], right}, []petri.Place{eat[i]})
		b.TransArcs(fmt.Sprintf("takeRfirst%d", i), []petri.Place{hungry[i], right}, []petri.Place{hasR[i]})
		b.TransArcs(fmt.Sprintf("takeLsecond%d", i), []petri.Place{hasR[i], left}, []petri.Place{eat[i]})
		b.TransArcs(fmt.Sprintf("done%d", i), []petri.Place{eat[i]}, []petri.Place{think[i], left, right})
		b.Mark(think[i], fork[i])
	}
	return b.MustBuild()
}

// Fig1 builds the net of the paper's Figure 1 generalized to n transitions:
// n independent, concurrently enabled transitions t_i : {p_i} → {q_i}. Its
// full reachability graph has 2^n states and n! maximal interleavings;
// partial-order reduction needs only a single chain of n+1 states.
func Fig1(n int) *petri.Net {
	b := petri.NewBuilder(fmt.Sprintf("Fig1(%d)", n))
	for i := 0; i < n; i++ {
		p := b.Place(fmt.Sprintf("p%d", i))
		q := b.Place(fmt.Sprintf("q%d", i))
		b.TransArcs(fmt.Sprintf("t%d", i), []petri.Place{p}, []petri.Place{q})
		b.Mark(p)
	}
	return b.MustBuild()
}

// Fig2 builds the net of the paper's Figure 2: n concurrently marked
// conflict places c_i, each with a pair of conflicting transitions
// A_i : {c_i} → {a_i} and B_i : {c_i} → {b_i}. Conventional analysis
// explores 3^n states, classical partial-order analysis 2^(n+1) − 1
// states, and the generalized analysis exactly 2 states.
func Fig2(n int) *petri.Net {
	b := petri.NewBuilder(fmt.Sprintf("Fig2(%d)", n))
	for i := 0; i < n; i++ {
		c := b.Place(fmt.Sprintf("c%d", i))
		a := b.Place(fmt.Sprintf("a%d", i))
		bb := b.Place(fmt.Sprintf("b%d", i))
		b.TransArcs(fmt.Sprintf("A%d", i), []petri.Place{c}, []petri.Place{a})
		b.TransArcs(fmt.Sprintf("B%d", i), []petri.Place{c}, []petri.Place{bb})
		b.Mark(c)
	}
	return b.MustBuild()
}

// Fig3 builds the net of the paper's Figure 3: conflicting transitions
// A : {p1} → {p2,p3} and B : {p1} → {p4}, with C : {p2,p3} → {p5} continuing
// A's branch and D : {p3,p4} → {p6} joining the two conflicting branches.
// D can never fire: its input tokens always carry conflicting colors.
func Fig3() *petri.Net {
	b := petri.NewBuilder("Fig3")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	p4 := b.Place("p4")
	p5 := b.Place("p5")
	p6 := b.Place("p6")
	b.TransArcs("A", []petri.Place{p1}, []petri.Place{p2, p3})
	b.TransArcs("B", []petri.Place{p1}, []petri.Place{p4})
	b.TransArcs("C", []petri.Place{p2, p3}, []petri.Place{p5})
	b.TransArcs("D", []petri.Place{p3, p4}, []petri.Place{p6})
	b.Mark(p1)
	return b.MustBuild()
}

// Fig5 builds the net of the paper's Figure 5 single-firing example:
// conflicting transitions A : {p0,p1} → {p3} and B : {p1,p2} → {p4}.
// The figure's state is mid-analysis; internal/core's tests construct the
// depicted GPN state directly on this structure.
func Fig5() *petri.Net {
	b := petri.NewBuilder("Fig5")
	p0 := b.Place("p0")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	p4 := b.Place("p4")
	b.TransArcs("A", []petri.Place{p0, p1}, []petri.Place{p3})
	b.TransArcs("B", []petri.Place{p1, p2}, []petri.Place{p4})
	b.Mark(p0, p1, p2)
	return b.MustBuild()
}

// Fig7 builds the net of the paper's Figure 7 multiple-firing example, with
// maximal conflicting sets {A,B} and {C,D}:
//
//	A : {p0} → {p1}    B : {p0} → {p2}
//	C : {p1,p3} → {p5} D : {p2,p3} → {p5}
//
// and p0, p3 initially marked. Firing {A,B} then {C,D} simultaneously
// conditions the valid sets down to r₂ = {{A,C},{B,D}}, the paper's
// "extended conflict" between A,D and between B,C.
func Fig7() *petri.Net {
	b := petri.NewBuilder("Fig7")
	p0 := b.Place("p0")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	p5 := b.Place("p5")
	b.TransArcs("A", []petri.Place{p0}, []petri.Place{p1})
	b.TransArcs("B", []petri.Place{p0}, []petri.Place{p2})
	b.TransArcs("C", []petri.Place{p1, p3}, []petri.Place{p5})
	b.TransArcs("D", []petri.Place{p2, p3}, []petri.Place{p5})
	b.Mark(p0, p3)
	return b.MustBuild()
}

// ReadersWriters builds the RW(n) net: n reader processes and one writer
// contending for a shared object. Reader i needs only its own permit to
// start reading; the writer atomically claims every permit. Every
// start-transition therefore conflicts with the writer's, so classical
// partial-order reduction achieves nothing (the reduced state space equals
// the complete one, as the paper observes), while the generalized analysis
// collapses the 2^n reader interleavings. The net is deadlock-free.
func ReadersWriters(n int) *petri.Net {
	if n < 1 {
		panic("models: ReadersWriters needs at least 1 reader")
	}
	b := petri.NewBuilder(fmt.Sprintf("RW(%d)", n))
	permits := make([]petri.Place, n)
	for i := 0; i < n; i++ {
		permits[i] = b.Place(fmt.Sprintf("permit%d", i))
		b.Mark(permits[i])
	}
	for i := 0; i < n; i++ {
		idle := b.Place(fmt.Sprintf("rIdle%d", i))
		reading := b.Place(fmt.Sprintf("reading%d", i))
		b.Mark(idle)
		b.TransArcs(fmt.Sprintf("startRead%d", i),
			[]petri.Place{idle, permits[i]}, []petri.Place{reading})
		b.TransArcs(fmt.Sprintf("endRead%d", i),
			[]petri.Place{reading}, []petri.Place{idle, permits[i]})
	}
	wIdle := b.Place("wIdle")
	writing := b.Place("writing")
	b.Mark(wIdle)
	b.TransArcs("startWrite",
		append([]petri.Place{wIdle}, permits...), []petri.Place{writing})
	b.TransArcs("endWrite",
		[]petri.Place{writing}, append([]petri.Place{wIdle}, permits...))
	return b.MustBuild()
}

// Overtake builds the OVER(n) protocol net: n vehicles on a ring of n lane
// segments. A vehicle prepares, chooses to overtake into its left or right
// neighbouring segment (a conflict), occupies that segment while passing,
// then returns. Neighbouring vehicles contend for the shared segments.
func Overtake(n int) *petri.Net {
	if n < 2 {
		panic("models: Overtake needs at least 2 vehicles")
	}
	b := petri.NewBuilder(fmt.Sprintf("OVER(%d)", n))
	lane := make([]petri.Place, n)
	for i := 0; i < n; i++ {
		lane[i] = b.Place(fmt.Sprintf("lane%d", i))
		b.Mark(lane[i])
	}
	for i := 0; i < n; i++ {
		cruise := b.Place(fmt.Sprintf("cruise%d", i))
		ready := b.Place(fmt.Sprintf("ready%d", i))
		waitL := b.Place(fmt.Sprintf("waitL%d", i))
		waitR := b.Place(fmt.Sprintf("waitR%d", i))
		passL := b.Place(fmt.Sprintf("passL%d", i))
		passR := b.Place(fmt.Sprintf("passR%d", i))
		retL := b.Place(fmt.Sprintf("retL%d", i))
		retR := b.Place(fmt.Sprintf("retR%d", i))
		b.Mark(cruise)
		left := lane[i]
		right := lane[(i+1)%n]
		b.TransArcs(fmt.Sprintf("prep%d", i), []petri.Place{cruise}, []petri.Place{ready})
		b.TransArcs(fmt.Sprintf("chooseL%d", i), []petri.Place{ready}, []petri.Place{waitL})
		b.TransArcs(fmt.Sprintf("chooseR%d", i), []petri.Place{ready}, []petri.Place{waitR})
		b.TransArcs(fmt.Sprintf("enterL%d", i), []petri.Place{waitL, left}, []petri.Place{passL})
		b.TransArcs(fmt.Sprintf("enterR%d", i), []petri.Place{waitR, right}, []petri.Place{passR})
		b.TransArcs(fmt.Sprintf("exitL%d", i), []petri.Place{passL}, []petri.Place{retL, left})
		b.TransArcs(fmt.Sprintf("exitR%d", i), []petri.Place{passR}, []petri.Place{retR, right})
		b.TransArcs(fmt.Sprintf("finishL%d", i), []petri.Place{retL}, []petri.Place{cruise})
		b.TransArcs(fmt.Sprintf("finishR%d", i), []petri.Place{retR}, []petri.Place{cruise})
	}
	return b.MustBuild()
}
