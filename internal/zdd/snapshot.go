package zdd

// Checkpoint support: serializing the subset of the unique table
// reachable from a set of live roots (the place/valid-set families of
// the GPO engine's interned states) and rebuilding it on another
// manager. Node ids are not stable across managers — the unique table
// interns in creation order — so the encoding renumbers reachable
// internal nodes 2,3,… in ascending old-id order (children are created
// before parents, so every child reference points backwards) and the
// decoder replays them through mk, which re-canonicalizes on the target
// manager. Anything keyed by node id (the core engine's state index)
// must therefore be rebuilt after a restore; the families themselves
// are reproduced exactly.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrBadSnapshot is wrapped by every decode failure: a truncated,
// corrupt or wrong-universe family snapshot.
var ErrBadSnapshot = errors.New("zdd: bad family snapshot")

// EncodeFamilies serializes the families rooted at roots into a
// self-contained blob: universe size, the reachable internal nodes in
// renumbered topological order, and one renumbered reference per root.
// Duplicate roots cost one reference each, not a re-encoding.
func (a *Alg) EncodeFamilies(roots []Node) []byte {
	m := a.m
	reach := make(map[Node]bool)
	var mark func(Node)
	mark = func(n Node) {
		if n <= Top || reach[n] {
			return
		}
		reach[n] = true
		mark(m.nodes[n].lo)
		mark(m.nodes[n].hi)
	}
	for _, r := range roots {
		mark(r)
	}
	order := make([]Node, 0, len(reach))
	for n := range reach {
		order = append(order, n)
	}
	// Ascending old id is a topological order: mk appends nodes after
	// their children, so lo/hi always reference smaller ids.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	renum := make(map[Node]uint64, len(order)+2)
	renum[Bot], renum[Top] = 0, 1
	for i, n := range order {
		renum[n] = uint64(i + 2)
	}
	b := binary.AppendUvarint(nil, uint64(m.n))
	b = binary.AppendUvarint(b, uint64(len(order)))
	for _, n := range order {
		nd := m.nodes[n]
		b = binary.AppendUvarint(b, uint64(nd.level))
		b = binary.AppendUvarint(b, renum[nd.lo])
		b = binary.AppendUvarint(b, renum[nd.hi])
	}
	b = binary.AppendUvarint(b, uint64(len(roots)))
	for _, r := range roots {
		b = binary.AppendUvarint(b, renum[r])
	}
	return b
}

// DecodeFamilies rebuilds the families of an EncodeFamilies blob on this
// algebra's manager and returns the root nodes in encoding order. The
// nodes are replayed through the canonicalizing constructor, so decoding
// onto a non-empty manager is sound (existing equal nodes are reused);
// structural violations — universe mismatch, out-of-range level, forward
// or zero-suppression-violating child references — are rejected with an
// error wrapping ErrBadSnapshot.
func (a *Alg) DecodeFamilies(blob []byte) ([]Node, error) {
	m := a.m
	next := func() (uint64, error) {
		v, n := binary.Uvarint(blob)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		blob = blob[n:]
		return v, nil
	}
	u, err := next()
	if err != nil {
		return nil, err
	}
	if int(u) != m.n {
		return nil, fmt.Errorf("%w: universe %d, manager has %d", ErrBadSnapshot, u, m.n)
	}
	cnt, err := next()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(len(blob)) { // ≥1 byte per field; cheap pre-allocation guard
		return nil, fmt.Errorf("%w: node count %d exceeds payload", ErrBadSnapshot, cnt)
	}
	ids := make([]Node, cnt+2)
	ids[0], ids[1] = Bot, Top
	for i := uint64(0); i < cnt; i++ {
		level, err := next()
		if err != nil {
			return nil, err
		}
		lo, err := next()
		if err != nil {
			return nil, err
		}
		hi, err := next()
		if err != nil {
			return nil, err
		}
		if level >= uint64(m.n) {
			return nil, fmt.Errorf("%w: node %d level %d out of range", ErrBadSnapshot, i, level)
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("%w: node %d references a later node", ErrBadSnapshot, i)
		}
		if hi == 0 {
			return nil, fmt.Errorf("%w: node %d violates zero-suppression (hi = Bot)", ErrBadSnapshot, i)
		}
		ids[i+2] = m.mk(int32(level), ids[lo], ids[hi])
	}
	nr, err := next()
	if err != nil {
		return nil, err
	}
	if nr > uint64(len(blob))+1 {
		return nil, fmt.Errorf("%w: root count %d exceeds payload", ErrBadSnapshot, nr)
	}
	roots := make([]Node, nr)
	for i := range roots {
		ref, err := next()
		if err != nil {
			return nil, err
		}
		if ref >= uint64(len(ids)) {
			return nil, fmt.Errorf("%w: root %d out of range", ErrBadSnapshot, i)
		}
		roots[i] = ids[ref]
	}
	return roots, nil
}
