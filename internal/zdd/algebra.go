package zdd

import (
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/tset"
)

// Alg adapts a ZDD Manager to the algebra interface consumed by the
// analysis engine (internal/core.Algebra). All families produced by one
// Alg live in its manager; mixing managers is a programming error.
type Alg struct {
	m *Manager
}

// NewAlgebra returns a ZDD family algebra over an n-transition universe.
func NewAlgebra(n int) *Alg { return &Alg{m: NewManager(n)} }

// Manager exposes the underlying ZDD manager (for statistics).
func (a *Alg) Manager() *Manager { return a.m }

// Universe returns the transition universe size.
func (a *Alg) Universe() int { return a.m.Universe() }

// Empty returns the family with no member sets.
func (a *Alg) Empty() Node { return Bot }

// FromSets returns the family holding exactly the given sets.
func (a *Alg) FromSets(sets []tset.TSet) Node { return a.m.FromSets(sets) }

// Union returns x ∪ y.
func (a *Alg) Union(x, y Node) Node { return a.m.Union(x, y) }

// Intersect returns x ∩ y.
func (a *Alg) Intersect(x, y Node) Node { return a.m.Intersect(x, y) }

// Diff returns x \ y.
func (a *Alg) Diff(x, y Node) Node { return a.m.Diff(x, y) }

// OnSet returns {v ∈ x | t ∈ v}.
func (a *Alg) OnSet(x Node, t int) Node { return a.m.OnSet(x, t) }

// IsEmpty reports whether x has no member sets.
func (a *Alg) IsEmpty(x Node) bool { return x == Bot }

// Equal reports whether x and y are the same family.
func (a *Alg) Equal(x, y Node) bool { return x == y }

// Contains reports whether s is a member set of x.
func (a *Alg) Contains(x Node, s tset.TSet) bool { return a.m.Contains(x, s) }

// Count returns the number of member sets.
func (a *Alg) Count(x Node) float64 { return a.m.Count(x) }

// AppendKey appends the fixed-width binary key of x to dst: 4 bytes per
// family, unique per manager because families are canonical nodes.
func (a *Alg) AppendKey(dst []byte, x Node) []byte { return a.m.AppendKey(dst, x) }

// Enumerate returns up to limit member sets (all if limit <= 0).
func (a *Alg) Enumerate(x Node, limit int) []tset.TSet { return a.m.Enumerate(x, limit) }

// MaximalConflictFree returns the initial valid sets r₀.
func (a *Alg) MaximalConflictFree(conflict func(i, j int) bool) Node {
	return a.m.MaximalConflictFree(conflict)
}

// ReportStats exports the manager's cache statistics under the "zdd."
// prefix (the core engine's StatsReporter hook). Gauges, not counters, so
// a repeated call overwrites rather than double-counts.
//
// Beyond the hit/miss pairs, the open-addressed tables export their
// shapes: *_slots (capacity), *_entries (live entries), *_probes
// (accumulated probe steps past the home slot) and *_load_pct
// (100·entries/slots). Mean excess probe length is probes/(hits+misses).
func (a *Alg) ReportStats(r *obs.Registry) {
	st := a.m.Stats()
	r.Gauge("zdd.nodes").Set(int64(st.Nodes))
	r.Gauge("zdd.peak_nodes").Set(int64(st.Peak))
	r.Gauge("zdd.unique_hits").Set(st.UniqueHits)
	r.Gauge("zdd.unique_misses").Set(st.UniqueMisses)
	r.Gauge("zdd.memo_hits").Set(st.MemoHits)
	r.Gauge("zdd.memo_misses").Set(st.MemoMisses)
	r.Gauge("zdd.count_hits").Set(st.CountHits)
	r.Gauge("zdd.count_misses").Set(st.CountMisses)
	r.Gauge("zdd.unique_slots").Set(int64(st.UniqueSlots))
	r.Gauge("zdd.unique_entries").Set(int64(st.UniqueEntries))
	r.Gauge("zdd.unique_probes").Set(st.UniqueProbes)
	r.Gauge("zdd.memo_slots").Set(int64(st.MemoSlots))
	r.Gauge("zdd.memo_entries").Set(int64(st.MemoEntries))
	r.Gauge("zdd.memo_probes").Set(st.MemoProbes)
	if st.UniqueSlots > 0 {
		r.Gauge("zdd.unique_load_pct").Set(int64(100 * st.UniqueEntries / st.UniqueSlots))
	}
	if st.MemoSlots > 0 {
		r.Gauge("zdd.memo_load_pct").Set(int64(100 * st.MemoEntries / st.MemoSlots))
	}
}

// AttachTrace streams the manager's table doublings onto the given
// flight-recorder track as zdd_grow events (the core engine's
// TraceAttacher hook). Growth is amortized-rare, so interning the table
// name per event stays off the hot path.
func (a *Alg) AttachTrace(tr *trace.Tracer, tk *trace.Track) {
	a.m.GrowHook = func(table string, slots int) {
		tk.ZDDGrow(tr.Intern(table), int64(slots))
	}
}

// DetachTrace removes the hook installed by AttachTrace; the core
// engine detaches on every Analyze exit path so the hook never outlives
// its tracer.
func (a *Alg) DetachTrace() { a.m.GrowHook = nil }
