package zdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/family"
	"repro/internal/tset"
)

func randSets(rng *rand.Rand, n, count int) []tset.TSet {
	out := make([]tset.TSet, count)
	for i := range out {
		s := tset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				s.Add(v)
			}
		}
		out[i] = s
	}
	return out
}

// TestAgainstExplicit cross-validates every ZDD operation against the
// explicit family package on random inputs.
func TestAgainstExplicit(t *testing.T) {
	const n = 10
	rng := rand.New(rand.NewSource(3))
	m := NewManager(n)
	for trial := 0; trial < 200; trial++ {
		sa := randSets(rng, n, rng.Intn(12))
		sb := randSets(rng, n, rng.Intn(12))
		ea := family.Of(n, sa...)
		eb := family.Of(n, sb...)
		za := m.FromSets(sa)
		zb := m.FromSets(sb)

		check := func(label string, ef *family.Family, zf Node) {
			if float64(ef.Size()) != m.Count(zf) {
				t.Fatalf("trial %d %s: count %d vs %v", trial, label, ef.Size(), m.Count(zf))
			}
			for _, s := range m.Enumerate(zf, 0) {
				if !ef.Contains(s) {
					t.Fatalf("trial %d %s: zdd has extra set %v", trial, label, s)
				}
			}
			for _, s := range ef.Sets() {
				if !m.Contains(zf, s) {
					t.Fatalf("trial %d %s: zdd misses set %v", trial, label, s)
				}
			}
		}
		check("a", ea, za)
		check("union", ea.Union(eb), m.Union(za, zb))
		check("intersect", ea.Intersect(eb), m.Intersect(za, zb))
		check("diff", ea.Diff(eb), m.Diff(za, zb))
		v := rng.Intn(n)
		check("onset", ea.OnSet(v), m.OnSet(za, v))
	}
}

// TestCanonicity checks that equal families built differently are the same
// node.
func TestCanonicity(t *testing.T) {
	const n = 6
	m := NewManager(n)
	a := tset.Of(n, 0, 2)
	b := tset.Of(n, 1, 3, 5)
	c := tset.Of(n, 4)
	f1 := m.Union(m.Union(m.Single(a), m.Single(b)), m.Single(c))
	f2 := m.Union(m.Single(c), m.Union(m.Single(b), m.Single(a)))
	if f1 != f2 {
		t.Errorf("same family, different nodes: %d vs %d", f1, f2)
	}
}

// TestAlgebraLaws property-checks family algebra laws on the ZDD
// representation via testing/quick.
func TestAlgebraLaws(t *testing.T) {
	const n = 8
	m := NewManager(n)
	gen := func(seed int64) Node {
		rng := rand.New(rand.NewSource(seed))
		return m.FromSets(randSets(rng, n, rng.Intn(10)))
	}
	laws := map[string]func(x, y, z int64) bool{
		"union-commutes": func(x, y, _ int64) bool {
			a, b := gen(x), gen(y)
			return m.Union(a, b) == m.Union(b, a)
		},
		"intersect-distributes": func(x, y, z int64) bool {
			a, b, c := gen(x), gen(y), gen(z)
			return m.Intersect(a, m.Union(b, c)) ==
				m.Union(m.Intersect(a, b), m.Intersect(a, c))
		},
		"diff-partition": func(x, y, _ int64) bool {
			a, b := gen(x), gen(y)
			return m.Union(m.Diff(a, b), m.Intersect(a, b)) == a
		},
		"demorgan-ish": func(x, y, z int64) bool {
			a, b, c := gen(x), gen(y), gen(z)
			return m.Diff(a, m.Union(b, c)) == m.Diff(m.Diff(a, b), c)
		},
	}
	for name, law := range laws {
		if err := quick.Check(law, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestMaximalConflictFreeMatchesExplicit compares the BDD-extracted r₀
// against the Bron–Kerbosch enumeration on random conflict graphs.
func TestMaximalConflictFreeMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		conflict := func(i, j int) bool { return adj[i][j] }
		want := family.MaximalConflictFree(n, conflict)
		m := NewManager(n)
		got := m.MaximalConflictFree(conflict)
		if float64(want.Size()) != m.Count(got) {
			t.Fatalf("trial %d (n=%d): %d explicit vs %v zdd MIS",
				trial, n, want.Size(), m.Count(got))
		}
		for _, s := range want.Sets() {
			if !m.Contains(got, s) {
				t.Fatalf("trial %d: zdd r0 misses %v", trial, s)
			}
		}
	}
}

// TestProductFamilyCompression checks the representational claim behind
// the ZDD algebra: the 2^N maximal conflict-free sets of the Figure 2
// conflict structure need only O(N) ZDD nodes.
func TestProductFamilyCompression(t *testing.T) {
	const pairs = 20 // 2^20 sets
	n := 2 * pairs
	m := NewManager(n)
	conflict := func(i, j int) bool { return i/2 == j/2 && i != j }
	r0 := m.MaximalConflictFree(conflict)
	if got, want := m.Count(r0), float64(int64(1)<<pairs); got != want {
		t.Fatalf("|r0| = %v, want 2^%d = %v", got, pairs, want)
	}
	if nodes := m.NodeCount(r0); nodes > 4*n {
		t.Errorf("r0 uses %d nodes for %d elements; expected linear (< %d)",
			nodes, n, 4*n)
	}
}

func TestEnumerateLimit(t *testing.T) {
	const n = 6
	m := NewManager(n)
	rng := rand.New(rand.NewSource(5))
	f := m.FromSets(randSets(rng, n, 20))
	total := int(m.Count(f))
	if got := len(m.Enumerate(f, 3)); got != min(3, total) {
		t.Errorf("Enumerate(3) returned %d sets", got)
	}
	if got := len(m.Enumerate(f, 0)); got != total {
		t.Errorf("Enumerate(0) returned %d of %d sets", got, total)
	}
}

func TestTopBot(t *testing.T) {
	m := NewManager(4)
	if !m.IsEmpty(Bot) || m.IsEmpty(Top) {
		t.Fatal("terminal emptiness")
	}
	if m.Count(Top) != 1 || m.Count(Bot) != 0 {
		t.Fatal("terminal counts")
	}
	empty := tset.New(4)
	if !m.Contains(Top, empty) {
		t.Error("Top must contain the empty set")
	}
	if m.Contains(Bot, empty) {
		t.Error("Bot contains nothing")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCountAllocFree pins the persistent Count memo: after the first
// Count of a family, repeated Counts (of it and of its subgraphs) must
// not allocate. A regression here means the per-call memo map came back.
func TestCountAllocFree(t *testing.T) {
	const n = 12
	m := NewManager(n)
	rng := rand.New(rand.NewSource(7))
	f := m.FromSets(randSets(rng, n, 64))
	g := m.FromSets(randSets(rng, n, 64))
	u := m.Union(f, g)
	want := m.Count(u) // warm the memo
	if avg := testing.AllocsPerRun(100, func() {
		if got := m.Count(u); got != want {
			t.Fatalf("Count drifted: %v != %v", got, want)
		}
		m.Count(f)
		m.Count(g)
	}); avg != 0 {
		t.Errorf("repeated Count allocates %.1f objects/op, want 0", avg)
	}
}

// TestCountMemoSurvivesGrowth checks the count memo stays aligned with
// the node arena across unique-table growth.
func TestCountMemoSurvivesGrowth(t *testing.T) {
	const n = 16
	m := NewManager(n)
	rng := rand.New(rand.NewSource(11))
	fam := family.Empty(n)
	f := Bot
	for round := 0; round < 8; round++ {
		sets := randSets(rng, n, 128)
		f = m.Union(f, m.FromSets(sets))
		fam = fam.Union(family.Of(n, sets...))
		if got, want := m.Count(f), float64(fam.Size()); got != want {
			t.Fatalf("round %d: Count=%v want %v", round, got, want)
		}
	}
	st := m.Stats()
	if st.UniqueEntries == 0 || st.UniqueSlots < st.UniqueEntries {
		t.Errorf("implausible unique table stats: %+v", st)
	}
}
