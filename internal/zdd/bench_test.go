package zdd

import (
	"testing"

	"repro/internal/tset"
)

// ringConflict is an NSDP-shaped conflict predicate: element i conflicts
// with its ring neighbours. Its maximal conflict-free families are
// product-structured — the workload the ZDD representation exists for.
func ringConflict(n int) func(i, j int) bool {
	return func(i, j int) bool {
		return (i+1)%n == j || (j+1)%n == i
	}
}

// buildFamilies returns a manager plus two overlapping mid-sized families
// used as binary-op operands.
func buildFamilies(n int) (*Manager, Node, Node) {
	m := NewManager(n)
	a := m.MaximalConflictFree(ringConflict(n))
	// b: the member sets of a containing element 0, plus all singletons —
	// overlaps a without equaling it.
	b := m.OnSet(a, 0)
	for i := 0; i < n; i++ {
		s := tset.New(n)
		s.Add(i)
		b = m.Union(b, m.Single(s))
	}
	return m, a, b
}

// BenchmarkMk measures raw node interning on a cold manager: the
// unique-table lookup/insert path.
func BenchmarkMk(b *testing.B) {
	const n = 24
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewManager(n)
		s := tset.New(n)
		for e := 0; e < n; e += 2 {
			s.Add(e)
		}
		f := m.Single(s)
		for e := 1; e < n; e += 2 {
			t := tset.New(n)
			t.Add(e)
			f = m.Union(f, m.Single(t))
		}
	}
}

// BenchmarkUnion measures the memoized binary-op path on warm tables:
// after the first iteration every recursive call is a memo hit.
func BenchmarkUnion(b *testing.B) {
	m, x, y := buildFamilies(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Union(x, y)
	}
}

// BenchmarkIntersect is BenchmarkUnion for Intersect.
func BenchmarkIntersect(b *testing.B) {
	m, x, y := buildFamilies(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Intersect(x, y)
	}
}

// BenchmarkDiff is BenchmarkUnion for Diff.
func BenchmarkDiff(b *testing.B) {
	m, x, y := buildFamilies(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Diff(x, y)
	}
}

// BenchmarkOnSet measures the element-restriction op on warm tables.
func BenchmarkOnSet(b *testing.B) {
	m, x, _ := buildFamilies(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnSet(x, 10)
	}
}

// BenchmarkCount measures repeated Count of one (large) family. With the
// persistent per-node memo this is a slice lookup after the first call;
// the engine calls Count once per interned state, so this path runs on
// every state of every analysis.
func BenchmarkCount(b *testing.B) {
	m, x, _ := buildFamilies(30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(x)
	}
}

// BenchmarkMaximalConflictFree measures r₀ construction (BDD build +
// model extraction), the one-time per-analysis setup cost.
func BenchmarkMaximalConflictFree(b *testing.B) {
	const n = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewManager(n)
		m.MaximalConflictFree(ringConflict(n))
	}
}
