// Package zdd implements zero-suppressed binary decision diagrams (Minato)
// over the transition universe, as a compressed representation of the
// families of transition sets that make up Generalized Petri Net states.
//
// The explicit representation (internal/family) is linear in the number of
// member sets, which is exponential for nets like the paper's Figure 2 —
// 2^N maximal conflict-free sets. ZDDs keep such product-structured
// families polynomial, which is what lets the generalized analysis run in
// time linear in the problem size (paper Section 4: "CPU times increase
// linearly with problem size") while still exploring only a handful of
// states.
//
// Families handled by one Manager are canonical: equal families are the
// same node, so Equal and Key are O(1).
//
// The unique table and the binary-op memo are open-addressed hash tables
// in the style of CUDD/Sylvan rather than generic Go maps: power-of-two
// sized flat slices probed linearly, grown at 3/4 load. The unique table
// stores only node indices and compares probes against the node fields in
// the arena, so a slot costs 4 bytes; the memo packs its (op, a, b) key
// into two uint64 words per entry. Lookups on the analysis hot path are
// therefore allocation-free, and Count keeps a persistent per-node memo
// (sound because nodes are never freed).
package zdd

import (
	"encoding/binary"
	"sort"

	"repro/internal/bdd"
	"repro/internal/tset"
)

// Node references a ZDD node of a Manager.
type Node int32

// Terminals: Bot is the empty family ∅; Top is {∅}, the family holding
// exactly the empty set.
const (
	Bot Node = 0
	Top Node = 1
)

type node struct {
	level  int32 // element tested; terminals use level = universe
	lo, hi Node  // lo: sets without the element; hi: sets with it
}

// Initial capacities of the open-addressed tables. Power of two;
// amortized doubling from here covers arbitrarily large analyses.
const (
	initUniqueSlots = 1 << 10
	initMemoSlots   = 1 << 11
)

// memoEntry is one slot of the op memo. key packs the operand pair as
// a<<32|b and val packs op<<32|result. key == 0 marks an empty slot: no
// memoized operation has a == Bot (those return before the lookup), so 0
// is never a real key.
type memoEntry struct {
	key uint64
	val uint64
}

// Manager owns a ZDD forest over a fixed element universe {0,…,n-1}.
type Manager struct {
	n     int
	nodes []node

	// unique is the open-addressed unique table: slots hold node indices
	// (0 = empty; terminals are never interned), hashed by (level,lo,hi)
	// with linear probing against the arena fields.
	unique []Node

	// memo is the open-addressed binary-op cache; memoCnt tracks live
	// entries for the growth trigger.
	memo    []memoEntry
	memoCnt int

	// count[i] memoizes the member-set count below node i (-1 = not yet
	// computed). Nodes are immutable and never freed, so entries stay
	// valid for the manager's lifetime.
	count []float64

	peak int

	// Plain (non-atomic) operation statistics: the manager is
	// single-goroutine by design, and these must cost one increment on
	// the hot path. The probe counters accumulate collision steps beyond
	// the home slot, so probes/(hits+misses) is the mean excess probe
	// length.
	uniqueHits   int64
	uniqueMisses int64
	uniqueProbes int64
	memoHits     int64
	memoMisses   int64
	memoProbes   int64
	countHits    int64
	countMisses  int64

	// GrowHook, if non-nil, is called after each table doubling with the
	// table's name ("unique" or "memo") and its new slot count. Growth is
	// amortized-rare, so the hook is off the hot path; it must not call
	// back into the manager.
	GrowHook func(table string, slots int)
}

// Stats is a snapshot of the manager's internal counters: unique-table
// hits (node reuse) vs. misses (node creation), binary-op memo hits vs.
// misses, count-memo hits vs. misses, plus the open-addressed table
// shapes (slot capacities, live entries, accumulated probe steps).
// Nodes are never garbage-collected, so Size is also the lifetime
// allocation count.
type Stats struct {
	Nodes        int
	Peak         int
	UniqueHits   int64
	UniqueMisses int64
	MemoHits     int64
	MemoMisses   int64
	CountHits    int64
	CountMisses  int64

	// UniqueSlots/MemoSlots are the current table capacities;
	// UniqueEntries/MemoEntries the live entry counts (their ratio is the
	// load factor). UniqueProbes/MemoProbes count probe steps beyond the
	// home slot across all lookups.
	UniqueSlots   int
	UniqueEntries int
	MemoSlots     int
	MemoEntries   int
	UniqueProbes  int64
	MemoProbes    int64
}

// Stats returns the current operation statistics.
func (m *Manager) Stats() Stats {
	return Stats{
		Nodes:         len(m.nodes),
		Peak:          m.peak,
		UniqueHits:    m.uniqueHits,
		UniqueMisses:  m.uniqueMisses,
		MemoHits:      m.memoHits,
		MemoMisses:    m.memoMisses,
		CountHits:     m.countHits,
		CountMisses:   m.countMisses,
		UniqueSlots:   len(m.unique),
		UniqueEntries: len(m.nodes) - 2,
		MemoSlots:     len(m.memo),
		MemoEntries:   m.memoCnt,
		UniqueProbes:  m.uniqueProbes,
		MemoProbes:    m.memoProbes,
	}
}

// op tags for the binary memo table. OnSet encodes the element in the
// bits above opShift, so every (op, element) pair is a distinct tag.
const (
	opUnion uint32 = iota
	opIntersect
	opDiff
	opOnSet
	opShift = 2
)

// NewManager returns a manager over an n-element universe.
func NewManager(n int) *Manager {
	m := &Manager{
		n:      n,
		unique: make([]Node, initUniqueSlots),
		memo:   make([]memoEntry, initMemoSlots),
	}
	m.nodes = []node{{level: int32(n)}, {level: int32(n)}}
	m.count = []float64{0, 1} // Bot holds no sets, Top exactly {∅}
	m.peak = 2
	return m
}

// Universe returns the element universe size.
func (m *Manager) Universe() int { return m.n }

// Size returns the number of allocated nodes.
func (m *Manager) Size() int { return len(m.nodes) }

// Peak returns the largest node count observed.
func (m *Manager) Peak() int { return m.peak }

// mix64 is the splitmix64 finalizer; a full-avalanche 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashTriple(level int32, lo, hi Node) uint64 {
	h := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	return mix64(h ^ uint64(uint32(level))*0x9e3779b97f4a7c15)
}

// mk returns the canonical node, applying the zero-suppression rule
// (hi = Bot ⇒ the node is redundant).
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if hi == Bot {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	i := hashTriple(level, lo, hi) & mask
	for {
		slot := m.unique[i]
		if slot == 0 {
			break
		}
		nd := &m.nodes[slot]
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			m.uniqueHits++
			return slot
		}
		m.uniqueProbes++
		i = (i + 1) & mask
	}
	m.uniqueMisses++
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.count = append(m.count, -1)
	m.unique[i] = n
	if len(m.nodes) > m.peak {
		m.peak = len(m.nodes)
	}
	// Grow at 3/4 load ((nodes-2) live entries ≥ 3/4 of the slots).
	if (len(m.nodes)-2)*4 >= len(m.unique)*3 {
		m.growUnique()
	}
	return n
}

// growUnique doubles the unique table and re-homes every interned node.
// Values are node indices, so rehashing reads the arena.
func (m *Manager) growUnique() {
	next := make([]Node, 2*len(m.unique))
	mask := uint64(len(next) - 1)
	for idx := 2; idx < len(m.nodes); idx++ {
		nd := &m.nodes[idx]
		i := hashTriple(nd.level, nd.lo, nd.hi) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = Node(idx)
	}
	m.unique = next
	if m.GrowHook != nil {
		m.GrowHook("unique", len(next))
	}
}

// memoGet looks up a memoized binary-op result. It reports the probe
// slot's state through ok; a false return means the op must be computed
// (and should be stored with memoPut).
func (m *Manager) memoGet(op uint32, a, b Node) (Node, bool) {
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	want := uint64(op)
	mask := uint64(len(m.memo) - 1)
	i := mix64(key^want*0x9e3779b97f4a7c15) & mask
	for {
		e := &m.memo[i]
		if e.key == 0 {
			m.memoMisses++
			return 0, false
		}
		if e.key == key && e.val>>32 == want {
			m.memoHits++
			return Node(uint32(e.val)), true
		}
		m.memoProbes++
		i = (i + 1) & mask
	}
}

// memoPut stores a computed binary-op result, growing the table at 3/4
// load. Recursive ops may have inserted other entries since the memoGet
// miss, so the probe runs fresh.
func (m *Manager) memoPut(op uint32, a, b, r Node) {
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	val := uint64(op)<<32 | uint64(uint32(r))
	mask := uint64(len(m.memo) - 1)
	i := mix64(key^uint64(op)*0x9e3779b97f4a7c15) & mask
	for {
		e := &m.memo[i]
		if e.key == 0 {
			e.key = key
			e.val = val
			m.memoCnt++
			if m.memoCnt*4 >= len(m.memo)*3 {
				m.growMemo()
			}
			return
		}
		if e.key == key && e.val>>32 == uint64(op) {
			e.val = val // same op recomputed; canonical, so identical
			return
		}
		i = (i + 1) & mask
	}
}

// growMemo doubles the memo table and re-homes every live entry.
func (m *Manager) growMemo() {
	next := make([]memoEntry, 2*len(m.memo))
	mask := uint64(len(next) - 1)
	for _, e := range m.memo {
		if e.key == 0 {
			continue
		}
		i := mix64(e.key^(e.val>>32)*0x9e3779b97f4a7c15) & mask
		for next[i].key != 0 {
			i = (i + 1) & mask
		}
		next[i] = e
	}
	m.memo = next
	if m.GrowHook != nil {
		m.GrowHook("memo", len(next))
	}
}

// Single returns the family {s} holding exactly the given set.
func (m *Manager) Single(s tset.TSet) Node {
	if s.Universe() != m.n {
		panic("zdd: set universe mismatch")
	}
	els := s.Members()
	f := Top
	for i := len(els) - 1; i >= 0; i-- {
		f = m.mk(int32(els[i]), Bot, f)
	}
	return f
}

// FromSets returns the family holding exactly the given sets.
func (m *Manager) FromSets(sets []tset.TSet) Node {
	f := Bot
	for _, s := range sets {
		f = m.Union(f, m.Single(s))
	}
	return f
}

// Union returns a ∪ b.
func (m *Manager) Union(a, b Node) Node {
	if a == b || b == Bot {
		return a
	}
	if a == Bot {
		return b
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.memoGet(opUnion, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.mk(na.level, m.Union(na.lo, b), na.hi)
	case na.level > nb.level:
		r = m.mk(nb.level, m.Union(a, nb.lo), nb.hi)
	default:
		r = m.mk(na.level, m.Union(na.lo, nb.lo), m.Union(na.hi, nb.hi))
	}
	m.memoPut(opUnion, a, b, r)
	return r
}

// Intersect returns a ∩ b.
func (m *Manager) Intersect(a, b Node) Node {
	if a == b {
		return a
	}
	if a == Bot || b == Bot {
		return Bot
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.memoGet(opIntersect, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.Intersect(na.lo, b)
	case na.level > nb.level:
		r = m.Intersect(a, nb.lo)
	default:
		r = m.mk(na.level, m.Intersect(na.lo, nb.lo), m.Intersect(na.hi, nb.hi))
	}
	m.memoPut(opIntersect, a, b, r)
	return r
}

// Diff returns a \ b.
func (m *Manager) Diff(a, b Node) Node {
	if a == Bot || a == b {
		return Bot
	}
	if b == Bot {
		return a
	}
	if r, ok := m.memoGet(opDiff, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.mk(na.level, m.Diff(na.lo, b), na.hi)
	case na.level > nb.level:
		r = m.Diff(a, nb.lo)
	default:
		r = m.mk(na.level, m.Diff(na.lo, nb.lo), m.Diff(na.hi, nb.hi))
	}
	m.memoPut(opDiff, a, b, r)
	return r
}

// OnSet returns {s ∈ a | v ∈ s}: the member sets containing element v,
// with v still present in them.
func (m *Manager) OnSet(a Node, v int) Node {
	na := m.nodes[a]
	switch {
	case int(na.level) > v: // v below every tested element: absent from all
		return Bot
	case int(na.level) == v:
		return m.mk(na.level, Bot, na.hi)
	}
	// The op cache tags the entry with the element; without it the
	// recursion revisits shared nodes once per path, which is exponential.
	op := opOnSet + uint32(v)<<opShift
	if r, ok := m.memoGet(op, a, 0); ok {
		return r
	}
	r := m.mk(na.level, m.OnSet(na.lo, v), m.OnSet(na.hi, v))
	m.memoPut(op, a, 0, r)
	return r
}

// Contains reports whether set s is a member of family a.
func (m *Manager) Contains(a Node, s tset.TSet) bool {
	els := s.Members()
	i := 0
	for a != Bot {
		na := m.nodes[a]
		if int(na.level) >= m.n {
			return i == len(els) // reached Top
		}
		if i < len(els) && els[i] == int(na.level) {
			a = na.hi
			i++
		} else if i < len(els) && els[i] < int(na.level) {
			return false // required element cannot appear anymore
		} else {
			a = na.lo
		}
	}
	return false
}

// Count returns the number of member sets. The memo is per-node and
// persistent (nodes are canonical, immutable and never freed), so
// repeated counts — the engine counts r once per interned state — are
// allocation-free slice lookups.
func (m *Manager) Count(a Node) float64 {
	if c := m.count[a]; c >= 0 {
		m.countHits++
		return c
	}
	return m.countSlow(a)
}

func (m *Manager) countSlow(a Node) float64 {
	if c := m.count[a]; c >= 0 {
		return c
	}
	m.countMisses++
	c := m.countSlow(m.nodes[a].lo) + m.countSlow(m.nodes[a].hi)
	m.count[a] = c
	return c
}

// IsEmpty reports whether the family has no member sets.
func (m *Manager) IsEmpty(a Node) bool { return a == Bot }

// Equal reports whether a and b are the same family (O(1): canonical).
func (m *Manager) Equal(a, b Node) bool { return a == b }

// AppendKey appends the canonical fixed-width binary key of the family
// (its node index: families are canonical per manager) to dst.
func (m *Manager) AppendKey(dst []byte, a Node) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(a))
}

// Enumerate returns up to limit member sets (all if limit <= 0), in
// canonical DFS order.
func (m *Manager) Enumerate(a Node, limit int) []tset.TSet {
	var out []tset.TSet
	var cur []int
	var rec func(Node) bool
	rec = func(a Node) bool {
		if limit > 0 && len(out) >= limit {
			return false
		}
		if a == Bot {
			return true
		}
		if a == Top {
			s := tset.New(m.n)
			for _, e := range cur {
				s.Add(e)
			}
			out = append(out, s)
			return !(limit > 0 && len(out) >= limit)
		}
		na := m.nodes[a]
		cur = append(cur, int(na.level))
		if !rec(na.hi) {
			cur = cur[:len(cur)-1]
			return false
		}
		cur = cur[:len(cur)-1]
		return rec(na.lo)
	}
	rec(a)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// NodeCount returns the number of distinct internal nodes reachable from a.
func (m *Manager) NodeCount(a Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(a Node) {
		if a <= Top || seen[a] {
			return
		}
		seen[a] = true
		rec(m.nodes[a].lo)
		rec(m.nodes[a].hi)
	}
	rec(a)
	return len(seen)
}

// FromBDDModels converts the model set of a BDD predicate over the same
// n-variable universe into the ZDD family of its satisfying assignments
// (each model read as the set of variables assigned true). Don't-care
// variables are expanded into both membership outcomes.
func (m *Manager) FromBDDModels(bm *bdd.Manager, f bdd.Node) Node {
	if bm.NumVars() != m.n {
		panic("zdd: BDD universe mismatch")
	}
	type key struct {
		f     bdd.Node
		level int
	}
	memo := make(map[key]Node)
	var rec func(f bdd.Node, level int) Node
	rec = func(f bdd.Node, level int) Node {
		if f == bdd.False {
			return Bot
		}
		if level == m.n {
			return Top // f must be True here
		}
		k := key{f, level}
		if r, ok := memo[k]; ok {
			return r
		}
		var lo, hi Node
		if bm.Level(f) == level {
			lo = rec(bm.Low(f), level+1)
			hi = rec(bm.High(f), level+1)
		} else {
			sub := rec(f, level+1)
			lo, hi = sub, sub
		}
		r := m.mk(int32(level), lo, hi)
		memo[k] = r
		return r
	}
	return rec(f, 0)
}

// MaximalConflictFree returns the family of maximal independent sets of
// the conflict graph given by the adjacency predicate: a set S is maximal
// independent iff it contains no edge and every vertex outside S has a
// neighbour inside S. The predicate is built as a BDD (a conjunction of
// local constraints, compact for the locally-structured conflict graphs of
// real nets) and its models are extracted as a ZDD.
func (m *Manager) MaximalConflictFree(conflict func(i, j int) bool) Node {
	bm := bdd.NewManager(m.n)
	f := bdd.True
	for i := 0; i < m.n; i++ {
		// Independence: ¬(x_i ∧ x_j) for each edge (i,j), i < j.
		for j := i + 1; j < m.n; j++ {
			if conflict(i, j) {
				f = bm.And(f, bm.Not(bm.And(bm.Var(i), bm.Var(j))))
			}
		}
		// Maximality (domination): x_i ∨ ∨_{j ~ i} x_j.
		cl := bm.Var(i)
		for j := 0; j < m.n; j++ {
			if j != i && conflict(i, j) {
				cl = bm.Or(cl, bm.Var(j))
			}
		}
		f = bm.And(f, cl)
	}
	return m.FromBDDModels(bm, f)
}
