// Package zdd implements zero-suppressed binary decision diagrams (Minato)
// over the transition universe, as a compressed representation of the
// families of transition sets that make up Generalized Petri Net states.
//
// The explicit representation (internal/family) is linear in the number of
// member sets, which is exponential for nets like the paper's Figure 2 —
// 2^N maximal conflict-free sets. ZDDs keep such product-structured
// families polynomial, which is what lets the generalized analysis run in
// time linear in the problem size (paper Section 4: "CPU times increase
// linearly with problem size") while still exploring only a handful of
// states.
//
// Families handled by one Manager are canonical: equal families are the
// same node, so Equal and Key are O(1).
package zdd

import (
	"sort"
	"strconv"

	"repro/internal/bdd"
	"repro/internal/tset"
)

// Node references a ZDD node of a Manager.
type Node int32

// Terminals: Bot is the empty family ∅; Top is {∅}, the family holding
// exactly the empty set.
const (
	Bot Node = 0
	Top Node = 1
)

type node struct {
	level  int32 // element tested; terminals use level = universe
	lo, hi Node  // lo: sets without the element; hi: sets with it
}

// Manager owns a ZDD forest over a fixed element universe {0,…,n-1}.
type Manager struct {
	n      int
	nodes  []node
	unique map[[3]int32]Node
	memo2  map[[3]int32]Node // binary op cache, op-tagged
	peak   int

	// Plain (non-atomic) operation statistics: the manager is
	// single-goroutine by design, and these must cost one increment on
	// the hot path.
	uniqueHits   int64
	uniqueMisses int64
	memoHits     int64
	memoMisses   int64
}

// Stats is a snapshot of the manager's internal counters: unique-table
// hits (node reuse) vs. misses (node creation), and binary-op memo hits
// vs. misses. Nodes are never garbage-collected, so Size is also the
// lifetime allocation count.
type Stats struct {
	Nodes        int
	Peak         int
	UniqueHits   int64
	UniqueMisses int64
	MemoHits     int64
	MemoMisses   int64
}

// Stats returns the current operation statistics.
func (m *Manager) Stats() Stats {
	return Stats{
		Nodes:        len(m.nodes),
		Peak:         m.peak,
		UniqueHits:   m.uniqueHits,
		UniqueMisses: m.uniqueMisses,
		MemoHits:     m.memoHits,
		MemoMisses:   m.memoMisses,
	}
}

// op tags for the binary memo table.
const (
	opUnion int32 = iota
	opIntersect
	opDiff
	opOnSet
)

// NewManager returns a manager over an n-element universe.
func NewManager(n int) *Manager {
	m := &Manager{
		n:      n,
		unique: make(map[[3]int32]Node),
		memo2:  make(map[[3]int32]Node),
	}
	m.nodes = []node{{level: int32(n)}, {level: int32(n)}}
	m.peak = 2
	return m
}

// Universe returns the element universe size.
func (m *Manager) Universe() int { return m.n }

// Size returns the number of allocated nodes.
func (m *Manager) Size() int { return len(m.nodes) }

// Peak returns the largest node count observed.
func (m *Manager) Peak() int { return m.peak }

// mk returns the canonical node, applying the zero-suppression rule
// (hi = Bot ⇒ the node is redundant).
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if hi == Bot {
		return lo
	}
	key := [3]int32{level, int32(lo), int32(hi)}
	if n, ok := m.unique[key]; ok {
		m.uniqueHits++
		return n
	}
	m.uniqueMisses++
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = n
	if len(m.nodes) > m.peak {
		m.peak = len(m.nodes)
	}
	return n
}

// Single returns the family {s} holding exactly the given set.
func (m *Manager) Single(s tset.TSet) Node {
	if s.Universe() != m.n {
		panic("zdd: set universe mismatch")
	}
	els := s.Members()
	f := Top
	for i := len(els) - 1; i >= 0; i-- {
		f = m.mk(int32(els[i]), Bot, f)
	}
	return f
}

// FromSets returns the family holding exactly the given sets.
func (m *Manager) FromSets(sets []tset.TSet) Node {
	f := Bot
	for _, s := range sets {
		f = m.Union(f, m.Single(s))
	}
	return f
}

// Union returns a ∪ b.
func (m *Manager) Union(a, b Node) Node {
	if a == b || b == Bot {
		return a
	}
	if a == Bot {
		return b
	}
	if a > b {
		a, b = b, a
	}
	key := [3]int32{opUnion, int32(a), int32(b)}
	if r, ok := m.memo2[key]; ok {
		m.memoHits++
		return r
	}
	m.memoMisses++
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.mk(na.level, m.Union(na.lo, b), na.hi)
	case na.level > nb.level:
		r = m.mk(nb.level, m.Union(a, nb.lo), nb.hi)
	default:
		r = m.mk(na.level, m.Union(na.lo, nb.lo), m.Union(na.hi, nb.hi))
	}
	m.memo2[key] = r
	return r
}

// Intersect returns a ∩ b.
func (m *Manager) Intersect(a, b Node) Node {
	if a == b {
		return a
	}
	if a == Bot || b == Bot {
		return Bot
	}
	if a > b {
		a, b = b, a
	}
	key := [3]int32{opIntersect, int32(a), int32(b)}
	if r, ok := m.memo2[key]; ok {
		m.memoHits++
		return r
	}
	m.memoMisses++
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.Intersect(na.lo, b)
	case na.level > nb.level:
		r = m.Intersect(a, nb.lo)
	default:
		r = m.mk(na.level, m.Intersect(na.lo, nb.lo), m.Intersect(na.hi, nb.hi))
	}
	m.memo2[key] = r
	return r
}

// Diff returns a \ b.
func (m *Manager) Diff(a, b Node) Node {
	if a == Bot || a == b {
		return Bot
	}
	if b == Bot {
		return a
	}
	key := [3]int32{opDiff, int32(a), int32(b)}
	if r, ok := m.memo2[key]; ok {
		m.memoHits++
		return r
	}
	m.memoMisses++
	na, nb := m.nodes[a], m.nodes[b]
	var r Node
	switch {
	case na.level < nb.level:
		r = m.mk(na.level, m.Diff(na.lo, b), na.hi)
	case na.level > nb.level:
		r = m.Diff(a, nb.lo)
	default:
		r = m.mk(na.level, m.Diff(na.lo, nb.lo), m.Diff(na.hi, nb.hi))
	}
	m.memo2[key] = r
	return r
}

// OnSet returns {s ∈ a | v ∈ s}: the member sets containing element v,
// with v still present in them.
func (m *Manager) OnSet(a Node, v int) Node {
	na := m.nodes[a]
	switch {
	case int(na.level) > v: // v below every tested element: absent from all
		return Bot
	case int(na.level) == v:
		return m.mk(na.level, Bot, na.hi)
	}
	// The op cache reuses the binary-memo table with the element as the
	// second operand; without it the recursion revisits shared nodes once
	// per path, which is exponential.
	key := [3]int32{opOnSet + int32(v)<<2, int32(a), 0}
	if r, ok := m.memo2[key]; ok {
		m.memoHits++
		return r
	}
	m.memoMisses++
	r := m.mk(na.level, m.OnSet(na.lo, v), m.OnSet(na.hi, v))
	m.memo2[key] = r
	return r
}

// Contains reports whether set s is a member of family a.
func (m *Manager) Contains(a Node, s tset.TSet) bool {
	els := s.Members()
	i := 0
	for a != Bot {
		na := m.nodes[a]
		if int(na.level) >= m.n {
			return i == len(els) // reached Top
		}
		if i < len(els) && els[i] == int(na.level) {
			a = na.hi
			i++
		} else if i < len(els) && els[i] < int(na.level) {
			return false // required element cannot appear anymore
		} else {
			a = na.lo
		}
	}
	return false
}

// Count returns the number of member sets.
func (m *Manager) Count(a Node) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(a Node) float64 {
		if a == Bot {
			return 0
		}
		if a == Top {
			return 1
		}
		if c, ok := memo[a]; ok {
			return c
		}
		c := rec(m.nodes[a].lo) + rec(m.nodes[a].hi)
		memo[a] = c
		return c
	}
	return rec(a)
}

// IsEmpty reports whether the family has no member sets.
func (m *Manager) IsEmpty(a Node) bool { return a == Bot }

// Equal reports whether a and b are the same family (O(1): canonical).
func (m *Manager) Equal(a, b Node) bool { return a == b }

// Key returns a map key unique per family of this manager.
func (m *Manager) Key(a Node) string { return strconv.Itoa(int(a)) }

// Enumerate returns up to limit member sets (all if limit <= 0), in
// canonical DFS order.
func (m *Manager) Enumerate(a Node, limit int) []tset.TSet {
	var out []tset.TSet
	var cur []int
	var rec func(Node) bool
	rec = func(a Node) bool {
		if limit > 0 && len(out) >= limit {
			return false
		}
		if a == Bot {
			return true
		}
		if a == Top {
			s := tset.New(m.n)
			for _, e := range cur {
				s.Add(e)
			}
			out = append(out, s)
			return !(limit > 0 && len(out) >= limit)
		}
		na := m.nodes[a]
		cur = append(cur, int(na.level))
		if !rec(na.hi) {
			cur = cur[:len(cur)-1]
			return false
		}
		cur = cur[:len(cur)-1]
		return rec(na.lo)
	}
	rec(a)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// NodeCount returns the number of distinct internal nodes reachable from a.
func (m *Manager) NodeCount(a Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(a Node) {
		if a <= Top || seen[a] {
			return
		}
		seen[a] = true
		rec(m.nodes[a].lo)
		rec(m.nodes[a].hi)
	}
	rec(a)
	return len(seen)
}

// FromBDDModels converts the model set of a BDD predicate over the same
// n-variable universe into the ZDD family of its satisfying assignments
// (each model read as the set of variables assigned true). Don't-care
// variables are expanded into both membership outcomes.
func (m *Manager) FromBDDModels(bm *bdd.Manager, f bdd.Node) Node {
	if bm.NumVars() != m.n {
		panic("zdd: BDD universe mismatch")
	}
	type key struct {
		f     bdd.Node
		level int
	}
	memo := make(map[key]Node)
	var rec func(f bdd.Node, level int) Node
	rec = func(f bdd.Node, level int) Node {
		if f == bdd.False {
			return Bot
		}
		if level == m.n {
			return Top // f must be True here
		}
		k := key{f, level}
		if r, ok := memo[k]; ok {
			return r
		}
		var lo, hi Node
		if bm.Level(f) == level {
			lo = rec(bm.Low(f), level+1)
			hi = rec(bm.High(f), level+1)
		} else {
			sub := rec(f, level+1)
			lo, hi = sub, sub
		}
		r := m.mk(int32(level), lo, hi)
		memo[k] = r
		return r
	}
	return rec(f, 0)
}

// MaximalConflictFree returns the family of maximal independent sets of
// the conflict graph given by the adjacency predicate: a set S is maximal
// independent iff it contains no edge and every vertex outside S has a
// neighbour inside S. The predicate is built as a BDD (a conjunction of
// local constraints, compact for the locally-structured conflict graphs of
// real nets) and its models are extracted as a ZDD.
func (m *Manager) MaximalConflictFree(conflict func(i, j int) bool) Node {
	bm := bdd.NewManager(m.n)
	f := bdd.True
	for i := 0; i < m.n; i++ {
		// Independence: ¬(x_i ∧ x_j) for each edge (i,j), i < j.
		for j := i + 1; j < m.n; j++ {
			if conflict(i, j) {
				f = bm.And(f, bm.Not(bm.And(bm.Var(i), bm.Var(j))))
			}
		}
		// Maximality (domination): x_i ∨ ∨_{j ~ i} x_j.
		cl := bm.Var(i)
		for j := 0; j < m.n; j++ {
			if j != i && conflict(i, j) {
				cl = bm.Or(cl, bm.Var(j))
			}
		}
		f = bm.And(f, cl)
	}
	return m.FromBDDModels(bm, f)
}
