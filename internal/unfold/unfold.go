// Package unfold implements McMillan-style net unfoldings: the complete
// finite prefix of a safe Petri net's branching process, and a
// prefix-native deadlock check.
//
// Unfoldings are the other classical partial-order attack on state
// explosion from the paper's era (its reference [13] applies them to timed
// nets): instead of exploring interleavings, the net is unrolled into an
// acyclic occurrence net whose events are partially ordered; concurrency
// never multiplies states, only conflicts branch. Cutoff events — whose
// local configuration reaches an already-represented marking — truncate
// the unrolling into a finite prefix that still represents every reachable
// marking.
//
// The package complements the generalized partial-order engine: both avoid
// interleaving blow-up, but GPO additionally collapses *conflicts*, which
// unfoldings still branch on (compare their statistics on models.Fig2).
package unfold

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/stop"
)

// ErrEventLimit is returned when the prefix exceeds Options.MaxEvents.
var ErrEventLimit = errors.New("unfold: event limit exceeded")

// Cond is a condition: an occurrence of a place.
type Cond struct {
	ID       int
	Place    petri.Place
	Producer *Event // nil for initial conditions
}

// Event is an occurrence of a transition.
type Event struct {
	ID     int
	T      petri.Trans
	Pre    []*Cond
	Post   []*Cond
	Cutoff bool

	local localConfig   // [e]: e plus its causal predecessors
	mark  petri.Marking // Mark([e])
}

// Size returns |[e]|, the number of events in the local configuration.
func (e *Event) Size() int { return e.local.count }

// Mark returns the marking reached by the local configuration.
func (e *Event) Mark() petri.Marking { return e.mark }

// localConfig is a bitset of event ids plus its cardinality.
type localConfig struct {
	bits  []uint64
	count int
}

func newConfig(nwords int) localConfig {
	return localConfig{bits: make([]uint64, nwords)}
}

func (c *localConfig) has(id int) bool {
	w := id / 64
	return w < len(c.bits) && c.bits[w]&(1<<uint(id%64)) != 0
}

func (c *localConfig) add(id int) {
	w := id / 64
	for w >= len(c.bits) {
		c.bits = append(c.bits, 0)
	}
	if c.bits[w]&(1<<uint(id%64)) == 0 {
		c.bits[w] |= 1 << uint(id%64)
		c.count++
	}
}

func (c *localConfig) union(o localConfig) {
	for len(c.bits) < len(o.bits) {
		c.bits = append(c.bits, 0)
	}
	c.count = 0
	for i := range c.bits {
		if i < len(o.bits) {
			c.bits[i] |= o.bits[i]
		}
		c.count += popcount(c.bits[i])
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Prefix is a complete finite prefix of the net's branching process.
type Prefix struct {
	Net        *petri.Net
	Events     []*Event
	Conds      []*Cond
	InitialCut []*Cond
	CutoffCnt  int
}

// Options bounds the construction.
type Options struct {
	// Ctx, if non-nil, is polled cooperatively: once cancelled the
	// construction stops within a bounded number of events and Build
	// returns the partial prefix plus the context's error.
	Ctx context.Context
	// MaxEvents aborts the construction beyond this many events
	// (0 = no limit).
	MaxEvents int
	// Metrics, if non-nil, receives construction statistics under the
	// "unfold." prefix (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per inserted event.
	Progress *obs.Progress
	// Trace, if non-nil, records flight-recorder events: one state event
	// per inserted unfolding event, cutoff events, phase brackets, and a
	// terminal abort on cancellation.
	Trace *trace.Tracer
}

// Build constructs the complete finite prefix: events are inserted in
// order of local-configuration size (McMillan's adequate order), and an
// event is a cutoff when some earlier event — or the empty configuration —
// already reaches the same marking with a smaller local configuration.
func Build(n *petri.Net, opts Options) (*Prefix, error) {
	defer opts.Metrics.StartSpan("unfold.build").End()
	u := &unfolder{
		net:      n,
		prefix:   &Prefix{Net: n},
		marks:    map[string]int{n.InitialMarking().Key(): 0},
		cEvents:  opts.Metrics.Counter("unfold.events"),
		cCutoffs: opts.Metrics.Counter("unfold.cutoffs"),
		cConds:   opts.Metrics.Counter("unfold.conds"),
		gPQ:      opts.Metrics.Gauge("unfold.pq_peak"),
		progress: opts.Progress,
		tk:       opts.Trace.NewTrack("unfold"),
	}
	phBuild := opts.Trace.Intern("build")
	u.tk.Begin(phBuild)
	for _, p := range n.InitialPlaces() {
		c := u.newCond(p, nil)
		u.prefix.InitialCut = append(u.prefix.InitialCut, c)
	}
	// Seed the possible extensions from the initial cut.
	for _, c := range u.prefix.InitialCut {
		u.extensionsWith(c)
	}

	cancel := stop.Every(opts.Ctx, 16)
	for u.pq.Len() > 0 {
		if err := cancel.Poll(); err != nil {
			u.tk.Abort(opts.Trace.Intern(err.Error()))
			return u.prefix, fmt.Errorf("unfold: aborted: %w", err)
		}
		cand := heap.Pop(&u.pq).(*Event)
		if u.dupe(cand) {
			continue
		}
		if opts.MaxEvents > 0 && len(u.prefix.Events) >= opts.MaxEvents {
			return u.prefix, ErrEventLimit
		}
		u.insert(cand)
	}
	u.tk.End(phBuild)
	return u.prefix, nil
}

// unfolder carries construction state.
type unfolder struct {
	net    *petri.Net
	prefix *Prefix
	pq     eventPQ
	// marks maps a marking key to the smallest local-config size reaching
	// it (the initial marking has size 0).
	marks map[string]int
	// seen dedupes events by (transition, preset condition ids).
	seen map[string]bool

	// Instrumentation; the nil values are valid no-ops.
	cEvents  *obs.Counter
	cCutoffs *obs.Counter
	cConds   *obs.Counter
	gPQ      *obs.Gauge
	progress *obs.Progress
	tk       *trace.Track
}

func (u *unfolder) newCond(p petri.Place, producer *Event) *Cond {
	c := &Cond{ID: len(u.prefix.Conds), Place: p, Producer: producer}
	u.prefix.Conds = append(u.prefix.Conds, c)
	u.cConds.Inc()
	return c
}

// key identifies an event by transition and preset.
func eventKey(t petri.Trans, pre []*Cond) string {
	ids := make([]int, len(pre))
	for i, c := range pre {
		ids[i] = c.ID
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", t)
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

func (u *unfolder) dupe(e *Event) bool {
	if u.seen == nil {
		u.seen = make(map[string]bool)
	}
	k := eventKey(e.T, e.Pre)
	if u.seen[k] {
		return true
	}
	u.seen[k] = true
	return false
}

// / insert finalizes a candidate event: decides cutoff, and if not cutoff,
// adds its postset conditions and the extensions they enable.
func (u *unfolder) insert(e *Event) {
	e.ID = len(u.prefix.Events)
	u.prefix.Events = append(u.prefix.Events, e)
	u.cEvents.Inc()
	u.progress.Tick(1)
	u.tk.State(int64(e.ID), 0)

	key := e.mark.Key()
	if best, ok := u.marks[key]; ok && best < e.Size() {
		e.Cutoff = true
		u.prefix.CutoffCnt++
		u.cCutoffs.Inc()
		u.tk.Cutoff(int64(e.ID))
		return
	}
	if best, ok := u.marks[key]; !ok || e.Size() < best {
		u.marks[key] = e.Size()
	}

	for _, p := range u.net.Post(e.T) {
		c := u.newCond(p, e)
		e.Post = append(e.Post, c)
	}
	for _, c := range e.Post {
		u.extensionsWith(c)
	}
}

// extensionsWith enumerates candidate events whose preset contains the new
// condition c: for every consumer transition of c's place, it searches
// pairwise-concurrent conditions for the remaining input places.
func (u *unfolder) extensionsWith(c *Cond) {
	for _, t := range u.net.PostT(c.Place) {
		pre := u.net.Pre(t)
		// Candidate conditions per input place; c is fixed for its place.
		choices := make([][]*Cond, len(pre))
		for i, p := range pre {
			if p == c.Place {
				choices[i] = []*Cond{c}
				continue
			}
			for _, cand := range u.prefix.Conds {
				if cand.Place == p && u.concurrent(cand, c) {
					choices[i] = append(choices[i], cand)
				}
			}
			if len(choices[i]) == 0 {
				choices = nil
				break
			}
		}
		if choices == nil {
			continue
		}
		u.combine(t, choices, 0, make([]*Cond, 0, len(pre)))
	}
}

// combine backtracks over the per-place choices, requiring pairwise
// concurrency, and pushes complete presets as candidate events.
func (u *unfolder) combine(t petri.Trans, choices [][]*Cond, i int, acc []*Cond) {
	if i == len(choices) {
		u.push(t, append([]*Cond(nil), acc...))
		return
	}
	for _, cand := range choices[i] {
		ok := true
		for _, prev := range acc {
			if !u.concurrent(cand, prev) {
				ok = false
				break
			}
		}
		if ok {
			u.combine(t, choices, i+1, append(acc, cand))
		}
	}
}

// push computes the candidate's local configuration and marking and
// enqueues it.
func (u *unfolder) push(t petri.Trans, pre []*Cond) {
	cfg := newConfig(1)
	for _, c := range pre {
		if c.Producer != nil {
			cfg.union(c.Producer.local)
			cfg.add(c.Producer.ID)
		}
	}
	e := &Event{T: t, Pre: pre}
	e.local = cfg
	// A real event id is assigned at insertion; size counts e itself.
	e.local.count = cfg.count
	e.mark = u.markOf(e)
	heap.Push(&u.pq, e)
	u.gPQ.SetMax(int64(u.pq.Len()))
}

// markOf computes Mark([e]): fire, at the condition level, every event of
// the local configuration plus e itself: initial conditions plus all
// postsets, minus everything consumed.
func (u *unfolder) markOf(e *Event) petri.Marking {
	m := u.net.EmptyMarking()
	consumed := make(map[int]bool)
	mark := func(ev *Event) {
		for _, c := range ev.Pre {
			consumed[c.ID] = true
		}
	}
	mark(e)
	for _, f := range u.prefix.Events {
		if e.local.has(f.ID) {
			mark(f)
		}
	}
	place := func(c *Cond) {
		if !consumed[c.ID] {
			m.Set(c.Place)
		}
	}
	for _, c := range u.prefix.InitialCut {
		place(c)
	}
	for _, f := range u.prefix.Events {
		if e.local.has(f.ID) {
			for _, c := range f.Post {
				place(c)
			}
		}
	}
	// e's own postset.
	for _, p := range u.net.Post(e.T) {
		m.Set(p)
	}
	return m
}

// concurrent reports co(a, b): neither causally ordered nor in conflict,
// so a and b can appear in one cut together.
func (u *unfolder) concurrent(a, b *Cond) bool {
	if a == b {
		return false
	}
	la := u.configOf(a)
	lb := u.configOf(b)
	// a consumed by an event of [b]'s configuration ⇒ a < b (or conflict).
	if u.consumedBy(a, lb) || u.consumedBy(b, la) {
		return false
	}
	// Conflict: the joint configuration consumes some condition twice.
	return u.compatible(la, lb)
}

func (u *unfolder) configOf(c *Cond) localConfig {
	if c.Producer == nil {
		return newConfig(1)
	}
	cfg := newConfig(len(c.Producer.local.bits))
	cfg.union(c.Producer.local)
	cfg.add(c.Producer.ID)
	return cfg
}

func (u *unfolder) consumedBy(c *Cond, cfg localConfig) bool {
	for _, e := range u.prefix.Events {
		if !cfg.has(e.ID) {
			continue
		}
		for _, p := range e.Pre {
			if p == c {
				return true
			}
		}
	}
	return false
}

func (u *unfolder) compatible(l1, l2 localConfig) bool {
	consumer := make(map[int]int) // condition id -> event id
	for _, e := range u.prefix.Events {
		if !l1.has(e.ID) && !l2.has(e.ID) {
			continue
		}
		for _, c := range e.Pre {
			if prev, ok := consumer[c.ID]; ok && prev != e.ID {
				return false
			}
			consumer[c.ID] = e.ID
		}
	}
	return true
}

// eventPQ orders candidate events by local-configuration size.
type eventPQ []*Event

func (q eventPQ) Len() int           { return len(q) }
func (q eventPQ) Less(i, j int) bool { return q[i].Size() < q[j].Size() }
func (q eventPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)        { *q = append(*q, x.(*Event)) }
func (q *eventPQ) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
