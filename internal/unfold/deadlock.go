package unfold

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/petri"
)

// FindDeadlock searches for a reachable dead marking using only the
// prefix: a depth-first walk over cuts (co-sets of conditions reached by
// configurations without cutoff events). A cut is dead when no event of
// the prefix — cutoffs included — is enabled on it; by completeness of the
// prefix this coincides with the marking enabling no net transition.
func (px *Prefix) FindDeadlock() (petri.Marking, bool) {
	return px.FindDeadlockWhere(nil)
}

// FindDeadlockWhere is FindDeadlock restricted to dead markings satisfying
// the predicate (nil accepts all). Used by the safety-to-deadlock
// reduction, where only deadlocks marking the monitor trap count.
func (px *Prefix) FindDeadlockWhere(pred func(petri.Marking) bool) (petri.Marking, bool) {
	type cut struct {
		conds map[int]*Cond
	}
	start := cut{conds: make(map[int]*Cond)}
	for _, c := range px.InitialCut {
		start.conds[c.ID] = c
	}

	key := func(c cut) string {
		ids := make([]int, 0, len(c.conds))
		for id := range c.conds {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, id := range ids {
			b.WriteString(strconv.Itoa(id))
			b.WriteByte(',')
		}
		return b.String()
	}
	markOf := func(c cut) petri.Marking {
		m := px.Net.EmptyMarking()
		for _, cond := range c.conds {
			m.Set(cond.Place)
		}
		return m
	}
	enabled := func(c cut, e *Event) bool {
		for _, p := range e.Pre {
			if _, ok := c.conds[p.ID]; !ok {
				return false
			}
		}
		return true
	}

	seen := map[string]bool{key(start): true}
	stack := []cut{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		any := false
		for _, e := range px.Events {
			if !enabled(cur, e) {
				continue
			}
			any = true
			if e.Cutoff {
				// The marking beyond a cutoff is represented elsewhere;
				// the event still counts as "enabled" for deadness.
				continue
			}
			next := cut{conds: make(map[int]*Cond, len(cur.conds))}
			for id, c := range cur.conds {
				next.conds[id] = c
			}
			for _, c := range e.Pre {
				delete(next.conds, c.ID)
			}
			for _, c := range e.Post {
				next.conds[c.ID] = c
			}
			k := key(next)
			if !seen[k] {
				seen[k] = true
				stack = append(stack, next)
			}
		}
		if !any {
			if m := markOf(cur); pred == nil || pred(m) {
				return m, true
			}
		}
	}
	return nil, false
}

// Stats summarizes a prefix.
type Stats struct {
	Events     int
	Conditions int
	Cutoffs    int
}

// Stats returns the prefix size statistics.
func (px *Prefix) Stats() Stats {
	return Stats{
		Events:     len(px.Events),
		Conditions: len(px.Conds),
		Cutoffs:    px.CutoffCnt,
	}
}
