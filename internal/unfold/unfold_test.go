package unfold

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/reach"
)

// TestFig1PrefixLinear checks the defining advantage of unfoldings: the
// prefix of n independent transitions has exactly n events — concurrency
// does not multiply anything (the reachability graph has 2^n states).
func TestFig1PrefixLinear(t *testing.T) {
	for n := 1; n <= 10; n++ {
		px, err := Build(models.Fig1(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(px.Events) != n {
			t.Errorf("Fig1(%d): %d events, want %d", n, len(px.Events), n)
		}
		if px.CutoffCnt != 0 {
			t.Errorf("Fig1(%d): %d cutoffs, want 0 (acyclic net)", n, px.CutoffCnt)
		}
	}
}

// TestFig2PrefixBranches checks the complementary weakness the paper's
// generalized analysis removes: conflicts still branch, so the Fig2 prefix
// has 2n events (one per A_i/B_i), not a collapsed representation — yet
// far fewer than the 3^n markings.
func TestFig2PrefixBranches(t *testing.T) {
	for n := 1; n <= 8; n++ {
		px, err := Build(models.Fig2(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(px.Events) != 2*n {
			t.Errorf("Fig2(%d): %d events, want %d", n, len(px.Events), 2*n)
		}
	}
}

// TestDeadlockAgreement cross-validates the prefix deadlock check against
// exhaustive reachability on the models and random nets.
func TestDeadlockAgreement(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3),
		models.Fig1(4), models.Fig2(3), models.Fig3(), models.Fig5(), models.Fig7(),
		models.ReadersWriters(2), models.ReadersWriters(3),
		models.ArbiterTree(2), models.Overtake(2),
	}
	for seed := int64(0); seed < 40; seed++ {
		nets = append(nets, randnet.Generate(randnet.Default(seed)))
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		px, err := Build(net, Options{MaxEvents: 20000})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		witness, dead := px.FindDeadlock()
		if dead != full.Deadlock {
			t.Errorf("%s: prefix deadlock=%v, exhaustive=%v (events=%d)",
				net.Name(), dead, full.Deadlock, len(px.Events))
			continue
		}
		if dead {
			found := false
			for _, m := range full.Deadlocks {
				if m.Equal(witness) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: prefix witness %s is not a real deadlock",
					net.Name(), witness.String(net))
			}
		}
	}
}

// TestMarkCoverage checks prefix completeness on small nets: the set of
// markings visited by the cut walk equals the reachable set.
func TestMarkCoverage(t *testing.T) {
	nets := []*petri.Net{
		models.Fig2(3), models.Fig3(), models.Fig7(),
		models.ReadersWriters(2), models.NSDP(2),
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{StoreGraph: true})
		if err != nil {
			t.Fatal(err)
		}
		reachable := make(map[string]bool)
		for _, m := range full.Graph.States {
			reachable[m.Key()] = true
		}
		px, err := Build(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		covered := coveredMarkings(px)
		for k := range reachable {
			if !covered[k] {
				t.Errorf("%s: a reachable marking is not covered by the prefix", net.Name())
				break
			}
		}
		for k := range covered {
			if !reachable[k] {
				t.Errorf("%s: prefix covers an unreachable marking", net.Name())
				break
			}
		}
	}
}

// coveredMarkings walks all cutoff-free configurations (same walk as
// FindDeadlock) and collects the cut markings.
func coveredMarkings(px *Prefix) map[string]bool {
	out := make(map[string]bool)
	type cutT = map[int]*Cond
	start := cutT{}
	for _, c := range px.InitialCut {
		start[c.ID] = c
	}
	markKey := func(c cutT) string {
		m := px.Net.EmptyMarking()
		for _, cond := range c {
			m.Set(cond.Place)
		}
		return m.Key()
	}
	cutKey := func(c cutT) string {
		// Distinct cuts may share a marking, so key on condition ids.
		ids := make([]int, 0, len(c))
		for id := range c {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, id := range ids {
			b.WriteString(strconv.Itoa(id))
			b.WriteByte(',')
		}
		return b.String()
	}
	seen := map[string]bool{cutKey(start): true}
	stack := []cutT{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out[markKey(cur)] = true
		for _, e := range px.Events {
			if e.Cutoff {
				continue
			}
			ok := true
			for _, p := range e.Pre {
				if _, in := cur[p.ID]; !in {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next := cutT{}
			for id, c := range cur {
				next[id] = c
			}
			for _, c := range e.Pre {
				delete(next, c.ID)
			}
			for _, c := range e.Post {
				next[c.ID] = c
			}
			k := cutKey(next)
			if !seen[k] {
				seen[k] = true
				stack = append(stack, next)
			}
		}
	}
	return out
}

// TestEventLimit checks the guard.
func TestEventLimit(t *testing.T) {
	_, err := Build(models.NSDP(4), Options{MaxEvents: 5})
	if !errors.Is(err, ErrEventLimit) {
		t.Errorf("got %v, want ErrEventLimit", err)
	}
}

// TestPrefixStats spot-checks statistics and records the comparison the
// package documentation makes: unfoldings beat interleavings (Fig1) but
// still branch on conflicts (Fig2), which GPO collapses.
func TestPrefixStats(t *testing.T) {
	px, err := Build(models.ReadersWriters(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := px.Stats()
	if s.Events == 0 || s.Conditions == 0 {
		t.Fatal("empty stats")
	}
	if s.Events != len(px.Events) || s.Cutoffs != px.CutoffCnt {
		t.Error("stats disagree with prefix")
	}
	t.Logf("RW(3): %d events, %d conditions, %d cutoffs", s.Events, s.Conditions, s.Cutoffs)
}
