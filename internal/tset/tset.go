// Package tset implements fixed-universe bitsets of transition indices.
//
// A TSet is the "color" of a token in a Generalized Petri Net: a set of
// transitions that can act together as one consistent resolution of the
// net's conflicts. Families of TSets (see internal/family and internal/zdd)
// are the marking values of GPN places.
//
// The universe (number of transitions) is fixed when a set is created; all
// binary operations require operands of the same width and panic otherwise,
// since mixing universes is a programming error, not an input error.
package tset

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

const wordBits = 64

// TSet is a set of small non-negative integers (transition indices) backed
// by a fixed-width bitset. The zero value is an empty set over an empty
// universe; use New to create a set over a non-trivial universe.
type TSet struct {
	words []uint64
	n     int // universe size
}

// New returns an empty set over a universe of n elements {0, …, n-1}.
func New(n int) TSet {
	if n < 0 {
		panic("tset: negative universe size")
	}
	return TSet{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Of returns a set over a universe of n elements containing the given members.
func Of(n int, members ...int) TSet {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Full returns the set containing every element of an n-element universe.
func Full(n int) TSet {
	s := New(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits beyond the universe in the last word.
func (s *TSet) trim() {
	if len(s.words) == 0 {
		return
	}
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Universe returns the size of the universe the set ranges over.
func (s TSet) Universe() int { return s.n }

// Clone returns an independent copy of s.
func (s TSet) Clone() TSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return TSet{words: w, n: s.n}
}

// Add inserts element i. It panics if i is outside the universe.
func (s TSet) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes element i. It panics if i is outside the universe.
func (s TSet) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is a member. It panics if i is outside the universe.
func (s TSet) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s TSet) check(i int) {
	if i < 0 || i >= s.n {
		panic("tset: element " + strconv.Itoa(i) + " outside universe of size " + strconv.Itoa(s.n))
	}
}

func (s TSet) sameUniverse(t TSet) {
	if s.n != t.n {
		panic("tset: mixed universes " + strconv.Itoa(s.n) + " and " + strconv.Itoa(t.n))
	}
}

// IsEmpty reports whether the set has no members.
func (s TSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s TSet) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether s and t have the same members over the same universe.
func (s TSet) Equal(t TSet) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t as a new set.
func (s TSet) Union(t TSet) TSet {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] |= w
	}
	return r
}

// Intersect returns s ∩ t as a new set.
func (s TSet) Intersect(t TSet) TSet {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &= w
	}
	return r
}

// Diff returns s \ t as a new set.
func (s TSet) Diff(t TSet) TSet {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &^= w
	}
	return r
}

// Intersects reports whether s ∩ t is non-empty.
func (s TSet) Intersects(t TSet) bool {
	s.sameUniverse(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is a member of t.
func (s TSet) SubsetOf(t TSet) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Compare orders sets lexicographically by their word representation
// (low elements most significant last). It returns -1, 0, or +1. Sets over
// different universes order by universe size first.
func (s TSet) Compare(t TSet) int {
	if s.n != t.n {
		if s.n < t.n {
			return -1
		}
		return 1
	}
	for i := len(s.words) - 1; i >= 0; i-- {
		if s.words[i] != t.words[i] {
			if s.words[i] < t.words[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Key returns a string usable as a map key, unique per (universe, members).
// The universe size is encoded ahead of the member words: sets over
// different universes can share an identical word representation (e.g.
// empty sets over 60 and 64 elements) and must not collide.
func (s TSet) Key() string {
	var b strings.Builder
	b.Grow(8 + len(s.words)*8)
	var nbuf [8]byte
	for i := 0; i < 8; i++ {
		nbuf[i] = byte(uint64(s.n) >> (8 * uint(i)))
	}
	b.Write(nbuf[:])
	for _, w := range s.words {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * uint(i)))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// Members returns the elements in increasing order.
func (s TSet) Members() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for each member in increasing order.
func (s TSet) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest member, or -1 if the set is empty.
func (s TSet) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as {a,b,c} using element indices.
func (s TSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}

// StringNamed renders the set as {name,…} using the supplied name function.
func (s TSet) StringNamed(name func(int) string) string {
	var names []string
	s.ForEach(func(i int) { names = append(names, name(i)) })
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}
