package tset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(70) // spans two words
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(69)
	if s.Len() != 4 {
		t.Fatalf("len=%d want 4", s.Len())
	}
	for _, i := range []int{0, 63, 64, 69} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("spurious members")
	}
	s.Remove(63)
	if s.Has(63) || s.Len() != 3 {
		t.Error("remove failed")
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 69 {
		t.Errorf("members=%v", got)
	}
}

func TestOfAndFull(t *testing.T) {
	s := Of(10, 1, 3, 5)
	if s.Len() != 3 || !s.Has(3) {
		t.Fatal("Of failed")
	}
	f := Full(10)
	if f.Len() != 10 {
		t.Fatalf("Full(10).Len()=%d", f.Len())
	}
	f = Full(64)
	if f.Len() != 64 {
		t.Fatalf("Full(64).Len()=%d", f.Len())
	}
	f = Full(65)
	if f.Len() != 65 || !f.Has(64) {
		t.Fatalf("Full(65) wrong")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(8, 1, 2, 3)
	b := Of(8, 3, 4)
	if got := a.Union(b); got.Len() != 4 || !got.Has(4) {
		t.Errorf("union=%v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Has(3) {
		t.Errorf("intersect=%v", got)
	}
	if got := a.Diff(b); got.Len() != 2 || got.Has(3) {
		t.Errorf("diff=%v", got)
	}
	if !a.Intersects(b) || a.Intersects(Of(8, 7)) {
		t.Error("intersects wrong")
	}
	if !Of(8, 1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("subset wrong")
	}
}

func TestCompareAndKey(t *testing.T) {
	a := Of(8, 1)
	b := Of(8, 2)
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a.Clone()) != 0 {
		t.Error("compare ordering wrong")
	}
	if a.Key() == b.Key() {
		t.Error("distinct sets share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone changes key")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(8, 1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("clone aliases original")
	}
}

func TestPanicsOutsideUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := New(4)
	s.Add(4)
}

func TestMixedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Of(4, 1).Union(Of(5, 1))
}

// TestQuickAlgebraLaws property-checks set laws with testing/quick.
func TestQuickAlgebraLaws(t *testing.T) {
	const n = 100
	gen := func(seed int64) TSet {
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		return s
	}
	laws := map[string]func(x, y int64) bool{
		"union-len": func(x, y int64) bool {
			a, b := gen(x), gen(y)
			return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
		},
		"diff-disjoint": func(x, y int64) bool {
			a, b := gen(x), gen(y)
			return !a.Diff(b).Intersects(b)
		},
		"demorgan": func(x, y int64) bool {
			a, b := gen(x), gen(y)
			full := Full(n)
			left := full.Diff(a.Union(b))
			right := full.Diff(a).Intersect(full.Diff(b))
			return left.Equal(right)
		},
		"min-is-first": func(x, y int64) bool {
			a := gen(x)
			ms := a.Members()
			if len(ms) == 0 {
				return a.Min() == -1
			}
			return a.Min() == ms[0]
		},
	}
	for name, law := range laws {
		if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestForEachOrder(t *testing.T) {
	s := Of(130, 129, 0, 64, 65)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 64, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := Of(8, 2, 5)
	if s.String() != "{2,5}" {
		t.Errorf("String=%q", s.String())
	}
	named := s.StringNamed(func(i int) string { return string(rune('a' + i)) })
	if named != "{c,f}" {
		t.Errorf("StringNamed=%q", named)
	}
}

// TestKeyEncodesUniverse is the regression test for the key-collision
// bug: sets over different universes with identical word representations
// (60 and 64 elements both occupy one word) must not share a Key, per the
// "unique per (universe, members)" contract.
func TestKeyEncodesUniverse(t *testing.T) {
	if Of(60).Key() == Of(64).Key() {
		t.Error("empty sets over universes 60 and 64 collide")
	}
	if Of(60, 3, 7).Key() == Of(64, 3, 7).Key() {
		t.Error("{3,7} over universes 60 and 64 collide")
	}
	if Of(64, 3, 7).Key() != Of(64, 3, 7).Key() {
		t.Error("identical sets must share a key")
	}
	if Of(64, 3).Key() == Of(64, 7).Key() {
		t.Error("different members over the same universe collide")
	}
}
