package ckpt

import (
	"testing"

	"repro/internal/verify"
)

// FuzzCkptRead throws arbitrary bytes at Decode. The invariant under
// fuzz is the package's contract: Decode never panics, never returns an
// untyped error, and a successful decode always yields a complete,
// internally consistent File — there is no input that silently resumes
// as something else (satellite: checkpoint reader hardening).
//
// The corpus is seeded with real containers of both kinds plus the
// classic damage shapes (torn tail, bit flip, wrong magic), so the
// fuzzer starts from deep inside the format instead of bouncing off the
// magic check.
func FuzzCkptRead(f *testing.F) {
	cases := ckptCases()
	reachImg := image(f, cases[0])
	coreImg := image(f, cases[5])
	f.Add(reachImg)
	f.Add(coreImg)
	f.Add(reachImg[:len(reachImg)/2]) // torn tail
	f.Add(coreImg[:len(coreImg)-1])   // footer cut by one byte
	flipped := append([]byte(nil), reachImg...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add([]byte("GPOCKPT2 wrong magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// A successful decode must be a complete checkpoint.
		if file.Net == nil || file.Snap == nil {
			t.Fatalf("decoded File is incomplete: %+v", file)
		}
		if (file.Snap.Reach == nil) == (file.Snap.Core == nil) {
			t.Fatal("decoded File does not have exactly one engine snapshot")
		}
		if file.Boundary() < 0 || file.States() <= 0 {
			t.Fatalf("decoded File has impossible coordinates: boundary %d, states %d",
				file.Boundary(), file.States())
		}
		// The decoded content must hash to its own header key (Decode
		// checks this; re-assert so the invariant survives refactors).
		if verify.RunKey(file.Net, file.Check, file.Bad, file.Options()) != file.Key {
			t.Fatal("decoded File fails its own RunKey self-check")
		}
	})
}
