// Package ckpt implements ckpt/v1, the durable on-disk checkpoint
// container for verification jobs (DESIGN.md D11).
//
// A checkpoint file is a sequence of length-prefixed frames in the
// cluster wire codec (internal/cluster): a header frame keyed by the
// run's content address (verify.RunKey) and carrying a complete,
// decodable encoding of the net, the check and every result-determining
// option; for exhaustive snapshots 256 visited-store shard segments
// (markings grouped by reach.ShardOf, the same partition the parallel
// explorer uses) plus one engine-state frame; for GPO snapshots one
// engine-state frame embedding the algebra's family blob; and a footer
// frame with the SHA-256 digest of everything before it.
//
// The format is torn-tail-safe and refuses silent resume: a truncated
// tail surfaces as ErrTorn (the footer never arrived or a frame is
// cut), any bit flip surfaces as ErrCorrupt (digest mismatch, or the
// decoded content no longer hashes to the header's RunKey), a wrong
// file as ErrBadMagic, and a future format as ErrUnsupported. Files
// are written to a temp name and renamed into place, so a crash during
// Write never leaves a partial file under the final name.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/petri"
	"repro/internal/verify"
)

// Typed failure modes. Callers gate on these; none of them is ever a
// silent fallback to a fresh run.
var (
	// ErrBadMagic reports a file that is not a ckpt/v1 container.
	ErrBadMagic = errors.New("ckpt: not a checkpoint file")
	// ErrUnsupported reports a container version this build cannot read.
	ErrUnsupported = errors.New("ckpt: unsupported checkpoint format version")
	// ErrTorn reports a truncated tail: the file ends mid-frame or
	// before the footer. The checkpoint was cut by a crash mid-write.
	ErrTorn = errors.New("ckpt: torn checkpoint (truncated tail)")
	// ErrCorrupt reports content damage: a digest mismatch, a frame
	// that does not decode, or content that no longer matches the
	// header's RunKey.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	// ErrKeyMismatch reports a structurally valid checkpoint for a
	// different run than the caller asked to resume.
	ErrKeyMismatch = errors.New("ckpt: checkpoint is for a different run")
)

// magic is the 8-byte file preamble, outside the frame stream.
var magic = [8]byte{'G', 'P', 'O', 'C', 'K', 'P', 'T', '1'}

// version is the container format version in the header frame.
const version = 1

// Frame types.
const (
	frameHeader byte = 'H'
	frameShard  byte = 'S'
	frameReach  byte = 'R'
	frameCore   byte = 'C'
	frameFooter byte = 'Z'
)

// maxFrame caps a single checkpoint frame; the shard partition keeps
// exhaustive snapshots well under it, and GPO family blobs are
// dominated by the deduplicated node table.
const maxFrame = 1 << 30

// File is one decoded checkpoint: the run's identity (everything
// verify.RunKey hashes) plus the engine snapshot at the boundary.
type File struct {
	Key   verify.Key
	Check string // "deadlock" or "safety"
	Bad   []petri.Place
	Net   *petri.Net
	// Result-determining options, the RunKey subset.
	Engine      verify.Engine
	StopAtFirst bool
	Proviso     bool
	Reduce      bool
	MaxStates   int
	MaxNodes    int
	// Snap is the engine snapshot (exactly one member set).
	Snap *verify.EngineSnapshot
}

// Options reassembles the verify.Options subset the checkpoint pins.
// Runtime knobs (Ctx, Workers, observers) are the caller's to add.
func (f *File) Options() verify.Options {
	return verify.Options{
		Engine:      f.Engine,
		StopAtFirst: f.StopAtFirst,
		Proviso:     f.Proviso,
		Reduce:      f.Reduce,
		MaxStates:   f.MaxStates,
		MaxNodes:    f.MaxNodes,
	}
}

// Boundary returns the snapshot's deterministic resume coordinate.
func (f *File) Boundary() int64 { return f.Snap.Boundary() }

// States returns the snapshot's interned state count.
func (f *File) States() int { return f.Snap.States() }

// hashingWriter feeds every written byte into the running digest too.
type hashingWriter struct {
	w io.Writer
	h io.Writer
}

func (hw hashingWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	return n, err
}

// Write serializes f into path atomically: the container is assembled
// next to the target and renamed over it only after a successful sync.
func Write(path string, f *File) (err error) {
	if f.Snap == nil || (f.Snap.Reach == nil) == (f.Snap.Core == nil) {
		return fmt.Errorf("ckpt: exactly one engine snapshot must be set")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = writeTo(tmp, f); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeTo emits the full container to w.
func writeTo(w io.Writer, f *File) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	digest := sha256.New()
	hw := hashingWriter{w: w, h: digest}
	if err := cluster.WriteFrame(hw, frameHeader, encodeHeader(f)); err != nil {
		return err
	}
	if sn := f.Snap.Reach; sn != nil {
		for _, payload := range encodeShards(sn) {
			if err := cluster.WriteFrame(hw, frameShard, payload); err != nil {
				return err
			}
		}
		if err := cluster.WriteFrame(hw, frameReach, encodeReach(sn)); err != nil {
			return err
		}
	} else {
		if err := cluster.WriteFrame(hw, frameCore, encodeCore(f.Snap.Core)); err != nil {
			return err
		}
	}
	// The footer frame carries the digest of every frame before it and
	// is excluded from its own hash (written to w, not hw).
	return cluster.WriteFrame(w, frameFooter, digest.Sum(nil))
}

// Encode serializes f to the ckpt/v1 container image in memory — the
// exact bytes Write would place on disk. Replay uses it to compare a
// re-executed prefix against a stored checkpoint bit for bit.
func Encode(f *File) ([]byte, error) {
	if f.Snap == nil || (f.Snap.Reach == nil) == (f.Snap.Core == nil) {
		return nil, fmt.Errorf("ckpt: exactly one engine snapshot must be set")
	}
	var buf bytes.Buffer
	if err := writeTo(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Read decodes and fully validates the checkpoint at path.
func Read(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// ReadFor reads the checkpoint and additionally requires it to belong
// to the given run, returning ErrKeyMismatch otherwise.
func ReadFor(path string, key verify.Key) (*File, error) {
	f, err := Read(path)
	if err != nil {
		return nil, err
	}
	if f.Key != key {
		return nil, fmt.Errorf("%w: file has %s, want %s", ErrKeyMismatch, f.Key.RunID(), key.RunID())
	}
	return f, nil
}

// Decode parses a complete container image. Every failure mode maps to
// one of the typed errors; a checkpoint never silently degrades.
//
// The image is walked frame by frame from memory (the format is the
// cluster wire codec's, but a file's truncation semantics are sharper
// than a stream's: a length prefix promising more bytes than the file
// holds IS the torn tail), accumulating the digest over every frame
// before the footer.
func Decode(b []byte) (*File, error) {
	if len(b) < len(magic) || !bytes.Equal(b[:len(magic)], magic[:]) {
		return nil, ErrBadMagic
	}
	stream := b[len(magic):]
	digest := sha256.New()

	var f *File
	var headerStates int
	var shardStates []petri.Marking
	var shardSeen int
	var footerDigest []byte
	var haveEngine, haveFooter bool

	for off := 0; off < len(stream); {
		if len(stream)-off < 4 {
			return nil, fmt.Errorf("%w: file ends inside a frame header", ErrTorn)
		}
		n := int(binary.BigEndian.Uint32(stream[off : off+4]))
		if n == 0 || n > maxFrame {
			return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
		}
		if n > len(stream)-off-4 {
			return nil, fmt.Errorf("%w: frame of %d bytes, %d remain", ErrTorn, n, len(stream)-off-4)
		}
		typ, payload := stream[off+4], stream[off+5:off+4+n]
		if typ != frameFooter {
			digest.Write(stream[off : off+4+n])
		}
		off += 4 + n
		if haveFooter {
			return nil, fmt.Errorf("%w: frames after footer", ErrCorrupt)
		}
		var err error
		switch typ {
		case frameHeader:
			if f != nil {
				return nil, fmt.Errorf("%w: duplicate header", ErrCorrupt)
			}
			f, headerStates, err = decodeHeader(payload)
			if err != nil {
				return nil, err
			}
			// Each interned state occupies at least one byte in its shard
			// or engine frame, so a count beyond the whole stream is
			// damage — guarded here so a fuzzed header cannot drive the
			// shard table allocation to gigabytes.
			if headerStates > len(stream) {
				return nil, fmt.Errorf("%w: header claims %d states in %d bytes", ErrCorrupt, headerStates, len(stream))
			}
		case frameShard:
			if f == nil {
				return nil, fmt.Errorf("%w: shard before header", ErrCorrupt)
			}
			if shardStates == nil {
				shardStates = make([]petri.Marking, headerStates)
			}
			n, err := decodeShard(payload, shardStates)
			if err != nil {
				return nil, err
			}
			shardSeen += n
		case frameReach:
			if f == nil || haveEngine {
				return nil, fmt.Errorf("%w: misplaced engine frame", ErrCorrupt)
			}
			if shardSeen != headerStates || shardSeen != len(shardStates) {
				return nil, fmt.Errorf("%w: %d shard states, header says %d", ErrCorrupt, shardSeen, headerStates)
			}
			sn, err := decodeReach(payload, shardStates)
			if err != nil {
				return nil, err
			}
			f.Snap = &verify.EngineSnapshot{Reach: sn}
			haveEngine = true
		case frameCore:
			if f == nil || haveEngine {
				return nil, fmt.Errorf("%w: misplaced engine frame", ErrCorrupt)
			}
			sn, err := decodeCore(payload)
			if err != nil {
				return nil, err
			}
			if sn.NumStates != headerStates {
				return nil, fmt.Errorf("%w: engine has %d states, header says %d", ErrCorrupt, sn.NumStates, headerStates)
			}
			f.Snap = &verify.EngineSnapshot{Core: sn}
			haveEngine = true
		case frameFooter:
			haveFooter = true
			footerDigest = append([]byte(nil), payload...)
		default:
			return nil, fmt.Errorf("%w: unknown frame type %q", ErrCorrupt, typ)
		}
	}
	if !haveFooter {
		return nil, fmt.Errorf("%w: footer missing", ErrTorn)
	}
	if f == nil || !haveEngine {
		return nil, fmt.Errorf("%w: incomplete container", ErrCorrupt)
	}
	// Digest check: the hash was accumulated over every frame before the
	// footer exactly as written.
	if !bytes.Equal(digest.Sum(nil), footerDigest) {
		return nil, fmt.Errorf("%w: digest mismatch", ErrCorrupt)
	}
	// Content self-check: the decoded net + check + options must hash
	// back to the header's RunKey. This catches damage in any frame the
	// digest covers only probabilistically and, more importantly, any
	// format skew in RunKey itself (RunKeyFormat bump): a checkpoint
	// written under an older key scheme refuses to resume instead of
	// resuming under a wrong identity.
	if got := verify.RunKey(f.Net, f.Check, f.Bad, f.Options()); got != f.Key {
		return nil, fmt.Errorf("%w: content hashes to %s, header says %s", ErrCorrupt, got.RunID(), f.Key.RunID())
	}
	return f, nil
}
