package ckpt

// Frame payload codecs for ckpt/v1. All integers are uvarints and all
// byte strings are length-prefixed, in the cluster wire codec's style
// (and using its helpers), so payloads are self-delimiting and a
// mutation anywhere surfaces as a decode error or a digest mismatch,
// never as a silently different run.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/verify"
)

// corrupt wraps a payload-level decode failure.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// nextInt reads one uvarint as an int, guarding the int range.
func nextInt(b *[]byte) (int, error) {
	v, err := cluster.NextUvarint(b)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("value %d out of range", v)
	}
	return int(v), nil
}

// ---- header ----

const (
	kindReach byte = 'R'
	kindCore  byte = 'C'
)

func encodeHeader(f *File) []byte {
	b := binary.AppendUvarint(nil, version)
	b = append(b, f.Key[:]...)
	b = cluster.AppendBytes(b, f.Check)
	b = binary.AppendUvarint(b, uint64(len(f.Bad)))
	for _, p := range f.Bad {
		b = binary.AppendUvarint(b, uint64(p))
	}
	b = binary.AppendUvarint(b, uint64(f.Engine))
	flags := uint64(0)
	if f.StopAtFirst {
		flags |= 1
	}
	if f.Proviso {
		flags |= 2
	}
	if f.Reduce {
		flags |= 4
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(f.MaxStates))
	b = binary.AppendUvarint(b, uint64(f.MaxNodes))
	if f.Snap.Reach != nil {
		b = append(b, kindReach)
	} else {
		b = append(b, kindCore)
	}
	b = binary.AppendUvarint(b, uint64(f.States()))
	b = binary.AppendUvarint(b, uint64(f.Boundary()))
	b = cluster.AppendBytes(b, string(verify.AppendNetKey(nil, f.Net)))
	return b
}

// decodeHeader parses the header frame; the engine kind is implied by
// which engine frame follows, so only the state count is returned for
// cross-checking.
func decodeHeader(b []byte) (*File, int, error) {
	fail := func(err error, what string) (*File, int, error) {
		return nil, 0, corrupt("header %s: %v", what, err)
	}
	v, err := cluster.NextUvarint(&b)
	if err != nil {
		return fail(err, "version")
	}
	if v != version {
		return nil, 0, fmt.Errorf("%w: container version %d, this build reads %d", ErrUnsupported, v, version)
	}
	f := &File{}
	if len(b) < len(f.Key) {
		return fail(fmt.Errorf("truncated"), "run key")
	}
	copy(f.Key[:], b[:len(f.Key)])
	b = b[len(f.Key):]
	if f.Check, err = cluster.NextBytes(&b); err != nil {
		return fail(err, "check")
	}
	nBad, err := nextInt(&b)
	if err != nil {
		return fail(err, "bad count")
	}
	for i := 0; i < nBad; i++ {
		p, err := nextInt(&b)
		if err != nil {
			return fail(err, "bad place")
		}
		f.Bad = append(f.Bad, petri.Place(p))
	}
	eng, err := nextInt(&b)
	if err != nil {
		return fail(err, "engine")
	}
	f.Engine = verify.Engine(eng)
	flags, err := cluster.NextUvarint(&b)
	if err != nil {
		return fail(err, "flags")
	}
	f.StopAtFirst = flags&1 != 0
	f.Proviso = flags&2 != 0
	f.Reduce = flags&4 != 0
	if f.MaxStates, err = nextInt(&b); err != nil {
		return fail(err, "max states")
	}
	if f.MaxNodes, err = nextInt(&b); err != nil {
		return fail(err, "max nodes")
	}
	if len(b) < 1 {
		return fail(fmt.Errorf("truncated"), "engine kind")
	}
	kind := b[0]
	b = b[1:]
	if kind != kindReach && kind != kindCore {
		return fail(fmt.Errorf("unknown kind %q", kind), "engine kind")
	}
	states, err := nextInt(&b)
	if err != nil {
		return fail(err, "state count")
	}
	if _, err = cluster.NextUvarint(&b); err != nil { // boundary, informational
		return fail(err, "boundary")
	}
	netBlob, err := cluster.NextBytes(&b)
	if err != nil {
		return fail(err, "net")
	}
	if len(b) != 0 {
		return fail(fmt.Errorf("%d trailing bytes", len(b)), "tail")
	}
	if f.Net, err = decodeNet(netBlob); err != nil {
		return nil, 0, err
	}
	for _, p := range f.Bad {
		if int(p) >= f.Net.NumPlaces() {
			return fail(fmt.Errorf("place %d out of range", p), "bad place")
		}
	}
	return f, states, nil
}

// ---- net ----

// decodeNet is the inverse of verify.AppendNetKey: the canonical net
// encoding doubles as the checkpoint's net serialization, so the run
// identity and the stored net can never disagree. The decoded net is
// re-encoded and compared byte for byte as a structural self-check.
func decodeNet(blob string) (*petri.Net, error) {
	b := []byte(blob)
	name, err := cluster.NextBytes(&b)
	if err != nil {
		return nil, corrupt("net name: %v", err)
	}
	bld := petri.NewBuilder(name)
	np, err := nextInt(&b)
	if err != nil {
		return nil, corrupt("net places: %v", err)
	}
	// Every place contributes at least its name's length prefix, so a
	// count beyond the remaining bytes is damage (and must not drive the
	// up-front allocation).
	if np > len(b) {
		return nil, corrupt("net claims %d places in %d bytes", np, len(b))
	}
	places := make([]petri.Place, np)
	for i := range places {
		pn, err := cluster.NextBytes(&b)
		if err != nil {
			return nil, corrupt("net place %d: %v", i, err)
		}
		places[i] = bld.Place(pn)
	}
	nInit, err := nextInt(&b)
	if err != nil {
		return nil, corrupt("net initial: %v", err)
	}
	if nInit > len(b) {
		return nil, corrupt("net claims %d initial places in %d bytes", nInit, len(b))
	}
	init := make([]petri.Place, 0, nInit)
	for i := 0; i < nInit; i++ {
		p, err := nextInt(&b)
		if err != nil || p >= np {
			return nil, corrupt("net initial place %d", i)
		}
		init = append(init, places[p])
	}
	nt, err := nextInt(&b)
	if err != nil {
		return nil, corrupt("net transitions: %v", err)
	}
	for t := 0; t < nt; t++ {
		tn, err := cluster.NextBytes(&b)
		if err != nil {
			return nil, corrupt("net trans %d: %v", t, err)
		}
		readPlaces := func() ([]petri.Place, error) {
			k, err := nextInt(&b)
			if err != nil {
				return nil, err
			}
			ps := make([]petri.Place, 0, k)
			for i := 0; i < k; i++ {
				p, err := nextInt(&b)
				if err != nil || p >= np {
					return nil, fmt.Errorf("place out of range")
				}
				ps = append(ps, places[p])
			}
			return ps, nil
		}
		pre, err := readPlaces()
		if err != nil {
			return nil, corrupt("net trans %d pre: %v", t, err)
		}
		post, err := readPlaces()
		if err != nil {
			return nil, corrupt("net trans %d post: %v", t, err)
		}
		bld.TransArcs(tn, pre, post)
	}
	if len(b) != 0 {
		return nil, corrupt("net: %d trailing bytes", len(b))
	}
	bld.Mark(init...)
	n, err := bld.Build()
	if err != nil {
		return nil, corrupt("net rebuild: %v", err)
	}
	if string(verify.AppendNetKey(nil, n)) != blob {
		return nil, corrupt("net does not re-encode canonically")
	}
	return n, nil
}

// ---- reach snapshot ----

// encodeShards partitions the interned markings into the parallel
// explorer's 256 visited-store shards (reach.ShardOf over the marking
// hash) — one frame per shard, empty shards included, so the container
// shape is deterministic and a dropped segment is always detected.
func encodeShards(sn *reach.Snapshot) [][]byte {
	type ent struct {
		id  int
		key string
	}
	buckets := make([][]ent, reach.NumShards)
	for id, m := range sn.States {
		k, h := m.KeyHash()
		s := int(reach.ShardOf(h))
		buckets[s] = append(buckets[s], ent{id, k})
	}
	out := make([][]byte, reach.NumShards)
	for s, es := range buckets {
		b := binary.AppendUvarint(nil, uint64(s))
		b = binary.AppendUvarint(b, uint64(len(es)))
		for _, e := range es {
			b = binary.AppendUvarint(b, uint64(e.id))
			b = cluster.AppendBytes(b, e.key)
		}
		out[s] = b
	}
	return out
}

// decodeShard fills one shard segment's markings into states (indexed
// by id) and returns how many it placed. Shard membership is
// re-verified against the marking hash.
func decodeShard(b []byte, states []petri.Marking) (int, error) {
	shard, err := nextInt(&b)
	if err != nil || shard >= reach.NumShards {
		return 0, corrupt("shard index")
	}
	count, err := nextInt(&b)
	if err != nil {
		return 0, corrupt("shard %d count: %v", shard, err)
	}
	for i := 0; i < count; i++ {
		id, err := nextInt(&b)
		if err != nil || id >= len(states) {
			return 0, corrupt("shard %d state id", shard)
		}
		if states[id] != nil {
			return 0, corrupt("shard %d: duplicate state %d", shard, id)
		}
		key, err := cluster.NextBytes(&b)
		if err != nil {
			return 0, corrupt("shard %d marking: %v", shard, err)
		}
		m, ok := petri.MarkingFromKeyBytes(key)
		if !ok {
			return 0, corrupt("shard %d: malformed marking for state %d", shard, id)
		}
		if int(reach.ShardOf(petri.HashKey(key))) != shard {
			return 0, corrupt("shard %d: state %d routed to the wrong shard", shard, id)
		}
		states[id] = m
	}
	if len(b) != 0 {
		return 0, corrupt("shard %d: %d trailing bytes", shard, len(b))
	}
	return count, nil
}

func appendInts(b []byte, xs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.AppendUvarint(b, uint64(x))
	}
	return b
}

func nextInts(b *[]byte) ([]int, error) {
	n, err := nextInt(b)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each element occupies at least one byte, so a count beyond the
	// remaining payload is damage — checked before allocating capacity,
	// so a fuzzed count cannot demand gigabytes up front.
	if n > len(*b) {
		return nil, fmt.Errorf("count %d exceeds %d remaining bytes", n, len(*b))
	}
	xs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		x, err := nextInt(b)
		if err != nil {
			return nil, err
		}
		xs = append(xs, x)
	}
	return xs, nil
}

func encodeReach(sn *reach.Snapshot) []byte {
	b := binary.AppendUvarint(nil, uint64(sn.FrontierStart))
	b = binary.AppendUvarint(b, uint64(sn.Arcs))
	b = binary.AppendUvarint(b, uint64(sn.Levels))
	b = appendInts(b, sn.DeadIDs)
	b = appendInts(b, sn.BadIDs)
	return b
}

func decodeReach(b []byte, states []petri.Marking) (*reach.Snapshot, error) {
	sn := &reach.Snapshot{States: states}
	var err error
	if sn.FrontierStart, err = nextInt(&b); err != nil {
		return nil, corrupt("reach frontier: %v", err)
	}
	if sn.Arcs, err = nextInt(&b); err != nil {
		return nil, corrupt("reach arcs: %v", err)
	}
	if sn.Levels, err = nextInt(&b); err != nil {
		return nil, corrupt("reach levels: %v", err)
	}
	if sn.DeadIDs, err = nextInts(&b); err != nil {
		return nil, corrupt("reach dead ids: %v", err)
	}
	if sn.BadIDs, err = nextInts(&b); err != nil {
		return nil, corrupt("reach bad ids: %v", err)
	}
	if len(b) != 0 {
		return nil, corrupt("reach: %d trailing bytes", len(b))
	}
	return sn, nil
}

// ---- core snapshot ----

func encodeCore(sn *core.Snapshot) []byte {
	b := binary.AppendUvarint(nil, uint64(sn.NumPlaces))
	b = binary.AppendUvarint(b, uint64(sn.NumStates))
	b = binary.AppendUvarint(b, uint64(sn.Steps))
	b = binary.AppendUvarint(b, uint64(sn.Arcs))
	b = binary.AppendUvarint(b, uint64(sn.MultiFirings))
	b = binary.AppendUvarint(b, uint64(sn.SingleFirings))
	b = binary.AppendUvarint(b, math.Float64bits(sn.PeakValid))
	b = appendInts(b, sn.DeadStates)
	b = binary.AppendUvarint(b, uint64(len(sn.Witnesses)))
	for _, m := range sn.Witnesses {
		b = cluster.AppendBytes(b, m.Key())
	}
	b = cluster.AppendBytes(b, string(sn.FamilyBlob))
	b = binary.AppendUvarint(b, uint64(len(sn.Frames)))
	for _, fr := range sn.Frames {
		b = binary.AppendUvarint(b, uint64(fr.ID))
		b = binary.AppendUvarint(b, uint64(fr.Next))
		flags := uint64(0)
		if fr.Postponed {
			flags |= 1
		}
		if fr.FullDone {
			flags |= 2
		}
		b = binary.AppendUvarint(b, flags)
		b = binary.AppendUvarint(b, uint64(len(fr.Succs)))
		for _, sc := range fr.Succs {
			mf := uint64(0)
			if sc.Multiple {
				mf = 1
			}
			b = binary.AppendUvarint(b, mf)
			b = binary.AppendUvarint(b, uint64(len(sc.Fired)))
			for _, t := range sc.Fired {
				b = binary.AppendUvarint(b, uint64(t))
			}
		}
	}
	return b
}

func decodeCore(b []byte) (*core.Snapshot, error) {
	sn := &core.Snapshot{}
	var err error
	if sn.NumPlaces, err = nextInt(&b); err != nil {
		return nil, corrupt("core places: %v", err)
	}
	if sn.NumStates, err = nextInt(&b); err != nil {
		return nil, corrupt("core states: %v", err)
	}
	steps, err := cluster.NextUvarint(&b)
	if err != nil {
		return nil, corrupt("core steps: %v", err)
	}
	sn.Steps = int64(steps)
	if sn.Arcs, err = nextInt(&b); err != nil {
		return nil, corrupt("core arcs: %v", err)
	}
	if sn.MultiFirings, err = nextInt(&b); err != nil {
		return nil, corrupt("core multi firings: %v", err)
	}
	if sn.SingleFirings, err = nextInt(&b); err != nil {
		return nil, corrupt("core single firings: %v", err)
	}
	pv, err := cluster.NextUvarint(&b)
	if err != nil {
		return nil, corrupt("core peak valid: %v", err)
	}
	sn.PeakValid = math.Float64frombits(pv)
	if sn.DeadStates, err = nextInts(&b); err != nil {
		return nil, corrupt("core dead states: %v", err)
	}
	nw, err := nextInt(&b)
	if err != nil {
		return nil, corrupt("core witness count: %v", err)
	}
	for i := 0; i < nw; i++ {
		key, err := cluster.NextBytes(&b)
		if err != nil {
			return nil, corrupt("core witness %d: %v", i, err)
		}
		m, ok := petri.MarkingFromKeyBytes(key)
		if !ok {
			return nil, corrupt("core witness %d malformed", i)
		}
		sn.Witnesses = append(sn.Witnesses, m)
	}
	blob, err := cluster.NextBytes(&b)
	if err != nil {
		return nil, corrupt("core family blob: %v", err)
	}
	sn.FamilyBlob = []byte(blob)
	nf, err := nextInt(&b)
	if err != nil {
		return nil, corrupt("core frame count: %v", err)
	}
	for i := 0; i < nf; i++ {
		var fr core.FrameSnap
		if fr.ID, err = nextInt(&b); err != nil {
			return nil, corrupt("core frame %d id: %v", i, err)
		}
		if fr.Next, err = nextInt(&b); err != nil {
			return nil, corrupt("core frame %d next: %v", i, err)
		}
		flags, err := cluster.NextUvarint(&b)
		if err != nil {
			return nil, corrupt("core frame %d flags: %v", i, err)
		}
		fr.Postponed = flags&1 != 0
		fr.FullDone = flags&2 != 0
		ns, err := nextInt(&b)
		if err != nil {
			return nil, corrupt("core frame %d succs: %v", i, err)
		}
		for j := 0; j < ns; j++ {
			var sc core.SuccSnap
			mf, err := cluster.NextUvarint(&b)
			if err != nil {
				return nil, corrupt("core frame %d succ %d: %v", i, j, err)
			}
			sc.Multiple = mf != 0
			fired, err := nextInts(&b)
			if err != nil {
				return nil, corrupt("core frame %d succ %d fired: %v", i, j, err)
			}
			sc.Fired = make([]petri.Trans, len(fired))
			for k, t := range fired {
				sc.Fired[k] = petri.Trans(t)
			}
			fr.Succs = append(fr.Succs, sc)
		}
		sn.Frames = append(sn.Frames, fr)
	}
	if len(b) != 0 {
		return nil, corrupt("core: %d trailing bytes", len(b))
	}
	return sn, nil
}
