package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/verify"
)

// runCheck dispatches on the check name, mirroring the server's request
// resolution.
func runCheck(t testing.TB, n *petri.Net, check string, bad []petri.Place, opts verify.Options) *verify.Report {
	t.Helper()
	var rep *verify.Report
	var err error
	switch check {
	case "deadlock":
		rep, err = verify.CheckDeadlock(n, opts)
	case "safety":
		rep, err = verify.CheckSafety(n, bad, opts)
	default:
		t.Fatalf("unknown check %q", check)
	}
	if err != nil {
		t.Fatalf("%s/%s: %v", n.Name(), check, err)
	}
	return rep
}

// capture runs the check until boundary `at`, stops there, and wraps
// the saved engine snapshot in a File the way the jobs subsystem does.
func capture(t testing.TB, n *petri.Net, check string, bad []petri.Place, opts verify.Options, at int64) *File {
	t.Helper()
	var snap *verify.EngineSnapshot
	o := opts
	o.Ckpt = &verify.Checkpointer{
		Poll: func(states int, boundary int64) verify.CkptAction {
			if boundary == at {
				return verify.CkptStop
			}
			return verify.CkptNone
		},
		Save: func(sn *verify.EngineSnapshot) error { snap = sn; return nil },
	}
	rep := runCheck(t, n, check, bad, o)
	if !rep.Checkpointed || snap == nil {
		t.Fatalf("%s/%s: run finished before boundary %d; pick a smaller one", n.Name(), check, at)
	}
	return &File{
		Key:         verify.RunKey(n, check, bad, opts),
		Check:       check,
		Bad:         bad,
		Net:         n,
		Engine:      opts.Engine,
		StopAtFirst: opts.StopAtFirst,
		Proviso:     opts.Proviso,
		Reduce:      opts.Reduce,
		MaxStates:   opts.MaxStates,
		MaxNodes:    opts.MaxNodes,
		Snap:        snap,
	}
}

// reportEqual compares every Report field a resumed run must reproduce
// (Elapsed is wall clock and excluded).
func reportEqual(a, b *verify.Report) bool {
	return a.Net == b.Net && a.Engine == b.Engine && a.Deadlock == b.Deadlock &&
		reflect.DeepEqual(a.Witness, b.Witness) && a.States == b.States &&
		a.PeakBDD == b.PeakBDD && a.PeakSets == b.PeakSets &&
		a.Complete == b.Complete && a.Aborted == b.Aborted &&
		a.Checkpointed == b.Checkpointed &&
		a.PlacesRemoved == b.PlacesRemoved && a.TransRemoved == b.TransRemoved
}

// ckptCases covers both container kinds across check types and the
// option flags the header encodes.
type ckptCase struct {
	label string
	net   *petri.Net
	check string
	bad   []petri.Place
	opts  verify.Options
	at    int64
}

func ckptCases() []ckptCase {
	nsdp := models.NSDP(4)
	eat0, _ := nsdp.PlaceByName("eat0")
	eat1, _ := nsdp.PlaceByName("eat1")
	rw := models.ReadersWriters(3)
	reading0, _ := rw.PlaceByName("reading0")
	writing, _ := rw.PlaceByName("writing")
	return []ckptCase{
		{"reach/deadlock", nsdp, "deadlock", nil, verify.Options{Engine: verify.Exhaustive}, 2},
		{"reach/safety", rw, "safety", []petri.Place{reading0, writing}, verify.Options{Engine: verify.Exhaustive}, 2},
		{"reach/reduced", models.Overtake(2), "deadlock", nil, verify.Options{Engine: verify.Exhaustive, Reduce: true}, 1},
		{"core/deadlock", nsdp, "deadlock", nil, verify.Options{Engine: verify.GPO}, 3},
		{"core/safety", nsdp, "safety", []petri.Place{eat0, eat1}, verify.Options{Engine: verify.GPO}, 3},
		{"core/explicit", models.Fig7(), "deadlock", nil, verify.Options{Engine: verify.GPOExplicit}, 2},
	}
}

// TestWriteReadRoundTrip pins that a checkpoint survives the disk
// format byte for byte: identity, options and engine snapshot all
// decode back equal.
func TestWriteReadRoundTrip(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.label, func(t *testing.T) {
			f := capture(t, tc.net, tc.check, tc.bad, tc.opts, tc.at)
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := Write(path, f); err != nil {
				t.Fatal(err)
			}
			got, err := Read(path)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key != f.Key {
				t.Errorf("key: %s != %s", got.Key.RunID(), f.Key.RunID())
			}
			if got.Check != f.Check || !reflect.DeepEqual(got.Bad, f.Bad) {
				t.Errorf("check/bad: %q/%v != %q/%v", got.Check, got.Bad, f.Check, f.Bad)
			}
			if !reflect.DeepEqual(got.Options(), f.Options()) {
				t.Errorf("options: %+v != %+v", got.Options(), f.Options())
			}
			if got.Boundary() != f.Boundary() || got.States() != f.States() {
				t.Errorf("boundary/states: %d/%d != %d/%d",
					got.Boundary(), got.States(), f.Boundary(), f.States())
			}
			if string(verify.AppendNetKey(nil, got.Net)) != string(verify.AppendNetKey(nil, f.Net)) {
				t.Error("net did not round-trip canonically")
			}
			if rs := f.Snap.Reach; rs != nil {
				g := got.Snap.Reach
				if g == nil {
					t.Fatal("reach snapshot decoded as core")
				}
				if !reflect.DeepEqual(g.States, rs.States) ||
					g.FrontierStart != rs.FrontierStart || g.Arcs != rs.Arcs ||
					g.Levels != rs.Levels ||
					!reflect.DeepEqual(g.DeadIDs, rs.DeadIDs) ||
					!reflect.DeepEqual(g.BadIDs, rs.BadIDs) {
					t.Error("reach snapshot did not round-trip")
				}
			} else {
				g := got.Snap.Core
				if g == nil {
					t.Fatal("core snapshot decoded as reach")
				}
				if g.NumPlaces != f.Snap.Core.NumPlaces || g.NumStates != f.Snap.Core.NumStates ||
					g.Steps != f.Snap.Core.Steps ||
					string(g.FamilyBlob) != string(f.Snap.Core.FamilyBlob) ||
					len(g.Frames) != len(f.Snap.Core.Frames) {
					t.Error("core snapshot did not round-trip")
				}
			}
		})
	}
}

// TestResumeFromFile is the end-to-end durability pin: kill, persist to
// disk, decode, resume — the final Report must be bit-identical to the
// uninterrupted run's.
func TestResumeFromFile(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.label, func(t *testing.T) {
			want := runCheck(t, tc.net, tc.check, tc.bad, tc.opts)
			f := capture(t, tc.net, tc.check, tc.bad, tc.opts, tc.at)
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := Write(path, f); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFor(path, f.Key)
			if err != nil {
				t.Fatal(err)
			}
			o := got.Options()
			o.Resume = got.Snap
			rep := runCheck(t, got.Net, got.Check, got.Bad, o)
			if !reportEqual(want, rep) {
				t.Errorf("resumed %+v != uninterrupted %+v", rep, want)
			}
		})
	}
}

// image builds an in-memory container for the corruption tests.
func image(t testing.TB, tc ckptCase) []byte {
	t.Helper()
	f := capture(t, tc.net, tc.check, tc.bad, tc.opts, tc.at)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// typedErr reports whether err maps to one of the package's typed
// failure modes — the "never a silent resume" guarantee.
func typedErr(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrUnsupported) ||
		errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt)
}

// TestTornTail truncates a valid container at every prefix length: all
// of them must surface as ErrBadMagic (inside the preamble) or ErrTorn,
// never as a successful decode or an untyped error.
func TestTornTail(t *testing.T) {
	cases := ckptCases()
	for _, tc := range []ckptCase{cases[0], cases[5]} { // one per kind
		t.Run(tc.label, func(t *testing.T) {
			b := image(t, tc)
			if _, err := Decode(b); err != nil {
				t.Fatalf("intact image: %v", err)
			}
			for i := 0; i < len(b); i++ {
				_, err := Decode(b[:i])
				if err == nil {
					t.Fatalf("truncation at %d/%d decoded successfully", i, len(b))
				}
				if i < len(magic) {
					if !errors.Is(err, ErrBadMagic) {
						t.Fatalf("truncation at %d: %v, want ErrBadMagic", i, err)
					}
				} else if !errors.Is(err, ErrTorn) {
					t.Fatalf("truncation at %d: %v, want ErrTorn", i, err)
				}
			}
		})
	}
}

// TestBitFlip flips one bit in every byte of a valid container: each
// mutation must surface as a typed error — the digest, the per-frame
// codecs and the RunKey self-check leave no silent path.
func TestBitFlip(t *testing.T) {
	cases := ckptCases()
	for _, tc := range []ckptCase{cases[0], cases[5]} { // one per kind
		t.Run(tc.label, func(t *testing.T) {
			b := image(t, tc)
			for i := 0; i < len(b); i++ {
				for _, bit := range []byte{0x01, 0x80} {
					mut := append([]byte(nil), b...)
					mut[i] ^= bit
					f, err := Decode(mut)
					if err == nil {
						t.Fatalf("bit flip at byte %d (mask %#x) decoded successfully: %+v", i, bit, f)
					}
					if !typedErr(err) {
						t.Fatalf("bit flip at byte %d (mask %#x): untyped error %v", i, bit, err)
					}
				}
			}
		})
	}
}

// TestUnsupportedVersion pins the forward-compatibility refusal: a
// container claiming a future format version is ErrUnsupported before
// anything else is trusted.
func TestUnsupportedVersion(t *testing.T) {
	b := image(t, ckptCases()[5])
	// Layout: magic(8) + frame length(4) + type 'H' + header payload,
	// whose first byte is the uvarint format version.
	if b[12] != frameHeader || b[13] != version {
		t.Fatalf("unexpected layout: type %q version byte %d", b[12], b[13])
	}
	mut := append([]byte(nil), b...)
	mut[13] = version + 1
	if _, err := Decode(mut); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("future version: %v, want ErrUnsupported", err)
	}
}

// TestReadForKeyMismatch pins the wrong-run refusal.
func TestReadForKeyMismatch(t *testing.T) {
	tc := ckptCases()[0]
	f := capture(t, tc.net, tc.check, tc.bad, tc.opts, tc.at)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	other := f.Key
	other[0] ^= 0xFF
	if _, err := ReadFor(path, other); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("wrong key: %v, want ErrKeyMismatch", err)
	}
	if _, err := ReadFor(path, f.Key); err != nil {
		t.Fatalf("right key: %v", err)
	}
}

// TestWriteValidation rejects Files without exactly one engine snapshot.
func TestWriteValidation(t *testing.T) {
	dir := t.TempDir()
	for label, f := range map[string]*File{
		"nil snap":   {},
		"empty snap": {Snap: &verify.EngineSnapshot{}},
	} {
		if err := Write(filepath.Join(dir, "x.ckpt"), f); err == nil {
			t.Errorf("%s: Write succeeded", label)
		}
	}
}
