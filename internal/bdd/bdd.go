// Package bdd implements reduced ordered binary decision diagrams
// (Bryant 1986, the paper's reference [2]): hash-consed nodes, the ITE
// operator, quantification, the relational product and variable renaming —
// everything the symbolic reachability engine of internal/symbolic (the
// paper's SMV stand-in, Section 2.4) needs, plus the model-set extraction
// used to build the generalized analysis' initial valid sets as ZDDs.
//
// Nodes are interned in a manager-wide unique table, so structural
// equality is pointer (id) equality, and the manager records its peak node
// count — the "Peak BDD-size" statistic of the paper's Table 1.
package bdd

import (
	"fmt"
	"math"
)

// Node is a BDD node reference. The constants False and True are the
// terminals; all other values index the manager's node arena.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type node struct {
	level     int32 // variable index; terminals use level = maxLevel
	low, high Node
}

// Manager owns a BDD forest over a fixed number of ordered variables.
// Variable i is at level i: smaller levels are tested first.
type Manager struct {
	nvars  int
	nodes  []node
	unique map[[3]int32]Node
	ite    map[[3]Node]Node
	and2   map[[2]Node]Node
	peak   int

	// Plain (non-atomic) operation statistics: the manager is
	// single-goroutine by design, and these must cost one increment on
	// the hot path.
	uniqueHits   int64
	uniqueMisses int64
	cacheHits    int64 // ite + and2 memo hits
	cacheMisses  int64
}

// Stats is a snapshot of the manager's internal counters: unique-table
// hits (node reuse) vs. misses (node creation), and computed-table (ITE
// and And memo) hits vs. misses. Nodes are never garbage-collected, so
// Size is also the lifetime allocation count.
type Stats struct {
	Nodes        int
	Peak         int
	UniqueHits   int64
	UniqueMisses int64
	CacheHits    int64
	CacheMisses  int64
}

// Stats returns the current operation statistics.
func (m *Manager) Stats() Stats {
	return Stats{
		Nodes:        len(m.nodes),
		Peak:         m.peak,
		UniqueHits:   m.uniqueHits,
		UniqueMisses: m.uniqueMisses,
		CacheHits:    m.cacheHits,
		CacheMisses:  m.cacheMisses,
	}
}

// NewManager returns a manager over nvars ordered variables.
func NewManager(nvars int) *Manager {
	m := &Manager{
		nvars:  nvars,
		unique: make(map[[3]int32]Node),
		ite:    make(map[[3]Node]Node),
		and2:   make(map[[2]Node]Node),
	}
	term := int32(nvars)
	m.nodes = []node{{level: term}, {level: term}} // False, True
	m.peak = 2
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Size returns the number of currently allocated nodes (terminals
// included). Nodes are never freed, so this is also the peak.
func (m *Manager) Size() int { return len(m.nodes) }

// Peak returns the largest node count observed.
func (m *Manager) Peak() int { return m.peak }

// Level returns the variable level tested by n (nvars for terminals).
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// Low and High return the cofactors of an internal node.
func (m *Manager) Low(n Node) Node  { return m.nodes[n].low }
func (m *Manager) High(n Node) Node { return m.nodes[n].high }

// mk returns the canonical node (level, low, high), applying the
// redundant-test reduction rule.
func (m *Manager) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	key := [3]int32{level, int32(low), int32(high)}
	if n, ok := m.unique[key]; ok {
		m.uniqueHits++
		return n
	}
	m.uniqueMisses++
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	m.unique[key] = n
	if len(m.nodes) > m.peak {
		m.peak = len(m.nodes)
	}
	return n
}

// Var returns the function of variable v.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.nvars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the negation of variable v.
func (m *Manager) NVar(v int) Node { return m.mk(int32(v), True, False) }

// ITE computes if-then-else(f, g, h), the universal binary operator.
func (m *Manager) ITE(f, g, h Node) Node {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Node{f, g, h}
	if r, ok := m.ite[key]; ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.ite[key] = r
	return r
}

func (m *Manager) cofactors(f Node, level int32) (lo, hi Node) {
	if m.nodes[f].level == level {
		return m.nodes[f].low, m.nodes[f].high
	}
	return f, f
}

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node {
	if f > g {
		f, g = g, f
	}
	switch {
	case f == False:
		return False
	case f == True:
		return g
	case f == g:
		return f
	}
	key := [2]Node{f, g}
	if r, ok := m.and2[key]; ok {
		m.cacheHits++
		return r
	}
	m.cacheMisses++
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	r := m.mk(top, m.And(f0, g0), m.And(f1, g1))
	m.and2[key] = r
	return r
}

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node { return m.ITE(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Node) Node { return m.ITE(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node { return m.ITE(f, m.Not(g), g) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Node) Node { return m.ITE(f, g, True) }

// Equiv returns f ↔ g.
func (m *Manager) Equiv(f, g Node) Node { return m.ITE(f, g, m.Not(g)) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Node) Node {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Node) Node {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Exists existentially quantifies the variables for which vars[v] is true.
func (m *Manager) Exists(f Node, vars []bool) Node {
	memo := make(map[Node]Node)
	var rec func(Node) Node
	rec = func(f Node) Node {
		lvl := m.nodes[f].level
		if int(lvl) >= m.nvars {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		lo, hi := rec(m.nodes[f].low), rec(m.nodes[f].high)
		var r Node
		if vars[lvl] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(lvl, lo, hi)
		}
		memo[f] = r
		return r
	}
	return rec(f)
}

// AndExists computes ∃vars. f ∧ g without building the full conjunction —
// the relational product at the heart of symbolic image computation.
func (m *Manager) AndExists(f, g Node, vars []bool) Node {
	type key struct{ f, g Node }
	memo := make(map[key]Node)
	var rec func(f, g Node) Node
	rec = func(f, g Node) Node {
		if f == False || g == False {
			return False
		}
		if f == True && g == True {
			return True
		}
		if f > g {
			f, g = g, f
		}
		k := key{f, g}
		if r, ok := memo[k]; ok {
			return r
		}
		top := m.nodes[f].level
		if l := m.nodes[g].level; l < top {
			top = l
		}
		if int(top) >= m.nvars {
			return m.And(f, g)
		}
		f0, f1 := m.cofactors(f, top)
		g0, g1 := m.cofactors(g, top)
		var r Node
		if vars[top] {
			lo := rec(f0, g0)
			if lo == True {
				r = True
			} else {
				r = m.Or(lo, rec(f1, g1))
			}
		} else {
			r = m.mk(top, rec(f0, g0), rec(f1, g1))
		}
		memo[k] = r
		return r
	}
	return rec(f, g)
}

// Rename maps each variable v to perm[v] (a level-respecting permutation is
// not required, but the common use here — shifting primed variables onto
// unprimed ones in an interleaved order — is monotone, which keeps the
// recursion sound; callers must only use monotone renamings).
func (m *Manager) Rename(f Node, perm []int) Node {
	memo := make(map[Node]Node)
	var rec func(Node) Node
	rec = func(f Node) Node {
		lvl := m.nodes[f].level
		if int(lvl) >= m.nvars {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		v := m.Var(perm[lvl])
		r := m.ITE(v, rec(m.nodes[f].high), rec(m.nodes[f].low))
		memo[f] = r
		return r
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments of f over all
// variables of the manager.
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(f Node) float64 {
		if f == False {
			return 0
		}
		lvl := int(m.nodes[f].level)
		if f == True {
			return math.Exp2(float64(m.nvars - lvl))
		}
		if c, ok := memo[f]; ok {
			return c
		}
		lo, hi := m.nodes[f].low, m.nodes[f].high
		c := rec(lo)*math.Exp2(float64(int(m.nodes[lo].level)-lvl-1)) +
			rec(hi)*math.Exp2(float64(int(m.nodes[hi].level)-lvl-1))
		memo[f] = c
		return c
	}
	if f == True {
		return math.Exp2(float64(m.nvars))
	}
	if f == False {
		return 0
	}
	return rec(f) * math.Exp2(float64(m.nodes[f].level))
}

// AnySat returns one satisfying assignment of f (value per variable;
// unconstrained variables are reported false), or ok=false if f is False.
func (m *Manager) AnySat(f Node) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.nvars)
	for f != True {
		n := m.nodes[f]
		if n.low != False {
			f = n.low
		} else {
			assign[n.level] = true
			f = n.high
		}
	}
	return assign, true
}

// NodeCount returns the number of distinct nodes reachable from f
// (terminals excluded).
func (m *Manager) NodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(f Node) {
		if f <= True || seen[f] {
			return
		}
		seen[f] = true
		rec(m.nodes[f].low)
		rec(m.nodes[f].high)
	}
	rec(f)
	return len(seen)
}

// Support reports which variables f depends on.
func (m *Manager) Support(f Node) []bool {
	out := make([]bool, m.nvars)
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(f Node) {
		if f <= True || seen[f] {
			return
		}
		seen[f] = true
		out[m.nodes[f].level] = true
		rec(m.nodes[f].low)
		rec(m.nodes[f].high)
	}
	rec(f)
	return out
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f Node, assign []bool) bool {
	for f > True {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}
