package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := NewManager(4)
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("negation of terminals")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("binary ops on terminals")
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a ∧ b) ∨ c built two different ways must be the same node.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(m.And(a, b)), m.Not(c)))
	if f1 != f2 {
		t.Errorf("equivalent functions got different nodes: %d vs %d", f1, f2)
	}
}

func TestVarNVar(t *testing.T) {
	m := NewManager(2)
	if m.And(m.Var(0), m.NVar(0)) != False {
		t.Error("x ∧ ¬x must be False")
	}
	if m.Or(m.Var(0), m.NVar(0)) != True {
		t.Error("x ∨ ¬x must be True")
	}
}

// TestAgainstTruthTable exhaustively compares BDD evaluation with direct
// boolean evaluation for randomly constructed formulas over 6 variables.
func TestAgainstTruthTable(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := NewManager(nv)
		// Build a random formula tree and in parallel an evaluator.
		var build func(depth int) (Node, func([]bool) bool)
		build = func(depth int) (Node, func([]bool) bool) {
			if depth == 0 || rng.Intn(4) == 0 {
				v := rng.Intn(nv)
				if rng.Intn(2) == 0 {
					return m.Var(v), func(a []bool) bool { return a[v] }
				}
				return m.NVar(v), func(a []bool) bool { return !a[v] }
			}
			l, fl := build(depth - 1)
			r, fr := build(depth - 1)
			switch rng.Intn(4) {
			case 0:
				return m.And(l, r), func(a []bool) bool { return fl(a) && fr(a) }
			case 1:
				return m.Or(l, r), func(a []bool) bool { return fl(a) || fr(a) }
			case 2:
				return m.Xor(l, r), func(a []bool) bool { return fl(a) != fr(a) }
			default:
				return m.Implies(l, r), func(a []bool) bool { return !fl(a) || fr(a) }
			}
		}
		f, eval := build(4)
		count := 0.0
		assign := make([]bool, nv)
		for bits := 0; bits < 1<<nv; bits++ {
			for v := 0; v < nv; v++ {
				assign[v] = bits&(1<<v) != 0
			}
			want := eval(assign)
			if got := m.Eval(f, assign); got != want {
				t.Fatalf("trial %d: Eval mismatch at %v: got %v want %v", trial, assign, got, want)
			}
			if want {
				count++
			}
		}
		if got := m.SatCount(f); got != count {
			t.Errorf("trial %d: SatCount=%v want %v", trial, got, count)
		}
		if assignment, ok := m.AnySat(f); ok {
			if !m.Eval(f, assignment) {
				t.Errorf("trial %d: AnySat returned a non-model", trial)
			}
		} else if count != 0 {
			t.Errorf("trial %d: AnySat found nothing but SatCount=%v", trial, count)
		}
	}
}

func TestExists(t *testing.T) {
	m := NewManager(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	vars := []bool{true, false, false}
	// ∃a. a∧b = b
	if got := m.Exists(f, vars); got != b {
		t.Errorf("∃a.(a∧b) != b")
	}
	// ∃a. a = True
	if got := m.Exists(a, vars); got != True {
		t.Errorf("∃a.a != True")
	}
}

// TestAndExistsMatchesComposition checks the relational product against
// And followed by Exists on random formulas.
func TestAndExistsMatchesComposition(t *testing.T) {
	const nv = 8
	rng := rand.New(rand.NewSource(7))
	m := NewManager(nv)
	randForm := func() Node {
		f := True
		for i := 0; i < 5; i++ {
			cl := False
			for j := 0; j < 3; j++ {
				v := rng.Intn(nv)
				if rng.Intn(2) == 0 {
					cl = m.Or(cl, m.Var(v))
				} else {
					cl = m.Or(cl, m.NVar(v))
				}
			}
			f = m.And(f, cl)
		}
		return f
	}
	for trial := 0; trial < 30; trial++ {
		f, g := randForm(), randForm()
		vars := make([]bool, nv)
		for v := range vars {
			vars[v] = rng.Intn(2) == 0
		}
		want := m.Exists(m.And(f, g), vars)
		got := m.AndExists(f, g, vars)
		if got != want {
			t.Fatalf("trial %d: AndExists != Exists∘And", trial)
		}
	}
}

func TestRename(t *testing.T) {
	m := NewManager(4)
	// f = x0 ∧ ¬x1, rename 0→2, 1→3.
	f := m.And(m.Var(0), m.NVar(1))
	perm := []int{2, 3, 2, 3}
	g := m.Rename(f, perm)
	want := m.And(m.Var(2), m.NVar(3))
	if g != want {
		t.Error("rename mismatch")
	}
}

// TestSatCountProperty checks |f ∨ g| + |f ∧ g| = |f| + |g| on random
// inputs via testing/quick.
func TestSatCountProperty(t *testing.T) {
	const nv = 10
	m := NewManager(nv)
	mk := func(seed int64) Node {
		rng := rand.New(rand.NewSource(seed))
		f := True
		for i := 0; i < 4; i++ {
			cl := False
			for j := 0; j < 3; j++ {
				v := rng.Intn(nv)
				if rng.Intn(2) == 0 {
					cl = m.Or(cl, m.Var(v))
				} else {
					cl = m.Or(cl, m.NVar(v))
				}
			}
			f = m.And(f, cl)
		}
		return f
	}
	prop := func(s1, s2 int64) bool {
		f, g := mk(s1), mk(s2)
		return m.SatCount(m.Or(f, g))+m.SatCount(m.And(f, g)) ==
			m.SatCount(f)+m.SatCount(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSupport(t *testing.T) {
	m := NewManager(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(4)))
	sup := m.Support(f)
	want := []bool{false, true, false, true, true}
	for v := range want {
		if sup[v] != want[v] {
			t.Errorf("support[%d]=%v want %v", v, sup[v], want[v])
		}
	}
}

func TestPeakGrows(t *testing.T) {
	m := NewManager(16)
	f := True
	for v := 0; v < 16; v += 2 {
		f = m.And(f, m.Xor(m.Var(v), m.Var(v+1)))
	}
	if m.Peak() < 16 {
		t.Errorf("peak %d suspiciously small", m.Peak())
	}
	if m.NodeCount(f) == 0 {
		t.Error("node count of non-terminal is zero")
	}
}
