package petri

import (
	"testing"
)

func buildDiamond(t *testing.T) *Net {
	t.Helper()
	b := NewBuilder("diamond")
	p0 := b.Place("p0")
	p1 := b.Place("p1")
	p2 := b.Place("p2")
	p3 := b.Place("p3")
	b.TransArcs("a", []Place{p0}, []Place{p1})
	b.TransArcs("b", []Place{p0}, []Place{p2})
	b.TransArcs("c", []Place{p1, p2}, []Place{p3})
	b.Mark(p0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderBasics(t *testing.T) {
	n := buildDiamond(t)
	if n.NumPlaces() != 4 || n.NumTrans() != 3 {
		t.Fatalf("sizes wrong: %d places %d trans", n.NumPlaces(), n.NumTrans())
	}
	a, ok := n.TransByName("a")
	if !ok {
		t.Fatal("missing transition a")
	}
	if len(n.Pre(a)) != 1 || n.PlaceName(n.Pre(a)[0]) != "p0" {
		t.Error("preset of a wrong")
	}
	c, _ := n.TransByName("c")
	if len(n.Pre(c)) != 2 {
		t.Error("preset of c wrong")
	}
	p0, _ := n.PlaceByName("p0")
	if len(n.PostT(p0)) != 2 {
		t.Error("p0 postset wrong")
	}
	if _, ok := n.PlaceByName("nope"); ok {
		t.Error("found nonexistent place")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(b *Builder){
		"dup-place": func(b *Builder) { b.Place("x"); b.Place("x") },
		"dup-trans": func(b *Builder) {
			p := b.Place("p")
			b.TransArcs("t", []Place{p}, nil)
			b.TransArcs("t", []Place{p}, nil)
		},
		"dup-arc": func(b *Builder) {
			p := b.Place("p")
			tt := b.Trans("t")
			b.In(tt, p, p)
		},
		"empty-preset": func(b *Builder) {
			p := b.Place("p")
			tt := b.Trans("t")
			b.Out(tt, p)
		},
		"double-mark": func(b *Builder) {
			p := b.Place("p")
			tt := b.Trans("t")
			b.In(tt, p)
			b.Mark(p, p)
		},
		"unknown-place": func(b *Builder) {
			tt := b.Trans("t")
			b.In(tt, Place(42))
		},
	}
	for name, f := range cases {
		b := NewBuilder(name)
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected build error", name)
		}
	}
}

func TestEnablingAndFiring(t *testing.T) {
	n := buildDiamond(t)
	m := n.InitialMarking()
	a, _ := n.TransByName("a")
	b, _ := n.TransByName("b")
	c, _ := n.TransByName("c")
	if !n.Enabled(m, a) || !n.Enabled(m, b) || n.Enabled(m, c) {
		t.Fatal("initial enabling wrong")
	}
	m1, safe := n.Fire(m, a)
	if !safe {
		t.Fatal("safe firing flagged unsafe")
	}
	if n.Enabled(m1, a) || n.Enabled(m1, b) || n.Enabled(m1, c) {
		t.Fatal("after a: nothing should be enabled (p0 consumed)")
	}
	p1, _ := n.PlaceByName("p1")
	if !m1.Has(p1) {
		t.Error("token not moved to p1")
	}
	if m.Has(p1) {
		t.Error("Fire mutated its input marking")
	}
	if !n.IsDeadlock(m1) {
		t.Error("m1 is a deadlock")
	}
}

func TestFirePanicsWhenDisabled(t *testing.T) {
	n := buildDiamond(t)
	c, _ := n.TransByName("c")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Fire(n.InitialMarking(), c)
}

func TestUnsafeFiringDetected(t *testing.T) {
	b := NewBuilder("unsafe")
	p := b.Place("p")
	q := b.Place("q")
	b.TransArcs("t", []Place{p}, []Place{q})
	b.Mark(p, q) // q already marked: firing t double-marks q
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := n.TransByName("t")
	if _, safe := n.Fire(n.InitialMarking(), tt); safe {
		t.Error("unsafe firing not detected")
	}
}

func TestConflictRelation(t *testing.T) {
	n := buildDiamond(t)
	a, _ := n.TransByName("a")
	b, _ := n.TransByName("b")
	c, _ := n.TransByName("c")
	if !n.Conflict(a, b) {
		t.Error("a and b share p0: must conflict")
	}
	if n.Conflict(a, a) {
		t.Error("self-conflict")
	}
	// c shares p1 with nothing else (only consumer) — but a and c share
	// no input place; c is in conflict with no one.
	if n.Conflict(a, c) || n.Conflict(b, c) {
		t.Error("spurious conflicts")
	}
	if got := n.ConflictSet(a); len(got) != 1 || got[0] != b {
		t.Errorf("ConflictSet(a)=%v", got)
	}
}

func TestClusters(t *testing.T) {
	n := buildDiamond(t)
	cl := n.Clusters()
	// {a,b} and {c}.
	if len(cl) != 2 {
		t.Fatalf("%d clusters, want 2", len(cl))
	}
	a, _ := n.TransByName("a")
	b, _ := n.TransByName("b")
	if n.ClusterOf(a) != n.ClusterOf(b) {
		t.Error("a and b must share a cluster")
	}
}

func TestMarkingKeyAndString(t *testing.T) {
	n := buildDiamond(t)
	m := n.InitialMarking()
	if m.Key() != n.InitialMarking().Key() {
		t.Error("equal markings, different keys")
	}
	p1, _ := n.PlaceByName("p1")
	m2 := m.Clone()
	m2.Set(p1)
	if m.Key() == m2.Key() {
		t.Error("different markings share a key")
	}
	if got := m.String(n); got != "{p0}" {
		t.Errorf("String=%q", got)
	}
	if !m2.Equal(m2.Clone()) || m.Equal(m2) {
		t.Error("Equal wrong")
	}
}

func TestCloneBuilderRoundTrip(t *testing.T) {
	n := buildDiamond(t)
	n2, err := CloneBuilder(n).Build()
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumPlaces() != n.NumPlaces() || n2.NumTrans() != n.NumTrans() {
		t.Fatal("clone size mismatch")
	}
	if !n2.InitialMarking().Equal(n.InitialMarking()) {
		t.Error("clone initial marking differs")
	}
	for tr := Trans(0); int(tr) < n.NumTrans(); tr++ {
		if len(n.Pre(tr)) != len(n2.Pre(tr)) || len(n.Post(tr)) != len(n2.Post(tr)) {
			t.Errorf("arcs of %s differ", n.TransName(tr))
		}
	}
}

func TestWithSafetyMonitor(t *testing.T) {
	n := buildDiamond(t)
	p1, _ := n.PlaceByName("p1")
	p2, _ := n.PlaceByName("p2")
	mon, trap, err := WithSafetyMonitor(n, []Place{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if mon.NumPlaces() != n.NumPlaces()+2 {
		t.Error("monitor must add run and trap places")
	}
	if mon.NumTrans() != n.NumTrans()+1 {
		t.Error("monitor must add one transition")
	}
	if mon.PlaceName(trap) != "__trap" {
		t.Errorf("trap place name %q", mon.PlaceName(trap))
	}
	// Every original transition now self-loops on run: they all conflict.
	a, _ := mon.TransByName("a")
	c, _ := mon.TransByName("c")
	if !mon.Conflict(a, c) {
		t.Error("run self-loop must make all transitions conflict")
	}
	if _, _, err := WithSafetyMonitor(n, nil); err == nil {
		t.Error("empty bad set must error")
	}
}
