package petri

import "fmt"

// CloneBuilder returns a Builder pre-populated with the net's places,
// transitions, arcs and initial marking, so a derived net can be built.
// Place and transition identifiers are preserved.
func CloneBuilder(n *Net) *Builder {
	b := NewBuilder(n.name)
	for p := 0; p < n.NumPlaces(); p++ {
		b.Place(n.placeNames[p])
	}
	for t := 0; t < n.NumTrans(); t++ {
		tt := b.Trans(n.transNames[t])
		b.In(tt, n.pre[t]...)
		b.Out(tt, n.post[t]...)
	}
	b.Mark(n.initial...)
	return b
}

// Surgery describes a structural rewrite of a net: places and transitions
// to drop, and transitions whose postset is replaced wholesale. It is the
// mutation primitive under the structural reduction rules
// (internal/structural/reduce), built on the CloneBuilder idiom: the
// original net is never touched, Apply assembles a fresh immutable Net.
type Surgery struct {
	DropPlaces []Place
	DropTrans  []Trans
	// ReplacePost maps a kept transition to its new postset. Entries may
	// mention dropped places (the arcs are elided) and may repeat a place
	// (duplicates are collapsed) — agglomeration unions postsets, so the
	// caller should not have to pre-clean them.
	ReplacePost map[Trans][]Place
}

// Apply performs the surgery and returns the rewritten net together with
// the identity maps back into the operated-on net: placeOf[i] (resp.
// transOf[i]) is the old index of the new net's place (transition) i.
// Presets are never edited, only elided when their place is dropped; a
// kept transition whose whole preset was dropped fails Build's no-empty-
// preset rule, which is exactly the guard the reduction rules rely on.
func (s Surgery) Apply(n *Net) (*Net, []Place, []Trans, error) {
	dropP := make([]bool, n.NumPlaces())
	for _, p := range s.DropPlaces {
		dropP[p] = true
	}
	dropT := make([]bool, n.NumTrans())
	for _, t := range s.DropTrans {
		dropT[t] = true
	}
	b := NewBuilder(n.name)
	newOf := make([]Place, n.NumPlaces())
	placeOf := make([]Place, 0, n.NumPlaces())
	for p := 0; p < n.NumPlaces(); p++ {
		newOf[p] = -1
		if !dropP[p] {
			newOf[p] = b.Place(n.placeNames[p])
			placeOf = append(placeOf, Place(p))
		}
	}
	transOf := make([]Trans, 0, n.NumTrans())
	for t := 0; t < n.NumTrans(); t++ {
		if dropT[t] {
			continue
		}
		nt := b.Trans(n.transNames[t])
		transOf = append(transOf, Trans(t))
		for _, p := range n.pre[t] {
			if !dropP[p] {
				b.In(nt, newOf[p])
			}
		}
		post := n.post[t]
		if rp, ok := s.ReplacePost[Trans(t)]; ok {
			post = rp
		}
		var added []Place
		for _, p := range post {
			if dropP[p] || containsPlace(added, newOf[p]) {
				continue
			}
			added = append(added, newOf[p])
			b.Out(nt, newOf[p])
		}
	}
	for _, p := range n.initial {
		if !dropP[p] {
			b.Mark(newOf[p])
		}
	}
	net, err := b.Build()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("petri: surgery: %w", err)
	}
	return net, placeOf, transOf, nil
}

// WithSafetyMonitor implements the classical reduction of a safety check
// to a deadlock check (Section 4 of the paper, citing Godefroid–Wolper):
// it returns a net extended with
//
//   - a "run" place, marked initially, that every original transition
//     needs and returns (a self-loop), and
//   - a monitor transition consuming the run place and all bad places.
//
// The bad marking (all places of bad simultaneously marked) is reachable
// in the original net iff the extended net can reach a deadlock in which
// the trap place is marked: once the monitor fires, the run token is gone
// and nothing can move.
//
// Note that the run self-loop serializes the whole net — every pair of
// transitions now conflicts — which is exactly why the paper reports such
// reduced checks as more expensive for partial-order methods.
func WithSafetyMonitor(n *Net, bad []Place) (*Net, Place, error) {
	if len(bad) == 0 {
		return nil, 0, fmt.Errorf("petri: safety monitor needs at least one place")
	}
	b := CloneBuilder(n)
	run := b.Place("__run")
	trap := b.Place("__trap")
	b.Mark(run)
	// Every original transition self-loops on run.
	for t := Trans(0); int(t) < n.NumTrans(); t++ {
		b.In(t, run)
		b.Out(t, run)
	}
	mon := b.Trans("__monitor")
	b.In(mon, run)
	b.In(mon, bad...)
	b.Out(mon, trap)
	net, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	trapPlace, _ := net.PlaceByName("__trap")
	return net, trapPlace, nil
}
