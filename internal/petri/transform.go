package petri

import "fmt"

// CloneBuilder returns a Builder pre-populated with the net's places,
// transitions, arcs and initial marking, so a derived net can be built.
// Place and transition identifiers are preserved.
func CloneBuilder(n *Net) *Builder {
	b := NewBuilder(n.name)
	for p := 0; p < n.NumPlaces(); p++ {
		b.Place(n.placeNames[p])
	}
	for t := 0; t < n.NumTrans(); t++ {
		tt := b.Trans(n.transNames[t])
		b.In(tt, n.pre[t]...)
		b.Out(tt, n.post[t]...)
	}
	b.Mark(n.initial...)
	return b
}

// WithSafetyMonitor implements the classical reduction of a safety check
// to a deadlock check (Section 4 of the paper, citing Godefroid–Wolper):
// it returns a net extended with
//
//   - a "run" place, marked initially, that every original transition
//     needs and returns (a self-loop), and
//   - a monitor transition consuming the run place and all bad places.
//
// The bad marking (all places of bad simultaneously marked) is reachable
// in the original net iff the extended net can reach a deadlock in which
// the trap place is marked: once the monitor fires, the run token is gone
// and nothing can move.
//
// Note that the run self-loop serializes the whole net — every pair of
// transitions now conflicts — which is exactly why the paper reports such
// reduced checks as more expensive for partial-order methods.
func WithSafetyMonitor(n *Net, bad []Place) (*Net, Place, error) {
	if len(bad) == 0 {
		return nil, 0, fmt.Errorf("petri: safety monitor needs at least one place")
	}
	b := CloneBuilder(n)
	run := b.Place("__run")
	trap := b.Place("__trap")
	b.Mark(run)
	// Every original transition self-loops on run.
	for t := Trans(0); int(t) < n.NumTrans(); t++ {
		b.In(t, run)
		b.Out(t, run)
	}
	mon := b.Trans("__monitor")
	b.In(mon, run)
	b.In(mon, bad...)
	b.Out(mon, trap)
	net, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	trapPlace, _ := net.PlaceByName("__trap")
	return net, trapPlace, nil
}
