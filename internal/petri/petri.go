// Package petri implements safe (1-bounded) place/transition Petri nets:
// the structure ⟨P, T, F, m₀⟩ of Definition 2.1 of the paper, the classical
// enabling and firing rules (Definitions 2.3 and 2.4), and the structural
// conflict relation and maximal conflict sets (Definition 2.2) on which the
// generalized partial-order analysis is built.
//
// Nets are constructed with a Builder and are immutable afterwards, so a
// *Net may be shared freely between concurrent analyses.
package petri

import (
	"fmt"
	"sort"
)

// Place identifies a place of a net by its dense index.
type Place int32

// Trans identifies a transition of a net by its dense index.
type Trans int32

// Net is an immutable safe Petri net ⟨P, T, F, m₀⟩.
type Net struct {
	name string

	placeNames []string
	transNames []string

	pre  [][]Place // pre[t]:  •t, sorted
	post [][]Place // post[t]: t•, sorted

	preT  [][]Trans // preT[p]:  •p (transitions producing into p), sorted
	postT [][]Trans // postT[p]: p• (transitions consuming from p), sorted

	initial []Place // initially marked places, sorted

	clusters   [][]Trans // connected components of the conflict graph
	clusterOf  []int     // transition -> cluster index
	markWords  int       // words per Marking
	selfLoop   []bool    // selfLoop[t]: •t ∩ t• ≠ ∅
	initMark   Marking
	conflictTo []map[Trans]bool // adjacency of the conflict graph

	// conflictBits is a dense |T|×|T| adjacency bitset (conflictStride
	// words per transition) that serves Conflict() with one bit test
	// instead of a map lookup; the analysis engines probe the conflict
	// relation O(|enabled|²) per state. Built only while |T| ≤
	// conflictBitsMax keeps it within a few MB; beyond that Conflict
	// falls back to the map adjacency.
	conflictBits   []uint64
	conflictStride int
}

// conflictBitsMax bounds the transition count for which the dense
// conflict bitset is materialized (memory is |T|²/8 bytes: 2 MB at the
// cap).
const conflictBitsMax = 4096

// Name returns the net's name.
func (n *Net) Name() string { return n.name }

// NumPlaces returns |P|.
func (n *Net) NumPlaces() int { return len(n.placeNames) }

// NumTrans returns |T|.
func (n *Net) NumTrans() int { return len(n.transNames) }

// PlaceName returns the name of p.
func (n *Net) PlaceName(p Place) string { return n.placeNames[p] }

// TransName returns the name of t.
func (n *Net) TransName(t Trans) string { return n.transNames[t] }

// Pre returns •t, the input places of t. The caller must not modify it.
func (n *Net) Pre(t Trans) []Place { return n.pre[t] }

// Post returns t•, the output places of t. The caller must not modify it.
func (n *Net) Post(t Trans) []Place { return n.post[t] }

// PreT returns •p, the transitions with an arc into p. Read-only.
func (n *Net) PreT(p Place) []Trans { return n.preT[p] }

// PostT returns p•, the transitions consuming from p. Read-only.
func (n *Net) PostT(p Place) []Trans { return n.postT[p] }

// InitialPlaces returns the initially marked places. Read-only.
func (n *Net) InitialPlaces() []Place { return n.initial }

// PlaceByName returns the place with the given name.
func (n *Net) PlaceByName(name string) (Place, bool) {
	for i, pn := range n.placeNames {
		if pn == name {
			return Place(i), true
		}
	}
	return -1, false
}

// TransByName returns the transition with the given name.
func (n *Net) TransByName(name string) (Trans, bool) {
	for i, tn := range n.transNames {
		if tn == name {
			return Trans(i), true
		}
	}
	return -1, false
}

// Conflict reports whether t and u share an input place (Definition 2.2).
// A transition is not considered in conflict with itself.
func (n *Net) Conflict(t, u Trans) bool {
	if n.conflictBits != nil {
		w := n.conflictBits[int(t)*n.conflictStride+int(u)>>6]
		return w&(1<<(uint(u)&63)) != 0
	}
	if t == u {
		return false
	}
	return n.conflictTo[t][u]
}

// ConflictSet returns the transitions in structural conflict with t,
// excluding t itself, in increasing order.
func (n *Net) ConflictSet(t Trans) []Trans {
	out := make([]Trans, 0, len(n.conflictTo[t]))
	for u := range n.conflictTo[t] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clusters returns the maximal conflict sets of the net: the connected
// components of the conflict graph, each sorted, components ordered by
// their smallest member. Conflict-free transitions form singleton clusters.
func (n *Net) Clusters() [][]Trans { return n.clusters }

// ClusterOf returns the index into Clusters() of the maximal conflict set
// containing t.
func (n *Net) ClusterOf(t Trans) int { return n.clusterOf[t] }

// Builder accumulates places, transitions, arcs and the initial marking,
// then produces an immutable Net. Errors (duplicate names, duplicate arcs,
// dangling references) are accumulated and reported by Build.
type Builder struct {
	name    string
	places  []string
	trans   []string
	pre     [][]Place
	post    [][]Place
	initial map[Place]bool
	pIndex  map[string]Place
	tIndex  map[string]Trans
	errs    []error
}

// NewBuilder returns a Builder for a net with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		initial: make(map[Place]bool),
		pIndex:  make(map[string]Place),
		tIndex:  make(map[string]Trans),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Place adds a place with the given name and returns its identifier.
func (b *Builder) Place(name string) Place {
	if _, dup := b.pIndex[name]; dup {
		b.errf("petri: duplicate place name %q", name)
	}
	p := Place(len(b.places))
	b.places = append(b.places, name)
	b.pIndex[name] = p
	return p
}

// Places adds one place per name and returns their identifiers in order.
func (b *Builder) Places(names ...string) []Place {
	out := make([]Place, len(names))
	for i, nm := range names {
		out[i] = b.Place(nm)
	}
	return out
}

// Trans adds a transition with the given name and returns its identifier.
func (b *Builder) Trans(name string) Trans {
	if _, dup := b.tIndex[name]; dup {
		b.errf("petri: duplicate transition name %q", name)
	}
	t := Trans(len(b.trans))
	b.trans = append(b.trans, name)
	b.pre = append(b.pre, nil)
	b.post = append(b.post, nil)
	b.tIndex[name] = t
	return t
}

// In adds arcs from each place to the transition (p ∈ •t).
func (b *Builder) In(t Trans, ps ...Place) {
	if int(t) >= len(b.trans) || t < 0 {
		b.errf("petri: In: unknown transition %d", t)
		return
	}
	for _, p := range ps {
		if int(p) >= len(b.places) || p < 0 {
			b.errf("petri: In: unknown place %d", p)
			continue
		}
		if containsPlace(b.pre[t], p) {
			b.errf("petri: duplicate arc %s -> %s", b.places[p], b.trans[t])
			continue
		}
		b.pre[t] = append(b.pre[t], p)
	}
}

// Out adds arcs from the transition to each place (p ∈ t•).
func (b *Builder) Out(t Trans, ps ...Place) {
	if int(t) >= len(b.trans) || t < 0 {
		b.errf("petri: Out: unknown transition %d", t)
		return
	}
	for _, p := range ps {
		if int(p) >= len(b.places) || p < 0 {
			b.errf("petri: Out: unknown place %d", p)
			continue
		}
		if containsPlace(b.post[t], p) {
			b.errf("petri: duplicate arc %s -> %s", b.trans[t], b.places[p])
			continue
		}
		b.post[t] = append(b.post[t], p)
	}
}

// TransArcs adds a transition together with its input and output arcs and
// returns its identifier. It is the common idiom for model generators.
func (b *Builder) TransArcs(name string, in []Place, out []Place) Trans {
	t := b.Trans(name)
	b.In(t, in...)
	b.Out(t, out...)
	return t
}

// Mark puts the initial token on each given place.
func (b *Builder) Mark(ps ...Place) {
	for _, p := range ps {
		if int(p) >= len(b.places) || p < 0 {
			b.errf("petri: Mark: unknown place %d", p)
			continue
		}
		if b.initial[p] {
			b.errf("petri: place %s marked twice", b.places[p])
			continue
		}
		b.initial[p] = true
	}
}

func containsPlace(ps []Place, p Place) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// Build finalizes the net. It returns an error if any construction step was
// invalid or if a transition has an empty preset (such a transition would
// be unboundedly enabled, which contradicts the safe-net assumption).
func (b *Builder) Build() (*Net, error) {
	for t, pre := range b.pre {
		if len(pre) == 0 {
			b.errf("petri: transition %s has no input places", b.trans[t])
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("petri: building %q: %w", b.name, joinErrors(b.errs))
	}

	n := &Net{
		name:       b.name,
		placeNames: append([]string(nil), b.places...),
		transNames: append([]string(nil), b.trans...),
		pre:        make([][]Place, len(b.trans)),
		post:       make([][]Place, len(b.trans)),
		preT:       make([][]Trans, len(b.places)),
		postT:      make([][]Trans, len(b.places)),
	}
	for t := range b.trans {
		n.pre[t] = sortedPlaces(b.pre[t])
		n.post[t] = sortedPlaces(b.post[t])
		for _, p := range n.pre[t] {
			n.postT[p] = append(n.postT[p], Trans(t))
		}
		for _, p := range n.post[t] {
			n.preT[p] = append(n.preT[p], Trans(t))
		}
	}
	for p := range b.places {
		if b.initial[Place(p)] {
			n.initial = append(n.initial, Place(p))
		}
	}
	n.markWords = (len(b.places) + 63) / 64
	n.initMark = n.EmptyMarking()
	for _, p := range n.initial {
		n.initMark.Set(p)
	}
	n.selfLoop = make([]bool, len(b.trans))
	for t := range b.trans {
		for _, p := range n.pre[t] {
			if containsPlace(n.post[t], p) {
				n.selfLoop[t] = true
				break
			}
		}
	}
	n.buildConflicts()
	return n, nil
}

// MustBuild is Build that panics on error; for tests and model generators
// whose construction is statically correct.
func (b *Builder) MustBuild() *Net {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

func sortedPlaces(ps []Place) []Place {
	out := append([]Place(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// buildConflicts computes the conflict adjacency and the maximal conflict
// sets (connected components of the conflict graph).
func (n *Net) buildConflicts() {
	nt := n.NumTrans()
	n.conflictTo = make([]map[Trans]bool, nt)
	for t := 0; t < nt; t++ {
		n.conflictTo[t] = make(map[Trans]bool)
	}
	for p := 0; p < n.NumPlaces(); p++ {
		out := n.postT[Place(p)]
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				n.conflictTo[out[i]][out[j]] = true
				n.conflictTo[out[j]][out[i]] = true
			}
		}
	}
	if nt > 0 && nt <= conflictBitsMax {
		n.conflictStride = (nt + 63) / 64
		n.conflictBits = make([]uint64, nt*n.conflictStride)
		for t := 0; t < nt; t++ {
			row := n.conflictBits[t*n.conflictStride : (t+1)*n.conflictStride]
			for u := range n.conflictTo[t] {
				row[u>>6] |= 1 << (uint(u) & 63)
			}
		}
	}
	// Union-find over transitions to extract components.
	parent := make([]int, nt)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for t := 0; t < nt; t++ {
		for u := range n.conflictTo[t] {
			union(t, int(u))
		}
	}
	rootIndex := make(map[int]int)
	n.clusterOf = make([]int, nt)
	for t := 0; t < nt; t++ {
		r := find(t)
		ci, ok := rootIndex[r]
		if !ok {
			ci = len(n.clusters)
			rootIndex[r] = ci
			n.clusters = append(n.clusters, nil)
		}
		n.clusters[ci] = append(n.clusters[ci], Trans(t))
		n.clusterOf[t] = ci
	}
	for _, c := range n.clusters {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
}
