package petri

import (
	"sort"
	"strings"
)

// Marking is the token configuration of a safe net: a bitset over places.
// For safe nets a marking m : P → ℕ never exceeds one token per place, so
// the marking is exactly the set {p | m(p) = 1}.
type Marking []uint64

// EmptyMarking returns a marking with no tokens, sized for the net.
func (n *Net) EmptyMarking() Marking { return make(Marking, n.markWords) }

// InitialMarking returns a copy of m₀.
func (n *Net) InitialMarking() Marking { return n.initMark.Clone() }

// Has reports whether place p is marked.
func (m Marking) Has(p Place) bool { return m[p/64]&(1<<uint(p%64)) != 0 }

// Set marks place p.
func (m Marking) Set(p Place) { m[p/64] |= 1 << uint(p%64) }

// Clear unmarks place p.
func (m Marking) Clear(p Place) { m[p/64] &^= 1 << uint(p%64) }

// Clone returns an independent copy of m.
func (m Marking) Clone() Marking {
	out := make(Marking, len(m))
	copy(out, m)
	return out
}

// Equal reports whether two markings of the same net are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a map key unique per marking of a given net.
func (m Marking) Key() string {
	var b strings.Builder
	b.Grow(len(m) * 8)
	for _, w := range m {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * uint(i)))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// fnv1a64 constants (FNV-1a, 64 bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyHash returns Key() together with its 64-bit FNV-1a hash, computed
// in the same pass over the words. The hash is the shard-routing key of
// the parallel explorer's visited store and of the cluster wire
// protocol, so computing it at key-construction time removes the
// second walk over the just-built string.
func (m Marking) KeyHash() (string, uint64) {
	var b strings.Builder
	b.Grow(len(m) * 8)
	h := uint64(fnvOffset64)
	for _, w := range m {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			c := byte(w >> (8 * uint(i)))
			buf[i] = c
			h = (h ^ uint64(c)) * fnvPrime64
		}
		b.Write(buf[:])
	}
	return b.String(), h
}

// HashKey returns the 64-bit FNV-1a hash of an already-built marking
// key, for callers that receive keys over the wire rather than
// constructing them from a Marking. HashKey(m.Key()) equals the hash
// KeyHash returns.
func HashKey(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime64
	}
	return h
}

// MarkingFromKey reconstructs the Marking a Key() byte string encodes.
// It is the inverse of Key for markings of this net; a key of the wrong
// length (a different net, or a torn wire frame) returns ok=false.
func (n *Net) MarkingFromKey(key string) (Marking, bool) {
	if len(key) != n.markWords*8 {
		return nil, false
	}
	m := make(Marking, n.markWords)
	for wi := range m {
		var w uint64
		for i := 0; i < 8; i++ {
			w |= uint64(key[wi*8+i]) << (8 * uint(i))
		}
		m[wi] = w
	}
	return m, true
}

// MarkingFromKeyBytes reconstructs a Marking from a Key() byte string
// without a Net: the width is taken from the key itself (8 bytes per
// word). Callers that know which net the marking belongs to should use
// Net.MarkingFromKey, which also validates the width; this form is for
// containers (internal/ckpt) that carry markings of a derived net — a
// monitored or structurally reduced one — whose shape is only
// reconstructed later. A key whose length is not a multiple of 8
// returns ok=false.
func MarkingFromKeyBytes(key string) (Marking, bool) {
	if len(key)%8 != 0 || len(key) == 0 {
		return nil, false
	}
	m := make(Marking, len(key)/8)
	for wi := range m {
		var w uint64
		for i := 0; i < 8; i++ {
			w |= uint64(key[wi*8+i]) << (8 * uint(i))
		}
		m[wi] = w
	}
	return m, true
}

// Places returns the marked places in increasing order.
func (m Marking) Places() []Place {
	var out []Place
	for wi, w := range m {
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				out = append(out, Place(wi*64+b))
			}
		}
	}
	return out
}

// String renders the marking using the net's place names, sorted.
func (m Marking) String(n *Net) string {
	var names []string
	for _, p := range m.Places() {
		names = append(names, n.PlaceName(p))
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// Enabled implements the classical enabling rule (Definition 2.3):
// t is enabled iff every input place carries a token.
func (n *Net) Enabled(m Marking, t Trans) bool {
	for _, p := range n.pre[t] {
		if !m.Has(p) {
			return false
		}
	}
	return true
}

// EnabledTrans returns all transitions enabled in m, in increasing order.
func (n *Net) EnabledTrans(m Marking) []Trans {
	var out []Trans
	for t := Trans(0); int(t) < n.NumTrans(); t++ {
		if n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// IsDeadlock reports whether no transition is enabled in m.
func (n *Net) IsDeadlock(m Marking) bool {
	for t := Trans(0); int(t) < n.NumTrans(); t++ {
		if n.Enabled(m, t) {
			return false
		}
	}
	return true
}

// Fire implements the classical firing rule (Definition 2.4) for safe nets:
// it removes the token from each p ∈ •t \ t•, and adds a token to each
// p ∈ t• \ •t. It returns the successor marking and whether the firing kept
// the net safe (i.e. no output place outside •t was already marked).
// Fire panics if t is not enabled; callers check Enabled first.
func (n *Net) Fire(m Marking, t Trans) (next Marking, safe bool) {
	if !n.Enabled(m, t) {
		panic("petri: firing disabled transition " + n.transNames[t])
	}
	next = m.Clone()
	for _, p := range n.pre[t] {
		next.Clear(p)
	}
	safe = true
	for _, p := range n.post[t] {
		if next.Has(p) {
			safe = false
		}
		next.Set(p)
	}
	return next, safe
}
