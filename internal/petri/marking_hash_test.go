package petri

import (
	"testing"
)

// buildWideNet returns a net with enough places for a multi-word
// marking, with an alternating bit pattern marked.
func buildWideNet(tb testing.TB, places int) (*Net, Marking) {
	tb.Helper()
	b := NewBuilder("wide")
	ps := make([]Place, places)
	for i := range ps {
		ps[i] = b.Place("p" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)))
	}
	b.TransArcs("t", []Place{ps[0]}, []Place{ps[len(ps)-1]})
	b.Mark(ps[0])
	n, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	m := n.EmptyMarking()
	for i := 0; i < places; i += 3 {
		m.Set(ps[i])
	}
	return n, m
}

// TestKeyHashMatchesKey pins that the one-pass KeyHash produces exactly
// the Key() string plus the FNV-1a hash the old two-pass route
// (Key, then re-hash the string) computed — the hash-once optimization
// must not change either the interning key or the shard routing input.
func TestKeyHashMatchesKey(t *testing.T) {
	for _, places := range []int{1, 7, 64, 65, 200} {
		_, m := buildWideNet(t, places)
		key, hash := m.KeyHash()
		if key != m.Key() {
			t.Errorf("places=%d: KeyHash key differs from Key()", places)
		}
		if hash != HashKey(m.Key()) {
			t.Errorf("places=%d: KeyHash hash %x != HashKey(Key()) %x", places, hash, HashKey(m.Key()))
		}
	}
}

// TestMarkingFromKeyRoundTrip pins the wire decoding: a marking survives
// Key → MarkingFromKey, and wrong-length keys are rejected.
func TestMarkingFromKeyRoundTrip(t *testing.T) {
	n, m := buildWideNet(t, 130)
	got, ok := n.MarkingFromKey(m.Key())
	if !ok {
		t.Fatal("MarkingFromKey rejected a valid key")
	}
	if !got.Equal(m) {
		t.Fatal("MarkingFromKey round trip lost bits")
	}
	if _, ok := n.MarkingFromKey(m.Key()[:len(m.Key())-1]); ok {
		t.Error("MarkingFromKey accepted a torn key")
	}
	if _, ok := n.MarkingFromKey(m.Key() + "x"); ok {
		t.Error("MarkingFromKey accepted an oversized key")
	}
}

// BenchmarkMarkingKeyHash measures the hash-once win on the interning
// hot path: the old route built the key string and then re-walked it
// with FNV-1a to pick the visited-store shard; KeyHash folds the hash
// into key construction.
func BenchmarkMarkingKeyHash(b *testing.B) {
	_, m := buildWideNet(b, 192) // 3 words, a mid-size Table 1 marking
	b.Run("key-then-rehash", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			key := m.Key()
			sink += HashKey(key)
		}
		_ = sink
	})
	b.Run("keyhash-one-pass", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			_, h := m.KeyHash()
			sink += h
		}
		_ = sink
	})
}
