package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/zdd"
)

// pinnedRow is the full observable outcome of Analyze on one Table 1
// instance, captured from the reference implementation. Both algebras
// must keep reproducing these numbers bit-identically: the hot-path
// optimizations (open-addressed ZDD tables, per-state enabled-family
// cache, scratch-buffer successors) are only legal because they change no
// exploration decision.
type pinnedRow struct {
	family     string
	size       int
	states     int
	arcs       int
	multi      int
	single     int
	deadStates []int
	witnesses  []string
	peakValid  float64
}

// nsdpWitness is the single deadlock marking of NSDP(n): every process
// holds its left fork.
func nsdpWitness(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("hasL%d", i)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func pinnedTable1() []pinnedRow {
	rows := []pinnedRow{}
	for _, n := range []int{2, 4, 6, 8, 10} {
		rows = append(rows, pinnedRow{
			family: "nsdp", size: n,
			states: 3, arcs: 2, multi: 2, single: 0,
			deadStates: []int{2},
			witnesses:  []string{nsdpWitness(n)},
			peakValid:  [...]float64{14, 194, 2702, 37634, 524174}[n/2-1],
		})
	}
	for i, n := range []int{2, 4, 8} {
		rows = append(rows, pinnedRow{
			family: "asat", size: n,
			states: []int{10, 14, 18}[i], arcs: []int{10, 14, 18}[i],
			multi: []int{10, 14, 18}[i], single: 0,
			peakValid: []float64{4, 64, 16384}[i],
		})
	}
	for i, n := range []int{2, 3, 4, 5} {
		rows = append(rows, pinnedRow{
			family: "over", size: n,
			states: 8, arcs: 8, multi: 8, single: 0,
			peakValid: []float64{16, 64, 256, 1024}[i],
		})
	}
	for _, n := range []int{6, 9, 12, 15} {
		rows = append(rows, pinnedRow{
			family: "rw", size: n,
			states: 2, arcs: 2, multi: 2, single: 0,
			peakValid: 2,
		})
	}
	return rows
}

func checkPinned[F any](t *testing.T, net *petri.Net, alg Algebra[F], want pinnedRow) {
	t.Helper()
	e, err := NewEngine[F](net, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Analyze(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != want.states || res.Arcs != want.arcs ||
		res.MultiFirings != want.multi || res.SingleFirings != want.single ||
		res.PeakValid != want.peakValid {
		t.Errorf("got states=%d arcs=%d multi=%d single=%d peak=%g, want %d/%d/%d/%d/%g",
			res.States, res.Arcs, res.MultiFirings, res.SingleFirings, res.PeakValid,
			want.states, want.arcs, want.multi, want.single, want.peakValid)
	}
	if fmt.Sprint(res.DeadStates) != fmt.Sprint(want.deadStates) {
		t.Errorf("dead states %v, want %v", res.DeadStates, want.deadStates)
	}
	var wit []string
	for _, m := range res.Witnesses {
		wit = append(wit, m.String(net))
	}
	if fmt.Sprint(wit) != fmt.Sprint(want.witnesses) {
		t.Errorf("witnesses %v, want %v", wit, want.witnesses)
	}
}

// TestPinnedTable1 pins Analyze on every Table 1 instance against the
// captured reference outcome, for both family algebras. The explicit
// algebra skips the instances whose valid-set families go beyond a few
// thousand sets (nsdp(8,10), asat(8)): it is quadratic in family size
// there and would dominate the race-enabled `make check` run; the ZDD
// algebra covers all sixteen.
func TestPinnedTable1(t *testing.T) {
	const familyPeakMax = 5000
	for _, want := range pinnedTable1() {
		want := want
		net, err := models.ByName(want.family, want.size)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("%s(%d)/zdd", want.family, want.size), func(t *testing.T) {
			if testing.Short() && want.peakValid > 50_000 {
				t.Skip("short mode")
			}
			checkPinned[zdd.Node](t, net, zdd.NewAlgebra(net.NumTrans()), want)
		})
		t.Run(fmt.Sprintf("%s(%d)/family", want.family, want.size), func(t *testing.T) {
			if want.peakValid > familyPeakMax {
				t.Skip("explicit algebra too slow at this family size")
			}
			checkPinned[*family.Family](t, net, family.NewAlgebra(net.NumTrans()), want)
		})
	}
}
