package core

import (
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/tset"
)

// helpers -------------------------------------------------------------

func explicitEngine(t *testing.T, n *petri.Net) *Engine[*family.Family] {
	t.Helper()
	e, err := NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func trans(t *testing.T, n *petri.Net, name string) petri.Trans {
	t.Helper()
	tr, ok := n.TransByName(name)
	if !ok {
		t.Fatalf("no transition %q in %s", name, n.Name())
	}
	return tr
}

func place(t *testing.T, n *petri.Net, name string) petri.Place {
	t.Helper()
	p, ok := n.PlaceByName(name)
	if !ok {
		t.Fatalf("no place %q in %s", name, n.Name())
	}
	return p
}

// setOf builds a TSet over the net's transitions from names.
func setOf(t *testing.T, n *petri.Net, names ...string) tset.TSet {
	t.Helper()
	s := tset.New(n.NumTrans())
	for _, nm := range names {
		s.Add(int(trans(t, n, nm)))
	}
	return s
}

// famEq asserts a family equals the one holding exactly the given sets.
func famEq(t *testing.T, n *petri.Net, got *family.Family, want *family.Family, label string) {
	t.Helper()
	if !got.Equal(want) {
		name := func(i int) string { return n.TransName(petri.Trans(i)) }
		t.Errorf("%s:\n  got  %s\n  want %s", label, got.StringNamed(name), want.StringNamed(name))
	}
}

// Figure 7 ------------------------------------------------------------

// TestFig7PaperTrace replays the multiple-firing walkthrough of the
// paper's Figure 7 exactly: r₀ = {{A,C},{A,D},{B,C},{B,D}},
// m_enabled(A,s₀) = {{A,C},{A,D}}, r₁ = r₀ and, after firing {C,D},
// r₂ = {{A,C},{B,D}} with mapping(m₂,r₂) = {{p5}}.
func TestFig7PaperTrace(t *testing.T) {
	net := models.Fig7()
	e := explicitEngine(t, net)
	nT := net.NumTrans()
	alg := family.NewAlgebra(nT)

	s0 := e.InitialState()
	AC := setOf(t, net, "A", "C")
	AD := setOf(t, net, "A", "D")
	BC := setOf(t, net, "B", "C")
	BD := setOf(t, net, "B", "D")
	r0 := family.Of(nT, AC, AD, BC, BD)
	famEq(t, net, s0.R, r0, "r0")
	famEq(t, net, s0.M[place(t, net, "p0")], r0, "m0(p0)")
	famEq(t, net, s0.M[place(t, net, "p3")], r0, "m0(p3)")
	famEq(t, net, s0.M[place(t, net, "p1")], family.Empty(nT), "m0(p1)")

	A, B := trans(t, net, "A"), trans(t, net, "B")
	C, D := trans(t, net, "C"), trans(t, net, "D")

	mA := e.MEnabled(s0, A)
	famEq(t, net, mA, family.Of(nT, AC, AD), "m_enabled(A, s0)")
	mB := e.MEnabled(s0, B)
	famEq(t, net, mB, family.Of(nT, BC, BD), "m_enabled(B, s0)")

	// C and D are not single enabled in s0.
	if !alg.IsEmpty(e.SEnabled(s0, C)) || !alg.IsEmpty(e.SEnabled(s0, D)) {
		t.Error("C/D must not be single enabled in s0")
	}

	s1 := e.MultiFire(s0, []petri.Trans{A, B}, map[petri.Trans]*family.Family{A: mA, B: mB})
	famEq(t, net, s1.R, r0, "r1 (paper: r1 = r0)")
	famEq(t, net, s1.M[place(t, net, "p1")], family.Of(nT, AC, AD), "m1(p1)")
	famEq(t, net, s1.M[place(t, net, "p2")], family.Of(nT, BC, BD), "m1(p2)")
	famEq(t, net, s1.M[place(t, net, "p3")], r0, "m1(p3)")
	famEq(t, net, s1.M[place(t, net, "p0")], family.Empty(nT), "m1(p0)")

	mC := e.MEnabled(s1, C)
	famEq(t, net, mC, family.Of(nT, AC), "m_enabled(C, s1)")
	mD := e.MEnabled(s1, D)
	famEq(t, net, mD, family.Of(nT, BD), "m_enabled(D, s1)")

	s2 := e.MultiFire(s1, []petri.Trans{C, D}, map[petri.Trans]*family.Family{C: mC, D: mD})
	famEq(t, net, s2.R, family.Of(nT, AC, BD), "r2 (paper: {{A,C},{B,D}})")
	famEq(t, net, s2.M[place(t, net, "p5")], family.Of(nT, AC, BD), "m2(p5)")
	famEq(t, net, s2.M[place(t, net, "p3")], family.Empty(nT), "m2(p3)")

	// mapping(m2, r2): only p5 is marked, in every valid history.
	maps := e.Mapping(s2, 0)
	if len(maps) != 1 {
		t.Fatalf("mapping(s2) has %d markings, want 1", len(maps))
	}
	want := net.EmptyMarking()
	want.Set(place(t, net, "p5"))
	if !maps[0].Equal(want) {
		t.Errorf("mapping(s2) = %s, want {p5}", maps[0].String(net))
	}
}

// Figure 5 ------------------------------------------------------------

// TestFig5SingleFiring replays the single-firing example of Figures 5-6:
// with m(p0) = {{A},{B}}, m(p1) = {{A}}, m(p2) = {{B}} and r = {{A},{B}}
// (sets extended to maximal form with the conflict-free context), A is
// single enabled, B is not, and firing A moves {{A}} from p0,p1 to p3.
func TestFig5SingleFiring(t *testing.T) {
	net := models.Fig5()
	e := explicitEngine(t, net)
	nT := net.NumTrans()

	// The conflict graph of Fig5 has the single edge A-B, so the maximal
	// conflict-free sets are exactly {A} and {B}.
	vA := setOf(t, net, "A")
	vB := setOf(t, net, "B")
	r := family.Of(nT, vA, vB)

	alg := family.NewAlgebra(nT)
	s := &State[*family.Family]{M: make([]*family.Family, net.NumPlaces()), R: r}
	for p := range s.M {
		s.M[p] = alg.Empty()
	}
	s.M[place(t, net, "p0")] = family.Of(nT, vA, vB)
	s.M[place(t, net, "p1")] = family.Of(nT, vA)
	s.M[place(t, net, "p2")] = family.Of(nT, vB)

	A, B := trans(t, net, "A"), trans(t, net, "B")
	enA := e.SEnabled(s, A)
	famEq(t, net, enA, family.Of(nT, vA), "s_enabled(A)")
	famEq(t, net, e.SEnabled(s, B), family.Empty(nT), "s_enabled(B) (paper: {})")

	// mapping(s) = {{p0,p1},{p0,p2}} (Figure 6a).
	maps := markingKeys(e, s)
	if len(maps) != 2 || !maps[mk(t, net, "p0", "p1")] || !maps[mk(t, net, "p0", "p2")] {
		t.Errorf("mapping(s) wrong: %v", markingStrings(e, s, net))
	}

	next := e.SingleFire(s, A, enA)
	famEq(t, net, next.M[place(t, net, "p0")], family.Of(nT, vB), "m'(p0)")
	famEq(t, net, next.M[place(t, net, "p1")], family.Empty(nT), "m'(p1)")
	famEq(t, net, next.M[place(t, net, "p2")], family.Of(nT, vB), "m'(p2)")
	famEq(t, net, next.M[place(t, net, "p3")], family.Of(nT, vA), "m'(p3)")
	famEq(t, net, next.R, r, "r unchanged by single firing")

	// mapping(s') = {{p3},{p0,p2}} (Figure 6b).
	maps = markingKeys(e, next)
	if len(maps) != 2 || !maps[mk(t, net, "p3")] || !maps[mk(t, net, "p0", "p2")] {
		t.Errorf("mapping(s') wrong: %v", markingStrings(e, next, net))
	}
}

func mk(t *testing.T, n *petri.Net, names ...string) string {
	t.Helper()
	m := n.EmptyMarking()
	for _, nm := range names {
		m.Set(place(t, n, nm))
	}
	return m.Key()
}

func markingKeys(e *Engine[*family.Family], s *State[*family.Family]) map[string]bool {
	out := make(map[string]bool)
	for _, m := range e.Mapping(s, 0) {
		out[m.Key()] = true
	}
	return out
}

func markingStrings(e *Engine[*family.Family], s *State[*family.Family], n *petri.Net) []string {
	var out []string
	for _, m := range e.Mapping(s, 0) {
		out = append(out, m.String(n))
	}
	return out
}

// Figure 3 ------------------------------------------------------------

// TestFig3Walkthrough checks the narrative of Figure 3: A and B fire
// simultaneously from the initial state, after which D's input places hold
// tokens of mutually conflicting colors so D never becomes single enabled,
// while C fires on A's branch.
func TestFig3Walkthrough(t *testing.T) {
	net := models.Fig3()
	e := explicitEngine(t, net)

	s0 := e.InitialState()
	A, B := trans(t, net, "A"), trans(t, net, "B")
	C, D := trans(t, net, "C"), trans(t, net, "D")

	mA, mB := e.MEnabled(s0, A), e.MEnabled(s0, B)
	if mA.IsEmpty() || mB.IsEmpty() {
		t.Fatal("A and B must be multiple enabled initially")
	}
	s1 := e.MultiFire(s0, []petri.Trans{A, B}, map[petri.Trans]*family.Family{A: mA, B: mB})

	if !e.SEnabled(s1, D).IsEmpty() {
		t.Error("D must not be single enabled: its inputs carry conflicting colors")
	}
	enC := e.SEnabled(s1, C)
	if enC.IsEmpty() {
		t.Fatal("C must be single enabled after firing {A,B}")
	}
	s2 := e.SingleFire(s1, C, enC)
	if !e.SEnabled(s2, D).IsEmpty() {
		t.Error("D must stay disabled after C fires")
	}
	// p5 now carries A's branch.
	if s2.M[place(t, net, "p5")].IsEmpty() {
		t.Error("p5 must carry a token on A's branch")
	}
}
