package core

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/tset"
)

func TestMaxStatesLimit(t *testing.T) {
	e := explicitEngine(t, models.NSDP(3))
	res, _, err := e.Analyze(Options{SingleOnly: true, MaxStates: 5})
	if !errors.Is(err, ErrStateLimit) {
		t.Errorf("got %v, want ErrStateLimit", err)
	}
	// The cap is exact: a limit of 5 must not intern a 6th state.
	if res.States != 5 {
		t.Errorf("MaxStates=5 explored %d states, want exactly 5", res.States)
	}
	if res.Complete {
		t.Error("capped run must not report Complete")
	}
}

func TestWitnessLimit(t *testing.T) {
	net := models.NSDP(2) // two deadlock worlds in the same dead state
	e := explicitEngine(t, net)

	res, _, err := e.Analyze(Options{WitnessLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witnesses) != 2 {
		t.Errorf("WitnessLimit=2: got %d witnesses", len(res.Witnesses))
	}

	res1, _, err := e.Analyze(Options{}) // default 1
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Witnesses) != 1 {
		t.Errorf("default: got %d witnesses, want 1", len(res1.Witnesses))
	}

	resNone, _, err := e.Analyze(Options{WitnessLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resNone.Witnesses) != 0 {
		t.Errorf("WitnessLimit<0: got %d witnesses, want 0", len(resNone.Witnesses))
	}
	if !resNone.Deadlock {
		t.Error("deadlock flag must be set even without witnesses")
	}
}

// TestTrapFilter checks the safety-reduction hook: with the trap filter on
// a place that is never marked, no deadlock is reported even though the
// net deadlocks.
func TestTrapFilter(t *testing.T) {
	// Fig2(2) terminates with each conflict pair resolved to a_i or b_i;
	// c_i is always empty at termination.
	net := models.Fig2(2)
	c0, _ := net.PlaceByName("c0")
	e := explicitEngine(t, net)
	res, _, err := e.Analyze(Options{
		TrapFilter: true,
		TrapPlace:  c0,
		ExpandDead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Error("trap filter on an unmarked place must suppress the report")
	}

	// With the filter on a place that IS marked in some dead world, the
	// deadlock is reported and every witness marks it.
	a0, _ := net.PlaceByName("a0")
	res2, _, err := e.Analyze(Options{
		TrapFilter:   true,
		TrapPlace:    a0,
		ExpandDead:   true,
		WitnessLimit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deadlock {
		t.Error("trap filter on a0 must report the terminations choosing A0")
	}
	for _, w := range res2.Witnesses {
		if !w.Has(a0) {
			t.Errorf("witness %s does not mark the trap", w.String(net))
		}
	}
}

// TestGraphMultipleArcs checks that multiple firings are recorded as such
// in the stored graph.
func TestGraphMultipleArcs(t *testing.T) {
	net := models.Fig2(3)
	e := explicitEngine(t, net)
	res, g, err := e.Analyze(Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MultiFirings == 0 {
		t.Fatal("Fig2 must use multiple firing")
	}
	foundMulti := false
	for _, arcs := range g.Edges {
		for _, a := range arcs {
			if a.Multiple {
				foundMulti = true
				if len(a.Fired) != 6 {
					t.Errorf("multiple arc fired %d transitions, want all 6", len(a.Fired))
				}
			}
		}
	}
	if !foundMulti {
		t.Error("no multiple arc recorded")
	}
}

// TestSingleOnlyStillSound checks the ablation engine agrees on verdicts
// across several models.
func TestSingleOnlyStillSound(t *testing.T) {
	for _, net := range []*petri.Net{
		models.Fig2(3), models.Fig3(), models.Fig7(), models.ReadersWriters(2),
	} {
		full := analyzeExplicit(t, net, Options{})
		single := analyzeExplicit(t, net, Options{SingleOnly: true})
		if full.Deadlock != single.Deadlock {
			t.Errorf("%s: gpo=%v single-only=%v", net.Name(), full.Deadlock, single.Deadlock)
		}
	}
}

// TestEngineUniverseMismatch checks constructor validation.
func TestEngineUniverseMismatch(t *testing.T) {
	net := models.Fig3()
	_, err := NewEngine[*familyStub](net, badAlgebra{})
	if err == nil {
		t.Error("mismatched universe must be rejected")
	}
}

// badAlgebra is a minimal Algebra with the wrong universe.
type familyStub struct{}

type badAlgebra struct{}

func (badAlgebra) Universe() int                                         { return 1 }
func (badAlgebra) Empty() *familyStub                                    { return nil }
func (badAlgebra) FromSets(_ []tset.TSet) *familyStub                    { return nil }
func (badAlgebra) Union(_, _ *familyStub) *familyStub                    { return nil }
func (badAlgebra) Intersect(_, _ *familyStub) *familyStub                { return nil }
func (badAlgebra) Diff(_, _ *familyStub) *familyStub                     { return nil }
func (badAlgebra) OnSet(_ *familyStub, _ int) *familyStub                { return nil }
func (badAlgebra) IsEmpty(_ *familyStub) bool                            { return true }
func (badAlgebra) Equal(_, _ *familyStub) bool                           { return true }
func (badAlgebra) Contains(_ *familyStub, _ tset.TSet) bool              { return false }
func (badAlgebra) Count(_ *familyStub) float64                           { return 0 }
func (badAlgebra) AppendKey(dst []byte, _ *familyStub) []byte            { return dst }
func (badAlgebra) Enumerate(_ *familyStub, _ int) []tset.TSet            { return nil }
func (badAlgebra) MaximalConflictFree(_ func(i, j int) bool) *familyStub { return nil }
