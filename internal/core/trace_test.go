package core

import (
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/obs/trace"
	"repro/internal/zdd"
)

// TestAnalyzeDisabledTracerZeroAlloc pins the cost of the disabled
// flight recorder on the analysis hot path: the engine's track field is
// nil until a tracer is attached, and every nil-track emit the per-state
// code performs must stay allocation-free (see Options.Trace).
func TestAnalyzeDisabledTracerZeroAlloc(t *testing.T) {
	net, err := models.ByName("nsdp", 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	if e.tk != nil {
		t.Fatal("fresh engine has a non-nil trace track")
	}
	allocs := testing.AllocsPerRun(100, func() {
		// The exact emit mix of one interned state with a multiple
		// firing, as Analyze performs it.
		e.tk.State(1, 3)
		e.tk.Conflict(2, 1)
		e.tk.MultiFire(2, 7)
		e.tk.Fire(0, 7)
		e.tk.Fire(1, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer emits allocate %.1f per state, want 0", allocs)
	}
}

// TestAnalyzeTracingIsPassive pins that attaching a tracer never
// changes what the engine computes: the full Result of a traced run is
// identical to the untraced one, and the recorded events alone
// reconstruct the state count (what cmd/gpotrace prints).
func TestAnalyzeTracingIsPassive(t *testing.T) {
	for _, r := range []struct {
		family string
		size   int
	}{{"nsdp", 6}, {"over", 4}, {"rw", 9}} {
		net, err := models.ByName(r.family, r.size)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := plain.Analyze(Options{})
		if err != nil {
			t.Fatal(err)
		}

		traced, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(trace.Options{})
		res, _, err := traced.Analyze(Options{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("%s(%d): traced result differs:\n  base   %+v\n  traced %+v",
				r.family, r.size, base, res)
		}

		sum := trace.Summarize(tr.Dump(), 5)
		if sum.States != res.States {
			t.Errorf("%s(%d): trace reconstructs %d states, engine explored %d",
				r.family, r.size, sum.States, res.States)
		}
		// One fire event per fired transition: singles contribute one
		// each, every multiple-firing step at least two.
		if min := res.SingleFirings + 2*res.MultiFirings; sum.Fires < min {
			t.Errorf("%s(%d): trace reconstructs %d firings, engine took at least %d",
				r.family, r.size, sum.Fires, min)
		}
		if sum.MultiFires != res.MultiFirings {
			t.Errorf("%s(%d): trace reconstructs %d multifires, engine took %d",
				r.family, r.size, sum.MultiFires, res.MultiFirings)
		}
	}
}

// BenchmarkDisabledTraceHotPath is the gate scripts/check.sh asserts at
// 0 allocs/op: the per-state instrumentation mix with tracing disabled,
// measured on the engine's real (nil) track field.
func BenchmarkDisabledTraceHotPath(b *testing.B) {
	net, err := models.ByName("nsdp", 4)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.tk.State(int64(i), 3)
		e.tk.Conflict(2, 1)
		e.tk.MultiFire(2, int64(i))
		e.tk.Fire(0, int64(i))
		e.tk.Fire(1, int64(i))
	}
}
