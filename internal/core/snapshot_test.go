package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/zdd"
)

// resultEqual compares every Result field that a resumed run must
// reproduce bit for bit.
func resultEqual(a, b *Result) bool {
	return a.States == b.States && a.Arcs == b.Arcs &&
		a.MultiFirings == b.MultiFirings && a.SingleFirings == b.SingleFirings &&
		a.Deadlock == b.Deadlock && a.PeakValid == b.PeakValid &&
		a.Complete == b.Complete &&
		reflect.DeepEqual(a.DeadStates, b.DeadStates) &&
		reflect.DeepEqual(a.Witnesses, b.Witnesses)
}

// killResumeZDD stops a ZDD-backed analysis at DFS step `at`, then
// resumes on a FRESH engine (new manager) and returns the final Result.
// ok=false reports that the run finished before reaching step `at`.
func killResumeZDD(t *testing.T, n *petri.Net, opts Options, at int64) (*Result, bool) {
	t.Helper()
	var snap *Snapshot
	e, err := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Ckpt = &CkptHook{
		Poll: func(states int, steps int64) CkptAction {
			if steps == at {
				return CkptStop
			}
			return CkptNone
		},
		Save: func(sn *Snapshot) error { snap = sn; return nil },
	}
	res, _, err := e.Analyze(o)
	if err == nil {
		return res, false // finished before the kill point
	}
	if !errors.Is(err, ErrCheckpointStop) {
		t.Fatalf("%s: kill at step %d: %v", n.Name(), at, err)
	}
	if snap == nil {
		t.Fatalf("%s: CkptStop without a saved snapshot", n.Name())
	}
	e2, err := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Resume = snap
	res2, _, err := e2.Analyze(o2)
	if err != nil {
		t.Fatalf("%s: resume from step %d: %v", n.Name(), at, err)
	}
	return res2, true
}

// TestEngineResumeBitIdentical kills the ZDD analysis at every DFS step
// boundary and requires the resumed run to reproduce the uninterrupted
// Result exactly.
func TestEngineResumeBitIdentical(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(4), models.Fig1(3), models.Fig7(), models.Overtake(2),
	}
	for _, n := range nets {
		e, err := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := e.Analyze(Options{})
		if err != nil {
			t.Fatal(err)
		}
		for at := int64(0); ; at++ {
			got, killed := killResumeZDD(t, n, Options{}, at)
			if !killed {
				if at == 0 {
					t.Errorf("%s: run finished before the first boundary", n.Name())
				}
				break
			}
			if !resultEqual(want, got) {
				t.Errorf("%s: kill at step %d: resumed %+v != uninterrupted %+v", n.Name(), at, got, want)
			}
		}
	}
}

// TestEngineResumeExplicitAlgebra runs one kill-resume through the
// explicit family algebra to cover its SnapshotCodec end to end.
func TestEngineResumeExplicitAlgebra(t *testing.T) {
	n := models.Fig7()
	e, err := NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Analyze(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot
	e1, _ := NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	_, _, err = e1.Analyze(Options{Ckpt: &CkptHook{
		Poll: func(states int, steps int64) CkptAction {
			if steps == 2 {
				return CkptStop
			}
			return CkptNone
		},
		Save: func(sn *Snapshot) error { snap = sn; return nil },
	}})
	if !errors.Is(err, ErrCheckpointStop) {
		t.Fatalf("kill: %v", err)
	}
	e2, _ := NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	got, _, err := e2.Analyze(Options{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !resultEqual(want, got) {
		t.Errorf("resumed %+v != uninterrupted %+v", got, want)
	}
}

// TestEngineSnapshotValidation feeds structurally impossible snapshots
// to resume and requires typed rejections, never a silent run.
func TestEngineSnapshotValidation(t *testing.T) {
	n := models.Fig7()
	var snap *Snapshot
	e, _ := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
	_, _, err := e.Analyze(Options{Ckpt: &CkptHook{
		Poll: func(states int, steps int64) CkptAction {
			if steps == 1 {
				return CkptStop
			}
			return CkptNone
		},
		Save: func(sn *Snapshot) error { snap = sn; return nil },
	}})
	if !errors.Is(err, ErrCheckpointStop) {
		t.Fatalf("kill: %v", err)
	}
	mut := []struct {
		name string
		mod  func(sn *Snapshot)
	}{
		{"places mismatch", func(sn *Snapshot) { sn.NumPlaces++ }},
		{"no states", func(sn *Snapshot) { sn.NumStates = 0 }},
		{"empty stack", func(sn *Snapshot) { sn.Frames = nil }},
		{"root frame missing", func(sn *Snapshot) { sn.Frames[0].ID = 1 }},
		{"next out of range", func(sn *Snapshot) { sn.Frames[0].Next = len(sn.Frames[0].Succs) + 1 }},
		{"negative arcs", func(sn *Snapshot) { sn.Arcs = -1 }},
		{"dead id out of range", func(sn *Snapshot) { sn.DeadStates = []int{sn.NumStates} }},
		{"truncated family blob", func(sn *Snapshot) { sn.FamilyBlob = sn.FamilyBlob[:len(sn.FamilyBlob)/2] }},
	}
	for _, m := range mut {
		bad := *snap
		bad.Frames = append([]FrameSnap(nil), snap.Frames...)
		m.mod(&bad)
		e2, _ := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
		if _, _, err := e2.Analyze(Options{Resume: &bad}); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

// TestEngineCkptUnsupportedAlgebra checks the typed error for algebras
// without a SnapshotCodec.
func TestEngineCkptUnsupportedAlgebra(t *testing.T) {
	n := models.Fig7()
	e, err := NewEngine[*family.Family](n, family.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	// The explicit algebra DOES support checkpointing; simulate an
	// unsupported one by checking validateCkptOptions + StoreGraph too.
	if _, _, err := e.Analyze(Options{StoreGraph: true, Ckpt: &CkptHook{}}); err == nil {
		t.Error("StoreGraph+Ckpt accepted")
	}
	_ = fmt.Sprint(ErrCkptUnsupported) // keep the sentinel referenced
}
