// Package core implements the paper's contribution: Generalized Petri Nets
// (Section 3.2) and the generalized partial-order reachability analysis
// (Section 3.3).
//
// A GPN state is a pair ⟨m, r⟩ where m maps each place to a family of
// transition sets (the "colored tokens") and r is the family of valid
// transition sets. The engine is generic over the family representation:
// internal/family supplies the explicit reference algebra, internal/zdd a
// compressed one for nets whose valid-set families grow exponentially.
package core

import "repro/internal/tset"

// Algebra abstracts a representation of families of transition sets over a
// fixed transition universe. Implementations must be deterministic: Key
// must be identical for equal families regardless of construction order.
//
// All families handled by one Algebra instance share its universe;
// implementations may panic when handed a family from a different instance,
// as that is a programming error.
type Algebra[F any] interface {
	// Universe returns the number of transitions families range over.
	Universe() int
	// Empty returns the family with no member sets.
	Empty() F
	// FromSets returns the family holding exactly the given sets.
	FromSets(sets []tset.TSet) F
	// Union returns a ∪ b.
	Union(a, b F) F
	// Intersect returns a ∩ b.
	Intersect(a, b F) F
	// Diff returns a \ b.
	Diff(a, b F) F
	// OnSet returns {v ∈ a | t ∈ v}.
	OnSet(a F, t int) F
	// IsEmpty reports whether a has no member sets.
	IsEmpty(a F) bool
	// Equal reports whether a and b hold exactly the same sets.
	Equal(a, b F) bool
	// Contains reports whether s is a member set of a.
	Contains(a F, s tset.TSet) bool
	// Count returns the number of member sets (exact while it fits a
	// float64, approximate beyond).
	Count(a F) float64
	// AppendKey appends a binary key unique per family value to dst and
	// returns the extended slice. The encoding must be self-delimiting
	// (fixed-width or length-prefixed) so that concatenations of keys
	// remain unambiguous, and identical for equal families regardless of
	// construction order.
	AppendKey(dst []byte, a F) []byte
	// Enumerate returns up to limit member sets (all of them if limit <= 0).
	Enumerate(a F, limit int) []tset.TSet
	// MaximalConflictFree returns the family of all maximal conflict-free
	// transition sets — the maximal independent sets of the conflict graph
	// given by the adjacency predicate. This is the initial valid-set
	// family r₀ of Section 3.3.
	MaximalConflictFree(conflict func(i, j int) bool) F
}
