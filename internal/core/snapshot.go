package core

// Checkpoint and resume for the generalized partial-order engine.
//
// The DFS is deterministic — successor order, interning order and the
// cycle proviso depend only on the net and the options — so the top of
// the DFS loop is a well-defined boundary: `steps` completed iterations,
// a set of interned states and a stack of frames each holding its
// remaining successors. A Snapshot captures exactly that, with every
// family (the ⟨m,r⟩ components of interned states and of the not yet
// interned successor states held in frames) serialized through the
// algebra's SnapshotCodec into one deduplicated blob. A run restored
// from a Snapshot explores exactly the states the uninterrupted run
// would have, making kill-and-resume bit-identical and step-indexed
// prefix replay sound.
//
// Node/family identifiers are NOT part of the snapshot: the blob is
// decoded by replaying construction through the algebra (zdd mk /
// family interning), so a resume onto a fresh manager — the normal
// case — rebuilds a canonical table and the engine re-keys every state.

import (
	"errors"
	"fmt"

	"repro/internal/petri"
)

// ErrCheckpointStop is returned (with the partial Result so far) when a
// checkpoint hook answers CkptStop at a DFS step boundary: the run was
// suspended cleanly after saving a Snapshot, not aborted.
var ErrCheckpointStop = errors.New("core: stopped at checkpoint")

// ErrCkptUnsupported is returned when checkpointing is requested but the
// engine's family algebra does not implement SnapshotCodec.
var ErrCkptUnsupported = errors.New("core: algebra does not support checkpointing")

// ErrBadSnapshot is wrapped by every structural snapshot validation
// failure on resume.
var ErrBadSnapshot = errors.New("core: bad engine snapshot")

// SnapshotCodec is implemented by family algebras that can serialize a
// slice of family roots into a self-contained blob and rebuild them.
// Both internal/zdd.Alg (F = zdd.Node) and internal/family.Alg
// (F = *family.Family) implement it. DecodeFamilies must return the
// roots in encoding order and reject malformed input.
type SnapshotCodec[F any] interface {
	EncodeFamilies(roots []F) []byte
	DecodeFamilies(blob []byte) ([]F, error)
}

// SuccSnap is one computed-but-possibly-unvisited successor of a frame.
// Its state's families live in the Snapshot's FamilyBlob.
type SuccSnap struct {
	Fired    []petri.Trans
	Multiple bool
}

// FrameSnap is one DFS stack entry. The frame's own state is the
// interned state ID; successor states follow the interned states in the
// FamilyBlob, in stack-then-successor order.
type FrameSnap struct {
	ID        int
	Succs     []SuccSnap
	Next      int
	Postponed bool
	FullDone  bool
}

// Snapshot is the canonical state of a generalized partial-order
// analysis at a DFS step boundary. FamilyBlob holds, in order, the
// NumPlaces+1 family roots (M[0..NumPlaces-1], R) of every interned
// state in id order, then of every frame successor in stack order —
// encoded by the algebra's SnapshotCodec. The frames' own states are
// referenced by id; onStack is implied (exactly the frame ids).
type Snapshot struct {
	NumPlaces  int
	NumStates  int
	FamilyBlob []byte
	Frames     []FrameSnap

	// Result mirror at the boundary.
	Arcs          int
	MultiFirings  int
	SingleFirings int
	DeadStates    []int
	Witnesses     []petri.Marking
	PeakValid     float64

	// Steps counts completed DFS loop iterations: the deterministic
	// boundary coordinate used by replay.
	Steps int64
}

// CkptAction is a checkpoint hook's verdict at a step boundary.
type CkptAction int

const (
	// CkptNone continues without checkpointing.
	CkptNone CkptAction = iota
	// CkptSave saves a Snapshot and continues.
	CkptSave
	// CkptStop saves a Snapshot and suspends the run: Analyze returns
	// the partial Result with ErrCheckpointStop.
	CkptStop
)

// CkptHook enables checkpointing: Poll is consulted at the top of every
// DFS iteration with the interned state count and completed step count,
// and Save receives the Snapshot when Poll answers CkptSave or
// CkptStop. A Save error fails the analysis.
type CkptHook struct {
	Poll func(states int, steps int64) CkptAction
	Save func(*Snapshot) error
}

// poll is the nil-safe hook invocation.
func (h *CkptHook) poll(states int, steps int64) CkptAction {
	if h == nil || h.Poll == nil {
		return CkptNone
	}
	return h.Poll(states, steps)
}

// validateCkptOptions rejects option combinations the checkpoint layer
// does not describe: the stored graph is not part of the Snapshot.
func validateCkptOptions(opts Options) error {
	if opts.StoreGraph && (opts.Ckpt != nil || opts.Resume != nil) {
		return fmt.Errorf("core: checkpoint/resume does not support StoreGraph")
	}
	return nil
}

// snapshotCodec resolves the algebra's SnapshotCodec, or reports the
// typed unsupported error when checkpointing was requested without one.
func (e *Engine[F]) snapshotCodec() (SnapshotCodec[F], error) {
	if c, ok := any(e.Alg).(SnapshotCodec[F]); ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w (%T)", ErrCkptUnsupported, e.Alg)
}

// snapshotAt assembles a Snapshot of the live DFS. All structural
// slices are copied; families are serialized through the codec.
func (e *Engine[F]) snapshotAt(states []*State[F], stack []*frame[F], res *Result, steps int64, codec SnapshotCodec[F]) *Snapshot {
	np := e.Net.NumPlaces()
	roots := make([]F, 0, (np+1)*len(states))
	for _, s := range states {
		roots = append(roots, s.M...)
		roots = append(roots, s.R)
	}
	frames := make([]FrameSnap, len(stack))
	for i, f := range stack {
		fs := FrameSnap{
			ID:        f.id,
			Next:      f.next,
			Postponed: f.postponed,
			FullDone:  f.fullDone,
			Succs:     make([]SuccSnap, len(f.succs)),
		}
		for j, sc := range f.succs {
			fs.Succs[j] = SuccSnap{
				Fired:    append([]petri.Trans(nil), sc.fired...),
				Multiple: sc.multiple,
			}
			roots = append(roots, sc.state.M...)
			roots = append(roots, sc.state.R)
		}
		frames[i] = fs
	}
	return &Snapshot{
		NumPlaces:     np,
		NumStates:     len(states),
		FamilyBlob:    codec.EncodeFamilies(roots),
		Frames:        frames,
		Arcs:          res.Arcs,
		MultiFirings:  res.MultiFirings,
		SingleFirings: res.SingleFirings,
		DeadStates:    append([]int(nil), res.DeadStates...),
		Witnesses:     append([]petri.Marking(nil), res.Witnesses...),
		PeakValid:     res.PeakValid,
		Steps:         steps,
	}
}

// restoreSnapshot validates a Snapshot against the engine's net,
// decodes the family blob and rebuilds the DFS run state: interned
// states (re-keyed under the current algebra/manager), the state index,
// the on-stack set and the frame stack. Content integrity (bit flips)
// is the checkpoint container's job (internal/ckpt); this guards the
// engine against structurally impossible snapshots.
func (e *Engine[F]) restoreSnapshot(sn *Snapshot, codec SnapshotCodec[F]) (states []*State[F], index map[string]int, onStack map[int]bool, stack []*frame[F], err error) {
	np := e.Net.NumPlaces()
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
	if sn.NumPlaces != np {
		return nil, nil, nil, nil, bad("snapshot has %d places, net has %d", sn.NumPlaces, np)
	}
	if sn.NumStates <= 0 {
		return nil, nil, nil, nil, bad("no interned states")
	}
	if len(sn.Frames) == 0 || sn.Frames[0].ID != 0 {
		return nil, nil, nil, nil, bad("stack does not start at the initial state")
	}
	if sn.Arcs < 0 || sn.MultiFirings < 0 || sn.SingleFirings < 0 || sn.Steps < 0 {
		return nil, nil, nil, nil, bad("negative counters")
	}
	nSuccs := 0
	prevID := -1
	for i, fs := range sn.Frames {
		if fs.ID <= prevID || fs.ID >= sn.NumStates {
			return nil, nil, nil, nil, bad("frame %d id %d out of order or range", i, fs.ID)
		}
		prevID = fs.ID
		if fs.Next < 0 || fs.Next > len(fs.Succs) {
			return nil, nil, nil, nil, bad("frame %d next %d out of range [0,%d]", i, fs.Next, len(fs.Succs))
		}
		nt := e.Net.NumTrans()
		for j, sc := range fs.Succs {
			if len(sc.Fired) == 0 {
				return nil, nil, nil, nil, bad("frame %d succ %d fired nothing", i, j)
			}
			if !sc.Multiple && len(sc.Fired) != 1 {
				return nil, nil, nil, nil, bad("frame %d succ %d single firing of %d transitions", i, j, len(sc.Fired))
			}
			for _, t := range sc.Fired {
				if int(t) < 0 || int(t) >= nt {
					return nil, nil, nil, nil, bad("frame %d succ %d fires transition %d out of range", i, j, t)
				}
			}
		}
		nSuccs += len(fs.Succs)
	}
	prev := -1
	for _, id := range sn.DeadStates {
		if id < 0 || id >= sn.NumStates {
			return nil, nil, nil, nil, bad("dead state id %d out of range", id)
		}
		if id <= prev {
			return nil, nil, nil, nil, bad("dead state ids not strictly increasing")
		}
		prev = id
	}
	words := (np + 63) / 64
	for i, m := range sn.Witnesses {
		if len(m) != words {
			return nil, nil, nil, nil, bad("witness %d has %d marking words, net needs %d", i, len(m), words)
		}
	}

	roots, derr := codec.DecodeFamilies(sn.FamilyBlob)
	if derr != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: resume: %w", derr)
	}
	if want := (np + 1) * (sn.NumStates + nSuccs); len(roots) != want {
		return nil, nil, nil, nil, bad("family blob has %d roots, snapshot shape needs %d", len(roots), want)
	}
	takeState := func() *State[F] {
		s := &State[F]{M: roots[:np:np], R: roots[np]}
		roots = roots[np+1:]
		return s
	}

	states = make([]*State[F], sn.NumStates)
	index = make(map[string]int, sn.NumStates)
	for id := range states {
		s := takeState()
		k := e.key(s)
		if _, dup := index[k]; dup {
			return nil, nil, nil, nil, bad("duplicate state at id %d", id)
		}
		index[k] = id
		states[id] = s
	}
	onStack = make(map[int]bool, len(sn.Frames))
	stack = make([]*frame[F], len(sn.Frames))
	for i, fs := range sn.Frames {
		f := &frame[F]{
			id:        fs.ID,
			state:     states[fs.ID],
			next:      fs.Next,
			postponed: fs.Postponed,
			fullDone:  fs.FullDone,
		}
		if len(fs.Succs) > 0 {
			f.succs = make([]succ[F], len(fs.Succs))
			for j, sc := range fs.Succs {
				fired := sc.Fired
				if !sc.Multiple {
					// Re-share the per-transition singleton like the
					// live engine does.
					fired = e.firedOne[sc.Fired[0]]
				}
				f.succs[j] = succ[F]{fired: fired, multiple: sc.Multiple, state: takeState()}
			}
		}
		onStack[fs.ID] = true
		stack[i] = f
	}
	return states, index, onStack, stack, nil
}

// restoreResult fills a fresh Result from the snapshot's counters.
func restoreResult(res *Result, sn *Snapshot) {
	res.Arcs = sn.Arcs
	res.MultiFirings = sn.MultiFirings
	res.SingleFirings = sn.SingleFirings
	res.DeadStates = append([]int(nil), sn.DeadStates...)
	res.Deadlock = len(res.DeadStates) > 0
	res.Witnesses = append([]petri.Marking(nil), sn.Witnesses...)
	res.PeakValid = sn.PeakValid
}
