package core

import (
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/reach"
)

// TestMappingSoundness checks the central semantic property of the
// generalized analysis (Definition 3.4 and the consistency argument of
// Section 3.2): every classical marking in the mapping of every explored
// GPN state is reachable in the classical net. This is run over the
// benchmark models and a batch of random nets.
func TestMappingSoundness(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3),
		models.Fig1(4), models.Fig2(3), models.Fig3(), models.Fig7(),
		models.ReadersWriters(3), models.ArbiterTree(2), models.Overtake(2),
	}
	for seed := int64(0); seed < 25; seed++ {
		nets = append(nets, randnet.Generate(randnet.Default(seed)))
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		reachable := make(map[string]bool)
		{
			res, err := reach.Explore(net, reach.Options{StoreGraph: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range res.Graph.States {
				reachable[m.Key()] = true
			}
		}

		e := explicitEngine(t, net)
		_, g, err := e.Analyze(Options{StoreGraph: true, MaxStates: 20000})
		if err != nil {
			continue // GPN blow-up: covered by the verify gauntlet caps
		}
		for id, s := range g.States {
			for _, m := range e.Mapping(s, 200) {
				if !reachable[m.Key()] {
					t.Errorf("%s: GPN state %d maps to unreachable marking %s",
						net.Name(), id, m.String(net))
				}
			}
		}
		_ = full
	}
}

// TestMappingCoversDeadlocks checks completeness on the deadlock side:
// with ExpandDead (the paper's default algorithm stops at the FIRST
// deadlock possibility per branch, which suffices for the yes/no question
// but not for enumeration), every classical deadlock marking appears in
// the dead valid sets of some explored GPN state.
func TestMappingCoversDeadlocks(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3), models.Fig1(3), models.Fig2(3),
		models.Fig3(), models.Fig7(),
	}
	for seed := int64(0); seed < 25; seed++ {
		nets = append(nets, randnet.Generate(randnet.Default(seed)))
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !full.Deadlock {
			continue
		}
		e := explicitEngine(t, net)
		res, g, err := e.Analyze(Options{
			StoreGraph:   true,
			MaxStates:    20000,
			WitnessLimit: -1,
			ExpandDead:   true,
		})
		if err != nil {
			continue
		}
		covered := make(map[string]bool)
		for _, id := range res.DeadStates {
			s := g.States[id]
			dead := e.DeadSets(s)
			for _, v := range e.Alg.Enumerate(dead, 0) {
				covered[e.MarkingOf(s, v).Key()] = true
			}
		}
		for _, m := range full.Deadlocks {
			if !covered[m.Key()] {
				t.Errorf("%s: classical deadlock %s not covered by any dead GPN state",
					net.Name(), m.String(net))
			}
		}
	}
}

// TestStoredGraphConsistency checks the stored GPN graph invariants: arcs
// reference valid states; dead states are leaves unless ExpandDead.
func TestStoredGraphConsistency(t *testing.T) {
	net := models.NSDP(3)
	e := explicitEngine(t, net)
	res, g, err := e.Analyze(Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.States) != res.States {
		t.Fatalf("graph has %d states, result says %d", len(g.States), res.States)
	}
	dead := make(map[int]bool)
	for _, id := range res.DeadStates {
		dead[id] = true
	}
	for id, arcs := range g.Edges {
		if dead[id] && len(arcs) > 0 {
			t.Errorf("dead state %d has successors (ExpandDead off)", id)
		}
		for _, a := range arcs {
			if a.To < 0 || a.To >= len(g.States) {
				t.Errorf("arc to out-of-range state %d", a.To)
			}
			if len(a.Fired) == 0 {
				t.Error("arc with no fired transitions")
			}
		}
	}
}

var _ = family.Empty
