package core

import (
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
)

func analyzeExplicit(t *testing.T, n *petri.Net, opts Options) *Result {
	t.Helper()
	e := explicitEngine(t, n)
	res, _, err := e.Analyze(opts)
	if err != nil {
		t.Fatalf("%s: %v", n.Name(), err)
	}
	return res
}

// TestNSDPThreeStates checks the paper's headline Table 1 result: the
// generalized analysis of NSDP needs exactly 3 states to find every
// deadlock, independent of the number of philosophers.
func TestNSDPThreeStates(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		net := models.NSDP(n)
		res := analyzeExplicit(t, net, Options{})
		if !res.Deadlock {
			t.Errorf("NSDP(%d): deadlock not found", n)
		}
		if res.States != 3 {
			t.Errorf("NSDP(%d): explored %d states, paper reports 3", n, res.States)
		}
	}
}

// TestNSDPWitnessIsRealDeadlock checks soundness of the reported deadlock:
// every witness marking must be a reachable deadlock of the classical net.
func TestNSDPWitnessIsRealDeadlock(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		net := models.NSDP(n)
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		realDead := make(map[string]bool)
		for _, m := range full.Deadlocks {
			realDead[m.Key()] = true
		}
		res := analyzeExplicit(t, net, Options{WitnessLimit: 100})
		if len(res.Witnesses) == 0 {
			t.Fatalf("NSDP(%d): no witnesses", n)
		}
		for _, w := range res.Witnesses {
			if !realDead[w.Key()] {
				t.Errorf("NSDP(%d): witness %s is not a reachable classical deadlock",
					n, w.String(net))
			}
		}
	}
}

// TestFig2TwoStates checks Section 3.1's claim for the Figure 2 net: the
// generalized analysis explores exactly 2 states where classical
// partial-order methods need 2^(N+1) − 1.
func TestFig2TwoStates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 12} {
		net := models.Fig2(n)
		res := analyzeExplicit(t, net, Options{})
		if res.States != 2 {
			t.Errorf("Fig2(%d): explored %d states, paper reports 2", n, res.States)
		}
		// The terminal state is a (trivial) deadlock: the net terminates.
		if !res.Deadlock {
			t.Errorf("Fig2(%d): terminal state not reported", n)
		}
	}
}

// TestRWTwoStates checks the Table 1 RW rows: the generalized analysis
// closes the readers/writers cycle after 2 states and finds no deadlock.
func TestRWTwoStates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9} {
		net := models.ReadersWriters(n)
		res := analyzeExplicit(t, net, Options{})
		if res.Deadlock {
			t.Errorf("RW(%d): spurious deadlock", n)
		}
		if res.States != 2 {
			t.Errorf("RW(%d): explored %d states, paper reports 2", n, res.States)
		}
		if !res.Complete {
			t.Errorf("RW(%d): analysis incomplete", n)
		}
	}
}

// TestDeadlockAgreement cross-validates the generalized analysis against
// exhaustive reachability on every benchmark family at small sizes: the
// deadlock verdicts must agree.
func TestDeadlockAgreement(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3), models.NSDP(4),
		models.Fig1(3), models.Fig1(5),
		models.Fig2(2), models.Fig2(4),
		models.Fig3(), models.Fig5(), models.Fig7(),
		models.ReadersWriters(2), models.ReadersWriters(4),
		models.ArbiterTree(2), models.ArbiterTree(4),
		models.Overtake(2), models.Overtake(3),
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		res := analyzeExplicit(t, net, Options{})
		if res.Deadlock != full.Deadlock {
			t.Errorf("%s: GPO deadlock=%v, exhaustive deadlock=%v (GPO states=%d, full states=%d)",
				net.Name(), res.Deadlock, full.Deadlock, res.States, full.States)
		}
		if !res.Complete {
			t.Errorf("%s: analysis incomplete", net.Name())
		}
		t.Logf("%s: full=%d GPO=%d deadlock=%v", net.Name(), full.States, res.States, res.Deadlock)
	}
}

// TestWitnessesAreReachableDeadlocks checks, on every deadlocking model,
// that GPO witnesses are real classical deadlock markings.
func TestWitnessesAreReachableDeadlocks(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3),
		models.Fig1(3), models.Fig2(3), models.Fig3(), models.Fig7(),
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		realDead := make(map[string]bool)
		for _, m := range full.Deadlocks {
			realDead[m.Key()] = true
		}
		res := analyzeExplicit(t, net, Options{WitnessLimit: 1000})
		for _, w := range res.Witnesses {
			if !realDead[w.Key()] {
				t.Errorf("%s: witness %s is not a classical reachable deadlock",
					net.Name(), w.String(net))
			}
		}
	}
}

// TestAblationModes checks that the ablation modes still agree on the
// deadlock verdict while exploring more states.
func TestAblationModes(t *testing.T) {
	net := models.NSDP(3)
	gpo := analyzeExplicit(t, net, Options{})
	single := analyzeExplicit(t, net, Options{SingleOnly: true})
	noPO := analyzeExplicit(t, net, Options{NoAnticipation: true})
	if !gpo.Deadlock || !single.Deadlock || !noPO.Deadlock {
		t.Fatalf("deadlock verdicts: gpo=%v single=%v noPO=%v",
			gpo.Deadlock, single.Deadlock, noPO.Deadlock)
	}
	if gpo.States > single.States {
		t.Errorf("multiple firing should not explore more states: gpo=%d single=%d",
			gpo.States, single.States)
	}
	t.Logf("NSDP(3): gpo=%d states, single-only=%d, no-anticipation=%d",
		gpo.States, single.States, noPO.States)
}

// TestStopAtDeadlock checks early termination.
func TestStopAtDeadlock(t *testing.T) {
	res := analyzeExplicit(t, models.NSDP(2), Options{StopAtDeadlock: true})
	if !res.Deadlock {
		t.Fatal("deadlock not found")
	}
	if res.Complete {
		t.Error("StopAtDeadlock should mark the result incomplete")
	}
}

var _ = family.Empty
