package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/stop"
)

// ErrStateLimit is returned when exploration would exceed Options.MaxStates.
var ErrStateLimit = errors.New("core: state limit exceeded")

// Options configures a generalized partial-order analysis.
type Options struct {
	// Ctx, if non-nil, is polled cooperatively during the analysis: once
	// cancelled the exploration stops within a bounded number of GPN
	// states and Analyze returns the partial Result so far (Complete:
	// false) together with the context's error.
	Ctx context.Context
	// StopAtDeadlock halts the analysis as soon as one state with a
	// deadlock possibility is found.
	StopAtDeadlock bool
	// ExpandDead keeps exploring past states that exhibit a deadlock
	// possibility. The paper's algorithm treats them as leaves (its
	// pseudo-code reports and does not recurse), which is the default.
	ExpandDead bool
	// SingleOnly disables the multiple firing semantics (ablation): the
	// analysis then degenerates to exploration with single firings only.
	SingleOnly bool
	// NoAnticipation additionally disables the partial-order selection of
	// one conflict set (ablation): every single-enabled transition is fired
	// at every state.
	NoAnticipation bool
	// MaxStates caps the search at exactly this many GPN states; the
	// search stops with ErrStateLimit when one more would be interned, and
	// the firing that would have exceeded the cap is not recorded. Zero
	// means no limit.
	MaxStates int
	// StoreGraph retains all GPN states and arcs in the result.
	StoreGraph bool
	// WitnessLimit bounds the classical deadlock witness markings extracted
	// per dead state (default 1, <0 = none).
	WitnessLimit int
	// TrapFilter restricts deadlock reporting to dead valid sets whose
	// mapped marking includes TrapPlace. Used by the safety-to-deadlock
	// reduction: only deadlocks of the monitor trap witness a violation.
	TrapFilter bool
	TrapPlace  petri.Place
	// Metrics, if non-nil, receives analysis statistics under the "core."
	// prefix, plus the family algebra's own statistics when it implements
	// StatsReporter (see OBSERVABILITY.md). Nil costs nothing; metrics
	// never influence the exploration.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per GPN state interned.
	Progress *obs.Progress
	// Trace, if non-nil, records flight-recorder events: one state event
	// per interned GPN state (with |r| as detail), fire/multifire events
	// per arc, conflict-component events per state, the algebra's table
	// growth via TraceAttacher, and a terminal abort on cancellation. Nil
	// costs one branch per event and zero allocations (pinned by
	// TestAnalyzeDisabledTracerZeroAlloc).
	Trace *trace.Tracer
	// Ckpt, if non-nil, enables checkpointing: the hook is polled at the
	// top of every DFS iteration and can save a Snapshot (CkptSave) or
	// save one and suspend the run (CkptStop, returning the partial
	// Result with ErrCheckpointStop). Requires the algebra to implement
	// SnapshotCodec; incompatible with StoreGraph. Like Metrics and
	// Trace, the hook only observes and suspends — it never changes
	// which states an uninterrupted run explores.
	Ckpt *CkptHook
	// Resume, if non-nil, restores the analysis from a Snapshot instead
	// of starting at the initial state, re-entering the DFS at the saved
	// step boundary with Results bit-identical to the uninterrupted run.
	// Requires SnapshotCodec; incompatible with StoreGraph.
	Resume *Snapshot
}

// StatsReporter is implemented by family algebras that can export
// internal statistics (cache hit rates, node counts) into a metrics
// registry; Analyze invokes it once when Options.Metrics is set.
type StatsReporter interface {
	ReportStats(*obs.Registry)
}

// TraceAttacher is implemented by family algebras that can stream
// flight-recorder events (ZDD table growth) onto an engine's trace
// track; Analyze attaches for the duration of the run when
// Options.Trace is set and detaches on every exit path.
type TraceAttacher interface {
	AttachTrace(*trace.Tracer, *trace.Track)
	DetachTrace()
}

// Arc is one edge of the GPN reachability graph: the simultaneous (or
// single) firing of Fired leading to state To. Fired is read-only; single
// firings share one per-transition slice across all arcs.
type Arc struct {
	Fired    []petri.Trans
	To       int
	Multiple bool
}

// Graph is the stored GPN reachability graph.
type Graph[F any] struct {
	States []*State[F]
	Edges  [][]Arc
}

// Result summarizes a generalized partial-order analysis.
type Result struct {
	States        int // GPN states explored
	Arcs          int
	MultiFirings  int // multiple-firing steps taken
	SingleFirings int // single-firing steps taken
	Deadlock      bool
	DeadStates    []int           // ids of states with a deadlock possibility
	Witnesses     []petri.Marking // classical deadlock markings (≤ WitnessLimit per dead state)
	Complete      bool            // false if stopped early
	PeakValid     float64         // largest |r| encountered
}

// Engine runs the generalized partial-order analysis of Section 3.3 over a
// safe Petri net, parameterized by the family representation.
//
// An Engine is single-goroutine: its per-state work runs on reusable
// scratch buffers (allocated once in NewEngine) instead of per-firing
// maps, and structural firing data (•t \ t•, t• \ •t, the singleton
// fired slices) is precomputed per transition. Concurrent Analyze calls
// on one Engine are a data race; share the *petri.Net and build one
// Engine per goroutine instead.
type Engine[F any] struct {
	Net *petri.Net
	Alg Algebra[F]

	// Precomputed structural firing data (ensureInit).
	preOnly  [][]petri.Place // preOnly[t]:  •t \ t•
	postOnly [][]petri.Place // postOnly[t]: t• \ •t
	firedOne [][]petri.Trans // firedOne[t] = {t}, shared by arcs

	// Scratch reused across states. Invariant between per-state calls:
	// the bool bitsets are all-false and the slices are dead (no live
	// references escape a state's processing).
	sEnBuf    []F             // per-state enabled-family cache
	mEnBuf    []F             // m_enabled vector for the multiple branch
	isSingle  []bool          // single-enabled membership
	inT       []bool          // T′ membership (multiFire, post-check)
	inUnion   []bool          // candidate-union membership (po-safety)
	singleBuf []petri.Trans   // single-enabled transition list
	ufParent  []int32         // union-find over singles (components)
	compOf    []int32         // root -> component index
	compOff   []int32         // component -> members offset
	compCur   []int32         // component fill cursors
	memberBuf []petri.Trans   // component members backing array
	compsBuf  [][]petri.Trans // component slice headers
	tentBuf   [][]petri.Trans // tentative candidate components
	keyBuf    []byte          // state-key assembly buffer

	// tk is the flight-recorder track of the Analyze call in progress
	// (nil when tracing is disabled); a transient like the scratch above,
	// reset at the start of every Analyze.
	tk *trace.Track
}

// NewEngine returns an engine for the net using the given family algebra.
// The algebra's universe must equal the net's transition count.
func NewEngine[F any](n *petri.Net, alg Algebra[F]) (*Engine[F], error) {
	if alg.Universe() != n.NumTrans() {
		return nil, fmt.Errorf("core: algebra universe %d != %d transitions of %s",
			alg.Universe(), n.NumTrans(), n.Name())
	}
	e := &Engine[F]{Net: n, Alg: alg}
	e.ensureInit()
	return e, nil
}

// ensureInit materializes the precomputed structural data and scratch
// buffers. NewEngine calls it once; the entry points re-check so that a
// literal-constructed Engine still works.
func (e *Engine[F]) ensureInit() {
	if e.preOnly != nil {
		return
	}
	n := e.Net
	nt := n.NumTrans()
	e.preOnly = make([][]petri.Place, nt)
	e.postOnly = make([][]petri.Place, nt)
	e.firedOne = make([][]petri.Trans, nt)
	for t := 0; t < nt; t++ {
		tr := petri.Trans(t)
		pre, post := n.Pre(tr), n.Post(tr)
		for _, p := range pre {
			if !placeIn(post, p) {
				e.preOnly[t] = append(e.preOnly[t], p)
			}
		}
		for _, p := range post {
			if !placeIn(pre, p) {
				e.postOnly[t] = append(e.postOnly[t], p)
			}
		}
		e.firedOne[t] = []petri.Trans{tr}
	}
	e.sEnBuf = make([]F, nt)
	e.mEnBuf = make([]F, nt)
	e.isSingle = make([]bool, nt)
	e.inT = make([]bool, nt)
	e.inUnion = make([]bool, nt)
	e.singleBuf = make([]petri.Trans, 0, nt)
	e.ufParent = make([]int32, nt)
	e.compOf = make([]int32, nt)
	e.compOff = make([]int32, nt)
	e.compCur = make([]int32, nt)
	e.memberBuf = make([]petri.Trans, nt)
	e.compsBuf = make([][]petri.Trans, 0, nt)
	e.tentBuf = make([][]petri.Trans, 0, nt)
}

func placeIn(ps []petri.Place, p petri.Place) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// succ is a computed successor before interning.
type succ[F any] struct {
	fired    []petri.Trans
	multiple bool
	state    *State[F]
}

// frame is one DFS stack entry.
type frame[F any] struct {
	id        int
	state     *State[F]
	succs     []succ[F]
	next      int
	postponed bool // some single-enabled transitions were not fired
	fullDone  bool // cycle proviso already applied
}

// Analyze runs the generalized partial-order reachability analysis from
// the net's initial marking.
func (e *Engine[F]) Analyze(opts Options) (*Result, *Graph[F], error) {
	e.ensureInit()
	if opts.WitnessLimit == 0 {
		opts.WitnessLimit = 1
	}
	if err := validateCkptOptions(opts); err != nil {
		return nil, nil, err
	}
	var codec SnapshotCodec[F]
	if opts.Ckpt != nil || opts.Resume != nil {
		var err error
		if codec, err = e.snapshotCodec(); err != nil {
			return nil, nil, err
		}
	}
	defer opts.Metrics.StartSpan("core.analyze").End()
	var (
		cStates    = opts.Metrics.Counter("core.states")
		cArcs      = opts.Metrics.Counter("core.arcs")
		cMulti     = opts.Metrics.Counter("core.multi_firings")
		cSingle    = opts.Metrics.Counter("core.single_firings")
		cDead      = opts.Metrics.Counter("core.dead_states")
		cProviso   = opts.Metrics.Counter("core.proviso_expansions")
		gPeakValid = opts.Metrics.Gauge("core.peak_valid")
		gStack     = opts.Metrics.Gauge("core.stack_peak")
		hValid     = opts.Metrics.Histogram("core.valid_sets")
	)
	if opts.Metrics != nil {
		// Export the algebra's internal statistics (ZDD cache hit rates,
		// explicit-family op counts) on every exit path.
		if sr, ok := any(e.Alg).(StatsReporter); ok {
			defer sr.ReportStats(opts.Metrics)
		}
	}
	e.tk = opts.Trace.NewTrack("core")
	phAnalyze := opts.Trace.Intern("analyze")
	e.tk.Begin(phAnalyze)
	if opts.Trace != nil {
		// Stream the algebra's table-growth events onto this track for the
		// duration of the run only: the hook must not outlive the tracer.
		if ta, ok := any(e.Alg).(TraceAttacher); ok {
			ta.AttachTrace(opts.Trace, e.tk)
			defer ta.DetachTrace()
		}
	}
	res := &Result{Complete: true}
	var g *Graph[F]
	if opts.StoreGraph {
		g = &Graph[F]{}
	}

	index := make(map[string]int)
	onStack := make(map[int]bool)
	var states []*State[F]
	var stack []*frame[F]
	limited := false
	// steps counts completed DFS iterations — the checkpoint boundary
	// coordinate. resumedBoundary suppresses the first poll after a
	// resume: that boundary is the one the checkpoint was taken at.
	var steps int64
	resumedBoundary := false

	intern := func(s *State[F]) (int, bool) {
		k := e.key(s)
		if id, ok := index[k]; ok {
			return id, false
		}
		if opts.MaxStates > 0 && len(states) >= opts.MaxStates {
			limited = true
			return -1, false
		}
		id := len(states)
		index[k] = id
		states = append(states, s)
		if g != nil {
			g.States = append(g.States, s)
			g.Edges = append(g.Edges, nil)
		}
		c := e.Alg.Count(s.R)
		if c > res.PeakValid {
			res.PeakValid = c
		}
		cStates.Inc()
		hValid.Observe(int64(c))
		gPeakValid.SetMax(int64(c))
		opts.Progress.Tick(1)
		e.tk.State(int64(id), int64(c))
		return id, true
	}

	// Created before the local `stop` flag shadows the package name.
	cancel := stop.Every(opts.Ctx, 16)
	stop := false

	processFrame := func(f *frame[F]) bool {
		// The enabled-family cache: s_enabled(t, s) for every t, computed
		// once per state and shared by the deadlock check and the
		// successor computation (which previously both recomputed it).
		sEn := e.sEnabledAll(f.state)
		// Deadlock check first (Section 3.3): a state whose valid sets are
		// not all covered by single-enabled transitions exhibits a
		// deadlock possibility.
		dead := e.deadSets(f.state, sEn)
		if opts.TrapFilter {
			dead = e.Alg.Intersect(dead, f.state.M[opts.TrapPlace])
		}
		isDead := !e.Alg.IsEmpty(dead)
		if isDead {
			res.Deadlock = true
			res.DeadStates = append(res.DeadStates, f.id)
			cDead.Inc()
			if opts.WitnessLimit > 0 {
				for _, v := range e.Alg.Enumerate(dead, opts.WitnessLimit) {
					res.Witnesses = append(res.Witnesses, e.MarkingOf(f.state, v))
				}
			}
			if opts.StopAtDeadlock {
				return true
			}
			if !opts.ExpandDead {
				return false // leaf, as in the paper's algorithm
			}
		}
		f.succs, f.postponed = e.successors(f.state, opts, sEn)
		return false
	}

	if sn := opts.Resume; sn != nil {
		var rerr error
		states, index, onStack, stack, rerr = e.restoreSnapshot(sn, codec)
		if rerr != nil {
			return nil, nil, rerr
		}
		restoreResult(res, sn)
		steps = sn.Steps
		resumedBoundary = true
		cStates.Add(int64(len(states)))
		gPeakValid.SetMax(int64(res.PeakValid))
		opts.Progress.Tick(int64(len(states)))
	} else {
		s0 := e.InitialState()
		intern(s0)
		stack = []*frame[F]{{id: 0, state: s0}}
		onStack[0] = true
		if processFrame(stack[0]) {
			res.States = len(states)
			res.Complete = false
			return res, g, nil
		}
	}

	for len(stack) > 0 && !stop {
		if !resumedBoundary {
			if act := opts.Ckpt.poll(len(states), steps); act != CkptNone {
				snp := e.snapshotAt(states, stack, res, steps, codec)
				if opts.Ckpt.Save != nil {
					if err := opts.Ckpt.Save(snp); err != nil {
						return nil, nil, fmt.Errorf("core: checkpoint save: %w", err)
					}
				}
				if act == CkptStop {
					res.States = len(states)
					res.Complete = false
					return res, g, ErrCheckpointStop
				}
			}
		}
		resumedBoundary = false
		steps++
		if err := cancel.Poll(); err != nil {
			res.States = len(states)
			res.Complete = false
			e.tk.Abort(opts.Trace.Intern(err.Error()))
			return res, g, fmt.Errorf("core: aborted: %w", err)
		}
		f := stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onStack[f.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++

		id, fresh := intern(sc.state)
		if limited {
			res.States = len(states)
			res.Complete = false
			return res, g, ErrStateLimit
		}
		res.Arcs++
		cArcs.Inc()
		if sc.multiple {
			res.MultiFirings++
			cMulti.Inc()
			// One multifire event for the step plus one fire per member, so
			// per-transition firing counts stay accurate in summaries.
			e.tk.MultiFire(int64(len(sc.fired)), int64(id))
			for _, t := range sc.fired {
				e.tk.Fire(int64(t), int64(id))
			}
		} else {
			res.SingleFirings++
			cSingle.Inc()
			e.tk.Fire(int64(sc.fired[0]), int64(id))
		}
		if g != nil {
			g.Edges[f.id] = append(g.Edges[f.id], Arc{Fired: sc.fired, To: id, Multiple: sc.multiple})
		}
		if fresh {
			nf := &frame[F]{id: id, state: sc.state}
			if processFrame(nf) {
				stop = true
				break
			}
			onStack[id] = true
			stack = append(stack, nf)
			gStack.SetMax(int64(len(stack)))
		} else if onStack[id] && f.postponed && !f.fullDone {
			// Cycle proviso: a cycle closed while this state postponed
			// enabled transitions; expand it fully so nothing is ignored
			// forever (paper footnote 2).
			f.fullDone = true
			cProviso.Inc()
			f.succs = append(f.succs, e.allSingleSuccessors(f.state)...)
		}
	}

	res.States = len(states)
	res.Complete = !stop
	e.tk.End(phAnalyze)
	return res, g, nil
}

// successors computes the successor states of s following the priority of
// the paper's algorithm: candidate maximal conflicting sets fired
// simultaneously when they exist, otherwise one partial-order-selected
// conflict set fired transition by transition, otherwise every
// single-enabled transition. sEn is the state's enabled-family cache.
// The second return value reports whether some single-enabled transitions
// were postponed.
func (e *Engine[F]) successors(s *State[F], opts Options, sEn []F) ([]succ[F], bool) {
	nt := e.Net.NumTrans()

	singles := e.singleBuf[:0]
	isSingle := e.isSingle
	for t := 0; t < nt; t++ {
		if !e.Alg.IsEmpty(sEn[t]) {
			singles = append(singles, petri.Trans(t))
			isSingle[t] = true
		} else {
			isSingle[t] = false
		}
	}
	if len(singles) == 0 {
		return nil, false
	}

	if opts.NoAnticipation {
		return e.singleSuccs(s, singles, sEn), false
	}

	comps := e.enabledComponents(singles)
	e.tk.Conflict(int64(len(comps)), int64(len(singles)))

	if !opts.SingleOnly {
		if sc, fired, ok := e.tryMultiple(s, comps, isSingle, sEn); ok {
			return []succ[F]{sc}, fired < len(singles)
		}
	}

	// Middle branch: fire one safely-selectable conflict set, each member
	// separately.
	for _, comp := range comps {
		if e.poSafe(comp, comp, isSingle, s) {
			return e.singleSuccs(s, comp, sEn), len(comp) < len(singles)
		}
	}

	return e.singleSuccs(s, singles, sEn), false
}

// tryMultiple attempts the multiple-firing branch: it selects the candidate
// maximal conflicting sets, fires their union simultaneously, and verifies
// that no other single-enabled transition was disabled. It reports the
// number of transitions fired.
func (e *Engine[F]) tryMultiple(s *State[F], comps [][]petri.Trans, isSingle []bool, sEn []F) (succ[F], int, bool) {
	// A component is tentatively a candidate if all members are multiple
	// enabled; the po-safety condition is then iterated to a fixpoint since
	// it references the union of all remaining candidates. mEn is the
	// engine's transition-indexed scratch vector; entries are meaningful
	// only for members of tentative components.
	mEn := e.mEnBuf
	tentative := e.tentBuf[:0]
	for _, comp := range comps {
		ok := true
		for _, t := range comp {
			f := e.MEnabled(s, t)
			if e.Alg.IsEmpty(f) {
				ok = false
				break
			}
			mEn[t] = f
		}
		if ok {
			tentative = append(tentative, comp)
		}
	}
	inUnion := e.inUnion
	for {
		if len(tentative) == 0 {
			return succ[F]{}, 0, false
		}
		for _, comp := range tentative {
			for _, t := range comp {
				inUnion[t] = true
			}
		}
		kept := tentative[:0]
		changed := false
		for _, comp := range tentative {
			if e.poSafeSet(comp, inUnion, isSingle, s) {
				kept = append(kept, comp)
			} else {
				changed = true
			}
		}
		// Clear the union bits before the next round (or the exit): the
		// dropped components' members are no longer listed in tentative,
		// but every union member is in some component of comps.
		for _, comp := range comps {
			for _, t := range comp {
				inUnion[t] = false
			}
		}
		tentative = kept
		if !changed {
			break
		}
	}

	nFired := 0
	for _, comp := range tentative {
		nFired += len(comp)
	}
	tPrime := make([]petri.Trans, 0, nFired)
	for _, comp := range tentative {
		tPrime = append(tPrime, comp...)
	}
	next := e.multiFire(s, tPrime, mEn, sEn)

	// Post-check (Section 3.3): firing the candidates must not disable any
	// other transition that was single enabled.
	inT := e.inT
	for _, t := range tPrime {
		inT[t] = true
	}
	ok := true
	for t := 0; t < e.Net.NumTrans(); t++ {
		if isSingle[t] && !inT[t] {
			if e.Alg.IsEmpty(e.SEnabled(next, petri.Trans(t))) {
				ok = false
				break
			}
		}
	}
	for _, t := range tPrime {
		inT[t] = false
	}
	if !ok {
		return succ[F]{}, 0, false
	}
	return succ[F]{fired: tPrime, multiple: true, state: next}, len(tPrime), true
}

// enabledComponents partitions the single-enabled transitions into
// connected components of the structural conflict relation: the enabled
// parts of the maximal conflicting sets. The returned component slices
// live in the engine's scratch and are valid only until the next state is
// processed; anything retained (tPrime) is copied out.
func (e *Engine[F]) enabledComponents(singles []petri.Trans) [][]petri.Trans {
	k := len(singles)
	parent := e.ufParent[:k]
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if e.Net.Conflict(singles[i], singles[j]) {
				ri, rj := find(int32(i)), find(int32(j))
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	// Components numbered by first occurrence in singles, members kept in
	// singles order (both as in the original map-based grouping).
	compOf := e.compOf[:k]
	for i := range compOf {
		compOf[i] = -1
	}
	ncomp := 0
	for i := 0; i < k; i++ {
		r := find(int32(i))
		if compOf[r] < 0 {
			compOf[r] = int32(ncomp)
			ncomp++
		}
	}
	offs := e.compOff[:ncomp]
	cur := e.compCur[:ncomp]
	for i := range cur {
		cur[i] = 0
	}
	for i := 0; i < k; i++ {
		cur[compOf[find(int32(i))]]++
	}
	sum := int32(0)
	for c := 0; c < ncomp; c++ {
		offs[c] = sum
		sum += cur[c]
		cur[c] = offs[c]
	}
	members := e.memberBuf[:k]
	for i := 0; i < k; i++ {
		c := compOf[find(int32(i))]
		members[cur[c]] = singles[i]
		cur[c]++
	}
	comps := e.compsBuf[:0]
	for c := 0; c < ncomp; c++ {
		comps = append(comps, members[offs[c]:cur[c]])
	}
	return comps
}

// poSafe reports whether firing the conflict set comp is safe against the
// transitions outside the given union: every competitor for a token of
// •comp must either be inside the union, or be disabled with an empty
// input place that only the union can fill (so its branch is anticipated,
// not lost).
func (e *Engine[F]) poSafe(comp []petri.Trans, union []petri.Trans, isSingle []bool, s *State[F]) bool {
	inUnion := e.inUnion
	for _, t := range union {
		inUnion[t] = true
	}
	ok := e.poSafeSet(comp, inUnion, isSingle, s)
	for _, t := range union {
		inUnion[t] = false
	}
	return ok
}

func (e *Engine[F]) poSafeSet(comp []petri.Trans, inUnion []bool, isSingle []bool, s *State[F]) bool {
	for _, t := range comp {
		for _, p := range e.Net.Pre(t) {
			for _, w := range e.Net.PostT(p) {
				if inUnion[w] {
					continue
				}
				if isSingle[w] {
					return false // an enabled competitor would be disabled
				}
				if !e.anticipated(w, inUnion, s) {
					return false
				}
			}
		}
	}
	return true
}

// anticipated reports whether the disabled transition w cannot become
// enabled before the union fires: it has an empty input place whose
// producers all belong to the union.
func (e *Engine[F]) anticipated(w petri.Trans, inUnion []bool, s *State[F]) bool {
	for _, q := range e.Net.Pre(w) {
		if !e.Alg.IsEmpty(s.M[q]) {
			continue
		}
		all := true
		for _, prod := range e.Net.PreT(q) {
			if !inUnion[prod] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func (e *Engine[F]) singleSuccs(s *State[F], ts []petri.Trans, sEn []F) []succ[F] {
	out := make([]succ[F], 0, len(ts))
	for _, t := range ts {
		out = append(out, succ[F]{
			fired: e.firedOne[t],
			state: e.SingleFire(s, t, sEn[t]),
		})
	}
	return out
}

// allSingleSuccessors fires every single-enabled transition of s
// separately; used by the cycle proviso. Cold path: it recomputes the
// enabled families rather than using the per-state cache, because the
// proviso expands a frame long after its cache was overwritten.
func (e *Engine[F]) allSingleSuccessors(s *State[F]) []succ[F] {
	var out []succ[F]
	for t := 0; t < e.Net.NumTrans(); t++ {
		en := e.SEnabled(s, petri.Trans(t))
		if !e.Alg.IsEmpty(en) {
			out = append(out, succ[F]{
				fired: e.firedOne[t],
				state: e.SingleFire(s, petri.Trans(t), en),
			})
		}
	}
	return out
}
