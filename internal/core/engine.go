package core

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/petri"
)

// ErrStateLimit is returned when exploration would exceed Options.MaxStates.
var ErrStateLimit = errors.New("core: state limit exceeded")

// Options configures a generalized partial-order analysis.
type Options struct {
	// StopAtDeadlock halts the analysis as soon as one state with a
	// deadlock possibility is found.
	StopAtDeadlock bool
	// ExpandDead keeps exploring past states that exhibit a deadlock
	// possibility. The paper's algorithm treats them as leaves (its
	// pseudo-code reports and does not recurse), which is the default.
	ExpandDead bool
	// SingleOnly disables the multiple firing semantics (ablation): the
	// analysis then degenerates to exploration with single firings only.
	SingleOnly bool
	// NoAnticipation additionally disables the partial-order selection of
	// one conflict set (ablation): every single-enabled transition is fired
	// at every state.
	NoAnticipation bool
	// MaxStates caps the search at exactly this many GPN states; the
	// search stops with ErrStateLimit when one more would be interned, and
	// the firing that would have exceeded the cap is not recorded. Zero
	// means no limit.
	MaxStates int
	// StoreGraph retains all GPN states and arcs in the result.
	StoreGraph bool
	// WitnessLimit bounds the classical deadlock witness markings extracted
	// per dead state (default 1, <0 = none).
	WitnessLimit int
	// TrapFilter restricts deadlock reporting to dead valid sets whose
	// mapped marking includes TrapPlace. Used by the safety-to-deadlock
	// reduction: only deadlocks of the monitor trap witness a violation.
	TrapFilter bool
	TrapPlace  petri.Place
	// Metrics, if non-nil, receives analysis statistics under the "core."
	// prefix, plus the family algebra's own statistics when it implements
	// StatsReporter (see OBSERVABILITY.md). Nil costs nothing; metrics
	// never influence the exploration.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per GPN state interned.
	Progress *obs.Progress
}

// StatsReporter is implemented by family algebras that can export
// internal statistics (cache hit rates, node counts) into a metrics
// registry; Analyze invokes it once when Options.Metrics is set.
type StatsReporter interface {
	ReportStats(*obs.Registry)
}

// Arc is one edge of the GPN reachability graph: the simultaneous (or
// single) firing of Fired leading to state To.
type Arc struct {
	Fired    []petri.Trans
	To       int
	Multiple bool
}

// Graph is the stored GPN reachability graph.
type Graph[F any] struct {
	States []*State[F]
	Edges  [][]Arc
}

// Result summarizes a generalized partial-order analysis.
type Result struct {
	States        int // GPN states explored
	Arcs          int
	MultiFirings  int // multiple-firing steps taken
	SingleFirings int // single-firing steps taken
	Deadlock      bool
	DeadStates    []int           // ids of states with a deadlock possibility
	Witnesses     []petri.Marking // classical deadlock markings (≤ WitnessLimit per dead state)
	Complete      bool            // false if stopped early
	PeakValid     float64         // largest |r| encountered
}

// Engine runs the generalized partial-order analysis of Section 3.3 over a
// safe Petri net, parameterized by the family representation.
type Engine[F any] struct {
	Net *petri.Net
	Alg Algebra[F]
}

// NewEngine returns an engine for the net using the given family algebra.
// The algebra's universe must equal the net's transition count.
func NewEngine[F any](n *petri.Net, alg Algebra[F]) (*Engine[F], error) {
	if alg.Universe() != n.NumTrans() {
		return nil, fmt.Errorf("core: algebra universe %d != %d transitions of %s",
			alg.Universe(), n.NumTrans(), n.Name())
	}
	return &Engine[F]{Net: n, Alg: alg}, nil
}

// succ is a computed successor before interning.
type succ[F any] struct {
	fired    []petri.Trans
	multiple bool
	state    *State[F]
}

// frame is one DFS stack entry.
type frame[F any] struct {
	id        int
	state     *State[F]
	succs     []succ[F]
	next      int
	postponed bool // some single-enabled transitions were not fired
	fullDone  bool // cycle proviso already applied
}

// Analyze runs the generalized partial-order reachability analysis from
// the net's initial marking.
func (e *Engine[F]) Analyze(opts Options) (*Result, *Graph[F], error) {
	if opts.WitnessLimit == 0 {
		opts.WitnessLimit = 1
	}
	defer opts.Metrics.StartSpan("core.analyze").End()
	var (
		cStates    = opts.Metrics.Counter("core.states")
		cArcs      = opts.Metrics.Counter("core.arcs")
		cMulti     = opts.Metrics.Counter("core.multi_firings")
		cSingle    = opts.Metrics.Counter("core.single_firings")
		cDead      = opts.Metrics.Counter("core.dead_states")
		cProviso   = opts.Metrics.Counter("core.proviso_expansions")
		gPeakValid = opts.Metrics.Gauge("core.peak_valid")
		gStack     = opts.Metrics.Gauge("core.stack_peak")
		hValid     = opts.Metrics.Histogram("core.valid_sets")
	)
	if opts.Metrics != nil {
		// Export the algebra's internal statistics (ZDD cache hit rates,
		// explicit-family op counts) on every exit path.
		if sr, ok := any(e.Alg).(StatsReporter); ok {
			defer sr.ReportStats(opts.Metrics)
		}
	}
	res := &Result{Complete: true}
	var g *Graph[F]
	if opts.StoreGraph {
		g = &Graph[F]{}
	}

	index := make(map[string]int)
	onStack := make(map[int]bool)
	var states []*State[F]
	limited := false

	intern := func(s *State[F]) (int, bool) {
		k := e.key(s)
		if id, ok := index[k]; ok {
			return id, false
		}
		if opts.MaxStates > 0 && len(states) >= opts.MaxStates {
			limited = true
			return -1, false
		}
		id := len(states)
		index[k] = id
		states = append(states, s)
		if g != nil {
			g.States = append(g.States, s)
			g.Edges = append(g.Edges, nil)
		}
		c := e.Alg.Count(s.R)
		if c > res.PeakValid {
			res.PeakValid = c
		}
		cStates.Inc()
		hValid.Observe(int64(c))
		gPeakValid.SetMax(int64(c))
		opts.Progress.Tick(1)
		return id, true
	}

	s0 := e.InitialState()
	intern(s0)

	stack := []*frame[F]{{id: 0, state: s0}}
	onStack[0] = true
	stop := false

	processFrame := func(f *frame[F]) bool {
		// Deadlock check first (Section 3.3): a state whose valid sets are
		// not all covered by single-enabled transitions exhibits a
		// deadlock possibility.
		dead := e.DeadSets(f.state)
		if opts.TrapFilter {
			dead = e.Alg.Intersect(dead, f.state.M[opts.TrapPlace])
		}
		isDead := !e.Alg.IsEmpty(dead)
		if isDead {
			res.Deadlock = true
			res.DeadStates = append(res.DeadStates, f.id)
			cDead.Inc()
			if opts.WitnessLimit > 0 {
				for _, v := range e.Alg.Enumerate(dead, opts.WitnessLimit) {
					res.Witnesses = append(res.Witnesses, e.MarkingOf(f.state, v))
				}
			}
			if opts.StopAtDeadlock {
				return true
			}
			if !opts.ExpandDead {
				return false // leaf, as in the paper's algorithm
			}
		}
		f.succs, f.postponed = e.successors(f.state, opts)
		return false
	}
	if processFrame(stack[0]) {
		res.States = len(states)
		res.Complete = false
		return res, g, nil
	}

	for len(stack) > 0 && !stop {
		f := stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onStack[f.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++

		id, fresh := intern(sc.state)
		if limited {
			res.States = len(states)
			res.Complete = false
			return res, g, ErrStateLimit
		}
		res.Arcs++
		cArcs.Inc()
		if sc.multiple {
			res.MultiFirings++
			cMulti.Inc()
		} else {
			res.SingleFirings++
			cSingle.Inc()
		}
		if g != nil {
			g.Edges[f.id] = append(g.Edges[f.id], Arc{Fired: sc.fired, To: id, Multiple: sc.multiple})
		}
		if fresh {
			nf := &frame[F]{id: id, state: sc.state}
			if processFrame(nf) {
				stop = true
				break
			}
			onStack[id] = true
			stack = append(stack, nf)
			gStack.SetMax(int64(len(stack)))
		} else if onStack[id] && f.postponed && !f.fullDone {
			// Cycle proviso: a cycle closed while this state postponed
			// enabled transitions; expand it fully so nothing is ignored
			// forever (paper footnote 2).
			f.fullDone = true
			cProviso.Inc()
			f.succs = append(f.succs, e.allSingleSuccessors(f.state)...)
		}
	}

	res.States = len(states)
	res.Complete = !stop
	return res, g, nil
}

// successors computes the successor states of s following the priority of
// the paper's algorithm: candidate maximal conflicting sets fired
// simultaneously when they exist, otherwise one partial-order-selected
// conflict set fired transition by transition, otherwise every
// single-enabled transition. The second return value reports whether some
// single-enabled transitions were postponed.
func (e *Engine[F]) successors(s *State[F], opts Options) ([]succ[F], bool) {
	n := e.Net
	nt := n.NumTrans()

	sEn := make([]F, nt)
	var singles []petri.Trans
	isSingle := make([]bool, nt)
	for t := 0; t < nt; t++ {
		sEn[t] = e.SEnabled(s, petri.Trans(t))
		if !e.Alg.IsEmpty(sEn[t]) {
			singles = append(singles, petri.Trans(t))
			isSingle[t] = true
		}
	}
	if len(singles) == 0 {
		return nil, false
	}

	if opts.NoAnticipation {
		return e.singleSuccs(s, singles, sEn), false
	}

	comps := e.enabledComponents(singles)

	if !opts.SingleOnly {
		if sc, fired, ok := e.tryMultiple(s, comps, isSingle, sEn); ok {
			return []succ[F]{sc}, fired < len(singles)
		}
	}

	// Middle branch: fire one safely-selectable conflict set, each member
	// separately.
	for _, comp := range comps {
		if e.poSafe(comp, comp, isSingle, s) {
			return e.singleSuccs(s, comp, sEn), len(comp) < len(singles)
		}
	}

	return e.singleSuccs(s, singles, sEn), false
}

// tryMultiple attempts the multiple-firing branch: it selects the candidate
// maximal conflicting sets, fires their union simultaneously, and verifies
// that no other single-enabled transition was disabled. It reports the
// number of transitions fired.
func (e *Engine[F]) tryMultiple(s *State[F], comps [][]petri.Trans, isSingle []bool, sEn []F) (succ[F], int, bool) {
	// A component is tentatively a candidate if all members are multiple
	// enabled; the po-safety condition is then iterated to a fixpoint since
	// it references the union of all remaining candidates.
	mEn := make(map[petri.Trans]F)
	tentative := make([][]petri.Trans, 0, len(comps))
	for _, comp := range comps {
		ok := true
		for _, t := range comp {
			f := e.MEnabled(s, t)
			if e.Alg.IsEmpty(f) {
				ok = false
				break
			}
			mEn[t] = f
		}
		if ok {
			tentative = append(tentative, comp)
		}
	}
	for {
		if len(tentative) == 0 {
			return succ[F]{}, 0, false
		}
		union := make(map[petri.Trans]bool)
		for _, comp := range tentative {
			for _, t := range comp {
				union[t] = true
			}
		}
		kept := tentative[:0]
		changed := false
		for _, comp := range tentative {
			if e.poSafeSet(comp, union, isSingle, s) {
				kept = append(kept, comp)
			} else {
				changed = true
			}
		}
		tentative = kept
		if !changed {
			break
		}
	}

	var tPrime []petri.Trans
	for _, comp := range tentative {
		tPrime = append(tPrime, comp...)
	}
	next := e.MultiFire(s, tPrime, mEn)

	// Post-check (Section 3.3): firing the candidates must not disable any
	// other transition that was single enabled.
	inT := make(map[petri.Trans]bool, len(tPrime))
	for _, t := range tPrime {
		inT[t] = true
	}
	for t := 0; t < e.Net.NumTrans(); t++ {
		if isSingle[t] && !inT[petri.Trans(t)] {
			if e.Alg.IsEmpty(e.SEnabled(next, petri.Trans(t))) {
				return succ[F]{}, 0, false
			}
		}
	}
	return succ[F]{fired: tPrime, multiple: true, state: next}, len(tPrime), true
}

// enabledComponents partitions the single-enabled transitions into
// connected components of the structural conflict relation: the enabled
// parts of the maximal conflicting sets.
func (e *Engine[F]) enabledComponents(singles []petri.Trans) [][]petri.Trans {
	parent := make(map[petri.Trans]petri.Trans, len(singles))
	for _, t := range singles {
		parent[t] = t
	}
	var find func(petri.Trans) petri.Trans
	find = func(x petri.Trans) petri.Trans {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, t := range singles {
		for _, u := range singles[i+1:] {
			if e.Net.Conflict(t, u) {
				rt, ru := find(t), find(u)
				if rt != ru {
					parent[rt] = ru
				}
			}
		}
	}
	byRoot := make(map[petri.Trans][]petri.Trans)
	var roots []petri.Trans
	for _, t := range singles {
		r := find(t)
		if byRoot[r] == nil {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], t)
	}
	out := make([][]petri.Trans, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// poSafe reports whether firing the conflict set comp is safe against the
// transitions outside the given union: every competitor for a token of
// •comp must either be inside the union, or be disabled with an empty
// input place that only the union can fill (so its branch is anticipated,
// not lost).
func (e *Engine[F]) poSafe(comp []petri.Trans, union []petri.Trans, isSingle []bool, s *State[F]) bool {
	u := make(map[petri.Trans]bool, len(union))
	for _, t := range union {
		u[t] = true
	}
	return e.poSafeSet(comp, u, isSingle, s)
}

func (e *Engine[F]) poSafeSet(comp []petri.Trans, union map[petri.Trans]bool, isSingle []bool, s *State[F]) bool {
	for _, t := range comp {
		for _, p := range e.Net.Pre(t) {
			for _, w := range e.Net.PostT(p) {
				if union[w] {
					continue
				}
				if isSingle[w] {
					return false // an enabled competitor would be disabled
				}
				if !e.anticipated(w, union, s) {
					return false
				}
			}
		}
	}
	return true
}

// anticipated reports whether the disabled transition w cannot become
// enabled before the union fires: it has an empty input place whose
// producers all belong to the union.
func (e *Engine[F]) anticipated(w petri.Trans, union map[petri.Trans]bool, s *State[F]) bool {
	for _, q := range e.Net.Pre(w) {
		if !e.Alg.IsEmpty(s.M[q]) {
			continue
		}
		all := true
		for _, prod := range e.Net.PreT(q) {
			if !union[prod] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func (e *Engine[F]) singleSuccs(s *State[F], ts []petri.Trans, sEn []F) []succ[F] {
	out := make([]succ[F], 0, len(ts))
	for _, t := range ts {
		out = append(out, succ[F]{
			fired: []petri.Trans{t},
			state: e.SingleFire(s, t, sEn[t]),
		})
	}
	return out
}

// allSingleSuccessors fires every single-enabled transition of s
// separately; used by the cycle proviso.
func (e *Engine[F]) allSingleSuccessors(s *State[F]) []succ[F] {
	var out []succ[F]
	for t := 0; t < e.Net.NumTrans(); t++ {
		en := e.SEnabled(s, petri.Trans(t))
		if !e.Alg.IsEmpty(en) {
			out = append(out, succ[F]{
				fired: []petri.Trans{petri.Trans(t)},
				state: e.SingleFire(s, petri.Trans(t), en),
			})
		}
	}
	return out
}
