package core

import (
	"fmt"
	"testing"

	"repro/internal/family"
	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/zdd"
)

// analyzeBenchRows are the Table 1 instances the Analyze microbenchmarks
// cover: one row per family at a size where a single run stays well under
// a millisecond-to-tens-of-milliseconds, so `-benchtime=1x` smoke runs
// (scripts/check.sh) are cheap while `-benchtime=1s` gives stable
// allocs/op for perf iterations.
var analyzeBenchRows = []struct {
	family string
	size   int
}{
	{"nsdp", 4},
	{"nsdp", 8},
	{"asat", 4},
	{"over", 4},
	{"rw", 9},
}

// BenchmarkAnalyzeZDD measures one full generalized analysis per
// iteration — engine construction, r₀, exploration, witnesses — with the
// ZDD family algebra. The allocs/op column is the per-run allocation
// budget the hot-path work targets; States is constant per instance, so
// allocs/op comparisons across commits are per-state comparisons.
func BenchmarkAnalyzeZDD(b *testing.B) {
	for _, r := range analyzeBenchRows {
		net, err := models.ByName(r.family, r.size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s(%d)", r.family, r.size), func(b *testing.B) {
			benchAnalyze(b, net, func() (*Result, error) {
				e, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
				if err != nil {
					return nil, err
				}
				res, _, err := e.Analyze(Options{})
				return res, err
			})
		})
	}
}

// BenchmarkAnalyzeExplicit is BenchmarkAnalyzeZDD with the explicit
// reference algebra, restricted to sizes where it is not exponential.
func BenchmarkAnalyzeExplicit(b *testing.B) {
	for _, r := range []struct {
		family string
		size   int
	}{{"nsdp", 4}, {"asat", 4}, {"over", 4}, {"rw", 9}} {
		net, err := models.ByName(r.family, r.size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s(%d)", r.family, r.size), func(b *testing.B) {
			benchAnalyze(b, net, func() (*Result, error) {
				e, err := NewEngine[*family.Family](net, family.NewAlgebra(net.NumTrans()))
				if err != nil {
					return nil, err
				}
				res, _, err := e.Analyze(Options{})
				return res, err
			})
		})
	}
}

// BenchmarkAnalyzeZDDSteadyState isolates the exploration hot path from
// the one-time costs: the engine and algebra are reused across
// iterations, so after the first iteration every ZDD operation hits the
// warm unique/memo tables and allocs/op converges to the engine's true
// per-analysis floor (state interning plus successor records).
func BenchmarkAnalyzeZDDSteadyState(b *testing.B) {
	for _, r := range analyzeBenchRows {
		net, err := models.ByName(r.family, r.size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s(%d)", r.family, r.size), func(b *testing.B) {
			e, err := NewEngine[zdd.Node](net, zdd.NewAlgebra(net.NumTrans()))
			if err != nil {
				b.Fatal(err)
			}
			var states int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := e.Analyze(Options{})
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func benchAnalyze(b *testing.B, net *petri.Net, run func() (*Result, error)) {
	b.Helper()
	var states int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
	_ = net
}
