package core

import (
	"fmt"
	"testing"

	"repro/internal/family"
	"repro/internal/petri"
	"repro/internal/randnet"
	"repro/internal/zdd"
)

// diffMaxStates caps each exploration. Both engines make identical
// decisions in identical order, so two capped runs truncate at exactly
// the same frontier and stay comparable; the cap only bounds runtime
// (some random nets have state spaces far beyond what the explicit
// algebra can finish under -race).
const diffMaxStates = 3000

// runGPN analyzes a net with the given algebra and returns the result
// plus a canonical rendering of the witness markings.
func runGPN[F any](t *testing.T, n *petri.Net, alg Algebra[F]) (*Result, []string) {
	t.Helper()
	e, err := NewEngine[F](n, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Analyze(Options{WitnessLimit: 4, MaxStates: diffMaxStates})
	if err != nil && err != ErrStateLimit {
		t.Fatalf("%s: %v", n.Name(), err)
	}
	ws := make([]string, len(res.Witnesses))
	for i, w := range res.Witnesses {
		ws[i] = w.Key()
	}
	return res, ws
}

// TestDifferentialFamilyVsZDD pins the two family algebras against each
// other on seeded random safe nets: the explicit reference representation
// and the ZDD one must agree on the entire observable outcome of the
// generalized partial-order analysis — state/arc/firing counts, the
// deadlock verdict, the dead-state ids and the extracted witness
// markings. The engines share every exploration decision, so any
// divergence is an algebra bug (canonicity, op correctness, or key
// collisions), which is exactly what this test exists to catch after
// hot-path rewrites. Runs under the race gate of `make check`; configs
// are sized to finish in well under a second each even with -race.
func TestDifferentialFamilyVsZDD(t *testing.T) {
	configs := []randnet.Config{}
	for seed := int64(1); seed <= 12; seed++ {
		configs = append(configs, randnet.Default(seed))
	}
	// A few heavier shapes: more machines (concurrency), more branching
	// (conflict), more synchronization (deadlock-prone waits).
	configs = append(configs,
		randnet.Config{Machines: 4, PlacesPer: 3, LocalTrans: 2, SyncTrans: 4, Seed: 101},
		randnet.Config{Machines: 2, PlacesPer: 5, LocalTrans: 3, SyncTrans: 2, Seed: 102},
		randnet.Config{Machines: 5, PlacesPer: 2, LocalTrans: 1, SyncTrans: 5, Seed: 103},
		randnet.Config{Machines: 3, PlacesPer: 4, LocalTrans: 2, SyncTrans: 6, Seed: 104},
	)
	if testing.Short() {
		configs = configs[:4]
	}
	sawDeadlock := false
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d", cfg.Seed), func(t *testing.T) {
			n := randnet.Generate(cfg)
			fr, fw := runGPN(t, n, family.NewAlgebra(n.NumTrans()))
			zr, zw := runGPN(t, n, zdd.NewAlgebra(n.NumTrans()))
			if fr.States != zr.States || fr.Arcs != zr.Arcs ||
				fr.MultiFirings != zr.MultiFirings || fr.SingleFirings != zr.SingleFirings ||
				fr.Deadlock != zr.Deadlock || fr.Complete != zr.Complete ||
				fr.PeakValid != zr.PeakValid {
				t.Fatalf("%s: family (states=%d arcs=%d multi=%d single=%d dead=%v peak=%v) != zdd (states=%d arcs=%d multi=%d single=%d dead=%v peak=%v)",
					n.Name(),
					fr.States, fr.Arcs, fr.MultiFirings, fr.SingleFirings, fr.Deadlock, fr.PeakValid,
					zr.States, zr.Arcs, zr.MultiFirings, zr.SingleFirings, zr.Deadlock, zr.PeakValid)
			}
			if fmt.Sprint(fr.DeadStates) != fmt.Sprint(zr.DeadStates) {
				t.Fatalf("%s: dead states %v != %v", n.Name(), fr.DeadStates, zr.DeadStates)
			}
			if fmt.Sprint(fw) != fmt.Sprint(zw) {
				t.Fatalf("%s: witnesses %v != %v", n.Name(), fw, zw)
			}
			sawDeadlock = sawDeadlock || fr.Deadlock
		})
	}
	if !testing.Short() && !sawDeadlock {
		t.Error("no seed produced a deadlock; the witness comparison never ran — reseed the configs")
	}
}
