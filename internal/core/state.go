package core

import (
	"repro/internal/petri"
	"repro/internal/tset"
)

// State is a Generalized Petri Net state ⟨m, r⟩: per-place families of
// transition sets plus the family of valid transition sets (Definition 3.1).
type State[F any] struct {
	// M[p] is the marking family of place p.
	M []F
	// R is the family of valid transition sets.
	R F
}

// key returns a map key unique per state value: the concatenation of the
// algebra's self-delimiting binary keys of every place family plus r,
// assembled in the engine's reusable buffer (one string allocation per
// interned state).
func (e *Engine[F]) key(s *State[F]) string {
	b := e.keyBuf[:0]
	for _, f := range s.M {
		b = e.Alg.AppendKey(b, f)
	}
	b = e.Alg.AppendKey(b, s.R)
	e.keyBuf = b
	return string(b)
}

// InitialState builds ⟨m₀ᴳ, r₀⟩ for the engine's net (Section 3.3):
// r₀ is the family of maximal conflict-free transition sets, every
// initially marked place carries r₀, and every other place is empty.
func (e *Engine[F]) InitialState() *State[F] {
	n := e.Net
	r0 := e.Alg.MaximalConflictFree(func(i, j int) bool {
		return n.Conflict(petri.Trans(i), petri.Trans(j))
	})
	s := &State[F]{M: make([]F, n.NumPlaces()), R: r0}
	empty := e.Alg.Empty()
	for p := 0; p < n.NumPlaces(); p++ {
		s.M[p] = empty
	}
	for _, p := range n.InitialPlaces() {
		s.M[p] = r0
	}
	return s
}

// SEnabled computes s_enabled(t, ⟨m,r⟩) = ∩_{p∈•t} m(p) ∩ r
// (Definition 3.2).
func (e *Engine[F]) SEnabled(s *State[F], t petri.Trans) F {
	pre := e.Net.Pre(t)
	acc := s.M[pre[0]]
	for _, p := range pre[1:] {
		if e.Alg.IsEmpty(acc) {
			return acc
		}
		acc = e.Alg.Intersect(acc, s.M[p])
	}
	return e.Alg.Intersect(acc, s.R)
}

// sEnabledAll fills the engine's per-state enabled-family cache:
// sEnBuf[t] = s_enabled(t, s) for every transition. Computed once per
// state and threaded through deadSets, successors, tryMultiple and
// multiFire, which previously each recomputed it from scratch.
func (e *Engine[F]) sEnabledAll(s *State[F]) []F {
	buf := e.sEnBuf
	for t := range buf {
		buf[t] = e.SEnabled(s, petri.Trans(t))
	}
	return buf
}

// MEnabled computes m_enabled(t, ⟨m,r⟩) = {v ∈ ∩_{p∈•t} m(p) | t ∈ v}
// (Definition 3.5).
func (e *Engine[F]) MEnabled(s *State[F], t petri.Trans) F {
	pre := e.Net.Pre(t)
	acc := s.M[pre[0]]
	for _, p := range pre[1:] {
		if e.Alg.IsEmpty(acc) {
			return acc
		}
		acc = e.Alg.Intersect(acc, s.M[p])
	}
	return e.Alg.OnSet(acc, int(t))
}

// SingleFire applies the single firing rule (Definition 3.3) for a
// transition with s_enabled(t,s) = en ≠ ∅: en is removed from the marking
// of every p ∈ •t \ t•, and added to every p ∈ t• \ •t. r is unchanged.
// The •t \ t• and t• \ •t place slices are precomputed per transition, so
// a firing allocates nothing beyond the successor state itself.
func (e *Engine[F]) SingleFire(s *State[F], t petri.Trans, en F) *State[F] {
	e.ensureInit()
	next := &State[F]{M: append([]F(nil), s.M...), R: s.R}
	for _, p := range e.preOnly[t] {
		next.M[p] = e.Alg.Diff(next.M[p], en)
	}
	for _, p := range e.postOnly[t] {
		next.M[p] = e.Alg.Union(next.M[p], en)
	}
	return next
}

// MultiFire applies the multiple firing rule (Definition 3.6) for a set T′
// of transitions that are all multiple enabled. mEn[t] must hold
// m_enabled(t, s) for each t ∈ T′. The new valid sets are
//
//	r′ = ∪_{t∉T′} s_enabled(t,s) ∪ ∪_{t∈T′} m_enabled(t,s)
//
// and every place family is conditioned by ∩ r′, which is what prunes
// "extended conflicts" such as {A,D} in the paper's Figure 7.
//
// This is the allocating convenience form; the analysis hot path runs
// multiFire against the engine's per-state enabled-family cache.
func (e *Engine[F]) MultiFire(s *State[F], tPrime []petri.Trans, mEn map[petri.Trans]F) *State[F] {
	e.ensureInit()
	nt := e.Net.NumTrans()
	mEnV := make([]F, nt)
	for t, f := range mEn {
		mEnV[t] = f
	}
	sEn := make([]F, nt)
	for t := 0; t < nt; t++ {
		sEn[t] = e.SEnabled(s, petri.Trans(t))
	}
	return e.multiFire(s, tPrime, mEnV, sEn)
}

// multiFire is MultiFire against the per-state caches: mEn and sEn are
// transition-indexed vectors (mEn[t] meaningful for t ∈ T′ only, sEn the
// state's enabled-family cache). T′ membership runs on the engine's
// scratch bitset; all scratch is left cleared on return.
func (e *Engine[F]) multiFire(s *State[F], tPrime []petri.Trans, mEn []F, sEn []F) *State[F] {
	n := e.Net
	nt := n.NumTrans()
	inT := e.inT
	for _, t := range tPrime {
		inT[t] = true
	}

	rNew := e.Alg.Empty()
	for t := 0; t < nt; t++ {
		if inT[t] {
			rNew = e.Alg.Union(rNew, mEn[t])
		} else {
			rNew = e.Alg.Union(rNew, sEn[t])
		}
	}

	// removed[p] = ∪_{t ∈ T′ ∩ p•} m_enabled(t,s)
	// added[p]   = ∪_{t ∈ T′ ∩ •p} m_enabled(t,s)
	next := &State[F]{M: make([]F, n.NumPlaces()), R: rNew}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		f := s.M[p]
		for _, t := range n.PostT(p) { // t consumes from p
			if inT[t] {
				f = e.Alg.Diff(f, mEn[t])
			}
		}
		for _, t := range n.PreT(p) { // t produces into p
			if inT[t] {
				f = e.Alg.Union(f, mEn[t])
			}
		}
		next.M[p] = e.Alg.Intersect(f, rNew)
	}
	for _, t := range tPrime {
		inT[t] = false
	}
	return next
}

// DeadSets returns r \ ∪_t s_enabled(t, s): the valid sets (histories) in
// which no transition is enabled. The state exhibits a deadlock
// possibility iff this family is non-empty (Section 3.3).
func (e *Engine[F]) DeadSets(s *State[F]) F {
	alive := e.Alg.Empty()
	for t := petri.Trans(0); int(t) < e.Net.NumTrans(); t++ {
		alive = e.Alg.Union(alive, e.SEnabled(s, t))
	}
	return e.Alg.Diff(s.R, alive)
}

// deadSets is DeadSets against the state's enabled-family cache.
func (e *Engine[F]) deadSets(s *State[F], sEn []F) F {
	alive := e.Alg.Empty()
	for _, en := range sEn {
		alive = e.Alg.Union(alive, en)
	}
	return e.Alg.Diff(s.R, alive)
}

// Mapping implements Definition 3.4: the set of classical safe-net
// markings represented by the GPN state, one per valid set v ∈ r
// (markings may coincide). At most limit markings are produced
// (all if limit <= 0). Mapping of a valid set v is {p | v ∈ m(p)}.
func (e *Engine[F]) Mapping(s *State[F], limit int) []petri.Marking {
	sets := e.Alg.Enumerate(s.R, limit)
	seen := make(map[string]bool)
	var out []petri.Marking
	for _, v := range sets {
		m := e.MarkingOf(s, v)
		k := m.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, m)
		}
	}
	return out
}

// MarkingOf returns the classical marking {p | v ∈ m(p)} selected by a
// single valid set v.
func (e *Engine[F]) MarkingOf(s *State[F], v tset.TSet) petri.Marking {
	m := e.Net.EmptyMarking()
	for p := petri.Place(0); int(p) < e.Net.NumPlaces(); p++ {
		if e.Alg.Contains(s.M[p], v) {
			m.Set(p)
		}
	}
	return m
}
