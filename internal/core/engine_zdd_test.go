package core

import (
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/zdd"
)

func analyzeZDD(t *testing.T, n *petri.Net, opts Options) *Result {
	t.Helper()
	e, err := NewEngine[zdd.Node](n, zdd.NewAlgebra(n.NumTrans()))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Analyze(opts)
	if err != nil {
		t.Fatalf("%s: %v", n.Name(), err)
	}
	return res
}

// TestZDDMatchesExplicitAlgebra checks that both family representations
// drive the analysis to identical results on every model.
func TestZDDMatchesExplicitAlgebra(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(4),
		models.Fig1(4), models.Fig2(4), models.Fig3(), models.Fig7(),
		models.ReadersWriters(4), models.ArbiterTree(4), models.Overtake(3),
	}
	for _, net := range nets {
		ex := analyzeExplicit(t, net, Options{})
		zd := analyzeZDD(t, net, Options{})
		if ex.States != zd.States || ex.Deadlock != zd.Deadlock ||
			ex.Arcs != zd.Arcs || ex.PeakValid != zd.PeakValid {
			t.Errorf("%s: explicit (states=%d arcs=%d dl=%v peak=%v) != zdd (states=%d arcs=%d dl=%v peak=%v)",
				net.Name(), ex.States, ex.Arcs, ex.Deadlock, ex.PeakValid,
				zd.States, zd.Arcs, zd.Deadlock, zd.PeakValid)
		}
	}
}

// TestZDDNSDPLargeScale checks the paper's headline scaling claim at the
// sizes the explicit representation cannot touch: NSDP(8), NSDP(10) and
// beyond still take exactly 3 states, find the deadlock, and finish fast
// ("CPU times increase linearly with problem size", Section 4).
func TestZDDNSDPLargeScale(t *testing.T) {
	for _, n := range []int{8, 10, 16, 24} {
		start := time.Now()
		res := analyzeZDD(t, models.NSDP(n), Options{})
		elapsed := time.Since(start)
		if !res.Deadlock {
			t.Errorf("NSDP(%d): deadlock not found", n)
		}
		if res.States != 3 {
			t.Errorf("NSDP(%d): %d states, paper reports 3", n, res.States)
		}
		if elapsed > 10*time.Second {
			t.Errorf("NSDP(%d): took %v; the analysis should stay near-linear", n, elapsed)
		}
		t.Logf("NSDP(%d): states=%d |r| peak=%v time=%v", n, res.States, res.PeakValid, elapsed)
	}
}

// TestZDDFig2LargeScale scales the Figure 2 net to sizes where the valid
// sets number 2^40: the analysis must still need exactly 2 states.
func TestZDDFig2LargeScale(t *testing.T) {
	for _, n := range []int{10, 20, 40} {
		res := analyzeZDD(t, models.Fig2(n), Options{})
		if res.States != 2 {
			t.Errorf("Fig2(%d): %d states, want 2", n, res.States)
		}
		if want := float64(int64(1) << n); res.PeakValid != want {
			t.Errorf("Fig2(%d): peak |r| = %v, want 2^%d = %v", n, res.PeakValid, n, want)
		}
	}
}

// TestZDDRWLargeScale checks RW stays at 2 states at paper sizes and above.
func TestZDDRWLargeScale(t *testing.T) {
	for _, n := range []int{6, 9, 12, 15, 20} {
		res := analyzeZDD(t, models.ReadersWriters(n), Options{})
		if res.Deadlock {
			t.Errorf("RW(%d): spurious deadlock", n)
		}
		if res.States != 2 {
			t.Errorf("RW(%d): %d states, paper reports 2", n, res.States)
		}
	}
}

// TestZDDASATScale checks the arbiter tree at the paper's largest size.
func TestZDDASATScale(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		res := analyzeZDD(t, models.ArbiterTree(n), Options{})
		if res.Deadlock {
			t.Errorf("ASAT(%d): spurious deadlock", n)
		}
		t.Logf("ASAT(%d): GPO states=%d", n, res.States)
	}
}

// TestZDDOvertakeScale checks OVER at and beyond the paper's sizes.
func TestZDDOvertakeScale(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		res := analyzeZDD(t, models.Overtake(n), Options{})
		if res.Deadlock {
			t.Errorf("OVER(%d): spurious deadlock", n)
		}
		t.Logf("OVER(%d): GPO states=%d", n, res.States)
	}
}
