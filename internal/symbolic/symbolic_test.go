package symbolic

import (
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
)

// TestMatchesExplicit cross-validates the symbolic engine against
// exhaustive explicit reachability on every model: the reachable state
// count and the deadlock verdict must agree exactly.
func TestMatchesExplicit(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3), models.NSDP(4),
		models.Fig1(3), models.Fig1(6),
		models.Fig2(2), models.Fig2(4),
		models.Fig3(), models.Fig5(), models.Fig7(),
		models.ReadersWriters(3), models.ReadersWriters(5),
		models.ArbiterTree(2), models.ArbiterTree(4),
		models.Overtake(2), models.Overtake(3),
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		orders := []Order{OrderInterleaved}
		// The sequential order makes the frame conditions of the transition
		// relation exponential in the number of untouched places (that is
		// the point of the ablation), so only exercise it on small nets.
		if net.NumPlaces() <= 14 {
			orders = append(orders, OrderSequential)
		}
		for _, ord := range orders {
			res, err := Analyze(net, Options{Order: ord})
			if err != nil {
				t.Fatalf("%s: %v", net.Name(), err)
			}
			if int(res.States) != full.States {
				t.Errorf("%s (order=%d): symbolic states=%v explicit=%d",
					net.Name(), ord, res.States, full.States)
			}
			if res.Deadlock != full.Deadlock {
				t.Errorf("%s (order=%d): symbolic deadlock=%v explicit=%v",
					net.Name(), ord, res.Deadlock, full.Deadlock)
			}
		}
	}
}

// TestWitnessIsRealDeadlock checks the extracted witness marking against
// the explicit deadlock set.
func TestWitnessIsRealDeadlock(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		net := models.NSDP(n)
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deadlock {
			t.Fatalf("NSDP(%d): deadlock missed", n)
		}
		found := false
		for _, m := range full.Deadlocks {
			if m.Equal(res.Witness) {
				found = true
			}
		}
		if !found {
			t.Errorf("NSDP(%d): witness %s is not a real deadlock",
				n, res.Witness.String(net))
		}
	}
}

// TestPeakGrowsWithNSDP records peak BDD sizes (the Table 1 statistic) and
// checks they grow with problem size, as in the paper's SMV column.
func TestPeakGrowsWithNSDP(t *testing.T) {
	prev := 0
	for _, n := range []int{2, 4, 6} {
		res, err := Analyze(models.NSDP(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakNodes <= prev {
			t.Errorf("NSDP(%d): peak %d did not grow past %d", n, res.PeakNodes, prev)
		}
		prev = res.PeakNodes
		t.Logf("NSDP(%d): states=%v peak=%d final=%d iters=%d",
			n, res.States, res.PeakNodes, res.FinalNodes, res.Iterations)
	}
}

// TestNodeLimit checks the guard path.
func TestNodeLimit(t *testing.T) {
	_, err := Analyze(models.NSDP(6), Options{MaxNodes: 100})
	if err != ErrNodeLimit {
		t.Errorf("got %v, want ErrNodeLimit", err)
	}
}

// TestOrderingAblation records that the interleaved order is no worse than
// the sequential one on a concurrency-heavy model.
func TestOrderingAblation(t *testing.T) {
	net := models.Fig1(6)
	inter, err := Analyze(net, Options{Order: OrderInterleaved})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Analyze(net, Options{Order: OrderSequential})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig1(8): interleaved peak=%d, sequential peak=%d", inter.PeakNodes, seq.PeakNodes)
	if inter.States != seq.States {
		t.Errorf("orders disagree on state count: %v vs %v", inter.States, seq.States)
	}
}
