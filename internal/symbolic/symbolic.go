// Package symbolic implements OBDD-based symbolic reachability analysis of
// safe Petri nets (Section 2.4 of the paper; the role SMV plays in its
// Table 1): one boolean variable per place, a partitioned transition
// relation, breadth-first image computation to a fixpoint, and a symbolic
// deadlock check. The manager's peak node count is reported as the
// "Peak BDD-size" statistic.
package symbolic

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bdd"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/stop"
)

// ErrNodeLimit is returned when the BDD grows beyond Options.MaxNodes.
var ErrNodeLimit = errors.New("symbolic: BDD node limit exceeded")

// Order selects the variable ordering of current/next state variables.
type Order int

const (
	// OrderInterleaved puts each place's next-state variable directly
	// after its current-state variable — the standard choice for
	// transition relations.
	OrderInterleaved Order = iota
	// OrderSequential puts all current-state variables before all
	// next-state variables; usually much worse (ablation).
	OrderSequential
)

// Options configures a symbolic analysis.
type Options struct {
	// Ctx, if non-nil, is polled between image steps: once cancelled the
	// analysis stops and Analyze returns a partial Result (Complete:
	// false, peak node count and iterations so far) plus the context's
	// error.
	Ctx   context.Context
	Order Order
	// MaxNodes aborts the analysis when the manager exceeds this many
	// nodes (0 = no limit).
	MaxNodes int
	// Bad, if non-empty, adds a safety check: is a marking with all these
	// places simultaneously marked reachable?
	Bad []petri.Place
	// Metrics, if non-nil, receives analysis statistics under the
	// "symbolic." prefix plus the BDD manager's cache statistics under
	// "bdd." (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per image iteration.
	Progress *obs.Progress
	// Trace, if non-nil, records flight-recorder events: phase brackets
	// for relation building and the fixpoint, one iter event per image
	// step (with the manager size), and a terminal abort on cancellation.
	Trace *trace.Tracer
}

// Result summarizes a symbolic reachability analysis.
type Result struct {
	States     float64 // |reachable set| (exact while it fits a float64)
	PeakNodes  int     // peak BDD manager size
	FinalNodes int     // nodes of the reached-set BDD
	Iterations int     // image steps to the fixpoint
	Deadlock   bool
	Witness    petri.Marking // one deadlock marking, if any
	BadFound   bool          // Options.Bad combination is reachable
	BadWitness petri.Marking // one bad marking, if any
	Complete   bool          // false if the analysis was cancelled mid-fixpoint
}

// analyzer carries the encoding.
type analyzer struct {
	net  *petri.Net
	m    *bdd.Manager
	cur  []int  // variable of place p (current state)
	nxt  []int  // variable of place p (next state)
	shed []bool // quantification cube: current-state variables
	perm []int  // renaming next → current
}

func newAnalyzer(n *petri.Net, order Order) *analyzer {
	np := n.NumPlaces()
	a := &analyzer{
		net: n,
		m:   bdd.NewManager(2 * np),
		cur: make([]int, np),
		nxt: make([]int, np),
	}
	for p := 0; p < np; p++ {
		switch order {
		case OrderInterleaved:
			a.cur[p], a.nxt[p] = 2*p, 2*p+1
		case OrderSequential:
			a.cur[p], a.nxt[p] = p, np+p
		}
	}
	a.shed = make([]bool, 2*np)
	a.perm = make([]int, 2*np)
	for p := 0; p < np; p++ {
		a.shed[a.cur[p]] = true
		a.perm[a.cur[p]] = a.cur[p]
		a.perm[a.nxt[p]] = a.cur[p]
	}
	return a
}

// transitionRelation builds T_t(x, x′): t enabled in x, tokens moved, and
// every untouched place unchanged.
func (a *analyzer) transitionRelation(t petri.Trans) bdd.Node {
	n, m := a.net, a.m
	touched := make(map[petri.Place]bool)
	rel := bdd.True
	for _, p := range n.Pre(t) {
		touched[p] = true
		rel = m.And(rel, m.Var(a.cur[p])) // enabledness
	}
	for _, p := range n.Post(t) {
		touched[p] = true
	}
	inPost := make(map[petri.Place]bool)
	for _, p := range n.Post(t) {
		inPost[p] = true
	}
	for _, p := range n.Pre(t) {
		if !inPost[p] {
			rel = m.And(rel, m.NVar(a.nxt[p])) // token removed
		} else {
			rel = m.And(rel, m.Var(a.nxt[p])) // self-loop keeps token
		}
	}
	for _, p := range n.Post(t) {
		rel = m.And(rel, m.Var(a.nxt[p])) // token added
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if !touched[p] {
			rel = m.And(rel, m.Equiv(m.Var(a.cur[p]), m.Var(a.nxt[p])))
		}
	}
	return rel
}

// Analyze runs the symbolic reachability analysis and deadlock check.
func Analyze(n *petri.Net, opts Options) (*Result, error) {
	defer opts.Metrics.StartSpan("symbolic.analyze").End()
	a := newAnalyzer(n, opts.Order)
	m := a.m
	if opts.Metrics != nil {
		// Export manager statistics on every exit path, including the
		// node-limit aborts: peak size at abort is exactly what a cap
		// investigation needs.
		defer func() {
			st := m.Stats()
			reg := opts.Metrics
			reg.Gauge("symbolic.peak_nodes").Set(int64(st.Peak))
			reg.Gauge("bdd.nodes").Set(int64(st.Nodes))
			reg.Gauge("bdd.unique_hits").Set(st.UniqueHits)
			reg.Gauge("bdd.unique_misses").Set(st.UniqueMisses)
			reg.Gauge("bdd.cache_hits").Set(st.CacheHits)
			reg.Gauge("bdd.cache_misses").Set(st.CacheMisses)
		}()
	}
	cIter := opts.Metrics.Counter("symbolic.iterations")
	tk := opts.Trace.NewTrack("symbolic")
	phRel := opts.Trace.Intern("relations")
	phFix := opts.Trace.Intern("fixpoint")

	iterations := 0
	cancel := stop.Every(opts.Ctx, 1)
	abort := func(err error) (*Result, error) {
		tk.Abort(opts.Trace.Intern(err.Error()))
		return &Result{PeakNodes: m.Peak(), Iterations: iterations},
			fmt.Errorf("symbolic: aborted: %w", err)
	}

	tk.Begin(phRel)
	rels := make([]bdd.Node, n.NumTrans())
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		if err := cancel.Poll(); err != nil {
			return abort(err)
		}
		rels[t] = a.transitionRelation(t)
		if opts.MaxNodes > 0 && m.Size() > opts.MaxNodes {
			return nil, ErrNodeLimit
		}
	}
	tk.End(phRel)

	// Initial state.
	init := bdd.True
	marked := make(map[petri.Place]bool)
	for _, p := range n.InitialPlaces() {
		marked[p] = true
	}
	for p := petri.Place(0); int(p) < n.NumPlaces(); p++ {
		if marked[p] {
			init = m.And(init, m.Var(a.cur[p]))
		} else {
			init = m.And(init, m.NVar(a.cur[p]))
		}
	}

	reached := init
	frontier := init
	tk.Begin(phFix)
	for frontier != bdd.False {
		iterations++
		cIter.Inc()
		opts.Progress.Tick(1)
		img := bdd.False
		for _, rel := range rels {
			if err := cancel.Poll(); err != nil {
				return abort(err)
			}
			step := m.AndExists(frontier, rel, a.shed)
			img = m.Or(img, m.Rename(step, a.perm))
			if opts.MaxNodes > 0 && m.Size() > opts.MaxNodes {
				return nil, ErrNodeLimit
			}
		}
		frontier = m.And(img, m.Not(reached))
		reached = m.Or(reached, img)
		tk.Iter(int64(iterations), int64(m.Size()))
	}
	tk.End(phFix)

	// Deadlock: reached ∧ no transition enabled.
	someEnabled := bdd.False
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		en := bdd.True
		for _, p := range n.Pre(t) {
			en = m.And(en, m.Var(a.cur[p]))
		}
		someEnabled = m.Or(someEnabled, en)
	}
	dead := m.And(reached, m.Not(someEnabled))

	res := &Result{
		States:     m.SatCount(reached) / math.Exp2(float64(n.NumPlaces())),
		PeakNodes:  m.Peak(),
		FinalNodes: m.NodeCount(reached),
		Iterations: iterations,
		Complete:   true,
	}
	if assign, ok := m.AnySat(dead); ok {
		res.Deadlock = true
		res.Witness = a.markingOf(assign)
	}

	if len(opts.Bad) > 0 {
		badF := bdd.True
		for _, p := range opts.Bad {
			badF = m.And(badF, m.Var(a.cur[p]))
		}
		if assign, ok := m.AnySat(m.And(reached, badF)); ok {
			res.BadFound = true
			res.BadWitness = a.markingOf(assign)
		}
	}
	return res, nil
}

func (a *analyzer) markingOf(assign []bool) petri.Marking {
	w := a.net.EmptyMarking()
	for p := petri.Place(0); int(p) < a.net.NumPlaces(); p++ {
		if assign[a.cur[p]] {
			w.Set(p)
		}
	}
	return w
}
