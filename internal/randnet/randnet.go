// Package randnet generates random safe Petri nets for property-based
// differential testing of the analysis engines.
//
// A net is composed of state machines — cyclically connected automata each
// holding exactly one token — plus synchronizing transitions that consume
// one place from each of two machines and produce one place in each. Every
// transition moves the single token of each participating machine, so the
// nets are safe by construction, while still exhibiting every phenomenon
// the analyses care about: concurrency (between machines), conflict
// (branching places), synchronization and deadlock (cross-machine waits).
package randnet

import (
	"fmt"
	"math/rand"

	"repro/internal/petri"
)

// Config parameterizes a random net.
type Config struct {
	Machines   int // number of component state machines (≥ 1)
	PlacesPer  int // places per machine (≥ 2)
	LocalTrans int // local transitions per machine beyond the base cycle
	SyncTrans  int // transitions synchronizing two machines
	Seed       int64
}

// Default returns a small configuration suitable for exhaustive
// cross-validation.
func Default(seed int64) Config {
	return Config{Machines: 3, PlacesPer: 3, LocalTrans: 1, SyncTrans: 3, Seed: seed}
}

// Generate builds a random safe net for the configuration.
func Generate(cfg Config) *petri.Net {
	if cfg.Machines < 1 || cfg.PlacesPer < 2 {
		panic("randnet: need at least 1 machine with 2 places")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := petri.NewBuilder(fmt.Sprintf("rand(m%d,p%d,l%d,s%d,seed%d)",
		cfg.Machines, cfg.PlacesPer, cfg.LocalTrans, cfg.SyncTrans, cfg.Seed))

	places := make([][]petri.Place, cfg.Machines)
	for m := 0; m < cfg.Machines; m++ {
		places[m] = make([]petri.Place, cfg.PlacesPer)
		for s := 0; s < cfg.PlacesPer; s++ {
			places[m][s] = b.Place(fmt.Sprintf("m%ds%d", m, s))
		}
		b.Mark(places[m][0])
	}

	// arcs tracks transition signatures to avoid duplicate structure.
	seen := make(map[string]bool)
	tcount := 0
	addTrans := func(pre, post []petri.Place) {
		sig := fmt.Sprint(pre, post)
		if seen[sig] {
			return
		}
		seen[sig] = true
		b.TransArcs(fmt.Sprintf("t%d", tcount), pre, post)
		tcount++
	}

	// Base chain per machine so every machine has some behavior. The
	// closing transition back to the start is added only with probability
	// one half: machines whose cycle stays open depend on synchronizations
	// to make progress, which is what makes deadlocks reachable.
	for m := 0; m < cfg.Machines; m++ {
		for s := 0; s < cfg.PlacesPer-1; s++ {
			addTrans(
				[]petri.Place{places[m][s]},
				[]petri.Place{places[m][s+1]})
		}
		if rng.Intn(4) == 0 {
			addTrans(
				[]petri.Place{places[m][cfg.PlacesPer-1]},
				[]petri.Place{places[m][0]})
		}
	}
	// Extra local transitions: random jumps inside one machine; these
	// create conflicts (several transitions consuming the same place).
	for m := 0; m < cfg.Machines; m++ {
		for i := 0; i < cfg.LocalTrans; i++ {
			from := rng.Intn(cfg.PlacesPer)
			to := rng.Intn(cfg.PlacesPer)
			if from == to {
				to = (to + 1) % cfg.PlacesPer
			}
			addTrans(
				[]petri.Place{places[m][from]},
				[]petri.Place{places[m][to]})
		}
	}
	// Synchronizations between pairs of machines; these create both
	// concurrency constraints and potential deadlocks.
	if cfg.Machines >= 2 {
		for i := 0; i < cfg.SyncTrans; i++ {
			m1 := rng.Intn(cfg.Machines)
			m2 := rng.Intn(cfg.Machines)
			if m1 == m2 {
				m2 = (m2 + 1) % cfg.Machines
			}
			pre := []petri.Place{
				places[m1][rng.Intn(cfg.PlacesPer)],
				places[m2][rng.Intn(cfg.PlacesPer)],
			}
			if rng.Intn(4) == 0 {
				// Terminating handshake: consumes both tokens for good.
				// This is what makes real deadlocks reachable often.
				addTrans(pre, nil)
			} else {
				addTrans(pre, []petri.Place{
					places[m1][rng.Intn(cfg.PlacesPer)],
					places[m2][rng.Intn(cfg.PlacesPer)],
				})
			}
		}
	}
	return b.MustBuild()
}
