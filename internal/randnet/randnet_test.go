package randnet

import (
	"testing"

	"repro/internal/reach"
)

// TestGeneratedNetsAreSafe exhausts the state space of many random nets:
// Explore errors out if any firing violates 1-boundedness, so a clean run
// is the safety proof for the construction.
func TestGeneratedNetsAreSafe(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		cfg := Default(seed)
		cfg.Machines = 2 + int(seed%4)
		cfg.PlacesPer = 2 + int(seed%5)
		cfg.SyncTrans = int(seed % 7)
		net := Generate(cfg)
		if _, err := reach.Explore(net, reach.Options{MaxStates: 100000}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestDeterminism checks the same seed yields the same net.
func TestDeterminism(t *testing.T) {
	a := Generate(Default(7))
	b := Generate(Default(7))
	if a.Name() != b.Name() || a.NumPlaces() != b.NumPlaces() || a.NumTrans() != b.NumTrans() {
		t.Fatal("generator not deterministic")
	}
	ca, _ := reach.CountStates(a)
	cb, _ := reach.CountStates(b)
	if ca != cb {
		t.Fatal("behaviour differs for equal seeds")
	}
}

// TestVariety confirms the generator produces both deadlocking and
// deadlock-free nets, and nets with conflicts.
func TestVariety(t *testing.T) {
	deadlocks, free, conflicts := 0, 0, 0
	for seed := int64(0); seed < 60; seed++ {
		net := Generate(Default(seed))
		res, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			deadlocks++
		} else {
			free++
		}
		if len(net.Clusters()) < net.NumTrans() {
			conflicts++
		}
	}
	if deadlocks == 0 || free == 0 {
		t.Errorf("no variety: %d deadlocking, %d free", deadlocks, free)
	}
	if conflicts < 30 {
		t.Errorf("too few nets with conflicts: %d", conflicts)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid config")
		}
	}()
	Generate(Config{Machines: 0, PlacesPer: 5})
}
