package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)

	req := json.RawMessage(`{"model":"nsdp","size":4}`)
	if err := s.Create(Record{ID: "r01", Request: req, Net: "NSDP(4)", Engine: "gpo", Check: "deadlock"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(Record{ID: "r01"}); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	rec, ok := s.Get("r01")
	if !ok || rec.State != Queued || rec.Net != "NSDP(4)" || rec.CreatedNS == 0 {
		t.Fatalf("after Create: %+v", rec)
	}
	if _, err := s.Update("r01", func(r *Record) { r.State = Running }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("nope", func(r *Record) {}); err == nil {
		t.Fatal("Update of unknown job succeeded")
	}
	rec, _ = s.Update("r01", func(r *Record) {
		r.State = Done
		r.Result = json.RawMessage(`{"status":"ok"}`)
	})
	if rec.State != Done || rec.UpdatedNS < rec.CreatedNS {
		t.Fatalf("after Done: %+v", rec)
	}

	// Reopen: the full history replays to the final state.
	s.Close()
	s2 := open(t, dir)
	rec, ok = s2.Get("r01")
	if !ok || rec.State != Done || string(rec.Request) != string(req) {
		t.Fatalf("after reopen: %+v", rec)
	}
	if got := s2.List(); len(got) != 1 || got[0].ID != "r01" {
		t.Fatalf("List after reopen: %+v", got)
	}
	if got := s2.Resumable(); len(got) != 0 {
		t.Fatalf("Done job listed resumable: %+v", got)
	}
}

// TestCrashRepair pins the recovery semantics: a job the journal last
// saw "running" resumes from its checkpoint when the file exists, and
// re-queues from scratch when it does not.
func TestCrashRepair(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for _, id := range []string{"rckpt", "rplain", "rqueued"} {
		if err := s.Create(Record{ID: id, Request: json.RawMessage(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	ckptPath := s.CkptPath("rckpt")
	if err := os.WriteFile(ckptPath, []byte("GPOCKPT1..."), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Update("rckpt", func(r *Record) { r.State = Running; r.CkptPath = ckptPath; r.States = 7; r.Boundary = 3 })
	s.Update("rplain", func(r *Record) { r.State = Running })
	// Simulate the crash: no clean transitions, just reopen.
	s.Close()

	s2 := open(t, dir)
	if rec, _ := s2.Get("rckpt"); rec.State != Checkpointed || rec.Boundary != 3 {
		t.Fatalf("running job with checkpoint: %+v", rec)
	}
	if rec, _ := s2.Get("rplain"); rec.State != Queued {
		t.Fatalf("running job without checkpoint: %+v", rec)
	}
	if rec, _ := s2.Get("rqueued"); rec.State != Queued {
		t.Fatalf("queued job: %+v", rec)
	}
	if got := s2.Resumable(); len(got) != 3 {
		t.Fatalf("Resumable: %+v", got)
	}
	// The repair itself was journaled: a third open sees the same states
	// without re-repairing.
	s2.Close()
	s3 := open(t, dir)
	if rec, _ := s3.Get("rckpt"); rec.State != Checkpointed {
		t.Fatalf("after second reopen: %+v", rec)
	}
}

// TestTornTailSkipped pins the ledger-style torn-line tolerance.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Create(Record{ID: "rok", Request: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":"jobs/v1","id":"rok","state":"done"` + "\n") // torn: unbalanced JSON
	f.Close()
	s2 := open(t, dir)
	if rec, _ := s2.Get("rok"); rec.State != Queued {
		t.Fatalf("torn line was not skipped: %+v", rec)
	}
}
