// Package jobs is the durable half of asynchronous verification jobs
// (DESIGN.md D11): an append-only jobs/v1 journal of job state
// transitions plus the per-job ckpt/v1 checkpoint files, both living in
// one directory. The server layers the HTTP surface and the execution
// loop on top; this package owns only what must survive a crash.
//
// A job's identity is its content-addressed run ID (verify.RunKey), so
// resubmitting the same work is idempotent and a checkpoint can never
// be resumed under the wrong job. Every state transition appends one
// JSON line; recovery replays the journal (last line per job wins) and
// then repairs crash-interrupted jobs: a job left "running" becomes
// "checkpointed" when its checkpoint file is intact, or "queued" (start
// over) when there is none — a torn or corrupt checkpoint file fails
// loudly at resume time via the typed ckpt errors, never silently.
package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Schema is the versioned format tag stamped on every journal line.
const Schema = "jobs/v1"

// State is a job's lifecycle position.
type State string

const (
	// Queued: admitted, durable, not yet started (or re-queued after a
	// crash that hit before the first checkpoint).
	Queued State = "queued"
	// Running: a worker is executing it right now. Found in the journal
	// at recovery time it means the process died mid-run.
	Running State = "running"
	// Checkpointed: suspended at a boundary with a resumable checkpoint
	// on disk (deadline, drain, or crash recovery with an intact file).
	Checkpointed State = "checkpointed"
	// Done: finished with a verdict (stored in Result).
	Done State = "done"
	// Failed: the engine returned an error (stored in Error).
	Failed State = "failed"
	// Canceled: stopped by DELETE. If a checkpoint was taken it is kept,
	// so a canceled job can still be resumed.
	Canceled State = "canceled"
)

// Terminal reports whether a job in this state occupies no worker and
// starts none without an explicit resume.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled || s == Checkpointed
}

// Resumable reports whether POST /v1/jobs/{id}/resume may restart a job
// in this state: suspended with a checkpoint, canceled (with or without
// one), or queued-after-recovery.
func (s State) Resumable() bool {
	return s == Checkpointed || s == Canceled || s == Queued
}

// Record is one job's durable state; every transition journals the full
// record, so recovery needs only the last line per ID.
type Record struct {
	Schema string `json:"schema"` // always "jobs/v1"
	ID     string `json:"id"`     // content-addressed run ID
	State  State  `json:"state"`
	// Request is the original wire request (server.Request JSON), kept
	// verbatim so a restart can re-resolve the job without the client.
	Request json.RawMessage `json:"request"`
	// Display fields, resolved at submission.
	Net    string `json:"net"`
	Engine string `json:"engine"`
	Check  string `json:"check"`
	// Checkpoint coordinates (of the newest checkpoint, when any).
	States   int    `json:"states,omitempty"`
	Boundary int64  `json:"boundary,omitempty"`
	CkptPath string `json:"ckpt_path,omitempty"`
	// Resumes counts how many times the job re-entered execution.
	Resumes int `json:"resumes,omitempty"`
	// Result is the final response JSON (server.Response) once Done.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`

	CreatedNS int64 `json:"created_unix_ns"`
	UpdatedNS int64 `json:"updated_unix_ns"`
}

// Store is the journal-backed job table. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	f     *os.File
	recs  map[string]*Record
	order []string // IDs in first-seen order
}

// journalName is the jobs/v1 journal file inside the store directory.
const journalName = "jobs.jsonl"

// Open creates or recovers a job store in dir (created if missing).
// Jobs the journal last saw "running" are repaired: an intact-looking
// checkpoint file demotes them to Checkpointed, otherwise to Queued.
// (Intact-looking = the file exists; content integrity is verified by
// the ckpt package at resume time.)
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, recs: make(map[string]*Record)}
	path := filepath.Join(dir, journalName)
	if err := s.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	// Crash repair, journaled like any other transition so the next
	// recovery does not repeat it.
	for _, id := range s.order {
		rec := s.recs[id]
		if rec.State != Running {
			continue
		}
		if rec.CkptPath != "" && fileExists(rec.CkptPath) {
			rec.State = Checkpointed
		} else {
			rec.State = Queued
		}
		rec.UpdatedNS = nowNS()
		if err := s.appendLocked(rec); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// replay loads the journal, last line per job winning. Unparseable
// lines (a torn final line after a crash) are skipped, matching the
// ledger's convention.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Schema != Schema || rec.ID == "" {
			continue
		}
		if _, seen := s.recs[rec.ID]; !seen {
			s.order = append(s.order, rec.ID)
		}
		cp := rec
		s.recs[rec.ID] = &cp
	}
	return sc.Err()
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// CkptPath is where job id's checkpoint lives. IDs are run IDs
// ("r"+hex), so joining them onto the directory is safe.
func (s *Store) CkptPath(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}

// Get returns a copy of the job's record.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// List returns every job in first-submitted order.
func (s *Store) List() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.recs[id])
	}
	return out
}

// Resumable returns the jobs a restarted server can pick back up:
// queued (never ran, or re-queued by crash repair) and checkpointed.
func (s *Store) Resumable() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, id := range s.order {
		if rec := s.recs[id]; rec.State == Queued || rec.State == Checkpointed {
			out = append(out, *rec)
		}
	}
	return out
}

// Create journals a brand-new job in state Queued. A job with this ID
// must not already exist (the server checks first; content addressing
// makes re-submission a lookup, not a second Create).
func (s *Store) Create(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.recs[rec.ID]; exists {
		return fmt.Errorf("jobs: %s already exists", rec.ID)
	}
	rec.Schema = Schema
	rec.State = Queued
	rec.CreatedNS = nowNS()
	rec.UpdatedNS = rec.CreatedNS
	cp := rec
	s.recs[rec.ID] = &cp
	s.order = append(s.order, rec.ID)
	return s.appendLocked(&cp)
}

// Update applies mut to the job's record under the store lock and
// journals the result. The updated copy is returned.
func (s *Store) Update(id string, mut func(*Record)) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return Record{}, fmt.Errorf("jobs: unknown job %s", id)
	}
	mut(rec)
	rec.Schema = Schema
	rec.UpdatedNS = nowNS()
	return *rec, s.appendLocked(rec)
}

// appendLocked writes one journal line (caller holds s.mu). A single
// Write call keeps concurrent appenders line-atomic, like the ledger.
func (s *Store) appendLocked(rec *Record) error {
	if s.f == nil {
		return fmt.Errorf("jobs: store is closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.f.Write(append(b, '\n'))
	return err
}

// Close flushes and closes the journal. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// nowNS is time.Now().UnixNano(), indirected for tests.
var nowNS = func() int64 { return time.Now().UnixNano() }
