package bench

import (
	"testing"

	"repro/internal/models"
	"repro/internal/reach"
)

// TestParallelReachMatchesSequentialTable1 is the cross-engine
// equivalence gate for the parallel explorer: on the Table 1 instances
// the Workers: 8 run must reproduce the Workers: 0 Result exactly —
// States, Arcs, Deadlocks in order, and the stored Graph. The two
// largest instances (≈1.6–1.9M states) are skipped to keep the race-
// enabled run of scripts/check.sh within budget; the full-size runs are
// exercised by `gpobench -json` when regenerating the BENCH artifact.
func TestParallelReachMatchesSequentialTable1(t *testing.T) {
	const maxFull = 150_000 // states; excludes nsdp(10) and asat(8)
	for _, r := range Table1() {
		if r.PaperFull > maxFull {
			continue
		}
		if testing.Short() && r.PaperFull > 10_000 {
			continue
		}
		net, err := models.ByName(r.Family, r.Size)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := reach.Explore(net, reach.Options{StoreGraph: true})
		if err != nil {
			t.Fatalf("%s(%d) sequential: %v", r.Family, r.Size, err)
		}
		par, err := reach.Explore(net, reach.Options{StoreGraph: true, Workers: 8})
		if err != nil {
			t.Fatalf("%s(%d) workers=8: %v", r.Family, r.Size, err)
		}
		if par.States != seq.States || par.Arcs != seq.Arcs ||
			par.Deadlock != seq.Deadlock || par.Complete != seq.Complete {
			t.Errorf("%s(%d): parallel (states=%d arcs=%d dead=%v complete=%v) != sequential (states=%d arcs=%d dead=%v complete=%v)",
				r.Family, r.Size,
				par.States, par.Arcs, par.Deadlock, par.Complete,
				seq.States, seq.Arcs, seq.Deadlock, seq.Complete)
			continue
		}
		if len(par.Deadlocks) != len(seq.Deadlocks) {
			t.Errorf("%s(%d): %d deadlock markings != %d", r.Family, r.Size, len(par.Deadlocks), len(seq.Deadlocks))
			continue
		}
		for i := range seq.Deadlocks {
			if !seq.Deadlocks[i].Equal(par.Deadlocks[i]) {
				t.Errorf("%s(%d): deadlock %d differs", r.Family, r.Size, i)
				break
			}
		}
		for id := range seq.Graph.States {
			if !seq.Graph.States[id].Equal(par.Graph.States[id]) {
				t.Errorf("%s(%d): graph state %d differs", r.Family, r.Size, id)
				break
			}
			se, pe := seq.Graph.Edges[id], par.Graph.Edges[id]
			if len(se) != len(pe) {
				t.Errorf("%s(%d): state %d has %d edges, want %d", r.Family, r.Size, id, len(pe), len(se))
				break
			}
			same := true
			for i := range se {
				if se[i] != pe[i] {
					t.Errorf("%s(%d): state %d edge %d differs", r.Family, r.Size, id, i)
					same = false
					break
				}
			}
			if !same {
				break
			}
		}
	}
}
