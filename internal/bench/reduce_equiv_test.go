package bench

import (
	"testing"

	"repro/internal/models"
	"repro/internal/verify"
)

// TestReduceEquivalentOnTable1 is the correctness contract of the
// structural reduction pre-pass: on the Table 1 instances, every engine
// must reach the same verdict with reduction on as off, and the mapped
// witness must be the same dead marking — or, where an instance has
// several deadlocks (NSDP's two symmetric ones) and the reduced
// exploration order finds a different one, a genuine deadlock of the
// original net.
//
// The two >150k-state instances run the GPO engine only, and the
// explicit family algebra skips the instances whose valid-set families
// exceed a few thousand sets — the same race-budget carve-outs as
// TestParallelReachMatchesSequentialTable1 and TestPinnedTable1.
func TestReduceEquivalentOnTable1(t *testing.T) {
	const maxFull = 150_000
	allEngines := []verify.Engine{
		verify.Exhaustive, verify.PartialOrder, verify.Symbolic,
		verify.GPO, verify.GPOExplicit, verify.Unfolding,
	}
	// Valid-set families beyond a few thousand members make the explicit
	// algebra quadratically slow (pinned_test's familyPeakMax).
	familyTooBig := map[string]bool{"nsdp(8)": true, "nsdp(10)": true, "asat(8)": true}
	for _, r := range Table1() {
		if testing.Short() && r.PaperFull > 10_000 {
			continue
		}
		engines := allEngines
		if r.PaperFull > maxFull {
			engines = []verify.Engine{verify.GPO}
		}
		net, err := models.ByName(r.Family, r.Size)
		if err != nil {
			t.Fatal(err)
		}
		name := InstanceName(r.Family, r.Size)
		for _, eng := range engines {
			if eng == verify.Symbolic && (r.SkipBDD || name == "rw(15)") {
				// rw(15)/symbolic needs ~9s per unreduced run — the rw
				// symbolic differential is covered at sizes 6, 9, 12.
				continue
			}
			if eng == verify.GPOExplicit && familyTooBig[name] {
				continue
			}
			opts := verify.Options{Engine: eng}
			base, err := verify.CheckDeadlock(net, opts)
			if err != nil {
				t.Fatalf("%s/%v base: %v", name, eng, err)
			}
			opts.Reduce = true
			red, err := verify.CheckDeadlock(net, opts)
			if err != nil {
				t.Fatalf("%s/%v reduced: %v", name, eng, err)
			}
			if red.Deadlock != base.Deadlock {
				t.Errorf("%s/%v: reduced verdict deadlock=%v, unreduced says %v",
					name, eng, red.Deadlock, base.Deadlock)
				continue
			}
			if (red.Witness == nil) != (base.Witness == nil) {
				t.Errorf("%s/%v: reduced witness presence %v, unreduced %v",
					name, eng, red.Witness != nil, base.Witness != nil)
				continue
			}
			if red.Witness == nil || red.Witness.Equal(base.Witness) {
				continue
			}
			if !net.IsDeadlock(red.Witness) {
				t.Errorf("%s/%v: mapped witness %s is not dead in the original net",
					name, eng, red.Witness.String(net))
			}
		}
	}
}
