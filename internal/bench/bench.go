// Package bench drives the paper's benchmark instances (the rows of
// Table 1) through the verification engines and produces structured,
// machine-readable measurements. Command gpobench renders these either as
// the paper-style text table or as the BENCH_<date>.json artifact; tests
// use them to pin the exploration numbers.
//
// Every engine run gets a fresh obs.Registry, so the per-run counters in
// a BenchEntry are exactly that run's and never bleed across engines.
package bench

import (
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/structural/reduce"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

// Engine name strings used in BenchEntry.Engine. The stubborn engine is
// measured twice — with and without the cycle proviso — because the
// proviso is what removes all reduction on RW (the paper's SPIN+PO
// observation).
const (
	EngineExhaustive = "exhaustive"
	EnginePO         = "partial-order"
	EnginePOProviso  = "partial-order+proviso"
	EngineSymbolic   = "symbolic"
	EngineGPO        = "gpo"
)

// Row is one Table 1 line: a model instance plus the paper's published
// numbers (0 = not reported / not applicable).
type Row struct {
	Family    string
	Size      int
	PaperFull float64 // paper "States"
	PaperPO   int     // paper SPIN+PO states
	PaperBDD  int     // paper SMV peak BDD size (0 = >24h in the paper)
	PaperGPO  int     // paper GPO states
	SkipFull  bool    // too big to enumerate here
	SkipBDD   bool    // symbolic blow-up guard
}

// Table1 returns the paper's benchmark rows: NSDP, ASAT, OVER and RW at
// the published sizes.
func Table1() []Row {
	return []Row{
		{Family: "nsdp", Size: 2, PaperFull: 18, PaperPO: 12, PaperBDD: 1068, PaperGPO: 3},
		{Family: "nsdp", Size: 4, PaperFull: 322, PaperPO: 110, PaperBDD: 10018, PaperGPO: 3},
		{Family: "nsdp", Size: 6, PaperFull: 5778, PaperPO: 1422, PaperBDD: 52320, PaperGPO: 3},
		{Family: "nsdp", Size: 8, PaperFull: 103682, PaperPO: 19270, PaperBDD: 687263, PaperGPO: 3},
		{Family: "nsdp", Size: 10, PaperFull: 1.86e6, PaperPO: 239308, PaperBDD: 0, PaperGPO: 3},
		{Family: "asat", Size: 2, PaperFull: 88, PaperPO: 33, PaperBDD: 1587, PaperGPO: 8},
		{Family: "asat", Size: 4, PaperFull: 7822, PaperPO: 192, PaperBDD: 117667, PaperGPO: 14},
		{Family: "asat", Size: 8, PaperFull: 1.58e6, PaperPO: 3598, PaperBDD: 0, PaperGPO: 23, SkipBDD: true},
		{Family: "over", Size: 2, PaperFull: 65, PaperPO: 28, PaperBDD: 3511, PaperGPO: 6},
		{Family: "over", Size: 3, PaperFull: 519, PaperPO: 107, PaperBDD: 10203, PaperGPO: 7},
		{Family: "over", Size: 4, PaperFull: 4175, PaperPO: 467, PaperBDD: 11759, PaperGPO: 8},
		{Family: "over", Size: 5, PaperFull: 33460, PaperPO: 2059, PaperBDD: 24860, PaperGPO: 9},
		{Family: "rw", Size: 6, PaperFull: 72, PaperPO: 72, PaperBDD: 3689, PaperGPO: 2},
		{Family: "rw", Size: 9, PaperFull: 523, PaperPO: 523, PaperBDD: 9886, PaperGPO: 2},
		{Family: "rw", Size: 12, PaperFull: 4110, PaperPO: 4110, PaperBDD: 10037, PaperGPO: 2},
		{Family: "rw", Size: 15, PaperFull: 29642, PaperPO: 29642, PaperBDD: 10267, PaperGPO: 2},
	}
}

// Config selects the instances and caps of a benchmark run.
type Config struct {
	// Family restricts the run to one family; "" or "all" runs every
	// family.
	Family string
	// Only restricts the run to instances whose "family(size)" name
	// matches this regular expression ("" = all); it composes with Family
	// and MaxSize. An invalid pattern fails the run. The pattern is
	// recorded in the JSON artifact so filtered runs stay identifiable.
	Only string
	// MaxSize skips rows above this size (0 = no cap).
	MaxSize int
	// MaxStates caps explicit searches (0 = the 20M default).
	MaxStates int
	// MaxNodes caps the symbolic engine's BDD (0 = the 3M default).
	MaxNodes int
	// Workers runs the exhaustive engine's BFS with that many parallel
	// workers (0 = sequential); recorded in the JSON artifact so runs
	// stay comparable.
	Workers int
	// Reduce applies the structural reduction pre-pass once per instance
	// and hands every engine the reduced net. The pre-pass runs inside
	// the measured bench.run span (its cost is part of the run), run IDs
	// are computed on the original net with the Reduce flag set (the same
	// address the daemon gives the request), and the artifact records the
	// original and reduced net sizes per entry.
	Reduce bool
	// Progress, if true, prints periodic per-run progress to stderr.
	Progress bool
	// Trace, if non-nil, receives flight-recorder events from every engine
	// run (see OBSERVABILITY.md "Trace events"). One tracer spans the whole
	// benchmark; the exporter's track names distinguish engines only by
	// their per-engine track labels, so tracing is most useful with a
	// single-instance Only filter. Nil costs nothing.
	Trace *trace.Tracer
	// Ledger, if non-nil, journals every measured engine run as one
	// ledger/v1 entry under the same content-addressed run ID the daemon
	// would give the equivalent request, so benchmark history joins CLI
	// and daemon history (gpostat -history). Nil costs nothing.
	Ledger *ledger.Log
}

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return 20_000_000
}

func (c Config) maxNodes() int {
	if c.MaxNodes > 0 {
		return c.MaxNodes
	}
	return 3_000_000
}

func (c Config) selects(r Row, only *regexp.Regexp) bool {
	if c.Family != "" && c.Family != "all" && c.Family != r.Family {
		return false
	}
	if c.MaxSize > 0 && r.Size > c.MaxSize {
		return false
	}
	return only == nil || only.MatchString(InstanceName(r.Family, r.Size))
}

// InstanceName is the canonical "family(size)" instance name the Only
// filter matches against, e.g. "nsdp(8)".
func InstanceName(family string, size int) string {
	return fmt.Sprintf("%s(%d)", family, size)
}

// Rows returns the Table 1 rows selected by the config. It fails only on
// an invalid Only pattern.
func (c Config) Rows() ([]Row, error) {
	var only *regexp.Regexp
	if c.Only != "" {
		var err error
		if only, err = regexp.Compile(c.Only); err != nil {
			return nil, fmt.Errorf("bench: invalid -only pattern: %w", err)
		}
	}
	var out []Row
	for _, r := range Table1() {
		if c.selects(r, only) {
			out = append(out, r)
		}
	}
	return out, nil
}

// Run measures every selected row with every engine and assembles the
// machine-readable report.
func Run(c Config) (*obs.BenchReport, error) {
	rep := &obs.BenchReport{
		Schema:    obs.BenchSchema,
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workers:   c.Workers,
		Only:      c.Only,
		Reduce:    c.Reduce,
	}
	rows, err := c.Rows()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: no Table 1 rows match family=%q only=%q max=%d", c.Family, c.Only, c.MaxSize)
	}
	for _, r := range rows {
		net, err := models.ByName(r.Family, r.Size)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, RunRow(net, r, c)...)
	}
	return rep, nil
}

// RunRow measures one model instance with every engine, in the fixed
// order exhaustive, partial-order, partial-order+proviso, symbolic, gpo.
func RunRow(net *petri.Net, r Row, c Config) []obs.BenchEntry {
	return []obs.BenchEntry{
		c.measure(net, r, EngineExhaustive, r.SkipFull, runExhaustive),
		c.measure(net, r, EnginePO, false, runPO(false)),
		c.measure(net, r, EnginePOProviso, false, runPO(true)),
		c.measure(net, r, EngineSymbolic, r.SkipBDD, runSymbolic),
		c.measure(net, r, EngineGPO, false, runGPO),
	}
}

// outcome is what one engine run reports back to measure.
type outcome struct {
	states   int64
	peak     int64 // peak decision-diagram nodes, 0 for explicit engines
	deadlock bool  // a reachable marking enables no transition
	capped   bool  // aborted at a state/node cap
	err      error
}

type runner func(net *petri.Net, c Config, reg *obs.Registry, prog *obs.Progress) outcome

// measure runs one engine on one instance inside a fresh registry and a
// "bench.run" span, and folds span timing, memory deltas and the
// registry's counters and gauges into the entry.
func (c Config) measure(net *petri.Net, r Row, engine string, skip bool, run runner) obs.BenchEntry {
	e := obs.BenchEntry{Family: r.Family, Size: r.Size, Engine: engine}
	if skip {
		e.Skipped = true
		return e
	}
	opts := c.engineOptions(engine)
	e.RunID = verify.RunID(net, "deadlock", nil, opts)
	reg := obs.New()
	var prog *obs.Progress
	if c.Progress {
		prog = &obs.Progress{
			Label:    fmt.Sprintf("%s(%d)/%s", r.Family, r.Size, engine),
			Every:    250_000,
			Interval: 2 * time.Second,
		}
		defer prog.Done()
	}
	startNS := time.Now().UnixNano()
	sp := reg.StartSpan("bench.run")
	runNet, out := net, outcome{}
	if c.Reduce {
		cert, rerr := reduce.Run(net, reduce.Options{Metrics: reg})
		if rerr != nil {
			out.err = rerr
		} else {
			runNet = cert.Net()
			e.OrigPlaces, e.OrigTrans = net.NumPlaces(), net.NumTrans()
			e.ReducedPlaces, e.ReducedTrans = runNet.NumPlaces(), runNet.NumTrans()
		}
	}
	if out.err == nil {
		out = run(runNet, c, reg, prog)
	}
	sp.End()
	endNS := time.Now().UnixNano()

	snap := reg.Snapshot()
	for _, rec := range snap.Spans {
		if rec.Name == "bench.run" {
			e.WallNS = rec.WallNS
			e.Allocs = rec.Mallocs
			e.AllocBytes = rec.AllocBytes
		}
	}
	if len(snap.Counters)+len(snap.Gauges) > 0 {
		e.Counters = make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
		for k, v := range snap.Counters {
			e.Counters[k] = v
		}
		for k, v := range snap.Gauges {
			e.Counters[k] = v
		}
	}
	e.States = out.states
	e.PeakNodes = out.peak
	e.Capped = out.capped
	if out.err != nil && !out.capped {
		e.Error = out.err.Error()
	}
	c.journal(net, e, opts, out, startNS, endNS)
	return e
}

// engineOptions reconstructs the verify.Options the measured run is
// equivalent to, for content addressing: the mapping mirrors the
// runners below (the stubborn engine is verify.PartialOrder with or
// without the proviso; explicit engines share the MaxStates cap).
func (c Config) engineOptions(engine string) verify.Options {
	var o verify.Options
	switch engine {
	case EngineExhaustive:
		o = verify.Options{Engine: verify.Exhaustive, MaxStates: c.maxStates(), Workers: c.Workers}
	case EnginePO:
		o = verify.Options{Engine: verify.PartialOrder, MaxStates: c.maxStates()}
	case EnginePOProviso:
		o = verify.Options{Engine: verify.PartialOrder, Proviso: true, MaxStates: c.maxStates()}
	case EngineSymbolic:
		o = verify.Options{Engine: verify.Symbolic, MaxNodes: c.maxNodes()}
	default:
		o = verify.Options{Engine: verify.GPO, MaxStates: c.maxStates()}
	}
	o.Reduce = c.Reduce
	return o
}

// journal appends the run's ledger entry (no-op without a Ledger). The
// entry keeps the bench engine label (so "partial-order+proviso" stays
// distinguishable in history listings) but shares the daemon's content
// address, options and verdict encoding.
func (c Config) journal(net *petri.Net, e obs.BenchEntry, opts verify.Options, out outcome, startNS, endNS int64) {
	if c.Ledger == nil {
		return
	}
	le := ledger.Entry{
		RunID:       e.RunID,
		Source:      "gpobench",
		Net:         net.Name(),
		Engine:      e.Engine,
		Check:       "deadlock",
		Proviso:     opts.Proviso,
		Reduce:      opts.Reduce,
		MaxStates:   opts.MaxStates,
		MaxNodes:    opts.MaxNodes,
		Workers:     opts.Workers,
		StartUnixNS: startNS,
		EndUnixNS:   endNS,
		WallNS:      endNS - startNS,
	}
	switch {
	case e.Error != "":
		le.Status = "error"
		le.AbortReason = e.Error
	case e.Capped:
		le.Status = "aborted"
		le.AbortReason = "capped"
		le.States = e.States
		le.PeakBDD = e.PeakNodes
	default:
		le.Status = "ok"
		le.Deadlock = out.deadlock
		le.States = e.States
		le.PeakBDD = e.PeakNodes
		le.Complete = true
	}
	le.Metrics = e.Counters
	_ = c.Ledger.Append(le) // best-effort: a full disk must not fail the benchmark
}

func runExhaustive(net *petri.Net, c Config, reg *obs.Registry, prog *obs.Progress) outcome {
	res, err := reach.Explore(net, reach.Options{
		MaxStates: c.maxStates(),
		Workers:   c.Workers,
		Metrics:   reg,
		Progress:  prog,
		Trace:     c.Trace,
	})
	o := outcome{err: err}
	if errors.Is(err, reach.ErrStateLimit) {
		o.capped = true
	}
	if res != nil {
		o.states = int64(res.States)
		o.deadlock = res.Deadlock
	}
	return o
}

func runPO(proviso bool) runner {
	return func(net *petri.Net, c Config, reg *obs.Registry, prog *obs.Progress) outcome {
		res, err := stubborn.Explore(net, stubborn.Options{
			MaxStates: c.maxStates(),
			Seed:      stubborn.SeedBest,
			Proviso:   proviso,
			Metrics:   reg,
			Progress:  prog,
			Trace:     c.Trace,
		})
		o := outcome{err: err}
		if errors.Is(err, stubborn.ErrStateLimit) {
			o.capped = true
		}
		if res != nil {
			o.states = int64(res.States)
			o.deadlock = res.Deadlock
		}
		return o
	}
}

func runSymbolic(net *petri.Net, c Config, reg *obs.Registry, prog *obs.Progress) outcome {
	res, err := symbolic.Analyze(net, symbolic.Options{
		MaxNodes: c.maxNodes(),
		Metrics:  reg,
		Progress: prog,
		Trace:    c.Trace,
	})
	o := outcome{err: err}
	if errors.Is(err, symbolic.ErrNodeLimit) {
		o.capped = true
		// The manager's defer exported its peak on the abort path.
		o.peak = reg.Gauge("symbolic.peak_nodes").Value()
	}
	if res != nil {
		o.states = int64(res.States)
		o.peak = int64(res.PeakNodes)
		o.deadlock = res.Deadlock
	}
	return o
}

func runGPO(net *petri.Net, c Config, reg *obs.Registry, prog *obs.Progress) outcome {
	rep, err := verify.CheckDeadlock(net, verify.Options{
		Engine:    verify.GPO,
		MaxStates: c.maxStates(),
		Metrics:   reg,
		Progress:  prog,
		Trace:     c.Trace,
	})
	o := outcome{err: err}
	if rep != nil {
		o.states = int64(rep.States)
		o.peak = reg.Gauge("zdd.peak_nodes").Value()
		o.deadlock = rep.Deadlock
	}
	return o
}
