package bench

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/verify"
)

// instrumented runs one check twice — bare, and under the full
// introspection stack (per-run registry, throttled progress feeding a
// Publisher with a live subscriber, ledger append) — and returns both
// reports plus the subscriber's last observed count and the registry.
func instrumented(t *testing.T, net string, size int, engine verify.Engine, every int64, log *ledger.Log) (bare, instr *verify.Report, lastCount int64, reg *obs.Registry) {
	t.Helper()
	n, err := models.ByName(net, size)
	if err != nil {
		t.Fatal(err)
	}
	opts := verify.Options{Engine: engine}
	bare, err = verify.CheckDeadlock(n, opts)
	if err != nil {
		t.Fatalf("%s(%d)/%s bare: %v", net, size, engine, err)
	}

	reg = obs.New()
	pub := obs.NewPublisher()
	ch, cancel := pub.Subscribe(8)
	defer cancel()
	drained := make(chan int64)
	go func() {
		var last int64
		for u := range ch {
			last = u.Count
		}
		drained <- last
	}()
	prog := &obs.Progress{Label: fmt.Sprintf("%s(%d)/%s", net, size, engine), Every: every, Report: pub.Publish}
	opts.Metrics = reg
	opts.Progress = prog
	instr, err = verify.CheckDeadlock(n, opts)
	prog.Done()
	pub.Close()
	if err != nil {
		t.Fatalf("%s(%d)/%s instrumented: %v", net, size, engine, err)
	}
	lastCount = <-drained

	if err := log.Append(ledger.Entry{
		RunID:       verify.RunID(n, "deadlock", nil, verify.Options{Engine: engine}),
		Source:      "gpobench",
		Net:         n.Name(),
		Engine:      engine.String(),
		Check:       "deadlock",
		Status:      "ok",
		Deadlock:    instr.Deadlock,
		States:      int64(instr.States),
		Complete:    instr.Complete,
		StartUnixNS: 1,
		EndUnixNS:   1 + int64(instr.Elapsed),
		WallNS:      int64(instr.Elapsed),
	}); err != nil {
		t.Fatalf("ledger append: %v", err)
	}
	return bare, instr, lastCount, reg
}

// sameReport fails the test when the two reports differ in anything but
// wall clock.
func sameReport(t *testing.T, label string, bare, instr *verify.Report) {
	t.Helper()
	a, b := *bare, *instr
	a.Elapsed, b.Elapsed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: instrumented run differs from bare run:\nbare:  %+v\ninstr: %+v", label, a, b)
	}
}

// TestLedgerAndStreamingArePassive pins the observability acceptance
// criterion of the run-ledger work: journaling and live streaming must
// never perturb results. Every Table 1 instance is checked with the GPO
// engine — and the small ones exhaustively — once bare and once under
// the full stack (per-run registry + progress publisher with an active
// subscriber + ledger append); the two reports must be bit-identical
// apart from wall clock. For exhaustive runs the stream's final count,
// the report's state count and the reach.states counter must all agree.
func TestLedgerAndStreamingArePassive(t *testing.T) {
	log, err := ledger.Open(filepath.Join(t.TempDir(), "runs.jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	entries := 0
	for _, r := range Table1() {
		label := fmt.Sprintf("%s(%d)/gpo", r.Family, r.Size)
		bare, instr, _, _ := instrumented(t, r.Family, r.Size, verify.GPO, 1, log)
		sameReport(t, label, bare, instr)
		entries++
	}

	// Exhaustive on instances small enough to enumerate in a test run,
	// with the stream ticked every state so the final published count is
	// exact, not throttled away.
	for _, in := range []struct {
		family string
		size   int
	}{{"nsdp", 4}, {"asat", 2}, {"over", 3}, {"rw", 9}} {
		label := fmt.Sprintf("%s(%d)/exhaustive", in.family, in.size)
		bare, instr, last, reg := instrumented(t, in.family, in.size, verify.Exhaustive, 1, log)
		sameReport(t, label, bare, instr)
		if last != int64(instr.States) {
			t.Errorf("%s: final streamed count = %d, want States = %d", label, last, instr.States)
		}
		if got := reg.Counter("reach.states").Value(); got != int64(instr.States) {
			t.Errorf("%s: reach.states = %d, want %d", label, got, instr.States)
		}
		entries++
	}

	// The journal must hold exactly one parseable entry per run, with
	// the state counts the reports agreed on.
	all, err := ledger.Read(log.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != entries {
		t.Fatalf("ledger holds %d entries, want %d", len(all), entries)
	}
	for _, g := range ledger.Summarize(all) {
		if g.States < 0 {
			t.Errorf("ledger group %s/%s: completed runs disagree on states", g.Net, g.Engine)
		}
	}
}
