package bench

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/verify"
)

// TestJSONArtifactGolden pins the shape of the `gpobench -json -family rw
// -max 9` artifact: it must round-trip through ParseBenchReport and carry,
// for both RW instances, entries for all four paper engines with nonzero
// wall times and per-run counters.
func TestJSONArtifactGolden(t *testing.T) {
	rep, err := Run(Config{Family: "rw", MaxSize: 9})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseBenchReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Schema != obs.BenchSchema {
		t.Fatalf("schema = %q, want %q", parsed.Schema, obs.BenchSchema)
	}
	if parsed.GoVersion == "" || parsed.Date == "" {
		t.Fatalf("missing go_version/date: %+v", parsed)
	}

	byKey := make(map[string]obs.BenchEntry)
	for _, e := range parsed.Entries {
		if e.Family != "rw" || (e.Size != 6 && e.Size != 9) {
			t.Errorf("unexpected entry %s(%d)", e.Family, e.Size)
		}
		byKey[e.Engine+"/"+strconv.Itoa(e.Size)] = e
	}

	counterFor := map[string]string{
		EngineExhaustive: "reach.states",
		EnginePO:         "stubborn.states",
		EngineSymbolic:   "symbolic.iterations",
		EngineGPO:        "core.states",
	}
	for _, size := range []int{6, 9} {
		for _, engine := range []string{EngineExhaustive, EnginePO, EngineSymbolic, EngineGPO} {
			e, ok := byKey[engine+"/"+strconv.Itoa(size)]
			if !ok {
				t.Errorf("no entry for rw(%d)/%s", size, engine)
				continue
			}
			if e.Skipped || e.Capped || e.Error != "" {
				t.Errorf("rw(%d)/%s: skipped=%v capped=%v err=%q", size, engine, e.Skipped, e.Capped, e.Error)
			}
			if e.WallNS <= 0 {
				t.Errorf("rw(%d)/%s: wall_ns = %d, want > 0", size, engine, e.WallNS)
			}
			if e.States <= 0 {
				t.Errorf("rw(%d)/%s: states = %d, want > 0", size, engine, e.States)
			}
			if engine == EngineSymbolic && e.PeakNodes <= 0 {
				t.Errorf("rw(%d)/symbolic: peak_nodes = %d, want > 0", size, e.PeakNodes)
			}
			if e.Counters[counterFor[engine]] == 0 {
				t.Errorf("rw(%d)/%s: counter %q missing or zero in %v",
					size, engine, counterFor[engine], e.Counters)
			}
		}
	}
}

// TestRunUnknownSelection checks the empty-selection error.
func TestRunUnknownSelection(t *testing.T) {
	if _, err := Run(Config{Family: "nosuch"}); err == nil {
		t.Fatal("Run with unknown family succeeded")
	}
}

// TestMetricsDoNotPerturb verifies the instrumentation-only-observes
// invariant: attaching a Registry must not change how many states any
// engine explores.
func TestMetricsDoNotPerturb(t *testing.T) {
	net, err := models.ByName("rw", 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []verify.Engine{
		verify.Exhaustive, verify.PartialOrder, verify.Symbolic,
		verify.GPO, verify.GPOExplicit, verify.Unfolding,
	} {
		bare, err := verify.CheckDeadlock(net, verify.Options{Engine: eng})
		if err != nil {
			t.Fatalf("%v bare: %v", eng, err)
		}
		reg := obs.New()
		inst, err := verify.CheckDeadlock(net, verify.Options{Engine: eng, Metrics: reg})
		if err != nil {
			t.Fatalf("%v instrumented: %v", eng, err)
		}
		if bare.States != inst.States {
			t.Errorf("%v: metrics changed states explored: %d (bare) vs %d (instrumented)",
				eng, bare.States, inst.States)
		}
		if bare.Deadlock != inst.Deadlock {
			t.Errorf("%v: metrics changed the verdict: %v vs %v", eng, bare.Deadlock, inst.Deadlock)
		}
	}
}

// TestCountersMatchReport cross-checks the registry's counters against
// the report the engine returns through its own result struct.
func TestCountersMatchReport(t *testing.T) {
	net, err := models.ByName("over", 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		eng     verify.Engine
		counter string
	}{
		{verify.Exhaustive, "reach.states"},
		{verify.PartialOrder, "stubborn.states"},
		{verify.GPO, "core.states"},
		{verify.GPOExplicit, "core.states"},
		{verify.Unfolding, "unfold.events"},
	}
	for _, c := range cases {
		reg := obs.New()
		rep, err := verify.CheckDeadlock(net, verify.Options{Engine: c.eng, Metrics: reg})
		if err != nil {
			t.Fatalf("%v: %v", c.eng, err)
		}
		if got := reg.Counter(c.counter).Value(); got != int64(rep.States) {
			t.Errorf("%v: counter %s = %d, report states = %d", c.eng, c.counter, got, rep.States)
		}
	}
}
