// Package stubborn implements classical partial-order (stubborn-set)
// reduced reachability for safe Petri nets, the technique of Section 2.3
// of the paper (Valmari's stubborn sets; the role SPIN+PO plays in the
// paper's Table 1).
//
// At every state a stubborn set of transitions is computed by a closure:
//
//   - an enabled member pulls in every transition it is in conflict with
//     (they compete for the same tokens, so their interleavings matter);
//   - a disabled member pulls in the producers of one of its unmarked
//     input places (only they can enable it).
//
// Firing only the enabled members of a stubborn set at every state
// preserves all deadlocks of the net while pruning the interleavings of
// independent transitions. Concurrently marked conflict places are NOT
// collapsed — every branch combination is still enumerated, which is the
// limitation the paper's generalized analysis removes (Figure 2).
package stubborn

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/stop"
)

// ErrStateLimit is returned when exploration exceeds Options.MaxStates.
var ErrStateLimit = errors.New("stubborn: state limit exceeded")

// SeedStrategy selects how the closure's starting transition is chosen.
type SeedStrategy int

const (
	// SeedFirst starts the closure from the first enabled transition.
	SeedFirst SeedStrategy = iota
	// SeedBest tries every enabled transition as seed and keeps the
	// stubborn set with the fewest enabled members (slower per state,
	// often smaller graphs). Used by the ablation benchmarks.
	SeedBest
)

// Options configures a reduced exploration.
type Options struct {
	// Ctx, if non-nil, is polled cooperatively: once cancelled the search
	// stops within a bounded number of firings and Explore returns the
	// partial Result (Complete: false) plus the context's error.
	Ctx            context.Context
	MaxStates      int
	StopAtDeadlock bool
	Seed           SeedStrategy
	// Proviso enables the cycle proviso used by LTL-preserving reducers
	// such as SPIN+PO: whenever a reduced expansion closes a cycle of the
	// depth-first search, the state is expanded fully. The proviso is not
	// required for deadlock detection, but emulates the behavior the paper
	// observed for SPIN+PO (e.g. no reduction at all on RW).
	Proviso bool
	// Metrics, if non-nil, receives exploration statistics under the
	// "stubborn." prefix (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per distinct state found.
	Progress *obs.Progress
	// Trace, if non-nil, records flight-recorder events: states, firings,
	// one stubborn event per set computation (set size vs enabled count),
	// and a terminal abort event on cancellation.
	Trace *trace.Tracer
}

// Result summarizes a reduced exploration.
type Result struct {
	States    int
	Arcs      int
	Deadlock  bool
	Deadlocks []petri.Marking
	Complete  bool
}

// StubbornEnabled returns the enabled members of a stubborn set for
// marking m, in increasing order. The result is empty iff m is a deadlock.
func StubbornEnabled(n *petri.Net, m petri.Marking, seed SeedStrategy) []petri.Trans {
	enabled := n.EnabledTrans(m)
	if len(enabled) == 0 {
		return nil
	}
	if seed == SeedFirst {
		return closure(n, m, enabled[0])
	}
	best := closure(n, m, enabled[0])
	for _, s := range enabled[1:] {
		c := closure(n, m, s)
		if len(c) < len(best) {
			best = c
		}
		if len(best) == 1 {
			break
		}
	}
	return best
}

// closure computes the enabled members of the stubborn set grown from seed.
func closure(n *petri.Net, m petri.Marking, seed petri.Trans) []petri.Trans {
	in := make(map[petri.Trans]bool)
	work := []petri.Trans{seed}
	in[seed] = true
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if n.Enabled(m, t) {
			// D2: all competitors for t's input tokens must be in the set.
			for _, p := range n.Pre(t) {
				for _, u := range n.PostT(p) {
					if !in[u] {
						in[u] = true
						work = append(work, u)
					}
				}
			}
		} else {
			// D1: pick one unmarked input place; only its producers can
			// make t enabled, so they must be in the set.
			var chosen petri.Place = -1
			for _, p := range n.Pre(t) {
				if !m.Has(p) {
					chosen = p
					break
				}
			}
			if chosen < 0 {
				// t disabled yet all inputs marked cannot happen for safe
				// nets with the classical rule; defensive fallback.
				continue
			}
			for _, u := range n.PreT(chosen) {
				if !in[u] {
					in[u] = true
					work = append(work, u)
				}
			}
		}
	}
	var out []petri.Trans
	for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
		if in[t] && n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// frame is a DFS stack entry.
type frame struct {
	id      int
	fire    []petri.Trans
	next    int
	reduced bool // fire is a strict subset of the enabled transitions
	full    bool // proviso already applied
}

// Explore enumerates the stubborn-set-reduced state space of n
// depth-first.
func Explore(n *petri.Net, opts Options) (*Result, error) {
	defer opts.Metrics.StartSpan("stubborn.explore").End()
	var (
		cStates  = opts.Metrics.Counter("stubborn.states")
		cArcs    = opts.Metrics.Counter("stubborn.arcs")
		cDead    = opts.Metrics.Counter("stubborn.deadlocks")
		cKey     = opts.Metrics.Counter("stubborn.key_singletons")
		cProviso = opts.Metrics.Counter("stubborn.proviso_expansions")
		hSetSize = opts.Metrics.Histogram("stubborn.set_size")
	)
	res := &Result{Complete: true}
	tk := opts.Trace.NewTrack("stubborn")
	phExplore := opts.Trace.Intern("explore")
	tk.Begin(phExplore)
	index := make(map[string]int)
	var states []petri.Marking
	onStack := make(map[int]bool)

	add := func(m petri.Marking) (int, bool) {
		k := m.Key()
		if id, ok := index[k]; ok {
			return id, false
		}
		id := len(states)
		index[k] = id
		states = append(states, m)
		cStates.Inc()
		opts.Progress.Tick(1)
		tk.State(int64(id), 0)
		return id, true
	}

	check := func(m petri.Marking) bool {
		if n.IsDeadlock(m) {
			res.Deadlock = true
			res.Deadlocks = append(res.Deadlocks, m)
			cDead.Inc()
			return opts.StopAtDeadlock
		}
		return false
	}

	newFrame := func(id int) *frame {
		m := states[id]
		fire := StubbornEnabled(n, m, opts.Seed)
		enabledCount := len(n.EnabledTrans(m))
		tk.Stubborn(int64(len(fire)), int64(enabledCount))
		if len(fire) > 0 {
			hSetSize.Observe(int64(len(fire)))
			if len(fire) == 1 {
				// A singleton stubborn set: the reducer found a "key"
				// transition that can be fired alone.
				cKey.Inc()
			}
		}
		return &frame{id: id, fire: fire, reduced: len(fire) < enabledCount}
	}

	add(n.InitialMarking())
	if check(states[0]) {
		res.States = 1
		res.Complete = false
		return res, nil
	}
	stack := []*frame{newFrame(0)}
	onStack[0] = true

	cancel := stop.Every(opts.Ctx, 64)
	for len(stack) > 0 {
		if err := cancel.Poll(); err != nil {
			res.States = len(states)
			res.Complete = false
			tk.Abort(opts.Trace.Intern(err.Error()))
			return res, fmt.Errorf("stubborn: aborted: %w", err)
		}
		f := stack[len(stack)-1]
		if f.next >= len(f.fire) {
			onStack[f.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		t := f.fire[f.next]
		f.next++
		m := states[f.id]
		next, safe := n.Fire(m, t)
		if !safe {
			return nil, fmt.Errorf("stubborn: net %s is not safe (firing %s)",
				n.Name(), n.TransName(t))
		}
		res.Arcs++
		cArcs.Inc()
		nid, fresh := add(next)
		tk.Fire(int64(t), int64(nid))
		if fresh {
			if opts.MaxStates > 0 && len(states) > opts.MaxStates {
				res.States = len(states)
				res.Complete = false
				return res, ErrStateLimit
			}
			if check(next) {
				res.States = len(states)
				res.Complete = false
				return res, nil
			}
			onStack[nid] = true
			stack = append(stack, newFrame(nid))
		} else if opts.Proviso && onStack[nid] && f.reduced && !f.full {
			// Cycle proviso: the reduced expansion closed a DFS cycle;
			// expand the state fully so no transition is ignored forever.
			f.full = true
			cProviso.Inc()
			already := make(map[petri.Trans]bool, len(f.fire))
			for _, u := range f.fire {
				already[u] = true
			}
			for _, u := range n.EnabledTrans(m) {
				if !already[u] {
					f.fire = append(f.fire, u)
				}
			}
		}
	}
	res.States = len(states)
	tk.End(phExplore)
	return res, nil
}
