package stubborn

import (
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
	"repro/internal/reach"
)

// TestFig2Shape checks the paper's Figure 2(b): classical partial-order
// analysis of the N-conflict-pair net explores exactly 2^(N+1) − 1 states.
func TestFig2Shape(t *testing.T) {
	for n := 1; n <= 8; n++ {
		res, err := Explore(models.Fig2(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := 1<<(n+1) - 1; res.States != want {
			t.Errorf("Fig2(%d): got %d states, paper's Figure 2(b) gives %d",
				n, res.States, want)
		}
	}
}

// TestFig1Linear checks that the interleaving blow-up of Figure 1 is
// reduced to a single chain: n+1 states for n independent transitions.
func TestFig1Linear(t *testing.T) {
	for n := 1; n <= 10; n++ {
		res, err := Explore(models.Fig1(n), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := n + 1; res.States != want {
			t.Errorf("Fig1(%d): got %d states, want linear chain of %d", n, res.States, want)
		}
	}
}

// TestRWNoReduction checks the paper's observation on RW: with the cycle
// proviso that LTL-preserving reducers like SPIN+PO apply, the tight
// read/write cycles force full expansion everywhere, so the reduced state
// space equals the complete one. (Without the proviso a deadlock-only
// stubborn search does shave some states; that variant is recorded too.)
func TestRWNoReduction(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		net := models.ReadersWriters(n)
		full, err := reach.CountStates(net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(net, Options{Proviso: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.States != full {
			t.Errorf("RW(%d): proviso-reduced=%d full=%d; paper reports no reduction",
				n, res.States, full)
		}
		noProv, err := Explore(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if noProv.States > full {
			t.Errorf("RW(%d): reduced %d > full %d", n, noProv.States, full)
		}
	}
}

// TestDeadlockPreservation cross-validates the reduced exploration against
// exhaustive reachability on all models: deadlock verdicts must agree, and
// every reduced-search deadlock marking must be a real deadlock.
func TestDeadlockPreservation(t *testing.T) {
	nets := []*petri.Net{
		models.NSDP(2), models.NSDP(3), models.NSDP(4),
		models.Fig1(4), models.Fig2(3), models.Fig3(), models.Fig7(),
		models.ReadersWriters(3), models.ArbiterTree(2), models.ArbiterTree(4),
		models.Overtake(2), models.Overtake(3),
	}
	for _, net := range nets {
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []SeedStrategy{SeedFirst, SeedBest} {
			res, err := Explore(net, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlock != full.Deadlock {
				t.Errorf("%s (seed=%d): reduced deadlock=%v, full=%v",
					net.Name(), seed, res.Deadlock, full.Deadlock)
			}
			if res.States > full.States {
				t.Errorf("%s (seed=%d): reduced %d > full %d states",
					net.Name(), seed, res.States, full.States)
			}
			realDead := make(map[string]bool)
			for _, m := range full.Deadlocks {
				realDead[m.Key()] = true
			}
			for _, m := range res.Deadlocks {
				if !realDead[m.Key()] {
					t.Errorf("%s: spurious deadlock %s", net.Name(), m.String(net))
				}
			}
			// Completeness: the reduction must find every deadlock marking.
			found := make(map[string]bool)
			for _, m := range res.Deadlocks {
				found[m.Key()] = true
			}
			for _, m := range full.Deadlocks {
				if !found[m.Key()] {
					t.Errorf("%s (seed=%d): deadlock %s missed by reduction",
						net.Name(), seed, m.String(net))
				}
			}
		}
	}
}

// TestNSDPReduction records the reduction factors on NSDP (shape check:
// strictly fewer states than full, more than GPO's constant 3).
func TestNSDPReduction(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		net := models.NSDP(n)
		full, err := reach.CountStates(net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.States >= full {
			t.Errorf("NSDP(%d): no reduction (%d >= %d)", n, res.States, full)
		}
		t.Logf("NSDP(%d): full=%d reduced=%d", n, full, res.States)
	}
}
