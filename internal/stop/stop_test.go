package stop

import (
	"context"
	"errors"
	"testing"
)

func TestNilCheckerIsNoOp(t *testing.T) {
	var c *Checker
	for i := 0; i < 10; i++ {
		if err := c.Poll(); err != nil {
			t.Fatalf("nil checker returned %v", err)
		}
	}
	if Every(nil, 8) != nil {
		t.Fatal("Every(nil, _) should return nil")
	}
}

func TestFirstPollChecks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Every(ctx, 1024)
	if err := c.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Poll on a pre-cancelled context: got %v, want Canceled", err)
	}
}

func TestPeriodAmortizesAndLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := Every(ctx, 4)
	if err := c.Poll(); err != nil { // first call checks, ctx still live
		t.Fatalf("live context: got %v", err)
	}
	cancel()
	// Calls 2..4 fall inside the period and must not observe the cancel.
	for i := 0; i < 3; i++ {
		if err := c.Poll(); err != nil {
			t.Fatalf("call %d inside period: got %v", i+2, err)
		}
	}
	if err := c.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("period boundary: got %v, want Canceled", err)
	}
	// Latched: every later call returns the error without re-counting.
	if err := c.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("latched: got %v, want Canceled", err)
	}
}

func TestZeroPeriodMeansEveryCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := Every(ctx, 0)
	if err := c.Poll(); err != nil {
		t.Fatalf("live: %v", err)
	}
	cancel()
	if err := c.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: got %v", err)
	}
}
