// Package stop provides the cooperative-cancellation polling helper the
// exploration engines share. Every engine loop is single-goroutine and
// CPU-bound, so a request deadline or client disconnect can only take
// effect if the loop itself checks for it; Checker amortizes that check
// so the uncancelled hot path pays one increment-and-compare per unit of
// work instead of a context.Context.Err call (which may take a mutex).
//
// Like the metrics in internal/obs, a nil *Checker is valid and free:
// engines construct one with Every(opts.Ctx, period) and call Poll
// unconditionally, so running without a context costs a single
// predictable nil check per iteration and cancellation support never
// perturbs what an uncancelled run explores.
package stop

import "context"

// Checker polls a context's cancellation, amortized over a period of
// calls. It is not safe for concurrent use; parallel engines give each
// worker its own Checker (or check the context directly at a coarser
// granularity).
type Checker struct {
	ctx    context.Context
	period uint32
	n      uint32
	err    error
}

// Every returns a Checker whose Poll consults ctx.Err() on the first
// call and then once per period calls. A nil ctx yields a nil Checker,
// which is valid: its Poll always returns nil.
func Every(ctx context.Context, period uint32) *Checker {
	if ctx == nil {
		return nil
	}
	if period == 0 {
		period = 1
	}
	// Start one shy of the period so the very first Poll checks: a
	// pre-cancelled context then aborts even a tiny exploration, which
	// keeps the abort paths deterministic to test.
	return &Checker{ctx: ctx, period: period, n: period - 1}
}

// Poll returns the context's error once the context is cancelled, nil
// before that (and always nil on a nil Checker). After the first
// non-nil return every subsequent Poll returns the same error
// immediately.
func (c *Checker) Poll() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n < c.period {
		return nil
	}
	c.n = 0
	c.err = c.ctx.Err()
	return c.err
}
