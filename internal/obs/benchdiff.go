package obs

import (
	"fmt"
	"io"
	"sort"
)

// DefaultRegressionThreshold is the relative wall-clock slowdown above
// which DiffBenchReports flags an entry (0.10 = new run >10% slower).
const DefaultRegressionThreshold = 0.10

// BenchDelta compares one (family, size, engine) entry across two
// artifacts.
type BenchDelta struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Engine string `json:"engine"`

	BaseWallNS int64   `json:"base_wall_ns"`
	NewWallNS  int64   `json:"new_wall_ns"`
	Ratio      float64 `json:"ratio"` // new / base wall clock
	// Regression is set when the new run is slower than the threshold
	// allows.
	Regression bool `json:"regression,omitempty"`

	BaseStates int64 `json:"base_states"`
	NewStates  int64 `json:"new_states"`
	// StatesMismatch flags a correctness drift: the same deterministic
	// engine explored a different number of states across the two runs.
	StatesMismatch bool `json:"states_mismatch,omitempty"`
}

// Key renders the delta's identity as family(size)/engine.
func (d BenchDelta) Key() string {
	return fmt.Sprintf("%s(%d)/%s", d.Family, d.Size, d.Engine)
}

// BenchDiffReport is the outcome of comparing two gpobench artifacts.
type BenchDiffReport struct {
	BaseDate  string  `json:"base_date"`
	NewDate   string  `json:"new_date"`
	Threshold float64 `json:"threshold"`
	// WorkersDiffer warns that the exhaustive engine ran with different
	// parallel worker counts, which makes its wall-clock deltas expected
	// rather than actionable.
	WorkersDiffer bool         `json:"workers_differ,omitempty"`
	BaseWorkers   int          `json:"base_workers"`
	NewWorkers    int          `json:"new_workers"`
	Deltas        []BenchDelta `json:"deltas"`
	// Incomparable lists entries present in both artifacts where at least
	// one side was skipped or errored, so no wall-clock ratio exists.
	Incomparable []string `json:"incomparable,omitempty"`
	// OnlyInBase / OnlyInNew list entries without a counterpart.
	OnlyInBase  []string `json:"only_in_base,omitempty"`
	OnlyInNew   []string `json:"only_in_new,omitempty"`
	Regressions int      `json:"regressions"`
	Mismatches  int      `json:"mismatches"`
}

// Clean reports whether the diff found nothing to flag.
func (r *BenchDiffReport) Clean() bool {
	return r.Regressions == 0 && r.Mismatches == 0
}

// DiffBenchReports compares two artifacts entry by entry, keyed by
// (family, size, engine), and flags wall-clock regressions beyond
// threshold (<= 0 selects DefaultRegressionThreshold) as well as state
// count mismatches. Deltas follow the base artifact's entry order.
func DiffBenchReports(base, cur *BenchReport, threshold float64) *BenchDiffReport {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	rep := &BenchDiffReport{
		BaseDate:      base.Date,
		NewDate:       cur.Date,
		Threshold:     threshold,
		BaseWorkers:   base.Workers,
		NewWorkers:    cur.Workers,
		WorkersDiffer: base.Workers != cur.Workers,
	}

	key := func(e BenchEntry) string {
		return fmt.Sprintf("%s(%d)/%s", e.Family, e.Size, e.Engine)
	}
	newByKey := make(map[string]BenchEntry, len(cur.Entries))
	for _, e := range cur.Entries {
		newByKey[key(e)] = e
	}
	seen := make(map[string]bool, len(base.Entries))

	for _, b := range base.Entries {
		k := key(b)
		seen[k] = true
		n, ok := newByKey[k]
		if !ok {
			rep.OnlyInBase = append(rep.OnlyInBase, k)
			continue
		}
		if b.Skipped || n.Skipped || b.Error != "" || n.Error != "" {
			rep.Incomparable = append(rep.Incomparable, k)
			continue
		}
		d := BenchDelta{
			Family:     b.Family,
			Size:       b.Size,
			Engine:     b.Engine,
			BaseWallNS: b.WallNS,
			NewWallNS:  n.WallNS,
			BaseStates: b.States,
			NewStates:  n.States,
		}
		if b.WallNS > 0 {
			d.Ratio = float64(n.WallNS) / float64(b.WallNS)
		}
		if d.Ratio > 1+threshold {
			d.Regression = true
			rep.Regressions++
		}
		// Capped runs may legitimately stop at different counts; only
		// completed runs pin the exact state space.
		if !b.Capped && !n.Capped && b.States != n.States {
			d.StatesMismatch = true
			rep.Mismatches++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, e := range cur.Entries {
		if k := key(e); !seen[k] {
			rep.OnlyInNew = append(rep.OnlyInNew, k)
		}
	}
	sort.Strings(rep.OnlyInNew)
	return rep
}

// WriteText renders the diff as the human-readable table benchdiff
// prints, flagged entries marked in the rightmost column.
func (r *BenchDiffReport) WriteText(w io.Writer) error {
	if r.WorkersDiffer {
		fmt.Fprintf(w, "note: exhaustive engine workers differ (base %d, new %d); its wall-clock deltas are expected\n",
			r.BaseWorkers, r.NewWorkers)
	}
	fmt.Fprintf(w, "%-24s %12s %12s %8s  %s\n", "instance/engine", "base", "new", "ratio", "flags")
	for _, d := range r.Deltas {
		flags := ""
		if d.Regression {
			flags = "REGRESSION"
		}
		if d.StatesMismatch {
			if flags != "" {
				flags += ","
			}
			flags += fmt.Sprintf("STATES %d!=%d", d.BaseStates, d.NewStates)
		}
		fmt.Fprintf(w, "%-24s %12s %12s %7.2fx  %s\n",
			d.Key(), fmtNS(d.BaseWallNS), fmtNS(d.NewWallNS), d.Ratio, flags)
	}
	for _, k := range r.Incomparable {
		fmt.Fprintf(w, "%-24s %12s\n", k, "(skipped/error)")
	}
	for _, k := range r.OnlyInBase {
		fmt.Fprintf(w, "%-24s only in base artifact\n", k)
	}
	for _, k := range r.OnlyInNew {
		fmt.Fprintf(w, "%-24s only in new artifact\n", k)
	}
	_, err := fmt.Fprintf(w, "%d wall-clock regressions (> %+.0f%%), %d state mismatches\n",
		r.Regressions, r.Threshold*100, r.Mismatches)
	return err
}

func fmtNS(ns int64) string {
	switch {
	case ns < 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%dms", ns/1_000_000)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
