package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-resolve by name every few iterations to race the
			// get-or-create path too.
			c := r.Counter("test.hits")
			for j := 0; j < perG; j++ {
				if j%1000 == 0 {
					c = r.Counter("test.hits")
				}
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.hits").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentSetMax(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		start := int64(i * 1000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := r.Gauge("test.peak")
			for v := start; v < start+1000; v++ {
				g.SetMax(v)
			}
		}()
	}
	wg.Wait()
	if got := r.Gauge("test.peak").Value(); got != 7999 {
		t.Fatalf("peak gauge = %d, want 7999", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("test.sizes")
			for v := int64(1); v <= 1000; v++ {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	h := r.Histogram("test.sizes")
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Power-of-two buckets: the quantile is an upper bound within a
	// factor of two of the exact value.
	if p50 := h.Quantile(0.5); p50 < 500 || p50 > 1000 {
		t.Errorf("p50 = %d, want in [500,1000]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 990 || p99 > 1000 {
		t.Errorf("p99 = %d, want in [990,1000]", p99)
	}
	if p0 := h.Quantile(0); p0 < 1 || p0 > 2 {
		t.Errorf("p0 = %d, want in [1,2] (first observation's bucket)", p0)
	}
	if p100 := h.Quantile(1); p100 != 1000 {
		t.Errorf("p100 = %d, want 1000 (clamped to max)", p100)
	}
	if mean := h.Mean(); mean != 500.5 {
		t.Errorf("mean = %v, want 500.5", mean)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	r := New()
	h := r.Histogram("one")
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	if h.Min() != 7 || h.Max() != 7 {
		t.Errorf("min/max = %d/%d, want 7/7", h.Min(), h.Max())
	}
}

func TestHistogramEmptyAndNonPositive(t *testing.T) {
	r := New()
	h := r.Histogram("empty")
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Quantile(1) != 0 {
		t.Errorf("non-positive observations land in bucket 0, Quantile(1) = %d", h.Quantile(1))
	}
	if h.Min() != -5 {
		t.Errorf("min = %d, want -5", h.Min())
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should stay 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.SetMax(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge should stay 0")
	}
	h := r.Histogram("z")
	h.Observe(10)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should stay empty")
	}
	sp := r.StartSpan("phase")
	if d := sp.End(); d != 0 {
		t.Error("nil span End should return 0")
	}
	if got := r.Spans(); got != nil {
		t.Error("nil registry should have no spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	var p *Progress
	p.Tick(1)
	p.Done()
	if p.Count() != 0 {
		t.Error("nil progress should stay 0")
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter should return the same instance per name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("Gauge should return the same instance per name")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("Histogram should return the same instance per name")
	}
}
