package obs

import (
	"runtime"
	"time"
)

// SpanRecord is one finished span: a named phase with its wall-clock
// duration and the runtime.MemStats deltas accumulated while it ran.
// Memory deltas are process-wide, so overlapping spans double-count
// allocations; the engines only nest spans (phase inside run), where the
// outer span's delta legitimately includes the inner one's.
type SpanRecord struct {
	Name string `json:"name"`
	// StartUnixNS is the span's start time (UnixNano of the registry's
	// clock), kept as an integer so records survive a JSON round trip
	// bit-for-bit.
	StartUnixNS int64 `json:"start_unix_ns"`
	WallNS      int64 `json:"wall_ns"`
	// AllocBytes and Mallocs are the deltas of MemStats.TotalAlloc and
	// MemStats.Mallocs: bytes and objects allocated during the span.
	AllocBytes int64 `json:"alloc_bytes"`
	Mallocs    int64 `json:"mallocs"`
	// HeapObjectsDelta is the change in live heap objects (can be
	// negative when the GC ran during the span).
	HeapObjectsDelta int64 `json:"heap_objects_delta"`
	// GCCycles is the number of completed GC cycles during the span.
	GCCycles int64 `json:"gc_cycles"`
}

// Wall returns the span's wall-clock duration.
func (s SpanRecord) Wall() time.Duration { return time.Duration(s.WallNS) }

// Span is an in-flight phase measurement. Obtain one from
// Registry.StartSpan and finish it with End; a nil *Span is valid and
// End is a no-op.
type Span struct {
	r           *Registry
	name        string
	start       time.Time
	allocBytes  uint64
	mallocs     uint64
	heapObjects uint64
	gcCycles    uint32
}

// StartSpan begins a named span. It reads runtime.MemStats, which costs
// tens of microseconds — cheap per phase, far too expensive per state, so
// spans delimit phases and counters track states. Returns nil on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{
		r:           r,
		name:        name,
		start:       r.now(),
		allocBytes:  ms.TotalAlloc,
		mallocs:     ms.Mallocs,
		heapObjects: ms.HeapObjects,
		gcCycles:    ms.NumGC,
	}
}

// End finishes the span, appends its record to the registry and returns
// the wall-clock duration. Safe on a nil span.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	wall := s.r.now().Sub(s.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := SpanRecord{
		Name:             s.name,
		StartUnixNS:      s.start.UnixNano(),
		WallNS:           int64(wall),
		AllocBytes:       int64(ms.TotalAlloc - s.allocBytes),
		Mallocs:          int64(ms.Mallocs - s.mallocs),
		HeapObjectsDelta: int64(ms.HeapObjects) - int64(s.heapObjects),
		GCCycles:         int64(ms.NumGC - s.gcCycles),
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, rec)
	s.r.mu.Unlock()
	return wall
}

// Spans returns a copy of the finished span records in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}
