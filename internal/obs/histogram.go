package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// nbuckets covers bucket 0 (values ≤ 0) plus one bucket per bit length of
// a positive int64.
const nbuckets = 65

// Histogram records int64 observations in power-of-two buckets: bucket i
// (i ≥ 1) holds values in [2^(i-1), 2^i). Quantiles are therefore exact
// to a factor of two, which is the right resolution for the quantities
// the engines track (stubborn-set sizes, valid-set counts, queue depths)
// while staying fixed-size and lock-free. Create histograms through
// Registry.Histogram; a nil *Histogram is valid and all its methods are
// no-ops.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [nbuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 if none).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// inclusive upper edge of the power-of-two bucket containing the ⌈q·n⌉-th
// smallest observation, clamped to the observed [Min, Max] range. The
// extremes are exact — q=0 returns Min and q=1 returns Max, since both
// are tracked precisely — and everything in between is exact to a
// factor of two by construction.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min.Load()
	}
	if q >= 1 {
		return h.max.Load()
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < nbuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			// Bucket 0 holds every value ≤ 0, so its inclusive upper
			// edge is 0; clamping to Max keeps an all-negative
			// histogram honest.
			upper := int64(0)
			if i > 0 {
				upper = int64(1)<<uint(i) - 1
			}
			if mx := h.max.Load(); mx < upper {
				return mx
			}
			return upper
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the exported summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	// Buckets lists the non-empty power-of-two buckets, so the JSON
	// snapshot carries the same distribution the Prometheus exposition
	// derives its cumulative _bucket series from.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty bucket: Count observations with
// value ≤ LE (the bucket's inclusive upper edge: 0, 1, 3, 7, …, 2^i−1).
type HistogramBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// bucketUpper is the inclusive upper edge of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < nbuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LE: bucketUpper(i), Count: n})
		}
	}
	return s
}
