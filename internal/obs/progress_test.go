package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProgressEveryN(t *testing.T) {
	var got []Update
	p := &Progress{
		Label:  "rw(9)",
		Every:  100,
		Clock:  NewFakeClock(time.Unix(0, 0)),
		Report: func(u Update) { got = append(got, u) },
	}
	for i := 0; i < 1050; i++ {
		p.Tick(1)
	}
	if len(got) != 10 {
		t.Fatalf("got %d reports, want 10", len(got))
	}
	for i, u := range got {
		if want := int64((i + 1) * 100); u.Count != want {
			t.Errorf("report %d at count %d, want %d", i, u.Count, want)
		}
		if u.Label != "rw(9)" || u.Final {
			t.Errorf("report %d = %+v", i, u)
		}
	}
	p.Done()
	if len(got) != 11 || got[10].Count != 1050 || !got[10].Final {
		t.Fatalf("Done report = %+v", got[len(got)-1])
	}
}

func TestProgressInterval(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	var got []Update
	p := &Progress{
		Interval: time.Second,
		Clock:    clock,
		Report:   func(u Update) { got = append(got, u) },
	}
	// Ticks arrive 300ms apart starting at t=0: tick 5 is the first with
	// >= 1s since the last report (t=1.2s), then tick 9 (t=2.4s).
	for i := 0; i < 10; i++ {
		p.Tick(1)
		clock.Advance(300 * time.Millisecond)
	}
	if len(got) != 2 {
		t.Fatalf("got %d reports (%+v), want 2", len(got), got)
	}
	if got[0].Count != 5 || got[0].Elapsed != 1200*time.Millisecond {
		t.Errorf("first report = %+v, want count 5 at 1.2s", got[0])
	}
	if got[1].Count != 9 || got[1].Elapsed != 2400*time.Millisecond {
		t.Errorf("second report = %+v, want count 9 at 2.4s", got[1])
	}
	// Rate uses the fake elapsed time.
	if want := 5 / 1.2; got[0].Rate < want-0.01 || got[0].Rate > want+0.01 {
		t.Errorf("rate = %v, want %v", got[0].Rate, want)
	}
}

func TestProgressBothTriggers(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	var got []Update
	p := &Progress{
		Every:    5,
		Interval: time.Second,
		Clock:    clock,
		Report:   func(u Update) { got = append(got, u) },
	}
	p.Tick(5) // count trigger
	if len(got) != 1 || got[0].Count != 5 {
		t.Fatalf("count trigger: %+v", got)
	}
	clock.Advance(2 * time.Second)
	p.Tick(1) // time trigger
	if len(got) != 2 || got[1].Count != 6 {
		t.Fatalf("time trigger: %+v", got)
	}
}

func TestProgressDefaultTextOutput(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	var buf bytes.Buffer
	p := &Progress{Label: "sweep", Every: 2, Clock: clock, W: &buf}
	p.Tick(1)
	clock.Advance(time.Second)
	p.Tick(1)
	out := buf.String()
	if !strings.Contains(out, "sweep: 2 states in 1s (2/s)") {
		t.Errorf("unexpected progress line: %q", out)
	}
}

func TestProgressNoTriggersConfigured(t *testing.T) {
	fired := false
	p := &Progress{Report: func(Update) { fired = true }}
	for i := 0; i < 1000; i++ {
		p.Tick(1)
	}
	if fired {
		t.Error("progress with no thresholds should never report from Tick")
	}
	if p.Count() != 1000 {
		t.Errorf("count = %d", p.Count())
	}
}
