package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func entry(i int) Entry {
	return Entry{
		RunID:       fmt.Sprintf("r%024x", i),
		Source:      "test",
		Net:         "nsdp(4)",
		Engine:      "exhaustive",
		Check:       "deadlock",
		StartUnixNS: int64(1000 * i),
		EndUnixNS:   int64(1000*i + 500),
		WallNS:      500,
		Status:      "ok",
		States:      322,
		Complete:    true,
		Metrics:     map[string]int64{"reach.states": 322},
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d entries, want 5", len(got))
	}
	for i, e := range got {
		want := entry(i)
		want.Schema = Schema
		if e.RunID != want.RunID || e.States != want.States ||
			e.StartUnixNS != want.StartUnixNS || e.Metrics["reach.states"] != 322 {
			t.Errorf("entry %d = %+v, want %+v", i, e, want)
		}
		if e.Schema != Schema {
			t.Errorf("entry %d schema = %q, want %q", i, e.Schema, Schema)
		}
	}
}

func TestLedgerRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	// Budget fits roughly two entries; appends beyond that rotate.
	l, err := Open(path, 700)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation keeps only one prior generation, so the oldest entries
	// are gone — but what survives is contiguous, newest-tailed, and in
	// append order across the generation boundary.
	if len(got) == 0 || len(got) >= 7 {
		t.Fatalf("read %d entries after rotation, want 0 < n < 7", len(got))
	}
	last := got[len(got)-1]
	if last.StartUnixNS != entry(6).StartUnixNS {
		t.Errorf("newest surviving entry = %d, want entry 6", last.StartUnixNS)
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartUnixNS <= got[i-1].StartUnixNS {
			t.Errorf("entries out of order at %d: %d after %d", i, got[i].StartUnixNS, got[i-1].StartUnixNS)
		}
	}
}

func TestLedgerTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(entry(0))
	l.Append(entry(1))
	l.Close()
	// Simulate a crash mid-write: append half a JSON object, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":"ledger/v1","run_id":"rdeadbeef","sta`)
	f.Close()
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries with torn tail, want 2 (tail skipped)", len(got))
	}
	// Reopening heals the torn tail (terminates the fragment), so new
	// appends land on their own lines and survive.
	l2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(entry(2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d entries after torn tail + heal + append, want 3", len(got))
	}
}

func TestLedgerNilAndMissing(t *testing.T) {
	var l *Log
	if err := l.Append(entry(0)); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if got := l.Recent(); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if l.Path() != "" {
		t.Fatal("nil Path nonempty")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	got, err := Read(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing journal read = (%v, %v), want empty", got, err)
	}
}

func TestLedgerRecentTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := recentCap + 10
	for i := 0; i < n; i++ {
		l.Append(entry(i))
	}
	recent := l.Recent()
	if len(recent) != recentCap {
		t.Fatalf("Recent holds %d entries, want %d", len(recent), recentCap)
	}
	if recent[len(recent)-1].StartUnixNS != entry(n-1).StartUnixNS {
		t.Error("Recent tail does not end at the newest entry")
	}
	if recent[0].StartUnixNS != entry(10).StartUnixNS {
		t.Errorf("Recent tail starts at %d, want entry 10", recent[0].StartUnixNS)
	}
}

func TestLedgerConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Append(entry(w*100 + i)); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("read %d entries after concurrent appends, want 400 (line-atomic writes)", len(got))
	}
}

func TestSummarize(t *testing.T) {
	var entries []Entry
	// Five completed exhaustive runs of nsdp(4): walls 100,100,100,100,900
	// — the 900 is an outlier (> 2×median).
	for i, wall := range []int64{100, 100, 100, 100, 900} {
		e := entry(i)
		e.WallNS = wall
		entries = append(entries, e)
	}
	// One aborted run in the same group.
	ab := entry(9)
	ab.Status = "aborted"
	ab.AbortReason = "deadline"
	ab.Complete = false
	entries = append(entries, ab)
	// A different engine on the same net: two runs, too few for outliers.
	for i, wall := range []int64{50, 500} {
		e := entry(20 + i)
		e.Engine = "gpo"
		e.WallNS = wall
		entries = append(entries, e)
	}

	groups := Summarize(entries)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	ex := groups[0]
	if ex.Engine != "exhaustive" {
		t.Fatalf("groups not sorted: first engine = %s", ex.Engine)
	}
	if ex.Runs != 6 || ex.Aborted != 1 {
		t.Errorf("exhaustive runs/aborted = %d/%d, want 6/1", ex.Runs, ex.Aborted)
	}
	if ex.MedianWallNS != 100 || ex.P90WallNS != 900 {
		t.Errorf("median/p90 = %d/%d, want 100/900", ex.MedianWallNS, ex.P90WallNS)
	}
	if ex.States != 322 {
		t.Errorf("group States = %d, want 322", ex.States)
	}
	if len(ex.Outliers) != 1 || ex.Outliers[0].WallNS != 900 {
		t.Errorf("outliers = %v, want exactly the 900ns run", ex.Outliers)
	}
	gpo := groups[1]
	if gpo.Engine != "gpo" || len(gpo.Outliers) != 0 {
		t.Errorf("gpo group flagged outliers with only %d runs", gpo.Runs)
	}

	// Disagreeing state counts surface as States == -1 with the
	// disagreement flag raised.
	bad := entry(30)
	bad.States = 999
	groups = Summarize(append(entries, bad))
	if groups[0].States != -1 || !groups[0].StatesDisagree {
		t.Errorf("disagreement: States=%d StatesDisagree=%v, want -1/true",
			groups[0].States, groups[0].StatesDisagree)
	}
	if groups[0].Completed != 6 {
		t.Errorf("Completed = %d, want 6", groups[0].Completed)
	}
}

// TestSummarizeNoCompletedRuns is the regression test for the
// all-aborted-group bug: Summarize initialized its agreed-state sentinel
// to -1 and never updated it when a group had zero completed runs, so
// such groups were indistinguishable from genuine determinism
// disagreements (gpostat rendered them as DISAGREE).
func TestSummarizeNoCompletedRuns(t *testing.T) {
	var entries []Entry
	for i := 0; i < 3; i++ {
		e := entry(i)
		e.Status = "aborted"
		e.AbortReason = "deadline"
		e.Complete = false
		entries = append(entries, e)
	}
	groups := Summarize(entries)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Runs != 3 || g.Aborted != 3 || g.Completed != 0 {
		t.Errorf("runs/aborted/completed = %d/%d/%d, want 3/3/0", g.Runs, g.Aborted, g.Completed)
	}
	if g.StatesDisagree {
		t.Error("all-aborted group flagged StatesDisagree")
	}
	if g.States != 0 {
		t.Errorf("all-aborted group States = %d, want 0 (the -1 sentinel means disagreement)", g.States)
	}
}

// TestQuantileCeilRule pins the ledger quantile to the ceil nearest-rank
// definition rank = ⌈q·n⌉ shared with obs.Histogram.Quantile. The n=7
// q=0.9 case discriminates against the old +0.5 rounding rule, which
// picked rank 6 (⌈6.3⌉ = 7 vs ⌊6.3+0.5⌋ = 6).
func TestQuantileCeilRule(t *testing.T) {
	cases := []struct {
		sorted []int64
		q      float64
		want   int64
	}{
		{[]int64{10}, 0.5, 10},
		{[]int64{10}, 0.9, 10},
		{[]int64{10, 20}, 0.5, 10}, // ⌈1.0⌉ = 1
		{[]int64{10, 20}, 0.9, 20}, // ⌈1.8⌉ = 2
		{[]int64{10, 20, 30}, 0.5, 20},
		{[]int64{10, 20, 30}, 0.9, 30},
		{[]int64{1, 2, 3, 4, 5, 6, 7}, 0.9, 7},
		{nil, 0.5, 0},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, c.q); got != c.want {
			t.Errorf("quantile(%v, %v) = %d, want %d", c.sorted, c.q, got, c.want)
		}
	}
}

func TestVerdict(t *testing.T) {
	cases := []struct {
		e    Entry
		want string
	}{
		{Entry{Status: "ok", Check: "deadlock", Deadlock: true}, "deadlock"},
		{Entry{Status: "ok", Check: "deadlock", Deadlock: false}, "deadlock-free"},
		{Entry{Status: "ok", Check: "safety", Deadlock: true}, "unsafe"},
		{Entry{Status: "ok", Check: "safety", Deadlock: false}, "safe"},
		{Entry{Status: "aborted"}, "aborted"},
		{Entry{Status: "error"}, "error"},
	}
	for _, c := range cases {
		if got := c.e.Verdict(); got != c.want {
			t.Errorf("Verdict(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
}
