// Package ledger is the durable run journal: an append-only JSONL file
// where every verification — CLI or daemon — records its content-
// addressed run ID, options, verdict, and final metrics snapshot. The
// ledger is what turns a fleet of one-shot explorations into comparable
// history: Table 1 is an argument about *runs of the same net under
// different engines*, and the ledger gives each such run a durable
// identity (verify.RunKey) that the result cache, the access log, the
// trace dumps and the /v1/runs surface all share.
//
// Design rules:
//
//   - One JSON object per line, written with a single Write call while
//     holding the log's mutex, so concurrent appenders interleave only
//     at line granularity and a crash can corrupt at most the final
//     line. The reader skips lines that fail to parse, which makes a
//     torn tail harmless rather than fatal.
//   - Rotation by byte budget: when the journal would exceed MaxBytes
//     the current file is renamed to <path>.1 (replacing any previous
//     generation) and a fresh file is started. Readers stitch <path>.1
//     and <path> back together, oldest first.
//   - Timestamps are caller-supplied UnixNano integers, so entries
//     survive a JSON round trip bit-for-bit and tests can use fake
//     clocks.
//   - A nil *Log is a no-op appender, so callers thread one
//     unconditionally (the same convention as obs.Registry).
package ledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Schema is the versioned format tag stamped on every entry. Bump it
// only with a migration note in OBSERVABILITY.md.
const Schema = "ledger/v1"

// Entry is one completed (or aborted) verification run.
type Entry struct {
	Schema string `json:"schema"` // always "ledger/v1"
	// RunID is the content address of the run: verify.RunKey rendered as
	// "r"+hex. Identical net+check+options yield identical run IDs, so
	// repeated runs of one configuration share an ID and group naturally
	// into history — the join key across cache, access log and traces.
	RunID string `json:"run_id"`
	// RequestID is the daemon's per-HTTP-request ID (empty for CLI
	// runs): it distinguishes individual executions that share a RunID.
	RequestID string `json:"request_id,omitempty"`
	Source    string `json:"source"` // "gpod", "gpoverify", "gpobench"
	Net       string `json:"net"`    // net name, e.g. "nsdp(10)"
	Engine    string `json:"engine"`
	Check     string `json:"check"` // "deadlock" or "safety"

	// Result-determining options (the ones hashed into RunID).
	StopAtFirst bool `json:"stop_at_first,omitempty"`
	Proviso     bool `json:"proviso,omitempty"`
	Reduce      bool `json:"reduce,omitempty"`
	MaxStates   int  `json:"max_states,omitempty"`
	MaxNodes    int  `json:"max_nodes,omitempty"`
	Workers     int  `json:"workers,omitempty"` // informational; not part of RunID
	// Peers is the cluster size when the run executed on the distributed
	// explorer (0 = in-process). Informational like Workers: cluster
	// results are bit-identical, so Peers is not part of RunID.
	Peers int `json:"peers,omitempty"`

	StartUnixNS int64 `json:"start_unix_ns"`
	EndUnixNS   int64 `json:"end_unix_ns"`
	WallNS      int64 `json:"wall_ns"`

	Status      string `json:"status"` // "ok", "aborted", "error"
	AbortReason string `json:"abort_reason,omitempty"`
	Deadlock    bool   `json:"deadlock,omitempty"`
	States      int64  `json:"states"`
	PeakBDD     int64  `json:"peak_bdd,omitempty"`
	PeakSets    int64  `json:"peak_sets,omitempty"`
	Complete    bool   `json:"complete"`

	// TracePath points at the flight-recorder dump for this run, when
	// one was written (aborted daemon runs with a trace sink).
	TracePath string `json:"trace_path,omitempty"`
	// TracePeers lists the per-peer trace endpoints of a traced cluster
	// run — "<peerURL>/v1/runs/<id>/trace" joined under the run ID, the
	// way TracePath joins single-node dumps. Empty for untraced and
	// in-process runs.
	TracePeers []string `json:"trace_peers,omitempty"`
	// Metrics is the run's final counter/gauge snapshot (per-run
	// registry), keyed by the dot-separated names OBSERVABILITY.md
	// documents.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Verdict renders the run's outcome as one word for history listings.
func (e Entry) Verdict() string {
	switch e.Status {
	case "ok":
		if e.Check == "safety" {
			if e.Deadlock { // safety checks report violations in Deadlock
				return "unsafe"
			}
			return "safe"
		}
		if e.Deadlock {
			return "deadlock"
		}
		return "deadlock-free"
	case "aborted":
		return "aborted"
	default:
		return e.Status
	}
}

// DefaultMaxBytes is the rotation budget when Open is given none:
// generous enough for ~50k entries per generation, small enough that a
// forgotten ledger never eats a disk.
const DefaultMaxBytes = 16 << 20

// recentCap bounds the in-memory tail a Log keeps for serving /v1/runs
// without rereading the file.
const recentCap = 256

// Log is an append-only JSONL journal with byte-budget rotation. All
// methods are safe for concurrent use; all methods are no-ops on nil.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	size     int64
	maxBytes int64
	recent   []Entry // tail of appended entries, oldest first, ≤ recentCap
}

// Open opens (creating if needed) the journal at path. maxBytes ≤ 0
// selects DefaultMaxBytes. Existing entries stay where they are; new
// appends go to the end.
func Open(path string, maxBytes int64) (*Log, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: stat %s: %w", path, err)
	}
	size := st.Size()
	// Heal a torn tail: if the previous writer crashed mid-line, the file
	// ends without a newline. Terminate that fragment now so the garbage
	// stays confined to its own (skipped) line instead of fusing with the
	// next append.
	if size > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("ledger: heal %s: %w", path, err)
			}
			size++
		}
	}
	return &Log{path: path, f: f, size: size, maxBytes: maxBytes}, nil
}

// Append writes e as one line. The entry's Schema is stamped here so
// callers cannot forget it. Rotation happens before the write when the
// line would push the file past the byte budget.
func (l *Log) Append(e Entry) error {
	if l == nil {
		return nil
	}
	e.Schema = Schema
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: marshal: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size > 0 && l.size+int64(len(line)) > l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("ledger: append %s: %w", l.path, err)
	}
	l.size += int64(len(line))
	l.recent = append(l.recent, e)
	if len(l.recent) > recentCap {
		l.recent = append(l.recent[:0], l.recent[len(l.recent)-recentCap:]...)
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ledger: rotate close: %w", err)
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return fmt.Errorf("ledger: rotate rename: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: rotate reopen: %w", err)
	}
	l.f = f
	l.size = 0
	return nil
}

// Recent returns a copy of the most recently appended entries (oldest
// first, at most the retained tail) without touching the file — how the
// daemon serves the completed half of GET /v1/runs.
func (l *Log) Recent() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.recent))
	copy(out, l.recent)
	return out
}

// Path returns the journal path ("" on nil).
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Close closes the underlying file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Read reconstructs history from the journal at path, stitching the
// rotated generation <path>.1 (if present) before the current file.
// Lines that fail to parse — a torn tail after a crash, a truncated
// rotation — are skipped, not fatal. A missing journal reads as empty.
func Read(path string) ([]Entry, error) {
	var out []Entry
	for _, p := range []string{path + ".1", path} {
		f, err := os.Open(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("ledger: read %s: %w", p, err)
		}
		out = append(out, ReadAll(f)...)
		f.Close()
	}
	return out, nil
}

// ReadAll decodes every parseable entry line from r, skipping garbage.
func ReadAll(r io.Reader) []Entry {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Schema != Schema {
			continue // torn or foreign line: crash-safety contract
		}
		out = append(out, e)
	}
	return out
}

// Group is the reconstructed history of one (net, engine, check)
// configuration across runs.
type Group struct {
	Net    string
	Engine string
	Check  string
	Runs   int
	// Aborted counts runs that did not complete; Completed counts the
	// ones that did (Runs = Completed + Aborted). A group can have zero
	// completed runs — every run aborted — and then the wall/states
	// fields below carry no information.
	Aborted   int
	Completed int
	// Wall-clock distribution over completed runs (ns).
	MedianWallNS int64
	P90WallNS    int64
	// StatesPerSec is the aggregate throughput over completed runs:
	// total states / total wall.
	StatesPerSec float64
	// States is the state count agreed on by completed runs. It is 0
	// when the group has no completed runs and -1 when completed runs
	// disagree; only StatesDisagree distinguishes a genuine determinism
	// red flag from an empty group (an earlier version conflated the two
	// by initializing the sentinel to -1).
	States         int64
	StatesDisagree bool
	// Outliers are completed runs whose wall clock exceeded twice the
	// group median (only flagged once the group has ≥ 3 completed runs,
	// below that "outlier" has no baseline to mean anything against).
	Outliers []Entry
}

// Summarize groups entries by (net, engine, check) and computes the
// per-group wall-clock distribution, throughput, and outliers. Groups
// come back sorted by net, then engine, then check.
func Summarize(entries []Entry) []Group {
	type key struct{ net, engine, check string }
	byKey := make(map[key][]Entry)
	var order []key
	for _, e := range entries {
		k := key{e.Net, e.Engine, e.Check}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], e)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.net != b.net {
			return a.net < b.net
		}
		if a.engine != b.engine {
			return a.engine < b.engine
		}
		return a.check < b.check
	})
	groups := make([]Group, 0, len(order))
	for _, k := range order {
		runs := byKey[k]
		g := Group{Net: k.net, Engine: k.engine, Check: k.check, Runs: len(runs)}
		var walls []int64
		var totalStates, totalWall int64
		for _, e := range runs {
			if e.Status != "ok" {
				g.Aborted++
				continue
			}
			g.Completed++
			walls = append(walls, e.WallNS)
			totalStates += e.States
			totalWall += e.WallNS
			if g.Completed == 1 {
				g.States = e.States
			} else if g.States != e.States {
				g.StatesDisagree = true
			}
		}
		if g.StatesDisagree {
			g.States = -1
		}
		if len(walls) > 0 {
			sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
			g.MedianWallNS = quantile(walls, 0.5)
			g.P90WallNS = quantile(walls, 0.9)
			if totalWall > 0 {
				g.StatesPerSec = float64(totalStates) / (float64(totalWall) / 1e9)
			}
			if len(walls) >= 3 {
				for _, e := range runs {
					if e.Status == "ok" && e.WallNS > 2*g.MedianWallNS {
						g.Outliers = append(g.Outliers, e)
					}
				}
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// quantile returns the q-quantile of sorted, using the ceil nearest-rank
// rule rank = ⌈q·n⌉ — the same definition as obs.Histogram.Quantile, so
// a group's median/p90 and the histogram view of the same runs agree.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q * float64(len(sorted))))
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
