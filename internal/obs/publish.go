package obs

import (
	"sync"
	"sync/atomic"
)

// Publisher fans one run's progress updates out to any number of live
// subscribers — the seam between an engine's Progress hook and the
// daemon's SSE streams. The design rules match the rest of the package:
//
//   - Nil is a no-op everywhere: a nil *Publisher publishes into the
//     void, so callers thread it unconditionally.
//   - Publishing never blocks and never perturbs the engine. Each
//     subscriber owns a bounded buffer with drop-oldest semantics: a
//     slow SSE client loses intermediate updates (they are throttled
//     snapshots, not a log), while the engine's goroutine proceeds at
//     full speed.
//   - Zero allocations with no subscribers. Publish checks an atomic
//     subscriber count before touching anything else, so a run that
//     nobody watches pays one atomic load per throttled update
//     (pinned by BenchmarkProgressPublishNoSubscribers).
//
// Wire it by setting Progress.Report = pub.Publish: engines already
// tick Progress once per unit of work, so no engine grows any new
// surface to become streamable.
type Publisher struct {
	nsubs atomic.Int32 // fast-path count, mirrors len(subs)
	drops atomic.Int64 // updates dropped on full subscriber buffers

	mu     sync.Mutex
	subs   map[int]chan Update
	nextID int
	closed bool
	last   Update // last published update, replayed to late subscribers
	seen   bool   // last is valid
}

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher {
	return &Publisher{subs: make(map[int]chan Update)}
}

// Subscribe registers a subscriber and returns its update channel plus
// a cancel function. buf is the subscriber's buffer depth (minimum 1);
// when the buffer is full the oldest buffered update is dropped to make
// room, so a stalled consumer never blocks Publish. If the publisher
// already saw updates, the most recent one is pre-buffered so a late
// subscriber starts from the current state instead of silence. The
// channel is closed by Close (or immediately, when the publisher is
// already closed); cancel is idempotent and safe after Close.
func (p *Publisher) Subscribe(buf int) (<-chan Update, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Update, buf)
	if p == nil {
		close(ch)
		return ch, func() {}
	}
	p.mu.Lock()
	if p.closed {
		if p.seen {
			ch <- p.last
		}
		close(ch)
		p.mu.Unlock()
		return ch, func() {}
	}
	id := p.nextID
	p.nextID++
	p.subs[id] = ch
	if p.seen {
		ch <- p.last
	}
	p.nsubs.Store(int32(len(p.subs)))
	p.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			p.mu.Lock()
			if ch, ok := p.subs[id]; ok {
				delete(p.subs, id)
				p.nsubs.Store(int32(len(p.subs)))
				close(ch)
			}
			p.mu.Unlock()
		})
	}
	return ch, cancel
}

// Publish fans u out to every subscriber without blocking. With no
// subscribers it is one atomic load and returns — safe to call from an
// engine's Progress.Report at full tick rate. A full subscriber buffer
// drops its oldest update (counted in Dropped) to admit the new one;
// if a concurrent receive races the drop, the new update is discarded
// instead — either way the newest-or-nearly-newest state is what a
// consumer sees next.
func (p *Publisher) Publish(u Update) {
	if p == nil || p.nsubs.Load() == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.last, p.seen = u, true
	for _, ch := range p.subs {
		select {
		case ch <- u:
		default:
			select {
			case <-ch:
				p.drops.Add(1)
			default:
			}
			select {
			case ch <- u:
			default:
				p.drops.Add(1)
			}
		}
	}
}

// Close publishes nothing further and closes every subscriber channel,
// ending their range loops. Idempotent; nil-safe. Publish after Close
// is a no-op, so a racing engine tick cannot send on a closed channel.
func (p *Publisher) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for id, ch := range p.subs {
		delete(p.subs, id)
		close(ch)
	}
	p.nsubs.Store(0)
}

// Subscribers returns the current subscriber count (0 on nil).
func (p *Publisher) Subscribers() int {
	if p == nil {
		return 0
	}
	return int(p.nsubs.Load())
}

// Dropped returns how many updates were discarded against full
// subscriber buffers (0 on nil).
func (p *Publisher) Dropped() int64 {
	if p == nil {
		return 0
	}
	return p.drops.Load()
}

// Last returns the most recent published update and whether one exists —
// how the daemon answers a status probe without waiting for the next
// throttled tick.
func (p *Publisher) Last() (Update, bool) {
	if p == nil {
		return Update{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last, p.seen
}
