package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), stdlib-only. Counters become `counter`
// series, gauges `gauge`, and histograms full `histogram` families with
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
// Metric names have their dots replaced by underscores ("reach.states"
// → "reach_states"); the original name is kept in the HELP line so the
// OBSERVABILITY.md tables remain searchable from a Prometheus browser.
func WritePrometheus(w io.Writer, snap *Snapshot) error {
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s Counter %s.\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %d\n",
			pn, name, pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s Histogram %s (power-of-two buckets).\n# TYPE %s histogram\n",
			pn, name, pn); err != nil {
			return err
		}
		// The snapshot's buckets are per-bucket counts; Prometheus
		// buckets are cumulative and end at +Inf.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.LE, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a registry metric name into the Prometheus
// alphabet [a-zA-Z0-9_:], mapping dots (our namespace separator) and
// any other illegal byte to underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromSink writes each snapshot in Prometheus text exposition format.
type PromSink struct {
	W io.Writer
}

// Emit renders the snapshot via WritePrometheus.
func (s PromSink) Emit(snap *Snapshot) error { return WritePrometheus(s.W, snap) }
