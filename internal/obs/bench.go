package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BenchSchema identifies the machine-readable benchmark artifact format.
// Bump the version suffix on any incompatible change so downstream
// perf-diff tooling can refuse mixed comparisons.
const BenchSchema = "gpobench/v1"

// BenchReport is the machine-readable artifact emitted by `gpobench
// -json`: one entry per (model instance, engine) pair, sufficient to diff
// perf runs across commits.
type BenchReport struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"` // RFC 3339
	GoVersion string `json:"go_version"`
	// Workers is the parallel worker count the exhaustive engine ran with
	// (0 = sequential). Wall-clock comparisons across artifacts are only
	// meaningful between runs with the same value.
	Workers int `json:"workers"`
	// Only is the instance-name filter regexp the run was restricted to
	// ("" = all instances). Recorded so a filtered artifact is never
	// mistaken for a full Table 1 run when diffing.
	Only string `json:"only,omitempty"`
	// Reduce marks a run measured with the structural reduction pre-pass:
	// engines explored the reduced nets, so States columns are not
	// comparable against unreduced artifacts (that difference is the
	// point — see EXPERIMENTS.md).
	Reduce  bool         `json:"reduce,omitempty"`
	Entries []BenchEntry `json:"entries"`
}

// BenchEntry is one engine run on one model instance.
type BenchEntry struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Engine string `json:"engine"`
	// RunID is the content address of the run (verify.RunKey rendered as
	// "r"+hex) — the join key into ledger entries, gpod access logs and
	// trace dumps for the same configuration. Empty for skipped entries
	// and for artifacts predating the field.
	RunID string `json:"run_id,omitempty"`
	// States is states explored (GPN states for gpo, events for
	// unfolding, |reachable| for symbolic).
	States int64 `json:"states"`
	// PeakNodes is the peak decision-diagram node count (symbolic engine;
	// 0 elsewhere).
	PeakNodes int64 `json:"peak_nodes"`
	WallNS    int64 `json:"wall_ns"`
	// Allocs is the number of heap objects allocated during the run.
	Allocs int64 `json:"allocs"`
	// AllocBytes is the number of heap bytes allocated during the run.
	AllocBytes int64 `json:"alloc_bytes"`
	// Capped marks a run aborted at a state/node cap; States/PeakNodes
	// then hold the cap value reached.
	Capped bool `json:"capped,omitempty"`
	// Skipped marks an instance/engine pair that was not run (e.g. full
	// enumeration of a 10^6-state family).
	Skipped bool `json:"skipped,omitempty"`
	// Error holds a failure message; all numeric fields are then invalid.
	Error string `json:"error,omitempty"`
	// OrigPlaces/OrigTrans and ReducedPlaces/ReducedTrans record the net
	// sizes before and after the structural reduction pre-pass. Only set
	// on reduced runs (BenchReport.Reduce).
	OrigPlaces    int `json:"orig_places,omitempty"`
	OrigTrans     int `json:"orig_trans,omitempty"`
	ReducedPlaces int `json:"reduced_places,omitempty"`
	ReducedTrans  int `json:"reduced_trans,omitempty"`
	// Counters carries the engine's full counter/gauge set for the run
	// ("core.multi_firings", "bdd.cache_hits", ...).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseBenchReport decodes and validates a report produced by WriteJSON.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: invalid bench report: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("obs: bench report schema %q, want %q", r.Schema, BenchSchema)
	}
	return &r, nil
}

// BenchFileName returns the dated artifact name, BENCH_YYYY-MM-DD.json.
func BenchFileName(t time.Time) string {
	return "BENCH_" + t.Format("2006-01-02") + ".json"
}
