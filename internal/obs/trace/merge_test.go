package trace

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
)

// TestReadDumpTypedErrors pins the refusal paths of the format sniffer:
// each malformed input maps to a specific sentinel so callers can
// distinguish "empty file" from "corrupt header" from "written by a
// newer build" with errors.Is.
func TestReadDumpTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", ErrEmptyTrace},
		{"whitespace only", " \n\t\r\n", ErrEmptyTrace},
		{"not json", "not json at all", ErrBadHeader},
		{"truncated jsonl meta", `{"type":"meta"`, ErrBadHeader},
		{"chrome without traceEvents", `{"foo": 1}`, ErrBadHeader},
		{"jsonl future version", `{"type":"meta","v":99,"tracks":["core"]}`, ErrVersionMismatch},
		{"chrome future sidecar", `{"traceEvents":[],"gpoTrace":{"v":99}}`, ErrVersionMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDump(strings.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadDump(%q) = %v, want errors.Is(err, %v)", tc.in, err, tc.want)
			}
		})
	}
}

// TestReadDumpLegacyVersion checks that a pre-versioning dump (no "v"
// field anywhere) still parses, reported as format version 1.
func TestReadDumpLegacyVersion(t *testing.T) {
	d, err := ReadDump(strings.NewReader(
		`{"type":"meta","tracks":["core"]}` + "\n" +
			`{"type":"event","track":0,"ts":5,"kind":"state","a0":1,"a1":0}` + "\n"))
	if err != nil {
		t.Fatalf("legacy jsonl: %v", err)
	}
	if d.Version != 1 {
		t.Fatalf("legacy jsonl version = %d, want 1", d.Version)
	}
	d, err = ReadDump(strings.NewReader(`{"traceEvents":[]}`))
	if err != nil {
		t.Fatalf("legacy chrome: %v", err)
	}
	if d.Version != 1 {
		t.Fatalf("legacy chrome version = %d, want 1", d.Version)
	}
}

// TestBundleRoundTrip checks WriteBundle → ReadBundle is lossless for
// the fields Merge consumes.
func TestBundleRoundTrip(t *testing.T) {
	in := &Bundle{
		RunID: "run-1",
		Peers: []BundlePeer{
			{Addr: "http://a", Coordinator: true, Dump: sampleDump()},
			{Addr: "http://b", OffsetNS: 1234, RTTNS: 99, Dump: sampleDump()},
		},
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, in); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	out, err := ReadBundle(&buf)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if out.Schema != BundleSchema || out.RunID != "run-1" || len(out.Peers) != 2 {
		t.Fatalf("round trip header: %+v", out)
	}
	if !out.Peers[0].Coordinator || out.Peers[1].OffsetNS != 1234 || out.Peers[1].RTTNS != 99 {
		t.Fatalf("round trip peers: %+v", out.Peers)
	}
	eventsEqual(t, in.Peers[0].Dump, out.Peers[0].Dump, true)
}

// TestReadBundleRefusals pins the bundle refusal paths: wrong schema
// and missing dumps are header errors, a dump newer than this reader is
// a version mismatch, and peers disagreeing on version is its own
// sentinel (a fleet mid-upgrade must not be silently half-parsed).
func TestReadBundleRefusals(t *testing.T) {
	enc := func(b *Bundle) string {
		var buf bytes.Buffer
		if err := WriteBundle(&buf, b); err != nil {
			t.Fatalf("WriteBundle: %v", err)
		}
		return buf.String()
	}
	v := func(n int) *Dump {
		d := sampleDump()
		d.Version = n
		return d
	}
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"garbage", "not a bundle", ErrBadHeader},
		{"wrong schema", `{"schema":"something/v9","peers":[]}`, ErrBadHeader},
		{"nil dump", `{"schema":"` + BundleSchema + `","peers":[{"addr":"x"}]}`, ErrBadHeader},
		{"future dump version", enc(&Bundle{Peers: []BundlePeer{{Addr: "a", Dump: v(FormatVersion + 1)}}}), ErrVersionMismatch},
		{"mixed versions", enc(&Bundle{Peers: []BundlePeer{
			{Addr: "a", Dump: v(1)},
			{Addr: "b", Dump: v(FormatVersion)},
		}}), ErrMixedVersions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBundle(strings.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadBundle = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
	if _, err := Merge(&Bundle{}); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("Merge(empty bundle) = %v, want ErrBadHeader", err)
	}
}

const (
	msNS  = int64(1e6)
	secNS = int64(1e9)
)

// synthFleet builds a synthetic coordinator + 2 peer bundle on a shared
// "true" timeline (the coordinator's clock): each peer's recorder base
// is skewed by skew[p], RPC latency is asymmetric (1ms out, 9ms back),
// and the bundle carries deliberately wrong offset estimates (±50ms
// error — far larger than any one-way latency). Per level and peer the
// coordinator sends one expand frame and receives one reply; the peer
// records the matching halves plus an "expand" phase span on its own
// skewed clock.
func synthFleet(skew1, skew2, est1, est2 int64) *Bundle {
	const (
		base = int64(1_700_000_000_000_000_000)
		d1   = 1 * 1e6 // coordinator → peer, ns
		d2   = 9 * 1e6 // peer → coordinator, ns
	)
	skews := []int64{0, skew1, skew2}
	meta := func(p int) map[string]string {
		return map[string]string{"base_unix_ns": strconv.FormatInt(base+skews[p], 10)}
	}

	coord := &Dump{Version: FormatVersion, Meta: meta(0)}
	cluster := DumpTrack{Name: "cluster"}
	cluster.Events = append(cluster.Events, Event{TS: 0, Kind: KindLevel, Arg0: 0, Arg1: 10})
	for i := int64(0); i < 5; i++ {
		cluster.Events = append(cluster.Events, Event{TS: 1*msNS + i, Kind: KindState, Arg0: i})
	}
	cluster.Events = append(cluster.Events,
		Event{TS: 100 * msNS, Kind: KindLevel, Arg0: 1, Arg1: 20},
		Event{TS: 110 * msNS, Kind: KindSteal, Arg0: 1, Arg1: 4},
	)
	wires := []DumpTrack{{Name: "wire:p1"}, {Name: "wire:p2"}}

	peers := make([]*Dump, 3)
	for p := 1; p <= 2; p++ {
		d := &Dump{Version: FormatVersion, Meta: meta(p), Strings: []string{"", "expand"}}
		tk := DumpTrack{Name: "peer"}
		for _, i := range []int64{0, 1} {
			tk.Events = append(tk.Events, Event{TS: 50*msNS + 100*msNS*i + int64(p), Kind: KindState, Arg0: i})
		}
		peers[p] = d
		_ = tk
		d.Tracks = append(d.Tracks, tk)
	}

	for lvl := int64(0); lvl < 2; lvl++ {
		for p := 1; p <= 2; p++ {
			// True-timeline instants (coordinator clock). Dump timestamps
			// are relative to each recorder's base, and every base is the
			// recorder's own reading of the same true instant, so relative
			// timestamps equal true offsets on every peer.
			send := lvl*100*msNS + 10*msNS + int64(p)*msNS // coordinator posts the frame
			reply := send + 8*msNS + int64(p)*3*msNS       // peer posts the reply
			pid := PairID(lvl, RPCExpand, 0, p)
			wires[p-1].Events = append(wires[p-1].Events,
				Event{TS: send, Kind: KindFrameSend, Arg0: pid, Arg1: 100},
				Event{TS: reply + d2, Kind: KindFrameRecv, Arg0: pid, Arg1: 50},
			)
			pd := &peers[p].Tracks[0]
			pd.Events = append(pd.Events,
				Event{TS: send + d1, Kind: KindFrameRecv, Arg0: pid, Arg1: 100},
				Event{TS: send + d1 + 100_000, Kind: KindPhaseBegin, Arg0: 1, Arg1: lvl},
				Event{TS: send + d1 + 4*msNS, Kind: KindExpand, Arg0: 50 + int64(p), Arg1: lvl},
				Event{TS: send + d1 + 4*msNS + 100_000, Kind: KindPhaseEnd, Arg0: 1, Arg1: lvl},
				Event{TS: reply, Kind: KindFrameSend, Arg0: pid, Arg1: 50},
			)
		}
	}
	// One peer-to-peer intern exchange (no coordinator involvement) to
	// exercise edge building between non-coordinator dumps.
	ipid := PairID(0, RPCIntern, 1, 2)
	peers[1].Tracks[0].Events = append(peers[1].Tracks[0].Events,
		Event{TS: 40 * msNS, Kind: KindFrameSend, Arg0: ipid, Arg1: 64})
	peers[2].Tracks[0].Events = append(peers[2].Tracks[0].Events,
		Event{TS: 42 * msNS, Kind: KindFrameRecv, Arg0: ipid, Arg1: 64})

	coord.Tracks = append(coord.Tracks, cluster, wires[0], wires[1])
	return &Bundle{
		Schema: BundleSchema,
		RunID:  "skew-test",
		Peers: []BundlePeer{
			{Addr: "c0", Coordinator: true, Dump: coord},
			{Addr: "p1", OffsetNS: est1, Dump: peers[1]},
			{Addr: "p2", OffsetNS: est2, Dump: peers[2]},
		},
	}
}

// TestMergeSkew injects multi-second clock skew and ±50ms offset
// estimation error (asymmetric 1ms/9ms RPC legs make the midpoint
// estimate wrong by construction) and checks the causal clamp: applied
// offsets land inside [skew−9ms, skew+1ms] and no matched wire edge
// runs backwards on the merged timeline.
func TestMergeSkew(t *testing.T) {
	const (
		skew1 = 2_500 * msNS  // peer 1 clock runs 2.5s ahead
		skew2 = -3_000 * msNS // peer 2 clock runs 3s behind
	)
	b := synthFleet(skew1, skew2, skew1+50*msNS, skew2-50*msNS)
	m, err := Merge(b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}

	// Causal clamp: peer→coordinator edges bound the offset below by
	// skew−9ms, coordinator→peer edges bound it above by skew+1ms. The
	// +50ms estimate clamps to the upper bound, the −50ms one to the
	// lower.
	if got := m.Peers[0].OffsetNS; got != 0 {
		t.Fatalf("coordinator offset = %d, want 0", got)
	}
	if got, want := m.Peers[1].OffsetNS, skew1+1*msNS; got != want {
		t.Fatalf("peer 1 offset = %d, want clamped %d (skew %d)", got, want, int64(skew1))
	}
	if got, want := m.Peers[2].OffsetNS, skew2-9*msNS; got != want {
		t.Fatalf("peer 2 offset = %d, want clamped %d (skew %d)", got, want, int64(skew2))
	}

	// 2 levels × 2 peers × 2 directions of expand frames + 1 intern edge.
	if len(m.Edges) != 9 {
		t.Fatalf("matched %d wire edges, want 9", len(m.Edges))
	}
	for _, e := range m.Edges {
		if e.EndNS < e.StartNS {
			t.Fatalf("edge %d→%d (rpc %d, level %d) runs backwards: %d ns",
				e.From, e.To, e.RPC, e.Level, e.EndNS-e.StartNS)
		}
	}

	// State events counted across every dump: 5 coordinator + 2 per peer.
	if m.States != 9 {
		t.Fatalf("merged states = %d, want 9", m.States)
	}

	// Attribution: two level marks; level 0 spans the 100ms to the next
	// mark and holds both peers' 4ms expand phases; the steal landed in
	// level 1; peer 2's replies arrive 4ms after peer 1's.
	if len(m.Levels) != 2 {
		t.Fatalf("levels = %+v, want 2 entries", m.Levels)
	}
	l0, l1 := m.Levels[0], m.Levels[1]
	if l0.Level != 0 || l0.Size != 10 || l0.WallNS != 100*msNS {
		t.Fatalf("level 0 stat = %+v", l0)
	}
	if l0.ComputeNS != 8*msNS {
		t.Fatalf("level 0 compute = %d, want %d (2 peers × 4ms)", l0.ComputeNS, 8*msNS)
	}
	if l0.StallNS != 4*msNS || l0.SlowestPeer != "p2" {
		t.Fatalf("level 0 stall = %d slowest = %q, want 4ms / p2", l0.StallNS, l0.SlowestPeer)
	}
	if l1.Steals != 1 || l1.Stolen != 4 {
		t.Fatalf("level 1 steal stats = %+v", l1)
	}
	if p1, p2 := m.Peers[1], m.Peers[2]; p1.Expanded != 102 || p2.Expanded != 104 {
		t.Fatalf("expanded per peer = %d/%d, want 102/104", p1.Expanded, p2.Expanded)
	}

	var table strings.Builder
	m.WriteText(&table)
	out := table.String()
	for _, want := range []string{"slowest", "p2", "fleet states: 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attribution table missing %q:\n%s", want, out)
		}
	}
	if err := WriteChromeMerged(io.Discard, b, m); err != nil {
		t.Fatalf("WriteChromeMerged: %v", err)
	}
}

// TestMergeOffsetInsideBounds checks the no-clamp path: an estimate
// already inside the causal interval is applied unchanged.
func TestMergeOffsetInsideBounds(t *testing.T) {
	const skew1, skew2 = 7 * secNS, -2 * secNS
	est1, est2 := skew1-3*msNS, skew2+0*msNS
	m, err := Merge(synthFleet(skew1, skew2, est1, est2))
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Peers[1].OffsetNS != est1 || m.Peers[2].OffsetNS != est2 {
		t.Fatalf("offsets = %d/%d, want estimates %d/%d untouched",
			m.Peers[1].OffsetNS, m.Peers[2].OffsetNS, est1, est2)
	}
	// Only coordinator-involving edges are causally constrained; the
	// peer-to-peer intern edge may drift by the residual estimation
	// error.
	for _, e := range m.Edges {
		if (e.From == 0 || e.To == 0) && e.EndNS < e.StartNS {
			t.Fatalf("edge %d→%d runs backwards with in-bounds estimates", e.From, e.To)
		}
	}
}
